#!/usr/bin/env python3
"""CI gate for the live telemetry endpoint (alpha_sim --metrics-port).

Launches alpha_sim with an ephemeral metrics port, parses the bound port
from its stderr announcement, and scrapes the endpoint over real TCP:

  healthy (default): /metrics must lint as Prometheus text format
      (well-formed lines, cumulative histogram buckets ending at +Inf,
      matching _sum/_count) and contain the required metric families;
      /healthz must report 200/"ok"; unknown paths must 404.

  --degraded: runs a seeded retry-budget-exhaustion scenario (handshake
      completes, then a long partition wedges the first signature round
      while --max-retries keeps the association alive) and polls /healthz
      until the wedged-round watchdog flips it to 503/"degraded".
      alpha_sim exits nonzero there (messages were lost); that is expected.

Usage: check_telemetry.py /path/to/alpha_sim [--degraded]
"""

import json
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

REQUIRED_FAMILIES = [
    "alpha_messages_submitted",
    "alpha_messages_delivered",
    "alpha_rounds_completed",
    "alpha_trace_events_dropped",
    "alpha_span_deliveries",
    "alpha_span_rounds_complete",
    "alpha_span_delivery_latency_us",
    "alpha_span_delivery_latency_min_us",
    "alpha_span_hop_us",
    "alpha_span_queue_wait_us",
    "alpha_span_propagation_us",
]

METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+]+$")
TYPE_LINE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|histogram)$")
PORT_LINE = re.compile(r"telemetry: serving on 127\.0\.0\.1:(\d+)")


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def get(port: int, path: str):
    """Returns (status, body) without raising on HTTP error statuses."""
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()


def lint_prometheus(text: str) -> None:
    """Prometheus text-format lint: line shapes + histogram invariants."""
    samples = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            if not TYPE_LINE.match(line):
                fail(f"malformed comment line: {line!r}")
            continue
        if not METRIC_LINE.match(line):
            fail(f"malformed metric line: {line!r}")
        name_labels, value = line.rsplit(" ", 1)
        samples[name_labels] = value
    # Histogram invariants: within each series, buckets are cumulative and
    # non-decreasing, le="+Inf" exists and equals _count.
    buckets = {}
    for name_labels in samples:
        m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)_bucket\{(.*)\}$',
                     name_labels)
        if not m:
            continue
        family, labels = m.groups()
        le = None
        rest = []
        for part in labels.split(","):
            k, v = part.split("=", 1)
            if k == "le":
                le = v.strip('"')
            else:
                rest.append(part)
        series = (family, ",".join(rest))
        buckets.setdefault(series, []).append(
            (float("inf") if le == "+Inf" else float(le),
             int(samples[name_labels])))
    if not buckets:
        fail("no histogram series found")
    for (family, labels), rows in buckets.items():
        rows.sort()
        counts = [n for _, n in rows]
        if counts != sorted(counts):
            fail(f"{family}{{{labels}}}: buckets not cumulative: {counts}")
        if rows[-1][0] != float("inf"):
            fail(f"{family}{{{labels}}}: missing le=\"+Inf\" bucket")
        count_key = (f"{family}_count{{{labels}}}" if labels
                     else f"{family}_count")
        if count_key not in samples:
            fail(f"{family}{{{labels}}}: missing _count")
        if int(samples[count_key]) != rows[-1][1]:
            fail(f"{family}{{{labels}}}: +Inf bucket {rows[-1][1]} != "
                 f"_count {samples[count_key]}")


def launch(cmd: list):
    """Starts alpha_sim and returns (process, bound port)."""
    proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                            stderr=subprocess.PIPE, text=True)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        m = PORT_LINE.search(line)
        if m:
            return proc, int(m.group(1))
    proc.kill()
    fail("alpha_sim never announced its telemetry port")


def check_healthy(sim: str) -> None:
    proc, port = launch([
        sim, "--hops", "2", "--messages", "50", "--reliable",
        "--metrics-port", "0", "--serve-seconds", "30",
    ])
    try:
        # Wait for the run to finish so the scrape sees final state.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status, body = get(port, "/healthz")
            health = json.loads(body)
            if health.get("established", 0) > 0:
                break
            time.sleep(0.2)
        if status != 200 or health.get("status") != "ok":
            fail(f"/healthz not ok: {status} {body}")
        status, metrics = get(port, "/metrics")
        if status != 200:
            fail(f"/metrics returned {status}")
        lint_prometheus(metrics)
        for family in REQUIRED_FAMILIES:
            if f"\n{family}" not in f"\n{metrics}" and \
               not metrics.startswith(family):
                fail(f"/metrics missing family {family}")
        delivered = re.search(r"^alpha_messages_delivered\S* (\d+)$",
                              metrics, re.M)
        if not delivered or int(delivered.group(1)) == 0:
            fail("alpha_messages_delivered is zero or absent")
        status, _ = get(port, "/no-such-path")
        if status != 404:
            fail(f"unknown path returned {status}, want 404")
        print(f"OK: healthy scrape on port {port}: {len(metrics)} bytes of "
              f"metrics, {delivered.group(1)} delivered, healthz ok, 404 ok")
    finally:
        proc.kill()
        proc.wait()


def check_degraded(sim: str) -> None:
    proc, port = launch([
        sim, "--hops", "2", "--messages", "20",
        "--partition", "0.5,3600", "--max-retries", "1000",
        "--metrics-port", "0", "--serve-seconds", "60",
    ])
    try:
        deadline = time.monotonic() + 60
        health = {}
        while time.monotonic() < deadline:
            status, body = get(port, "/healthz")
            health = json.loads(body)
            if health.get("status") == "degraded":
                break
            time.sleep(0.5)
        if health.get("status") != "degraded":
            fail(f"watchdog never degraded: {health}")
        if status != 503:
            fail(f"/healthz degraded but status {status}, want 503")
        if "wedged_round" not in health.get("reasons", []):
            fail(f"degraded without wedged_round reason: {health}")
        print(f"OK: wedged-round watchdog flipped /healthz to 503 degraded "
              f"({health['reasons']})")
    finally:
        proc.kill()
        proc.wait()


def main() -> None:
    if len(sys.argv) < 2:
        fail(f"usage: {sys.argv[0]} /path/to/alpha_sim [--degraded]")
    if "--degraded" in sys.argv[2:]:
        check_degraded(sys.argv[1])
    else:
        check_healthy(sys.argv[1])


if __name__ == "__main__":
    main()
