#!/usr/bin/env python3
"""CI lint for flight-recorder output (alpha_sim --flight-dir DIR).

Independently re-implements the .alfr segment format from its spec
(src/trace/flight.hpp) in Python -- deliberately sharing no code with the
C++ reader -- and checks:

  1. Every segment header parses, has the right magic/version/size, and its
     identity CRC-32 (zlib polynomial, computed over the header with the
     mutable progress fields zeroed) matches.
  2. Every committed event slot is structurally valid: known kind (1..21),
     known drop reason, event_count <= capacity, and non-decreasing
     timestamps per origin within a segment.
  3. Segments chain: per shard, first_event_index advances by exactly the
     previous segment's event count.
  4. The finalized segment's metrics snapshot passes its CRC and contains
     the alpha_build_info series (satellite: build provenance travels
     inside the recording).
  5. With --sim-output LOG: the recording's event counts reconcile with the
     live run -- delivered events match the "delivered: X/Y" line, and
     terminal network fates (net_delivered + net_dropped) match the
     simulator's frames line (delivered + lost), so every frame the network
     decided on is accounted for in the recording.

Exit nonzero with a message on the first violation.

Usage: check_flight.py DIR [--sim-output LOG] [--expect-crash SIGNO]
"""

import os
import re
import struct
import sys
import zlib

MAGIC = 0x52464C41  # "ALFR" little-endian
VERSION = 1
HEADER_FMT = "<IHHIIIIQQQQQQQIIQQ144sII"
HEADER_BYTES = struct.calcsize(HEADER_FMT)
EVENT_BYTES = 32
EVENT_FMT = "<QQIIBBBBI"
MAX_KIND = 21      # EventKind::kAdaptDecision
REASON_COUNT = 19  # trace::kDropReasonCount

FIELDS = [
    "magic", "version", "header_bytes", "node_id", "shard_index",
    "segment_index", "crash_signal", "wall_epoch_us", "clock_origin_us",
    "config_digest", "event_capacity", "event_count", "first_event_index",
    "events_lost", "finalized", "metrics_crc", "metrics_offset",
    "metrics_bytes", "build_info", "reserved", "identity_crc",
]
# Progress fields the writer mutates after sealing the identity CRC; the
# checksum is defined over the header with these zeroed so a torn update
# can never invalidate an otherwise-sound segment.
MUTABLE = {"crash_signal", "event_count", "events_lost", "finalized",
           "metrics_crc", "metrics_offset", "metrics_bytes", "identity_crc"}


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_header(raw: bytes, path: str) -> dict:
    if len(raw) < HEADER_BYTES:
        fail(f"{path}: truncated header ({len(raw)} bytes)")
    h = dict(zip(FIELDS, struct.unpack_from(HEADER_FMT, raw)))
    if h["magic"] != MAGIC:
        fail(f"{path}: bad magic 0x{h['magic']:08x}")
    if h["version"] != VERSION:
        fail(f"{path}: unsupported version {h['version']}")
    if h["header_bytes"] != HEADER_BYTES:
        fail(f"{path}: header_bytes {h['header_bytes']} != {HEADER_BYTES}")
    canon = dict(h)
    for name in MUTABLE:
        canon[name] = b"" if name == "build_info" else 0
    canon["build_info"] = h["build_info"]
    blob = struct.pack(HEADER_FMT, *(canon[name] for name in FIELDS))
    if zlib.crc32(blob) & 0xFFFFFFFF != h["identity_crc"]:
        fail(f"{path}: identity CRC mismatch (corrupt header)")
    return h


def check_segment(path: str) -> tuple[dict, list, str]:
    with open(path, "rb") as f:
        raw = f.read()
    h = parse_header(raw, path)
    count = h["event_count"]
    if count > h["event_capacity"]:
        fail(f"{path}: event_count {count} > capacity {h['event_capacity']}")
    avail = (len(raw) - HEADER_BYTES) // EVENT_BYTES
    if count > avail:
        fail(f"{path}: event_count {count} exceeds file ({avail} slots)")
    events = []
    last_t = {}
    for i in range(count):
        off = HEADER_BYTES + i * EVENT_BYTES
        (t, detail, assoc, seq, kind, reason,
         ptype, origin, _pad) = struct.unpack_from(EVENT_FMT, raw, off)
        if not 1 <= kind <= MAX_KIND:
            fail(f"{path}: slot {i} has invalid kind {kind}")
        if reason >= REASON_COUNT:
            fail(f"{path}: slot {i} has invalid drop reason {reason}")
        if t < last_t.get(origin, 0):
            fail(f"{path}: slot {i} time {t} runs backwards for "
                 f"origin {origin}")
        last_t[origin] = t
        events.append((t, kind, assoc, seq, reason, ptype, origin, detail))
    metrics = ""
    if h["metrics_offset"] and h["metrics_bytes"]:
        lo, n = h["metrics_offset"], h["metrics_bytes"]
        if lo + n > len(raw):
            fail(f"{path}: metrics blob overruns the file")
        blob = raw[lo:lo + n]
        if zlib.crc32(blob) & 0xFFFFFFFF != h["metrics_crc"]:
            fail(f"{path}: metrics blob CRC mismatch")
        metrics = blob.decode("utf-8", errors="replace")
    return h, events, metrics


def reconcile(log_path: str, kinds: dict) -> None:
    text = open(log_path, errors="replace").read()
    m = re.search(r"delivered:\s+(\d+)/(\d+) messages", text)
    if not m:
        fail(f"{log_path}: no 'delivered: X/Y messages' line to reconcile")
    live_delivered = int(m.group(1))
    rec_delivered = kinds.get(11, 0)  # kDelivered
    if rec_delivered != live_delivered:
        fail(f"recording holds {rec_delivered} delivered events but the "
             f"live run reported {live_delivered}")
    m = re.search(r"network:\s+frames=(\d+) bytes=\d+ lost=(\d+)", text)
    if not m:
        fail(f"{log_path}: no network frames line to reconcile")
    frames, lost = int(m.group(1)), int(m.group(2))
    # The chaos line's lost counter excludes partition drops, which get
    # their own link-down tally; the recording's net-drop events cover both.
    m = re.search(r"link-down=(\d+)", text)
    link_down = int(m.group(1)) if m else 0
    # Terminal fates: every frame the simulated network accepted was either
    # delivered or dropped, and the recording saw each verdict exactly once.
    # Chaos duplicate copies get their own kNetDuplicated terminal event
    # and stay outside the frames counter.
    net_delivered = kinds.get(13, 0)   # kNetDelivered
    net_dropped = kinds.get(14, 0)     # kNetDropped
    net_duplicated = kinds.get(15, 0)  # kNetDuplicated
    if net_dropped != lost + link_down:
        fail(f"recording holds {net_dropped} net-drop events but the live "
             f"run lost {lost} frames (+{link_down} link-down)")
    if net_delivered + net_dropped != frames:
        fail(f"terminal network fates don't reconcile: "
             f"{net_delivered} delivered + {net_dropped} dropped != "
             f"{frames} frames")
    print(f"  reconciled with {log_path}: {live_delivered} deliveries, "
          f"{frames} frames = {net_delivered} delivered + {net_dropped} "
          f"dropped (+{net_duplicated} duplicated copies)")


def main() -> None:
    args = sys.argv[1:]
    if not args:
        fail(f"usage: {sys.argv[0]} DIR [--sim-output LOG] "
             f"[--expect-crash SIGNO]")
    flight_dir = args[0]
    sim_output = None
    expect_crash = None
    i = 1
    while i < len(args):
        if args[i] == "--sim-output" and i + 1 < len(args):
            sim_output = args[i + 1]
            i += 2
        elif args[i] == "--expect-crash" and i + 1 < len(args):
            expect_crash = int(args[i + 1])
            i += 2
        else:
            fail(f"unknown argument {args[i]}")

    try:
        names = sorted(n for n in os.listdir(flight_dir)
                       if n.endswith(".alfr"))
    except OSError as e:
        fail(f"{flight_dir}: {e}")
    if not names:
        fail(f"{flight_dir}: no .alfr segments")

    kinds = {}
    total_events = 0
    lost = 0
    next_index = {}   # shard -> expected first_event_index
    saw_final = False
    saw_crash = None
    saw_build_info = False
    node_ids = set()
    for name in names:
        path = os.path.join(flight_dir, name)
        h, events, metrics = check_segment(path)
        node_ids.add(h["node_id"])
        shard = h["shard_index"]
        if shard in next_index and h["first_event_index"] != next_index[shard]:
            fail(f"{path}: first_event_index {h['first_event_index']} breaks "
                 f"the chain (expected {next_index[shard]})")
        next_index[shard] = h["first_event_index"] + len(events)
        total_events += len(events)
        lost = max(lost, h["events_lost"])
        if h["finalized"]:
            saw_final = True
        if h["crash_signal"]:
            saw_crash = h["crash_signal"]
        if "alpha_build_info{" in metrics:
            saw_build_info = True
        build = h["build_info"].rstrip(b"\0").decode("utf-8",
                                                     errors="replace")
        if build.count("|") != 2:
            fail(f"{path}: build_info '{build}' is not "
                 f"'version|backend|compiler'")
        for ev in events:
            kinds[ev[1]] = kinds.get(ev[1], 0) + 1

    if len(node_ids) != 1:
        fail(f"{flight_dir}: segments disagree on node id ({node_ids})")
    if expect_crash is not None:
        if saw_crash != expect_crash:
            fail(f"{flight_dir}: expected crash_signal {expect_crash}, "
                 f"recording says {saw_crash}")
        if saw_final:
            fail(f"{flight_dir}: crashed recording must not be finalized")
    else:
        if not saw_final:
            fail(f"{flight_dir}: no finalized segment (unclean shutdown?)")
        if not saw_build_info:
            fail(f"{flight_dir}: metrics snapshot lacks alpha_build_info")
    if sim_output:
        reconcile(sim_output, kinds)
    state = (f"crash-flushed (signal {saw_crash})" if saw_crash
             else "cleanly finalized")
    print(f"OK: {flight_dir}: {len(names)} segment(s), {total_events} "
          f"events, {lost} lost, {state}, headers and events valid")


if __name__ == "__main__":
    main()
