#!/usr/bin/env python3
"""CI gate for the observability perf-smoke job.

Compares two bench_hotpath JSON outputs -- one with tracing disabled, one
with a trace ring installed for the whole run (--traced) -- and enforces:

  1. Zero-allocation rows stay at exactly 0 allocs/op in BOTH runs. The
     legacy and merkle rows allocate by design (returning digests / building
     trees) and are excluded; the seed-only walker amortizes one checkpoint
     table allocation over ~16k steps and only has to stay tiny.
  2. Tracing costs < 5% on the hot path: the geometric mean of per-row
     traced/untraced ns-per-op ratios must stay below 1.05. A geomean over
     all rows is used instead of a per-row gate because individual ns-scale
     rows jitter more than 5% even on an idle machine; a systematic
     regression moves the whole distribution. The trace_emit row is the
     instrument itself, not an instrumented path, so it is excluded.

Usage: check_perf_smoke.py UNTRACED.json TRACED.json
"""

import json
import math
import sys

# Rows that must never allocate, traced or not (PR 3's zero-alloc hot path).
ZERO_ALLOC_ROWS = {
    "chain_step",
    "prefix_mac",
    "hmac_per_call",
    "hmac_cached",
    "trace_emit",
}
# By-design allocators, excluded from the zero-alloc gate.
EXEMPT_ROWS = {"chain_step_legacy", "merkle_build_64", "merkle_s2_emit"}
# Amortized allocators: one setup allocation spread over many ops.
AMORTIZED_MAX = 0.01
# Rows excluded from the traced-vs-untraced ns/op comparison.
NO_COMPARE_ROWS = {"trace_emit"}
GEOMEAN_LIMIT = 1.05


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_allocs(label: str, rows: list) -> None:
    for row in rows:
        name, allocs = row["name"], row["allocs_per_op"]
        if name in ZERO_ALLOC_ROWS:
            if allocs != 0:
                fail(f"{label}: {name} allocates {allocs}/op (must be 0)")
        elif name not in EXEMPT_ROWS:
            if allocs > AMORTIZED_MAX:
                fail(f"{label}: {name} allocates {allocs}/op "
                     f"(amortized limit {AMORTIZED_MAX})")


def main() -> None:
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} UNTRACED.json TRACED.json")
    untraced = json.load(open(sys.argv[1]))
    traced = json.load(open(sys.argv[2]))
    if untraced.get("traced") is not False:
        fail("first argument must be an untraced run")
    if traced.get("traced") is not True:
        fail("second argument must be a --traced run")

    u_rows, t_rows = untraced["results"], traced["results"]
    if [r["name"] for r in u_rows] != [r["name"] for r in t_rows]:
        fail("row names differ between runs")

    check_allocs("untraced", u_rows)
    check_allocs("traced", t_rows)

    log_ratios = []
    for u, t in zip(u_rows, t_rows):
        if u["name"] in NO_COMPARE_ROWS:
            continue
        ratio = t["ns_per_op"] / u["ns_per_op"]
        log_ratios.append(math.log(ratio))
        print(f"  {u['name']:24} {u['ns_per_op']:10.1f} -> "
              f"{t['ns_per_op']:10.1f} ns/op  ({ratio:.3f}x)")
    geomean = math.exp(sum(log_ratios) / len(log_ratios))
    print(f"  geomean traced/untraced: {geomean:.4f} (limit {GEOMEAN_LIMIT})")
    if geomean > GEOMEAN_LIMIT:
        fail(f"tracing overhead geomean {geomean:.4f} > {GEOMEAN_LIMIT}")
    print("OK: zero-alloc rows clean, tracing overhead within budget")


if __name__ == "__main__":
    main()
