#!/usr/bin/env python3
"""CI gate for the observability perf-smoke job.

Compares two bench_hotpath JSON outputs -- one with tracing disabled, one
with a trace ring installed for the whole run (--traced) -- and enforces:

  1. Zero-allocation rows stay at exactly 0 allocs/op in BOTH runs. The
     legacy and merkle rows allocate by design (returning digests / building
     trees) and are excluded; the seed-only walker amortizes one checkpoint
     table allocation over ~16k steps and only has to stay tiny.
  2. Tracing costs < 5% on the hot path: the geometric mean of per-row
     traced/untraced ns-per-op ratios must stay below 1.05. A geomean over
     all rows is used instead of a per-row gate because individual ns-scale
     rows jitter more than 5% even on an idle machine; a systematic
     regression moves the whole distribution. The trace_emit row is the
     instrument itself, not an instrumented path, so it is excluded.

With --latency it instead validates a bench_latency_rtt JSON artifact
(BENCH_latency.json): schema shape, delivery >= 1.5 RTT within tolerance of
the paper's minimum, reliable ack ~2 RTT, and a TESLA baseline that is
RTT-bound (worse than ALPHA).

With --sharded it validates a bench_sharded JSON artifact
(BENCH_sharded.json): schema shape, an association sweep that reaches 10^6
concurrent associations with every association established and every message
delivered and zero ring overflows, and a complete 1/2/4-worker sweep. The
worker sweep's goodput must additionally be monotone from 1 to 4 workers --
but only when the recorded hardware_concurrency is >= 4: on fewer cores the
extra threads only add contention, so the scaling claim is untestable there
and the gate degrades to completeness checks.

With --relay it validates a bench_relay_mpps JSON artifact
(BENCH_relay_mpps.json): schema shape, a complete assoc x batch mpps sweep
in which every frame was verified and forwarded with zero drops and the
best batched row beats the scalar baseline for every assoc count (the
whole point of the fast path -- the margin is printed), plus a complete
1/2/4-worker relay sweep with full delivery, zero relay drops, and zero
ring overflows. Multi-worker scaling is only enforced when the recorded
hardware_concurrency is >= 4, mirroring the --sharded gate.

With --adaptive it validates a bench_adaptive JSON artifact
(BENCH_adaptive.json): schema shape with the three seeded chaos scenarios
(Gilbert-Elliott phase shift, partition cycle, loss ramp), an adaptive row
per scenario that delivered every submitted message, and an aggregate in
which the adaptive controller's goodput x efficiency score beats every
static (mode, batch) ladder rung while having actually switched profiles
and applied reconfigurations on the live association.

With --recorded it compares a --traced run against a --recorded run (the
same trace ring plus a flight recorder draining it once per measured
iteration) under the same discipline: zero-alloc rows stay at exactly 0 in
the recorded run too (the recorder's steady state must not allocate), and
the recorded/traced ns-per-op geomean stays below 1.05.

Usage: check_perf_smoke.py UNTRACED.json TRACED.json
       check_perf_smoke.py --recorded TRACED.json RECORDED.json
       check_perf_smoke.py --latency BENCH_latency.json
       check_perf_smoke.py --sharded BENCH_sharded.json
       check_perf_smoke.py --relay BENCH_relay_mpps.json
       check_perf_smoke.py --adaptive BENCH_adaptive.json
"""

import json
import math
import sys

# Rows that must never allocate, traced or not (PR 3's zero-alloc hot path).
ZERO_ALLOC_ROWS = {
    "chain_step",
    "prefix_mac",
    "hmac_per_call",
    "hmac_cached",
    "trace_emit",
}
# By-design allocators, excluded from the zero-alloc gate.
EXEMPT_ROWS = {"chain_step_legacy", "merkle_build_64", "merkle_s2_emit"}
# Amortized allocators: one setup allocation spread over many ops.
AMORTIZED_MAX = 0.01
# Rows excluded from the traced-vs-untraced ns/op comparison.
NO_COMPARE_ROWS = {"trace_emit"}
GEOMEAN_LIMIT = 1.05


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_allocs(label: str, rows: list) -> None:
    for row in rows:
        name, allocs = row["name"], row["allocs_per_op"]
        if name in ZERO_ALLOC_ROWS:
            if allocs != 0:
                fail(f"{label}: {name} allocates {allocs}/op (must be 0)")
        elif name not in EXEMPT_ROWS:
            if allocs > AMORTIZED_MAX:
                fail(f"{label}: {name} allocates {allocs}/op "
                     f"(amortized limit {AMORTIZED_MAX})")


def check_latency(path: str) -> None:
    doc = json.load(open(path))
    if doc.get("bench") != "latency_rtt":
        fail(f"{path}: bench != latency_rtt")
    if doc.get("schema_version") != 1:
        fail(f"{path}: unknown schema_version {doc.get('schema_version')}")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: empty results")
    hops_seen = set()
    for row in rows:
        for key in ("hops", "reliable", "delivery_rtt", "ack_rtt"):
            if key not in row:
                fail(f"{path}: result row missing {key}")
        hops, reliable = row["hops"], row["reliable"]
        hops_seen.add(hops)
        delivery, ack = row["delivery_rtt"], row["ack_rtt"]
        # The paper's floor is 1.5 RTT (S1-A1-S2); the simulator adds a
        # polling-granularity epsilon on top, shrinking with hop count.
        if not 1.5 <= delivery <= 1.65:
            fail(f"{path}: {hops}-hop delivery {delivery} RTT outside "
                 f"[1.5, 1.65]")
        if reliable and not 2.0 <= ack <= 2.15:
            fail(f"{path}: {hops}-hop reliable ack {ack} RTT outside "
                 f"[2.0, 2.15]")
        if not reliable and ack != 0:
            fail(f"{path}: unreliable row reports an ack RTT")
    if not {1, 2, 4} <= hops_seen:
        fail(f"{path}: expected 1/2/4-hop rows, got {sorted(hops_seen)}")
    tesla = doc.get("tesla_baseline")
    if not isinstance(tesla, dict) or "verification_rtt" not in tesla:
        fail(f"{path}: missing tesla_baseline")
    if tesla["verification_rtt"] <= 2.0:
        fail(f"{path}: TESLA baseline {tesla['verification_rtt']} RTT "
             f"should exceed ALPHA's (disclosure-delay bound)")
    print(f"OK: {path} schema valid; delivery ~1.5 RTT, reliable ack ~2 RTT, "
          f"TESLA baseline {tesla['verification_rtt']} RTT")


def check_sharded(path: str) -> None:
    doc = json.load(open(path))
    if doc.get("bench") != "sharded":
        fail(f"{path}: bench != sharded")
    if doc.get("schema_version") != 1:
        fail(f"{path}: unknown schema_version {doc.get('schema_version')}")
    hw = doc.get("hardware_concurrency")
    if not isinstance(hw, int) or hw < 1:
        fail(f"{path}: missing/invalid hardware_concurrency")

    assoc_rows = doc.get("assoc_sweep")
    if not isinstance(assoc_rows, list) or not assoc_rows:
        fail(f"{path}: empty assoc_sweep")
    sizes = set()
    for row in assoc_rows:
        for key in ("assocs", "workers", "established", "delivered",
                    "ring_overflows"):
            if key not in row:
                fail(f"{path}: assoc_sweep row missing {key}")
        sizes.add(row["assocs"])
        if row["established"] != row["assocs"]:
            fail(f"{path}: {row['assocs']}-assoc row established only "
                 f"{row['established']}")
        if row["delivered"] != row["assocs"]:
            fail(f"{path}: {row['assocs']}-assoc row delivered only "
                 f"{row['delivered']}")
        if row["ring_overflows"] != 0:
            fail(f"{path}: {row['assocs']}-assoc row overflowed rings "
                 f"{row['ring_overflows']} times")
    if max(sizes) < 1_000_000:
        fail(f"{path}: assoc sweep stops at {max(sizes)}; the committed "
             f"artifact must demonstrate 10^6 concurrent associations")

    worker_rows = doc.get("worker_sweep")
    if not isinstance(worker_rows, list) or not worker_rows:
        fail(f"{path}: empty worker_sweep")
    goodput = {}
    for row in worker_rows:
        for key in ("workers", "messages", "delivered",
                    "goodput_msgs_per_s"):
            if key not in row:
                fail(f"{path}: worker_sweep row missing {key}")
        if row["delivered"] != row["messages"]:
            fail(f"{path}: {row['workers']}-worker row delivered "
                 f"{row['delivered']}/{row['messages']}")
        goodput[row["workers"]] = row["goodput_msgs_per_s"]
    if not {1, 2, 4} <= set(goodput):
        fail(f"{path}: expected 1/2/4-worker rows, got {sorted(goodput)}")
    if hw >= 4:
        if not goodput[1] <= goodput[2] <= goodput[4]:
            fail(f"{path}: goodput not monotone 1->4 workers on a "
                 f"{hw}-core host: {goodput[1]:.0f} / {goodput[2]:.0f} / "
                 f"{goodput[4]:.0f} msg/s")
        scaling = f"scaling {goodput[4] / goodput[1]:.2f}x at 4 workers"
    else:
        scaling = (f"scaling not gated (hardware_concurrency={hw}; "
                   f"gate requires >= 4 cores)")
    print(f"OK: {path} schema valid; 10^6-assoc sweep complete with zero "
          f"ring overflows; {scaling}")


def check_relay(path: str) -> None:
    doc = json.load(open(path))
    if doc.get("bench") != "relay_mpps":
        fail(f"{path}: bench != relay_mpps")
    if doc.get("schema_version") != 1:
        fail(f"{path}: unknown schema_version {doc.get('schema_version')}")
    hw = doc.get("hardware_concurrency")
    if not isinstance(hw, int) or hw < 1:
        fail(f"{path}: missing/invalid hardware_concurrency")

    rows = doc.get("mpps_sweep")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: empty mpps_sweep")
    scalar = {}   # assocs -> pkts_per_s
    batched = {}  # assocs -> best batched pkts_per_s
    for row in rows:
        for key in ("assocs", "engine", "batch", "frames", "forwarded",
                    "dropped", "pkts_per_s"):
            if key not in row:
                fail(f"{path}: mpps_sweep row missing {key}")
        if row["forwarded"] != row["frames"]:
            fail(f"{path}: {row['assocs']}-assoc {row['engine']} row "
                 f"forwarded {row['forwarded']}/{row['frames']}")
        if row["dropped"] != 0:
            fail(f"{path}: {row['assocs']}-assoc {row['engine']} row "
                 f"dropped {row['dropped']} authentic frames")
        a = row["assocs"]
        if row["engine"] == "scalar":
            scalar[a] = row["pkts_per_s"]
        else:
            batched[a] = max(batched.get(a, 0.0), row["pkts_per_s"])
    if set(scalar) != set(batched) or not scalar:
        fail(f"{path}: scalar/batched assoc counts differ "
             f"({sorted(scalar)} vs {sorted(batched)})")
    margins = []
    for a in sorted(scalar):
        if batched[a] <= scalar[a]:
            fail(f"{path}: batched pipeline ({batched[a]:.0f} pkts/s) does "
                 f"not beat scalar ({scalar[a]:.0f} pkts/s) at {a} assocs")
        margins.append(f"{a} assocs: {batched[a] / scalar[a]:.2f}x")

    worker_rows = doc.get("worker_sweep")
    if not isinstance(worker_rows, list) or not worker_rows:
        fail(f"{path}: empty worker_sweep")
    fwd_rate = {}
    for row in worker_rows:
        for key in ("workers", "messages", "delivered", "relay_dropped",
                    "relay_fwd_per_s", "ring_overflows"):
            if key not in row:
                fail(f"{path}: worker_sweep row missing {key}")
        if row["delivered"] != row["messages"]:
            fail(f"{path}: {row['workers']}-worker row delivered "
                 f"{row['delivered']}/{row['messages']}")
        if row["relay_dropped"] != 0:
            fail(f"{path}: {row['workers']}-worker row dropped "
                 f"{row['relay_dropped']} authentic frames at the relay")
        if row["ring_overflows"] != 0:
            fail(f"{path}: {row['workers']}-worker row overflowed rings "
                 f"{row['ring_overflows']} times")
        fwd_rate[row["workers"]] = row["relay_fwd_per_s"]
    if not {1, 2, 4} <= set(fwd_rate):
        fail(f"{path}: expected 1/2/4-worker rows, got {sorted(fwd_rate)}")
    if hw >= 4:
        if not fwd_rate[1] <= fwd_rate[4]:
            fail(f"{path}: relay forwarding rate regressed 1->4 workers on "
                 f"a {hw}-core host: {fwd_rate[1]:.0f} -> "
                 f"{fwd_rate[4]:.0f} fwd/s")
        scaling = f"scaling {fwd_rate[4] / fwd_rate[1]:.2f}x at 4 workers"
    else:
        scaling = (f"scaling not gated (hardware_concurrency={hw}; "
                   f"gate requires >= 4 cores)")
    print(f"OK: {path} schema valid; batched beats scalar "
          f"({', '.join(margins)}); worker sweep complete with zero drops "
          f"and overflows; {scaling}")


def check_adaptive(path: str) -> None:
    doc = json.load(open(path))
    if doc.get("bench") != "adaptive":
        fail(f"{path}: bench != adaptive")
    if doc.get("schema_version") != 1:
        fail(f"{path}: unknown schema_version {doc.get('schema_version')}")

    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or len(scenarios) < 3:
        fail(f"{path}: expected >= 3 scenarios")
    names = set()
    for sc in scenarios:
        for key in ("name", "chaos_seed", "duration_s", "rows"):
            if key not in sc:
                fail(f"{path}: scenario missing {key}")
        names.add(sc["name"])
        rows = sc["rows"]
        if not isinstance(rows, list) or not rows:
            fail(f"{path}: scenario {sc['name']} has no rows")
        adaptive_rows = [r for r in rows if r.get("adaptive")]
        if len(adaptive_rows) != 1:
            fail(f"{path}: scenario {sc['name']} needs exactly one "
                 f"adaptive row")
        for row in rows:
            for key in ("config", "adaptive", "submitted", "delivered",
                        "frames_sent", "score", "adapt_switches",
                        "reconfigs_applied"):
                if key not in row:
                    fail(f"{path}: {sc['name']}/{row.get('config')} row "
                         f"missing {key}")
        # The adaptive row must never trade delivery away: every submitted
        # message arrives in every scenario (statics are allowed to lose --
        # that is their score penalty).
        arow = adaptive_rows[0]
        if arow["delivered"] != arow["submitted"]:
            fail(f"{path}: adaptive row in {sc['name']} delivered "
                 f"{arow['delivered']}/{arow['submitted']}")
    if not {"ge_phase_shift", "partition_cycle", "loss_ramp"} <= names:
        fail(f"{path}: missing scenarios, got {sorted(names)}")

    agg = doc.get("aggregate")
    if not isinstance(agg, list) or not agg:
        fail(f"{path}: empty aggregate")
    adaptive_aggs = [a for a in agg if a.get("adaptive")]
    if len(adaptive_aggs) != 1:
        fail(f"{path}: need exactly one adaptive aggregate row")
    adap = adaptive_aggs[0]
    statics = [a for a in agg if not a.get("adaptive")]
    if len(statics) < 5:
        fail(f"{path}: expected the full static ladder, got "
             f"{[a.get('config') for a in statics]}")
    for a in statics:
        if adap["total_score"] <= a["total_score"]:
            fail(f"{path}: adaptive score {adap['total_score']:.3f} does "
                 f"not beat static {a['config']} "
                 f"({a['total_score']:.3f})")
    # The loop actually closed: the controller switched rungs and the
    # reconfigurations landed on the live association.
    if adap.get("adapt_switches", 0) <= 0:
        fail(f"{path}: adaptive run never switched profiles")
    if adap.get("reconfigs_applied", 0) <= 0:
        fail(f"{path}: adaptive run never applied a reconfiguration")
    if not adap.get("delivered_everything"):
        fail(f"{path}: adaptive run lost messages")
    margin = min(adap["total_score"] / a["total_score"]
                 for a in statics if a["total_score"] > 0)
    print(f"OK: {path} schema valid; adaptive beats every static rung "
          f"(min margin {margin:.2f}x), {adap['adapt_switches']} switches, "
          f"{adap['reconfigs_applied']} reconfigs, full delivery")


def compare_runs(base: dict, cand: dict, base_label: str,
                 cand_label: str) -> None:
    b_rows, c_rows = base["results"], cand["results"]
    if [r["name"] for r in b_rows] != [r["name"] for r in c_rows]:
        fail("row names differ between runs")

    check_allocs(base_label, b_rows)
    check_allocs(cand_label, c_rows)

    log_ratios = []
    for b, c in zip(b_rows, c_rows):
        if b["name"] in NO_COMPARE_ROWS:
            continue
        ratio = c["ns_per_op"] / b["ns_per_op"]
        log_ratios.append(math.log(ratio))
        print(f"  {b['name']:24} {b['ns_per_op']:10.1f} -> "
              f"{c['ns_per_op']:10.1f} ns/op  ({ratio:.3f}x)")
    geomean = math.exp(sum(log_ratios) / len(log_ratios))
    print(f"  geomean {cand_label}/{base_label}: {geomean:.4f} "
          f"(limit {GEOMEAN_LIMIT})")
    if geomean > GEOMEAN_LIMIT:
        fail(f"{cand_label} overhead geomean {geomean:.4f} > {GEOMEAN_LIMIT}")
    print(f"OK: zero-alloc rows clean, {cand_label} overhead within budget")


def check_recorded(traced_path: str, recorded_path: str) -> None:
    traced = json.load(open(traced_path))
    recorded = json.load(open(recorded_path))
    if traced.get("traced") is not True or traced.get("recorded") is True:
        fail("first argument must be a --traced (not --recorded) run")
    if recorded.get("recorded") is not True:
        fail("second argument must be a --recorded run")
    compare_runs(traced, recorded, "traced", "recorded")


def main() -> None:
    if len(sys.argv) == 3 and sys.argv[1] == "--latency":
        check_latency(sys.argv[2])
        return
    if len(sys.argv) == 3 and sys.argv[1] == "--sharded":
        check_sharded(sys.argv[2])
        return
    if len(sys.argv) == 3 and sys.argv[1] == "--relay":
        check_relay(sys.argv[2])
        return
    if len(sys.argv) == 3 and sys.argv[1] == "--adaptive":
        check_adaptive(sys.argv[2])
        return
    if len(sys.argv) == 4 and sys.argv[1] == "--recorded":
        check_recorded(sys.argv[2], sys.argv[3])
        return
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} [--latency LATENCY.json | "
             f"--sharded SHARDED.json | --relay RELAY_MPPS.json | "
             f"--adaptive ADAPTIVE.json | "
             f"--recorded TRACED.json RECORDED.json | "
             f"UNTRACED.json TRACED.json]")
    untraced = json.load(open(sys.argv[1]))
    traced = json.load(open(sys.argv[2]))
    if untraced.get("traced") is not False:
        fail("first argument must be an untraced run")
    if traced.get("traced") is not True:
        fail("second argument must be a --traced run")
    compare_runs(untraced, traced, "untraced", "traced")


if __name__ == "__main__":
    main()
