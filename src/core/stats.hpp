// Per-role accounting.
//
// Table 1 of the paper splits hash work per processed message into four
// categories (signature/MAC, chain creation, chain verification, (n)ack
// handling); Tables 2 and 3 account buffered bytes per role. The engines
// update these structs as they work, using ScopedHashOps around each crypto
// section so the counts reflect hashes actually executed, not a model.
#pragma once

#include <cstdint>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace alpha::core {

/// Hash operations split into the paper's Table 1 categories.
struct HashWork {
  std::uint64_t signature = 0;     // MAC / MT build / MT path verification
  std::uint64_t chain_create = 0;  // hash-chain construction
  std::uint64_t chain_verify = 0;  // hash-chain element verification
  std::uint64_t ack = 0;           // pre-(n)ack generation / verification

  std::uint64_t total() const noexcept {
    return signature + chain_create + chain_verify + ack;
  }
};

struct SignerStats {
  HashWork hashes;
  std::uint64_t messages_submitted = 0;
  std::uint64_t rounds_started = 0;
  std::uint64_t rounds_completed = 0;
  std::uint64_t rounds_failed = 0;
  std::uint64_t s1_sent = 0;
  std::uint64_t s2_sent = 0;
  std::uint64_t s1_retransmits = 0;
  std::uint64_t s2_retransmits = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t invalid_packets = 0;
};

struct VerifierStats {
  HashWork hashes;
  std::uint64_t s1_accepted = 0;
  std::uint64_t s2_accepted = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t a1_sent = 0;
  std::uint64_t a2_sent = 0;
  std::uint64_t invalid_packets = 0;   // failed chain/MAC checks
  std::uint64_t duplicate_packets = 0; // retransmissions answered from cache
};

struct RelayStats {
  HashWork hashes;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped_invalid = 0;      // failed authentication
  std::uint64_t dropped_unsolicited = 0;  // no S1/A1 context (flood filter)
  std::uint64_t messages_extracted = 0;   // §3.5 secure data extraction
  std::uint64_t acks_verified = 0;
  // Every drop above is also attributed to its trace::DropReason, so the
  // coarse counters stay scrape-compatible while the taxonomy explains each
  // one (exported as alpha_relay_dropped_total{reason=...}).
  std::uint64_t dropped_by_reason[trace::kDropReasonCount] = {};
  // Verify-and-forward wall time, recorded per flush batch by the batched
  // pipeline (scalar relays leave it empty: they are not instrumented, two
  // clock reads per frame would dominate the ns-scale MAC check).
  metrics::Histogram verify_batch_ns;     // ns per flushed batch
  std::uint64_t verify_batch_frames = 0;  // frames covered by those batches
};

// Accumulation: a rekey retires the engines, but their counters must keep
// contributing to association-lifetime totals (Host folds retired stats in,
// snapshots read the sums).
inline HashWork& operator+=(HashWork& a, const HashWork& b) noexcept {
  a.signature += b.signature;
  a.chain_create += b.chain_create;
  a.chain_verify += b.chain_verify;
  a.ack += b.ack;
  return a;
}

inline RelayStats& operator+=(RelayStats& a, const RelayStats& b) noexcept {
  a.hashes += b.hashes;
  a.forwarded += b.forwarded;
  a.dropped_invalid += b.dropped_invalid;
  a.dropped_unsolicited += b.dropped_unsolicited;
  a.messages_extracted += b.messages_extracted;
  a.acks_verified += b.acks_verified;
  for (std::size_t i = 0; i < trace::kDropReasonCount; ++i) {
    a.dropped_by_reason[i] += b.dropped_by_reason[i];
  }
  a.verify_batch_ns.merge(b.verify_batch_ns);
  a.verify_batch_frames += b.verify_batch_frames;
  return a;
}

inline SignerStats& operator+=(SignerStats& a, const SignerStats& b) noexcept {
  a.hashes += b.hashes;
  a.messages_submitted += b.messages_submitted;
  a.rounds_started += b.rounds_started;
  a.rounds_completed += b.rounds_completed;
  a.rounds_failed += b.rounds_failed;
  a.s1_sent += b.s1_sent;
  a.s2_sent += b.s2_sent;
  a.s1_retransmits += b.s1_retransmits;
  a.s2_retransmits += b.s2_retransmits;
  a.acks_received += b.acks_received;
  a.nacks_received += b.nacks_received;
  a.invalid_packets += b.invalid_packets;
  return a;
}

inline VerifierStats& operator+=(VerifierStats& a,
                                 const VerifierStats& b) noexcept {
  a.hashes += b.hashes;
  a.s1_accepted += b.s1_accepted;
  a.s2_accepted += b.s2_accepted;
  a.messages_delivered += b.messages_delivered;
  a.a1_sent += b.a1_sent;
  a.a2_sent += b.a2_sent;
  a.invalid_packets += b.invalid_packets;
  a.duplicate_packets += b.duplicate_packets;
  return a;
}

}  // namespace alpha::core
