#include "core/host.hpp"

#include <algorithm>
#include <unordered_map>

#include "trace/trace.hpp"

namespace alpha::core {

namespace {
hashchain::HashChain make_chain(const Config& config,
                                crypto::RandomSource& rng) {
  return hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng,
      config.chain_length);
}
}  // namespace

Host::Host(Config config, std::uint32_t assoc_id, bool initiator,
           crypto::RandomSource& rng, Callbacks callbacks, Options options)
    : config_(config),
      assoc_id_(assoc_id),
      initiator_(initiator),
      rng_(&rng),
      callbacks_(std::move(callbacks)),
      options_(options),
      sig_chain_(make_chain(config, rng)),
      ack_chain_(make_chain(config, rng)) {
  if (config_.chain_length % 2 != 0 || config_.chain_length < 4) {
    throw std::invalid_argument("Host: chain_length must be even and >= 4");
  }
}

wire::HandshakePacket Host::make_handshake(
    bool is_response,
    const std::optional<wire::ReconfigAnnounce>& reconfig) {
  wire::HandshakePacket hs;
  hs.hdr = {assoc_id_, hs_seq_};
  hs.is_response = is_response;
  hs.reconfig = reconfig;
  hs.algo = config_.algo;
  hs.chain_length = static_cast<std::uint32_t>(config_.chain_length);
  hs.sig_anchor_index = static_cast<std::uint32_t>(sig_chain_.length());
  hs.ack_anchor_index = static_cast<std::uint32_t>(ack_chain_.length());
  hs.sig_anchor = sig_chain_.anchor();
  hs.ack_anchor = ack_chain_.anchor();
  if (options_.identity != nullptr) {
    hs.sig_alg = options_.identity->alg();
    hs.public_key = options_.identity->encode_public();
    hs.signature =
        options_.identity->sign(config_.algo, hs.signed_payload(), *rng_);
  }
  return hs;
}

bool Host::validate_peer_handshake(const wire::HandshakePacket& hs) const {
  if (hs.hdr.assoc_id != assoc_id_) return false;
  // Monotonic handshake counter: a replayed (or stale) handshake cannot
  // reset the association to already-disclosed chains.
  if (hs.hdr.seq <= peer_hs_seq_ && peer_hs_seq_ != 0) return false;
  if (hs.algo != config_.algo) return false;
  if (hs.chain_length < 4) return false;
  if (hs.sig_anchor.size() != config_.digest_size() ||
      hs.ack_anchor.size() != config_.digest_size()) {
    return false;
  }
  if (options_.require_protected_peer) {
    if (hs.sig_alg == wire::SigAlg::kNone) return false;
    const auto peer = PeerIdentity::decode(hs.sig_alg, hs.public_key);
    if (!peer.has_value() ||
        !peer->verify(config_.algo, hs.signed_payload(), hs.signature)) {
      return false;
    }
  }
  return true;
}

void Host::start(std::uint64_t now_us) {
  if (!initiator_) return;
  if (established()) {
    // Revive an association whose *rekey* handshake exhausted its retransmit
    // budget (e.g. the path partitioned mid-rekey and later healed): resend
    // the same rekey HS1 with a fresh budget. The chains were already
    // rotated and the rekey already counted, so neither happens again.
    if (rekey_pending_ && failed_) {
      hs_retries_ = 0;
      failed_ = false;
      // Re-anchor the retransmission timer at this send. Leaving the stale
      // anchor made the next on_tick fire an immediate duplicate of the
      // frame sent right here, spending one retry of the fresh budget on a
      // copy the network had already carried.
      if (now_us != 0) last_hs_send_us_ = now_us;
      trace::emit(trace::EventKind::kPacketSent, assoc_id_, hs_seq_,
                  static_cast<std::uint8_t>(wire::PacketType::kHs1),
                  trace::DropReason::kNone, /*resend=*/1);
      callbacks_.send(
          make_handshake(/*is_response=*/false, announced_reconfig_).encode());
    }
    return;
  }
  if (!handshake_sent_) {
    handshake_sent_ = true;
    ++hs_seq_;
    trace::emit(trace::EventKind::kHandshakeStart, assoc_id_, hs_seq_,
                static_cast<std::uint8_t>(wire::PacketType::kHs1));
  }
  // Re-invocations retransmit the same HS1 (same seq, same anchors) and
  // replenish the retransmit budget; on_tick() retransmits automatically
  // while unestablished.
  hs_retries_ = 0;
  failed_ = false;
  if (now_us != 0) last_hs_send_us_ = now_us;
  trace::emit(trace::EventKind::kPacketSent, assoc_id_, hs_seq_,
              static_cast<std::uint8_t>(wire::PacketType::kHs1));
  callbacks_.send(
      make_handshake(/*is_response=*/false, announced_reconfig_).encode());
}

void Host::rotate_chains() {
  sig_chain_ = make_chain(config_, *rng_);
  ack_chain_ = make_chain(config_, *rng_);
}

void Host::maybe_begin_rekey(std::uint64_t now_us) {
  if (!initiator_ || rekey_pending_ || !established()) return;
  const bool threshold_hit =
      config_.rekey_threshold != 0 &&
      signer_->chain_remaining() < config_.rekey_threshold;
  // A staged reconfiguration needs its own rekey boundary even when the
  // chain still has plenty of headroom (and even with rekeying disabled by
  // threshold): this is how a request that arrived mid-rekey eventually
  // lands instead of being lost.
  if (!threshold_hit && !staged_reconfig_.has_value()) return;
  if (signer_->round_active()) {
    // Hold the boundary open: let the in-flight round finish but keep the
    // signer from chaining the backlog straight into the next round. A
    // deep post-outage queue would otherwise drain entirely on the old
    // profile before the switch could ever land (pausing only inhibits
    // new rounds -- the active round keeps retransmitting and settling).
    signer_->set_paused(true);
    return;
  }
  (void)force_rekey(now_us);
}

bool Host::request_reconfig(const wire::ReconfigAnnounce& reconfig,
                            std::uint64_t now_us) {
  if (!initiator_) return false;
  staged_reconfig_ = reconfig;  // latest request wins
  if (rekey_pending_ || !established()) return false;
  // Never tear down an active round for a reconfiguration. force_rekey()
  // rips the round and resubmits its unsettled messages -- the right move
  // for the mobility hook, where the old path is dead and at-least-once
  // resubmission is the only way forward. Here the path is live: a ripped
  // message whose S2 already landed (only its A2 was lost) would be
  // re-signed under the fresh chains and delivered a second time. Waiting
  // for the round boundary (maybe_begin_rekey, every submit/tick) keeps
  // reconfiguration switches exactly-once.
  if (signer_->round_active()) return false;
  return force_rekey(now_us);
}

void Host::apply_reconfig(const wire::ReconfigAnnounce& reconfig) {
  config_.mode = reconfig.mode;
  config_.batch_size = reconfig.batch_size;
  config_.merkle_group = reconfig.merkle_group;
  config_.max_retries = reconfig.max_retries;
  config_.rekey_threshold = reconfig.rekey_threshold;
  ++reconfigs_applied_;
}

bool Host::force_rekey(std::uint64_t now_us) {
  if (!initiator_ || rekey_pending_ || !established()) return false;
  rotate_chains();
  rekey_pending_ = true;
  signer_->set_paused(true);  // queue, but sign nothing until fresh chains
  // Snapshot the staged reconfiguration for this handshake: every
  // retransmission of this HS1 must carry the *same* announcement even if a
  // newer request supersedes it mid-flight (the superseding request stays
  // staged and triggers its own rekey afterwards).
  announced_reconfig_ = staged_reconfig_;
  ++hs_seq_;
  hs_retries_ = 0;
  last_hs_send_us_ = now_us;
  trace::emit(trace::EventKind::kRekeyStart, assoc_id_, hs_seq_,
              static_cast<std::uint8_t>(wire::PacketType::kHs1));
  trace::emit(trace::EventKind::kPacketSent, assoc_id_, hs_seq_,
              static_cast<std::uint8_t>(wire::PacketType::kHs1));
  callbacks_.send(
      make_handshake(/*is_response=*/false, announced_reconfig_).encode());
  return true;
}

void Host::reestablish(const wire::HandshakePacket& peer,
                       std::uint64_t now_us) {
  // The outgoing engines are about to be replaced: fold their counters into
  // the association-lifetime totals first, or every rekey would silently
  // reset the snapshot stats.
  retired_signer_stats_ += signer_->stats();
  retired_verifier_stats_ += verifier_->stats();
  // Preserve messages the old signer had queued but not yet pre-signed.
  auto backlog = signer_->drain_backlog();
  // Carry the cookie counter across the engine swap: a fresh engine restarts
  // at 1, which would hand out cookies the retired generations already used
  // (resubmitted backlog keeps its old cookies), making delivery reports
  // ambiguous -- and driving supervisor-side cookie mirrors out of sync.
  const std::uint64_t cookie_watermark = signer_->next_cookie();
  establish(peer, now_us);
  signer_->seed_cookies(cookie_watermark);
  for (auto& [cookie, payload] : backlog) {
    // resubmission: the retired engine already counted these messages.
    signer_->submit(std::move(payload), now_us, cookie,
                    /*resubmission=*/true);
  }
}

void Host::establish(const wire::HandshakePacket& peer, std::uint64_t now_us) {
  SignerEngine::Callbacks signer_cb;
  signer_cb.send = callbacks_.send;
  signer_cb.on_delivery = callbacks_.on_delivery;
  signer_ = std::make_unique<SignerEngine>(
      config_, assoc_id_, std::move(sig_chain_), peer.ack_anchor,
      peer.ack_anchor_index, std::move(signer_cb));

  VerifierEngine::Callbacks verifier_cb;
  verifier_cb.send = callbacks_.send;
  verifier_cb.on_message = [this](std::uint32_t, std::uint16_t,
                                  crypto::ByteView payload) {
    if (callbacks_.on_message) callbacks_.on_message(payload);
  };
  verifier_ = std::make_unique<VerifierEngine>(
      config_, assoc_id_, std::move(ack_chain_), peer.sig_anchor,
      peer.sig_anchor_index, std::move(verifier_cb), *rng_);

  while (!pre_establish_queue_.empty()) {
    auto& pending = pre_establish_queue_.front();
    const std::uint64_t host_cookie = pending.cookie;
    crypto::Bytes payload = std::move(pending.payload);
    pre_establish_queue_.pop_front();
    signer_->submit(std::move(payload), now_us, host_cookie);
  }
}

void Host::on_frame(crypto::ByteView frame, std::uint64_t now_us) {
  const auto packet = wire::decode(frame);
  if (!packet.has_value()) {
    // Corrupted in flight (or garbage injected); count it so chaos runs can
    // assert the rejection path fired.
    ++undecodable_frames_;
    trace::emit(trace::EventKind::kPacketDropped, assoc_id_, 0, 0,
                trace::DropReason::kDecodeError, frame.size());
    return;
  }

  if (const auto* hs = std::get_if<wire::HandshakePacket>(&*packet)) {
    const std::uint8_t hs_type = static_cast<std::uint8_t>(
        hs->is_response ? wire::PacketType::kHs2 : wire::PacketType::kHs1);
    const auto drop_hs = [&](trace::DropReason reason) {
      trace::emit(trace::EventKind::kPacketDropped, assoc_id_, hs->hdr.seq,
                  hs_type, reason);
    };
    // Replay accounting: a handshake whose counter does not advance is
    // rejected below (validate_peer_handshake) or answered from the cached
    // HS2. A counter strictly behind ours is a replay (or long-stale
    // retransmission); an exact match is a benign duplicate of the current
    // handshake. Conflating the two made chaos runs with duplication look
    // like they were under replay attack.
    if (hs->hdr.assoc_id == assoc_id_ && peer_hs_seq_ != 0 &&
        hs->hdr.seq <= peer_hs_seq_) {
      if (hs->hdr.seq < peer_hs_seq_) {
        ++replayed_handshakes_;
      } else {
        ++duplicate_handshakes_;
      }
    }
    // Duplicate HS1 (our HS2 may have been lost): re-answer idempotently
    // without resetting any chain state. Checked before the monotonic-seq
    // validation, which rightly rejects old counters otherwise.
    if (!hs->is_response && !initiator_ && established() &&
        hs->hdr.assoc_id == assoc_id_ && hs->hdr.seq == peer_hs_seq_ &&
        !last_hs_response_.empty()) {
      drop_hs(trace::DropReason::kDuplicateHandshake);
      trace::emit(trace::EventKind::kPacketSent, assoc_id_, hs_seq_,
                  static_cast<std::uint8_t>(wire::PacketType::kHs2),
                  trace::DropReason::kNone, /*resend=*/1);
      callbacks_.send(last_hs_response_);
      return;
    }
    if (!validate_peer_handshake(*hs)) {
      if (hs->hdr.assoc_id == assoc_id_ && peer_hs_seq_ != 0) {
        if (hs->hdr.seq < peer_hs_seq_) {
          drop_hs(trace::DropReason::kReplay);
          return;
        }
        if (hs->hdr.seq == peer_hs_seq_) {
          drop_hs(trace::DropReason::kDuplicateHandshake);
          return;
        }
      }
      drop_hs(trace::DropReason::kBadMac);
      return;
    }
    if (!hs->is_response) {
      if (initiator_) {  // initiators never answer an HS1
        drop_hs(trace::DropReason::kUnsolicited);
        return;
      }
      if (!established()) {
        // Initial bootstrap: answer with HS2, wire the engines. An announced
        // profile (rare at bootstrap, normal at rekey) is adopted before the
        // engines are built and echoed so the initiator knows it landed.
        peer_hs_seq_ = hs->hdr.seq;
        handshake_sent_ = true;
        ++hs_seq_;
        if (hs->reconfig.has_value()) apply_reconfig(*hs->reconfig);
        trace::emit(trace::EventKind::kPacketAccepted, assoc_id_,
                    hs->hdr.seq, hs_type);
        trace::emit(trace::EventKind::kPacketSent, assoc_id_, hs_seq_,
                    static_cast<std::uint8_t>(wire::PacketType::kHs2));
        last_hs_response_ =
            make_handshake(/*is_response=*/true, hs->reconfig).encode();
        callbacks_.send(last_hs_response_);
        establish(*hs, now_us);
        trace::emit(trace::EventKind::kEstablished, assoc_id_, hs->hdr.seq,
                    hs_type);
      } else {
        // Rekey request: rotate own chains, answer, swap engines. Any
        // announced profile takes effect *here*, before the fresh engines
        // are built, so the new generation starts on the new profile; the
        // echo in the HS2 (and in the cached duplicate answer) tells the
        // initiator to do the same. A retransmitted HS1 carries the same
        // announcement, and its duplicate is answered from the cached HS2
        // above -- the profile is applied exactly once per handshake seq.
        peer_hs_seq_ = hs->hdr.seq;
        rotate_chains();
        ++hs_seq_;
        if (hs->reconfig.has_value()) apply_reconfig(*hs->reconfig);
        trace::emit(trace::EventKind::kPacketAccepted, assoc_id_,
                    hs->hdr.seq, hs_type);
        trace::emit(trace::EventKind::kPacketSent, assoc_id_, hs_seq_,
                    static_cast<std::uint8_t>(wire::PacketType::kHs2));
        last_hs_response_ =
            make_handshake(/*is_response=*/true, hs->reconfig).encode();
        callbacks_.send(last_hs_response_);
        reestablish(*hs, now_us);
        trace::emit(trace::EventKind::kRekeyFinish, assoc_id_, hs->hdr.seq,
                    hs_type);
      }
      return;
    }
    // HS2 responses.
    if (!initiator_) {
      drop_hs(trace::DropReason::kUnsolicited);
      return;
    }
    if (!established()) {
      peer_hs_seq_ = hs->hdr.seq;
      hs_retries_ = 0;
      failed_ = false;
      if (announced_reconfig_.has_value() &&
          hs->reconfig == announced_reconfig_) {
        apply_reconfig(*announced_reconfig_);
        if (staged_reconfig_ == announced_reconfig_) staged_reconfig_.reset();
      }
      announced_reconfig_.reset();
      trace::emit(trace::EventKind::kPacketAccepted, assoc_id_, hs->hdr.seq,
                  hs_type);
      establish(*hs, now_us);
      trace::emit(trace::EventKind::kEstablished, assoc_id_, hs->hdr.seq,
                  hs_type);
    } else if (rekey_pending_) {
      peer_hs_seq_ = hs->hdr.seq;
      rekey_pending_ = false;
      hs_retries_ = 0;
      failed_ = false;
      // Apply the announced profile only on an exact echo: the responder
      // confirming a *different* (or absent) announcement means this HS2
      // answers some other handshake generation, and switching unilaterally
      // could desync the two ends' profiles. The staged request survives in
      // that case and triggers a follow-up rekey (maybe_begin_rekey), so
      // the reconfiguration is delayed, never lost. If a newer request
      // superseded the announced one mid-flight, the announced profile is
      // still applied (both ends agreed on it) and the newer one stays
      // staged for its own boundary.
      if (announced_reconfig_.has_value() &&
          hs->reconfig == announced_reconfig_) {
        apply_reconfig(*announced_reconfig_);
        if (staged_reconfig_ == announced_reconfig_) staged_reconfig_.reset();
      }
      announced_reconfig_.reset();
      trace::emit(trace::EventKind::kPacketAccepted, assoc_id_, hs->hdr.seq,
                  hs_type);
      reestablish(*hs, now_us);
      trace::emit(trace::EventKind::kRekeyFinish, assoc_id_, hs->hdr.seq,
                  hs_type);
    } else {
      drop_hs(trace::DropReason::kUnsolicited);
    }
    return;
  }

  if (!established()) {
    if (trace::enabled()) {
      std::uint8_t type = 0;
      std::uint32_t seq = 0;
      if (const auto t = wire::peek_type(frame)) {
        type = static_cast<std::uint8_t>(*t);
      }
      if (const auto hdr = wire::peek_header(frame)) seq = hdr->seq;
      trace::emit(trace::EventKind::kPacketDropped, assoc_id_, seq, type,
                  trace::DropReason::kUnsolicited);
    }
    return;
  }
  if (const auto* s1 = std::get_if<wire::S1Packet>(&*packet)) {
    verifier_->on_s1(*s1);
  } else if (const auto* s2 = std::get_if<wire::S2Packet>(&*packet)) {
    verifier_->on_s2(*s2);
  } else if (const auto* a1 = std::get_if<wire::A1Packet>(&*packet)) {
    signer_->on_a1(*a1, now_us);
  } else if (const auto* a2 = std::get_if<wire::A2Packet>(&*packet)) {
    signer_->on_a2(*a2, now_us);
  }
  // Rounds complete on frame arrival (the settling A2), so this is where a
  // held rekey boundary actually opens -- waiting for the next submit or
  // tick would let a deep backlog chain straight into the next round on
  // the old profile.
  maybe_begin_rekey(now_us);
}

std::uint64_t Host::submit(crypto::Bytes message, std::uint64_t now_us) {
  if (established()) {
    // Rotate *before* the signer could exhaust mid-burst: a paused signer
    // queues the message safely until the fresh chains arrive.
    maybe_begin_rekey(now_us);
    return signer_->submit(std::move(message), now_us);
  }
  const std::uint64_t cookie = 1'000'000'000ull + next_cookie_++;
  pre_establish_queue_.push_back(Pending{cookie, std::move(message)});
  return cookie;
}

void Host::retransmit_handshake(std::uint64_t now_us) {
  if (failed_ ||
      now_us - last_hs_send_us_ <
          retransmit_delay(config_, hs_retries_, hs_salt())) {
    return;
  }
  // Budget: a partitioned or dead peer must not provoke an endless
  // retransmit storm. start() or an inbound HS2 replenishes the budget.
  // A rekey announcing a *more robust* profile runs on that profile's
  // budget, not the old one: the controller demotes precisely because the
  // channel is failing, and the handshake that installs the fat retry
  // budget would otherwise exhaust the lean budget it is trying to replace
  // and fail the association mid-outage.
  int budget = config_.max_retries;
  if (announced_reconfig_.has_value()) {
    budget = std::max(budget, static_cast<int>(
                                  announced_reconfig_->max_retries));
  }
  if (hs_retries_ >= budget) {
    // Only the *establishment* handshake gives up: its peer may simply not
    // exist. An established association mid-rekey proved its peer moments
    // ago -- the outage belongs to the channel -- so instead of failing the
    // association (losing every queued message to an optimistic rekey fired
    // just before a partition), keep a slow HS1 heartbeat at the backoff
    // cap. The signer stays paused, messages queue, and the first healed
    // round trip completes the rekey.
    if (!established()) {
      failed_ = true;
      trace::emit(trace::EventKind::kAssocFailed, assoc_id_, hs_seq_,
                  static_cast<std::uint8_t>(wire::PacketType::kHs1),
                  trace::DropReason::kBudgetExhausted, hs_retries_);
      return;
    }
  } else {
    ++hs_retries_;
  }
  ++hs_retransmits_;
  last_hs_send_us_ = now_us;
  trace::emit(trace::EventKind::kRetransmit, assoc_id_, hs_seq_,
              static_cast<std::uint8_t>(wire::PacketType::kHs1),
              trace::DropReason::kNone, hs_retries_);
  // Retransmissions repeat the announced snapshot, not the (possibly newer)
  // staged request: the responder must see one consistent announcement per
  // handshake generation.
  callbacks_.send(
      make_handshake(/*is_response=*/false, announced_reconfig_).encode());
}

void Host::on_tick(std::uint64_t now_us) {
  if (!established()) {
    // Bootstrap robustness: retransmit the HS1 until the HS2 arrives.
    if (initiator_ && handshake_sent_) retransmit_handshake(now_us);
    return;
  }
  signer_->on_tick(now_us);
  maybe_begin_rekey(now_us);
  // A lost rekey HS1 would leave the signer paused forever: retransmit.
  if (rekey_pending_) retransmit_handshake(now_us);
}

std::optional<std::uint64_t> Host::next_deadline_us() const noexcept {
  if (failed_) return std::nullopt;
  const std::uint64_t hs_deadline =
      last_hs_send_us_ + retransmit_delay(config_, hs_retries_, hs_salt());
  if (!established()) {
    if (!initiator_ || !handshake_sent_) return std::nullopt;
    return hs_deadline;
  }
  std::optional<std::uint64_t> next = signer_->next_deadline_us();
  if (rekey_pending_ && (!next.has_value() || hs_deadline < *next)) {
    next = hs_deadline;
  }
  return next;
}

}  // namespace alpha::core
