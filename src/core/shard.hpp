// One shard of the node runtime: a transport-free association container.
//
// NodeShard is the demux/timer/bookkeeping core that used to live inside
// AlphaNode, extracted so the same logic can run in two shapes:
//
//  * AlphaNode (core/node.hpp) -- exactly one shard bound directly to a
//    Transport: the classic single-threaded poll-loop node, API unchanged.
//  * ShardedNode (core/sharded_node.hpp) -- N shards, each owning a
//    disjoint assoc-id-hash slice of the associations, fed over SPSC rings
//    by a dedicated I/O thread (or inline, deterministically, over the
//    simulator).
//
// A shard owns everything an association needs -- the Host engines, the
// hashed TimerWheel, the chain-material RNG, per-shard counters -- and
// touches nothing shared: frames come in through on_frame(), frames go out
// through an injected SendFn, and timer wakeups are either requested from a
// scheduler callback (single-threaded drive) or polled via advance_timers()
// (worker-thread drive). Strict state locality is what makes the sharded
// runtime lock-free: two shards never share a byte of mutable state, so the
// only synchronization in the system is the ring between a shard and the
// I/O thread.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/adapt.hpp"
#include "core/host.hpp"
#include "core/relay.hpp"
#include "core/relay_pipeline.hpp"
#include "core/timer_wheel.hpp"
#include "crypto/random.hpp"
#include "net/transport.hpp"
#include "trace/health.hpp"
#include "trace/metrics.hpp"
#include "trace/spans.hpp"

namespace alpha::core {

/// Point-in-time view of one association hosted by a node.
struct AssocSnapshot {
  std::uint32_t assoc_id = 0;
  bool initiator = false;
  bool established = false;
  bool rekey_pending = false;
  bool failed = false;                   // retransmit budget exhausted
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t rekeys_started = 0;
  std::uint64_t hs_retransmits = 0;
  std::uint64_t corrupt_frames = 0;      // failed full decode at the host
  std::uint64_t replayed_handshakes = 0; // stale handshake counters
  std::uint64_t duplicate_handshakes = 0;  // benign same-seq duplicates
  // Round progress of the signer side, for the health watchdog: a round
  // whose (seq, retries) stops changing while active is wedged.
  bool round_active = false;
  std::uint32_t round_seq = 0;
  std::uint32_t round_retries = 0;
  std::size_t backlog = 0;               // submitted, not yet in a round
  // Live protocol profile (reflects applied reconfigurations) and
  // adaptivity counters; the adapt_* fields stay zero without a controller.
  Mode mode = Mode::kBase;
  std::size_t batch = 0;                 // effective batch of the live config
  std::uint64_t reconfigs_applied = 0;
  std::uint64_t adapt_evaluations = 0;
  std::uint64_t adapt_switches = 0;
  std::size_t adapt_profile = 0;         // current ladder rung
  double adapt_loss_ewma = 0.0;
  // Association-lifetime engine stats (current + rekey-retired engines).
  SignerStats signer;      // zero until first established
  VerifierStats verifier;  // zero until first established
};

/// Aggregated node-level counters plus (optionally) per-association detail.
/// For a ShardedNode this is the scrape-time merge of every shard's local
/// counters; nothing here is maintained across shards on the hot path.
struct NodeSnapshot {
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t malformed_frames = 0;    // assoc-id peek failed
  std::uint64_t demux_misses = 0;        // no association/relay/accept matched
  std::uint64_t send_failures = 0;       // transport rejected a frame
  std::uint64_t accepted_handshakes = 0; // responders spawned on demand
  std::uint64_t timer_fires = 0;         // association on_tick invocations
  std::uint64_t rekeys_started = 0;
  std::size_t associations = 0;
  std::size_t established = 0;
  std::size_t failed = 0;                // assocs whose budget ran out
  std::uint64_t messages_delivered = 0;  // across all verifiers
  std::uint64_t messages_forged = 0;     // invalid at hosts + relay drops
  std::uint64_t corrupt_frames = 0;      // failed full decode at a host
  std::uint64_t duplicate_frames = 0;    // dup S1/S2 answered idempotently
  std::uint64_t replayed_handshakes = 0; // stale handshake counters
  std::uint64_t duplicate_handshakes = 0;  // benign same-seq duplicates
  std::uint64_t retransmits = 0;         // S1 + S2 + handshake retransmits
  std::uint64_t ring_overflows = 0;      // sharded runtime: frames refused
  std::uint64_t adapt_evaluations = 0;   // controller policy evaluations
  std::uint64_t adapt_switches = 0;      // profile switches decided
  std::uint64_t reconfigs_applied = 0;   // rekey-boundary profile applications
  RelayStats relay;                      // summed over relay bindings
  std::vector<AssocSnapshot> assocs;     // filled when requested
};

class NodeShard {
 public:
  struct Options {
    /// Protocol profile for accepted inbound associations; also the source
    /// of the default timer granularity (rto_us / 2).
    Config config;
    /// Host options for accepted inbound associations.
    Host::Options accept_host_options;
    /// Spawn a responder Host when an HS1 for an unknown association
    /// arrives. Off: such frames count as demux misses.
    bool accept_inbound = false;
    /// Seeds the shard's chain-material RNG (deterministic per seed).
    std::uint64_t seed = 1;
    /// Timer wheel resolution; 0 derives config.rto_us / 2.
    std::uint64_t tick_granularity_us = 0;
    /// Timer wheel ring size (horizon = granularity * slots).
    std::size_t wheel_slots = 256;
    /// Origin id stamped on trace events emitted while this shard runs.
    std::uint8_t trace_origin = 0;
    /// Enables the closed adaptivity loop: every *initiator* host gets an
    /// AdaptiveController fed from live telemetry (signer-stat deltas, a
    /// per-association health watchdog, span-derived delivery-latency
    /// quantiles when tracing is on); decisions are staged through
    /// Host::request_reconfig and land at the next rekey boundary.
    std::optional<AdaptiveController::Options> adaptive;
  };

  struct Callbacks {
    /// Authenticated message delivered on some association.
    std::function<void(std::uint32_t assoc_id, crypto::ByteView payload)>
        on_message;
    /// Delivery outcome for a submitted message.
    std::function<void(std::uint32_t assoc_id, std::uint64_t cookie,
                       DeliveryStatus)>
        on_delivery;
    /// Association finished (re-)establishment.
    std::function<void(std::uint32_t assoc_id)> on_established;
  };

  /// Emits one frame toward `peer`; false = the transport refused it.
  using SendFn = std::function<bool(net::PeerAddr, crypto::Bytes)>;
  /// Borrowed-view variant of SendFn for the relay fast path: the frame is
  /// only valid for the duration of the call. Optional -- when absent,
  /// relay forwards fall back to SendFn with a copy. A ring-backed runtime
  /// (ShardedNode) installs one so verified frames go straight from the
  /// pipeline's batch buffers into ring slots, no intermediate Bytes.
  using SendViewFn = std::function<bool(net::PeerAddr, crypto::ByteView)>;
  /// Requests a wakeup (advance_timers call) at absolute time `at_us`.
  /// Optional: a worker loop that polls advance_timers() needs none.
  using WakeupFn = std::function<void(std::uint64_t at_us)>;

  NodeShard(std::uint32_t index, Options options, Callbacks callbacks,
            SendFn send, WakeupFn wakeup = nullptr,
            SendViewFn send_view = nullptr);

  NodeShard(const NodeShard&) = delete;
  NodeShard& operator=(const NodeShard&) = delete;

  using ExtractFn = std::function<void(std::uint32_t assoc_id,
                                       std::uint32_t seq,
                                       std::uint16_t msg_index,
                                       crypto::ByteView payload)>;

  Host& add_host(std::uint32_t assoc_id, net::PeerAddr peer, bool initiator,
                 const Config& config, const Host::Options& host_options);

  /// Adds a scalar relay binding verifying-and-forwarding between
  /// `upstream` and `downstream` (see AlphaNode::add_relay). Relay state is
  /// keyed purely by association id, so bindings shard cleanly: ShardedNode
  /// registers one binding per shard, each seeing only the assoc-id slice
  /// the I/O thread routes to that shard.
  RelayEngine& add_relay(net::PeerAddr upstream, net::PeerAddr downstream,
                         RelayEngine::Options options,
                         ExtractFn on_extracted,
                         std::vector<std::uint32_t> assoc_ids);

  /// Adds a batched relay binding: same decision procedure, but frames are
  /// collected into verification batches of up to `batch` frames and
  /// emitted through the (view-based) send path in one go. Partial batches
  /// are flushed by flush_relays(), which the drive loops call at
  /// end-of-drain, so batching adds no idle latency.
  RelayPipeline& add_relay_pipeline(net::PeerAddr upstream,
                                    net::PeerAddr downstream,
                                    std::size_t batch,
                                    RelayEngine::Options options,
                                    ExtractFn on_extracted,
                                    std::vector<std::uint32_t> assoc_ids);

  /// Flushes every batched relay binding's pending frames.
  void flush_relays();
  /// Frames buffered in batched relay bindings, not yet verified.
  std::size_t relay_pending() const noexcept;
  /// Cross-thread mirror of relay_pending() (relaxed; owner-updated).
  std::size_t relay_pending_relaxed() const noexcept {
    return relay_pending_relaxed_.load(std::memory_order_relaxed);
  }

  /// Initiator bootstrap: sends the HS1 and arms the retransmission timer.
  void start(std::uint32_t assoc_id, std::uint64_t now_us);

  /// Submits one message on an association. Returns the delivery cookie
  /// (per-association, monotonically increasing from 1 in submit order).
  std::uint64_t submit(std::uint32_t assoc_id, crypto::Bytes payload,
                       std::uint64_t now_us);

  /// Feeds one inbound frame through the demux: association host, relay
  /// binding, or on-demand accept, in that order.
  void on_frame(net::PeerAddr from, crypto::ByteView frame,
                std::uint64_t now_us);

  /// Advances the timer wheel to `now_us`, firing due associations. Safe to
  /// call at any frequency: a no-op until the next wheel slot boundary.
  void advance_timers(std::uint64_t now_us);

  Host* host(std::uint32_t assoc_id) noexcept;
  const Host* host(std::uint32_t assoc_id) const noexcept;
  bool owns(std::uint32_t assoc_id) const noexcept {
    return assocs_.contains(assoc_id);
  }
  std::size_t association_count() const noexcept { return assocs_.size(); }
  std::size_t established_count() const noexcept;
  /// Lock-free established count for cross-thread reads (updated with
  /// relaxed stores from the owning thread after every state transition).
  std::size_t established_count_relaxed() const noexcept {
    return established_relaxed_.load(std::memory_order_relaxed);
  }

  std::size_t relay_count() const noexcept { return relays_.size(); }
  RelayEngine& relay(std::size_t i) { return *relays_.at(i)->engine; }
  /// The batched pipeline of binding `i`, or nullptr if it is scalar.
  RelayPipeline* relay_pipeline(std::size_t i) {
    return relays_.at(i)->pipeline.get();
  }
  /// Stats of binding `i`, whichever engine flavor backs it.
  const RelayStats& relay_stats(std::size_t i) const {
    const RelayBinding& b = *relays_.at(i);
    return b.pipeline ? b.pipeline->stats() : b.engine->stats();
  }

  std::uint32_t index() const noexcept { return index_; }
  std::uint64_t tick_granularity_us() const noexcept {
    return tick_granularity_;
  }
  bool timers_armed() const noexcept { return !wheel_.empty(); }
  std::uint64_t timer_fires() const noexcept { return timer_fires_; }
  std::uint64_t frames_in() const noexcept { return frames_in_; }

  /// Folds this shard's counters (and optionally per-assoc detail) into
  /// `s`. Called from the owning thread only; ShardedNode routes snapshot
  /// requests through the shard's ring to honor that.
  void snapshot_into(NodeSnapshot& s, bool per_assoc) const;

  /// Telemetry registry backing the adaptivity loop: per-assoc span
  /// histograms the controllers read, plus live alpha_adapt_* series.
  /// Owner-thread access only (same rule as snapshot_into).
  const metrics::Registry& adapt_registry() const noexcept {
    return adapt_registry_;
  }

 private:
  struct AssocEntry {
    std::uint32_t assoc_id = 0;
    net::PeerAddr peer = 0;
    std::unique_ptr<Host> host;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t rekeys_started = 0;
    bool was_established = false;   // one-way: gates the callback
    bool is_established = false;    // tracks the host; feeds the counter
    bool was_rekey_pending = false;
    bool timer_armed = false;
    std::uint64_t timer_deadline_us = 0;  // where the wheel entry sits
    // Adaptivity (initiators with Options::adaptive only). `adapt_seen_*`
    // hold the totals at the previous observation so the controller gets
    // per-window deltas; the health monitor is per-association so its
    // verdict depends only on this association's history -- never on which
    // shard (or how many shards) it happens to run in, which is what keeps
    // controller replay bit-identical at any worker count.
    std::unique_ptr<AdaptiveController> controller;
    std::unique_ptr<trace::HealthMonitor> health;
    SignerStats adapt_seen;
    std::uint64_t adapt_seen_hs_retx = 0;
    std::uint64_t adapt_last_us = 0;
  };

  // Exactly one of engine/pipeline is set per binding.
  struct RelayBinding {
    std::unique_ptr<RelayEngine> engine;
    std::unique_ptr<RelayPipeline> pipeline;
    net::PeerAddr upstream = 0;
    net::PeerAddr downstream = 0;
  };

  RelayBinding* relay_for(std::uint32_t assoc_id, net::PeerAddr from);
  /// Feeds the association's controller one observation window (interval
  /// gated) and stages any decided reconfiguration on the host.
  void maybe_adapt(AssocEntry& entry, std::uint64_t now_us);
  /// Emits one relay frame: through the view-based sender when installed,
  /// else through SendFn with an owning copy.
  bool send_frame(net::PeerAddr peer, crypto::ByteView frame);
  /// Post-activity bookkeeping: established/rekey transitions + timer arm.
  void after_activity(AssocEntry& entry, std::uint64_t now_us);
  void arm_timer(AssocEntry& entry, std::uint64_t now_us);
  static bool needs_tick(const Host& host);

  std::uint32_t index_;
  Options options_;
  Callbacks callbacks_;
  SendFn send_;
  WakeupFn wakeup_;
  SendViewFn send_view_;
  crypto::HmacDrbg rng_;
  std::uint64_t tick_granularity_;

  std::map<std::uint32_t, AssocEntry> assocs_;
  std::vector<std::unique_ptr<RelayBinding>> relays_;
  std::map<std::uint32_t, RelayBinding*> relay_by_assoc_;

  TimerWheel wheel_;
  std::vector<std::uint32_t> due_;  // scratch for wheel advance

  // Adaptivity telemetry runtime: the span builder incrementally ingests
  // the owning thread's trace ring (cursor-based, read-only) and exports
  // per-assoc delivery-latency histograms into the registry the
  // controllers read. With tracing off the latency inputs stay NaN ("no
  // evidence") and the loop runs on loss/health/budget signals alone.
  metrics::Registry adapt_registry_;
  trace::SpanBuilder adapt_spans_{&adapt_registry_};
  std::vector<trace::AssocHealthSample> health_scratch_;

  // Shard-local counters (per-assoc ones live in the entries). Plain
  // integers: only the owning thread writes or reads them, except the one
  // relaxed atomic mirror kept for cheap cross-thread progress checks.
  std::uint64_t frames_in_ = 0;
  std::uint64_t frames_out_ = 0;
  std::uint64_t malformed_frames_ = 0;
  std::uint64_t demux_misses_ = 0;
  std::uint64_t send_failures_ = 0;
  std::uint64_t accepted_handshakes_ = 0;
  std::uint64_t timer_fires_ = 0;
  std::atomic<std::size_t> established_relaxed_{0};
  std::atomic<std::size_t> relay_pending_relaxed_{0};
};

}  // namespace alpha::core
