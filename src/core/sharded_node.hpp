// Multi-core node runtime: N NodeShards behind lock-free SPSC rings.
//
// AlphaNode (core/node.hpp) drives one NodeShard from one thread -- fine for
// a simulator node or a small endpoint, but a single core caps how many
// associations one host can serve. ShardedNode is the supervisor/worker
// shape of the same runtime:
//
//   transport -> [I/O thread] --peek assoc id, shard_of()--> in-ring[i]
//                                                             |
//                                        [worker i]  <--------+
//                                            | on_frame/advance_timers
//                                            v
//                            out-ring[i] -> [I/O thread] -> send_batch()
//
// One dedicated I/O thread owns the transport: it drains inbound frames
// with batched syscalls (recvmmsg on UDP), demuxes each by the bounds-
// checked association-id peek (wire::peek_assoc_id -- no decode, no crypto),
// and hands it to the owning shard over a fixed-capacity SPSC ring. Each of
// the N workers owns one NodeShard -- a disjoint assoc-id-hash slice of the
// associations (core::shard_of) with its own timer wheel, RNG, and counters
// -- so workers share no mutable state at all; the rings are the only
// synchronization in the system, and they are wait-free on both sides.
// Outbound frames ride shard-owned out-rings back to the I/O thread, which
// gathers them into sendmmsg batches (partial kernel completions release
// exactly the accepted prefix; the tail stays queued).
//
// Backpressure is explicit, never blocking: a full in-ring drops the frame
// and counts an overflow -- indistinguishable from network loss, so the
// protocol's retransmission machinery recovers, exactly as under chaos. A
// full out-ring surfaces as a send failure on the shard.
//
// Two drive modes, selected by Transport::clock_thread_safe():
//
//  * threaded (UDP): real threads as drawn above. Engaged lazily on the
//    first start()/submit()/poll()/snapshot() so association setup needs no
//    locks. Callbacks fire on worker threads.
//  * inline (simulator): the virtual clock cannot be shared across threads,
//    so one thread plays every role deterministically -- frames still flow
//    through the same rings, the same shard_of demux, and the same
//    per-shard wheels, in virtual-arrival order. Same code, minus the
//    nondeterminism: seeded runs replay bit-identically.
//
// Scrape-time aggregation: snapshot() merges per-shard counters on demand
// (threaded mode round-trips a request through each shard's ring so shard
// state is only ever touched by its owner); nothing cross-shard is
// maintained on the hot path. Rare control operations (start, submit,
// snapshot requests) ride a third, supervisor->shard ring -- they cannot
// share the frame in-ring without giving it two producers -- multiplexed by
// FrameSlot::Kind and drained by the worker ahead of frames each pass.
//
// Relay bindings shard by association id, exactly like hosts: relay state
// (chain verifiers, buffered pre-signatures, round memos) is keyed purely
// by assoc id, so add_relay() registers one binding per shard and the I/O
// thread's shard_of() demux routes every frame of an association -- and
// therefore all of its relay state -- to one owning worker. N workers
// verify-and-forward concurrently with zero shared state; forwarded frames
// ride the same out-rings and sendmmsg batches as host traffic. Bindings
// default to the batched RelayPipeline (relay_batch > 1), falling back to
// the scalar RelayEngine for batch <= 1.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/shard.hpp"
#include "core/spsc_ring.hpp"
#include "net/transport.hpp"

namespace alpha::core {

class ShardedNode {
 public:
  struct Options {
    /// Per-shard runtime options. `seed` is the node seed; shard i derives
    /// seed + i so shards draw distinct chain material deterministically.
    NodeShard::Options shard;
    /// Number of shards (= worker threads in threaded mode). Clamped to 1+.
    std::uint32_t workers = 1;
    /// Capacity of each in/out ring (rounded up to a power of two).
    std::size_t ring_capacity = 1024;
    /// Runs at the top of each worker thread (threaded mode only), before
    /// any frame is processed -- the hook for installing thread-local trace
    /// sinks. Called with the shard index.
    std::function<void(std::uint32_t shard_index)> worker_init;
  };

  using Callbacks = NodeShard::Callbacks;

  /// Per-shard queue instrumentation, cheap enough to scrape live.
  struct ShardStats {
    std::uint32_t shard = 0;
    std::size_t in_depth = 0;        // frames queued toward the shard
    std::size_t out_depth = 0;       // frames queued toward the transport
    std::uint64_t in_overflows = 0;  // inbound frames dropped (ring full)
    std::uint64_t out_overflows = 0; // outbound frames refused (ring full)
    std::uint64_t frames_routed = 0; // inbound frames demuxed to this shard
    std::size_t relay_pending = 0;   // frames awaiting a relay batch flush
  };

  /// Takes ownership of the transport. In threaded mode (transport clock is
  /// thread-safe) worker threads launch lazily on the first
  /// start()/submit()/poll()/snapshot(); all add_* calls must happen before
  /// that. Callbacks fire on worker threads in threaded mode.
  ShardedNode(std::unique_ptr<net::Transport> transport, Options options,
              Callbacks callbacks = {});
  ~ShardedNode();

  ShardedNode(const ShardedNode&) = delete;
  ShardedNode& operator=(const ShardedNode&) = delete;

  /// Adds an initiator-side association toward `peer` on its owning shard.
  /// Only before the workers launch (throws std::logic_error after).
  Host& add_initiator(std::uint32_t assoc_id, net::PeerAddr peer);
  Host& add_initiator(std::uint32_t assoc_id, net::PeerAddr peer,
                      const Config& config,
                      const Host::Options& host_options);

  /// Adds a pre-provisioned responder-side association toward `peer`.
  Host& add_responder(std::uint32_t assoc_id, net::PeerAddr peer);
  Host& add_responder(std::uint32_t assoc_id, net::PeerAddr peer,
                      const Config& config,
                      const Host::Options& host_options);

  /// Adds a relay binding between `upstream` and `downstream` to every
  /// shard; each shard's binding is registered for the slice of `assoc_ids`
  /// that hashes to it, so ownership matches the I/O thread's routing.
  /// `relay_batch` > 1 selects the batched RelayPipeline with that flush
  /// size; <= 1 selects the scalar RelayEngine. Only before the workers
  /// launch (throws std::logic_error after).
  void add_relay(net::PeerAddr upstream, net::PeerAddr downstream,
                 std::vector<std::uint32_t> assoc_ids,
                 std::size_t relay_batch = 32,
                 RelayEngine::Options relay_options = {},
                 NodeShard::ExtractFn on_extracted = nullptr);

  /// Initiator bootstrap. Threaded mode: enqueued to the owning shard.
  void start(std::uint32_t assoc_id);

  /// Submits one message. Returns the delivery cookie (per-association,
  /// monotonically increasing from 1 in submit order -- mirrored by the
  /// supervisor in threaded mode, where the actual submit runs on the
  /// shard; the ring's FIFO order makes the mirror exact).
  std::uint64_t submit(std::uint32_t assoc_id, crypto::Bytes payload);

  /// Inline mode: drives the transport (frames + timers) for up to
  /// `timeout_ms` of virtual time and returns frames processed. Threaded
  /// mode: the I/O and worker threads drive themselves; poll() just sleeps
  /// up to `timeout_ms` and returns how many frames they routed meanwhile.
  std::size_t poll(int timeout_ms);

  std::uint32_t workers() const noexcept { return workers_; }
  bool threaded() const noexcept { return threaded_; }
  /// Which shard serves `assoc_id` (stable across rekeys by construction).
  std::uint32_t shard_for(std::uint32_t assoc_id) const noexcept {
    return shard_of(assoc_id, workers_);
  }

  /// Lock-free progress probe: shards' established counts via relaxed
  /// atomics. Safe from any thread at any time.
  std::size_t established_count() const noexcept;
  /// O(shards) in inline mode; one snapshot round-trip in threaded mode.
  std::size_t association_count();

  /// Merged node-level counters (+ per-assoc detail on request), plus the
  /// sum of ring overflows. Threaded mode round-trips a snapshot request
  /// through every shard's ring.
  NodeSnapshot snapshot(bool per_assoc = false);

  /// Live per-shard queue depths and overflow counters.
  std::vector<ShardStats> shard_stats() const;

  std::uint64_t now_us() const { return transport_->now_us(); }
  net::Transport& transport() noexcept { return *transport_; }

 private:
  struct Shard;

  Host& add_host(std::uint32_t assoc_id, net::PeerAddr peer, bool initiator,
                 const Config& config, const Host::Options& host_options);
  void ensure_running();
  void route_frame(net::PeerAddr from, crypto::ByteView frame,
                   std::uint64_t recv_us);
  /// Drains one shard's in-ring on the current thread (inline mode).
  void drain_shard_inline(Shard& sh);
  /// Applies one ring entry to its shard (both modes; shard-owner thread).
  void apply_slot(Shard& sh, const FrameSlot& slot, std::uint64_t now_us);
  /// Gathers one batch from `sh`'s out-ring into send_batch, releasing the
  /// accepted prefix. Returns frames sent.
  std::size_t flush_out_ring(Shard& sh);
  void schedule_shard_wakeup(Shard& sh, std::uint64_t at_us);
  void io_loop();
  void worker_loop(Shard& sh);

  // One shard's world: the NodeShard plus its two rings and the snapshot
  // mailbox. Workers touch only their own Shard; the I/O thread touches
  // only ring endpoints.
  struct Shard {
    std::unique_ptr<NodeShard> node;
    std::unique_ptr<FrameRing> in;    // I/O thread -> worker (frames)
    std::unique_ptr<FrameRing> ctrl;  // supervisor -> worker (control ops)
    std::unique_ptr<FrameRing> out;   // worker -> I/O thread
    std::atomic<std::uint64_t> frames_routed{0};
    // Snapshot mailbox: supervisor arms `ready=false`, pushes a kSnapshot
    // slot, spins; the worker fills `frag` and releases `ready`.
    NodeSnapshot frag;
    bool frag_per_assoc = false;
    std::atomic<bool> frag_ready{true};
    // Inline mode: per-shard wakeup dedup (mirrors AlphaNode's).
    bool wakeup_pending = false;
    std::uint64_t wakeup_at = 0;
  };

  std::unique_ptr<net::Transport> transport_;
  Options options_;
  std::uint32_t workers_;
  bool threaded_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Supervisor-side bookkeeping (control path only, never per-frame).
  std::mutex control_mu_;
  std::set<std::uint32_t> known_assocs_;
  std::map<std::uint32_t, std::uint64_t> next_cookie_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread io_thread_;
  std::vector<std::thread> worker_threads_;
};

}  // namespace alpha::core
