#include "core/identity.hpp"

#include "wire/codec.hpp"

namespace alpha::core {

namespace {

Bytes encode_rsa_public(const crypto::RsaPublicKey& key) {
  wire::Writer w;
  w.blob16(key.n.to_bytes_be());
  w.blob16(key.e.to_bytes_be());
  return w.take();
}

Bytes encode_dsa_public(const crypto::DsaPublicKey& key) {
  wire::Writer w;
  w.blob16(key.params.p.to_bytes_be());
  w.blob16(key.params.q.to_bytes_be());
  w.blob16(key.params.g.to_bytes_be());
  w.blob16(key.y.to_bytes_be());
  return w.take();
}

}  // namespace

Identity Identity::make_rsa(crypto::RandomSource& rng, std::size_t bits) {
  return Identity{crypto::rsa_generate(rng, bits)};
}

Identity Identity::make_dsa(crypto::RandomSource& rng, std::size_t l_bits,
                            std::size_t n_bits) {
  const crypto::DsaParams params = crypto::dsa_generate_params(rng, l_bits, n_bits);
  return Identity{crypto::dsa_generate_key(rng, params)};
}

Identity Identity::make_ecdsa(crypto::RandomSource& rng,
                              const crypto::EcCurve& curve) {
  return Identity{crypto::ecdsa_generate(curve, rng)};
}

wire::SigAlg Identity::alg() const noexcept {
  if (std::holds_alternative<crypto::RsaPrivateKey>(key_)) {
    return wire::SigAlg::kRsa;
  }
  if (std::holds_alternative<crypto::DsaPrivateKey>(key_)) {
    return wire::SigAlg::kDsa;
  }
  const auto& ec = std::get<crypto::EcdsaPrivateKey>(key_);
  return ec.pub.curve->name() == "P-256" ? wire::SigAlg::kEcdsaP256
                                         : wire::SigAlg::kEcdsaP160;
}

Bytes Identity::encode_public() const {
  if (const auto* rsa = std::get_if<crypto::RsaPrivateKey>(&key_)) {
    return encode_rsa_public(rsa->pub);
  }
  if (const auto* dsa = std::get_if<crypto::DsaPrivateKey>(&key_)) {
    return encode_dsa_public(dsa->pub);
  }
  return std::get<crypto::EcdsaPrivateKey>(key_).pub.encode();
}

Bytes Identity::sign(crypto::HashAlgo algo, ByteView payload,
                     crypto::RandomSource& rng) const {
  if (const auto* rsa = std::get_if<crypto::RsaPrivateKey>(&key_)) {
    return crypto::rsa_sign(*rsa, algo, payload);
  }
  if (const auto* dsa = std::get_if<crypto::DsaPrivateKey>(&key_)) {
    const std::size_t q_bytes = (dsa->pub.params.q.bit_length() + 7) / 8;
    return crypto::dsa_sign(*dsa, algo, payload, rng).encode(q_bytes);
  }
  const auto& ec = std::get<crypto::EcdsaPrivateKey>(key_);
  return crypto::ecdsa_sign(ec, algo, payload, rng)
      .encode(ec.pub.curve->order_bytes());
}

Bytes Identity::serialize_private() const {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(alg()));
  if (const auto* rsa = std::get_if<crypto::RsaPrivateKey>(&key_)) {
    for (const crypto::BigInt* v :
         {&rsa->pub.n, &rsa->pub.e, &rsa->d, &rsa->p, &rsa->q, &rsa->dp,
          &rsa->dq, &rsa->qinv}) {
      w.blob16(v->to_bytes_be());
    }
  } else if (const auto* dsa = std::get_if<crypto::DsaPrivateKey>(&key_)) {
    for (const crypto::BigInt* v :
         {&dsa->pub.params.p, &dsa->pub.params.q, &dsa->pub.params.g,
          &dsa->pub.y, &dsa->x}) {
      w.blob16(v->to_bytes_be());
    }
  } else {
    const auto& ec = std::get<crypto::EcdsaPrivateKey>(key_);
    w.blob16(ec.d.to_bytes_be());
  }
  return w.take();
}

std::optional<Identity> Identity::deserialize_private(ByteView data) {
  try {
    wire::Reader r{data};
    const auto alg = static_cast<wire::SigAlg>(r.u8());
    const auto read_big = [&r] {
      return crypto::BigInt::from_bytes_be(r.blob16());
    };
    switch (alg) {
      case wire::SigAlg::kRsa: {
        crypto::RsaPrivateKey key;
        key.pub.n = read_big();
        key.pub.e = read_big();
        key.d = read_big();
        key.p = read_big();
        key.q = read_big();
        key.dp = read_big();
        key.dq = read_big();
        key.qinv = read_big();
        r.expect_end();
        if (key.pub.n.is_zero() || key.p * key.q != key.pub.n) {
          return std::nullopt;
        }
        return Identity{std::move(key)};
      }
      case wire::SigAlg::kDsa: {
        crypto::DsaPrivateKey key;
        key.pub.params.p = read_big();
        key.pub.params.q = read_big();
        key.pub.params.g = read_big();
        key.pub.y = read_big();
        key.x = read_big();
        r.expect_end();
        if (key.pub.params.p.is_zero() || !(key.x < key.pub.params.q)) {
          return std::nullopt;
        }
        // Consistency: y must equal g^x mod p.
        if (crypto::BigInt::modexp(key.pub.params.g, key.x,
                                   key.pub.params.p) != key.pub.y) {
          return std::nullopt;
        }
        return Identity{std::move(key)};
      }
      case wire::SigAlg::kEcdsaP160:
      case wire::SigAlg::kEcdsaP256: {
        const crypto::EcCurve& curve = alg == wire::SigAlg::kEcdsaP256
                                           ? crypto::EcCurve::p256()
                                           : crypto::EcCurve::secp160r1();
        crypto::EcdsaPrivateKey key;
        key.d = read_big();
        r.expect_end();
        if (key.d.is_zero() || !(key.d < curve.order())) return std::nullopt;
        key.pub.curve = &curve;
        key.pub.point = curve.multiply(key.d, curve.generator());
        return Identity{std::move(key)};
      }
      default:
        return std::nullopt;
    }
  } catch (const wire::DecodeError&) {
    return std::nullopt;
  }
}

std::optional<PeerIdentity> PeerIdentity::decode(wire::SigAlg alg,
                                                 ByteView encoded) {
  try {
    wire::Reader r{encoded};
    if (alg == wire::SigAlg::kRsa) {
      crypto::RsaPublicKey key;
      key.n = crypto::BigInt::from_bytes_be(r.blob16());
      key.e = crypto::BigInt::from_bytes_be(r.blob16());
      r.expect_end();
      if (key.n.is_zero() || key.e.is_zero()) return std::nullopt;
      return PeerIdentity{std::move(key)};
    }
    if (alg == wire::SigAlg::kDsa) {
      crypto::DsaPublicKey key;
      key.params.p = crypto::BigInt::from_bytes_be(r.blob16());
      key.params.q = crypto::BigInt::from_bytes_be(r.blob16());
      key.params.g = crypto::BigInt::from_bytes_be(r.blob16());
      key.y = crypto::BigInt::from_bytes_be(r.blob16());
      r.expect_end();
      if (key.params.p.is_zero() || key.params.q.is_zero()) return std::nullopt;
      return PeerIdentity{std::move(key)};
    }
    if (alg == wire::SigAlg::kEcdsaP160 || alg == wire::SigAlg::kEcdsaP256) {
      const crypto::EcCurve& curve = alg == wire::SigAlg::kEcdsaP256
                                         ? crypto::EcCurve::p256()
                                         : crypto::EcCurve::secp160r1();
      auto key = crypto::EcdsaPublicKey::decode(curve, encoded);
      if (!key.has_value()) return std::nullopt;
      return PeerIdentity{std::move(*key)};
    }
  } catch (const wire::DecodeError&) {
  }
  return std::nullopt;
}

bool PeerIdentity::verify(crypto::HashAlgo algo, ByteView payload,
                          ByteView signature) const {
  if (const auto* rsa = std::get_if<crypto::RsaPublicKey>(&key_)) {
    return crypto::rsa_verify(*rsa, algo, payload, signature);
  }
  if (const auto* dsa = std::get_if<crypto::DsaPublicKey>(&key_)) {
    try {
      return crypto::dsa_verify(*dsa, algo, payload,
                                crypto::DsaSignature::decode(signature));
    } catch (const std::invalid_argument&) {
      return false;
    }
  }
  const auto& ec = std::get<crypto::EcdsaPublicKey>(key_);
  const auto sig = crypto::EcdsaSignature::decode(signature);
  if (!sig.has_value()) return false;
  return crypto::ecdsa_verify(ec, algo, payload, *sig);
}

wire::SigAlg PeerIdentity::alg() const noexcept {
  if (std::holds_alternative<crypto::RsaPublicKey>(key_)) {
    return wire::SigAlg::kRsa;
  }
  if (std::holds_alternative<crypto::DsaPublicKey>(key_)) {
    return wire::SigAlg::kDsa;
  }
  const auto& ec = std::get<crypto::EcdsaPublicKey>(key_);
  return ec.curve->name() == "P-256" ? wire::SigAlg::kEcdsaP256
                                     : wire::SigAlg::kEcdsaP160;
}

}  // namespace alpha::core
