// Signer-side protocol engine.
//
// Runs one simplex ALPHA channel as the signer (paper §3.1, Fig. 2):
// queues application messages, opens signature rounds (S1 with fresh chain
// element + pre-signatures), releases payloads on A1 (S2 with key
// disclosure), and, in reliable mode, matches A2 (n)acks against the
// pre-(n)ack commitments from the A1 (§3.2.2) or the AMT root (§3.3.3).
//
// Transport-agnostic and clockless: packets leave through the send callback,
// time enters through the `now_us` arguments. Retransmission of S1 (and S2
// when reliable) follows Config::rto_us / max_retries.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/stats.hpp"
#include "hashchain/chain.hpp"
#include "merkle/merkle.hpp"
#include "wire/packets.hpp"

namespace alpha::core {

using crypto::Bytes;
using crypto::ByteView;
using crypto::Digest;

/// Outcome of one submitted message, reported once known.
enum class DeliveryStatus : std::uint8_t {
  kAcked,      // verifier confirmed receipt (reliable mode)
  kNacked,     // verifier rejected the S2 payload
  kSent,       // S2 released; no confirmation in unreliable mode
  kFailed,     // retries exhausted or chain exhausted
};

class SignerEngine {
 public:
  struct Callbacks {
    /// Emits one encoded packet toward the verifier.
    std::function<void(Bytes)> send;
    /// Reports the fate of message `cookie` (the value submit() returned).
    std::function<void(std::uint64_t cookie, DeliveryStatus)> on_delivery;
  };

  /// `sig_chain` is this signer's own signature chain (ownership moves in);
  /// `ack_anchor`/`ack_anchor_index` come from the peer's handshake.
  SignerEngine(Config config, std::uint32_t assoc_id,
               hashchain::HashChain sig_chain, Digest ack_anchor,
               std::size_t ack_anchor_index, Callbacks callbacks);

  /// Queues a message; returns a cookie identifying it in on_delivery.
  /// Pass `cookie` to use a caller-assigned identifier instead (must be
  /// unique). `resubmission` re-queues a message drained from a retired
  /// engine during rekeying without counting it as a new submission.
  /// Throws std::length_error if the message cannot fit a packet.
  std::uint64_t submit(Bytes message, std::uint64_t now_us,
                       std::optional<std::uint64_t> cookie = std::nullopt,
                       bool resubmission = false);

  void on_a1(const wire::A1Packet& a1, std::uint64_t now_us);
  void on_a2(const wire::A2Packet& a2, std::uint64_t now_us);

  /// Drives retransmissions; call periodically (e.g. every rto/4).
  void on_tick(std::uint64_t now_us);

  /// Absolute time of the next retransmission deadline (with backoff), 0 if
  /// a backlog wants flushing as soon as possible, nullopt when idle. Lets
  /// the node runtime arm its timer wheel at the true deadline instead of a
  /// fixed cadence.
  std::optional<std::uint64_t> next_deadline_us() const noexcept;

  /// False once the signature chain cannot cover another round.
  bool can_send() const noexcept;

  /// Undisclosed signature-chain elements left (2 consumed per round).
  std::size_t chain_remaining() const noexcept { return walker_.remaining(); }

  /// Removes and returns all messages not yet confirmed delivered: the
  /// unsettled part of any in-flight round plus the queued backlog, as
  /// (cookie, payload). Used when rotating to fresh chains (rekeying).
  std::vector<std::pair<std::uint64_t, Bytes>> drain_backlog();

  /// While paused the engine queues submissions but opens no new rounds
  /// (used during a rekey handshake).
  void set_paused(bool paused) noexcept { paused_ = paused; }

  /// Messages queued but not yet in an active round.
  std::size_t backlog() const noexcept { return queue_.size(); }
  bool round_active() const noexcept { return round_.has_value(); }
  /// Round-progress probes for the health watchdog: sequence number and
  /// retransmit attempts of the in-flight round (0 when idle).
  std::uint32_t round_seq() const noexcept {
    return round_.has_value() ? round_->seq : 0;
  }
  std::uint32_t round_retries() const noexcept {
    return round_.has_value() ? static_cast<std::uint32_t>(round_->retries) : 0;
  }

  /// Bytes buffered for the active round: payloads + signature state
  /// (Table 2 signer column: n(m+h) for base/C, n*m + (2n-1)h for M).
  std::size_t buffered_bytes() const noexcept;

  const SignerStats& stats() const noexcept { return stats_; }
  std::uint32_t assoc_id() const noexcept { return assoc_id_; }

  /// Next auto-assigned submission cookie. Exposed so a rekey can carry the
  /// counter into the replacement engine: a fresh engine restarting at 1
  /// would re-issue cookies the retired generations already handed out.
  std::uint64_t next_cookie() const noexcept { return next_cookie_; }
  /// Advances the cookie counter to at least `next` (never moves backward).
  void seed_cookies(std::uint64_t next) noexcept {
    if (next > next_cookie_) next_cookie_ = next;
  }

 private:
  struct QueuedMessage {
    std::uint64_t cookie;
    Bytes payload;
    std::uint64_t submit_us = 0;  // when submit() queued it (span queueing)
  };

  struct Round {
    std::uint32_t seq = 0;
    std::vector<QueuedMessage> messages;
    std::size_t s1_index = 0;   // odd chain index in the S1
    Digest h_i;                 // signer element authenticating the S1
    Digest h_im1;               // MAC key, disclosed in S2 packets
    std::vector<Digest> macs;   // base / ALPHA-C
    std::vector<merkle::MerkleTree> trees;  // ALPHA-M (1) / ALPHA-C+M (many)
    Bytes s1_frame;             // cached for retransmission

    enum class State { kAwaitA1, kAwaitA2 } state = State::kAwaitA1;
    std::uint64_t last_send_us = 0;
    int retries = 0;

    // Reliable-mode commitments from the A1.
    wire::AckScheme scheme = wire::AckScheme::kNone;
    std::vector<Digest> pre_acks;
    std::vector<Digest> pre_nacks;
    Digest amt_root;
    std::uint16_t amt_count = 0;
    std::size_t a1_ack_index = 0;  // odd ack element index from the A1
    std::vector<std::uint8_t> settled;  // per message: 0 open, 1 done
    std::vector<std::uint8_t> nack_retries;  // selective-repeat budget used
    std::size_t settled_count = 0;
  };

  void maybe_start_round(std::uint64_t now_us, bool flush = false);
  std::uint64_t retransmit_salt() const noexcept;
  void send_s1(std::uint64_t now_us);
  void send_s2_batch(std::uint64_t now_us);
  Bytes make_s2(const Round& round, std::size_t index) const;
  void finish_round(bool success);
  void settle(std::size_t index, DeliveryStatus status);

  Config config_;
  std::uint32_t assoc_id_;
  hashchain::HashChain sig_chain_;
  hashchain::ChainWalker walker_;
  hashchain::ChainVerifier ack_verifier_;
  Callbacks callbacks_;

  std::deque<QueuedMessage> queue_;
  std::optional<Round> round_;
  std::uint32_t next_seq_ = 1;
  std::uint64_t next_cookie_ = 1;
  bool paused_ = false;
  SignerStats stats_;
};

}  // namespace alpha::core
