#include "core/path.hpp"

#include <stdexcept>

namespace alpha::core {

ProtectedPath::ProtectedPath(net::Network& network,
                             std::vector<net::NodeId> path, Config config,
                             std::uint32_t assoc_id, std::uint64_t seed,
                             Host::Options initiator_opts,
                             Host::Options responder_opts,
                             RelayEngine::Options relay_opts) {
  path_ = std::move(path);
  assoc_id_ = assoc_id;
  if (path_.size() < 2) {
    throw std::invalid_argument("ProtectedPath: need at least two nodes");
  }

  for (std::size_t i = 0; i < path_.size(); ++i) {
    const bool is_initiator_end = i == 0;
    const bool is_responder_end = i + 1 == path_.size();

    AlphaNode::Options opts;
    opts.config = config;
    // Seed layout mirrors the pre-runtime wiring: initiator-end chains from
    // `seed`, responder-end from `seed + 1`; relays draw no chain material.
    opts.seed = is_initiator_end ? seed
                : is_responder_end ? seed + 1
                                   : seed + 100 + i;
    // Stamp trace events with the simulator node id so a decoded trace can
    // attribute every engine decision to its position on the path.
    opts.trace_origin = static_cast<std::uint8_t>(path_[i]);

    AlphaNode::Callbacks cbs;
    if (is_initiator_end) {
      cbs.on_message = [this](std::uint32_t, crypto::ByteView payload) {
        at_initiator_.emplace_back(payload.begin(), payload.end());
      };
      cbs.on_delivery = [this](std::uint32_t, std::uint64_t cookie,
                               DeliveryStatus status) {
        initiator_deliveries_.emplace_back(cookie, status);
      };
    } else if (is_responder_end) {
      cbs.on_message = [this](std::uint32_t, crypto::ByteView payload) {
        at_responder_.emplace_back(payload.begin(), payload.end());
      };
    }

    auto node = std::make_unique<AlphaNode>(
        std::make_unique<net::SimTransport>(network, path_[i]),
        std::move(opts), std::move(cbs));

    if (is_initiator_end) {
      initiator_ =
          &node->add_initiator(assoc_id_, path_[1], config, initiator_opts);
    } else if (is_responder_end) {
      responder_ = &node->add_responder(assoc_id_, path_[i - 1], config,
                                        responder_opts);
    } else {
      const std::size_t relay_index = i - 1;
      auto on_extracted = [this, relay_index](std::uint32_t, std::uint32_t,
                                              std::uint16_t,
                                              crypto::ByteView payload) {
        if (extraction_handler_) extraction_handler_(relay_index, payload);
      };
      relays_.push_back(&node->add_relay(path_[i - 1], path_[i + 1],
                                         relay_opts, std::move(on_extracted)));
    }
    nodes_.push_back(std::move(node));
  }
}

void ProtectedPath::start(net::SimTime tick_horizon_us) {
  (void)tick_horizon_us;  // timers are activity-driven now; see header
  nodes_.front()->start(assoc_id_);
}

}  // namespace alpha::core
