#include "core/path.hpp"

#include <stdexcept>

namespace alpha::core {

ProtectedPath::ProtectedPath(net::Network& network,
                             std::vector<net::NodeId> path, Config config,
                             std::uint32_t assoc_id, std::uint64_t seed,
                             Host::Options initiator_opts,
                             Host::Options responder_opts,
                             RelayEngine::Options relay_opts)
    : network_(&network),
      path_(std::move(path)),
      config_(config),
      rng_a_(seed),
      rng_b_(seed + 1) {
  if (path_.size() < 2) {
    throw std::invalid_argument("ProtectedPath: need at least two nodes");
  }

  // Initiator host at path_.front() sends toward path_[1].
  Host::Callbacks a_cb;
  a_cb.send = [this](crypto::Bytes frame) {
    network_->send(path_.front(), path_[1], std::move(frame));
  };
  a_cb.on_message = [this](crypto::ByteView payload) {
    at_initiator_.emplace_back(payload.begin(), payload.end());
  };
  a_cb.on_delivery = [this](std::uint64_t cookie, DeliveryStatus status) {
    initiator_deliveries_.emplace_back(cookie, status);
  };
  initiator_ = std::make_unique<Host>(config_, assoc_id, /*initiator=*/true,
                                      rng_a_, std::move(a_cb),
                                      initiator_opts);

  // Responder host at path_.back() sends toward path_[size-2].
  Host::Callbacks b_cb;
  b_cb.send = [this](crypto::Bytes frame) {
    network_->send(path_.back(), path_[path_.size() - 2], std::move(frame));
  };
  b_cb.on_message = [this](crypto::ByteView payload) {
    at_responder_.emplace_back(payload.begin(), payload.end());
  };
  responder_ = std::make_unique<Host>(config_, assoc_id, /*initiator=*/false,
                                      rng_b_, std::move(b_cb),
                                      responder_opts);

  // Relays on the interior nodes.
  for (std::size_t i = 1; i + 1 < path_.size(); ++i) {
    RelayEngine::Callbacks r_cb;
    const net::NodeId self = path_[i];
    const net::NodeId toward_responder = path_[i + 1];
    const net::NodeId toward_initiator = path_[i - 1];
    r_cb.forward = [this, self, toward_responder, toward_initiator](
                       Direction dir, crypto::Bytes frame) {
      network_->send(self,
                     dir == Direction::kForward ? toward_responder
                                                : toward_initiator,
                     std::move(frame));
    };
    const std::size_t relay_index = i - 1;
    r_cb.on_extracted = [this, relay_index](std::uint32_t, std::uint32_t,
                                            std::uint16_t,
                                            crypto::ByteView payload) {
      if (extraction_handler_) extraction_handler_(relay_index, payload);
    };
    relays_.push_back(
        std::make_unique<RelayEngine>(config_, relay_opts, std::move(r_cb)));
  }

  // Attach receive handlers.
  network_->set_handler(path_.front(), [this](net::NodeId, crypto::ByteView f) {
    initiator_->on_frame(f, network_->sim().now());
  });
  network_->set_handler(path_.back(), [this](net::NodeId, crypto::ByteView f) {
    responder_->on_frame(f, network_->sim().now());
  });
  for (std::size_t i = 1; i + 1 < path_.size(); ++i) {
    RelayEngine* relay = relays_[i - 1].get();
    const net::NodeId prev = path_[i - 1];
    network_->set_handler(path_[i],
                          [relay, prev](net::NodeId from, crypto::ByteView f) {
                            const Direction dir = from == prev
                                                      ? Direction::kForward
                                                      : Direction::kReverse;
                            relay->on_frame(dir, f);
                          });
  }
}

void ProtectedPath::start(net::SimTime tick_horizon_us) {
  initiator_->start();

  // Self-rescheduling retransmission tick for both hosts. The closure
  // refers back to the member tick_ (not to a captured copy of itself), so
  // there is no shared_ptr reference cycle.
  const net::SimTime interval = std::max<net::SimTime>(config_.rto_us / 2, 1);
  auto& sim = network_->sim();
  tick_ = [this, &sim, interval, tick_horizon_us] {
    initiator_->on_tick(sim.now());
    responder_->on_tick(sim.now());
    if (sim.now() + interval <= tick_horizon_us) {
      sim.schedule_in(interval, tick_);
    }
  };
  sim.schedule_in(interval, tick_);
}

}  // namespace alpha::core
