// Lock-free single-producer / single-consumer rings for the sharded runtime.
//
// The supervisor/worker split (core/sharded_node.hpp) moves every frame
// between exactly two threads: the I/O thread that drains the transport and
// the one shard worker that owns the frame's association. That pairing makes
// the classic SPSC ring sufficient -- one atomic head owned by the producer,
// one atomic tail owned by the consumer, no CAS, no locks, wait-free on both
// sides. Capacity is fixed at construction (rounded up to a power of two) so
// the steady state never allocates; backpressure is explicit: try_push fails
// when the ring is full and the producer counts the overflow instead of
// blocking the I/O loop.
//
// Head and tail live on separate cache lines so the producer and consumer
// do not false-share; each side keeps a cached copy of the other's index to
// avoid re-reading the shared atomic on every operation (it only refreshes
// when the cached value says "full"/"empty").
//
// FrameRing specializes the idea for wire frames: every slot owns a
// reusable byte buffer that grows to the largest frame it ever carried and
// is never shrunk, so after warmup a push is a memcpy into recycled storage
// -- the 0 allocs/op guarantee of the PR 3/4 hot path extends across the
// thread hop.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "crypto/bytes.hpp"

namespace alpha::core {

// 64 on every target we build for; the std::hardware_destructive_
// interference_size constant is deliberately avoided because its value is
// an ABI hazard GCC warns about (-Winterference-size).
inline constexpr std::size_t kCacheLine = 64;

namespace detail {
constexpr std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace detail

/// Generic SPSC ring of movable values. One thread calls try_push, one
/// thread calls try_pop; any other combination is a data race by contract.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : buf_(detail::round_up_pow2(capacity < 2 ? 2 : capacity)),
        mask_(buf_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false (and leaves `v` untouched) when full.
  bool try_push(T&& v) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= buf_.size()) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= buf_.size()) return false;
    }
    buf_[head & mask_] = std::move(v);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (cached_head_ == tail) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (cached_head_ == tail) return false;
    }
    out = std::move(buf_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const noexcept { return buf_.size(); }
  /// Approximate depth; exact only from the producer or consumer thread.
  std::size_t size_approx() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? static_cast<std::size_t>(head - tail) : 0;
  }

 private:
  std::vector<T> buf_;
  std::uint64_t mask_;
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLine) std::uint64_t cached_tail_ = 0;   // producer-owned
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLine) std::uint64_t cached_head_ = 0;   // consumer-owned
};

/// One entry handed between the I/O thread and a shard worker. `kind`
/// multiplexes data frames with the rare control operations that must
/// execute on the shard thread (submit / start / snapshot requests), so a
/// shard drains exactly one queue in arrival order.
struct FrameSlot {
  enum class Kind : std::uint8_t {
    kFrame = 0,    // inbound wire frame (payload = frame bytes)
    kSubmit = 1,   // application message to submit (payload = message)
    kStart = 2,    // start(assoc_id)
    kSnapshot = 3, // publish a snapshot fragment and ack
  };
  Kind kind = Kind::kFrame;
  std::uint64_t peer = 0;      // source/destination address
  std::uint64_t time_us = 0;   // receive/submit timestamp
  std::uint32_t assoc_id = 0;  // control ops: target association
  std::uint32_t size = 0;      // valid bytes in buf
  std::vector<std::uint8_t> buf;  // grow-only recycled storage

  crypto::ByteView view() const noexcept {
    return crypto::ByteView{buf.data(), size};
  }
};

/// SPSC ring of FrameSlots with slot-owned recycled buffers. Push copies
/// the payload into the slot's buffer (grow-only: after warmup, a memcpy);
/// pop hands the whole slot to the consumer and takes the previous slot
/// back so its buffer re-enters the pool. Overflows are counted, not
/// blocked on -- the producer decides what dropping a frame means.
class FrameRing {
 public:
  explicit FrameRing(std::size_t capacity)
      : slots_(detail::round_up_pow2(capacity < 2 ? 2 : capacity)),
        mask_(slots_.size() - 1) {}

  FrameRing(const FrameRing&) = delete;
  FrameRing& operator=(const FrameRing&) = delete;

  /// Producer: copies `payload` into the next slot. False + overflow count
  /// when full.
  bool try_push(FrameSlot::Kind kind, std::uint64_t peer,
                std::uint64_t time_us, std::uint32_t assoc_id,
                crypto::ByteView payload) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= slots_.size()) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= slots_.size()) {
        overflows_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    FrameSlot& slot = slots_[head & mask_];
    slot.kind = kind;
    slot.peer = peer;
    slot.time_us = time_us;
    slot.assoc_id = assoc_id;
    slot.size = static_cast<std::uint32_t>(payload.size());
    if (slot.buf.size() < payload.size()) slot.buf.resize(payload.size());
    if (!payload.empty()) {
      std::memcpy(slot.buf.data(), payload.data(), payload.size());
    }
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: borrows the next slot. The pointer stays valid until a pop
  /// releases that slot back to the producer.
  const FrameSlot* front() noexcept { return peek(0); }

  /// Consumer: borrows the i-th pending slot (0 = oldest), or nullptr when
  /// fewer than i+1 entries are queued. Multiple slots may be borrowed at
  /// once -- the producer cannot overwrite anything not yet popped -- which
  /// is what lets the I/O thread gather a whole outbound batch by view
  /// before one sendmmsg, then release exactly the accepted prefix.
  const FrameSlot* peek(std::size_t i) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    // Compare the monotone counters directly: cached_head_ may be stale
    // (behind tail) and a subtraction would underflow into "available".
    if (cached_head_ < tail + i + 1) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (cached_head_ < tail + i + 1) return nullptr;
    }
    return &slots_[(tail + i) & mask_];
  }

  /// Consumer: releases the slot returned by front().
  void pop() noexcept { pop_n(1); }

  /// Consumer: releases the n oldest borrowed slots.
  void pop_n(std::size_t n) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    tail_.store(tail + n, std::memory_order_release);
  }

  std::size_t capacity() const noexcept { return slots_.size(); }
  std::size_t size_approx() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? static_cast<std::size_t>(head - tail) : 0;
  }
  /// Frames refused because the ring was full (producer-side backpressure).
  std::uint64_t overflows() const noexcept {
    return overflows_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<FrameSlot> slots_;
  std::uint64_t mask_;
  std::atomic<std::uint64_t> overflows_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLine) std::uint64_t cached_tail_ = 0;   // producer-owned
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLine) std::uint64_t cached_head_ = 0;   // consumer-owned
};

/// Shard ownership: which of `shards` workers serves `assoc_id`. Pure
/// function of the association id alone -- deliberately independent of
/// generation, peer address, and handshake counters, so rekeys and
/// responder-side on-demand accepts can never migrate an association across
/// shards (tests/core/sharded_node_test.cpp locks this in). Fibonacci
/// multiplicative hash spreads sequentially-allocated ids evenly.
constexpr std::uint32_t shard_of(std::uint32_t assoc_id,
                                 std::uint32_t shards) noexcept {
  if (shards <= 1) return 0;
  const std::uint32_t h = assoc_id * 0x9E3779B9u;
  return (h >> 16) % shards;
}

}  // namespace alpha::core
