#include "core/relay_pipeline.hpp"

#include <chrono>

#include "core/identity.hpp"
#include "core/preack.hpp"
#include "crypto/counter.hpp"
#include "merkle/amt.hpp"
#include "trace/prof.hpp"

namespace alpha::core {

namespace {

// Same helper as the scalar engine's: relay-side trace events identify the
// frame by peeking the header.
void emit_relay_event(trace::EventKind kind, crypto::ByteView frame,
                      trace::DropReason reason) {
  if (!trace::enabled()) return;
  std::uint32_t assoc = 0;
  std::uint32_t seq = 0;
  std::uint8_t type = 0;
  if (const auto hdr = wire::peek_header(frame)) {
    seq = hdr->seq;
    assoc = hdr->assoc_id;
  }
  if (const auto t = wire::peek_type(frame)) {
    type = static_cast<std::uint8_t>(*t);
  }
  trace::emit(kind, assoc, seq, type, reason, frame.size());
}

inline void prefetch(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}

}  // namespace

void RelayPipeline::Round::reset(std::uint32_t new_seq) noexcept {
  used = true;
  seq = new_seq;
  mode = Mode::kBase;
  s1_index = 0;
  macs.clear();
  merkle_root = crypto::Digest{};
  leaf_count = 0;
  merkle_roots.clear();
  group_size = 0;
  a1_seen = false;
  scheme = wire::AckScheme::kNone;
  a1_ack_index = 0;
  pre_acks.clear();
  pre_nacks.clear();
  amt_root = crypto::Digest{};
  amt_count = 0;
  disclosed.reset();
  mac_ctx.reset();
  ack_disclosed.reset();
}

RelayPipeline::Round* RelayPipeline::Flow::find_round(
    std::uint32_t seq) noexcept {
  for (Round& r : rounds) {
    if (r.used && r.seq == seq) return &r;
  }
  return nullptr;
}

RelayPipeline::RelayPipeline(Config config, RelayEngine::Options options,
                             Callbacks callbacks, std::size_t batch_capacity)
    : config_(config),
      options_(options),
      callbacks_(std::move(callbacks)),
      batch_capacity_(batch_capacity == 0 ? 1 : batch_capacity) {
  pending_.resize(batch_capacity_);
  forward_items_.reserve(batch_capacity_);
}

// ---------------------------------------------------------------- demux --

std::uint32_t RelayPipeline::find_slot(
    std::uint32_t assoc_id) const noexcept {
  if (index_.empty()) return kNoSlot;
  const std::size_t mask = index_.size() - 1;
  // Fibonacci hash: multiplicative scramble so dense assoc-id ranges spread
  // across the table (same constant as spsc_ring's shard_of).
  std::size_t pos = (assoc_id * 0x9e3779b9u) & mask;
  while (true) {
    const std::uint32_t e = index_[pos];
    if (e == 0) return kNoSlot;
    if (slots_[e - 1].assoc_id == assoc_id) return e - 1;
    pos = (pos + 1) & mask;
  }
}

void RelayPipeline::grow_index() {
  const std::size_t size = index_.empty() ? 16 : index_.size() * 2;
  index_.assign(size, 0);
  const std::size_t mask = size - 1;
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    std::size_t pos = (slots_[s].assoc_id * 0x9e3779b9u) & mask;
    while (index_[pos] != 0) pos = (pos + 1) & mask;
    index_[pos] = s + 1;
  }
}

std::uint32_t RelayPipeline::find_or_create_slot(std::uint32_t assoc_id) {
  if (const std::uint32_t s = find_slot(assoc_id); s != kNoSlot) return s;
  // Keep load under ~70% so probe runs stay short.
  if ((slots_.size() + 1) * 10 >= index_.size() * 7) grow_index();
  slots_.emplace_back();
  AssocSlot& slot = slots_.back();
  slot.assoc_id = assoc_id;
  const std::uint32_t s = static_cast<std::uint32_t>(slots_.size() - 1);
  const std::size_t mask = index_.size() - 1;
  std::size_t pos = (assoc_id * 0x9e3779b9u) & mask;
  while (index_[pos] != 0) pos = (pos + 1) & mask;
  index_[pos] = s + 1;
  return s;
}

// ------------------------------------------------------------ batch I/O --

void RelayPipeline::enqueue(Direction dir, crypto::ByteView frame) {
  PendingFrame& p = pending_[pending_count_];
  p.dir = dir;
  p.buf.assign(frame.begin(), frame.end());
  ++pending_count_;
  if (pending_count_ == batch_capacity_) flush();
}

void RelayPipeline::flush() {
  if (pending_count_ == 0) return;
  trace::ScopedStage prof_stage(trace::Stage::kRelayVerify);
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = pending_count_;

  // Pass 1 -- demux: resolve each frame's association to its slot and
  // prefetch the slot line so pass 2 never waits on a cold association.
  for (std::size_t i = 0; i < n; ++i) {
    PendingFrame& p = pending_[i];
    const auto assoc =
        wire::peek_assoc_id({p.buf.data(), p.buf.size()});
    p.slot = assoc.has_value() ? find_slot(*assoc) : kNoSlot;
    if (p.slot != kNoSlot) prefetch(&slots_[p.slot]);
  }

  // Pass 2 -- run to completion in arrival order. A kNoSlot hint is only a
  // hint: a handshake earlier in this same batch may have created the
  // association, so the slow path re-probes. A resolved hint is always
  // valid -- slots are never removed and never move.
  forward_items_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n && pending_[i + 1].slot != kNoSlot) {
      prefetch(&slots_[pending_[i + 1].slot]);
    }
    process(pending_[i]);
  }
  pending_count_ = 0;

  if (!forward_items_.empty() && callbacks_.forward_batch) {
    callbacks_.forward_batch(forward_items_.data(), forward_items_.size());
  }

  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  stats_.verify_batch_ns.record(static_cast<std::uint64_t>(ns));
  stats_.verify_batch_frames += n;
}

// ------------------------------------------------------------- verdicts --

RelayDecision RelayPipeline::forward_to_batch(Direction dir,
                                              crypto::ByteView frame) {
  ++stats_.forwarded;
  emit_relay_event(trace::EventKind::kRelayForwarded, frame,
                   trace::DropReason::kNone);
  forward_items_.push_back(ForwardItem{dir, frame});
  return RelayDecision::kForwarded;
}

RelayDecision RelayPipeline::drop(RelayDecision decision,
                                  crypto::ByteView frame,
                                  trace::DropReason reason) {
  if (decision == RelayDecision::kDroppedUnsolicited) {
    ++stats_.dropped_unsolicited;
  } else {
    ++stats_.dropped_invalid;
  }
  ++stats_.dropped_by_reason[static_cast<std::size_t>(reason)];
  emit_relay_event(trace::EventKind::kPacketDropped, frame, reason);
  return decision;
}

RelayDecision RelayPipeline::malformed(crypto::ByteView frame) {
  ++stats_.dropped_invalid;
  ++stats_.dropped_by_reason[static_cast<std::size_t>(
      trace::DropReason::kDecodeError)];
  emit_relay_event(trace::EventKind::kPacketDropped, frame,
                   trace::DropReason::kDecodeError);
  return RelayDecision::kDroppedMalformed;
}

void RelayPipeline::process(PendingFrame& p) {
  const crypto::ByteView frame{p.buf.data(), p.buf.size()};
  RelayDecision decision;
  if (wire::peek_type(frame) == wire::PacketType::kS2) {
    // Steady-state path: zero-copy parse, no heap.
    const auto s2 = wire::parse_s2(frame);
    decision = s2.has_value() ? process_s2(p.dir, *s2, frame, p.slot)
                              : malformed(frame);
  } else {
    // Control path (handshakes, S1/A1/A2): the full decoder is fine here,
    // these are a per-round constant, not a per-message cost.
    const auto packet = wire::decode(frame);
    if (!packet.has_value()) {
      decision = malformed(frame);
    } else {
      decision = std::visit(
          [&](const auto& pkt) -> RelayDecision {
            using T = std::decay_t<decltype(pkt)>;
            if constexpr (std::is_same_v<T, wire::HandshakePacket>) {
              return process_handshake(p.dir, pkt, frame);
            } else if constexpr (std::is_same_v<T, wire::S1Packet>) {
              return process_s1(p.dir, pkt, frame, p.slot);
            } else if constexpr (std::is_same_v<T, wire::A1Packet>) {
              return process_a1(p.dir, pkt, frame, p.slot);
            } else if constexpr (std::is_same_v<T, wire::S2Packet>) {
              // Unreachable (peek_type routed kS2 above), but keep the
              // visitor total.
              const auto view = wire::parse_s2(frame);
              return view.has_value() ? process_s2(p.dir, *view, frame, p.slot)
                                      : malformed(frame);
            } else {
              return process_a2(p.dir, pkt, frame, p.slot);
            }
          },
          *packet);
    }
  }
  if (callbacks_.on_decision) callbacks_.on_decision(decision, p.dir, frame);
}

RelayPipeline::Round* RelayPipeline::insert_round(Flow& flow,
                                                  std::uint32_t seq) {
  Round* free_slot = nullptr;
  Round* min_round = nullptr;
  for (Round& r : flow.rounds) {
    if (!r.used) {
      if (free_slot == nullptr) free_slot = &r;
      continue;
    }
    if (min_round == nullptr || r.seq < min_round->seq) min_round = &r;
  }
  if (free_slot != nullptr) {
    free_slot->reset(seq);
    return free_slot;
  }
  // Full flow: the engine emplaces then erases the lowest seq, so a new
  // round below every retained one evicts itself -- vetted and forwarded,
  // but not remembered.
  if (seq < min_round->seq) return nullptr;
  min_round->reset(seq);
  return min_round;
}

// ------------------------------------------------- decision procedure ----
// Each process_* mirrors the corresponding RelayEngine::handle_* check for
// check; any divergence is a bug the equivalence suite exists to catch.

RelayDecision RelayPipeline::process_handshake(Direction dir,
                                               const wire::HandshakePacket& hs,
                                               crypto::ByteView frame) {
  if (options_.verify_handshake_signatures &&
      hs.sig_alg != wire::SigAlg::kNone) {
    const auto peer = PeerIdentity::decode(hs.sig_alg, hs.public_key);
    if (!peer.has_value() ||
        !peer->verify(hs.algo, hs.signed_payload(), hs.signature)) {
      return drop(RelayDecision::kDroppedInvalid, frame,
                  trace::DropReason::kBadMac);
    }
  }

  AssocSlot& assoc = slots_[find_or_create_slot(hs.hdr.assoc_id)];
  assoc.algo = hs.algo;
  assoc.handshake_seen = true;

  Flow& own_flow = assoc.flows[static_cast<int>(dir)];
  Flow& rev_flow = assoc.flows[static_cast<int>(opposite(dir))];
  if (own_flow.sig.has_value() &&
      own_flow.sig_anchor.ct_equals(hs.sig_anchor)) {
    return forward_to_batch(dir, frame);
  }
  own_flow.sig.emplace(hs.algo, hashchain::ChainTagging::kRoleBound,
                       hs.sig_anchor, hs.sig_anchor_index, config_.max_gap);
  own_flow.sig_anchor = hs.sig_anchor;
  rev_flow.ack.emplace(hs.algo, hashchain::ChainTagging::kRoleBound,
                       hs.ack_anchor, hs.ack_anchor_index, config_.max_gap);
  for (Round& r : own_flow.rounds) r.used = false;
  return forward_to_batch(dir, frame);
}

RelayDecision RelayPipeline::process_s1(Direction dir,
                                        const wire::S1Packet& s1,
                                        crypto::ByteView frame,
                                        std::uint32_t slot_hint) {
  const std::uint32_t slot =
      slot_hint != kNoSlot ? slot_hint : find_slot(s1.hdr.assoc_id);
  if (slot == kNoSlot || !slots_[slot].flows[static_cast<int>(dir)].sig) {
    return options_.require_handshake
               ? drop(RelayDecision::kDroppedUnsolicited, frame,
                      trace::DropReason::kUnsolicited)
               : forward_to_batch(dir, frame);
  }
  Flow& flow = slots_[slot].flows[static_cast<int>(dir)];

  const bool tree_mode =
      s1.mode == Mode::kMerkle || s1.mode == Mode::kCumulativeMerkle;
  const std::size_t count = tree_mode ? s1.leaf_count : s1.macs.size();
  if (count == 0 || count > kMaxBatchMessages) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kDecodeError);
  }

  if (flow.find_round(s1.hdr.seq) != nullptr) {
    return forward_to_batch(dir, frame);  // vetted retransmission
  }

  if (!hashchain::is_s1_index(s1.chain_index)) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kStaleChainIndex);
  }
  {
    const crypto::ScopedHashOps ops;
    const bool ok = flow.sig->accept(s1.chain_element, s1.chain_index);
    stats_.hashes.chain_verify += ops.delta().hash_finalizations;
    if (!ok) {
      return drop(RelayDecision::kDroppedInvalid, frame,
                  trace::DropReason::kStaleChainIndex);
    }
  }

  if (Round* round = insert_round(flow, s1.hdr.seq)) {
    round->mode = s1.mode;
    round->s1_index = s1.chain_index;
    if (s1.mode == Mode::kMerkle) {
      round->merkle_root = s1.merkle_root;
      round->leaf_count = s1.leaf_count;
    } else if (s1.mode == Mode::kCumulativeMerkle) {
      round->merkle_roots.assign(s1.merkle_roots.begin(),
                                 s1.merkle_roots.end());
      round->group_size = s1.group_size;
      round->leaf_count = s1.leaf_count;
    } else {
      round->macs.assign(s1.macs.begin(), s1.macs.end());
    }
  }
  return forward_to_batch(dir, frame);
}

RelayDecision RelayPipeline::process_a1(Direction dir,
                                        const wire::A1Packet& a1,
                                        crypto::ByteView frame,
                                        std::uint32_t slot_hint) {
  const Direction flow_dir = opposite(dir);
  const std::uint32_t slot =
      slot_hint != kNoSlot ? slot_hint : find_slot(a1.hdr.assoc_id);
  if (slot == kNoSlot ||
      !slots_[slot].flows[static_cast<int>(flow_dir)].ack) {
    return options_.require_handshake
               ? drop(RelayDecision::kDroppedUnsolicited, frame,
                      trace::DropReason::kUnsolicited)
               : forward_to_batch(dir, frame);
  }
  Flow& flow = slots_[slot].flows[static_cast<int>(flow_dir)];

  Round* round = flow.find_round(a1.hdr.seq);
  if (round == nullptr) {
    return drop(RelayDecision::kDroppedUnsolicited, frame,
                trace::DropReason::kUnsolicited);
  }

  if (!hashchain::is_s1_index(a1.ack_chain_index)) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kStaleChainIndex);
  }
  {
    const crypto::ScopedHashOps ops;
    const bool ok =
        flow.ack->accept_or_derive(a1.ack_element, a1.ack_chain_index);
    stats_.hashes.chain_verify += ops.delta().hash_finalizations;
    if (!ok) {
      return drop(RelayDecision::kDroppedInvalid, frame,
                  trace::DropReason::kStaleChainIndex);
    }
  }

  if (a1.scheme == wire::AckScheme::kPreAck &&
      a1.pre_acks.size() != round->message_count()) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kDecodeError);
  }

  round->a1_seen = true;
  round->scheme = a1.scheme;
  round->a1_ack_index = a1.ack_chain_index;
  round->pre_acks.assign(a1.pre_acks.begin(), a1.pre_acks.end());
  round->pre_nacks.assign(a1.pre_nacks.begin(), a1.pre_nacks.end());
  round->amt_root = a1.amt_root;
  round->amt_count = a1.amt_msg_count;
  return forward_to_batch(dir, frame);
}

RelayDecision RelayPipeline::process_s2(Direction dir, const wire::S2View& s2,
                                        crypto::ByteView frame,
                                        std::uint32_t slot_hint) {
  const std::uint32_t slot =
      slot_hint != kNoSlot ? slot_hint : find_slot(s2.hdr.assoc_id);
  if (slot == kNoSlot || !slots_[slot].flows[static_cast<int>(dir)].sig) {
    return options_.require_handshake
               ? drop(RelayDecision::kDroppedUnsolicited, frame,
                      trace::DropReason::kUnsolicited)
               : forward_to_batch(dir, frame);
  }
  AssocSlot& assoc = slots_[slot];
  Flow& flow = assoc.flows[static_cast<int>(dir)];

  Round* round = flow.find_round(s2.hdr.seq);
  if (round == nullptr) {
    return drop(RelayDecision::kDroppedUnsolicited, frame,
                trace::DropReason::kUnsolicited);
  }
  if (!round->a1_seen) {
    return drop(RelayDecision::kDroppedUnsolicited, frame,
                trace::DropReason::kUnsolicited);
  }

  if (s2.mode != round->mode || s2.msg_index >= round->message_count() ||
      s2.chain_index + 1 != round->s1_index) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kStaleChainIndex);
  }

  // Authenticate the disclosed MAC key: the first S2 of the round pays the
  // chain walk, every later one is a constant-time compare on the memo.
  if (round->disclosed.has_value()) {
    if (!round->disclosed->ct_equals(s2.disclosed_element)) {
      return drop(RelayDecision::kDroppedInvalid, frame,
                  trace::DropReason::kBadMac);
    }
  } else {
    const crypto::ScopedHashOps ops;
    const bool ok =
        flow.sig->accept_or_derive(s2.disclosed_element, s2.chain_index);
    stats_.hashes.chain_verify += ops.delta().hash_finalizations;
    if (!ok) {
      return drop(RelayDecision::kDroppedInvalid, frame,
                  trace::DropReason::kStaleChainIndex);
    }
    round->disclosed = s2.disclosed_element;
  }

  bool valid = false;
  {
    const crypto::ScopedHashOps ops;
    const crypto::HashAlgo algo = assoc.algo;
    if (round->mode == Mode::kMerkle) {
      if (s2.has_path && s2.leaf_index == s2.msg_index) {
        const crypto::Digest leaf = crypto::hash(algo, s2.payload);
        s2.path_into(path_scratch_);
        valid = merkle::MerkleTree::verify_keyed(
            algo, s2.disclosed_element.view(), leaf, path_scratch_,
            round->merkle_root);
      }
    } else if (round->mode == Mode::kCumulativeMerkle) {
      const std::size_t group = s2.msg_index / round->group_size;
      const std::size_t within = s2.msg_index % round->group_size;
      if (s2.has_path && s2.leaf_index == within &&
          group < round->merkle_roots.size()) {
        const crypto::Digest leaf = crypto::hash(algo, s2.payload);
        s2.path_into(path_scratch_);
        valid = merkle::MerkleTree::verify_keyed(
            algo, s2.disclosed_element.view(), leaf, path_scratch_,
            round->merkle_roots[group]);
      }
    } else {
      // First S2 builds the HMAC ipad/opad midstates; the rest of the
      // round's batch reuses them.
      if (!round->mac_ctx.has_value()) {
        round->mac_ctx.emplace(config_.mac_kind, algo,
                               s2.disclosed_element.view());
      }
      valid = round->mac_ctx->verify(s2.payload, round->macs[s2.msg_index]);
    }
    stats_.hashes.signature += ops.delta().hash_finalizations;
  }
  if (!valid) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kBadMac);
  }

  ++stats_.messages_extracted;
  if (callbacks_.on_extracted) {
    callbacks_.on_extracted(s2.hdr.assoc_id, s2.hdr.seq, s2.msg_index,
                            s2.payload);
  }
  return forward_to_batch(dir, frame);
}

RelayDecision RelayPipeline::process_a2(Direction dir,
                                        const wire::A2Packet& a2,
                                        crypto::ByteView frame,
                                        std::uint32_t slot_hint) {
  const Direction flow_dir = opposite(dir);
  const std::uint32_t slot =
      slot_hint != kNoSlot ? slot_hint : find_slot(a2.hdr.assoc_id);
  if (slot == kNoSlot ||
      !slots_[slot].flows[static_cast<int>(flow_dir)].ack) {
    return options_.require_handshake
               ? drop(RelayDecision::kDroppedUnsolicited, frame,
                      trace::DropReason::kUnsolicited)
               : forward_to_batch(dir, frame);
  }
  AssocSlot& assoc = slots_[slot];
  Flow& flow = assoc.flows[static_cast<int>(flow_dir)];

  Round* round = flow.find_round(a2.hdr.seq);
  if (round == nullptr || !round->a1_seen) {
    return drop(RelayDecision::kDroppedUnsolicited, frame,
                trace::DropReason::kUnsolicited);
  }

  if (a2.scheme != round->scheme ||
      a2.ack_chain_index + 1 != round->a1_ack_index ||
      a2.msg_index >= round->message_count()) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kStaleChainIndex);
  }

  if (round->ack_disclosed.has_value()) {
    if (!round->ack_disclosed->ct_equals(a2.disclosed_ack_element)) {
      return drop(RelayDecision::kDroppedInvalid, frame,
                  trace::DropReason::kBadMac);
    }
  } else {
    const crypto::ScopedHashOps ops;
    const bool ok = flow.ack->accept_or_derive(a2.disclosed_ack_element,
                                               a2.ack_chain_index);
    stats_.hashes.chain_verify += ops.delta().hash_finalizations;
    if (!ok) {
      return drop(RelayDecision::kDroppedInvalid, frame,
                  trace::DropReason::kStaleChainIndex);
    }
    round->ack_disclosed = a2.disclosed_ack_element;
  }

  bool valid = false;
  const bool is_ack = a2.kind == wire::AckKind::kAck;
  {
    const crypto::ScopedHashOps ops;
    const crypto::HashAlgo algo = assoc.algo;
    if (round->scheme == wire::AckScheme::kPreAck) {
      const crypto::Digest& committed = is_ack
                                            ? round->pre_acks[a2.msg_index]
                                            : round->pre_nacks[a2.msg_index];
      valid = verify_pre_ack(algo, a2.disclosed_ack_element, is_ack,
                             a2.secret, committed);
    } else if (round->scheme == wire::AckScheme::kAmt && a2.path.has_value()) {
      merkle::AckMerkleTree::Proof proof;
      proof.is_ack = is_ack;
      proof.msg_index = a2.msg_index;
      proof.secret = a2.secret;
      proof.path = a2.path->to_auth_path();
      valid = merkle::AckMerkleTree::verify(algo,
                                            a2.disclosed_ack_element.view(),
                                            proof, round->amt_root,
                                            round->amt_count);
    }
    stats_.hashes.ack += ops.delta().hash_finalizations;
  }
  if (!valid) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kBadMac);
  }

  ++stats_.acks_verified;
  return forward_to_batch(dir, frame);
}

}  // namespace alpha::core
