// Protocol configuration.
//
// One Config describes a complete ALPHA profile: hash function, MAC
// construction, transmission mode (base / ALPHA-C / ALPHA-M, §3.1-3.3),
// reliability (§3.2.2/§3.3.3), chain sizing and retransmission policy.
// Both endpoints of an association must run the same profile; the handshake
// carries the hash algorithm, the rest is deployment configuration.
#pragma once

#include <cstdint>

#include "crypto/hash.hpp"
#include "crypto/mac.hpp"
#include "wire/packets.hpp"

namespace alpha::core {

using wire::Mode;

struct Config {
  crypto::HashAlgo algo = crypto::HashAlgo::kSha1;
  crypto::MacKind mac_kind = crypto::MacKind::kHmac;
  Mode mode = Mode::kBase;

  /// Reliable delivery: pre-acks (base/ALPHA-C, Fig. 3) or an AMT
  /// (ALPHA-M, Fig. 7). Unreliable rounds skip A2 entirely.
  bool reliable = false;

  /// Messages pre-signed per S1 in ALPHA-C / ALPHA-M (n). Base mode is 1.
  std::size_t batch_size = 1;

  /// ALPHA-C+M only (Mode::kCumulativeMerkle): messages per Merkle root.
  /// Shallower trees cut the per-S2 verification to log2(merkle_group)
  /// hashes while the S1 carries ceil(batch_size / merkle_group) roots.
  std::size_t merkle_group = 8;

  /// Reliable mode: automatically retransmit nacked messages (selective
  /// repeat, §3.3.3) up to max_retries instead of reporting kNacked.
  bool retransmit_on_nack = false;

  /// Hash-chain length per chain (rounds cost 2 elements each).
  /// Must be even.
  std::size_t chain_length = 1024;

  /// Verifier tolerance for lost disclosures (ChainVerifier max_gap).
  std::size_t max_gap = 64;

  /// Per-leaf secret size for pre-acks and AMT leaves.
  std::size_t secret_size = 16;

  /// Retransmission timeout and retry budget for S1 (awaiting A1) and, in
  /// reliable mode, S2 (awaiting A2). The same budget bounds handshake
  /// (HS1/rekey) retransmission; exhausting it marks the association failed.
  std::uint64_t rto_us = 200'000;
  int max_retries = 5;

  /// Exponential backoff cap: retry k waits min(rto_us * 2^k, rto_max_us)
  /// plus deterministic jitter in [0, delay/4] (see retransmit_delay), so
  /// retransmissions neither storm a congested/partitioned path nor fire in
  /// lockstep across associations. rto_max_us <= rto_us degenerates to the
  /// fixed timer.
  std::uint64_t rto_max_us = 5'000'000;

  /// Chain rotation: when the signature chain drops below this many
  /// undisclosed elements (and the signer is idle), the Host performs a new
  /// handshake with fresh chains. 0 disables rekeying.
  std::size_t rekey_threshold = 0;

  /// Path MTU hint in bytes (0 = unlimited). When set, the signer clamps
  /// the effective batch so the S1 -- and, in reliable mode, the answering
  /// A1 with its pre-(n)ack pairs -- fit a single frame. Without this, a
  /// large ALPHA-C batch on a small-MTU link (e.g. 802.15.4's 127 B)
  /// produces undeliverable control packets.
  std::size_t mtu_hint = 0;

  /// Effective batch for the configured mode.
  std::size_t effective_batch() const noexcept {
    return mode == Mode::kBase ? 1 : (batch_size == 0 ? 1 : batch_size);
  }

  /// Whether the mode pre-signs with Merkle trees (M or C+M).
  bool uses_trees() const noexcept {
    return mode == Mode::kMerkle || mode == Mode::kCumulativeMerkle;
  }

  /// Leaves per tree for a round of `messages` messages.
  std::size_t group_size(std::size_t messages) const noexcept {
    if (mode == Mode::kCumulativeMerkle) {
      return merkle_group == 0 ? 1 : merkle_group;
    }
    return messages;
  }

  std::size_t digest_size() const noexcept {
    return crypto::digest_size(algo);
  }
};

/// Number of rounds a chain of `chain_length` supports (2 elements/round;
/// the seed h_0 is never disclosed).
inline std::size_t rounds_supported(const Config& c) noexcept {
  return (c.chain_length - 1) / 2;
}

/// Delay before the `retries`-th retransmission: exponential backoff capped
/// at rto_max_us plus jitter in [0, delay/4] derived purely from `salt`
/// (e.g. assoc id and round seq), so concurrent associations desynchronize
/// without any RNG plumbing and every run stays seed-replayable.
inline std::uint64_t retransmit_delay(const Config& c, int retries,
                                      std::uint64_t salt) noexcept {
  if (c.rto_max_us <= c.rto_us) return c.rto_us;  // fixed timer
  std::uint64_t delay = c.rto_us;
  for (int i = 0; i < retries && delay < c.rto_max_us; ++i) delay *= 2;
  delay = std::min(delay, c.rto_max_us);
  // splitmix64 finalizer as the jitter hash.
  std::uint64_t z = salt + 0x9e3779b97f4a7c15ull *
                               (static_cast<std::uint64_t>(retries) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return delay + z % (delay / 4 + 1);
}

/// Largest batch whose S1 (and reliable A1) fit within `mtu` bytes; at
/// least 1. Wire costs: common header 10 B + CRC trailer; S1 body =
/// mode(1) + index(4) + element(1+h) + count(2) + n*(1+h) MACs (base/C);
/// reliable A1 body = index(4) + element(1+h) + scheme(1) + count(2) +
/// 2n*(1+h) pre-(n)acks.
inline std::size_t max_batch_for_mtu(const Config& c,
                                     std::size_t mtu) noexcept {
  if (mtu == 0) return c.effective_batch();
  const std::size_t h = c.digest_size();
  const std::size_t digest = 1 + h;
  const std::size_t frame = 10 + wire::kFrameChecksumSize;
  const std::size_t s1_fixed = frame + 1 + 4 + digest + 2;
  const std::size_t a1_fixed = frame + 4 + digest + 1 + 2;
  std::size_t by_s1 = 1, by_a1 = SIZE_MAX;
  if (c.mode == Mode::kBase || c.mode == Mode::kCumulative) {
    by_s1 = mtu > s1_fixed + digest ? (mtu - s1_fixed) / digest : 1;
    if (c.reliable) {
      by_a1 = mtu > a1_fixed + 2 * digest ? (mtu - a1_fixed) / (2 * digest) : 1;
    }
  } else {
    // Tree modes: the S1 carries one root per group; AMT reliability adds
    // only a root to the A1, so the A1 never binds.
    const std::size_t group = c.mode == Mode::kCumulativeMerkle
                                  ? (c.merkle_group == 0 ? 1 : c.merkle_group)
                                  : c.effective_batch();
    const std::size_t s1_tree_fixed = s1_fixed + 2;  // group/leaf counters
    const std::size_t max_roots = mtu > s1_tree_fixed + digest
                                      ? (mtu - s1_tree_fixed) / digest
                                      : 1;
    by_s1 = max_roots * group;
  }
  const std::size_t cap = std::min(by_s1, by_a1);
  return std::max<std::size_t>(1, std::min(cap, c.effective_batch()));
}

}  // namespace alpha::core
