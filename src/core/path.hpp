// Protected path over the simulated network.
//
// Convenience binding of the node runtime onto a linear net::Network path:
// an AlphaNode per path node -- the initiator Host at one end, the
// responder at the other, a relay binding on every interior node (paper
// Fig. 1: signer s, relays r_i, verifier v). Frames travel hop-by-hop;
// relays verify-and-forward, ends run the full handshake + signature
// exchange. Retransmissions are driven by each node's timer wheel through
// the simulator's event queue -- there is no hand-wired tick loop; just run
// the simulator.
//
// This is the setup used by the integration tests, the examples and the
// latency/attack benches.
#pragma once

#include <memory>
#include <vector>

#include "core/node.hpp"
#include "net/network.hpp"

namespace alpha::core {

class ProtectedPath {
 public:
  /// Binds engines to the nodes in `path` (length >= 2). The nodes and links
  /// must already exist in `network`. Seeds derive the hosts' chain material.
  ProtectedPath(net::Network& network, std::vector<net::NodeId> path,
                Config config, std::uint32_t assoc_id, std::uint64_t seed,
                Host::Options initiator_opts = Host::Options{},
                Host::Options responder_opts = Host::Options{},
                RelayEngine::Options relay_opts = RelayEngine::Options{});

  /// Sends the HS1. Retransmission timers arm themselves on activity and
  /// disarm when idle; `tick_horizon_us` is retained for source
  /// compatibility with the pre-runtime tick loop and ignored.
  void start(net::SimTime tick_horizon_us = 60 * net::kSecond);

  /// Handler invoked whenever a relay securely extracts an authenticated
  /// payload from a forwarded S2 (§3.5 middlebox signaling):
  /// (relay index on the path, payload).
  using ExtractionHandler =
      std::function<void(std::size_t relay_index, crypto::ByteView payload)>;
  void set_extraction_handler(ExtractionHandler handler) {
    extraction_handler_ = std::move(handler);
  }

  Host& initiator() noexcept { return *initiator_; }
  Host& responder() noexcept { return *responder_; }
  std::size_t relay_count() const noexcept { return relays_.size(); }
  RelayEngine& relay(std::size_t i) { return *relays_.at(i); }

  /// Node runtimes along the path (index parallel to the node list).
  std::size_t node_count() const noexcept { return nodes_.size(); }
  AlphaNode& node(std::size_t i) { return *nodes_.at(i); }

  /// Messages delivered to the responder's application.
  const std::vector<crypto::Bytes>& delivered_to_responder() const noexcept {
    return at_responder_;
  }
  const std::vector<crypto::Bytes>& delivered_to_initiator() const noexcept {
    return at_initiator_;
  }
  const std::vector<std::pair<std::uint64_t, DeliveryStatus>>&
  initiator_deliveries() const noexcept {
    return initiator_deliveries_;
  }

 private:
  std::vector<net::NodeId> path_;
  std::uint32_t assoc_id_;
  std::vector<std::unique_ptr<AlphaNode>> nodes_;
  Host* initiator_ = nullptr;
  Host* responder_ = nullptr;
  std::vector<RelayEngine*> relays_;
  std::vector<crypto::Bytes> at_initiator_;
  std::vector<crypto::Bytes> at_responder_;
  std::vector<std::pair<std::uint64_t, DeliveryStatus>> initiator_deliveries_;
  ExtractionHandler extraction_handler_;
};

}  // namespace alpha::core
