// Verifier-side protocol engine.
//
// Runs one simplex ALPHA channel as the verifier (paper §3.1, Fig. 2):
// authenticates S1 packets against the signer's chain, buffers the
// pre-signatures, answers with A1 (committing pre-(n)acks or an AMT root in
// reliable mode), verifies each S2 against the buffered commitment once the
// MAC key is disclosed, delivers valid payloads to the application, and
// discloses (n)acks in A2 packets.
//
// Duplicate S1/S2 packets (retransmissions) are answered idempotently from
// cached frames, so a lossy network converges without protocol state drift.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/stats.hpp"
#include "crypto/mac.hpp"
#include "hashchain/chain.hpp"
#include "merkle/amt.hpp"
#include "wire/packets.hpp"

namespace alpha::core {

class VerifierEngine {
 public:
  struct Callbacks {
    /// Emits one encoded packet toward the signer.
    std::function<void(crypto::Bytes)> send;
    /// Delivers one authenticated message.
    std::function<void(std::uint32_t seq, std::uint16_t msg_index,
                       crypto::ByteView payload)>
        on_message;
  };

  /// `ack_chain` is this verifier's own acknowledgment chain (moves in);
  /// `sig_anchor`/`sig_anchor_index` come from the signer's handshake.
  VerifierEngine(Config config, std::uint32_t assoc_id,
                 hashchain::HashChain ack_chain, crypto::Digest sig_anchor,
                 std::size_t sig_anchor_index, Callbacks callbacks,
                 crypto::RandomSource& rng);

  void on_s1(const wire::S1Packet& s1);
  void on_s2(const wire::S2Packet& s2);

  /// Flood mitigation (§3.5): when false, S1 packets are ignored instead of
  /// answered, so unsolicited data cannot obtain the A1 it needs to travel.
  void set_accepting(bool accepting) noexcept { accepting_ = accepting; }
  bool accepting() const noexcept { return accepting_; }

  /// Pre-signature buffer across pending rounds (Table 2 verifier column:
  /// n*h for base/ALPHA-C, h per round for ALPHA-M).
  std::size_t buffered_bytes() const noexcept;
  /// Acknowledgment state (Table 3 verifier column).
  std::size_t ack_buffered_bytes() const noexcept;

  const VerifierStats& stats() const noexcept { return stats_; }
  std::uint32_t assoc_id() const noexcept { return assoc_id_; }

 private:
  struct PendingRound {
    Mode mode = Mode::kBase;
    std::size_t s1_index = 0;       // odd element index from the S1
    crypto::Digest s1_element;      // for duplicate detection
    std::vector<crypto::Digest> macs;
    crypto::Digest merkle_root;
    std::uint16_t leaf_count = 0;
    std::vector<crypto::Digest> merkle_roots;  // ALPHA-C+M
    std::uint16_t group_size = 0;              // ALPHA-C+M
    crypto::Bytes a1_frame;         // cached for duplicate S1

    // Reliable mode state.
    std::size_t a1_ack_index = 0;   // odd ack element in the A1
    crypto::Digest ack_key;         // h^Va_{i-1}, disclosed in A2 packets
    std::vector<crypto::Bytes> ack_secrets;
    std::vector<crypto::Bytes> nack_secrets;
    std::optional<merkle::AckMerkleTree> amt;

    std::optional<crypto::Digest> disclosed;  // accepted MAC key
    // Key schedule for `disclosed`, built once per round (non-tree modes):
    // every remaining S2 of the round verifies under the same key.
    std::optional<crypto::MacContext> mac_ctx;
    std::vector<std::uint8_t> received;       // 1 once delivered
    std::size_t delivered = 0;
    std::map<std::uint16_t, crypto::Bytes> a2_frames;  // idempotent resend

    std::size_t message_count() const noexcept {
      if (mode == Mode::kMerkle || mode == Mode::kCumulativeMerkle) {
        return leaf_count;
      }
      return macs.size();
    }
  };

  void send_a2(PendingRound& round, std::uint32_t seq, std::uint16_t index,
               bool ack);
  void retire_old_rounds();

  Config config_;
  std::uint32_t assoc_id_;
  hashchain::HashChain ack_chain_;
  hashchain::ChainWalker walker_;
  hashchain::ChainVerifier sig_verifier_;
  Callbacks callbacks_;
  crypto::RandomSource* rng_;
  bool accepting_ = true;

  std::map<std::uint32_t, PendingRound> rounds_;  // by seq
  VerifierStats stats_;
};

}  // namespace alpha::core
