// Pre-acknowledgment construction (§3.2.2, Fig. 3).
//
// The verifier commits to both outcomes of a round before it knows which one
// it will disclose:
//
//   pre_ack_j  = H(h^Va_{i-1} | "1" | s_ack_j)
//   pre_nack_j = H(h^Va_{i-1} | "0" | s_nack_j)
//
// keyed with the next *undisclosed* acknowledgment-chain element and fresh
// secrets per message. Disclosing (h^Va_{i-1}, flag, secret) in the A2 lets
// the signer and every relay recompute the hash and match it against the
// committed value from the A1.
#pragma once

#include "crypto/bytes.hpp"
#include "crypto/digest.hpp"
#include "crypto/hash.hpp"

namespace alpha::core {

inline crypto::Digest make_pre_ack(crypto::HashAlgo algo,
                                   const crypto::Digest& key,
                                   bool ack,
                                   crypto::ByteView secret) {
  return crypto::hash3(algo, key.view(),
                       crypto::as_bytes(ack ? "1" : "0"), secret);
}

inline bool verify_pre_ack(crypto::HashAlgo algo, const crypto::Digest& key,
                           bool ack, crypto::ByteView secret,
                           const crypto::Digest& committed) {
  return make_pre_ack(algo, key, ack, secret).ct_equals(committed);
}

}  // namespace alpha::core
