// Relay-side protocol engine (hop-by-hop authentication).
//
// The distinguishing capability of ALPHA (paper §1, §3.1.1): forwarding
// nodes authenticate traffic in transit. A relay learns both endpoints'
// chain anchors by observing the handshake, then
//
//  * authenticates every S1 by its chain element and buffers the
//    pre-signatures (small: hashes only, Table 2 relay column),
//  * authenticates every A1 and records the verifier's willingness to
//    receive -- S2 data without a matching S1+A1 context is dropped as
//    unsolicited, which stops flooding one hop from the source (§3.5),
//  * checks every S2 against the buffered pre-signature once the key is
//    disclosed, dropping forgeries *before* they consume downstream
//    bandwidth, and extracting authenticated payloads for on-path services
//    (secure middlebox signaling),
//  * verifies disclosed (n)acks against the A1 commitments (§3.2.2), which
//    lets on-path state machines act on confirmed delivery.
//
// A duplex association is two simplex flows; packet direction plus type
// selects the flow (S1/S2 travel with the flow, A1/A2 against it).
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "core/config.hpp"
#include "core/stats.hpp"
#include "crypto/mac.hpp"
#include "hashchain/chain.hpp"
#include "trace/trace.hpp"
#include "wire/packets.hpp"

namespace alpha::core {

/// Travel direction of a frame through this relay.
enum class Direction : std::uint8_t {
  kForward = 0,  // initiator -> responder
  kReverse = 1,  // responder -> initiator
};

constexpr Direction opposite(Direction d) noexcept {
  return d == Direction::kForward ? Direction::kReverse : Direction::kForward;
}

/// What the relay decided about a frame (also reflected in stats()).
enum class RelayDecision : std::uint8_t {
  kForwarded = 1,
  kDroppedInvalid = 2,      // failed authentication
  kDroppedUnsolicited = 3,  // no S1/A1 context
  kDroppedMalformed = 4,    // undecodable
};

class RelayEngine {
 public:
  struct Options {
    /// Drop protocol packets for associations with no observed handshake.
    /// Off = incremental deployment (forward unverifiable traffic).
    bool require_handshake = true;
    /// Verify public-key signatures on protected handshakes (expensive;
    /// feasible for WMN/WSN, prohibitive for high-churn MANETs, §3.4).
    bool verify_handshake_signatures = false;
  };

  struct Callbacks {
    /// Forwards the (verbatim) frame onward in its travel direction. The
    /// view is only valid for the duration of the call: copy it if the
    /// transport needs ownership. Passing a view instead of a fresh Bytes
    /// keeps the relay data path allocation-free.
    std::function<void(Direction, crypto::ByteView)> forward;
    /// Authenticated payload extracted from a forwarded S2 (§3.5 secure
    /// signaling to middleboxes).
    std::function<void(std::uint32_t assoc_id, std::uint32_t seq,
                       std::uint16_t msg_index, crypto::ByteView payload)>
        on_extracted;
  };

  RelayEngine(Config config, Options options, Callbacks callbacks);

  /// Processes one frame traveling in `dir`; forwards or drops it.
  RelayDecision on_frame(Direction dir, crypto::ByteView frame);

  const RelayStats& stats() const noexcept { return stats_; }

  /// Buffered bytes across all associations (Table 2 relay column: n*h).
  std::size_t buffered_bytes() const noexcept;
  /// Buffered acknowledgment commitments (Table 3 relay column: 2n*h).
  std::size_t ack_buffered_bytes() const noexcept;

 private:
  struct RelayRound {
    Mode mode = Mode::kBase;
    std::size_t s1_index = 0;
    std::vector<crypto::Digest> macs;
    crypto::Digest merkle_root;
    std::uint16_t leaf_count = 0;
    std::vector<crypto::Digest> merkle_roots;  // ALPHA-C+M
    std::uint16_t group_size = 0;              // ALPHA-C+M
    bool a1_seen = false;

    wire::AckScheme scheme = wire::AckScheme::kNone;
    std::size_t a1_ack_index = 0;
    std::vector<crypto::Digest> pre_acks;
    std::vector<crypto::Digest> pre_nacks;
    crypto::Digest amt_root;
    std::uint16_t amt_count = 0;

    std::optional<crypto::Digest> disclosed;      // accepted MAC key
    // Key schedule for `disclosed` (non-tree modes), shared by all S2
    // checks of the round; uses the association's negotiated algorithm.
    std::optional<crypto::MacContext> mac_ctx;
    std::optional<crypto::Digest> ack_disclosed;  // accepted A2 key

    std::size_t message_count() const noexcept {
      if (mode == Mode::kMerkle || mode == Mode::kCumulativeMerkle) {
        return leaf_count;
      }
      return macs.size();
    }
  };

  struct FlowState {
    std::optional<hashchain::ChainVerifier> sig;  // signer's chain
    std::optional<hashchain::ChainVerifier> ack;  // verifier's ack chain
    crypto::Digest sig_anchor;  // detects duplicate handshakes (replay)
    std::map<std::uint32_t, RelayRound> rounds;   // by seq
  };

  struct AssocState {
    crypto::HashAlgo algo = crypto::HashAlgo::kSha1;
    bool handshake_seen = false;
    FlowState flows[2];  // indexed by Direction
  };

  RelayDecision handle_handshake(Direction dir,
                                 const wire::HandshakePacket& hs,
                                 crypto::ByteView frame);
  RelayDecision handle_s1(Direction dir, const wire::S1Packet& s1,
                          crypto::ByteView frame);
  RelayDecision handle_a1(Direction dir, const wire::A1Packet& a1,
                          crypto::ByteView frame);
  RelayDecision handle_s2(Direction dir, const wire::S2Packet& s2,
                          crypto::ByteView frame);
  RelayDecision handle_a2(Direction dir, const wire::A2Packet& a2,
                          crypto::ByteView frame);

  RelayDecision forward(Direction dir, crypto::ByteView frame);
  RelayDecision drop(RelayDecision decision, crypto::ByteView frame,
                     trace::DropReason reason);

  Config config_;
  Options options_;
  Callbacks callbacks_;
  std::map<std::uint32_t, AssocState> assocs_;
  RelayStats stats_;
};

}  // namespace alpha::core
