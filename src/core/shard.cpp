#include "core/shard.hpp"

#include <stdexcept>

#include "trace/trace.hpp"

namespace alpha::core {

namespace {
std::uint64_t derive_granularity(const NodeShard::Options& options) {
  if (options.tick_granularity_us != 0) return options.tick_granularity_us;
  return std::max<std::uint64_t>(options.config.rto_us / 2, 1);
}
}  // namespace

NodeShard::NodeShard(std::uint32_t index, Options options, Callbacks callbacks,
                     SendFn send, WakeupFn wakeup, SendViewFn send_view)
    : index_(index),
      options_(std::move(options)),
      callbacks_(std::move(callbacks)),
      send_(std::move(send)),
      wakeup_(std::move(wakeup)),
      send_view_(std::move(send_view)),
      rng_(options_.seed),
      tick_granularity_(derive_granularity(options_)),
      wheel_(tick_granularity_, options_.wheel_slots) {
  if (!send_) {
    throw std::invalid_argument("NodeShard: null send function");
  }
}

Host& NodeShard::add_host(std::uint32_t assoc_id, net::PeerAddr peer,
                          bool initiator, const Config& config,
                          const Host::Options& host_options) {
  auto [it, inserted] = assocs_.try_emplace(assoc_id);
  if (!inserted) {
    throw std::invalid_argument("NodeShard: duplicate association id");
  }
  AssocEntry& entry = it->second;
  entry.assoc_id = assoc_id;
  entry.peer = peer;

  // std::map node addresses are stable: capturing &entry is safe for the
  // lifetime of the association.
  Host::Callbacks cb;
  cb.send = [this, &entry](crypto::Bytes frame) {
    ++frames_out_;
    ++entry.frames_out;
    if (!send_(entry.peer, std::move(frame))) ++send_failures_;
    // Outbound activity implies a potential retransmission deadline; the
    // wheel fire re-checks whether the association still needs ticking.
    // The timestamp is the ambient trace context one: every send happens
    // inside an entry point that just stamped it.
    arm_timer(entry, trace::current_time_us());
  };
  cb.on_message = [this, assoc_id](crypto::ByteView payload) {
    if (callbacks_.on_message) callbacks_.on_message(assoc_id, payload);
  };
  cb.on_delivery = [this, assoc_id](std::uint64_t cookie,
                                    DeliveryStatus status) {
    if (callbacks_.on_delivery) callbacks_.on_delivery(assoc_id, cookie, status);
  };
  entry.host = std::make_unique<Host>(config, assoc_id, initiator, rng_,
                                      std::move(cb), host_options);
  // The adaptivity loop drives reconfigurations, and only initiators may
  // announce them (responders adopt): responders get no controller.
  if (initiator && options_.adaptive.has_value()) {
    entry.controller = std::make_unique<AdaptiveController>(
        assoc_id, config, *options_.adaptive);
    entry.health = std::make_unique<trace::HealthMonitor>();
  }
  return *entry.host;
}

bool NodeShard::send_frame(net::PeerAddr peer, crypto::ByteView frame) {
  if (send_view_) return send_view_(peer, frame);
  return send_(peer, crypto::Bytes(frame.begin(), frame.end()));
}

RelayEngine& NodeShard::add_relay(net::PeerAddr upstream,
                                  net::PeerAddr downstream,
                                  RelayEngine::Options options,
                                  ExtractFn on_extracted,
                                  std::vector<std::uint32_t> assoc_ids) {
  auto binding = std::make_unique<RelayBinding>();
  RelayBinding* raw = binding.get();
  raw->upstream = upstream;
  raw->downstream = downstream;

  RelayEngine::Callbacks cb;
  cb.forward = [this, raw](Direction dir, crypto::ByteView frame) {
    ++frames_out_;
    const net::PeerAddr next =
        dir == Direction::kForward ? raw->downstream : raw->upstream;
    if (!send_frame(next, frame)) ++send_failures_;
  };
  cb.on_extracted = std::move(on_extracted);
  raw->engine = std::make_unique<RelayEngine>(options_.config, options,
                                              std::move(cb));
  for (const std::uint32_t id : assoc_ids) relay_by_assoc_[id] = raw;
  relays_.push_back(std::move(binding));
  return *raw->engine;
}

RelayPipeline& NodeShard::add_relay_pipeline(
    net::PeerAddr upstream, net::PeerAddr downstream, std::size_t batch,
    RelayEngine::Options options, ExtractFn on_extracted,
    std::vector<std::uint32_t> assoc_ids) {
  auto binding = std::make_unique<RelayBinding>();
  RelayBinding* raw = binding.get();
  raw->upstream = upstream;
  raw->downstream = downstream;

  RelayPipeline::Callbacks cb;
  cb.forward_batch = [this, raw](const RelayPipeline::ForwardItem* items,
                                 std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      ++frames_out_;
      const net::PeerAddr next = items[i].dir == Direction::kForward
                                     ? raw->downstream
                                     : raw->upstream;
      if (!send_frame(next, items[i].frame)) ++send_failures_;
    }
  };
  cb.on_extracted = std::move(on_extracted);
  raw->pipeline = std::make_unique<RelayPipeline>(options_.config, options,
                                                  std::move(cb), batch);
  for (const std::uint32_t id : assoc_ids) relay_by_assoc_[id] = raw;
  relays_.push_back(std::move(binding));
  return *raw->pipeline;
}

void NodeShard::flush_relays() {
  for (const auto& binding : relays_) {
    if (binding->pipeline) binding->pipeline->flush();
  }
  relay_pending_relaxed_.store(0, std::memory_order_relaxed);
}

std::size_t NodeShard::relay_pending() const noexcept {
  std::size_t n = 0;
  for (const auto& binding : relays_) {
    if (binding->pipeline) n += binding->pipeline->pending();
  }
  return n;
}

void NodeShard::start(std::uint32_t assoc_id, std::uint64_t now_us) {
  const auto it = assocs_.find(assoc_id);
  if (it == assocs_.end()) {
    throw std::invalid_argument("NodeShard::start: unknown association");
  }
  const trace::ScopedContext tctx(options_.trace_origin, now_us);
  it->second.host->start(now_us);
  after_activity(it->second, now_us);
}

std::uint64_t NodeShard::submit(std::uint32_t assoc_id, crypto::Bytes payload,
                                std::uint64_t now_us) {
  const auto it = assocs_.find(assoc_id);
  if (it == assocs_.end()) {
    throw std::invalid_argument("NodeShard::submit: unknown association");
  }
  const trace::ScopedContext tctx(options_.trace_origin, now_us);
  const std::uint64_t cookie = it->second.host->submit(std::move(payload),
                                                       now_us);
  after_activity(it->second, now_us);
  return cookie;
}

void NodeShard::on_frame(net::PeerAddr from, crypto::ByteView frame,
                         std::uint64_t now_us) {
  ++frames_in_;
  const trace::ScopedContext tctx(options_.trace_origin, now_us);
  const auto assoc_id = wire::peek_assoc_id(frame);
  if (!assoc_id.has_value()) {
    ++malformed_frames_;
    trace::emit(trace::EventKind::kPacketDropped, 0, 0, 0,
                trace::DropReason::kMalformedHeader, frame.size());
    return;
  }

  // Hot path: a host serves this association.
  if (const auto it = assocs_.find(*assoc_id); it != assocs_.end()) {
    AssocEntry& entry = it->second;
    ++entry.frames_in;
    entry.host->on_frame(frame, now_us);
    after_activity(entry, now_us);
    return;
  }

  // A relay binding covers it (by registered assoc or by source peer).
  if (RelayBinding* binding = relay_for(*assoc_id, from)) {
    const Direction dir = from == binding->downstream ? Direction::kReverse
                                                      : Direction::kForward;
    if (binding->pipeline) {
      // Batched path: enqueue only; flush_relays() runs at end-of-drain
      // (or the enqueue itself flushes a full batch).
      binding->pipeline->enqueue(dir, frame);
      relay_pending_relaxed_.store(relay_pending(), std::memory_order_relaxed);
    } else {
      binding->engine->on_frame(dir, frame);
    }
    return;
  }

  // Unknown association: accept an inbound bootstrap on demand.
  if (options_.accept_inbound &&
      wire::peek_type(frame) == wire::PacketType::kHs1) {
    Host& spawned = add_host(*assoc_id, from, /*initiator=*/false,
                             options_.config, options_.accept_host_options);
    ++accepted_handshakes_;
    AssocEntry& entry = assocs_.find(*assoc_id)->second;
    ++entry.frames_in;
    spawned.on_frame(frame, now_us);
    after_activity(entry, now_us);
    return;
  }

  ++demux_misses_;
  if (trace::enabled()) {
    std::uint8_t type = 0;
    std::uint32_t seq = 0;
    if (const auto t = wire::peek_type(frame)) {
      type = static_cast<std::uint8_t>(*t);
    }
    if (const auto hdr = wire::peek_header(frame)) seq = hdr->seq;
    trace::emit(trace::EventKind::kPacketDropped, *assoc_id, seq, type,
                trace::DropReason::kDemuxMiss);
  }
}

NodeShard::RelayBinding* NodeShard::relay_for(std::uint32_t assoc_id,
                                              net::PeerAddr from) {
  if (relays_.empty()) return nullptr;
  if (const auto it = relay_by_assoc_.find(assoc_id);
      it != relay_by_assoc_.end()) {
    return it->second;
  }
  for (const auto& binding : relays_) {
    if (binding->upstream == from || binding->downstream == from) {
      return binding.get();
    }
  }
  // Unknown source (e.g. an injector one hop away): with a single binding
  // there is no ambiguity -- treat it as forward-direction ingress so the
  // relay's flood filter sees it.
  return relays_.size() == 1 ? relays_.front().get() : nullptr;
}

bool NodeShard::needs_tick(const Host& host) {
  if (host.failed()) return false;  // budget exhausted: no retransmit storm
  if (!host.established()) {
    return host.is_initiator();  // HS1 retransmission until the HS2 lands
  }
  if (host.rekey_pending()) return true;  // rekey HS1 retransmission
  const SignerEngine* signer = host.signer();
  return signer->round_active() || signer->backlog() > 0;
}

void NodeShard::after_activity(AssocEntry& entry, std::uint64_t now_us) {
  const bool established = entry.host->established();
  if (established && !entry.was_established) {
    entry.was_established = true;
    if (callbacks_.on_established) callbacks_.on_established(entry.assoc_id);
  }
  // Incremental count: this runs per frame, so a recount over every
  // association here would make frame cost O(assocs) -- quadratic over a
  // whole run, which a 10^6-association node cannot afford.
  if (established != entry.is_established) {
    entry.is_established = established;
    if (established) {
      established_relaxed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      established_relaxed_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // Adaptivity before the rekey-transition bookkeeping: a controller
  // decision may start a rekey right here, and counting it in the same
  // pass keeps rekeys_started exact even if the handshake completes before
  // the next activity.
  if (entry.controller) maybe_adapt(entry, now_us);
  const bool rekeying = entry.host->rekey_pending();
  if (rekeying && !entry.was_rekey_pending) ++entry.rekeys_started;
  entry.was_rekey_pending = rekeying;
  arm_timer(entry, now_us);
}

void NodeShard::maybe_adapt(AssocEntry& entry, std::uint64_t now_us) {
  Host& host = *entry.host;
  if (!host.established()) return;
  // Interval gate out here (mirroring the controller's own) so the signal
  // collection below -- stat folds, health sampling, ring ingest -- is not
  // per-frame work. Each observe() call therefore carries one full window.
  const std::uint64_t interval = options_.adaptive->interval_us;
  if (entry.adapt_last_us != 0 && now_us - entry.adapt_last_us < interval) {
    return;
  }
  entry.adapt_last_us = now_us;

  AdaptSignals sig;
  const SignerStats total = host.signer_stats_total();
  sig.s1_sent = total.s1_sent - entry.adapt_seen.s1_sent;
  sig.s2_sent = total.s2_sent - entry.adapt_seen.s2_sent;
  sig.retransmits =
      (total.s1_retransmits - entry.adapt_seen.s1_retransmits) +
      (total.s2_retransmits - entry.adapt_seen.s2_retransmits) +
      (host.hs_retransmits() - entry.adapt_seen_hs_retx);
  sig.rounds_completed =
      total.rounds_completed - entry.adapt_seen.rounds_completed;
  sig.rounds_failed = total.rounds_failed - entry.adapt_seen.rounds_failed;
  sig.delivered = total.acks_received - entry.adapt_seen.acks_received;
  entry.adapt_seen = total;
  entry.adapt_seen_hs_retx = host.hs_retransmits();

  const SignerEngine* se = host.signer();
  sig.backlog = se->backlog();
  sig.round_retries = se->round_retries();
  sig.max_retries = host.config().max_retries;

  // Per-association health: the watchdog sees exactly this association's
  // progress, so its verdict replays identically at any worker count.
  trace::AssocHealthSample sample;
  sample.assoc_id = entry.assoc_id;
  sample.established = true;
  sample.failed = host.failed();
  sample.round_active = se->round_active();
  sample.round_seq = se->round_seq();
  sample.round_retries = se->round_retries();
  sample.rekeys_started = entry.rekeys_started;
  health_scratch_.clear();
  health_scratch_.push_back(sample);
  entry.health->observe(health_scratch_, now_us);
  sig.health = static_cast<std::uint8_t>(entry.health->state());

  // Span-derived delivery latency: ingest whatever the owning thread's
  // trace ring recorded since the last window (read-only cursor; in the
  // inline drive all shards read the same ring, but the histograms are
  // per-assoc so each controller only sees its own association).
  if (const trace::Ring* ring = trace::sink()) {
    adapt_spans_.ingest_new(*ring);
  }
  char label[32];
  std::snprintf(label, sizeof(label), "assoc=\"%u\"", entry.assoc_id);
  const metrics::Histogram& latency =
      adapt_registry_.histogram("alpha_span_delivery_latency_us", label);
  if (latency.count() > 0) {
    sig.p50_delivery_us = latency.quantile(0.5);
    sig.p99_delivery_us = latency.quantile(0.99);
  }

  if (const auto decision = entry.controller->observe(sig, now_us)) {
    host.request_reconfig(decision->target, now_us);
  }
  // Live alpha_adapt_* series next to the span histograms, so one scrape of
  // the registry explains the loop's state.
  adapt_registry_.counter("alpha_adapt_evaluations", label) =
      entry.controller->evaluations();
  adapt_registry_.counter("alpha_adapt_switches", label) =
      entry.controller->switches();
  adapt_registry_.counter("alpha_adapt_profile", label) =
      entry.controller->profile_index();
  adapt_registry_.counter("alpha_adapt_loss_permille", label) =
      static_cast<std::uint64_t>(entry.controller->loss_ewma() * 1000.0);
  adapt_registry_.counter("alpha_adapt_reconfigs_applied", label) =
      host.reconfigs_applied();
}

void NodeShard::arm_timer(AssocEntry& entry, std::uint64_t now_us) {
  // Backoff-aware arming: ask the host for its true next retransmission
  // deadline so a round deep into exponential backoff does not wake the
  // wheel every granularity tick for nothing. The cadence floor keeps
  // partial-batch flushing and rekey checks alive.
  std::uint64_t deadline = now_us + tick_granularity_;
  if (const auto next = entry.host->next_deadline_us();
      next.has_value() && *next > deadline) {
    deadline = *next;
  }
  // Already armed at an earlier-or-equal deadline: nothing to do. A later
  // stale wheel entry fires harmlessly -- hosts gate on elapsed time.
  if (entry.timer_armed && entry.timer_deadline_us <= deadline) return;
  entry.timer_armed = true;
  entry.timer_deadline_us = deadline;
  wheel_.arm(entry.assoc_id, deadline);
  if (wakeup_) wakeup_(deadline);
}

void NodeShard::advance_timers(std::uint64_t now_us) {
  const trace::ScopedContext tctx(options_.trace_origin, now_us);
  due_.clear();
  wheel_.advance(now_us, due_);
  for (const std::uint32_t key : due_) {
    const auto it = assocs_.find(key);
    if (it == assocs_.end()) continue;
    AssocEntry& entry = it->second;
    if (!entry.timer_armed) continue;  // lazily cancelled
    entry.timer_armed = false;
    if (!needs_tick(*entry.host)) continue;  // deadline evaporated: disarm
    ++timer_fires_;
    entry.host->on_tick(now_us);
    after_activity(entry, now_us);  // re-arms while work remains
  }
  // Keep a cadence wakeup alive while any deadline is armed. A stale early
  // wakeup costs one cheap advance() pass, nothing more. Worker-polled
  // shards (no wakeup function) call advance_timers continuously instead.
  if (wakeup_ && !wheel_.empty()) wakeup_(now_us + tick_granularity_);
}

Host* NodeShard::host(std::uint32_t assoc_id) noexcept {
  const auto it = assocs_.find(assoc_id);
  return it == assocs_.end() ? nullptr : it->second.host.get();
}

const Host* NodeShard::host(std::uint32_t assoc_id) const noexcept {
  const auto it = assocs_.find(assoc_id);
  return it == assocs_.end() ? nullptr : it->second.host.get();
}

std::size_t NodeShard::established_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [id, entry] : assocs_) {
    if (entry.host->established()) ++n;
  }
  return n;
}

void NodeShard::snapshot_into(NodeSnapshot& s, bool per_assoc) const {
  s.frames_in += frames_in_;
  s.frames_out += frames_out_;
  s.malformed_frames += malformed_frames_;
  s.demux_misses += demux_misses_;
  s.send_failures += send_failures_;
  s.accepted_handshakes += accepted_handshakes_;
  s.timer_fires += timer_fires_;
  s.associations += assocs_.size();
  for (const auto& [id, entry] : assocs_) {
    const bool established = entry.host->established();
    if (established) ++s.established;
    if (entry.host->failed()) ++s.failed;
    s.rekeys_started += entry.rekeys_started;
    s.corrupt_frames += entry.host->undecodable_frames();
    s.replayed_handshakes += entry.host->replayed_handshakes();
    s.duplicate_handshakes += entry.host->duplicate_handshakes();
    s.retransmits += entry.host->hs_retransmits();
    s.reconfigs_applied += entry.host->reconfigs_applied();
    if (entry.controller) {
      s.adapt_evaluations += entry.controller->evaluations();
      s.adapt_switches += entry.controller->switches();
    }
    // Lifetime totals, not the current engines': a rekey retires the
    // engines, and reading only the live pair made every rekey look like a
    // counter reset in the snapshot.
    const SignerStats signer = entry.host->signer_stats_total();
    const VerifierStats verifier = entry.host->verifier_stats_total();
    s.messages_delivered += verifier.messages_delivered;
    s.messages_forged += verifier.invalid_packets + signer.invalid_packets;
    s.duplicate_frames += verifier.duplicate_packets;
    s.retransmits += signer.s1_retransmits + signer.s2_retransmits;
    if (per_assoc) {
      AssocSnapshot a;
      a.assoc_id = id;
      a.initiator = entry.host->is_initiator();
      a.established = established;
      a.rekey_pending = entry.host->rekey_pending();
      a.failed = entry.host->failed();
      a.frames_in = entry.frames_in;
      a.frames_out = entry.frames_out;
      a.rekeys_started = entry.rekeys_started;
      a.hs_retransmits = entry.host->hs_retransmits();
      a.corrupt_frames = entry.host->undecodable_frames();
      a.replayed_handshakes = entry.host->replayed_handshakes();
      a.duplicate_handshakes = entry.host->duplicate_handshakes();
      a.mode = entry.host->config().mode;
      a.batch = entry.host->config().effective_batch();
      a.reconfigs_applied = entry.host->reconfigs_applied();
      if (entry.controller) {
        a.adapt_evaluations = entry.controller->evaluations();
        a.adapt_switches = entry.controller->switches();
        a.adapt_profile = entry.controller->profile_index();
        a.adapt_loss_ewma = entry.controller->loss_ewma();
      }
      if (const SignerEngine* se = entry.host->signer()) {
        a.round_active = se->round_active();
        a.round_seq = se->round_seq();
        a.round_retries = se->round_retries();
        a.backlog = se->backlog();
      }
      a.signer = signer;
      a.verifier = verifier;
      s.assocs.push_back(std::move(a));
    }
  }
  for (const auto& binding : relays_) {
    const RelayStats& r =
        binding->pipeline ? binding->pipeline->stats() : binding->engine->stats();
    s.relay += r;
    s.messages_forged += r.dropped_invalid;
  }
}

}  // namespace alpha::core
