// Batched relay fast path (run-to-completion verify-and-forward).
//
// RelayEngine (core/relay.hpp) is the reference implementation of the
// relay decision procedure: one frame in, one wire::decode (which heap-
// allocates the packet's vectors), one std::map walk to the association,
// one verdict out. Correct, but a forwarding node at line rate spends most
// of its cycles in exactly that per-frame overhead, not in the hash checks
// the paper counts (Table 1 relay column: ~2 hashes per data packet).
//
// RelayPipeline is the same decision procedure restructured around batches:
//
//  * frames are collected into a batch and demuxed in a peek pass that
//    resolves each frame's association to a slot in a flat, open-addressed
//    state array -- no map, no pointer chasing -- and software-prefetches
//    the slot so the verify pass never stalls on a cold association line;
//  * S2s (the steady-state traffic) are parsed with wire::parse_s2, a
//    zero-copy view parser that never touches the heap, and verified
//    against per-round memoized state: the first S2 of a round pays the
//    chain walk and the HMAC key schedule (ipad/opad midstates), every
//    later one re-uses both -- the batch amortizes what the scalar engine
//    re-derives via cold map lookups;
//  * surviving frames are emitted as ONE forward_batch callback per flush,
//    in arrival order, which is what lets the transport layer push them
//    with a single sendmmsg.
//
// Equivalence contract: decisions are a pure function of the frame
// sequence, never of batch boundaries. All verdict state persists across
// flushes, so chopping one frame sequence into batches of 1 or 1000
// produces bit-identical decisions to RelayEngine -- asserted by the
// seeded-chaos equivalence suite (tests/core/relay_pipeline_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/relay.hpp"
#include "core/stats.hpp"
#include "crypto/mac.hpp"
#include "hashchain/chain.hpp"
#include "merkle/merkle.hpp"
#include "wire/packets.hpp"

namespace alpha::core {

class RelayPipeline {
 public:
  /// One verified frame ready to forward, in arrival order. The view points
  /// into the pipeline's recycled frame buffers and is only valid for the
  /// duration of the forward_batch call.
  struct ForwardItem {
    Direction dir = Direction::kForward;
    crypto::ByteView frame;
  };

  struct Callbacks {
    /// Emits one flush's worth of verified frames, in arrival order; called
    /// once per flush that forwarded anything. Receiving the whole batch at
    /// once is what lets the transport use one sendmmsg per flush.
    std::function<void(const ForwardItem* items, std::size_t count)>
        forward_batch;
    /// Same contract as RelayEngine::Callbacks::on_extracted.
    std::function<void(std::uint32_t assoc_id, std::uint32_t seq,
                       std::uint16_t msg_index, crypto::ByteView payload)>
        on_extracted;
    /// Optional per-frame decision tap, invoked in arrival order (used by
    /// the equivalence suite; leave empty on the fast path).
    std::function<void(RelayDecision, Direction, crypto::ByteView)>
        on_decision;
  };

  /// `batch_capacity` frames are buffered before a flush triggers
  /// automatically (clamped to >= 1; 1 degenerates to scalar operation).
  RelayPipeline(Config config, RelayEngine::Options options,
                Callbacks callbacks, std::size_t batch_capacity);

  /// Copies one frame into the pending batch; auto-flushes at capacity.
  void enqueue(Direction dir, crypto::ByteView frame);

  /// Processes every pending frame and emits survivors as one batch. Call
  /// on idle / end-of-drain so partial batches never stall.
  void flush();

  std::size_t pending() const noexcept { return pending_count_; }
  std::size_t batch_capacity() const noexcept { return batch_capacity_; }
  std::size_t assoc_count() const noexcept { return slots_.size(); }
  const RelayStats& stats() const noexcept { return stats_; }

 private:
  // Same limits as RelayEngine; decision equivalence depends on them.
  static constexpr std::size_t kMaxBatchMessages = 4096;
  static constexpr std::size_t kMaxRoundsPerFlow = 8;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Per-round verification state, storage-recycled on reuse: the vectors
  /// keep their capacity when a round slot is reassigned to a new seq, so
  /// steady-state round turnover does not allocate.
  struct Round {
    bool used = false;
    std::uint32_t seq = 0;
    Mode mode = Mode::kBase;
    std::size_t s1_index = 0;
    std::vector<crypto::Digest> macs;
    crypto::Digest merkle_root;
    std::uint16_t leaf_count = 0;
    std::vector<crypto::Digest> merkle_roots;  // ALPHA-C+M
    std::uint16_t group_size = 0;              // ALPHA-C+M
    bool a1_seen = false;

    wire::AckScheme scheme = wire::AckScheme::kNone;
    std::size_t a1_ack_index = 0;
    std::vector<crypto::Digest> pre_acks;
    std::vector<crypto::Digest> pre_nacks;
    crypto::Digest amt_root;
    std::uint16_t amt_count = 0;

    std::optional<crypto::Digest> disclosed;      // accepted MAC key
    std::optional<crypto::MacContext> mac_ctx;    // its key schedule
    std::optional<crypto::Digest> ack_disclosed;  // accepted A2 key

    std::size_t message_count() const noexcept {
      if (mode == Mode::kMerkle || mode == Mode::kCumulativeMerkle) {
        return leaf_count;
      }
      return macs.size();
    }
    void reset(std::uint32_t new_seq) noexcept;
  };

  struct Flow {
    std::optional<hashchain::ChainVerifier> sig;
    std::optional<hashchain::ChainVerifier> ack;
    crypto::Digest sig_anchor;  // detects duplicate handshakes (replay)
    Round rounds[kMaxRoundsPerFlow];  // unordered; (used, seq) identify

    Round* find_round(std::uint32_t seq) noexcept;
  };

  /// One association's state, inline in the flat slot array. Slots are
  /// created by handshakes and never removed, so a slot index, once
  /// resolved, stays valid for the pipeline's lifetime.
  struct AssocSlot {
    std::uint32_t assoc_id = 0;
    crypto::HashAlgo algo = crypto::HashAlgo::kSha1;
    bool handshake_seen = false;
    Flow flows[2];  // indexed by Direction
  };

  struct PendingFrame {
    Direction dir = Direction::kForward;
    std::vector<std::uint8_t> buf;  // grow-only, recycled across flushes
    std::uint32_t slot = kNoSlot;   // pass-1 demux result (prefetch hint)
  };

  // -- flat association table (open addressing, Fibonacci hash) --
  std::uint32_t find_slot(std::uint32_t assoc_id) const noexcept;
  std::uint32_t find_or_create_slot(std::uint32_t assoc_id);
  void grow_index();

  // -- decision procedure (mirrors RelayEngine handle_* exactly) --
  void process(PendingFrame& p);
  RelayDecision process_s2(Direction dir, const wire::S2View& s2,
                           crypto::ByteView frame, std::uint32_t slot_hint);
  RelayDecision process_handshake(Direction dir,
                                  const wire::HandshakePacket& hs,
                                  crypto::ByteView frame);
  RelayDecision process_s1(Direction dir, const wire::S1Packet& s1,
                           crypto::ByteView frame, std::uint32_t slot_hint);
  RelayDecision process_a1(Direction dir, const wire::A1Packet& a1,
                           crypto::ByteView frame, std::uint32_t slot_hint);
  RelayDecision process_a2(Direction dir, const wire::A2Packet& a2,
                           crypto::ByteView frame, std::uint32_t slot_hint);

  /// Inserts a round for `seq` mirroring the engine's emplace-then-evict
  /// map semantics: nullptr means the new round itself was the eviction
  /// victim (its seq is below every retained round of a full flow).
  Round* insert_round(Flow& flow, std::uint32_t seq);

  RelayDecision forward_to_batch(Direction dir, crypto::ByteView frame);
  RelayDecision drop(RelayDecision decision, crypto::ByteView frame,
                     trace::DropReason reason);
  RelayDecision malformed(crypto::ByteView frame);

  Config config_;
  RelayEngine::Options options_;
  Callbacks callbacks_;
  std::size_t batch_capacity_;

  std::vector<AssocSlot> slots_;
  std::vector<std::uint32_t> index_;  // slot+1 entries; 0 = empty
  std::vector<PendingFrame> pending_;
  std::size_t pending_count_ = 0;
  std::vector<ForwardItem> forward_items_;  // recycled per flush
  merkle::AuthPath path_scratch_;           // recycled {Bc} decode target

  RelayStats stats_;
};

}  // namespace alpha::core
