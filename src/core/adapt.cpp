#include "core/adapt.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace alpha::core {

namespace {

// The profile ladder, most robust first. Rung 0 is base mode with the
// fattest retry budget: one message per round rides out a long outage
// because only that single message's budget is on the clock, and with the
// exponential backoff capped at rto_max every extra retry buys whole
// seconds of outage coverage. The middle rungs amortize chain elements and
// A1 turnarounds over growing ALPHA-C batches; the top rungs switch to tree
// modes, whose S1 stays one digest (plus counters) no matter the batch,
// keeping huge batches inside one MTU. Extra retries concentrate at the
// bottom: robustness is *why* the controller demotes there, while a fat
// budget on a 64-message round just keeps 64 messages hostage to a channel
// that already proved it eats them.
constexpr AdaptProfile kLadder[] = {
    {Mode::kBase, 1, 8, 10},
    {Mode::kCumulative, 2, 8, 4},
    {Mode::kCumulative, 4, 8, 0},
    {Mode::kCumulative, 8, 8, 0},
    {Mode::kCumulative, 16, 8, 0},
    {Mode::kMerkle, 32, 8, 0},
    {Mode::kCumulativeMerkle, 64, 8, 0},
};
constexpr std::size_t kLadderSize = sizeof(kLadder) / sizeof(kLadder[0]);

/// Starting rung: the ladder entry nearest the deployment's configured
/// profile, so enabling the controller never causes a gratuitous switch.
std::size_t initial_rung(const Config& base) noexcept {
  const std::size_t batch = base.effective_batch();
  std::size_t best = 0;
  std::size_t best_dist = ~std::size_t{0};
  for (std::size_t i = 0; i < kLadderSize; ++i) {
    const std::size_t b = kLadder[i].batch;
    const std::size_t dist = b > batch ? b - batch : batch - b;
    // Prefer the matching mode on ties, lower rung otherwise.
    const bool better =
        dist < best_dist ||
        (dist == best_dist && kLadder[i].mode == base.mode);
    if (better) {
      best = i;
      best_dist = dist;
    }
  }
  return best;
}

}  // namespace

const char* to_string(AdaptReason reason) noexcept {
  switch (reason) {
    case AdaptReason::kHold: return "hold";
    case AdaptReason::kPromoteClean: return "promote_clean";
    case AdaptReason::kDemoteLoss: return "demote_loss";
    case AdaptReason::kDemoteHealth: return "demote_health";
    case AdaptReason::kDemoteBudget: return "demote_budget";
    case AdaptReason::kDemoteLatency: return "demote_latency";
    case AdaptReason::kPromoteFlush: return "promote_flush";
  }
  return "unknown";
}

const AdaptProfile* AdaptiveController::ladder(std::size_t* count) noexcept {
  if (count != nullptr) *count = kLadderSize;
  return kLadder;
}

AdaptiveController::AdaptiveController(std::uint32_t assoc_id,
                                       const Config& base, Options options)
    : assoc_id_(assoc_id),
      base_(base),
      options_(options),
      index_(initial_rung(base)),
      top_(std::min(options.max_profile, kLadderSize - 1)) {
  if (index_ > top_) index_ = top_;
  snap_back_ = index_;
}

const AdaptProfile& AdaptiveController::profile() const noexcept {
  return kLadder[index_];
}

wire::ReconfigAnnounce AdaptiveController::reconfig() const noexcept {
  return reconfig_for(index_);
}

wire::ReconfigAnnounce AdaptiveController::reconfig_for(
    std::size_t index) const noexcept {
  const AdaptProfile& p = kLadder[index];
  wire::ReconfigAnnounce r;
  r.mode = p.mode;
  r.batch_size = p.batch;
  r.merkle_group = p.merkle_group;
  const int retries = base_.max_retries + p.extra_retries;
  r.max_retries = static_cast<std::uint8_t>(std::clamp(retries, 1, 255));
  // Rekey cadence rides the same announcement: robust rungs rekey earlier
  // (more chain headroom for retransmission storms), lean rungs keep the
  // deployment's cadence. Rung 0..1 count as "lossy" territory.
  std::size_t threshold = base_.rekey_threshold;
  if (index <= 1 && threshold != 0 && options_.lossy_rekey_headroom > 1) {
    threshold *= options_.lossy_rekey_headroom;
    // Never demand more headroom than half a chain: a threshold at or above
    // chain_length would rekey every round.
    threshold = std::min(threshold, base_.chain_length / 2);
  }
  r.rekey_threshold = static_cast<std::uint32_t>(
      std::min<std::size_t>(threshold, 0xFFFFFFFFu));
  return r;
}

void AdaptiveController::emit_decision(AdaptReason reason, std::size_t from,
                                       std::size_t to,
                                       std::uint8_t health) const noexcept {
  const AdaptProfile& f = kLadder[from];
  const AdaptProfile& t = kLadder[to];
  const double budget =
      acc_.max_retries > 0
          ? static_cast<double>(acc_.round_retries) / acc_.max_retries
          : 0.0;
  trace::emit(trace::EventKind::kAdaptDecision, assoc_id_,
              static_cast<std::uint32_t>(evaluations_),
              /*packet_type=*/0, trace::DropReason::kNone,
              trace::pack_adapt_detail(
                  static_cast<std::uint8_t>(t.mode), t.batch,
                  static_cast<std::uint8_t>(f.mode), f.batch,
                  static_cast<std::uint8_t>(reason),
                  static_cast<std::uint32_t>(loss_ewma_ * 1000.0),
                  static_cast<std::uint32_t>(budget * 100.0), health));
}

std::optional<AdaptDecision> AdaptiveController::observe(
    const AdaptSignals& signals, std::uint64_t now_us) {
  // Accumulate deltas; live fields overwrite (latest wins).
  acc_.s1_sent += signals.s1_sent;
  acc_.s2_sent += signals.s2_sent;
  acc_.retransmits += signals.retransmits;
  acc_.rounds_completed += signals.rounds_completed;
  acc_.rounds_failed += signals.rounds_failed;
  acc_.delivered += signals.delivered;
  acc_.backlog = signals.backlog;
  acc_.round_retries = signals.round_retries;
  acc_.max_retries = signals.max_retries;
  acc_.health = signals.health;
  acc_.p50_delivery_us = signals.p50_delivery_us;
  acc_.p99_delivery_us = signals.p99_delivery_us;

  if (evaluated_once_ && now_us - last_eval_us_ < options_.interval_us) {
    return std::nullopt;
  }
  evaluated_once_ = true;
  last_eval_us_ = now_us;
  ++evaluations_;

  // Loss proxy: share of wire sends this window that were retransmissions.
  // s1_sent/s2_sent count initial sends only, so the ratio is bounded by 1.
  const std::uint64_t sends = acc_.s1_sent + acc_.s2_sent + acc_.retransmits;
  const bool had_traffic =
      sends >= std::max<std::uint64_t>(1, options_.min_window_sends);
  const double inst =
      had_traffic
          ? static_cast<double>(acc_.retransmits) / static_cast<double>(sends)
          : 0.0;
  if (had_traffic) {
    loss_ewma_ =
        options_.loss_alpha * inst + (1.0 - options_.loss_alpha) * loss_ewma_;
  }
  const double budget_pressure =
      acc_.max_retries > 0
          ? static_cast<double>(acc_.round_retries) /
                static_cast<double>(acc_.max_retries)
          : 0.0;
  const std::uint8_t health = acc_.health;
  // NaN-safe latency gate: NaN fails the comparison, i.e. "no evidence".
  const bool latency_bad = options_.latency_target_us > 0 &&
                           acc_.p99_delivery_us > options_.latency_target_us;

  // Escalation streaks. During a partition the loss EWMA is blind (an
  // S1-phase round retransmits one frame per backoff, so every window falls
  // under min_window_sends and freezes the EWMA); the watchdog and the
  // retry-budget gauge are the signals that still see it. One hot window is
  // a blip and steps down one rung; two in a row mean the in-flight round
  // is pinned against its budget -- a dead link -- and the right rung is
  // the most robust one, immediately.
  health_streak_ = health != 0 ? health_streak_ + 1 : 0;
  budget_streak_ =
      budget_pressure >= options_.budget_demote ? budget_streak_ + 1 : 0;

  // Backlog-flush override: a disturbance that just *ended* leaves the EWMA
  // poisoned and a backlog queued, and the EWMA's decay time is exactly the
  // time the flush would spend draining that backlog at a lean rung. The
  // instantaneous window is fresh evidence the channel delivers again, so
  // promote now -- straight back to the pre-disturbance rung -- and let the
  // EWMA restart from today's measurement instead of the outage's.
  const bool flush_override =
      options_.flush_backlog_factor > 0 && had_traffic &&
      inst <= options_.promote_loss && index_ < top_ &&
      acc_.backlog >=
          options_.flush_backlog_factor * std::size_t{profile().batch} &&
      budget_pressure < options_.budget_demote;

  // Boundary flush, the mid-outage variant: when the in-flight round is
  // pinned against its budget the rekey boundary cannot open until the
  // channel heals, so whatever profile is staged at that boundary is by
  // construction the *post-heal* profile. Once the queue behind the pinned
  // round is deeper than the snap-back rung's whole batch, that post-heal
  // work is a drain job and the staged profile should be the drain rung.
  // Waiting for a post-heal clean window to say so (the flush override
  // above) is provably too late at LAN round-trips: rung 0 rips through
  // the entire backlog inside one evaluation interval, spending ~4 frames
  // per message before the flush can land.
  // "Pinned" uses the same corroboration as the dead-link escalation
  // below: either the budget gauge alone is deep in the red, or the
  // watchdog has been degraded for consecutive windows while the budget
  // burns -- a shorter outage (rung 0 carries a fat budget, so the gauge
  // climbs slowly) would otherwise heal before the gauge ever gets there.
  const std::size_t drain_rung = std::min(snap_back_, top_);
  const bool outage_pinned =
      budget_pressure >= options_.budget_demote ||
      (health != 0 && health_streak_ >= 2 &&
       budget_pressure >= options_.budget_demote * 0.5);
  const bool boundary_flush =
      options_.flush_backlog_factor > 0 && outage_pinned &&
      acc_.backlog >= std::size_t{kLadder[drain_rung].batch};

  AdaptReason reason = AdaptReason::kHold;
  std::size_t target = index_;
  if (flush_override) {
    target = std::min(std::max(index_ + 1, snap_back_), top_);
    reason = AdaptReason::kPromoteFlush;
    loss_ewma_ = inst;
  } else if (boundary_flush) {
    // Hold the drain rung while the outage lasts (kHold on repeat evals
    // keeps the belief stable instead of flapping against the demote
    // branches below); rounds cannot launch meanwhile -- the signer is
    // paused at the held boundary -- so the lean profile endangers nothing.
    target = std::max(index_, drain_rung);
    reason =
        target != index_ ? AdaptReason::kPromoteFlush : AdaptReason::kHold;
  } else if (loss_ewma_ >= options_.severe_loss) {
    target = 0;
    reason = AdaptReason::kDemoteLoss;
  } else if (loss_ewma_ >= options_.demote_loss) {
    if (index_ > 0) target = index_ - 1;
    reason = AdaptReason::kDemoteLoss;
  } else if (health != 0) {
    // The watchdog alone is one defensive step: "degraded" also covers
    // rekey storms and transient wedges on an otherwise fine channel
    // (including rekeys this controller itself requested). Escalating to
    // the most robust rung takes corroboration -- a sustained streak AND
    // the in-flight round visibly burning its budget, which is what a
    // partition looks like. Persistent degradation without that
    // corroboration holds position: it blocks promotions (the reason
    // resets the clean/hold clocks below) but never walks the whole
    // ladder down on watchdog noise.
    if (health_streak_ >= 2 &&
        budget_pressure >= options_.budget_demote * 0.5) {
      target = 0;
    } else if (health_streak_ <= 1 && index_ > 0) {
      target = index_ - 1;
    }
    reason = AdaptReason::kDemoteHealth;
  } else if (budget_pressure >= options_.budget_demote) {
    if (budget_streak_ >= 2) {
      target = 0;
    } else if (index_ > 0) {
      target = index_ - 1;
    }
    reason = AdaptReason::kDemoteBudget;
  } else if (latency_bad) {
    if (index_ > 0) target = index_ - 1;
    reason = AdaptReason::kDemoteLatency;
  } else if (had_traffic && loss_ewma_ <= options_.promote_loss) {
    ++clean_windows_;
    if (clean_windows_ >= options_.promote_patience && cooldown_left_ == 0 &&
        index_ < top_ &&
        (options_.promote_hold_us == 0 ||
         now_us - last_pressure_us_ >= options_.promote_hold_us)) {
      // Snap back to the rung the last demotion episode fell from (it was
      // proven sustainable before the disturbance); climb stepwise past it.
      target = std::min(std::max(index_ + 1, snap_back_), top_);
      reason = AdaptReason::kPromoteClean;
    }
  }
  if (reason != AdaptReason::kHold && reason != AdaptReason::kPromoteClean &&
      reason != AdaptReason::kPromoteFlush) {
    clean_windows_ = 0;       // any pressure restarts the promotion clock
    last_pressure_us_ = now_us;  // ...and the promote-hold clock
  }

  emit_decision(reason, index_, target, health);
  acc_ = AdaptSignals{};  // next window accumulates fresh deltas
  if (cooldown_left_ > 0) --cooldown_left_;

  if (target == index_) return std::nullopt;

  if (target < index_) {
    // Remember the rung this demotion episode fell from for snap-back.
    snap_back_ = std::max(snap_back_, index_);
  }
  index_ = target;
  if (index_ > snap_back_) snap_back_ = index_;
  ++switches_;
  clean_windows_ = 0;
  cooldown_left_ = options_.cooldown;
  // Every switch restarts the promote-hold clock: each rung must prove
  // itself over sustained clean time before the next step up.
  last_pressure_us_ = now_us;

  AdaptDecision d;
  d.target = reconfig_for(target);
  d.reason = reason;
  d.profile_index = static_cast<std::uint8_t>(target);
  d.loss_rate = loss_ewma_;
  d.budget_pressure = budget_pressure;
  d.health = health;
  return d;
}

}  // namespace alpha::core
