// Closed-loop adaptivity: the live-telemetry mode/batch controller.
//
// ALPHA's §3 trade-off -- base mode for robustness, ALPHA-C for amortized
// overhead, ALPHA-M/C+M for bounded control-packet size -- is a choice the
// seed tree froze at association setup. AdaptiveController closes the loop:
// it consumes the signals the telemetry layer already produces (per-round
// span latency quantiles from trace::SpanBuilder, loss pressure from the
// retransmit taxonomy, HealthMonitor state, retransmit-budget pressure) and
// walks a deterministic ladder of (mode, batch) profiles, demoting toward
// base under loss and promoting toward large batches on sustained clean
// windows.
//
// Decisions are *proposals*: a switch only takes effect at a rekey boundary
// (Host::request_reconfig stages a wire::ReconfigAnnounce that rides the
// rekey HS1 and is echoed in the HS2), because chain rotation is the one
// point where both ends discard per-round state anyway. Until that boundary
// the association keeps running the old profile; the per-round wire format
// is self-describing (mode and batch travel in every S1), so even a
// temporarily asymmetric profile never desyncs signer from verifier.
//
// Everything here is deterministic: the policy is pure arithmetic over the
// observed window (no RNG, no wall clock), so a seeded simulator run
// replays the exact decision sequence at any worker count. Every
// evaluation -- switch or hold -- emits one kAdaptDecision trace event
// whose detail packs the input snapshot (see trace::pack_adapt_detail),
// making the policy explainable post-hoc via `alpha_inspect --adapt`.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>

#include "core/config.hpp"
#include "wire/packets.hpp"

namespace alpha::core {

/// Why the controller moved (or held). Stored in the kAdaptDecision detail.
enum class AdaptReason : std::uint8_t {
  kHold = 0,           // evaluated, no change
  kPromoteClean = 1,   // sustained clean channel: grow the batch
  kDemoteLoss = 2,     // retransmit/loss pressure: shrink toward base
  kDemoteHealth = 3,   // health watchdog left kOk
  kDemoteBudget = 4,   // in-flight round burning most of its retry budget
  kDemoteLatency = 5,  // p99 delivery latency blew past the target
  kPromoteFlush = 6,   // healed channel + queued backlog: snap back now
};

const char* to_string(AdaptReason reason) noexcept;

/// One observation window of per-association signals. Counter fields are
/// deltas since the previous observe() call (the caller keeps the previous
/// totals); state fields are live values at observation time. Latency
/// quantiles come from span histograms and are NaN while no round has
/// completed -- exactly the metrics::Histogram::quantile sentinel -- and
/// the policy treats NaN as "no evidence", never as a number.
struct AdaptSignals {
  // Send/retransmit deltas from SignerStats (+ handshake retransmits).
  std::uint64_t s1_sent = 0;
  std::uint64_t s2_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rounds_completed = 0;
  std::uint64_t rounds_failed = 0;
  std::uint64_t delivered = 0;  // messages the peer acknowledged
  // Live state.
  std::size_t backlog = 0;            // submitted, not yet in a round
  std::uint32_t round_retries = 0;    // in-flight round attempts so far
  int max_retries = 0;                // current budget (pressure denominator)
  std::uint8_t health = 0;            // trace::HealthState value
  // Span-derived delivery latency in microseconds (NaN = no samples).
  double p50_delivery_us = std::numeric_limits<double>::quiet_NaN();
  double p99_delivery_us = std::numeric_limits<double>::quiet_NaN();
};

/// One rung of the profile ladder.
struct AdaptProfile {
  Mode mode = Mode::kBase;
  std::uint16_t batch = 1;
  std::uint16_t merkle_group = 8;  // meaningful for kCumulativeMerkle only
  std::uint8_t extra_retries = 0;  // added to the base budget (robust rungs)
};

/// The verdict of one evaluation that requested a switch.
struct AdaptDecision {
  wire::ReconfigAnnounce target;  // profile to stage at the rekey boundary
  AdaptReason reason = AdaptReason::kHold;
  std::uint8_t profile_index = 0;  // ladder rung of `target`
  double loss_rate = 0.0;          // EWMA at decision time
  double budget_pressure = 0.0;    // round_retries / max_retries
  std::uint8_t health = 0;
};

class AdaptiveController {
 public:
  struct Options {
    /// Minimum spacing between policy evaluations; observe() calls inside
    /// the window only accumulate deltas. Virtual time under the simulator.
    std::uint64_t interval_us = 500'000;
    /// EWMA smoothing for the per-window loss rate (0 < alpha <= 1).
    double loss_alpha = 0.4;
    /// Loss EWMA below which a window counts as clean.
    double promote_loss = 0.02;
    /// Loss EWMA above which the controller steps one rung down.
    double demote_loss = 0.12;
    /// Loss EWMA above which it drops straight to the most robust rung.
    double severe_loss = 0.35;
    /// Consecutive clean windows required before stepping up.
    int promote_patience = 2;
    /// Windows to block further *promotions* after any switch (demotions
    /// stay allowed: safety reacts immediately, growth is patient).
    int cooldown = 2;
    /// round_retries / max_retries above which the budget demotes.
    double budget_demote = 0.75;
    /// p99 delivery latency (us) above which the controller demotes;
    /// 0 disables the latency gate.
    double latency_target_us = 0;
    /// Highest ladder rung the controller may promote to (clamped to the
    /// ladder size). Lets small-MTU deployments fence off huge batches.
    std::size_t max_profile = 64;
    /// Rekey headroom multiplier applied to the base rekey_threshold while
    /// on a demoted (lossy) rung: rekeying earlier buys chain slack for
    /// retransmission storms. 1 disables.
    std::size_t lossy_rekey_headroom = 2;
    /// Backlog-flush override: when the *instantaneous* window is clean but
    /// the EWMA is still poisoned by a disturbance that just ended (a healed
    /// partition leaves a large queued backlog and a high EWMA), a backlog
    /// deeper than this many multiples of the current batch promotes
    /// immediately -- straight back to the pre-disturbance rung -- instead
    /// of draining the whole queue one lean round at a time while the EWMA
    /// decays. 0 disables the override.
    std::size_t flush_backlog_factor = 8;
    /// Minimum wire sends in a window for it to count as loss evidence.
    /// A mid-round window that happens to contain only a retransmission
    /// spray (no initial sends) reads as ~100% instantaneous loss no matter
    /// how healthy the channel is; tiny windows are noise, not signal, so
    /// they neither update the EWMA nor count toward promotion patience.
    std::uint64_t min_window_sends = 8;
    /// Minimum virtual time since the last pressure signal (any demote-worthy
    /// window, or any committed switch) before a clean-window promotion is
    /// allowed. Patience counts *windows*, but windows only exist while
    /// traffic flows -- under sparse bursts a couple hundred milliseconds of
    /// clean frames can satisfy patience seconds after an outage, promoting
    /// straight into the next one. This gate demands sustained clean *time*.
    /// 0 disables (promotion gated by patience/cooldown alone).
    std::uint64_t promote_hold_us = 0;
  };

  /// `base` supplies the invariants a reconfig never touches (hash algo,
  /// reliability, chain length, MTU hint) plus the starting mode/batch --
  /// the controller begins at the ladder rung closest to base's profile.
  AdaptiveController(std::uint32_t assoc_id, const Config& base,
                     Options options);

  /// Feeds one observation window. Returns a decision exactly when the
  /// policy wants a profile switch; holds return nullopt (but still emit a
  /// kAdaptDecision trace event, so the log shows every evaluation).
  std::optional<AdaptDecision> observe(const AdaptSignals& signals,
                                       std::uint64_t now_us);

  /// The profile the controller currently believes the association runs
  /// (optimistic: updated at decision time, applied at the rekey boundary).
  const AdaptProfile& profile() const noexcept;
  std::size_t profile_index() const noexcept { return index_; }
  /// Reconfig announcement for the current profile.
  wire::ReconfigAnnounce reconfig() const noexcept;

  std::uint64_t evaluations() const noexcept { return evaluations_; }
  std::uint64_t switches() const noexcept { return switches_; }
  double loss_ewma() const noexcept { return loss_ewma_; }

  /// The deterministic profile ladder, most robust first.
  static const AdaptProfile* ladder(std::size_t* count) noexcept;

 private:
  wire::ReconfigAnnounce reconfig_for(std::size_t index) const noexcept;
  void emit_decision(AdaptReason reason, std::size_t from, std::size_t to,
                     std::uint8_t health) const noexcept;

  std::uint32_t assoc_id_;
  Config base_;
  Options options_;
  std::size_t index_ = 0;       // current ladder rung
  std::size_t top_ = 0;         // highest permitted rung
  /// Highest rung held before the current demotion episode. Promotions jump
  /// straight back here (one rekey, not one per rung): the rung was proven
  /// sustainable before the disturbance, so re-climbing stepwise only burns
  /// lean-rung overhead re-proving it.
  std::size_t snap_back_ = 0;
  double loss_ewma_ = 0.0;
  int clean_windows_ = 0;
  int cooldown_left_ = 0;
  /// Consecutive evaluations with budget pressure / unhealthy watchdog.
  /// One hot window steps down a rung; two in a row mean the in-flight
  /// round is pinned (a partition, not a blip) and drop straight to the
  /// most robust rung -- the loss EWMA is blind there, because an S1-phase
  /// round retransmits one frame per backoff and every window falls under
  /// min_window_sends.
  int budget_streak_ = 0;
  int health_streak_ = 0;
  /// Virtual time of the last pressure signal or committed switch; the
  /// promote_hold_us gate measures clean time from here.
  std::uint64_t last_pressure_us_ = 0;
  bool evaluated_once_ = false;
  std::uint64_t last_eval_us_ = 0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t switches_ = 0;
  AdaptSignals acc_{};  // deltas accumulated since the last evaluation
};

}  // namespace alpha::core
