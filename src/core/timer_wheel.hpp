// Hashed timer wheel for association retransmission deadlines.
//
// A node serving thousands of associations cannot afford an O(all-assocs)
// on_tick sweep per tick: at any instant only the handful with an in-flight
// round, a pending rekey, or an unanswered handshake have a deadline at all.
// The wheel buckets armed deadlines into slots of fixed granularity; one
// advance() pass touches only the slots that became due, so firing cost is
// proportional to the number of due timers, not to the association count.
//
// Deadlines beyond one revolution keep their absolute value and are
// re-queued when their slot comes up early (classic hashed-wheel rounds).
// Cancellation is lazy: the owner marks its entry disarmed and filters the
// key when it pops out -- entries are tiny (12 bytes) and short-lived.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace alpha::core {

class TimerWheel {
 public:
  /// `granularity_us` is the firing resolution; `slots` the ring size
  /// (horizon = granularity * slots before entries need a second lap).
  TimerWheel(std::uint64_t granularity_us, std::size_t slots)
      : granularity_(std::max<std::uint64_t>(granularity_us, 1)),
        ring_(std::max<std::size_t>(slots, 2)) {}

  /// Arms `key` to fire once advance() passes `deadline_us`.
  void arm(std::uint32_t key, std::uint64_t deadline_us) {
    std::uint64_t tick = deadline_us / granularity_;
    if (tick * granularity_ < deadline_us) ++tick;  // round up to the slot
    if (tick <= cursor_) tick = cursor_ + 1;        // never fire in the past
    ring_[tick % ring_.size()].push_back(Entry{key, tick});
    ++armed_;
  }

  /// Advances to `now_us`, appending every due key to `due` (keys the owner
  /// has logically disarmed come out too -- filter on your side).
  void advance(std::uint64_t now_us, std::vector<std::uint32_t>& due) {
    const std::uint64_t target = now_us / granularity_;
    if (target <= cursor_) return;
    const std::uint64_t n = ring_.size();
    // More than one full revolution collapses to scanning each slot once.
    const std::uint64_t steps = std::min(target - cursor_, n);
    for (std::uint64_t s = cursor_ + 1; s <= cursor_ + steps; ++s) {
      auto& slot = ring_[s % n];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < slot.size(); ++i) {
        if (slot[i].tick <= target) {
          due.push_back(slot[i].key);
          --armed_;
        } else {
          slot[keep++] = slot[i];  // future lap: stays in its slot
        }
      }
      slot.resize(keep);
    }
    cursor_ = target;
  }

  bool empty() const noexcept { return armed_ == 0; }
  std::size_t armed() const noexcept { return armed_; }
  std::uint64_t granularity_us() const noexcept { return granularity_; }

 private:
  struct Entry {
    std::uint32_t key;
    std::uint64_t tick;  // absolute slot index at which to fire
  };

  std::uint64_t granularity_;
  std::vector<std::vector<Entry>> ring_;
  std::uint64_t cursor_ = 0;  // last processed absolute slot index
  std::size_t armed_ = 0;
};

}  // namespace alpha::core
