#include "core/verifier.hpp"

#include <stdexcept>

#include "core/preack.hpp"
#include "crypto/counter.hpp"
#include "trace/trace.hpp"

namespace alpha::core {

namespace {
// Bounds pre-signature buffering per S1 against memory-exhaustion floods
// (§3.5: relays and verifiers limit S1 size).
constexpr std::size_t kMaxBatch = 4096;
// Completed/stale rounds retained for idempotent duplicate handling.
constexpr std::size_t kMaxPendingRounds = 8;
}  // namespace

VerifierEngine::VerifierEngine(Config config, std::uint32_t assoc_id,
                               hashchain::HashChain ack_chain,
                               crypto::Digest sig_anchor,
                               std::size_t sig_anchor_index,
                               Callbacks callbacks,
                               crypto::RandomSource& rng)
    : config_(config),
      assoc_id_(assoc_id),
      ack_chain_(std::move(ack_chain)),
      walker_(ack_chain_),
      sig_verifier_(config.algo, hashchain::ChainTagging::kRoleBound,
                    std::move(sig_anchor), sig_anchor_index, config.max_gap),
      callbacks_(std::move(callbacks)),
      rng_(&rng) {
  if (ack_chain_.algo() != config_.algo) {
    throw std::invalid_argument("VerifierEngine: chain algorithm mismatch");
  }
  if (ack_chain_.tagging() != hashchain::ChainTagging::kRoleBound) {
    throw std::invalid_argument("VerifierEngine: chain must be role-bound");
  }
}

void VerifierEngine::on_s1(const wire::S1Packet& s1) {
  if (s1.hdr.assoc_id != assoc_id_) return;
  const auto drop_s1 = [&](trace::DropReason reason) {
    trace::emit(trace::EventKind::kPacketDropped, assoc_id_, s1.hdr.seq,
                static_cast<std::uint8_t>(wire::PacketType::kS1), reason);
  };
  if (!accepting_) {  // deny A1: unsolicited data dies at the relays
    drop_s1(trace::DropReason::kUnsolicited);
    return;
  }

  // Duplicate S1 (signer retransmission): replay the cached A1.
  if (const auto it = rounds_.find(s1.hdr.seq); it != rounds_.end()) {
    if (it->second.s1_element.ct_equals(s1.chain_element) &&
        !it->second.a1_frame.empty()) {
      ++stats_.duplicate_packets;
      drop_s1(trace::DropReason::kDuplicateS1);
      trace::emit(trace::EventKind::kPacketSent, assoc_id_, s1.hdr.seq,
                  static_cast<std::uint8_t>(wire::PacketType::kA1),
                  trace::DropReason::kNone, /*resend=*/1);
      callbacks_.send(it->second.a1_frame);
    } else {
      ++stats_.invalid_packets;
      drop_s1(trace::DropReason::kBadMac);
    }
    return;
  }

  const bool tree_mode =
      s1.mode == Mode::kMerkle || s1.mode == Mode::kCumulativeMerkle;
  const std::size_t count = tree_mode ? s1.leaf_count : s1.macs.size();
  if (count == 0 || count > kMaxBatch) {
    ++stats_.invalid_packets;
    drop_s1(trace::DropReason::kDecodeError);
    return;
  }

  // The S1 must be authenticated by a fresh odd-index chain element.
  if (!hashchain::is_s1_index(s1.chain_index)) {
    ++stats_.invalid_packets;
    drop_s1(trace::DropReason::kStaleChainIndex);
    return;
  }
  {
    const crypto::ScopedHashOps ops;
    const bool ok = sig_verifier_.accept(s1.chain_element, s1.chain_index);
    stats_.hashes.chain_verify += ops.delta().hash_finalizations;
    if (!ok) {
      ++stats_.invalid_packets;
      drop_s1(trace::DropReason::kStaleChainIndex);
      return;
    }
  }

  if (walker_.remaining() < 2) {  // ack chain exhausted: deny
    drop_s1(trace::DropReason::kChainExhausted);
    return;
  }

  PendingRound round;
  round.mode = s1.mode;
  round.s1_index = s1.chain_index;
  round.s1_element = s1.chain_element;
  if (s1.mode == Mode::kMerkle) {
    round.merkle_root = s1.merkle_root;
    round.leaf_count = s1.leaf_count;
  } else if (s1.mode == Mode::kCumulativeMerkle) {
    round.merkle_roots = s1.merkle_roots;
    round.group_size = s1.group_size;
    round.leaf_count = s1.leaf_count;
  } else {
    round.macs = s1.macs;
  }
  round.received.assign(count, 0);

  // Two ack-chain elements per round: h^Va_i (odd, authenticates the A1)
  // and h^Va_{i-1} (even, keys the pre-(n)acks, disclosed in A2 packets).
  round.a1_ack_index = walker_.next_index();
  const crypto::Digest a1_element = walker_.peek(0);
  round.ack_key = walker_.peek(1);
  walker_.take(2);

  wire::A1Packet a1;
  a1.hdr = {assoc_id_, s1.hdr.seq};
  a1.ack_chain_index = static_cast<std::uint32_t>(round.a1_ack_index);
  a1.ack_element = a1_element;

  if (config_.reliable) {
    const crypto::ScopedHashOps ops;
    if (tree_mode) {
      a1.scheme = wire::AckScheme::kAmt;
      round.amt.emplace(config_.algo, count, *rng_, config_.secret_size);
      a1.amt_root = round.amt->keyed_root(round.ack_key.view());
      a1.amt_msg_count = static_cast<std::uint16_t>(count);
    } else {
      a1.scheme = wire::AckScheme::kPreAck;
      round.ack_secrets.reserve(count);
      round.nack_secrets.reserve(count);
      for (std::size_t j = 0; j < count; ++j) {
        round.ack_secrets.push_back(rng_->bytes(config_.secret_size));
        round.nack_secrets.push_back(rng_->bytes(config_.secret_size));
        a1.pre_acks.push_back(make_pre_ack(config_.algo, round.ack_key, true,
                                           round.ack_secrets.back()));
        a1.pre_nacks.push_back(make_pre_ack(config_.algo, round.ack_key, false,
                                            round.nack_secrets.back()));
      }
    }
    stats_.hashes.ack += ops.delta().hash_finalizations;
  }

  crypto::Bytes frame = a1.encode();
  round.a1_frame = frame;
  rounds_.emplace(s1.hdr.seq, std::move(round));
  ++stats_.s1_accepted;
  ++stats_.a1_sent;
  trace::emit(trace::EventKind::kPacketAccepted, assoc_id_, s1.hdr.seq,
              static_cast<std::uint8_t>(wire::PacketType::kS1),
              trace::DropReason::kNone, count);
  trace::emit(trace::EventKind::kPacketSent, assoc_id_, s1.hdr.seq,
              static_cast<std::uint8_t>(wire::PacketType::kA1));
  callbacks_.send(std::move(frame));
  retire_old_rounds();
}

void VerifierEngine::on_s2(const wire::S2Packet& s2) {
  if (s2.hdr.assoc_id != assoc_id_) return;
  const auto drop_s2 = [&](trace::DropReason reason) {
    trace::emit(trace::EventKind::kPacketDropped, assoc_id_, s2.hdr.seq,
                static_cast<std::uint8_t>(wire::PacketType::kS2), reason,
                s2.msg_index);
  };
  const auto it = rounds_.find(s2.hdr.seq);
  if (it == rounds_.end()) {
    ++stats_.invalid_packets;  // no S1 context: unsolicited
    drop_s2(trace::DropReason::kStaleRound);
    return;
  }
  PendingRound& round = it->second;

  if (s2.mode != round.mode || s2.msg_index >= round.message_count() ||
      s2.chain_index + 1 != round.s1_index) {
    ++stats_.invalid_packets;
    drop_s2(trace::DropReason::kStaleChainIndex);
    return;
  }

  // Duplicate of an already-delivered message: re-ack idempotently.
  if (round.received[s2.msg_index]) {
    ++stats_.duplicate_packets;
    drop_s2(trace::DropReason::kDuplicateS2);
    if (const auto frame = round.a2_frames.find(s2.msg_index);
        frame != round.a2_frames.end()) {
      callbacks_.send(frame->second);
    }
    return;
  }

  // Authenticate the disclosed MAC key h_{i-1} (even index).
  if (round.disclosed.has_value()) {
    if (!round.disclosed->ct_equals(s2.disclosed_element)) {
      ++stats_.invalid_packets;
      drop_s2(trace::DropReason::kBadMac);
      return;
    }
  } else {
    // accept_or_derive: a jittery link may deliver the next round's S1
    // (advancing the chain state) before this round's S2; the disclosed
    // element is then derivable rather than freshly acceptable.
    const crypto::ScopedHashOps ops;
    const bool ok = sig_verifier_.accept_or_derive(s2.disclosed_element,
                                                   s2.chain_index);
    stats_.hashes.chain_verify += ops.delta().hash_finalizations;
    if (!ok) {
      ++stats_.invalid_packets;
      drop_s2(trace::DropReason::kStaleChainIndex);
      return;
    }
    round.disclosed = s2.disclosed_element;
  }

  // Check the payload against the buffered pre-signature.
  bool valid = false;
  {
    const crypto::ScopedHashOps ops;
    if (round.mode == Mode::kMerkle) {
      if (s2.path.has_value() && s2.path->leaf_index == s2.msg_index) {
        const crypto::Digest leaf = crypto::hash(config_.algo, s2.payload);
        valid = merkle::MerkleTree::verify_keyed(
            config_.algo, s2.disclosed_element.view(), leaf,
            s2.path->to_auth_path(), round.merkle_root);
      }
    } else if (round.mode == Mode::kCumulativeMerkle) {
      const std::size_t group = s2.msg_index / round.group_size;
      const std::size_t within = s2.msg_index % round.group_size;
      if (s2.path.has_value() && s2.path->leaf_index == within &&
          group < round.merkle_roots.size()) {
        const crypto::Digest leaf = crypto::hash(config_.algo, s2.payload);
        valid = merkle::MerkleTree::verify_keyed(
            config_.algo, s2.disclosed_element.view(), leaf,
            s2.path->to_auth_path(), round.merkle_roots[group]);
      }
    } else {
      if (!round.mac_ctx.has_value()) {
        round.mac_ctx.emplace(config_.mac_kind, config_.algo,
                              s2.disclosed_element.view());
      }
      valid = round.mac_ctx->verify(s2.payload, round.macs[s2.msg_index]);
    }
    stats_.hashes.signature += ops.delta().hash_finalizations;
  }

  if (!valid) {
    ++stats_.invalid_packets;
    drop_s2(trace::DropReason::kBadMac);
    if (config_.reliable) {
      send_a2(round, s2.hdr.seq, s2.msg_index, /*ack=*/false);
    }
    return;
  }

  round.received[s2.msg_index] = 1;
  ++round.delivered;
  ++stats_.s2_accepted;
  ++stats_.messages_delivered;
  trace::emit(trace::EventKind::kPacketAccepted, assoc_id_, s2.hdr.seq,
              static_cast<std::uint8_t>(wire::PacketType::kS2),
              trace::DropReason::kNone, s2.msg_index);
  trace::emit(trace::EventKind::kDelivered, assoc_id_, s2.hdr.seq,
              static_cast<std::uint8_t>(wire::PacketType::kS2),
              trace::DropReason::kNone, s2.msg_index);
  if (callbacks_.on_message) {
    callbacks_.on_message(s2.hdr.seq, s2.msg_index, s2.payload);
  }
  if (config_.reliable) {
    send_a2(round, s2.hdr.seq, s2.msg_index, /*ack=*/true);
  }
}

void VerifierEngine::send_a2(PendingRound& round, std::uint32_t seq,
                             std::uint16_t index, bool ack) {
  wire::A2Packet a2;
  a2.hdr = {assoc_id_, seq};
  a2.ack_chain_index = static_cast<std::uint32_t>(round.a1_ack_index - 1);
  a2.disclosed_ack_element = round.ack_key;
  a2.kind = ack ? wire::AckKind::kAck : wire::AckKind::kNack;
  a2.msg_index = index;

  const crypto::ScopedHashOps ops;
  if (round.amt.has_value()) {
    a2.scheme = wire::AckScheme::kAmt;
    const auto proof = round.amt->prove(index, ack);
    a2.secret = proof.secret;
    a2.path = wire::WirePath::from_auth_path(proof.path);
  } else {
    a2.scheme = wire::AckScheme::kPreAck;
    a2.secret = ack ? round.ack_secrets[index] : round.nack_secrets[index];
  }
  stats_.hashes.ack += ops.delta().hash_finalizations;

  crypto::Bytes frame = a2.encode();
  if (ack) round.a2_frames[index] = frame;  // idempotent duplicate handling
  ++stats_.a2_sent;
  trace::emit(trace::EventKind::kPacketSent, assoc_id_, seq,
              static_cast<std::uint8_t>(wire::PacketType::kA2),
              trace::DropReason::kNone, ack ? 1 : 0);
  callbacks_.send(std::move(frame));
}

void VerifierEngine::retire_old_rounds() {
  while (rounds_.size() > kMaxPendingRounds) {
    rounds_.erase(rounds_.begin());  // oldest seq
  }
}

std::size_t VerifierEngine::buffered_bytes() const noexcept {
  const std::size_t h = config_.digest_size();
  std::size_t total = 0;
  for (const auto& [seq, round] : rounds_) {
    switch (round.mode) {
      case Mode::kMerkle:
        total += h;
        break;
      case Mode::kCumulativeMerkle:
        total += round.merkle_roots.size() * h;
        break;
      default:
        total += round.macs.size() * h;
        break;
    }
  }
  return total;
}

std::size_t VerifierEngine::ack_buffered_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [seq, round] : rounds_) {
    if (round.amt.has_value()) {
      total += round.amt->memory_bytes();
    } else {
      for (const auto& s : round.ack_secrets) total += s.size();
      for (const auto& s : round.nack_secrets) total += s.size();
    }
  }
  return total;
}

}  // namespace alpha::core
