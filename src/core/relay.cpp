#include "core/relay.hpp"

#include "core/identity.hpp"
#include "core/preack.hpp"
#include "crypto/counter.hpp"
#include "merkle/amt.hpp"
#include "merkle/merkle.hpp"

namespace alpha::core {

namespace {
constexpr std::size_t kMaxBatch = 4096;
constexpr std::size_t kMaxRoundsPerFlow = 8;

// Relay-side trace events identify the frame by peeking the header; the
// engine dispatches on the decoded packet, but drop sites share one helper.
void emit_relay_event(trace::EventKind kind, crypto::ByteView frame,
                      trace::DropReason reason) {
  if (!trace::enabled()) return;
  std::uint32_t assoc = 0;
  std::uint32_t seq = 0;
  std::uint8_t type = 0;
  if (const auto hdr = wire::peek_header(frame)) {
    seq = hdr->seq;
    assoc = hdr->assoc_id;
  }
  if (const auto t = wire::peek_type(frame)) {
    type = static_cast<std::uint8_t>(*t);
  }
  trace::emit(kind, assoc, seq, type, reason, frame.size());
}
}  // namespace

RelayEngine::RelayEngine(Config config, Options options, Callbacks callbacks)
    : config_(config), options_(options), callbacks_(std::move(callbacks)) {}

RelayDecision RelayEngine::forward(Direction dir, crypto::ByteView frame) {
  ++stats_.forwarded;
  emit_relay_event(trace::EventKind::kRelayForwarded, frame,
                   trace::DropReason::kNone);
  if (callbacks_.forward) {
    callbacks_.forward(dir, frame);
  }
  return RelayDecision::kForwarded;
}

RelayDecision RelayEngine::drop(RelayDecision decision, crypto::ByteView frame,
                                trace::DropReason reason) {
  if (decision == RelayDecision::kDroppedUnsolicited) {
    ++stats_.dropped_unsolicited;
  } else {
    ++stats_.dropped_invalid;
  }
  ++stats_.dropped_by_reason[static_cast<std::size_t>(reason)];
  emit_relay_event(trace::EventKind::kPacketDropped, frame, reason);
  return decision;
}

RelayDecision RelayEngine::on_frame(Direction dir, crypto::ByteView frame) {
  const auto packet = wire::decode(frame);
  if (!packet.has_value()) {
    ++stats_.dropped_invalid;
    ++stats_.dropped_by_reason[static_cast<std::size_t>(
        trace::DropReason::kDecodeError)];
    emit_relay_event(trace::EventKind::kPacketDropped, frame,
                     trace::DropReason::kDecodeError);
    return RelayDecision::kDroppedMalformed;
  }
  return std::visit(
      [&](const auto& p) -> RelayDecision {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, wire::HandshakePacket>) {
          return handle_handshake(dir, p, frame);
        } else if constexpr (std::is_same_v<T, wire::S1Packet>) {
          return handle_s1(dir, p, frame);
        } else if constexpr (std::is_same_v<T, wire::A1Packet>) {
          return handle_a1(dir, p, frame);
        } else if constexpr (std::is_same_v<T, wire::S2Packet>) {
          return handle_s2(dir, p, frame);
        } else {
          return handle_a2(dir, p, frame);
        }
      },
      *packet);
}

RelayDecision RelayEngine::handle_handshake(Direction dir,
                                            const wire::HandshakePacket& hs,
                                            crypto::ByteView frame) {
  if (options_.verify_handshake_signatures &&
      hs.sig_alg != wire::SigAlg::kNone) {
    const auto peer = PeerIdentity::decode(hs.sig_alg, hs.public_key);
    if (!peer.has_value() ||
        !peer->verify(hs.algo, hs.signed_payload(), hs.signature)) {
      return drop(RelayDecision::kDroppedInvalid, frame,
                  trace::DropReason::kBadMac);
    }
  }

  AssocState& assoc = assocs_[hs.hdr.assoc_id];
  assoc.algo = hs.algo;
  assoc.handshake_seen = true;

  // The sender of this handshake signs on the flow that travels in `dir`
  // (its signature chain) and acknowledges on the opposite flow (its
  // acknowledgment chain).
  FlowState& own_flow = assoc.flows[static_cast<int>(dir)];
  FlowState& rev_flow = assoc.flows[static_cast<int>(opposite(dir))];
  // Ignore exact duplicates (handshake retransmissions): resetting the
  // verifiers to an anchor whose elements were already disclosed would
  // re-admit replayed packets.
  if (own_flow.sig.has_value() && own_flow.sig_anchor.ct_equals(hs.sig_anchor)) {
    return forward(dir, frame);
  }
  own_flow.sig.emplace(hs.algo, hashchain::ChainTagging::kRoleBound,
                       hs.sig_anchor, hs.sig_anchor_index, config_.max_gap);
  own_flow.sig_anchor = hs.sig_anchor;
  rev_flow.ack.emplace(hs.algo, hashchain::ChainTagging::kRoleBound,
                       hs.ack_anchor, hs.ack_anchor_index, config_.max_gap);
  // New chains mean a fresh round-sequence space (rekeying): stale per-round
  // state from the previous generation must not shadow new rounds.
  own_flow.rounds.clear();
  return forward(dir, frame);
}

RelayDecision RelayEngine::handle_s1(Direction dir, const wire::S1Packet& s1,
                                     crypto::ByteView frame) {
  const auto it = assocs_.find(s1.hdr.assoc_id);
  if (it == assocs_.end() || !it->second.flows[static_cast<int>(dir)].sig) {
    // No handshake observed on this flow.
    return options_.require_handshake
               ? drop(RelayDecision::kDroppedUnsolicited, frame,
                      trace::DropReason::kUnsolicited)
               : forward(dir, frame);
  }
  AssocState& assoc = it->second;
  FlowState& flow = assoc.flows[static_cast<int>(dir)];

  const bool tree_mode =
      s1.mode == Mode::kMerkle || s1.mode == Mode::kCumulativeMerkle;
  const std::size_t count = tree_mode ? s1.leaf_count : s1.macs.size();
  if (count == 0 || count > kMaxBatch) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kDecodeError);
  }

  if (flow.rounds.contains(s1.hdr.seq)) {
    // Retransmission of a round we already vetted: pass it along.
    return forward(dir, frame);
  }

  if (!hashchain::is_s1_index(s1.chain_index)) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kStaleChainIndex);
  }
  {
    const crypto::ScopedHashOps ops;
    const bool ok = flow.sig->accept(s1.chain_element, s1.chain_index);
    stats_.hashes.chain_verify += ops.delta().hash_finalizations;
    if (!ok) return drop(RelayDecision::kDroppedInvalid, frame,
                         trace::DropReason::kStaleChainIndex);
  }

  RelayRound round;
  round.mode = s1.mode;
  round.s1_index = s1.chain_index;
  if (s1.mode == Mode::kMerkle) {
    round.merkle_root = s1.merkle_root;
    round.leaf_count = s1.leaf_count;
  } else if (s1.mode == Mode::kCumulativeMerkle) {
    round.merkle_roots = s1.merkle_roots;
    round.group_size = s1.group_size;
    round.leaf_count = s1.leaf_count;
  } else {
    round.macs = s1.macs;
  }
  flow.rounds.emplace(s1.hdr.seq, std::move(round));
  while (flow.rounds.size() > kMaxRoundsPerFlow) {
    flow.rounds.erase(flow.rounds.begin());
  }
  return forward(dir, frame);
}

RelayDecision RelayEngine::handle_a1(Direction dir, const wire::A1Packet& a1,
                                     crypto::ByteView frame) {
  // An A1 travels against its flow: it acknowledges traffic flowing in the
  // opposite direction.
  const Direction flow_dir = opposite(dir);
  const auto it = assocs_.find(a1.hdr.assoc_id);
  if (it == assocs_.end() ||
      !it->second.flows[static_cast<int>(flow_dir)].ack) {
    return options_.require_handshake
               ? drop(RelayDecision::kDroppedUnsolicited, frame,
                      trace::DropReason::kUnsolicited)
               : forward(dir, frame);
  }
  FlowState& flow = it->second.flows[static_cast<int>(flow_dir)];

  const auto round_it = flow.rounds.find(a1.hdr.seq);
  if (round_it == flow.rounds.end()) {
    // A1 without an observed S1: the verifier answered something we did not
    // vet; treat as unsolicited.
    return drop(RelayDecision::kDroppedUnsolicited, frame,
                trace::DropReason::kUnsolicited);
  }
  RelayRound& round = round_it->second;

  if (!hashchain::is_s1_index(a1.ack_chain_index)) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kStaleChainIndex);
  }
  {
    const crypto::ScopedHashOps ops;
    const bool ok = flow.ack->accept_or_derive(a1.ack_element,
                                    a1.ack_chain_index);
    stats_.hashes.chain_verify += ops.delta().hash_finalizations;
    if (!ok) return drop(RelayDecision::kDroppedInvalid, frame,
                         trace::DropReason::kStaleChainIndex);
  }

  if (a1.scheme == wire::AckScheme::kPreAck &&
      a1.pre_acks.size() != round.message_count()) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kDecodeError);
  }

  round.a1_seen = true;
  round.scheme = a1.scheme;
  round.a1_ack_index = a1.ack_chain_index;
  round.pre_acks = a1.pre_acks;
  round.pre_nacks = a1.pre_nacks;
  round.amt_root = a1.amt_root;
  round.amt_count = a1.amt_msg_count;
  return forward(dir, frame);
}

RelayDecision RelayEngine::handle_s2(Direction dir, const wire::S2Packet& s2,
                                     crypto::ByteView frame) {
  const auto it = assocs_.find(s2.hdr.assoc_id);
  if (it == assocs_.end() || !it->second.flows[static_cast<int>(dir)].sig) {
    return options_.require_handshake
               ? drop(RelayDecision::kDroppedUnsolicited, frame,
                      trace::DropReason::kUnsolicited)
               : forward(dir, frame);
  }
  FlowState& flow = it->second.flows[static_cast<int>(dir)];

  const auto round_it = flow.rounds.find(s2.hdr.seq);
  if (round_it == flow.rounds.end()) {
    return drop(RelayDecision::kDroppedUnsolicited, frame,
                trace::DropReason::kUnsolicited);
  }
  RelayRound& round = round_it->second;

  // Flood mitigation: no willingness signal from the receiver, no delivery.
  if (!round.a1_seen) {
    return drop(RelayDecision::kDroppedUnsolicited, frame,
                trace::DropReason::kUnsolicited);
  }

  if (s2.mode != round.mode || s2.msg_index >= round.message_count() ||
      s2.chain_index + 1 != round.s1_index) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kStaleChainIndex);
  }

  // Authenticate the disclosed MAC key.
  if (round.disclosed.has_value()) {
    if (!round.disclosed->ct_equals(s2.disclosed_element)) {
      return drop(RelayDecision::kDroppedInvalid, frame,
                  trace::DropReason::kBadMac);
    }
  } else {
    const crypto::ScopedHashOps ops;
    const bool ok = flow.sig->accept_or_derive(s2.disclosed_element, s2.chain_index);
    stats_.hashes.chain_verify += ops.delta().hash_finalizations;
    if (!ok) return drop(RelayDecision::kDroppedInvalid, frame,
                         trace::DropReason::kStaleChainIndex);
    round.disclosed = s2.disclosed_element;
  }

  bool valid = false;
  {
    const crypto::ScopedHashOps ops;
    const crypto::HashAlgo algo = it->second.algo;
    if (round.mode == Mode::kMerkle) {
      if (s2.path.has_value() && s2.path->leaf_index == s2.msg_index) {
        const crypto::Digest leaf = crypto::hash(algo, s2.payload);
        valid = merkle::MerkleTree::verify_keyed(
            algo, s2.disclosed_element.view(), leaf, s2.path->to_auth_path(),
            round.merkle_root);
      }
    } else if (round.mode == Mode::kCumulativeMerkle) {
      const std::size_t group = s2.msg_index / round.group_size;
      const std::size_t within = s2.msg_index % round.group_size;
      if (s2.path.has_value() && s2.path->leaf_index == within &&
          group < round.merkle_roots.size()) {
        const crypto::Digest leaf = crypto::hash(algo, s2.payload);
        valid = merkle::MerkleTree::verify_keyed(
            algo, s2.disclosed_element.view(), leaf, s2.path->to_auth_path(),
            round.merkle_roots[group]);
      }
    } else {
      if (!round.mac_ctx.has_value()) {
        round.mac_ctx.emplace(config_.mac_kind, algo,
                              s2.disclosed_element.view());
      }
      valid = round.mac_ctx->verify(s2.payload, round.macs[s2.msg_index]);
    }
    stats_.hashes.signature += ops.delta().hash_finalizations;
  }
  if (!valid) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kBadMac);
  }

  ++stats_.messages_extracted;
  if (callbacks_.on_extracted) {
    callbacks_.on_extracted(s2.hdr.assoc_id, s2.hdr.seq, s2.msg_index,
                            s2.payload);
  }
  return forward(dir, frame);
}

RelayDecision RelayEngine::handle_a2(Direction dir, const wire::A2Packet& a2,
                                     crypto::ByteView frame) {
  const Direction flow_dir = opposite(dir);
  const auto it = assocs_.find(a2.hdr.assoc_id);
  if (it == assocs_.end() ||
      !it->second.flows[static_cast<int>(flow_dir)].ack) {
    return options_.require_handshake
               ? drop(RelayDecision::kDroppedUnsolicited, frame,
                      trace::DropReason::kUnsolicited)
               : forward(dir, frame);
  }
  FlowState& flow = it->second.flows[static_cast<int>(flow_dir)];

  const auto round_it = flow.rounds.find(a2.hdr.seq);
  if (round_it == flow.rounds.end() || !round_it->second.a1_seen) {
    return drop(RelayDecision::kDroppedUnsolicited, frame,
                trace::DropReason::kUnsolicited);
  }
  RelayRound& round = round_it->second;

  if (a2.scheme != round.scheme ||
      a2.ack_chain_index + 1 != round.a1_ack_index ||
      a2.msg_index >= round.message_count()) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kStaleChainIndex);
  }

  if (round.ack_disclosed.has_value()) {
    if (!round.ack_disclosed->ct_equals(a2.disclosed_ack_element)) {
      return drop(RelayDecision::kDroppedInvalid, frame,
                  trace::DropReason::kBadMac);
    }
  } else {
    const crypto::ScopedHashOps ops;
    const bool ok = flow.ack->accept_or_derive(a2.disclosed_ack_element,
                                    a2.ack_chain_index);
    stats_.hashes.chain_verify += ops.delta().hash_finalizations;
    if (!ok) return drop(RelayDecision::kDroppedInvalid, frame,
                         trace::DropReason::kStaleChainIndex);
    round.ack_disclosed = a2.disclosed_ack_element;
  }

  bool valid = false;
  const bool is_ack = a2.kind == wire::AckKind::kAck;
  {
    const crypto::ScopedHashOps ops;
    const crypto::HashAlgo algo = it->second.algo;
    if (round.scheme == wire::AckScheme::kPreAck) {
      const crypto::Digest& committed = is_ack ? round.pre_acks[a2.msg_index]
                                               : round.pre_nacks[a2.msg_index];
      valid = verify_pre_ack(algo, a2.disclosed_ack_element, is_ack, a2.secret,
                             committed);
    } else if (round.scheme == wire::AckScheme::kAmt && a2.path.has_value()) {
      merkle::AckMerkleTree::Proof proof;
      proof.is_ack = is_ack;
      proof.msg_index = a2.msg_index;
      proof.secret = a2.secret;
      proof.path = a2.path->to_auth_path();
      valid = merkle::AckMerkleTree::verify(algo,
                                            a2.disclosed_ack_element.view(),
                                            proof, round.amt_root,
                                            round.amt_count);
    }
    stats_.hashes.ack += ops.delta().hash_finalizations;
  }
  if (!valid) {
    return drop(RelayDecision::kDroppedInvalid, frame,
                trace::DropReason::kBadMac);
  }

  ++stats_.acks_verified;
  return forward(dir, frame);
}

std::size_t RelayEngine::buffered_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [id, assoc] : assocs_) {
    const std::size_t h = crypto::digest_size(assoc.algo);
    for (const auto& flow : assoc.flows) {
      for (const auto& [seq, round] : flow.rounds) {
        switch (round.mode) {
          case Mode::kMerkle:
            total += h;
            break;
          case Mode::kCumulativeMerkle:
            total += round.merkle_roots.size() * h;
            break;
          default:
            total += round.macs.size() * h;
            break;
        }
      }
    }
  }
  return total;
}

std::size_t RelayEngine::ack_buffered_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [id, assoc] : assocs_) {
    const std::size_t h = crypto::digest_size(assoc.algo);
    for (const auto& flow : assoc.flows) {
      for (const auto& [seq, round] : flow.rounds) {
        if (round.scheme == wire::AckScheme::kPreAck) {
          total += (round.pre_acks.size() + round.pre_nacks.size()) * h;
        } else if (round.scheme == wire::AckScheme::kAmt) {
          total += h;  // only the AMT root
        }
      }
    }
  }
  return total;
}

}  // namespace alpha::core
