#include "core/signer.hpp"

#include <chrono>
#include <stdexcept>

#include "core/preack.hpp"
#include "crypto/counter.hpp"
#include "merkle/amt.hpp"
#include "trace/trace.hpp"

namespace alpha::core {

SignerEngine::SignerEngine(Config config, std::uint32_t assoc_id,
                           hashchain::HashChain sig_chain, Digest ack_anchor,
                           std::size_t ack_anchor_index, Callbacks callbacks)
    : config_(config),
      assoc_id_(assoc_id),
      sig_chain_(std::move(sig_chain)),
      walker_(sig_chain_),
      ack_verifier_(config.algo, hashchain::ChainTagging::kRoleBound,
                    std::move(ack_anchor), ack_anchor_index, config.max_gap),
      callbacks_(std::move(callbacks)) {
  if (sig_chain_.algo() != config_.algo) {
    throw std::invalid_argument("SignerEngine: chain algorithm mismatch");
  }
  if (sig_chain_.tagging() != hashchain::ChainTagging::kRoleBound) {
    throw std::invalid_argument("SignerEngine: chain must be role-bound");
  }
}

bool SignerEngine::can_send() const noexcept { return walker_.remaining() >= 2; }

std::vector<std::pair<std::uint64_t, Bytes>> SignerEngine::drain_backlog() {
  std::vector<std::pair<std::uint64_t, Bytes>> out;
  // Unsettled messages of an in-flight round come first (their S2s may
  // never complete once this engine is discarded); re-signing them under
  // fresh chains gives at-least-once delivery.
  if (round_.has_value()) {
    for (std::size_t k = 0; k < round_->messages.size(); ++k) {
      if (!round_->settled[k]) {
        out.emplace_back(round_->messages[k].cookie,
                         std::move(round_->messages[k].payload));
      }
    }
    round_.reset();
    ++stats_.rounds_failed;
  }
  out.reserve(out.size() + queue_.size());
  for (auto& q : queue_) {
    out.emplace_back(q.cookie, std::move(q.payload));
  }
  queue_.clear();
  return out;
}

std::uint64_t SignerEngine::submit(Bytes message, std::uint64_t now_us,
                                   std::optional<std::uint64_t> cookie,
                                   bool resubmission) {
  if (message.size() > 0xffff) {
    throw std::length_error("SignerEngine::submit: message too large");
  }
  // NOT value_or(next_cookie_++): value_or evaluates its argument eagerly,
  // so that would burn one counter value on every explicit-cookie
  // resubmission and leave holes in the cookie sequence after each rekey.
  const std::uint64_t id = cookie.has_value() ? *cookie : next_cookie_++;
  if (!resubmission) ++stats_.messages_submitted;
  queue_.push_back(QueuedMessage{id, std::move(message), now_us});
  maybe_start_round(now_us);
  return id;
}

void SignerEngine::maybe_start_round(std::uint64_t now_us, bool flush) {
  if (paused_ || round_.has_value() || queue_.empty()) return;
  // The MTU hint caps the batch so S1/A1 control packets stay deliverable.
  const std::size_t batch_limit =
      max_batch_for_mtu(config_, config_.mtu_hint);
  // Batched modes aggregate submissions until a full batch is available;
  // on_tick() flushes partial batches so traffic never stalls.
  if (!flush && queue_.size() < batch_limit) return;
  if (!can_send()) {
    // Chain exhausted: fail queued messages rather than stall silently.
    // One aborted round regardless of how many messages it would have
    // carried -- counting per message inflated rounds_failed.
    ++stats_.rounds_failed;
    trace::emit(trace::EventKind::kRoundFailed, assoc_id_, next_seq_, 0,
                trace::DropReason::kChainExhausted, queue_.size());
    while (!queue_.empty()) {
      if (callbacks_.on_delivery) {
        callbacks_.on_delivery(queue_.front().cookie, DeliveryStatus::kFailed);
      }
      queue_.pop_front();
    }
    return;
  }

  Round round;
  round.seq = next_seq_++;
  const std::size_t batch = std::min(batch_limit, queue_.size());
  for (std::size_t k = 0; k < batch; ++k) {
    round.messages.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  round.settled.assign(round.messages.size(), 0);
  round.nack_retries.assign(round.messages.size(), 0);

  // Two chain elements per round: h_i (odd, authenticates the S1) and
  // h_{i-1} (even, the MAC key disclosed in S2 packets).
  round.s1_index = walker_.next_index();
  round.h_i = walker_.peek(0);
  round.h_im1 = walker_.peek(1);
  walker_.take(2);

  // Span decomposition (kRoundStart): queueing delay is how long the oldest
  // message of the batch sat in the queue; crypto time is the wall time of
  // the signature block below, measured only when tracing is on so the
  // untraced hot path never reads a real clock.
  const std::uint64_t queue_wait_us =
      now_us >= round.messages.front().submit_us
          ? now_us - round.messages.front().submit_us
          : 0;
  const bool traced = trace::enabled();
  std::chrono::steady_clock::time_point crypto_begin;
  if (traced) crypto_begin = std::chrono::steady_clock::now();

  {
    const crypto::ScopedHashOps ops;
    if (config_.uses_trees()) {
      const std::size_t group = config_.group_size(round.messages.size());
      for (std::size_t start = 0; start < round.messages.size();
           start += group) {
        std::vector<Bytes> payloads;
        const std::size_t end =
            std::min(start + group, round.messages.size());
        payloads.reserve(end - start);
        for (std::size_t k = start; k < end; ++k) {
          payloads.push_back(round.messages[k].payload);
        }
        round.trees.emplace_back(config_.algo, payloads);
      }
    } else {
      // One key schedule for the whole batch: every MAC of the round is
      // keyed by the same undisclosed element h_{i-1}.
      const crypto::MacContext mac_ctx(config_.mac_kind, config_.algo,
                                       round.h_im1.view());
      round.macs.reserve(round.messages.size());
      for (const auto& m : round.messages) {
        round.macs.push_back(mac_ctx.mac(m.payload));
      }
    }
    stats_.hashes.signature += ops.delta().hash_finalizations;
  }

  if (traced) {
    const auto crypto_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - crypto_begin)
                               .count();
    trace::emit(trace::EventKind::kRoundStart, assoc_id_, round.seq, 0,
                trace::DropReason::kNone,
                trace::pack_round_detail(
                    queue_wait_us, static_cast<std::uint64_t>(crypto_ns)));
  }

  round_ = std::move(round);
  ++stats_.rounds_started;
  send_s1(now_us);
}

void SignerEngine::send_s1(std::uint64_t now_us) {
  Round& round = *round_;
  wire::S1Packet s1;
  s1.hdr = {assoc_id_, round.seq};
  s1.mode = config_.mode;
  s1.chain_index = static_cast<std::uint32_t>(round.s1_index);
  s1.chain_element = round.h_i;
  if (config_.mode == Mode::kMerkle) {
    const crypto::ScopedHashOps ops;
    s1.merkle_root = round.trees.front().keyed_root(round.h_im1.view());
    stats_.hashes.signature += ops.delta().hash_finalizations;
    s1.leaf_count = static_cast<std::uint16_t>(round.messages.size());
  } else if (config_.mode == Mode::kCumulativeMerkle) {
    const crypto::ScopedHashOps ops;
    for (const auto& tree : round.trees) {
      s1.merkle_roots.push_back(tree.keyed_root(round.h_im1.view()));
    }
    stats_.hashes.signature += ops.delta().hash_finalizations;
    s1.group_size = static_cast<std::uint16_t>(
        config_.group_size(round.messages.size()));
    s1.leaf_count = static_cast<std::uint16_t>(round.messages.size());
  } else {
    s1.macs = round.macs;
  }
  round.s1_frame = s1.encode();
  round.last_send_us = now_us;
  ++stats_.s1_sent;
  trace::emit(trace::EventKind::kPacketSent, assoc_id_, round.seq,
              static_cast<std::uint8_t>(wire::PacketType::kS1),
              trace::DropReason::kNone, round.messages.size());
  callbacks_.send(round.s1_frame);
}

Bytes SignerEngine::make_s2(const Round& round, std::size_t index) const {
  wire::S2Packet s2;
  s2.hdr = {assoc_id_, round.seq};
  s2.mode = config_.mode;
  s2.chain_index = static_cast<std::uint32_t>(round.s1_index - 1);
  s2.disclosed_element = round.h_im1;
  s2.msg_index = static_cast<std::uint16_t>(index);
  if (config_.mode == Mode::kMerkle) {
    s2.path =
        wire::WirePath::from_auth_path(round.trees.front().auth_path(index));
  } else if (config_.mode == Mode::kCumulativeMerkle) {
    const std::size_t group = config_.group_size(round.messages.size());
    s2.path = wire::WirePath::from_auth_path(
        round.trees[index / group].auth_path(index % group));
  }
  s2.payload = round.messages[index].payload;
  return s2.encode();
}

void SignerEngine::send_s2_batch(std::uint64_t now_us) {
  Round& round = *round_;
  for (std::size_t k = 0; k < round.messages.size(); ++k) {
    if (round.settled[k]) continue;
    trace::emit(trace::EventKind::kPacketSent, assoc_id_, round.seq,
                static_cast<std::uint8_t>(wire::PacketType::kS2),
                trace::DropReason::kNone, k);
    callbacks_.send(make_s2(round, k));
    ++stats_.s2_sent;
  }
  round.last_send_us = now_us;
}

void SignerEngine::on_a1(const wire::A1Packet& a1, std::uint64_t now_us) {
  const auto drop_a1 = [&](trace::DropReason reason) {
    trace::emit(trace::EventKind::kPacketDropped, assoc_id_, a1.hdr.seq,
                static_cast<std::uint8_t>(wire::PacketType::kA1), reason);
  };
  if (!round_.has_value() || a1.hdr.assoc_id != assoc_id_ ||
      a1.hdr.seq != round_->seq ||
      round_->state != Round::State::kAwaitA1) {
    // Late or duplicate A1: the paper mandates discarding pre-(n)acks in
    // further A1 packets once an S2 went out (§3.2.2).
    drop_a1(trace::DropReason::kStaleRound);
    return;
  }
  Round& round = *round_;

  // The A1 is authenticated by an odd-index element of the verifier's
  // acknowledgment chain.
  if (!hashchain::is_s1_index(a1.ack_chain_index)) {
    ++stats_.invalid_packets;
    drop_a1(trace::DropReason::kStaleChainIndex);
    return;
  }
  {
    const crypto::ScopedHashOps ops;
    const bool ok = ack_verifier_.accept(a1.ack_element, a1.ack_chain_index);
    stats_.hashes.chain_verify += ops.delta().hash_finalizations;
    if (!ok) {
      ++stats_.invalid_packets;
      drop_a1(trace::DropReason::kStaleChainIndex);
      return;
    }
  }

  if (config_.reliable) {
    const auto expected = config_.uses_trees() ? wire::AckScheme::kAmt
                                               : wire::AckScheme::kPreAck;
    if (a1.scheme != expected) {
      ++stats_.invalid_packets;
      drop_a1(trace::DropReason::kBadMac);
      return;
    }
    if (a1.scheme == wire::AckScheme::kPreAck) {
      if (a1.pre_acks.size() != round.messages.size()) {
        ++stats_.invalid_packets;
        drop_a1(trace::DropReason::kBadMac);
        return;
      }
      round.pre_acks = a1.pre_acks;
      round.pre_nacks = a1.pre_nacks;
    } else {
      if (a1.amt_msg_count != round.messages.size()) {
        ++stats_.invalid_packets;
        drop_a1(trace::DropReason::kBadMac);
        return;
      }
      round.amt_root = a1.amt_root;
      round.amt_count = a1.amt_msg_count;
    }
    round.scheme = a1.scheme;
  }
  round.a1_ack_index = a1.ack_chain_index;
  round.retries = 0;
  trace::emit(trace::EventKind::kPacketAccepted, assoc_id_, a1.hdr.seq,
              static_cast<std::uint8_t>(wire::PacketType::kA1));

  send_s2_batch(now_us);
  if (config_.reliable) {
    round.state = Round::State::kAwaitA2;
  } else {
    for (std::size_t k = 0; k < round.messages.size(); ++k) {
      settle(k, DeliveryStatus::kSent);
    }
    finish_round(true);
    maybe_start_round(now_us);
  }
}

void SignerEngine::on_a2(const wire::A2Packet& a2, std::uint64_t now_us) {
  const auto drop_a2 = [&](trace::DropReason reason) {
    trace::emit(trace::EventKind::kPacketDropped, assoc_id_, a2.hdr.seq,
                static_cast<std::uint8_t>(wire::PacketType::kA2), reason,
                a2.msg_index);
  };
  if (!round_.has_value() || a2.hdr.assoc_id != assoc_id_ ||
      a2.hdr.seq != round_->seq ||
      round_->state != Round::State::kAwaitA2) {
    drop_a2(trace::DropReason::kStaleRound);
    return;
  }
  Round& round = *round_;

  // A2 discloses the even-index ack element right below the A1's element.
  if (a2.ack_chain_index + 1 != round.a1_ack_index) {
    ++stats_.invalid_packets;
    drop_a2(trace::DropReason::kStaleChainIndex);
    return;
  }
  {
    const crypto::ScopedHashOps ops;
    const bool ok = ack_verifier_.accept_or_derive(a2.disclosed_ack_element,
                                                   a2.ack_chain_index);
    stats_.hashes.chain_verify += ops.delta().hash_finalizations;
    if (!ok) {
      ++stats_.invalid_packets;
      drop_a2(trace::DropReason::kStaleChainIndex);
      return;
    }
  }

  if (a2.scheme != round.scheme) {
    ++stats_.invalid_packets;
    drop_a2(trace::DropReason::kBadMac);
    return;
  }

  const std::size_t index = a2.msg_index;
  if (index >= round.messages.size() || round.settled[index]) {
    drop_a2(trace::DropReason::kDuplicateS2);
    return;
  }

  bool valid = false;
  const bool is_ack = a2.kind == wire::AckKind::kAck;
  {
    const crypto::ScopedHashOps ops;
    if (round.scheme == wire::AckScheme::kPreAck) {
      const Digest& committed =
          is_ack ? round.pre_acks[index] : round.pre_nacks[index];
      valid = verify_pre_ack(config_.algo, a2.disclosed_ack_element, is_ack,
                             a2.secret, committed);
    } else if (round.scheme == wire::AckScheme::kAmt && a2.path.has_value()) {
      merkle::AckMerkleTree::Proof proof;
      proof.is_ack = is_ack;
      proof.msg_index = a2.msg_index;
      proof.secret = a2.secret;
      proof.path = a2.path->to_auth_path();
      valid = merkle::AckMerkleTree::verify(
          config_.algo, a2.disclosed_ack_element.view(), proof, round.amt_root,
          round.amt_count);
    }
    stats_.hashes.ack += ops.delta().hash_finalizations;
  }
  if (!valid) {
    ++stats_.invalid_packets;
    drop_a2(trace::DropReason::kBadMac);
    return;
  }

  trace::emit(trace::EventKind::kPacketAccepted, assoc_id_, a2.hdr.seq,
              static_cast<std::uint8_t>(wire::PacketType::kA2),
              trace::DropReason::kNone, is_ack ? 1 : 0);
  if (is_ack) {
    ++stats_.acks_received;
    settle(index, DeliveryStatus::kAcked);
  } else {
    ++stats_.nacks_received;
    // Selective repeat (§3.3.3): a nack means the verifier received a
    // corrupted S2 for this message; resend it instead of giving up.
    if (config_.retransmit_on_nack &&
        round.nack_retries[index] < config_.max_retries) {
      ++round.nack_retries[index];
      trace::emit(trace::EventKind::kRetransmit, assoc_id_, round.seq,
                  static_cast<std::uint8_t>(wire::PacketType::kS2),
                  trace::DropReason::kNone, round.nack_retries[index]);
      callbacks_.send(make_s2(round, index));
      ++stats_.s2_retransmits;
    } else {
      settle(index, DeliveryStatus::kNacked);
    }
  }

  if (round.settled_count == round.messages.size()) {
    finish_round(true);
    maybe_start_round(now_us);
  }
}

std::optional<std::uint64_t> SignerEngine::next_deadline_us() const noexcept {
  if (round_.has_value()) {
    return round_->last_send_us + retransmit_delay(config_, round_->retries,
                                                   retransmit_salt());
  }
  if (!paused_ && !queue_.empty()) return 0;  // flush a partial batch asap
  return std::nullopt;
}

std::uint64_t SignerEngine::retransmit_salt() const noexcept {
  return (static_cast<std::uint64_t>(assoc_id_) << 32) |
         (round_.has_value() ? round_->seq : 0);
}

void SignerEngine::on_tick(std::uint64_t now_us) {
  if (!round_.has_value()) {
    maybe_start_round(now_us, /*flush=*/true);
    return;
  }
  Round& round = *round_;
  if (now_us - round.last_send_us <
      retransmit_delay(config_, round.retries, retransmit_salt())) {
    return;
  }

  if (round.retries >= config_.max_retries) {
    trace::emit(trace::EventKind::kRoundFailed, assoc_id_, round.seq, 0,
                trace::DropReason::kBudgetExhausted,
                round.messages.size() - round.settled_count);
    for (std::size_t k = 0; k < round.messages.size(); ++k) {
      if (!round.settled[k]) settle(k, DeliveryStatus::kFailed);
    }
    finish_round(false);
    maybe_start_round(now_us);
    return;
  }
  ++round.retries;
  if (round.state == Round::State::kAwaitA1) {
    trace::emit(trace::EventKind::kRetransmit, assoc_id_, round.seq,
                static_cast<std::uint8_t>(wire::PacketType::kS1),
                trace::DropReason::kNone, round.retries);
    callbacks_.send(round.s1_frame);
    ++stats_.s1_retransmits;
    round.last_send_us = now_us;
  } else {
    for (std::size_t k = 0; k < round.messages.size(); ++k) {
      if (round.settled[k]) continue;
      trace::emit(trace::EventKind::kRetransmit, assoc_id_, round.seq,
                  static_cast<std::uint8_t>(wire::PacketType::kS2),
                  trace::DropReason::kNone, round.retries);
      callbacks_.send(make_s2(round, k));
      ++stats_.s2_retransmits;
    }
    round.last_send_us = now_us;
  }
}

void SignerEngine::settle(std::size_t index, DeliveryStatus status) {
  Round& round = *round_;
  if (round.settled[index]) return;
  round.settled[index] = 1;
  ++round.settled_count;
  if (callbacks_.on_delivery) {
    callbacks_.on_delivery(round.messages[index].cookie, status);
  }
}

void SignerEngine::finish_round(bool success) {
  if (success) {
    ++stats_.rounds_completed;
  } else {
    ++stats_.rounds_failed;
  }
  round_.reset();
}

std::size_t SignerEngine::buffered_bytes() const noexcept {
  if (!round_.has_value()) return 0;
  const Round& round = *round_;
  const std::size_t h = config_.digest_size();
  std::size_t total = 0;
  for (const auto& m : round.messages) total += m.payload.size();
  if (config_.uses_trees()) {
    // The signer keeps the trees to emit {Bc} per S2: (2w - 1) nodes each.
    for (const auto& tree : round.trees) {
      total += (2 * tree.width() - 1) * h;
    }
  } else {
    total += round.macs.size() * h;
  }
  return total;
}

}  // namespace alpha::core
