#include "core/attackers.hpp"

namespace alpha::core {

wire::S2Packet forge_s2(std::uint32_t assoc_id, std::uint32_t seq,
                        std::size_t payload_size, crypto::RandomSource& rng,
                        std::size_t digest_size) {
  wire::S2Packet s2;
  s2.hdr = {assoc_id, seq};
  s2.mode = wire::Mode::kBase;
  s2.chain_index = static_cast<std::uint32_t>(2 + 2 * rng.uniform(100));
  s2.disclosed_element = crypto::Digest{crypto::ByteView{rng.bytes(digest_size)}};
  s2.payload = rng.bytes(payload_size);
  return s2;
}

wire::S1Packet forge_s1(std::uint32_t assoc_id, std::uint32_t seq,
                        std::size_t mac_count, crypto::RandomSource& rng,
                        std::size_t digest_size) {
  wire::S1Packet s1;
  s1.hdr = {assoc_id, seq};
  s1.mode = mac_count > 1 ? wire::Mode::kCumulative : wire::Mode::kBase;
  s1.chain_index = static_cast<std::uint32_t>(1 + 2 * rng.uniform(100));
  s1.chain_element = crypto::Digest{crypto::ByteView{rng.bytes(digest_size)}};
  for (std::size_t i = 0; i < mac_count; ++i) {
    s1.macs.push_back(crypto::Digest{crypto::ByteView{rng.bytes(digest_size)}});
  }
  return s1;
}

void launch_s2_flood(net::Network& network, net::NodeId attacker,
                     net::NodeId next_hop, std::uint32_t assoc_id,
                     std::size_t count, std::size_t payload_size,
                     net::SimTime interval, std::uint64_t seed) {
  auto rng = std::make_shared<crypto::HmacDrbg>(seed);
  auto& sim = network.sim();
  for (std::size_t i = 0; i < count; ++i) {
    sim.schedule_in(interval * (i + 1), [&network, attacker, next_hop,
                                         assoc_id, payload_size, rng, i] {
      const auto s2 = forge_s2(assoc_id, static_cast<std::uint32_t>(100 + i),
                               payload_size, *rng);
      network.send(attacker, next_hop, s2.encode());
    });
  }
}

crypto::Bytes tamper_s2_payload(crypto::ByteView frame) {
  crypto::Bytes copy(frame.begin(), frame.end());
  if (wire::peek_type(frame) == wire::PacketType::kS2 && !copy.empty()) {
    copy[copy.size() - 1] ^= 0x01;
  }
  return copy;
}

}  // namespace alpha::core
