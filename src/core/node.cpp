#include "core/node.hpp"

#include <stdexcept>

namespace alpha::core {

AlphaNode::AlphaNode(std::unique_ptr<net::Transport> transport,
                     Options options, Callbacks callbacks)
    : transport_(std::move(transport)),
      options_(options),
      shard_(/*index=*/0, std::move(options), std::move(callbacks),
             /*send=*/
             [this](net::PeerAddr peer, crypto::Bytes frame) {
               return transport_->send(peer, std::move(frame));
             },
             /*wakeup=*/[this](std::uint64_t at_us) { schedule_wakeup(at_us); }) {
  if (transport_ == nullptr) {
    throw std::invalid_argument("AlphaNode: null transport");
  }
  transport_->set_receiver(
      [this](net::PeerAddr from, crypto::ByteView frame) {
        shard_.on_frame(from, frame, transport_->now_us());
      });
}

void AlphaNode::schedule_wakeup(std::uint64_t at_us) {
  if (wakeup_pending_ && wakeup_at_ <= at_us) return;
  wakeup_pending_ = true;
  wakeup_at_ = at_us;
  transport_->schedule(at_us, [this] { on_wakeup(); });
}

void AlphaNode::on_wakeup() {
  wakeup_pending_ = false;
  // The shard advances its wheel and re-requests a cadence wakeup through
  // the wakeup callback while any deadline stays armed.
  shard_.advance_timers(transport_->now_us());
}

}  // namespace alpha::core
