// End-host: one duplex ALPHA association.
//
// Composes the bootstrap handshake (§3.4) with a SignerEngine for the
// outgoing simplex channel and a VerifierEngine for the incoming one
// (paper §3.1: "an end-host acts both as a signer and a verifier").
// The host owns its two chains (signature + acknowledgment), announces their
// anchors in HS1/HS2 -- optionally signed with a public-key Identity
// (protected bootstrap) -- and wires the engines once the peer's anchors
// arrive. Messages submitted before establishment are queued.
//
// Transport-agnostic: frames leave via the send callback and arrive through
// on_frame(); works identically over the simulator and UDP sockets.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "core/config.hpp"
#include "core/identity.hpp"
#include "core/signer.hpp"
#include "core/verifier.hpp"

namespace alpha::core {

class Host {
 public:
  struct Options {
    /// Sign the handshake with `identity` (protected bootstrap).
    const Identity* identity = nullptr;
    /// Require and verify a public-key signature on the peer's handshake.
    bool require_protected_peer = false;
  };

  struct Callbacks {
    /// Emits one encoded frame toward the peer.
    std::function<void(crypto::Bytes)> send;
    /// Delivers one authenticated incoming message.
    std::function<void(crypto::ByteView payload)> on_message;
    /// Reports delivery outcome for submitted messages.
    std::function<void(std::uint64_t cookie, DeliveryStatus)> on_delivery;
  };

  Host(Config config, std::uint32_t assoc_id, bool initiator,
       crypto::RandomSource& rng, Callbacks callbacks, Options options);
  Host(Config config, std::uint32_t assoc_id, bool initiator,
       crypto::RandomSource& rng, Callbacks callbacks)
      : Host(config, assoc_id, initiator, rng, std::move(callbacks),
             Options{}) {}

  /// Initiator only: emits the HS1. No-op on responders (they answer HS1).
  /// `now_us` anchors the retransmission timer; 0 (the default) leaves the
  /// timer's last-send anchor untouched, so the next on_tick may retransmit
  /// immediately -- pass the current time when you have it.
  void start(std::uint64_t now_us = 0);

  /// True while a chain rotation handshake is in flight.
  bool rekey_pending() const noexcept { return rekey_pending_; }

  /// Stages a parameter reconfiguration (mode, batch, retry budget, rekey
  /// cadence) to take effect at the next rekey boundary, and starts that
  /// rekey now if none is in flight and the association is established.
  /// The announcement rides the rekey HS1; the responder adopts it before
  /// rotating its chains and echoes it in the HS2, so both ends switch at
  /// the same chain generation. While a rekey is already pending the
  /// request stays staged and triggers its own rekey once the current one
  /// completes (on_tick / submit pick it up) -- it is never lost and never
  /// double-rotates the chains. Returns true iff a rekey started now.
  /// Initiator only (responders adopt, they do not announce).
  bool request_reconfig(const wire::ReconfigAnnounce& reconfig,
                        std::uint64_t now_us);

  /// Reconfiguration staged but not yet applied (in flight or waiting for
  /// the current rekey to finish), if any.
  const std::optional<wire::ReconfigAnnounce>& staged_reconfig()
      const noexcept {
    return staged_reconfig_;
  }

  /// Reconfigurations applied at a rekey boundary (both roles count their
  /// own application).
  std::uint64_t reconfigs_applied() const noexcept {
    return reconfigs_applied_;
  }

  /// The live protocol profile (reflects applied reconfigurations).
  const Config& config() const noexcept { return config_; }

  /// Initiator only: rotate chains immediately (regardless of threshold).
  /// The mobility hook: after a route change, the fresh handshake travels
  /// the new path and teaches the new relays this association's anchors
  /// (the paper fixes the relay set per chain lifetime, §3.1.1 -- a new
  /// path therefore needs new chains). Returns false if not applicable
  /// (responder, unestablished, or rekey already pending).
  bool force_rekey(std::uint64_t now_us);

  /// Feeds one received frame; `now_us` drives retransmission timing.
  void on_frame(crypto::ByteView frame, std::uint64_t now_us);

  /// Queues one message for authenticated transmission to the peer.
  std::uint64_t submit(crypto::Bytes message, std::uint64_t now_us);

  /// Periodic driver for retransmissions.
  void on_tick(std::uint64_t now_us);

  /// Absolute time of the next retransmission deadline (handshake, rekey or
  /// signer round, all with exponential backoff), 0 for "as soon as
  /// possible", nullopt when nothing is pending.
  std::optional<std::uint64_t> next_deadline_us() const noexcept;

  bool established() const noexcept { return signer_ != nullptr; }

  /// True once the handshake/rekey retransmit budget (Config::max_retries)
  /// is exhausted; the association stops retransmitting until start() or an
  /// inbound frame revives it. Surfaced in NodeSnapshot.
  bool failed() const noexcept { return failed_; }

  /// Handshake (HS1/rekey) retransmissions performed.
  std::uint64_t hs_retransmits() const noexcept { return hs_retransmits_; }
  /// Frames that failed the full wire decode (bit corruption in flight).
  std::uint64_t undecodable_frames() const noexcept {
    return undecodable_frames_;
  }
  /// Handshakes rejected by the monotonic-counter replay check (counter
  /// strictly behind ours: genuine replay or long-stale retransmission).
  std::uint64_t replayed_handshakes() const noexcept {
    return replayed_handshakes_;
  }
  /// Benign duplicates of the current handshake (same counter value, e.g.
  /// a retransmitted HS1 whose HS2 answer was lost). Kept separate from
  /// replayed_handshakes() so chaos runs don't misread retransmissions as
  /// attacks.
  std::uint64_t duplicate_handshakes() const noexcept {
    return duplicate_handshakes_;
  }

  /// Association-lifetime signer/verifier stats: rekeying retires the
  /// engines, so the current engine's counters alone under-report. These
  /// fold retired generations in.
  SignerStats signer_stats_total() const noexcept {
    SignerStats total = retired_signer_stats_;
    if (signer_) total += signer_->stats();
    return total;
  }
  VerifierStats verifier_stats_total() const noexcept {
    VerifierStats total = retired_verifier_stats_;
    if (verifier_) total += verifier_->stats();
    return total;
  }

  /// Engine access (null until established). Exposed for stats/benches.
  SignerEngine* signer() noexcept { return signer_.get(); }
  VerifierEngine* verifier() noexcept { return verifier_.get(); }
  const SignerEngine* signer() const noexcept { return signer_.get(); }
  const VerifierEngine* verifier() const noexcept { return verifier_.get(); }

  std::uint32_t assoc_id() const noexcept { return assoc_id_; }
  bool is_initiator() const noexcept { return initiator_; }

 private:
  wire::HandshakePacket make_handshake(
      bool is_response,
      const std::optional<wire::ReconfigAnnounce>& reconfig = std::nullopt);
  bool validate_peer_handshake(const wire::HandshakePacket& hs) const;
  /// Installs an announced profile into config_ (rekey boundary only: the
  /// engines built right after pick it up; chain length, hash algo and
  /// reliability are not reconfigurable).
  void apply_reconfig(const wire::ReconfigAnnounce& reconfig);
  void establish(const wire::HandshakePacket& peer, std::uint64_t now_us);
  /// Replaces exhausted chains with fresh ones (rekeying, §3.4 note on
  /// finite chains). Preserves the old signer's backlog.
  void reestablish(const wire::HandshakePacket& peer, std::uint64_t now_us);
  void rotate_chains();
  void maybe_begin_rekey(std::uint64_t now_us);
  void retransmit_handshake(std::uint64_t now_us);
  std::uint64_t hs_salt() const noexcept {
    return (static_cast<std::uint64_t>(assoc_id_) << 32) | hs_seq_;
  }

  Config config_;
  std::uint32_t assoc_id_;
  bool initiator_;
  crypto::RandomSource* rng_;
  Callbacks callbacks_;
  Options options_;

  hashchain::HashChain sig_chain_;
  hashchain::HashChain ack_chain_;

  std::unique_ptr<SignerEngine> signer_;
  std::unique_ptr<VerifierEngine> verifier_;

  struct Pending {
    std::uint64_t cookie;
    crypto::Bytes payload;
  };
  std::deque<Pending> pre_establish_queue_;
  std::uint64_t next_cookie_ = 1;
  bool handshake_sent_ = false;
  bool rekey_pending_ = false;
  // Reconfiguration staging: `staged_` is the desired profile (latest
  // request wins); `announced_` is the snapshot riding the in-flight rekey
  // HS1 (retransmissions must repeat the exact announcement even if a newer
  // request supersedes it mid-flight).
  std::optional<wire::ReconfigAnnounce> staged_reconfig_;
  std::optional<wire::ReconfigAnnounce> announced_reconfig_;
  std::uint64_t reconfigs_applied_ = 0;
  std::uint32_t hs_seq_ = 0;       // our monotonic handshake counter
  std::uint32_t peer_hs_seq_ = 0;  // highest peer handshake accepted
  crypto::Bytes last_hs_response_;  // cached HS2 for duplicate HS1s
  std::uint64_t last_hs_send_us_ = 0;
  int hs_retries_ = 0;     // retransmit budget used since last progress
  bool failed_ = false;    // budget exhausted, reported in snapshots
  std::uint64_t hs_retransmits_ = 0;
  std::uint64_t undecodable_frames_ = 0;
  std::uint64_t replayed_handshakes_ = 0;
  std::uint64_t duplicate_handshakes_ = 0;
  SignerStats retired_signer_stats_;      // accumulated across rekeys
  VerifierStats retired_verifier_stats_;  // accumulated across rekeys
};

}  // namespace alpha::core
