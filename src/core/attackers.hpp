// Attacker models for the evaluation scenarios (§3.5).
//
// The paper's threat model includes forged/modified packets from outsiders
// and insiders, flooding with unsolicited data, and tampering relays. These
// helpers synthesize that traffic so tests and benches can quantify where
// ALPHA stops each attack (relay drop counters, verifier rejections).
#pragma once

#include <cstdint>

#include "crypto/random.hpp"
#include "net/network.hpp"
#include "wire/packets.hpp"

namespace alpha::core {

/// Crafts a syntactically valid S2 with forged chain element, MAC key and
/// payload -- what an outsider without chain knowledge can produce.
wire::S2Packet forge_s2(std::uint32_t assoc_id, std::uint32_t seq,
                        std::size_t payload_size, crypto::RandomSource& rng,
                        std::size_t digest_size = 20);

/// Crafts a forged S1 (path-reservation flood, §3.5: "hosts that send large
/// amounts of S1 packets without receiving A1 responses can easily be
/// identified").
wire::S1Packet forge_s1(std::uint32_t assoc_id, std::uint32_t seq,
                        std::size_t mac_count, crypto::RandomSource& rng,
                        std::size_t digest_size = 20);

/// Injects `count` forged S2 frames from `attacker` toward `next_hop`,
/// one every `interval` simulated microseconds.
void launch_s2_flood(net::Network& network, net::NodeId attacker,
                     net::NodeId next_hop, std::uint32_t assoc_id,
                     std::size_t count, std::size_t payload_size,
                     net::SimTime interval, std::uint64_t seed);

/// In-flight payload tamperer: returns a mutated copy of the frame if it is
/// an S2 (simulating a malicious relay flipping payload bits); other frames
/// pass unchanged.
crypto::Bytes tamper_s2_payload(crypto::ByteView frame);

}  // namespace alpha::core
