// Multi-association node runtime.
//
// The paper's end-hosts and relays each serve one security association;
// core::Host and core::RelayEngine mirror that. AlphaNode is the scaling
// layer above them: one runtime object that owns many engines, multiplexes
// every inbound frame by a bounds-checked association-id peek (no full
// decode on the hot path), spawns responder associations on demand when an
// unknown HS1 arrives, and drives retransmissions through a hashed timer
// wheel so on_tick fires only for associations that actually have a pending
// deadline -- not as an O(all-assocs) sweep per tick.
//
// The node is transport-agnostic by construction: it talks to the world
// exclusively through net::Transport, so the same code serves the
// deterministic simulator (SimTransport) and real UDP sockets
// (UdpTransport). Per-association and node-level statistics aggregate into
// one snapshot struct for tools and benches.
//
// Roles one node can combine:
//  * end-host associations -- add_initiator() / add_responder(), or
//    accepted automatically from inbound handshakes (Options::accept_inbound)
//  * relay bindings -- add_relay(): a RelayEngine verifying-and-forwarding
//    between two peers, direction derived from the source address
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/host.hpp"
#include "core/relay.hpp"
#include "core/timer_wheel.hpp"
#include "crypto/random.hpp"
#include "net/transport.hpp"

namespace alpha::core {

/// Point-in-time view of one association hosted by a node.
struct AssocSnapshot {
  std::uint32_t assoc_id = 0;
  bool initiator = false;
  bool established = false;
  bool rekey_pending = false;
  bool failed = false;                   // retransmit budget exhausted
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t rekeys_started = 0;
  std::uint64_t hs_retransmits = 0;
  std::uint64_t corrupt_frames = 0;      // failed full decode at the host
  std::uint64_t replayed_handshakes = 0; // stale handshake counters
  std::uint64_t duplicate_handshakes = 0;  // benign same-seq duplicates
  // Round progress of the signer side, for the health watchdog: a round
  // whose (seq, retries) stops changing while active is wedged.
  bool round_active = false;
  std::uint32_t round_seq = 0;
  std::uint32_t round_retries = 0;
  std::size_t backlog = 0;               // submitted, not yet in a round
  // Association-lifetime engine stats (current + rekey-retired engines).
  SignerStats signer;      // zero until first established
  VerifierStats verifier;  // zero until first established
};

/// Aggregated node-level counters plus (optionally) per-association detail.
struct NodeSnapshot {
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t malformed_frames = 0;    // assoc-id peek failed
  std::uint64_t demux_misses = 0;        // no association/relay/accept matched
  std::uint64_t send_failures = 0;       // transport rejected a frame
  std::uint64_t accepted_handshakes = 0; // responders spawned on demand
  std::uint64_t timer_fires = 0;         // association on_tick invocations
  std::uint64_t rekeys_started = 0;
  std::size_t associations = 0;
  std::size_t established = 0;
  std::size_t failed = 0;                // assocs whose budget ran out
  std::uint64_t messages_delivered = 0;  // across all verifiers
  std::uint64_t messages_forged = 0;     // invalid at hosts + relay drops
  std::uint64_t corrupt_frames = 0;      // failed full decode at a host
  std::uint64_t duplicate_frames = 0;    // dup S1/S2 answered idempotently
  std::uint64_t replayed_handshakes = 0; // stale handshake counters
  std::uint64_t duplicate_handshakes = 0;  // benign same-seq duplicates
  std::uint64_t retransmits = 0;         // S1 + S2 + handshake retransmits
  RelayStats relay;                      // summed over relay bindings
  std::vector<AssocSnapshot> assocs;     // filled when requested
};

class AlphaNode {
 public:
  struct Options {
    /// Protocol profile for accepted inbound associations; also the source
    /// of the default timer granularity (rto_us / 2).
    Config config;
    /// Host options for accepted inbound associations.
    Host::Options accept_host_options;
    /// Spawn a responder Host when an HS1 for an unknown association
    /// arrives. Off: such frames count as demux misses.
    bool accept_inbound = false;
    /// Seeds the node's chain-material RNG (deterministic per seed).
    std::uint64_t seed = 1;
    /// Timer wheel resolution; 0 derives config.rto_us / 2.
    std::uint64_t tick_granularity_us = 0;
    /// Timer wheel ring size (horizon = granularity * slots).
    std::size_t wheel_slots = 256;
    /// Origin id stamped on trace events emitted while this node runs
    /// (engines have no node identity of their own; see trace::Event).
    std::uint8_t trace_origin = 0;
  };

  struct Callbacks {
    /// Authenticated message delivered on some association.
    std::function<void(std::uint32_t assoc_id, crypto::ByteView payload)>
        on_message;
    /// Delivery outcome for a submitted message.
    std::function<void(std::uint32_t assoc_id, std::uint64_t cookie,
                       DeliveryStatus)>
        on_delivery;
    /// Association finished (re-)establishment.
    std::function<void(std::uint32_t assoc_id)> on_established;
  };

  /// Takes ownership of the transport and installs itself as its receiver.
  AlphaNode(std::unique_ptr<net::Transport> transport, Options options,
            Callbacks callbacks = {});

  AlphaNode(const AlphaNode&) = delete;
  AlphaNode& operator=(const AlphaNode&) = delete;

  /// Adds an initiator-side association toward `peer`.
  Host& add_initiator(std::uint32_t assoc_id, net::PeerAddr peer) {
    return add_host(assoc_id, peer, /*initiator=*/true, options_.config,
                    Host::Options{});
  }
  Host& add_initiator(std::uint32_t assoc_id, net::PeerAddr peer,
                      const Config& config,
                      const Host::Options& host_options = {}) {
    return add_host(assoc_id, peer, /*initiator=*/true, config, host_options);
  }

  /// Adds a pre-provisioned responder-side association toward `peer`.
  Host& add_responder(std::uint32_t assoc_id, net::PeerAddr peer) {
    return add_host(assoc_id, peer, /*initiator=*/false, options_.config,
                    Host::Options{});
  }
  Host& add_responder(std::uint32_t assoc_id, net::PeerAddr peer,
                      const Config& config,
                      const Host::Options& host_options = {}) {
    return add_host(assoc_id, peer, /*initiator=*/false, config, host_options);
  }

  using ExtractFn = std::function<void(std::uint32_t assoc_id,
                                       std::uint32_t seq,
                                       std::uint16_t msg_index,
                                       crypto::ByteView payload)>;

  /// Adds a relay binding verifying-and-forwarding between `upstream`
  /// (toward the initiator) and `downstream` (toward the responder).
  /// Frames from `downstream` travel kReverse; anything else -- including
  /// unknown injectors -- travels kForward, so floods die here exactly as
  /// on a single-association relay (§3.5). `assoc_ids` optionally pins
  /// specific associations to this binding when one node relays for
  /// several disjoint paths.
  RelayEngine& add_relay(net::PeerAddr upstream, net::PeerAddr downstream,
                         RelayEngine::Options options = {},
                         ExtractFn on_extracted = nullptr,
                         std::vector<std::uint32_t> assoc_ids = {});

  /// Initiator bootstrap: sends the HS1 and arms the retransmission timer.
  void start(std::uint32_t assoc_id);

  /// Submits one message on an association (timestamped from the
  /// transport clock). Returns the delivery cookie.
  std::uint64_t submit(std::uint32_t assoc_id, crypto::Bytes payload);

  /// Drives the transport and the timer wheel for up to `timeout_ms`.
  /// Returns frames delivered. Simulator-backed nodes may instead be driven
  /// by Simulator::run_until directly -- timers fire from the event queue.
  std::size_t poll(int timeout_ms);

  Host* host(std::uint32_t assoc_id) noexcept;
  const Host* host(std::uint32_t assoc_id) const noexcept;
  std::size_t association_count() const noexcept { return assocs_.size(); }
  std::size_t established_count() const noexcept;

  std::size_t relay_count() const noexcept { return relays_.size(); }
  RelayEngine& relay(std::size_t i) { return *relays_.at(i)->engine; }

  std::uint64_t now_us() const { return transport_->now_us(); }
  net::Transport& transport() noexcept { return *transport_; }

  /// Aggregated counters; `per_assoc` additionally fills one AssocSnapshot
  /// per association (O(associations) -- off the hot path by design).
  NodeSnapshot snapshot(bool per_assoc = false) const;

 private:
  struct AssocEntry {
    std::uint32_t assoc_id = 0;
    net::PeerAddr peer = 0;
    std::unique_ptr<Host> host;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t rekeys_started = 0;
    bool was_established = false;
    bool was_rekey_pending = false;
    bool timer_armed = false;
    std::uint64_t timer_deadline_us = 0;  // where the wheel entry sits
  };

  struct RelayBinding {
    std::unique_ptr<RelayEngine> engine;
    net::PeerAddr upstream = 0;
    net::PeerAddr downstream = 0;
  };

  Host& add_host(std::uint32_t assoc_id, net::PeerAddr peer, bool initiator,
                 const Config& config, const Host::Options& host_options);
  void on_inbound(net::PeerAddr from, crypto::ByteView frame);
  RelayBinding* relay_for(std::uint32_t assoc_id, net::PeerAddr from);
  /// Post-activity bookkeeping: established/rekey transitions + timer arm.
  void after_activity(AssocEntry& entry);
  void arm_timer(AssocEntry& entry);
  void schedule_wakeup(std::uint64_t at_us);
  void on_wakeup();
  static bool needs_tick(const Host& host);

  std::unique_ptr<net::Transport> transport_;
  Options options_;
  Callbacks callbacks_;
  crypto::HmacDrbg rng_;
  std::uint64_t tick_granularity_;

  std::map<std::uint32_t, AssocEntry> assocs_;
  std::vector<std::unique_ptr<RelayBinding>> relays_;
  std::map<std::uint32_t, RelayBinding*> relay_by_assoc_;

  TimerWheel wheel_;
  std::vector<std::uint32_t> due_;  // scratch for wheel advance
  bool wakeup_pending_ = false;
  std::uint64_t wakeup_at_ = 0;

  // Node-level counters (per-assoc ones live in the entries).
  std::uint64_t frames_in_ = 0;
  std::uint64_t frames_out_ = 0;
  std::uint64_t malformed_frames_ = 0;
  std::uint64_t demux_misses_ = 0;
  std::uint64_t send_failures_ = 0;
  std::uint64_t accepted_handshakes_ = 0;
  std::uint64_t timer_fires_ = 0;
};

}  // namespace alpha::core
