// Multi-association node runtime (single-threaded poll-loop shape).
//
// The paper's end-hosts and relays each serve one security association;
// core::Host and core::RelayEngine mirror that. AlphaNode is the scaling
// layer above them: one runtime object that owns many engines, multiplexes
// every inbound frame by a bounds-checked association-id peek (no full
// decode on the hot path), spawns responder associations on demand when an
// unknown HS1 arrives, and drives retransmissions through a hashed timer
// wheel so on_tick fires only for associations that actually have a pending
// deadline -- not as an O(all-assocs) sweep per tick.
//
// Since the sharded-runtime refactor, all of that logic lives in
// core::NodeShard (core/shard.hpp); AlphaNode is the one-shard shape of it,
// bound directly to a Transport: frames arrive through the transport's
// receive callback, frames leave through transport->send, and timer wakeups
// ride the transport's scheduler. The multi-core shape of the same shard is
// core::ShardedNode (core/sharded_node.hpp).
//
// The node is transport-agnostic by construction: it talks to the world
// exclusively through net::Transport, so the same code serves the
// deterministic simulator (SimTransport) and real UDP sockets
// (UdpTransport). Per-association and node-level statistics aggregate into
// one snapshot struct for tools and benches.
//
// Roles one node can combine:
//  * end-host associations -- add_initiator() / add_responder(), or
//    accepted automatically from inbound handshakes (Options::accept_inbound)
//  * relay bindings -- add_relay(): a RelayEngine verifying-and-forwarding
//    between two peers, direction derived from the source address
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/shard.hpp"
#include "net/transport.hpp"

namespace alpha::core {

class AlphaNode {
 public:
  using Options = NodeShard::Options;
  using Callbacks = NodeShard::Callbacks;
  using ExtractFn = NodeShard::ExtractFn;

  /// Takes ownership of the transport and installs itself as its receiver.
  AlphaNode(std::unique_ptr<net::Transport> transport, Options options,
            Callbacks callbacks = {});

  AlphaNode(const AlphaNode&) = delete;
  AlphaNode& operator=(const AlphaNode&) = delete;

  /// Adds an initiator-side association toward `peer`.
  Host& add_initiator(std::uint32_t assoc_id, net::PeerAddr peer) {
    return shard_.add_host(assoc_id, peer, /*initiator=*/true,
                           options_.config, Host::Options{});
  }
  Host& add_initiator(std::uint32_t assoc_id, net::PeerAddr peer,
                      const Config& config,
                      const Host::Options& host_options = {}) {
    return shard_.add_host(assoc_id, peer, /*initiator=*/true, config,
                           host_options);
  }

  /// Adds a pre-provisioned responder-side association toward `peer`.
  Host& add_responder(std::uint32_t assoc_id, net::PeerAddr peer) {
    return shard_.add_host(assoc_id, peer, /*initiator=*/false,
                           options_.config, Host::Options{});
  }
  Host& add_responder(std::uint32_t assoc_id, net::PeerAddr peer,
                      const Config& config,
                      const Host::Options& host_options = {}) {
    return shard_.add_host(assoc_id, peer, /*initiator=*/false, config,
                           host_options);
  }

  /// Adds a relay binding verifying-and-forwarding between `upstream`
  /// (toward the initiator) and `downstream` (toward the responder).
  /// Frames from `downstream` travel kReverse; anything else -- including
  /// unknown injectors -- travels kForward, so floods die here exactly as
  /// on a single-association relay (§3.5). `assoc_ids` optionally pins
  /// specific associations to this binding when one node relays for
  /// several disjoint paths.
  RelayEngine& add_relay(net::PeerAddr upstream, net::PeerAddr downstream,
                         RelayEngine::Options options = {},
                         ExtractFn on_extracted = nullptr,
                         std::vector<std::uint32_t> assoc_ids = {}) {
    return shard_.add_relay(upstream, downstream, std::move(options),
                            std::move(on_extracted), std::move(assoc_ids));
  }

  /// Initiator bootstrap: sends the HS1 and arms the retransmission timer.
  void start(std::uint32_t assoc_id) {
    shard_.start(assoc_id, transport_->now_us());
  }

  /// Submits one message on an association (timestamped from the
  /// transport clock). Returns the delivery cookie.
  std::uint64_t submit(std::uint32_t assoc_id, crypto::Bytes payload) {
    return shard_.submit(assoc_id, std::move(payload), transport_->now_us());
  }

  /// Drives the transport and the timer wheel for up to `timeout_ms`.
  /// Returns frames delivered. Simulator-backed nodes may instead be driven
  /// by Simulator::run_until directly -- timers fire from the event queue.
  std::size_t poll(int timeout_ms) { return transport_->poll(timeout_ms); }

  Host* host(std::uint32_t assoc_id) noexcept {
    return shard_.host(assoc_id);
  }
  const Host* host(std::uint32_t assoc_id) const noexcept {
    return shard_.host(assoc_id);
  }
  std::size_t association_count() const noexcept {
    return shard_.association_count();
  }
  std::size_t established_count() const noexcept {
    return shard_.established_count();
  }

  std::size_t relay_count() const noexcept { return shard_.relay_count(); }
  RelayEngine& relay(std::size_t i) { return shard_.relay(i); }

  std::uint64_t now_us() const { return transport_->now_us(); }
  net::Transport& transport() noexcept { return *transport_; }

  /// Aggregated counters; `per_assoc` additionally fills one AssocSnapshot
  /// per association (O(associations) -- off the hot path by design).
  NodeSnapshot snapshot(bool per_assoc = false) const {
    NodeSnapshot s;
    shard_.snapshot_into(s, per_assoc);
    return s;
  }

 private:
  void schedule_wakeup(std::uint64_t at_us);
  void on_wakeup();

  std::unique_ptr<net::Transport> transport_;
  Options options_;
  NodeShard shard_;
  bool wakeup_pending_ = false;
  std::uint64_t wakeup_at_ = 0;
};

}  // namespace alpha::core
