// Public-key identities for the protected bootstrap (§3.4).
//
// ALPHA limits asymmetric cryptography to the handshake: a protected
// handshake signs the hash-chain anchors with RSA or DSA, binding the
// ephemeral chains to a strong identity. The Identity owns a private key and
// signs handshake payloads; PeerIdentity verifies them from the encoded
// public key carried in the handshake packet.
#pragma once

#include <optional>
#include <variant>

#include "crypto/dsa.hpp"
#include "crypto/ec.hpp"
#include "crypto/rsa.hpp"
#include "wire/packets.hpp"

namespace alpha::core {

using crypto::Bytes;
using crypto::ByteView;

class Identity {
 public:
  static Identity make_rsa(crypto::RandomSource& rng, std::size_t bits = 1024);
  static Identity make_dsa(crypto::RandomSource& rng, std::size_t l_bits = 1024,
                           std::size_t n_bits = 160);
  /// ECDSA identity; the paper recommends ECC for sensor-class anchor
  /// signing (§4.1.3). Pass EcCurve::secp160r1() or EcCurve::p256().
  static Identity make_ecdsa(crypto::RandomSource& rng,
                             const crypto::EcCurve& curve);

  wire::SigAlg alg() const noexcept;

  /// Wire encoding of the verification key.
  Bytes encode_public() const;

  /// Serializes the private key (tag byte + per-algorithm fields). Plain
  /// bytes -- protect the file at rest; there is no passphrase wrapping.
  Bytes serialize_private() const;
  /// Inverse of serialize_private(); nullopt on malformed input.
  static std::optional<Identity> deserialize_private(ByteView data);

  /// Signs `payload` (hashed with `algo` internally; SHA-1 to match the
  /// paper's profile, SHA-256 recommended today). DSA needs the rng.
  Bytes sign(crypto::HashAlgo algo, ByteView payload,
             crypto::RandomSource& rng) const;

 private:
  explicit Identity(crypto::RsaPrivateKey key) : key_(std::move(key)) {}
  explicit Identity(crypto::DsaPrivateKey key) : key_(std::move(key)) {}
  explicit Identity(crypto::EcdsaPrivateKey key) : key_(std::move(key)) {}

  std::variant<crypto::RsaPrivateKey, crypto::DsaPrivateKey,
               crypto::EcdsaPrivateKey>
      key_;
};

/// Verification-only peer identity decoded from a handshake.
class PeerIdentity {
 public:
  /// Decodes an encoded public key; nullopt on malformed input.
  static std::optional<PeerIdentity> decode(wire::SigAlg alg,
                                            ByteView encoded);

  bool verify(crypto::HashAlgo algo, ByteView payload,
              ByteView signature) const;

  wire::SigAlg alg() const noexcept;

 private:
  explicit PeerIdentity(crypto::RsaPublicKey key) : key_(std::move(key)) {}
  explicit PeerIdentity(crypto::DsaPublicKey key) : key_(std::move(key)) {}
  explicit PeerIdentity(crypto::EcdsaPublicKey key) : key_(std::move(key)) {}

  std::variant<crypto::RsaPublicKey, crypto::DsaPublicKey,
               crypto::EcdsaPublicKey>
      key_;
};

}  // namespace alpha::core
