#include "core/sharded_node.hpp"

#include <chrono>
#include <stdexcept>

#include "trace/prof.hpp"
#include "wire/packets.hpp"

namespace alpha::core {

namespace {
/// Frames pulled from / pushed to the transport per syscall round.
constexpr std::size_t kIoBatch = 32;
/// Idle nap for threads with nothing to do. Short enough that handshake
/// round-trips stay well under the protocol RTO, long enough that an idle
/// node does not monopolize a core (the CI containers are small).
constexpr auto kIdleNap = std::chrono::microseconds(50);

NodeShard::Options shard_options(const ShardedNode::Options& options,
                                 std::uint32_t index) {
  NodeShard::Options o = options.shard;
  // Distinct deterministic chain material per shard.
  o.seed = options.shard.seed + index;
  return o;
}
}  // namespace

ShardedNode::ShardedNode(std::unique_ptr<net::Transport> transport,
                         Options options, Callbacks callbacks)
    : transport_(std::move(transport)),
      options_(std::move(options)),
      workers_(options_.workers < 1 ? 1 : options_.workers) {
  if (transport_ == nullptr) {
    throw std::invalid_argument("ShardedNode: null transport");
  }
  threaded_ = transport_->clock_thread_safe();

  shards_.reserve(workers_);
  for (std::uint32_t i = 0; i < workers_; ++i) {
    auto sh = std::make_unique<Shard>();
    Shard* raw = sh.get();
    sh->in = std::make_unique<FrameRing>(options_.ring_capacity);
    sh->ctrl = std::make_unique<FrameRing>(options_.ring_capacity);
    sh->out = std::make_unique<FrameRing>(options_.ring_capacity);
    // Outbound frames never leave the worker thread directly: they queue on
    // the shard's out-ring for the I/O thread (threaded) or the inline
    // flush. A full ring is a send failure the shard counts -- explicit
    // backpressure instead of an unbounded queue.
    NodeShard::SendFn send = [raw](net::PeerAddr peer, crypto::Bytes frame) {
      return raw->out->try_push(FrameSlot::Kind::kFrame, peer, 0, 0,
                                crypto::ByteView{frame.data(), frame.size()});
    };
    // The relay fast path hands frames over as borrowed views: they go
    // straight from the pipeline's batch buffers into ring slots with no
    // intermediate Bytes allocation.
    NodeShard::SendViewFn send_view = [raw](net::PeerAddr peer,
                                            crypto::ByteView frame) {
      return raw->out->try_push(FrameSlot::Kind::kFrame, peer, 0, 0, frame);
    };
    NodeShard::WakeupFn wakeup;
    if (!threaded_) {
      // Inline drive: timer cadence rides the transport scheduler, exactly
      // like AlphaNode. (Workers poll advance_timers themselves instead.)
      wakeup = [this, raw](std::uint64_t at_us) {
        schedule_shard_wakeup(*raw, at_us);
      };
    }
    sh->node = std::make_unique<NodeShard>(i, shard_options(options_, i),
                                           callbacks, std::move(send),
                                           std::move(wakeup),
                                           std::move(send_view));
    shards_.push_back(std::move(sh));
  }

  if (!threaded_) {
    // Inline mode keeps the push model so frames are processed at their
    // virtual arrival time (a response produced at t must enter the network
    // at t, not when the current poll returns): each frame still crosses
    // the owning shard's in-ring, it is just drained immediately.
    transport_->set_receiver(
        [this](net::PeerAddr from, crypto::ByteView frame) {
          route_frame(from, frame, transport_->now_us());
        });
  }
}

ShardedNode::~ShardedNode() {
  if (running_.load(std::memory_order_relaxed)) {
    stop_.store(true, std::memory_order_relaxed);
    for (auto& t : worker_threads_) {
      if (t.joinable()) t.join();
    }
    if (io_thread_.joinable()) io_thread_.join();
  }
}

Host& ShardedNode::add_host(std::uint32_t assoc_id, net::PeerAddr peer,
                            bool initiator, const Config& config,
                            const Host::Options& host_options) {
  if (running_.load(std::memory_order_relaxed)) {
    throw std::logic_error(
        "ShardedNode: associations must be added before the workers launch");
  }
  Shard& sh = *shards_[shard_for(assoc_id)];
  Host& host =
      sh.node->add_host(assoc_id, peer, initiator, config, host_options);
  {
    const std::lock_guard<std::mutex> lock(control_mu_);
    known_assocs_.insert(assoc_id);
  }
  return host;
}

Host& ShardedNode::add_initiator(std::uint32_t assoc_id, net::PeerAddr peer) {
  return add_host(assoc_id, peer, /*initiator=*/true, options_.shard.config,
                  Host::Options{});
}

Host& ShardedNode::add_initiator(std::uint32_t assoc_id, net::PeerAddr peer,
                                 const Config& config,
                                 const Host::Options& host_options) {
  return add_host(assoc_id, peer, /*initiator=*/true, config, host_options);
}

Host& ShardedNode::add_responder(std::uint32_t assoc_id, net::PeerAddr peer) {
  return add_host(assoc_id, peer, /*initiator=*/false, options_.shard.config,
                  Host::Options{});
}

Host& ShardedNode::add_responder(std::uint32_t assoc_id, net::PeerAddr peer,
                                 const Config& config,
                                 const Host::Options& host_options) {
  return add_host(assoc_id, peer, /*initiator=*/false, config, host_options);
}

void ShardedNode::add_relay(net::PeerAddr upstream, net::PeerAddr downstream,
                            std::vector<std::uint32_t> assoc_ids,
                            std::size_t relay_batch,
                            RelayEngine::Options relay_options,
                            NodeShard::ExtractFn on_extracted) {
  if (running_.load(std::memory_order_relaxed)) {
    throw std::logic_error(
        "ShardedNode: relays must be added before the workers launch");
  }
  for (std::uint32_t i = 0; i < workers_; ++i) {
    // Each shard's binding owns exactly the assoc ids the I/O thread will
    // route to it, so relay state never crosses a shard boundary.
    std::vector<std::uint32_t> owned;
    for (const std::uint32_t id : assoc_ids) {
      if (shard_for(id) == i) owned.push_back(id);
    }
    if (relay_batch > 1) {
      shards_[i]->node->add_relay_pipeline(upstream, downstream, relay_batch,
                                           relay_options, on_extracted,
                                           std::move(owned));
    } else {
      shards_[i]->node->add_relay(upstream, downstream, relay_options,
                                  on_extracted, std::move(owned));
    }
  }
}

void ShardedNode::ensure_running() {
  if (!threaded_ || running_.load(std::memory_order_acquire)) return;
  running_.store(true, std::memory_order_release);
  stop_.store(false, std::memory_order_relaxed);
  // std::thread construction synchronizes-with the top of each thread, so
  // every association added so far is visible to its worker without locks.
  io_thread_ = std::thread([this] { io_loop(); });
  worker_threads_.reserve(workers_);
  for (std::uint32_t i = 0; i < workers_; ++i) {
    worker_threads_.emplace_back([this, i] { worker_loop(*shards_[i]); });
  }
}

void ShardedNode::start(std::uint32_t assoc_id) {
  Shard& sh = *shards_[shard_for(assoc_id)];
  if (!threaded_) {
    sh.node->start(assoc_id, transport_->now_us());
    flush_out_ring(sh);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(control_mu_);
    if (!known_assocs_.contains(assoc_id)) {
      throw std::invalid_argument("ShardedNode::start: unknown association");
    }
  }
  ensure_running();
  while (!sh.ctrl->try_push(FrameSlot::Kind::kStart, 0, transport_->now_us(),
                            assoc_id, {})) {
    std::this_thread::sleep_for(kIdleNap);
  }
}

std::uint64_t ShardedNode::submit(std::uint32_t assoc_id,
                                  crypto::Bytes payload) {
  Shard& sh = *shards_[shard_for(assoc_id)];
  if (!threaded_) {
    const std::uint64_t cookie =
        sh.node->submit(assoc_id, std::move(payload), transport_->now_us());
    flush_out_ring(sh);
    return cookie;
  }
  std::uint64_t cookie;
  {
    const std::lock_guard<std::mutex> lock(control_mu_);
    if (!known_assocs_.contains(assoc_id)) {
      throw std::invalid_argument("ShardedNode::submit: unknown association");
    }
    // Mirror the shard's cookie numbering (1, 2, ... per association, in
    // submit order). The control ring is FIFO and this supervisor is its
    // only producer, so the mirror cannot drift from the Host's counter.
    cookie = ++next_cookie_[assoc_id];
  }
  ensure_running();
  while (!sh.ctrl->try_push(
      FrameSlot::Kind::kSubmit, 0, transport_->now_us(), assoc_id,
      crypto::ByteView{payload.data(), payload.size()})) {
    std::this_thread::sleep_for(kIdleNap);
  }
  return cookie;
}

std::size_t ShardedNode::poll(int timeout_ms) {
  if (!threaded_) {
    const std::size_t frames = transport_->poll(timeout_ms);
    for (auto& sh : shards_) flush_out_ring(*sh);
    return frames;
  }
  ensure_running();
  auto routed = [this] {
    std::uint64_t n = 0;
    for (const auto& sh : shards_) {
      n += sh->frames_routed.load(std::memory_order_relaxed);
    }
    return n;
  };
  const std::uint64_t before = routed();
  if (timeout_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(timeout_ms));
  }
  return static_cast<std::size_t>(routed() - before);
}

std::size_t ShardedNode::established_count() const noexcept {
  std::size_t n = 0;
  for (const auto& sh : shards_) n += sh->node->established_count_relaxed();
  return n;
}

std::size_t ShardedNode::association_count() {
  if (!threaded_ || !running_.load(std::memory_order_relaxed)) {
    std::size_t n = 0;
    for (const auto& sh : shards_) n += sh->node->association_count();
    return n;
  }
  return snapshot(/*per_assoc=*/false).associations;
}

NodeSnapshot ShardedNode::snapshot(bool per_assoc) {
  NodeSnapshot s;
  if (!threaded_ || !running_.load(std::memory_order_relaxed)) {
    for (const auto& sh : shards_) sh->node->snapshot_into(s, per_assoc);
  } else {
    // Shard state belongs to its worker: route the request through each
    // control ring and collect the fragments from the mailboxes. Requests
    // fan out first so the shards snapshot concurrently.
    for (auto& sh : shards_) {
      sh->frag = NodeSnapshot{};
      sh->frag_per_assoc = per_assoc;
      sh->frag_ready.store(false, std::memory_order_release);
      while (!sh->ctrl->try_push(FrameSlot::Kind::kSnapshot, 0,
                                 transport_->now_us(), 0, {})) {
        std::this_thread::sleep_for(kIdleNap);
      }
    }
    for (auto& sh : shards_) {
      while (!sh->frag_ready.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(kIdleNap);
      }
      s.frames_in += sh->frag.frames_in;
      s.frames_out += sh->frag.frames_out;
      s.malformed_frames += sh->frag.malformed_frames;
      s.demux_misses += sh->frag.demux_misses;
      s.send_failures += sh->frag.send_failures;
      s.accepted_handshakes += sh->frag.accepted_handshakes;
      s.timer_fires += sh->frag.timer_fires;
      s.rekeys_started += sh->frag.rekeys_started;
      s.associations += sh->frag.associations;
      s.established += sh->frag.established;
      s.failed += sh->frag.failed;
      s.messages_delivered += sh->frag.messages_delivered;
      s.messages_forged += sh->frag.messages_forged;
      s.corrupt_frames += sh->frag.corrupt_frames;
      s.duplicate_frames += sh->frag.duplicate_frames;
      s.replayed_handshakes += sh->frag.replayed_handshakes;
      s.duplicate_handshakes += sh->frag.duplicate_handshakes;
      s.retransmits += sh->frag.retransmits;
      s.relay += sh->frag.relay;
      if (per_assoc) {
        s.assocs.insert(s.assocs.end(), sh->frag.assocs.begin(),
                        sh->frag.assocs.end());
      }
    }
  }
  for (const auto& sh : shards_) {
    s.ring_overflows += sh->in->overflows() + sh->out->overflows();
  }
  return s;
}

std::vector<ShardedNode::ShardStats> ShardedNode::shard_stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (std::uint32_t i = 0; i < shards_.size(); ++i) {
    const Shard& sh = *shards_[i];
    ShardStats st;
    st.shard = i;
    st.in_depth = sh.in->size_approx();
    st.out_depth = sh.out->size_approx();
    st.in_overflows = sh.in->overflows();
    st.out_overflows = sh.out->overflows();
    st.frames_routed = sh.frames_routed.load(std::memory_order_relaxed);
    st.relay_pending = sh.node->relay_pending_relaxed();
    stats.push_back(st);
  }
  return stats;
}

void ShardedNode::route_frame(net::PeerAddr from, crypto::ByteView frame,
                              std::uint64_t recv_us) {
  // The only per-frame work outside the owning shard: a bounds-checked
  // 4-byte peek. Frames whose association id cannot be read go to shard 0,
  // whose own demux counts them as malformed.
  const auto assoc_id = wire::peek_assoc_id(frame);
  Shard& sh = *shards_[shard_for(assoc_id.value_or(0))];
  if (sh.in->try_push(FrameSlot::Kind::kFrame, from, recv_us,
                      assoc_id.value_or(0), frame)) {
    sh.frames_routed.fetch_add(1, std::memory_order_relaxed);
  }
  // Overflow: the ring already counted it; dropping here is equivalent to
  // loss on the wire, which the protocol's retransmissions absorb.
  if (!threaded_) drain_shard_inline(sh);
}

void ShardedNode::apply_slot(Shard& sh, const FrameSlot& slot,
                             std::uint64_t now_us) {
  switch (slot.kind) {
    case FrameSlot::Kind::kFrame:
      sh.node->on_frame(slot.peer, slot.view(), slot.time_us);
      break;
    case FrameSlot::Kind::kSubmit:
      sh.node->submit(slot.assoc_id,
                      crypto::Bytes(slot.buf.data(),
                                    slot.buf.data() + slot.size),
                      now_us);
      break;
    case FrameSlot::Kind::kStart:
      sh.node->start(slot.assoc_id, now_us);
      break;
    case FrameSlot::Kind::kSnapshot:
      sh.node->snapshot_into(sh.frag, sh.frag_per_assoc);
      sh.frag_ready.store(true, std::memory_order_release);
      break;
  }
}

void ShardedNode::drain_shard_inline(Shard& sh) {
  {
    trace::ScopedStage prof_stage(trace::Stage::kShardDrain);
    while (const FrameSlot* slot = sh.in->front()) {
      apply_slot(sh, *slot, slot->time_us);
      sh.in->pop();
    }
    // End-of-drain: partial relay batches go out now, before their frames'
    // outbound ring pass, so batching never holds a frame across polls.
    sh.node->flush_relays();
  }
  flush_out_ring(sh);
}

std::size_t ShardedNode::flush_out_ring(Shard& sh) {
  std::size_t total = 0;
  for (;;) {
    net::TxFrame batch[kIoBatch];
    std::size_t n = 0;
    while (n < kIoBatch) {
      const FrameSlot* slot = sh.out->peek(n);
      if (slot == nullptr) break;
      batch[n].peer = slot->peer;
      batch[n].data = slot->view();
      ++n;
    }
    if (n == 0) break;
    const std::size_t accepted = transport_->send_batch(batch, n);
    sh.out->pop_n(accepted);
    total += accepted;
    // Partial completion = transport backpressure: leave the tail queued
    // for the next pass rather than spinning on a congested socket.
    if (accepted < n) break;
  }
  return total;
}

void ShardedNode::schedule_shard_wakeup(Shard& sh, std::uint64_t at_us) {
  if (sh.wakeup_pending && sh.wakeup_at <= at_us) return;
  sh.wakeup_pending = true;
  sh.wakeup_at = at_us;
  transport_->schedule(at_us, [this, &sh] {
    sh.wakeup_pending = false;
    sh.node->advance_timers(transport_->now_us());
    flush_out_ring(sh);
  });
}

void ShardedNode::io_loop() {
  net::RxFrame rx[kIoBatch];
  while (!stop_.load(std::memory_order_relaxed)) {
    // Non-blocking drain: a blocking wait here would sit on outbound frames
    // the workers queued meanwhile. The nap below bounds idle spin instead.
    const std::size_t got = transport_->recv_batch(0, rx, kIoBatch);
    for (std::size_t i = 0; i < got; ++i) {
      route_frame(rx[i].from, rx[i].data, rx[i].recv_us);
    }
    std::size_t flushed = 0;
    for (auto& sh : shards_) flushed += flush_out_ring(*sh);
    if (got == 0 && flushed == 0) std::this_thread::sleep_for(kIdleNap);
  }
}

void ShardedNode::worker_loop(Shard& sh) {
  if (options_.worker_init) options_.worker_init(sh.node->index());
  while (!stop_.load(std::memory_order_relaxed)) {
    std::size_t did = 0;
    // Gate the profiler scope on pending work so idle poll iterations do
    // not dilute the per-drain cycle/instruction attribution.
    if (sh.ctrl->front() != nullptr || sh.in->front() != nullptr) {
      trace::ScopedStage prof_stage(trace::Stage::kShardDrain);
      // Control first: a submit enqueued before a burst of frames should see
      // the pre-burst association state, and snapshots should not starve.
      while (const FrameSlot* slot = sh.ctrl->front()) {
        apply_slot(sh, *slot, transport_->now_us());
        sh.ctrl->pop();
        ++did;
      }
      while (const FrameSlot* slot = sh.in->front()) {
        apply_slot(sh, *slot, transport_->now_us());
        sh.in->pop();
        ++did;
      }
    }
    // End-of-drain flush: full batches flushed themselves inside on_frame;
    // whatever is left goes out before the idle nap, so batching trades no
    // latency for its throughput.
    sh.node->flush_relays();
    sh.node->advance_timers(transport_->now_us());
    if (did == 0) std::this_thread::sleep_for(kIdleNap);
  }
}

}  // namespace alpha::core
