// Baseline: per-packet public-key signatures.
//
// The other conventional option (§1): sign every packet with RSA or DSA.
// Relays *can* verify (the public key is public), but the per-packet cost is
// orders of magnitude above a hash -- the paper's Table 4 gap (e.g. 181 ms
// RSA-1024 signing on the Nokia 770 vs 2.3 ms for a full ALPHA exchange).
// Benches quantify that gap on the host.
#pragma once

#include <optional>

#include "core/identity.hpp"
#include "crypto/bytes.hpp"

namespace alpha::baselines {

using crypto::Bytes;
using crypto::ByteView;

class PkChannel {
 public:
  /// Signs with `identity`; verification needs only the encoded public key.
  PkChannel(const core::Identity& identity, crypto::HashAlgo algo,
            crypto::RandomSource& rng)
      : identity_(&identity), algo_(algo), rng_(&rng) {}

  /// Frame layout: u16 payload_len || payload || signature.
  Bytes protect(ByteView message) const;

  /// Anyone (end host or relay) verifies with the sender's public key.
  static std::optional<Bytes> verify(ByteView frame, wire::SigAlg alg,
                                     ByteView public_key,
                                     crypto::HashAlgo algo);

 private:
  const core::Identity* identity_;
  crypto::HashAlgo algo_;
  crypto::RandomSource* rng_;
};

}  // namespace alpha::baselines
