#include "baselines/tesla_like.hpp"

#include "crypto/mac.hpp"
#include "wire/codec.hpp"

namespace alpha::baselines {

namespace {
// Frame: u32 epoch | u8 has_payload | [digest mac | blob16 payload] |
//        u8 has_disclosure | [u32 disclosed_epoch | digest key]
constexpr std::uint8_t kYes = 1;
constexpr std::uint8_t kNo = 0;

crypto::Digest epoch_mac(crypto::HashAlgo algo, const crypto::Digest& key,
                         std::size_t epoch, ByteView payload) {
  std::uint8_t e[4];
  for (int i = 0; i < 4; ++i) {
    e[i] = static_cast<std::uint8_t>(epoch >> (24 - 8 * i));
  }
  const Bytes data = crypto::concat({ByteView{e, 4}, payload});
  return crypto::hmac(algo, key.view(), data);
}
}  // namespace

TeslaSender::TeslaSender(TeslaConfig config, ByteView seed,
                         std::uint64_t start_us)
    : config_(config),
      chain_(config.algo, hashchain::ChainTagging::kPlain, seed,
             config.chain_length),
      anchor_(chain_.anchor()),
      start_us_(start_us) {}

Digest TeslaSender::epoch_key(std::size_t epoch) const {
  // Epoch e uses element (n - 1 - e): consumed top-down below the anchor.
  const std::size_t index = chain_.length() - 1 - epoch;
  return chain_.element(index);
}

Bytes TeslaSender::protect(ByteView message, std::uint64_t now_us) const {
  const std::size_t e = epoch_of(now_us);
  wire::Writer w;
  w.u32(static_cast<std::uint32_t>(e));
  w.u8(kYes);
  w.digest(epoch_mac(config_.algo, epoch_key(e), e, message));
  w.blob16(message);
  if (e >= config_.disclosure_delay) {
    const std::size_t de = e - config_.disclosure_delay;
    w.u8(kYes);
    w.u32(static_cast<std::uint32_t>(de));
    w.digest(epoch_key(de));
  } else {
    w.u8(kNo);
  }
  return w.take();
}

Bytes TeslaSender::heartbeat(std::uint64_t now_us) const {
  const std::size_t e = epoch_of(now_us);
  wire::Writer w;
  w.u32(static_cast<std::uint32_t>(e));
  w.u8(kNo);
  if (e >= config_.disclosure_delay) {
    const std::size_t de = e - config_.disclosure_delay;
    w.u8(kYes);
    w.u32(static_cast<std::uint32_t>(de));
    w.digest(epoch_key(de));
  } else {
    w.u8(kNo);
  }
  return w.take();
}

TeslaReceiver::TeslaReceiver(TeslaConfig config, Digest anchor,
                             std::uint64_t start_us)
    : config_(config),
      verifier_(config.algo, hashchain::ChainTagging::kPlain,
                std::move(anchor), config.chain_length,
                /*max_gap=*/config.chain_length),
      start_us_(start_us) {}

std::vector<TeslaReceiver::Released> TeslaReceiver::on_packet(
    ByteView frame, std::uint64_t now_us) {
  std::vector<Released> out;
  ++stats_.received;
  try {
    wire::Reader r{frame};
    const std::size_t e = r.u32();

    std::optional<Pending> pending;
    if (r.u8() == kYes) {
      Pending p;
      p.mac = r.digest();
      p.payload = r.blob16();
      pending = std::move(p);
    }

    std::optional<std::pair<std::size_t, Digest>> disclosure;
    if (r.u8() == kYes) {
      const std::size_t de = r.u32();
      disclosure = {de, r.digest()};
    }
    r.expect_end();

    // TESLA safety condition: the packet's epoch key must still be secret
    // at (receive time + skew). Key of epoch e is disclosed once the sender
    // enters epoch e + d.
    if (pending.has_value()) {
      const std::uint64_t disclosure_time =
          start_us_ + static_cast<std::uint64_t>(e + config_.disclosure_delay) *
                          config_.epoch_us;
      if (now_us + config_.max_skew_us >= disclosure_time) {
        ++stats_.unsafe_dropped;
        pending.reset();
      }
    }

    if (pending.has_value()) {
      // If the key is already verified (late but safe packet), check now.
      if (const auto key = verified_keys_.find(e); key != verified_keys_.end()) {
        if (epoch_mac(config_.algo, key->second, e, pending->payload)
                .ct_equals(pending->mac)) {
          ++stats_.released;
          out.push_back(Released{e, std::move(pending->payload)});
        } else {
          ++stats_.invalid;
        }
      } else {
        buffer_[e].push_back(std::move(*pending));
        ++buffer_count_;
        stats_.buffered_peak = std::max<std::uint64_t>(stats_.buffered_peak,
                                                       buffer_count_);
      }
    }

    if (disclosure.has_value()) {
      const auto [de, key] = *disclosure;
      if (!verified_keys_.contains(de)) {
        const std::size_t index = config_.chain_length - 1 - de;
        if (verifier_.last_index() > index) {
          if (verifier_.accept(key, index)) {
            verified_keys_[de] = key;
          } else {
            ++stats_.invalid;
          }
        }
        // else: chain already advanced past this epoch (stale replay).
      }
      // Release everything buffered for that epoch.
      if (const auto key_it = verified_keys_.find(de);
          key_it != verified_keys_.end()) {
        if (const auto buf = buffer_.find(de); buf != buffer_.end()) {
          for (auto& p : buf->second) {
            --buffer_count_;
            if (epoch_mac(config_.algo, key_it->second, de, p.payload)
                    .ct_equals(p.mac)) {
              ++stats_.released;
              out.push_back(Released{de, std::move(p.payload)});
            } else {
              ++stats_.invalid;
            }
          }
          buffer_.erase(buf);
        }
      }
    }
  } catch (const wire::DecodeError&) {
    ++stats_.invalid;
  }
  return out;
}

}  // namespace alpha::baselines
