#include "baselines/pk_channel.hpp"

#include "wire/codec.hpp"

namespace alpha::baselines {

Bytes PkChannel::protect(ByteView message) const {
  wire::Writer w;
  w.blob16(message);
  w.raw(identity_->sign(algo_, message, *rng_));
  return w.take();
}

std::optional<Bytes> PkChannel::verify(ByteView frame, wire::SigAlg alg,
                                       ByteView public_key,
                                       crypto::HashAlgo algo) {
  try {
    wire::Reader r{frame};
    const Bytes payload = r.blob16();
    const ByteView signature = r.raw(r.remaining());
    const auto peer = core::PeerIdentity::decode(alg, public_key);
    if (!peer.has_value()) return std::nullopt;
    if (!peer->verify(algo, payload, signature)) return std::nullopt;
    return payload;
  } catch (const wire::DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace alpha::baselines
