// Baseline: shared-secret end-to-end integrity protection.
//
// The conventional lightweight approach the paper positions ALPHA against
// (§1): both end hosts share a symmetric key and protect each message with a
// MAC. Computationally cheap -- but relays have no key, so they can neither
// verify nor filter traffic (forgeries travel the whole path), and sharing
// the key with relays would let a malicious relay forge traffic. Tests and
// benches demonstrate both failure modes.
#pragma once

#include <optional>

#include "crypto/bytes.hpp"
#include "crypto/mac.hpp"

namespace alpha::baselines {

using crypto::Bytes;
using crypto::ByteView;

class HmacChannel {
 public:
  /// The channel key is long-lived, so the MAC key schedule (HMAC
  /// ipad/opad midstates) is computed once here, not per message.
  HmacChannel(crypto::HashAlgo algo, crypto::MacKind mac_kind, ByteView key)
      : algo_(algo), ctx_(mac_kind, algo, key) {}

  /// Frame layout: payload || MAC(key, payload).
  Bytes protect(ByteView message) const;

  /// Returns the payload iff the MAC checks out.
  std::optional<Bytes> verify(ByteView frame) const;

  std::size_t mac_size() const noexcept { return crypto::digest_size(algo_); }

 private:
  crypto::HashAlgo algo_;
  crypto::MacContext ctx_;
};

}  // namespace alpha::baselines
