#include "baselines/hopwise.hpp"

namespace alpha::baselines {

HopwisePath::HopwisePath(crypto::HashAlgo algo, crypto::MacKind mac_kind,
                         std::size_t hops, crypto::RandomSource& rng) {
  links_.reserve(hops);
  for (std::size_t i = 0; i < hops; ++i) {
    links_.emplace_back(algo, mac_kind, rng.bytes(crypto::digest_size(algo)));
  }
}

HopwisePath::Result HopwisePath::transmit(
    crypto::ByteView message,
    const std::function<Bytes(Bytes, std::size_t relay)>& insider) const {
  Result result;
  Bytes plain(message.begin(), message.end());
  for (std::size_t link = 0; link < links_.size(); ++link) {
    const Bytes frame = links_[link].protect(plain);
    const auto unwrapped = links_[link].verify(frame);
    if (!unwrapped.has_value()) {
      result.dropped_at_link = link;
      return result;
    }
    plain = *unwrapped;
    // Relay `link` (the node between link and link+1) may be malicious.
    if (insider && link + 1 < links_.size()) {
      plain = insider(std::move(plain), link);
    }
  }
  result.delivered = true;
  result.payload = std::move(plain);
  return result;
}

bool HopwisePath::inject(std::size_t link,
                         crypto::ByteView forged_frame) const {
  return links_.at(link).verify(forged_frame).has_value();
}

}  // namespace alpha::baselines
