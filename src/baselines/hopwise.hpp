// Baseline: hop-by-hop symmetric MACs with pairwise link keys.
//
// The LHAP / HEAP / Gouda-et-al. family (§2.2): every pair of adjacent
// routers shares a key; each relay verifies the previous hop's MAC and
// re-MACs for the next. Outsider injection onto any link is detected by the
// next node -- but an *insider* relay can modify payloads undetected,
// because no end-to-end evidence survives the re-MAC. ALPHA closes exactly
// this gap; tests demonstrate the difference.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "baselines/hmac_e2e.hpp"
#include "crypto/random.hpp"

namespace alpha::baselines {

class HopwisePath {
 public:
  /// A path with `hops` links (hops+1 nodes); one fresh pairwise key each.
  HopwisePath(crypto::HashAlgo algo, crypto::MacKind mac_kind,
              std::size_t hops, crypto::RandomSource& rng);

  std::size_t hops() const noexcept { return links_.size(); }

  struct Result {
    bool delivered = false;
    Bytes payload;                      // what the destination accepted
    std::optional<std::size_t> dropped_at_link;  // outsider detection point
  };

  /// End-to-end transmission: the source wraps for link 0, each relay
  /// unwraps/verifies and re-wraps. `insider` (if set) lets relay i mutate
  /// the plaintext it forwards -- the insider attack no hopwise scheme can
  /// catch.
  Result transmit(
      crypto::ByteView message,
      const std::function<Bytes(Bytes, std::size_t relay)>& insider = nullptr)
      const;

  /// Outsider injection: a frame without knowledge of link `link`'s key.
  /// Returns true iff the next node would accept it (always false for
  /// non-trivial MACs).
  bool inject(std::size_t link, crypto::ByteView forged_frame) const;

  /// Per-message MAC operations along the whole path (2 per link: strip +
  /// re-add), the scheme's cost driver.
  std::size_t mac_ops_per_message() const noexcept { return 2 * links_.size(); }

 private:
  std::vector<HmacChannel> links_;
};

}  // namespace alpha::baselines
