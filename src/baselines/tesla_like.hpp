// Baseline: TESLA-style time-based hash-chain authentication.
//
// The time-based alternative the paper contrasts with interactive signatures
// (§2.1.1): time is divided into epochs, each bound to one element of a
// plain hash chain; packets of epoch e carry MAC(K_e, m) and disclose the
// key of epoch e-d. Receivers apply the TESLA *safety condition* -- a packet
// is accepted only if its key cannot have been disclosed yet -- so clock skew
// and path jitter translate directly into drops, and verification is delayed
// by d epochs even on a perfect path. Both effects are what ALPHA's
// interaction-based design avoids; benches quantify them side by side.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "hashchain/chain.hpp"

namespace alpha::baselines {

using crypto::Bytes;
using crypto::ByteView;
using crypto::Digest;

struct TeslaConfig {
  crypto::HashAlgo algo = crypto::HashAlgo::kSha1;
  std::uint64_t epoch_us = 100'000;   // epoch length
  std::size_t disclosure_delay = 2;   // d epochs
  std::size_t chain_length = 1024;    // epochs supported
  std::uint64_t max_skew_us = 10'000; // receiver clock uncertainty
};

class TeslaSender {
 public:
  TeslaSender(TeslaConfig config, ByteView seed, std::uint64_t start_us);

  const Digest& anchor() const noexcept { return anchor_; }

  std::size_t epoch_of(std::uint64_t now_us) const noexcept {
    return now_us <= start_us_
               ? 0
               : static_cast<std::size_t>((now_us - start_us_) /
                                          config_.epoch_us);
  }

  /// Protects one message with the current epoch key; the frame also
  /// discloses the key of epoch (e - d) when available.
  Bytes protect(ByteView message, std::uint64_t now_us) const;

  /// Key-disclosure-only packet: time-based schemes must emit these every
  /// epoch even with no payload (§2.1.1 "reveal hash elements at a regular
  /// interval even when no payload is transferred").
  Bytes heartbeat(std::uint64_t now_us) const;

 private:
  Digest epoch_key(std::size_t epoch) const;

  TeslaConfig config_;
  hashchain::HashChain chain_;
  Digest anchor_;
  std::uint64_t start_us_;
};

class TeslaReceiver {
 public:
  struct Released {
    std::size_t epoch;
    Bytes payload;
  };

  struct Stats {
    std::uint64_t received = 0;
    std::uint64_t unsafe_dropped = 0;  // safety condition violated
    std::uint64_t invalid = 0;         // bad key or MAC
    std::uint64_t released = 0;        // verified and delivered
    std::uint64_t buffered_peak = 0;
  };

  TeslaReceiver(TeslaConfig config, Digest anchor, std::uint64_t start_us);

  /// Feeds one frame; returns any messages whose epoch key became
  /// verifiable through this frame's disclosure.
  std::vector<Released> on_packet(ByteView frame, std::uint64_t now_us);

  const Stats& stats() const noexcept { return stats_; }
  std::size_t buffered() const noexcept { return buffer_count_; }

 private:
  TeslaConfig config_;
  hashchain::ChainVerifier verifier_;
  std::uint64_t start_us_;
  std::map<std::size_t, Digest> verified_keys_;  // epoch -> key
  struct Pending {
    Bytes payload;
    Digest mac;
  };
  std::map<std::size_t, std::vector<Pending>> buffer_;  // by epoch
  std::size_t buffer_count_ = 0;
  Stats stats_;
};

}  // namespace alpha::baselines
