#include "baselines/hmac_e2e.hpp"

namespace alpha::baselines {

Bytes HmacChannel::protect(ByteView message) const {
  const crypto::Digest tag = ctx_.mac(message);
  Bytes frame(message.begin(), message.end());
  crypto::append(frame, tag.view());
  return frame;
}

std::optional<Bytes> HmacChannel::verify(ByteView frame) const {
  const std::size_t tag_size = mac_size();
  if (frame.size() < tag_size) return std::nullopt;
  const ByteView payload = frame.first(frame.size() - tag_size);
  const crypto::Digest tag{frame.subspan(frame.size() - tag_size)};
  if (!ctx_.verify(payload, tag)) return std::nullopt;
  return Bytes(payload.begin(), payload.end());
}

}  // namespace alpha::baselines
