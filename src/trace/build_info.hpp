// Build identity for self-identifying artifacts.
//
// Every durable artifact this repo emits (Prometheus scrapes, flight
// recordings, BENCH_*.json) outlives the binary that produced it; a number
// without its provenance is unattributable. build_info() collects the three
// facts that explain a perf or behaviour delta after the fact: the exact
// source revision (git describe, baked in at configure time), the compiler,
// and which crypto backend the hot path actually ran on this machine
// (SHA-NI/AES-NI vs scalar -- a runtime property, not a build-time one).
#pragma once

#include <string>

#include "trace/metrics.hpp"

namespace alpha::trace {

struct BuildInfo {
  std::string version;   // `git describe --always --dirty` at configure time
  std::string backend;   // "sha-ni+aes-ni", "sha-ni", "aes-ni" or "scalar"
  std::string compiler;  // __VERSION__ of the compiler that built alpha_trace
};

/// Snapshot of this process's build identity. The backend field reflects the
/// runtime switch (crypto::hw_acceleration_enabled) at call time.
BuildInfo build_info();

/// The info as one Prometheus label set: version="..",backend="..",compiler="..".
std::string build_info_labels();

/// Compact one-line form for flight-recording headers and banners:
/// "<version>|<backend>|<compiler>".
std::string build_info_line();

/// Exports the standard info-style gauge:
///   alpha_build_info{version="..",backend="..",compiler=".."} 1
void export_build_info(metrics::Registry& registry);

}  // namespace alpha::trace
