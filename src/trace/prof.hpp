// perf_event_open stage profiler.
//
// BENCH_* regressions name a number, not a stage. The StageProfiler samples
// hardware counters (cycles, instructions, cache misses) around the three
// stages that dominate the hot path -- shard drain, RelayPipeline verify
// batch, crypto chain step -- so a regression is attributable to "relay
// verify got 30% more cache misses", not just "ns/op went up".
//
// Same off-by-default discipline as the trace ring: every hook compiles to
// a thread-local pointer check until a profiler is installed on that thread.
// When installed, most entries still only bump a call counter; one in
// sample_every calls additionally reads the perf counter group before and
// after the stage (two read() syscalls, ~1-2 us), so even the ~276 ns chain
// step can be profiled with bounded overhead.
//
// Linux-only by nature (perf_event_open); elsewhere -- and on locked-down
// kernels where perf_event_paranoid forbids counters -- it degrades to
// calls + wall-clock nanoseconds with hw_available() == false. The fallback
// keeps the alpha_prof_* metric shape identical so dashboards and
// check_flight.py need no platform branches.
#pragma once

#include <cstddef>
#include <cstdint>

#include "trace/metrics.hpp"

namespace alpha::trace {

enum class Stage : std::uint8_t {
  kShardDrain = 0,   // ShardedNode: one shard-queue drain pass
  kRelayVerify = 1,  // RelayPipeline::flush() batched S2 verification
  kChainStep = 2,    // hashchain chain step (one compression-function walk)
};
inline constexpr std::size_t kStageCount = 3;
const char* to_string(Stage stage) noexcept;

class StageProfiler {
 public:
  struct Options {
    /// Read hardware counters on one in N entries per stage (>= 1).
    std::size_t sample_every = 64;
  };

  struct Totals {
    std::uint64_t calls = 0;     // stage entries observed
    std::uint64_t samples = 0;   // entries with a counter read
    std::uint64_t wall_ns = 0;   // wall time of sampled entries
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cache_misses = 0;
  };

  /// In-flight sample scratch (lives on the caller's stack).
  struct Sample {
    std::uint64_t begin[3] = {};
    std::uint64_t t0_ns = 0;
    bool counting = false;
  };

  StageProfiler();
  explicit StageProfiler(Options options);
  ~StageProfiler();
  StageProfiler(const StageProfiler&) = delete;
  StageProfiler& operator=(const StageProfiler&) = delete;

  /// True when the perf counter group opened (Linux, permitted kernel).
  bool hw_available() const noexcept { return group_fd_ >= 0; }

  bool begin(Stage stage, Sample& sample) noexcept;
  void end(Stage stage, Sample& sample) noexcept;

  const Totals& totals(Stage stage) const noexcept {
    return totals_[static_cast<std::size_t>(stage)];
  }

 private:
  bool read_group(std::uint64_t out[3]) noexcept;

  Options options_;
  Totals totals_[kStageCount];
  std::uint64_t entries_[kStageCount] = {};  // sampling phase per stage
  int group_fd_ = -1;      // leader: cycles
  int aux_fd_[2] = {-1, -1};  // instructions, cache misses
};

namespace detail {
// Thread-local like the trace ring: each shard worker installs (or not) its
// own profiler, and the hooks stay free of atomics.
inline thread_local StageProfiler* g_profiler = nullptr;
}  // namespace detail

inline void install_profiler(StageProfiler* p) noexcept {
  detail::g_profiler = p;
}
inline StageProfiler* profiler() noexcept { return detail::g_profiler; }

/// RAII stage hook: a no-op pointer check when no profiler is installed.
class ScopedStage {
 public:
  explicit ScopedStage(Stage stage) noexcept
      : profiler_(detail::g_profiler), stage_(stage) {
    if (profiler_ != nullptr) live_ = profiler_->begin(stage_, sample_);
  }
  ~ScopedStage() {
    if (profiler_ != nullptr && live_) profiler_->end(stage_, sample_);
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  StageProfiler* profiler_;
  StageProfiler::Sample sample_;
  Stage stage_;
  bool live_ = false;
};

/// Exports per-stage counters:
///   alpha_prof_calls{stage=".."}, alpha_prof_samples{stage=".."},
///   alpha_prof_wall_ns{stage=".."}, alpha_prof_cycles{stage=".."},
///   alpha_prof_instructions{stage=".."}, alpha_prof_cache_misses{stage=".."},
///   alpha_prof_hw_available 0/1
void export_prof(const StageProfiler& profiler, metrics::Registry& registry);

}  // namespace alpha::trace
