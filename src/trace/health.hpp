// Association health detection driven by metrics, not packet inspection.
//
// The PR-4 bug class motivating this: a poisoned round retransmitted
// silently until its budget died, visible only as a stalled counter. The
// monitor watches exactly that shape -- rounds whose retry count climbs
// with no progress (wedged-round watchdog), associations whose retransmit
// budget ran out, rekey storms, and trace-ring overflow -- and folds them
// into a small ok -> degraded -> failed state machine surfaced via the
// /healthz telemetry endpoint and kHealthDegraded/kHealthRecovered trace
// events.
//
// Inputs are plain sample structs (not core::NodeSnapshot) so trace/ keeps
// sitting below core/ in the link order; the node glue maps snapshots to
// samples (see tools/alpha_sim.cpp and examples/udp_tunnel.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace alpha::trace {

enum class HealthState : std::uint8_t { kOk = 0, kDegraded = 1, kFailed = 2 };

/// Bitmask of active degradation causes (Event::detail of health events).
enum HealthReason : unsigned {
  kHealthWedgedRound = 1u << 0,      // retries climbing, round not advancing
  kHealthBudgetExhausted = 1u << 1,  // an association exhausted its budget
  kHealthRekeyStorm = 1u << 2,       // sustained rekey rate over threshold
  kHealthEventsLost = 1u << 3,       // trace ring overwrote unread events
};

/// Per-association probe; callers map core::AssocSnapshot fields onto it.
struct AssocHealthSample {
  std::uint32_t assoc_id = 0;
  bool established = false;
  bool failed = false;          // retransmit budget exhausted
  bool round_active = false;
  std::uint32_t round_seq = 0;
  std::uint32_t round_retries = 0;
  std::uint64_t rekeys_started = 0;  // lifetime count
};

class HealthMonitor {
 public:
  struct Options {
    /// Attempts after which an active round counts as wedged (the engines
    /// reset retries to 0 on any A1/A2 progress, so a high count means the
    /// round is burning budget without advancing).
    std::uint32_t wedge_retries = 4;
    /// Sustained rekeys/second above this rate is a storm.
    double rekey_storm_per_sec = 1.0;
    /// Rate-measurement window.
    std::uint64_t window_us = 10'000'000;
  };

  HealthMonitor() : HealthMonitor(Options{}) {}
  explicit HealthMonitor(Options options) : options_(options) {}

  /// Feeds one observation; transitions emit health trace events stamped
  /// with `now_us`. `events_dropped` is the trace-ring overflow counter.
  void observe(const std::vector<AssocHealthSample>& assocs,
               std::uint64_t now_us, std::uint64_t events_dropped = 0);

  HealthState state() const noexcept { return state_; }
  unsigned reasons() const noexcept { return reasons_; }
  /// 200 while ok, 503 once degraded or failed (load-balancer semantics).
  int http_status() const noexcept {
    return state_ == HealthState::kOk ? 200 : 503;
  }
  /// JSON body for /healthz, e.g.
  /// {"status":"degraded","reasons":["wedged_round"],"associations":2,...}.
  std::string healthz_json() const;

  static const char* to_string(HealthState s) noexcept;

 private:
  Options options_;
  HealthState state_ = HealthState::kOk;
  unsigned reasons_ = 0;
  std::size_t associations_ = 0;
  std::size_t established_ = 0;
  std::size_t failed_ = 0;
  std::size_t wedged_ = 0;
  // Rekey-rate anchor: (time, lifetime count) at the window start.
  bool anchored_ = false;
  std::uint64_t anchor_us_ = 0;
  std::uint64_t anchor_rekeys_ = 0;
};

}  // namespace alpha::trace
