#include "trace/trace.hpp"

#include <algorithm>
#include <bit>
#include <iterator>

namespace alpha::trace {

namespace {

struct KindName {
  EventKind kind;
  const char* name;
};
constexpr KindName kKindNames[] = {
    {EventKind::kNone, "none"},
    {EventKind::kPacketSent, "packet_sent"},
    {EventKind::kPacketAccepted, "packet_accepted"},
    {EventKind::kPacketDropped, "packet_dropped"},
    {EventKind::kRetransmit, "retransmit"},
    {EventKind::kHandshakeStart, "handshake_start"},
    {EventKind::kEstablished, "established"},
    {EventKind::kRekeyStart, "rekey_start"},
    {EventKind::kRekeyFinish, "rekey_finish"},
    {EventKind::kAssocFailed, "assoc_failed"},
    {EventKind::kRoundFailed, "round_failed"},
    {EventKind::kDelivered, "delivered"},
    {EventKind::kRelayForwarded, "relay_forwarded"},
    {EventKind::kNetDelivered, "net_delivered"},
    {EventKind::kNetDropped, "net_dropped"},
    {EventKind::kNetDuplicated, "net_duplicated"},
    {EventKind::kTransportSent, "transport_sent"},
    {EventKind::kTransportReceived, "transport_received"},
    {EventKind::kRoundStart, "round_start"},
    {EventKind::kHealthDegraded, "health_degraded"},
    {EventKind::kHealthRecovered, "health_recovered"},
    {EventKind::kAdaptDecision, "adapt_decision"},
};

struct ReasonName {
  DropReason reason;
  const char* name;
};
constexpr ReasonName kReasonNames[] = {
    {DropReason::kNone, "none"},
    {DropReason::kDecodeError, "decode_error"},
    {DropReason::kBadMac, "bad_mac"},
    {DropReason::kStaleChainIndex, "stale_chain_index"},
    {DropReason::kDuplicateS1, "duplicate_s1"},
    {DropReason::kDuplicateS2, "duplicate_s2"},
    {DropReason::kDuplicateHandshake, "duplicate_handshake"},
    {DropReason::kReplay, "replay"},
    {DropReason::kBudgetExhausted, "budget_exhausted"},
    {DropReason::kUnsolicited, "unsolicited"},
    {DropReason::kMalformedHeader, "malformed_header"},
    {DropReason::kDemuxMiss, "demux_miss"},
    {DropReason::kChainExhausted, "chain_exhausted"},
    {DropReason::kStaleRound, "stale_round"},
    {DropReason::kLost, "lost"},
    {DropReason::kLinkDown, "link_down"},
    {DropReason::kOversize, "oversize"},
    {DropReason::kNoLink, "no_link"},
    {DropReason::kChaosCorrupted, "chaos_corrupted"},
};

// wire::PacketType values (kept in sync with wire/packets.hpp; trace stays
// dependency-free so it can sit below net in the link order).
constexpr const char* kPacketTypeNames[] = {"-",  "s1",  "a1", "s2",
                                            "a2", "hs1", "hs2"};

}  // namespace

Ring::Ring(std::size_t capacity) {
  const std::size_t cap = std::bit_ceil(std::max<std::size_t>(capacity, 2));
  buf_.resize(cap);
  mask_ = cap - 1;
}

const char* to_string(EventKind kind) noexcept {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

const char* to_string(DropReason reason) noexcept {
  for (const auto& entry : kReasonNames) {
    if (entry.reason == reason) return entry.name;
  }
  return "unknown";
}

EventKind kind_from_string(const std::string& s) noexcept {
  for (const auto& entry : kKindNames) {
    if (s == entry.name) return entry.kind;
  }
  return EventKind::kNone;
}

DropReason reason_from_string(const std::string& s) noexcept {
  for (const auto& entry : kReasonNames) {
    if (s == entry.name) return entry.reason;
  }
  return DropReason::kNone;
}

const char* packet_type_name(std::uint8_t type) noexcept {
  if (type >= std::size(kPacketTypeNames)) return "-";
  return kPacketTypeNames[type];
}

std::uint8_t packet_type_from_name(const std::string& s) noexcept {
  for (std::size_t i = 1; i < std::size(kPacketTypeNames); ++i) {
    if (s == kPacketTypeNames[i]) return static_cast<std::uint8_t>(i);
  }
  return 0;
}

void write_jsonl(const Ring& ring, std::FILE* out) {
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const Event& e = ring.at(i);
    std::fprintf(out,
                 "{\"t\":%llu,\"origin\":%u,\"kind\":\"%s\",\"assoc\":%u,"
                 "\"seq\":%u,\"type\":\"%s\",\"reason\":\"%s\",\"detail\":%llu",
                 static_cast<unsigned long long>(e.time_us), e.origin,
                 to_string(e.kind), e.assoc_id, e.seq,
                 packet_type_name(e.packet_type), to_string(e.reason),
                 static_cast<unsigned long long>(e.detail));
    if (is_net_kind(e.kind)) {
      std::fprintf(out, ",\"from\":%u,\"to\":%u,\"size\":%zu",
                   net_detail_from(e.detail), net_detail_to(e.detail),
                   net_detail_size(e.detail));
    }
    std::fputs("}\n", out);
  }
}

bool write_jsonl(const Ring& ring, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  write_jsonl(ring, out);
  const bool ok = std::fclose(out) == 0;
  return ok;
}

}  // namespace alpha::trace
