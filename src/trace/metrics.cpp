#include "trace/metrics.hpp"

#include <cstdlib>
#include <limits>

namespace alpha::metrics {

double Histogram::quantile(double q) const noexcept {
  // No samples -> no estimate. 0.0 here would be a fabricated data point
  // (controllers compare quantiles against latency thresholds); NaN fails
  // every such comparison instead.
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate across the intersection of the bucket's value range and
    // [min, max]: the true quantile is a recorded sample, so both ranges
    // bracket it, and their intersection is the tightest bound available.
    // A single-bucket histogram (or one whose target bucket is the overflow
    // bucket, whose nominal range spans half the uint64 domain) therefore
    // stays inside [min, max] by construction instead of by an after-the-
    // fact clamp of a guess made over the full power-of-two span.
    double lower = i == 0 ? 0.0 : static_cast<double>(upper_bound(i - 1)) + 1.0;
    double upper = static_cast<double>(upper_bound(i));
    if (lower < static_cast<double>(min())) lower = static_cast<double>(min());
    if (upper > static_cast<double>(max_)) upper = static_cast<double>(max_);
    if (upper < lower) upper = lower;  // disjoint only via merge edge cases
    const double frac =
        (target - before) / static_cast<double>(buckets_[i]);
    return lower + frac * (upper - lower);
  }
  return static_cast<double>(max_);
}

namespace {

void print_labeled(std::FILE* out, const std::string& name,
                   const std::string& labels, const char* suffix,
                   const std::string& extra_label, unsigned long long value) {
  std::fputs(name.c_str(), out);
  std::fputs(suffix, out);
  if (!labels.empty() || !extra_label.empty()) {
    std::fputc('{', out);
    std::fputs(labels.c_str(), out);
    if (!labels.empty() && !extra_label.empty()) std::fputc(',', out);
    std::fputs(extra_label.c_str(), out);
    std::fputc('}', out);
  }
  std::fprintf(out, " %llu\n", value);
}

}  // namespace

void Registry::write_prometheus(std::FILE* out) const {
  for (const auto& [name, series] : counters_) {
    std::fprintf(out, "# TYPE %s counter\n", name.c_str());
    for (const auto& [labels, value] : series) {
      print_labeled(out, name, labels, "", "",
                    static_cast<unsigned long long>(value));
    }
  }
  for (const auto& [name, series] : histograms_) {
    std::fprintf(out, "# TYPE %s histogram\n", name.c_str());
    for (const auto& [labels, hist] : series) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        if (hist.bucket(i) == 0) continue;  // sparse: skip empty buckets
        cumulative += hist.bucket(i);
        char le[48];
        std::snprintf(le, sizeof(le), "le=\"%llu\"",
                      static_cast<unsigned long long>(
                          Histogram::upper_bound(i)));
        print_labeled(out, name, labels, "_bucket", le,
                      static_cast<unsigned long long>(cumulative));
      }
      print_labeled(out, name, labels, "_bucket", "le=\"+Inf\"",
                    static_cast<unsigned long long>(hist.count()));
      print_labeled(out, name, labels, "_sum", "",
                    static_cast<unsigned long long>(hist.sum()));
      print_labeled(out, name, labels, "_count", "",
                    static_cast<unsigned long long>(hist.count()));
    }
  }
}

std::string Registry::render_prometheus() const {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  if (f == nullptr) return {};
  write_prometheus(f);
  std::fclose(f);
  std::string out(buf, len);
  std::free(buf);
  return out;
}

}  // namespace alpha::metrics
