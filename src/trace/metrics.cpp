#include "trace/metrics.hpp"

namespace alpha::metrics {

namespace {

void print_labeled(std::FILE* out, const std::string& name,
                   const std::string& labels, const char* suffix,
                   const std::string& extra_label, unsigned long long value) {
  std::fputs(name.c_str(), out);
  std::fputs(suffix, out);
  if (!labels.empty() || !extra_label.empty()) {
    std::fputc('{', out);
    std::fputs(labels.c_str(), out);
    if (!labels.empty() && !extra_label.empty()) std::fputc(',', out);
    std::fputs(extra_label.c_str(), out);
    std::fputc('}', out);
  }
  std::fprintf(out, " %llu\n", value);
}

}  // namespace

void Registry::write_prometheus(std::FILE* out) const {
  for (const auto& [name, series] : counters_) {
    std::fprintf(out, "# TYPE %s counter\n", name.c_str());
    for (const auto& [labels, value] : series) {
      print_labeled(out, name, labels, "", "",
                    static_cast<unsigned long long>(value));
    }
  }
  for (const auto& [name, series] : histograms_) {
    std::fprintf(out, "# TYPE %s histogram\n", name.c_str());
    for (const auto& [labels, hist] : series) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        if (hist.bucket(i) == 0) continue;  // sparse: skip empty buckets
        cumulative += hist.bucket(i);
        char le[48];
        std::snprintf(le, sizeof(le), "le=\"%llu\"",
                      static_cast<unsigned long long>(
                          Histogram::upper_bound(i)));
        print_labeled(out, name, labels, "_bucket", le,
                      static_cast<unsigned long long>(cumulative));
      }
      print_labeled(out, name, labels, "_bucket", "le=\"+Inf\"",
                    static_cast<unsigned long long>(hist.count()));
      print_labeled(out, name, labels, "_sum", "",
                    static_cast<unsigned long long>(hist.sum()));
      print_labeled(out, name, labels, "_count", "",
                    static_cast<unsigned long long>(hist.count()));
    }
  }
}

}  // namespace alpha::metrics
