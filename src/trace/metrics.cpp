#include "trace/metrics.hpp"

#include <cstdlib>

namespace alpha::metrics {

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) < target) continue;
    const double lower =
        i == 0 ? 0.0 : static_cast<double>(upper_bound(i - 1)) + 1.0;
    const double upper = static_cast<double>(upper_bound(i));
    const double frac =
        buckets_[i] == 0 ? 0.0
                         : (target - before) / static_cast<double>(buckets_[i]);
    double est = lower + frac * (upper - lower);
    // The true quantile is a recorded sample, so [min, max] always brackets
    // it; clamping can only move the estimate toward the truth.
    if (est < static_cast<double>(min())) est = static_cast<double>(min());
    if (est > static_cast<double>(max_)) est = static_cast<double>(max_);
    return est;
  }
  return static_cast<double>(max_);
}

namespace {

void print_labeled(std::FILE* out, const std::string& name,
                   const std::string& labels, const char* suffix,
                   const std::string& extra_label, unsigned long long value) {
  std::fputs(name.c_str(), out);
  std::fputs(suffix, out);
  if (!labels.empty() || !extra_label.empty()) {
    std::fputc('{', out);
    std::fputs(labels.c_str(), out);
    if (!labels.empty() && !extra_label.empty()) std::fputc(',', out);
    std::fputs(extra_label.c_str(), out);
    std::fputc('}', out);
  }
  std::fprintf(out, " %llu\n", value);
}

}  // namespace

void Registry::write_prometheus(std::FILE* out) const {
  for (const auto& [name, series] : counters_) {
    std::fprintf(out, "# TYPE %s counter\n", name.c_str());
    for (const auto& [labels, value] : series) {
      print_labeled(out, name, labels, "", "",
                    static_cast<unsigned long long>(value));
    }
  }
  for (const auto& [name, series] : histograms_) {
    std::fprintf(out, "# TYPE %s histogram\n", name.c_str());
    for (const auto& [labels, hist] : series) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        if (hist.bucket(i) == 0) continue;  // sparse: skip empty buckets
        cumulative += hist.bucket(i);
        char le[48];
        std::snprintf(le, sizeof(le), "le=\"%llu\"",
                      static_cast<unsigned long long>(
                          Histogram::upper_bound(i)));
        print_labeled(out, name, labels, "_bucket", le,
                      static_cast<unsigned long long>(cumulative));
      }
      print_labeled(out, name, labels, "_bucket", "le=\"+Inf\"",
                    static_cast<unsigned long long>(hist.count()));
      print_labeled(out, name, labels, "_sum", "",
                    static_cast<unsigned long long>(hist.sum()));
      print_labeled(out, name, labels, "_count", "",
                    static_cast<unsigned long long>(hist.count()));
    }
  }
}

std::string Registry::render_prometheus() const {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  if (f == nullptr) return {};
  write_prometheus(f);
  std::fclose(f);
  std::string out(buf, len);
  std::free(buf);
  return out;
}

}  // namespace alpha::metrics
