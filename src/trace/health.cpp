#include "trace/health.hpp"

namespace alpha::trace {

namespace {

void append_reason(std::string& out, bool& first, const char* name) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += name;
  out += '"';
}

}  // namespace

const char* HealthMonitor::to_string(HealthState s) noexcept {
  switch (s) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kFailed:
      return "failed";
  }
  return "unknown";
}

void HealthMonitor::observe(const std::vector<AssocHealthSample>& assocs,
                            std::uint64_t now_us,
                            std::uint64_t events_dropped) {
  unsigned reasons = 0;
  std::uint64_t rekeys_total = 0;
  std::size_t failed = 0;
  std::size_t established = 0;
  std::size_t wedged = 0;
  for (const AssocHealthSample& a : assocs) {
    rekeys_total += a.rekeys_started;
    if (a.established) ++established;
    if (a.failed) {
      ++failed;
      reasons |= kHealthBudgetExhausted;
    }
    if (a.round_active && a.round_retries >= options_.wedge_retries) {
      ++wedged;
      reasons |= kHealthWedgedRound;
    }
  }
  if (events_dropped > 0) reasons |= kHealthEventsLost;

  // Rekey storm: rate over the current window. Requiring at least two
  // rekeys keeps a single legitimate rotation from tripping the alarm on
  // a short window.
  if (!anchored_) {
    anchored_ = true;
    anchor_us_ = now_us;
    anchor_rekeys_ = rekeys_total;
  }
  const std::uint64_t dt_us = now_us - anchor_us_;
  const std::uint64_t dr =
      rekeys_total >= anchor_rekeys_ ? rekeys_total - anchor_rekeys_ : 0;
  if (dt_us > 0 && dr >= 2 &&
      static_cast<double>(dr) >
          options_.rekey_storm_per_sec * (static_cast<double>(dt_us) / 1e6)) {
    reasons |= kHealthRekeyStorm;
  }
  if (dt_us >= options_.window_us) {
    anchor_us_ = now_us;
    anchor_rekeys_ = rekeys_total;
  }

  HealthState next = reasons == 0 ? HealthState::kOk : HealthState::kDegraded;
  // Every association dead means the node serves nothing: failed, not
  // merely degraded.
  if (!assocs.empty() && failed == assocs.size()) next = HealthState::kFailed;

  associations_ = assocs.size();
  established_ = established;
  failed_ = failed;
  wedged_ = wedged;

  if (next != state_) {
    Event e;
    e.time_us = now_us;
    e.detail = reasons;
    e.kind = next == HealthState::kOk ? EventKind::kHealthRecovered
                                      : EventKind::kHealthDegraded;
    emit(e);
  }
  state_ = next;
  reasons_ = reasons;
}

std::string HealthMonitor::healthz_json() const {
  std::string out = "{\"status\":\"";
  out += to_string(state_);
  out += "\",\"reasons\":[";
  bool first = true;
  if (reasons_ & kHealthWedgedRound) append_reason(out, first, "wedged_round");
  if (reasons_ & kHealthBudgetExhausted) {
    append_reason(out, first, "budget_exhausted");
  }
  if (reasons_ & kHealthRekeyStorm) append_reason(out, first, "rekey_storm");
  if (reasons_ & kHealthEventsLost) append_reason(out, first, "events_lost");
  out += "],\"associations\":" + std::to_string(associations_);
  out += ",\"established\":" + std::to_string(established_);
  out += ",\"failed\":" + std::to_string(failed_);
  out += ",\"wedged\":" + std::to_string(wedged_);
  out += "}";
  return out;
}

}  // namespace alpha::trace
