#include "trace/telemetry.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace alpha::trace {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string http_response(int status, const char* content_type,
                          const std::string& body) {
  const char* text = status == 200   ? "OK"
                     : status == 404 ? "Not Found"
                     : status == 503 ? "Service Unavailable"
                                     : "Error";
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + text + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Extracts the request path out of "GET /path HTTP/1.1..."; empty on
/// anything that is not a GET.
std::string request_path(const std::string& request) {
  if (request.rfind("GET ", 0) != 0) return {};
  const std::size_t start = 4;
  const std::size_t end = request.find(' ', start);
  if (end == std::string::npos) return {};
  return request.substr(start, end - start);
}

}  // namespace

TelemetryServer::TelemetryServer(Options options, MetricsFn metrics,
                                 HealthFn health)
    : options_(options), metrics_(std::move(metrics)),
      health_(std::move(health)) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  conns_.reserve(kMaxConnections);
}

TelemetryServer::~TelemetryServer() {
  for (Conn& conn : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TelemetryServer::accept_pending() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or error: nothing (more) pending
    if (conns_.size() >= kMaxConnections || !set_nonblocking(fd)) {
      ::close(fd);  // bounded: shed load instead of growing
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conns_.push_back(std::move(conn));
  }
}

void TelemetryServer::respond(Conn& conn) {
  const std::string path = request_path(conn.in);
  if (path == "/metrics") {
    const std::string body = metrics_ ? metrics_() : std::string();
    conn.out = http_response(200, "text/plain; version=0.0.4", body);
  } else if (path == "/healthz") {
    std::pair<int, std::string> health =
        health_ ? health_() : std::pair<int, std::string>{200, "{}"};
    conn.out = http_response(health.first, "application/json", health.second);
  } else {
    conn.out = http_response(404, "text/plain", "not found\n");
  }
  conn.responding = true;
}

bool TelemetryServer::service(Conn& conn) {
  if (!conn.responding) {
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        if (conn.in.size() > kMaxRequestBytes) {
          close_conn(conn);  // request too large: drop, stay bounded
          return false;
        }
        if (conn.in.find("\r\n\r\n") != std::string::npos ||
            conn.in.find("\n\n") != std::string::npos) {
          respond(conn);
          break;
        }
        continue;
      }
      if (n == 0) {  // peer closed before completing a request
        close_conn(conn);
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      close_conn(conn);
      return false;
    }
  }
  while (conn.sent < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.sent,
                             conn.out.size() - conn.sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn.sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    close_conn(conn);
    return false;
  }
  close_conn(conn);
  return true;  // full response delivered
}

void TelemetryServer::close_conn(Conn& conn) {
  if (conn.fd >= 0) ::close(conn.fd);
  conn.fd = -1;
}

std::size_t TelemetryServer::poll(int timeout_ms) {
  if (listen_fd_ < 0) return 0;
  std::size_t answered = 0;
  int wait = timeout_ms;
  for (;;) {
    pollfd fds[1 + kMaxConnections];
    Conn* polled[kMaxConnections];
    fds[0] = pollfd{listen_fd_, POLLIN, 0};
    std::size_t npolled = 0;
    for (Conn& conn : conns_) {
      if (conn.fd < 0) continue;
      polled[npolled] = &conn;
      fds[1 + npolled] = pollfd{
          conn.fd, static_cast<short>(conn.responding ? POLLOUT : POLLIN), 0};
      ++npolled;
    }
    const int ready =
        ::poll(fds, static_cast<nfds_t>(1 + npolled), wait);
    wait = 0;  // only the first round honors the caller's timeout
    if (ready <= 0) break;
    // conns_ was reserve()d at kMaxConnections and never exceeds it, so
    // accept_pending()'s push_back cannot reallocate under `polled`.
    if ((fds[0].revents & POLLIN) != 0) accept_pending();
    for (std::size_t i = 0; i < npolled; ++i) {
      const short revents = fds[1 + i].revents;
      if ((revents & (POLLIN | POLLOUT | POLLHUP | POLLERR)) != 0) {
        if (service(*polled[i])) ++answered;
      }
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const Conn& c) { return c.fd < 0; }),
                 conns_.end());
  }
  return answered;
}

}  // namespace alpha::trace
