// Typed protocol event tracing.
//
// Always compiled, off by default: every hook in the engines funnels through
// emit(), which is a single pointer check until a Ring is installed. Events
// are fixed-size trivially-copyable PODs recorded into a preallocated
// power-of-two ring buffer (overwrite-oldest), so enabling tracing never
// allocates on the per-packet hot path and the PR 3 zero-allocation
// guarantees hold with tracing on.
//
// The taxonomy makes every packet's fate attributable: the network layer
// emits exactly one terminal event per send() (kNetDelivered or kNetDropped,
// plus one kNetDuplicated per injected extra copy), and the protocol layer
// emits accept/drop events with a DropReason explaining why a frame died.
//
// Engines without a clock parameter (VerifierEngine, RelayEngine) stamp
// events from a thread-local context set by the node runtime at its entry
// points (ScopedContext); the simulated network stamps its own events with
// simulator time. The sink itself is thread-local too: every thread traces
// into its own ring (or none), so the sharded multi-core runtime needs no
// synchronization on the emit path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

namespace alpha::trace {

enum class EventKind : std::uint8_t {
  kNone = 0,
  // Protocol layer (hosts, engines, relays).
  kPacketSent = 1,       // detail: batch size / resend flag, site-specific
  kPacketAccepted = 2,   // packet passed every check at its consumer
  kPacketDropped = 3,    // packet died; reason says why
  kRetransmit = 4,       // detail = attempt count so far
  kHandshakeStart = 5,   // initiator emitted its first HS1
  kEstablished = 6,      // association (re-)established
  kRekeyStart = 7,       // chain rotation handshake began
  kRekeyFinish = 8,      // fresh chains active
  kAssocFailed = 9,      // retransmit budget exhausted (reason set)
  kRoundFailed = 10,     // signer round abandoned (reason set, detail = msgs)
  kDelivered = 11,       // verifier delivered an authenticated message
  kRelayForwarded = 12,  // relay vetted and forwarded a frame
  // Network layer (simulated links): terminal fate of each send().
  kNetDelivered = 13,    // reason kChaosCorrupted when bits were flipped
  kNetDropped = 14,      // reason kLost/kLinkDown/kOversize/kNoLink
  kNetDuplicated = 15,   // extra injected copy (second delivery)
  // Real-socket transport (no network model underneath).
  kTransportSent = 16,
  kTransportReceived = 17,
  // Span layer (PR 5).
  kRoundStart = 18,       // signer opened a round; detail packs queue/crypto
  // Health detector state transitions (detail = HealthReason bitmask).
  kHealthDegraded = 19,
  kHealthRecovered = 20,
  // Adaptive controller evaluated its policy (one event per evaluation,
  // switches and holds alike, so the decision log is replayable post-hoc).
  // detail packs the input snapshot + verdict: see pack_adapt_detail.
  kAdaptDecision = 21,
};

enum class DropReason : std::uint8_t {
  kNone = 0,
  // Protocol-layer reasons.
  kDecodeError = 1,         // full wire decode failed (corruption/garbage)
  kBadMac = 2,              // MAC / Merkle / pre-ack / signature mismatch
  kStaleChainIndex = 3,     // chain element not acceptable at that index
  kDuplicateS1 = 4,         // S1 retransmission answered from cache
  kDuplicateS2 = 5,         // S2 for an already-delivered message
  kDuplicateHandshake = 6,  // handshake with the current (already seen) seq
  kReplay = 7,              // handshake counter went backwards
  kBudgetExhausted = 8,     // max_retries spent
  kUnsolicited = 9,         // no context to verify against (flood filter)
  kMalformedHeader = 10,    // assoc-id peek failed at the node demux
  kDemuxMiss = 11,          // no association, relay or accept rule matched
  kChainExhausted = 12,     // hash chain cannot cover another round
  kStaleRound = 13,         // late packet for a finished/unknown round
  // Network-layer fates.
  kLost = 14,               // random loss (Bernoulli or burst)
  kLinkDown = 15,           // swallowed by a partition
  kOversize = 16,           // exceeded the MTU
  kNoLink = 17,             // no such link
  kChaosCorrupted = 18,     // delivered, but with bits flipped in flight
};

/// Number of DropReason values (dense from 0); sized for per-reason counter
/// arrays like core::RelayStats::dropped_by_reason.
inline constexpr std::size_t kDropReasonCount =
    static_cast<std::size_t>(DropReason::kChaosCorrupted) + 1;

/// One traced event. 32 bytes, trivially copyable: record() is a masked
/// index increment plus a struct copy.
struct Event {
  std::uint64_t time_us = 0;
  std::uint64_t detail = 0;       // kind-specific payload (see taxonomy)
  std::uint32_t assoc_id = 0;
  std::uint32_t seq = 0;
  EventKind kind = EventKind::kNone;
  DropReason reason = DropReason::kNone;
  std::uint8_t packet_type = 0;   // wire::PacketType value, 0 = n/a
  std::uint8_t origin = 0;        // node id (set via ScopedContext)
  std::uint32_t pad_ = 0;
};
static_assert(std::is_trivially_copyable_v<Event>, "hot-path POD");
static_assert(sizeof(Event) == 32, "keep the record cheap and cache-friendly");

/// Fixed-capacity overwrite-oldest event buffer. Capacity rounds up to a
/// power of two; all storage is allocated once in the constructor.
class Ring {
 public:
  explicit Ring(std::size_t capacity);

  void record(const Event& e) noexcept {
    buf_[static_cast<std::size_t>(head_ & mask_)] = e;
    ++head_;
  }

  std::size_t capacity() const noexcept { return buf_.size(); }
  /// Events ever recorded (monotonic; exceeds capacity() after wrap).
  std::uint64_t total() const noexcept { return head_; }
  /// Events currently retained.
  std::size_t size() const noexcept {
    return head_ < buf_.size() ? static_cast<std::size_t>(head_) : buf_.size();
  }
  /// i-th retained event, oldest first (0 <= i < size()).
  const Event& at(std::size_t i) const noexcept {
    const Event& e = buf_[static_cast<std::size_t>((first_index() + i) & mask_)];
    return e;
  }
  /// Absolute index of the oldest retained event (== total() - size()).
  std::uint64_t first_index() const noexcept {
    return head_ < buf_.size() ? 0 : head_ - buf_.size();
  }
  /// Event by absolute index; valid for first_index() <= i < total().
  /// Lets consumers keep a cursor across ring wraps (see spans::SpanBuilder).
  const Event& at_absolute(std::uint64_t i) const noexcept {
    return buf_[static_cast<std::size_t>(i & mask_)];
  }
  /// Events lost to ring wrap (monotonic; 0 until the first overwrite).
  /// Derived, so the hot-path record() stays an increment + struct copy.
  std::uint64_t dropped() const noexcept {
    return head_ > buf_.size() ? head_ - buf_.size() : 0;
  }
  /// Bumped on every clear(). Cursor-based consumers (SpanBuilder, the
  /// flight recorder) compare generations to tell "ring was cleared and
  /// refilled past my cursor" apart from "new events arrived": absolute
  /// indices are only comparable within one generation.
  std::uint64_t generation() const noexcept { return generation_; }
  void clear() noexcept {
    head_ = 0;
    ++generation_;
  }

 private:
  std::vector<Event> buf_;
  std::uint64_t mask_;
  std::uint64_t head_ = 0;
  std::uint64_t generation_ = 0;
};

namespace detail {
struct Context {
  std::uint8_t origin = 0;
  std::uint64_t time_us = 0;
};
// Thread-local by design: the sharded runtime (core/sharded_node.hpp) runs
// one shard per worker thread, and each worker installs its own ring at
// thread start -- emit() stays a plain pointer check with no atomics, and
// two shards never contend on (or race over) a shared sink. Single-threaded
// programs see no difference: the main thread installs one ring as before.
inline thread_local Ring* g_ring = nullptr;
inline thread_local Context g_ctx{};
}  // namespace detail

/// Installs the calling thread's sink (nullptr disables tracing on it).
inline void install(Ring* ring) noexcept { detail::g_ring = ring; }
inline Ring* sink() noexcept { return detail::g_ring; }
inline bool enabled() noexcept { return detail::g_ring != nullptr; }

/// Time stamped by the innermost ScopedContext on this thread (the node
/// runtime's entry-point timestamp). 0 outside any scoped entry point.
inline std::uint64_t current_time_us() noexcept {
  return detail::g_ctx.time_us;
}

/// Stamps origin + time for every emit() in scope. The node runtime opens
/// one at each entry point (inbound frame, wakeup, submit, start) so engines
/// without a now_us parameter still produce correctly-timed events.
class ScopedContext {
 public:
  ScopedContext(std::uint8_t origin, std::uint64_t time_us) noexcept
      : prev_(detail::g_ctx) {
    detail::g_ctx = detail::Context{origin, time_us};
  }
  ~ScopedContext() { detail::g_ctx = prev_; }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  detail::Context prev_;
};

/// Records a fully-built event (network layer stamps its own time/origin).
inline void emit(const Event& e) noexcept {
  if (Ring* ring = detail::g_ring) ring->record(e);
}

/// Records a protocol-layer event stamped from the ambient ScopedContext.
inline void emit(EventKind kind, std::uint32_t assoc_id, std::uint32_t seq,
                 std::uint8_t packet_type,
                 DropReason reason = DropReason::kNone,
                 std::uint64_t detail_value = 0) noexcept {
  Ring* ring = detail::g_ring;
  if (ring == nullptr) return;
  Event e;
  e.time_us = detail::g_ctx.time_us;
  e.detail = detail_value;
  e.assoc_id = assoc_id;
  e.seq = seq;
  e.kind = kind;
  e.reason = reason;
  e.packet_type = packet_type;
  e.origin = detail::g_ctx.origin;
  ring->record(e);
}

/// Packs (from, to, size) into Event::detail for network-layer events:
/// from in bits 40..63, to in bits 24..39, size (clamped) in bits 0..23.
constexpr std::uint64_t pack_net_detail(std::uint32_t from, std::uint32_t to,
                                        std::size_t size) noexcept {
  return (static_cast<std::uint64_t>(from & 0xFFFFFFu) << 40) |
         (static_cast<std::uint64_t>(to & 0xFFFFu) << 24) |
         static_cast<std::uint64_t>(size > 0xFFFFFFu ? 0xFFFFFFu : size);
}
constexpr std::uint32_t net_detail_from(std::uint64_t detail) noexcept {
  return static_cast<std::uint32_t>(detail >> 40);
}
constexpr std::uint32_t net_detail_to(std::uint64_t detail) noexcept {
  return static_cast<std::uint32_t>((detail >> 24) & 0xFFFFu);
}
constexpr std::size_t net_detail_size(std::uint64_t detail) noexcept {
  return static_cast<std::size_t>(detail & 0xFFFFFFu);
}

constexpr bool is_net_kind(EventKind kind) noexcept {
  return kind == EventKind::kNetDelivered || kind == EventKind::kNetDropped ||
         kind == EventKind::kNetDuplicated;
}

/// Packs (queue wait, crypto time) into Event::detail for kRoundStart:
/// queueing delay in µs (bits 32..63) and signer crypto wall time in ns
/// (bits 0..31), both saturating. Crypto time is only measured when tracing
/// is enabled, so the untraced hot path never touches a real clock.
constexpr std::uint64_t pack_round_detail(std::uint64_t queue_us,
                                          std::uint64_t crypto_ns) noexcept {
  if (queue_us > 0xFFFFFFFFull) queue_us = 0xFFFFFFFFull;
  if (crypto_ns > 0xFFFFFFFFull) crypto_ns = 0xFFFFFFFFull;
  return (queue_us << 32) | crypto_ns;
}
constexpr std::uint64_t round_detail_queue_us(std::uint64_t detail) noexcept {
  return detail >> 32;
}
constexpr std::uint64_t round_detail_crypto_ns(std::uint64_t detail) noexcept {
  return detail & 0xFFFFFFFFull;
}

/// Packs an adaptive-controller decision into Event::detail for
/// kAdaptDecision: the (mode, batch) transition plus the signal snapshot
/// that justified it, so `alpha_inspect --adapt` can explain the policy
/// from the trace alone. Layout (low to high):
///   bits  0..2   target mode (wire::Mode value, 1..4)
///   bits  3..15  target batch size (13 bits, saturating)
///   bits 16..18  previous mode
///   bits 19..31  previous batch size
///   bits 32..39  decision reason (core::AdaptReason value)
///   bits 40..49  observed loss rate in per-mille (0..1000, saturating)
///   bits 50..57  retransmit-budget pressure in percent (0..100)
///   bits 58..59  health state (trace::HealthState value)
constexpr std::uint64_t pack_adapt_detail(std::uint8_t to_mode,
                                          std::uint32_t to_batch,
                                          std::uint8_t from_mode,
                                          std::uint32_t from_batch,
                                          std::uint8_t reason,
                                          std::uint32_t loss_permille,
                                          std::uint32_t budget_percent,
                                          std::uint8_t health) noexcept {
  if (to_batch > 0x1FFFu) to_batch = 0x1FFFu;
  if (from_batch > 0x1FFFu) from_batch = 0x1FFFu;
  if (loss_permille > 1000u) loss_permille = 1000u;
  if (budget_percent > 100u) budget_percent = 100u;
  return (static_cast<std::uint64_t>(to_mode & 0x7u)) |
         (static_cast<std::uint64_t>(to_batch) << 3) |
         (static_cast<std::uint64_t>(from_mode & 0x7u) << 16) |
         (static_cast<std::uint64_t>(from_batch) << 19) |
         (static_cast<std::uint64_t>(reason) << 32) |
         (static_cast<std::uint64_t>(loss_permille) << 40) |
         (static_cast<std::uint64_t>(budget_percent) << 50) |
         (static_cast<std::uint64_t>(health & 0x3u) << 58);
}
constexpr std::uint8_t adapt_detail_to_mode(std::uint64_t d) noexcept {
  return static_cast<std::uint8_t>(d & 0x7u);
}
constexpr std::uint32_t adapt_detail_to_batch(std::uint64_t d) noexcept {
  return static_cast<std::uint32_t>((d >> 3) & 0x1FFFu);
}
constexpr std::uint8_t adapt_detail_from_mode(std::uint64_t d) noexcept {
  return static_cast<std::uint8_t>((d >> 16) & 0x7u);
}
constexpr std::uint32_t adapt_detail_from_batch(std::uint64_t d) noexcept {
  return static_cast<std::uint32_t>((d >> 19) & 0x1FFFu);
}
constexpr std::uint8_t adapt_detail_reason(std::uint64_t d) noexcept {
  return static_cast<std::uint8_t>((d >> 32) & 0xFFu);
}
constexpr std::uint32_t adapt_detail_loss_permille(std::uint64_t d) noexcept {
  return static_cast<std::uint32_t>((d >> 40) & 0x3FFu);
}
constexpr std::uint32_t adapt_detail_budget_percent(std::uint64_t d) noexcept {
  return static_cast<std::uint32_t>((d >> 50) & 0xFFu);
}
constexpr std::uint8_t adapt_detail_health(std::uint64_t d) noexcept {
  return static_cast<std::uint8_t>((d >> 58) & 0x3u);
}

const char* to_string(EventKind kind) noexcept;
const char* to_string(DropReason reason) noexcept;
/// Inverse lookups for trace decoding; kNone on unknown strings.
EventKind kind_from_string(const std::string& s) noexcept;
DropReason reason_from_string(const std::string& s) noexcept;
/// Wire packet-type label ("hs1", "s1", ...); "-" for 0/unknown.
const char* packet_type_name(std::uint8_t type) noexcept;
/// Inverse of packet_type_name; 0 for "-" or unknown labels.
std::uint8_t packet_type_from_name(const std::string& s) noexcept;

/// Writes every retained event as one JSON object per line (JSONL).
/// Network-kind events additionally decode detail into from/to/size fields.
void write_jsonl(const Ring& ring, std::FILE* out);
/// Convenience: opens `path`, writes, closes. Returns false on I/O error.
bool write_jsonl(const Ring& ring, const std::string& path);

}  // namespace alpha::trace
