// Minimal live telemetry endpoint: /metrics and /healthz over HTTP.
//
// Dependency-free by design (plain POSIX sockets, no HTTP library) and
// single-threaded like everything else in this codebase: the server never
// spawns a thread or touches the registry on its own. The owner calls
// poll() from its existing event loop; each call accepts pending
// connections, reads requests, and writes responses, all on non-blocking
// sockets, so a stalled scraper can never block the protocol.
//
// Allocation-bounded: at most kMaxConnections live at once, request reads
// are capped at kMaxRequestBytes, and response bodies come from the
// caller's render callbacks (invoked once per request).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace alpha::trace {

class TelemetryServer {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
    std::uint16_t port = 0;
  };

  /// Body of GET /metrics (Prometheus text format; always status 200).
  using MetricsFn = std::function<std::string()>;
  /// (status, body) of GET /healthz -- e.g. {200, "{\"status\":\"ok\"}"}.
  using HealthFn = std::function<std::pair<int, std::string>()>;

  TelemetryServer(Options options, MetricsFn metrics, HealthFn health);
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// False when the listening socket could not be set up (port in use).
  bool ok() const noexcept { return listen_fd_ >= 0; }
  /// The bound port (resolves ephemeral port 0 requests).
  std::uint16_t port() const noexcept { return port_; }

  /// Services the socket for up to `timeout_ms` (0 = just drain what is
  /// ready). Returns the number of requests answered.
  std::size_t poll(int timeout_ms = 0);

  static constexpr std::size_t kMaxConnections = 8;
  static constexpr std::size_t kMaxRequestBytes = 4096;

 private:
  struct Conn {
    int fd = -1;
    std::string in;      // request bytes until the blank line
    std::string out;     // rendered response
    std::size_t sent = 0;
    bool responding = false;
  };

  void accept_pending();
  bool service(Conn& conn);  // returns true when a request was answered
  void respond(Conn& conn);
  void close_conn(Conn& conn);

  Options options_;
  MetricsFn metrics_;
  HealthFn health_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<Conn> conns_;
};

}  // namespace alpha::trace
