#include "trace/flight.hpp"

#include "trace/build_info.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <ctime>
#include <dirent.h>
#include <exception>
#include <map>

namespace alpha::trace {

// ---------------------------------------------------------------------------
// Checksums.

namespace {

// CRC-32 (reflected, poly 0xEDB88320) == Python zlib.crc32; table built on
// first use so the library carries no 1 KiB static initializer.
const std::uint32_t* crc32_table() noexcept {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed) noexcept {
  const std::uint32_t* table = crc32_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

constexpr std::size_t kHeaderBytes = sizeof(FlightHeader);
constexpr std::size_t kEventBytes = sizeof(Event);

std::uint64_t wall_now_us() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ull;
}

/// CRC over the header with the progress fields zeroed: a torn update of
/// event_count or the metrics fields can never invalidate the identity.
std::uint32_t header_identity_crc(const FlightHeader& h) noexcept {
  FlightHeader canon = h;
  canon.crash_signal = 0;
  canon.event_count = 0;
  canon.events_lost = 0;
  canon.finalized = 0;
  canon.metrics_crc = 0;
  canon.metrics_offset = 0;
  canon.metrics_bytes = 0;
  canon.identity_crc = 0;
  return crc32(&canon, sizeof(canon));
}

bool make_dirs(const std::string& path) noexcept {
  if (path.empty()) return false;
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i != path.size() && path[i] != '/') continue;
    const std::string prefix = path.substr(0, i);
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  return true;
}

bool event_valid(const Event& e) noexcept {
  const auto kind = static_cast<std::uint8_t>(e.kind);
  if (kind == 0 || kind > static_cast<std::uint8_t>(EventKind::kAdaptDecision))
    return false;
  if (static_cast<std::size_t>(e.reason) >= kDropReasonCount) return false;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer.

FlightRecorder::FlightRecorder(FlightOptions options, const Ring* ring)
    : options_(std::move(options)), ring_(ring) {
  if (ring_ == nullptr) {
    error_ = "flight: null ring";
    return;
  }
  if (options_.segment_bytes < kHeaderBytes + 64 * kEventBytes) {
    options_.segment_bytes = kHeaderBytes + 64 * kEventBytes;
  }
  if (options_.wall_epoch_us == 0) options_.wall_epoch_us = wall_now_us();
  if (!make_dirs(options_.dir)) {
    error_ = "flight: cannot create directory " + options_.dir;
    return;
  }
  ring_generation_ = ring_->generation();
  cursor_ = ring_->first_index();
  lost_events_ = ring_->dropped();
  if (!open_segment()) return;
  register_crash_recorder(this);
}

FlightRecorder::~FlightRecorder() {
  finalize();
  unregister_crash_recorder(this);
}

bool FlightRecorder::open_segment() {
  char name[64];
  std::snprintf(name, sizeof(name), "flight-n%u-s%u-%05u.alfr",
                options_.node_id, options_.shard_index, next_segment_);
  segment_path_ = options_.dir + "/" + name;
  fd_ = ::open(segment_path_.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
  if (fd_ < 0) {
    error_ = "flight: cannot open " + segment_path_;
    return false;
  }
  map_len_ = options_.segment_bytes;
  if (::ftruncate(fd_, static_cast<off_t>(map_len_)) != 0) {
    error_ = "flight: ftruncate failed for " + segment_path_;
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  void* map = ::mmap(nullptr, map_len_, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd_, 0);
  if (map == MAP_FAILED) {
    error_ = "flight: mmap failed for " + segment_path_;
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  map_ = static_cast<std::uint8_t*>(map);
  header_ = reinterpret_cast<FlightHeader*>(map_);
  slots_ = reinterpret_cast<Event*>(map_ + kHeaderBytes);
  capacity_ = (map_len_ - kHeaderBytes) / kEventBytes;
  used_ = 0;

  FlightHeader h;
  h.header_bytes = static_cast<std::uint16_t>(kHeaderBytes);
  h.node_id = options_.node_id;
  h.shard_index = options_.shard_index;
  h.segment_index = next_segment_;
  h.wall_epoch_us = options_.wall_epoch_us;
  h.clock_origin_us = options_.clock_origin_us;
  h.config_digest = options_.config_digest;
  h.event_capacity = capacity_;
  h.first_event_index = cursor_;
  h.events_lost = lost_events_;
  // Build info is filled by callers via the metrics snapshot too, but the
  // header copy keeps a recording self-identifying even with no registry.
  const std::string info = build_info_line();
  std::memcpy(h.build_info, info.data(),
              std::min(info.size(), sizeof(h.build_info) - 1));
  h.identity_crc = header_identity_crc(h);
  *header_ = h;
  ++next_segment_;
  since_msync_ = 0;
  return true;
}

void FlightRecorder::write_metrics_blob() {
  if (!options_.metrics_snapshot || header_ == nullptr) return;
  const std::string text = options_.metrics_snapshot();
  if (text.empty()) return;
  const std::size_t offset = kHeaderBytes + used_ * kEventBytes;
  if (offset >= map_len_) return;  // segment is all events; no slack
  const std::size_t avail = map_len_ - offset;
  const std::size_t n = std::min(text.size(), avail);
  std::memcpy(map_ + offset, text.data(), n);
  header_->metrics_offset = offset;
  header_->metrics_bytes = n;
  header_->metrics_crc = crc32(text.data(), n);
}

void FlightRecorder::close_segment(bool mark_finalized) {
  if (map_ == nullptr) return;
  write_metrics_blob();
  header_->event_count = used_;
  header_->events_lost = lost_events_;
  if (mark_finalized) header_->finalized = 1;
  ::msync(map_, map_len_, mark_finalized ? MS_SYNC : MS_ASYNC);
  ::munmap(map_, map_len_);
  map_ = nullptr;
  header_ = nullptr;
  slots_ = nullptr;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::size_t FlightRecorder::capture(std::uint64_t upto,
                                    bool allow_rotate) noexcept {
  if (map_ == nullptr || ring_ == nullptr) return 0;
  // Absolute cursors are only comparable within one ring generation (the
  // recorder itself clears the ring in some deployments after a spill).
  if (ring_->generation() != ring_generation_) {
    ring_generation_ = ring_->generation();
    // Restart at the new generation's index 0: the clamp below then books
    // any prefix the ring already overwrote into events_lost.
    cursor_ = 0;
  }
  std::uint64_t start = cursor_;
  const std::uint64_t first = ring_->first_index();
  if (start < first) {
    lost_events_ += first - start;
    header_->events_lost = lost_events_;
    start = first;
  }
  std::size_t captured = 0;
  for (std::uint64_t i = start; i < upto; ++i) {
    if (used_ == capacity_) {
      if (!allow_rotate) break;  // signal context: keep what fits
      close_segment(false);
      if (!open_segment()) break;
    }
    slots_[used_++] = ring_->at_absolute(i);
    ++captured;
    cursor_ = i + 1;
  }
  if (header_ != nullptr) header_->event_count = used_;
  total_events_ += captured;
  return captured;
}

std::size_t FlightRecorder::drain() {
  if (!ok() || finalized_ || map_ == nullptr) return 0;
  const std::size_t n = capture(ring_->total(), /*allow_rotate=*/true);
  since_msync_ += n;
  if (since_msync_ >= options_.msync_every_events && map_ != nullptr) {
    ::msync(map_, map_len_, MS_ASYNC);
    since_msync_ = 0;
  }
  return n;
}

void FlightRecorder::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (map_ == nullptr) return;
  capture(ring_ != nullptr ? ring_->total() : 0, /*allow_rotate=*/true);
  // A perfectly full final segment leaves no tail slack for the shutdown
  // metrics snapshot; spill it into one extra event-free segment rather
  // than silently dropping it.
  if (options_.metrics_snapshot && used_ == capacity_) {
    close_segment(/*mark_finalized=*/true);
    if (!open_segment()) return;
  }
  close_segment(/*mark_finalized=*/true);
}

void FlightRecorder::crash_flush(int signo) noexcept {
  if (map_ == nullptr || finalized_) return;
  capture(ring_ != nullptr ? ring_->total() : 0, /*allow_rotate=*/false);
  header_->crash_signal = static_cast<std::uint32_t>(signo);
  header_->event_count = used_;
  ::msync(map_, map_len_, MS_ASYNC);
}

// ---------------------------------------------------------------------------
// Last-gasp flush plumbing. A bounded lock-free registry of live recorders;
// fatal-signal handlers and the std::terminate hook walk it. Everything on
// this path is async-signal-safe: atomic loads, struct copies into an
// existing mapping, msync.

namespace {

constexpr std::size_t kMaxCrashRecorders = 64;
std::atomic<FlightRecorder*> g_crash_recorders[kMaxCrashRecorders];

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT};
struct sigaction g_prev_actions[NSIG];
std::atomic<bool> g_handlers_installed{false};
std::terminate_handler g_prev_terminate = nullptr;

void fatal_signal_handler(int signo) {
  crash_flush_all(signo);
  // Chain to whatever was installed before us (sanitizer report printers),
  // else restore the default disposition and re-raise so the exit status
  // still says "killed by signal" and core dumps still happen.
  struct sigaction prev {};
  if (signo > 0 && signo < NSIG) prev = g_prev_actions[signo];
  if ((prev.sa_flags & SA_SIGINFO) == 0 && prev.sa_handler != SIG_DFL &&
      prev.sa_handler != SIG_IGN && prev.sa_handler != nullptr) {
    prev.sa_handler(signo);
    return;
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

[[noreturn]] void flushing_terminate_handler() {
  crash_flush_all(SIGABRT);
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

bool register_crash_recorder(FlightRecorder* recorder) noexcept {
  for (std::size_t i = 0; i < kMaxCrashRecorders; ++i) {
    FlightRecorder* expected = nullptr;
    if (g_crash_recorders[i].compare_exchange_strong(
            expected, recorder, std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

void unregister_crash_recorder(FlightRecorder* recorder) noexcept {
  for (std::size_t i = 0; i < kMaxCrashRecorders; ++i) {
    FlightRecorder* expected = recorder;
    if (g_crash_recorders[i].compare_exchange_strong(
            expected, nullptr, std::memory_order_acq_rel)) {
      return;
    }
  }
}

void crash_flush_all(int signo) noexcept {
  for (std::size_t i = 0; i < kMaxCrashRecorders; ++i) {
    FlightRecorder* r = g_crash_recorders[i].load(std::memory_order_acquire);
    if (r != nullptr) r->crash_flush(signo);
  }
}

bool install_crash_handlers() noexcept {
  bool expected = false;
  if (!g_handlers_installed.compare_exchange_strong(expected, true)) {
    return true;  // already installed
  }
  struct sigaction sa{};
  sa.sa_handler = fatal_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_NODEFER;
  bool ok = true;
  for (int signo : kFatalSignals) {
    if (::sigaction(signo, &sa, &g_prev_actions[signo]) != 0) ok = false;
  }
  g_prev_terminate = std::set_terminate(flushing_terminate_handler);
  return ok;
}

// ---------------------------------------------------------------------------
// Reader.

namespace {

bool pread_exact(int fd, void* buf, std::size_t len, off_t offset) noexcept {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n =
        ::pread(fd, p + done, len - done, offset + static_cast<off_t>(done));
    if (n <= 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool read_flight_segment(const std::string& path, FlightSegment& out,
                         std::string* err) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (err != nullptr) *err = "flight: cannot open " + path;
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < kHeaderBytes) {
    ::close(fd);
    if (err != nullptr) *err = "flight: short file " + path;
    return false;
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);

  FlightHeader h{};
  if (!pread_exact(fd, &h, kHeaderBytes, 0)) {
    ::close(fd);
    if (err != nullptr) *err = "flight: header read failed " + path;
    return false;
  }
  if (h.magic != kFlightMagic) {
    ::close(fd);
    if (err != nullptr) *err = "flight: bad magic in " + path;
    return false;
  }
  if (h.version != kFlightVersion || h.header_bytes != kHeaderBytes) {
    ::close(fd);
    if (err != nullptr) *err = "flight: unsupported version in " + path;
    return false;
  }
  if (header_identity_crc(h) != h.identity_crc) {
    ::close(fd);
    if (err != nullptr) *err = "flight: header checksum mismatch in " + path;
    return false;
  }
  const std::uint64_t max_slots = (file_size - kHeaderBytes) / kEventBytes;
  const std::uint64_t count = std::min(h.event_count, max_slots);

  out = FlightSegment{};
  out.header = h;
  out.path = path;
  out.events.reserve(static_cast<std::size_t>(count));
  std::vector<Event> raw(static_cast<std::size_t>(count));
  if (count > 0 &&
      !pread_exact(fd, raw.data(), raw.size() * kEventBytes, kHeaderBytes)) {
    ::close(fd);
    if (err != nullptr) *err = "flight: event read failed " + path;
    return false;
  }
  for (const Event& e : raw) {
    if (event_valid(e)) {
      out.events.push_back(e);
    } else {
      ++out.invalid_events;
    }
  }
  if (h.metrics_offset != 0 && h.metrics_bytes != 0 &&
      h.metrics_offset + h.metrics_bytes <= file_size) {
    std::string text(static_cast<std::size_t>(h.metrics_bytes), '\0');
    if (pread_exact(fd, text.data(), text.size(),
                    static_cast<off_t>(h.metrics_offset))) {
      out.metrics_valid = crc32(text.data(), text.size()) == h.metrics_crc;
      if (out.metrics_valid) out.metrics_text = std::move(text);
    }
  }
  ::close(fd);
  return true;
}

bool read_flight_dir(const std::string& dir, FlightRecording& out,
                     std::string* err) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (err != nullptr) *err = "flight: cannot open directory " + dir;
    return false;
  }
  std::vector<std::string> paths;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() > 5 && name.substr(name.size() - 5) == ".alfr") {
      paths.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(paths.begin(), paths.end());

  out = FlightRecording{};
  std::string first_err;
  for (const std::string& path : paths) {
    FlightSegment seg;
    std::string seg_err;
    if (read_flight_segment(path, seg, &seg_err)) {
      out.segments.push_back(std::move(seg));
    } else if (first_err.empty()) {
      first_err = seg_err;
    }
  }
  std::sort(out.segments.begin(), out.segments.end(),
            [](const FlightSegment& a, const FlightSegment& b) {
              if (a.header.shard_index != b.header.shard_index)
                return a.header.shard_index < b.header.shard_index;
              return a.header.segment_index < b.header.segment_index;
            });
  if (out.segments.empty()) {
    if (err != nullptr) {
      *err = first_err.empty() ? ("flight: no segments under " + dir)
                               : first_err;
    }
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Merge.

namespace {

/// Transport-pair key: one send and one receive of the same frame share
/// (assoc, seq, packet type). First occurrence wins (retransmits reuse the
/// key; the first pair is the one with comparable timestamps).
std::uint64_t pair_key(const Event& e) noexcept {
  return (static_cast<std::uint64_t>(e.assoc_id) << 40) ^
         (static_cast<std::uint64_t>(e.seq) << 8) ^ e.packet_type;
}

double median(std::vector<double>& v) noexcept {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

struct NodeEvents {
  std::uint32_t node_id = 0;
  std::vector<MergedEvent> events;  // wall_us uncorrected at this stage
  std::map<std::uint64_t, std::uint64_t> first_sent;
  std::map<std::uint64_t, std::uint64_t> first_received;
};

}  // namespace

bool merge_recordings(const std::vector<FlightRecording>& recordings,
                      MergeResult& out, std::string* err) {
  if (recordings.size() < 2) {
    if (err != nullptr) *err = "flight: merge needs at least two recordings";
    return false;
  }
  std::vector<NodeEvents> nodes;
  nodes.reserve(recordings.size());
  for (const FlightRecording& rec : recordings) {
    NodeEvents ne;
    ne.node_id = rec.node_id();
    for (const FlightSegment& seg : rec.segments) {
      for (const Event& e : seg.events) {
        MergedEvent me;
        me.node_id = ne.node_id;
        me.wall_us = flight_wall_us(seg.header, e.time_us);
        me.event = e;
        if (e.kind == EventKind::kTransportSent) {
          ne.first_sent.emplace(pair_key(e), me.wall_us);
        } else if (e.kind == EventKind::kTransportReceived) {
          ne.first_received.emplace(pair_key(e), me.wall_us);
        }
        ne.events.push_back(me);
      }
    }
    nodes.push_back(std::move(ne));
  }

  out = MergeResult{};
  std::vector<double> offsets(nodes.size(), 0.0);
  const NodeEvents& ref = nodes.front();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const NodeEvents& peer = nodes[i];
    // Forward deltas: ref sent, peer received. Reverse: peer sent, ref
    // received. With symmetric links, offset = (fwd - rev) / 2.
    std::vector<double> fwd, rev;
    for (const auto& [key, t_sent] : ref.first_sent) {
      auto it = peer.first_received.find(key);
      if (it != peer.first_received.end()) {
        fwd.push_back(static_cast<double>(it->second) -
                      static_cast<double>(t_sent));
      }
    }
    for (const auto& [key, t_sent] : peer.first_sent) {
      auto it = ref.first_received.find(key);
      if (it != ref.first_received.end()) {
        rev.push_back(static_cast<double>(it->second) -
                      static_cast<double>(t_sent));
      }
    }
    ClockLink link;
    link.node_id = peer.node_id;
    if (!fwd.empty() && !rev.empty()) {
      const double med_fwd = median(fwd);
      const double med_rev = median(rev);
      link.offset_us = (med_fwd - med_rev) / 2.0;
      link.latency_us = (med_fwd + med_rev) / 2.0;
      link.matched_pairs = fwd.size() + rev.size();
      link.refined = true;
    }
    offsets[i] = link.offset_us;
    out.links.push_back(link);
  }

  std::size_t total = 0;
  for (const NodeEvents& ne : nodes) total += ne.events.size();
  out.timeline.reserve(total);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (MergedEvent me : nodes[i].events) {
      const double corrected = static_cast<double>(me.wall_us) - offsets[i];
      me.wall_us = corrected <= 0.0 ? 0 : static_cast<std::uint64_t>(corrected);
      out.timeline.push_back(me);
    }
  }
  std::stable_sort(out.timeline.begin(), out.timeline.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     return a.wall_us < b.wall_us;
                   });
  return true;
}

}  // namespace alpha::trace
