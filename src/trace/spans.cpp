#include "trace/spans.hpp"

#include <cstdio>

namespace alpha::trace {

namespace {

// wire::PacketType values (trace stays dependency-free; kept in sync with
// wire/packets.hpp exactly like the name table in trace.cpp).
constexpr std::uint8_t kS1 = 1;
constexpr std::uint8_t kA1 = 2;
constexpr std::uint8_t kS2 = 3;
constexpr std::uint8_t kA2 = 4;

std::uint64_t key_of(std::uint32_t assoc, std::uint32_t seq) noexcept {
  return (static_cast<std::uint64_t>(assoc) << 32) | seq;
}

std::string assoc_label(std::uint32_t assoc) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "assoc=\"%u\"", assoc);
  return buf;
}

std::string link_label(std::uint32_t from, std::uint32_t to) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "link=\"%u->%u\"", from, to);
  return buf;
}

}  // namespace

std::uint64_t RoundSpan::e2e_us() const noexcept {
  const std::uint64_t origin = origin_us();
  if (last_delivery_us == kUnset || origin == kUnset) return 0;
  return last_delivery_us >= origin ? last_delivery_us - origin : 0;
}

std::uint64_t RoundSpan::retransmit_wait_us() const noexcept {
  std::uint64_t wait = 0;
  if (s1_last_send_us != kUnset && s1_sent_us != kUnset &&
      s1_last_send_us > s1_sent_us) {
    wait += s1_last_send_us - s1_sent_us;
  }
  if (s2_last_send_us != kUnset && s2_first_sent_us != kUnset &&
      s2_last_send_us > s2_first_sent_us) {
    wait += s2_last_send_us - s2_first_sent_us;
  }
  return wait;
}

std::uint64_t RoundSpan::propagation_us() const noexcept {
  const std::uint64_t e2e = e2e_us();
  const std::uint64_t accounted = queue_us + retransmit_wait_us();
  return e2e > accounted ? e2e - accounted : 0;
}

RoundSpan& SpanBuilder::span_for(std::uint32_t assoc_id, std::uint32_t seq,
                                 bool fresh) {
  const std::uint64_t key = key_of(assoc_id, seq);
  auto it = open_.find(key);
  if (it != open_.end()) {
    RoundSpan& existing = spans_[it->second];
    if (!(fresh && existing.terminal())) return existing;
    // A new round reuses (assoc, seq): a rekey restarted the sequence
    // space, so open a fresh generation instead of polluting the old span.
    RoundSpan next;
    next.assoc_id = assoc_id;
    next.seq = seq;
    next.generation = existing.generation + 1;
    spans_.push_back(next);
    it->second = spans_.size() - 1;
    return spans_.back();
  }
  RoundSpan span;
  span.assoc_id = assoc_id;
  span.seq = seq;
  spans_.push_back(span);
  open_.emplace(key, spans_.size() - 1);
  return spans_.back();
}

void SpanBuilder::record_delivery(RoundSpan& span, std::uint64_t latency_us) {
  if (latency_us < min_latency_) {
    min_latency_ = latency_us;
    if (registry_ != nullptr) {
      registry_->counter("alpha_span_delivery_latency_min_us") = min_latency_;
    }
  }
  if (registry_ != nullptr) {
    ++registry_->counter("alpha_span_deliveries");
    registry_
        ->histogram("alpha_span_delivery_latency_us",
                    assoc_label(span.assoc_id))
        .record(latency_us);
  }
}

void SpanBuilder::finish(RoundSpan& span) {
  span.exported_ = true;
  ++rounds_complete_;
  if (registry_ == nullptr) return;
  ++registry_->counter("alpha_span_rounds_complete");
  registry_->histogram("alpha_span_queue_wait_us").record(span.queue_us);
  registry_->histogram("alpha_span_crypto_ns").record(span.crypto_ns);
  registry_->histogram("alpha_span_retransmit_wait_us")
      .record(span.retransmit_wait_us());
  registry_->histogram("alpha_span_propagation_us")
      .record(span.propagation_us());
}

void SpanBuilder::on_net(RoundSpan& span, const Event& e) {
  const std::uint8_t p = e.packet_type;
  if (p < kS1 || p > kA2) return;
  RoundSpan::NetPoint& last = span.last_net_[p];
  const std::uint32_t from = net_detail_from(e.detail);
  const std::uint32_t to = net_detail_to(e.detail);
  // Consecutive sends of the same packet type chain hops: the forward at
  // the next node happens at arrival time, so the gap is the previous
  // link's latency (plus relay processing).
  if (last.valid && last.to == from && e.time_us >= last.time_us &&
      registry_ != nullptr) {
    registry_->histogram("alpha_span_hop_us", link_label(last.from, last.to))
        .record(e.time_us - last.time_us);
  }
  last.from = from;
  last.to = to;
  last.time_us = e.time_us;
  last.valid = true;
}

void SpanBuilder::on_terminal_hop(RoundSpan& span, std::uint8_t type,
                                  std::uint64_t time_us) {
  if (type < kS1 || type > kA2) return;
  RoundSpan::NetPoint& last = span.last_net_[type];
  if (last.valid && time_us >= last.time_us && registry_ != nullptr) {
    registry_->histogram("alpha_span_hop_us", link_label(last.from, last.to))
        .record(time_us - last.time_us);
  }
  last.valid = false;
}

void SpanBuilder::ingest(const Event& e) {
  switch (e.kind) {
    case EventKind::kRoundStart: {
      RoundSpan& span = span_for(e.assoc_id, e.seq, /*fresh=*/true);
      span.start_us = e.time_us;
      span.queue_us = round_detail_queue_us(e.detail);
      span.crypto_ns = round_detail_crypto_ns(e.detail);
      break;
    }
    case EventKind::kPacketSent: {
      if (e.packet_type == kS1) {
        RoundSpan& span = span_for(e.assoc_id, e.seq, /*fresh=*/true);
        if (span.s1_sent_us == kUnset) {
          span.s1_sent_us = e.time_us;
          span.batch = static_cast<std::size_t>(e.detail);
          if (span.messages.size() < span.batch) {
            span.messages.resize(span.batch);
          }
        }
      } else if (e.packet_type == kA1) {
        RoundSpan& span = span_for(e.assoc_id, e.seq, /*fresh=*/false);
        if (span.a1_sent_us == kUnset) span.a1_sent_us = e.time_us;
      } else if (e.packet_type == kS2) {
        RoundSpan& span = span_for(e.assoc_id, e.seq, /*fresh=*/false);
        const std::size_t idx = static_cast<std::size_t>(e.detail);
        if (idx >= span.messages.size()) span.messages.resize(idx + 1);
        if (span.batch < span.messages.size()) {
          span.batch = span.messages.size();  // ring wrap ate the S1
        }
        if (span.messages[idx].s2_sent_us == MessageSpan::kUnset) {
          span.messages[idx].s2_sent_us = e.time_us;
        }
        if (span.s2_first_sent_us == kUnset) span.s2_first_sent_us = e.time_us;
      }
      break;
    }
    case EventKind::kRetransmit: {
      if (e.packet_type != kS1 && e.packet_type != kS2) break;  // handshakes
      RoundSpan& span = span_for(e.assoc_id, e.seq, /*fresh=*/false);
      span.attempts.push_back(AttemptSpan{
          e.time_us, static_cast<std::uint32_t>(e.detail), e.packet_type});
      if (e.packet_type == kS1) {
        span.s1_last_send_us = e.time_us;
      } else {
        span.s2_last_send_us = e.time_us;
      }
      break;
    }
    case EventKind::kPacketAccepted: {
      if (e.packet_type < kS1 || e.packet_type > kA2) break;
      RoundSpan& span = span_for(e.assoc_id, e.seq, /*fresh=*/false);
      if (e.packet_type == kS1) {
        if (span.s1_accepted_us == kUnset) span.s1_accepted_us = e.time_us;
      } else if (e.packet_type == kA1) {
        if (span.a1_accepted_us == kUnset) span.a1_accepted_us = e.time_us;
      } else if (e.packet_type == kA2) {
        span.last_a2_us = e.time_us;
        if (e.detail != 0) {
          ++span.acks;
        } else {
          ++span.nacks;
        }
        const std::uint64_t origin = span.origin_us();
        if (registry_ != nullptr && origin != kUnset && e.time_us >= origin) {
          registry_
              ->histogram("alpha_span_ack_latency_us",
                          assoc_label(span.assoc_id))
              .record(e.time_us - origin);
        }
      }
      on_terminal_hop(span, e.packet_type, e.time_us);
      break;
    }
    case EventKind::kDelivered: {
      RoundSpan& span = span_for(e.assoc_id, e.seq, /*fresh=*/false);
      const std::size_t idx = static_cast<std::size_t>(e.detail);
      if (idx >= span.messages.size()) span.messages.resize(idx + 1);
      MessageSpan& m = span.messages[idx];
      if (m.delivered_us != MessageSpan::kUnset) break;  // exactly-once
      m.delivered_us = e.time_us;
      ++span.delivered;
      ++deliveries_;
      if (span.last_delivery_us == kUnset ||
          e.time_us > span.last_delivery_us) {
        span.last_delivery_us = e.time_us;
      }
      const std::uint64_t origin = span.origin_us();
      if (origin != kUnset && e.time_us >= origin) {
        record_delivery(span, e.time_us - origin);
      }
      if (span.complete() && !span.exported_) finish(span);
      break;
    }
    case EventKind::kRoundFailed: {
      RoundSpan& span = span_for(e.assoc_id, e.seq, /*fresh=*/false);
      span.failed = true;
      span.fail_reason = e.reason;
      if (!span.exported_) {
        span.exported_ = true;
        ++rounds_failed_;
        if (registry_ != nullptr) {
          ++registry_->counter("alpha_span_rounds_failed");
        }
      }
      break;
    }
    case EventKind::kNetDelivered: {
      if (e.packet_type < kS1 || e.packet_type > kA2) break;
      on_net(span_for(e.assoc_id, e.seq, /*fresh=*/false), e);
      break;
    }
    default:
      break;
  }
}

std::size_t SpanBuilder::ingest_new(const Ring& ring) {
  // Absolute ring indices are only comparable within one (ring, generation)
  // pair. A cleared-and-refilled ring can have total() ahead of our cursor
  // again, which the old `end < cursor_` test silently misread as "new
  // events" (re-ingesting slots and inheriting the stale wrap count); a
  // swapped ring is the same problem with a different pointer. On either
  // change, restart the cursor at the new source's index 0 -- the clamp
  // below then books any already-overwritten prefix into lost_events_, the
  // same accounting a fresh builder applies to a pre-wrapped ring -- and
  // bank the previous generation's wrap count so the exported
  // alpha_trace_events_dropped counter stays monotonic.
  if (&ring != source_ || ring.generation() != source_generation_) {
    dropped_banked_ += source_dropped_;
    source_ = &ring;
    source_generation_ = ring.generation();
    source_dropped_ = 0;
    cursor_ = 0;
  }
  const std::uint64_t end = ring.total();
  std::uint64_t start = cursor_;
  const std::uint64_t first = ring.first_index();
  if (start < first) {
    lost_events_ += first - start;
    start = first;
  }
  for (std::uint64_t i = start; i < end; ++i) ingest(ring.at_absolute(i));
  cursor_ = end;
  source_dropped_ = ring.dropped();
  if (registry_ != nullptr) {
    registry_->counter("alpha_trace_events_dropped") =
        dropped_banked_ + source_dropped_;
  }
  return static_cast<std::size_t>(end - start);
}

}  // namespace alpha::trace
