// Cross-hop span reconstruction over the PR-4 event ring.
//
// The ring records point events (S1 emit, per-relay forward, net fates,
// deliveries, retransmit attempts). SpanBuilder stitches them into causal
// per-round spans keyed by (assoc, round seq), decomposing end-to-end
// delivery latency into the components the paper's §3.2.2 timing argument
// predicts: queueing (submit -> round open), crypto (signature block wall
// time), retransmit-wait (time bought back by the retry budget), and
// propagation (everything the network charged, including the A1 turnaround
// that makes minimum delivery 1.5 RTT).
//
// Consumption is incremental: ingest_new() keeps a cursor on Ring::total()
// so a live tool can stitch while the protocol runs, surviving ring wrap
// (overwritten events are counted, not mis-read). The same builder ingests
// decoded JSONL for offline reconstruction (alpha_inspect --spans).
//
// When a metrics::Registry is attached, completed spans export per-hop and
// per-component log2 histograms plus a minimum-delivery-latency gauge --
// the live form of the 1.5 RTT claim.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace alpha::trace {

/// One (re)transmission attempt inside a round (attempt 0 = initial send
/// is represented by the packet-sent fields on the span itself).
struct AttemptSpan {
  std::uint64_t time_us = 0;
  std::uint32_t attempt = 0;    // kRetransmit detail (1-based attempt count)
  std::uint8_t packet_type = 0; // which leg was retried (S1 or S2)
};

/// Per-message sub-span of a round (one S2 each).
struct MessageSpan {
  static constexpr std::uint64_t kUnset = ~0ull;
  std::uint64_t s2_sent_us = kUnset;     // first S2 release
  std::uint64_t delivered_us = kUnset;   // verifier accepted + delivered
};

/// One reconstructed signature round.
struct RoundSpan {
  static constexpr std::uint64_t kUnset = ~0ull;

  std::uint32_t assoc_id = 0;
  std::uint32_t seq = 0;
  std::uint32_t generation = 0;  // rekeys restart seq numbering

  // Signer-side opening (kRoundStart packs the two measured components).
  std::uint64_t start_us = kUnset;   // round opened (after crypto block)
  std::uint64_t queue_us = 0;        // oldest batched message's queue wait
  std::uint64_t crypto_ns = 0;       // signature block wall time

  // S1 -> A1 -> S2 legs (first occurrence each).
  std::uint64_t s1_sent_us = kUnset;
  std::uint64_t s1_last_send_us = kUnset;  // latest S1 (re)transmission
  std::uint64_t s1_accepted_us = kUnset;   // verifier accepted the S1
  std::uint64_t a1_sent_us = kUnset;
  std::uint64_t a1_accepted_us = kUnset;   // signer accepted the A1
  std::uint64_t s2_first_sent_us = kUnset;
  std::uint64_t s2_last_send_us = kUnset;  // latest S2 (re)transmission
  std::uint64_t last_delivery_us = kUnset;
  std::uint64_t last_a2_us = kUnset;       // latest accepted (n)ack

  std::size_t batch = 0;            // messages announced by the S1
  std::size_t delivered = 0;        // distinct messages delivered
  std::size_t acks = 0;             // accepted A2 acks
  std::size_t nacks = 0;            // accepted A2 nacks
  std::vector<AttemptSpan> attempts;
  std::vector<MessageSpan> messages;

  bool failed = false;
  DropReason fail_reason = DropReason::kNone;

  bool complete() const noexcept { return batch > 0 && delivered == batch; }
  bool terminal() const noexcept { return failed || complete(); }

  /// Span origin: submission of the oldest batched message when the
  /// kRoundStart event was seen, else the first S1 emission.
  std::uint64_t origin_us() const noexcept {
    if (start_us != kUnset) return start_us - queue_us;
    return s1_sent_us;
  }

  /// End-to-end latency components (valid once complete()).
  std::uint64_t e2e_us() const noexcept;
  std::uint64_t retransmit_wait_us() const noexcept;
  std::uint64_t propagation_us() const noexcept;

 private:
  friend class SpanBuilder;
  // Per-packet-type journey scratch for hop attribution: the latest
  // kNetDelivered send of this round's S1/A1/S2/A2 still awaiting its
  // next-hop observation.
  struct NetPoint {
    std::uint32_t from = 0, to = 0;
    std::uint64_t time_us = 0;
    bool valid = false;
  };
  NetPoint last_net_[5];  // indexed by wire packet type 1..4
  bool exported_ = false; // component histograms already recorded
};

/// Stitches ring events into RoundSpans; optionally exports histograms.
class SpanBuilder {
 public:
  /// `registry` may be nullptr (offline reconstruction only). With a
  /// registry attached the builder records, as spans progress:
  ///   alpha_span_delivery_latency_us{assoc="N"}   per message delivery
  ///   alpha_span_ack_latency_us{assoc="N"}        per accepted A2
  ///   alpha_span_hop_us{link="A->B"}              per observed hop
  ///   alpha_span_queue_wait_us / _crypto_ns / _retransmit_wait_us /
  ///   _propagation_us                             per completed round
  ///   alpha_span_rounds_complete / _failed, alpha_span_deliveries
  ///   alpha_span_delivery_latency_min_us          running minimum
  ///   alpha_trace_events_dropped                  ring overflow (ingest_new)
  explicit SpanBuilder(metrics::Registry* registry = nullptr)
      : registry_(registry) {}

  /// Feeds one event (any kind; irrelevant kinds are ignored).
  void ingest(const Event& e);

  /// Feeds every event recorded since the last call (cursor on
  /// Ring::total(), ring-wrap safe). Returns events consumed.
  std::size_t ingest_new(const Ring& ring);

  /// All spans in creation order, completed and in-flight.
  const std::vector<RoundSpan>& spans() const noexcept { return spans_; }

  std::uint64_t deliveries() const noexcept { return deliveries_; }
  std::uint64_t rounds_complete() const noexcept { return rounds_complete_; }
  std::uint64_t rounds_failed() const noexcept { return rounds_failed_; }
  /// Smallest observed submit->delivery latency (kUnset when none yet).
  std::uint64_t min_delivery_latency_us() const noexcept { return min_latency_; }
  /// Events missed because the ring overwrote them before ingest_new().
  std::uint64_t lost_events() const noexcept { return lost_events_; }

  static constexpr std::uint64_t kUnset = ~0ull;

 private:
  RoundSpan& span_for(std::uint32_t assoc_id, std::uint32_t seq, bool fresh);
  void on_net(RoundSpan& span, const Event& e);
  void on_terminal_hop(RoundSpan& span, std::uint8_t type,
                       std::uint64_t time_us);
  void record_delivery(RoundSpan& span, std::uint64_t latency_us);
  void finish(RoundSpan& span);

  std::vector<RoundSpan> spans_;
  std::map<std::uint64_t, std::size_t> open_;  // (assoc<<32|seq) -> index
  // Incremental-ingest source identity: absolute cursors are only valid
  // within one (ring, generation) pair (see ingest_new).
  const Ring* source_ = nullptr;
  std::uint64_t source_generation_ = 0;
  std::uint64_t source_dropped_ = 0;  // wrap count within current generation
  std::uint64_t dropped_banked_ = 0;  // wrap counts from retired generations
  std::uint64_t cursor_ = 0;
  std::uint64_t lost_events_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t rounds_complete_ = 0;
  std::uint64_t rounds_failed_ = 0;
  std::uint64_t min_latency_ = kUnset;
  metrics::Registry* registry_;
};

}  // namespace alpha::trace
