// Counter / histogram registry with Prometheus-style text export.
//
// Off the hot path by design: the engines keep their own plain-integer
// stats structs (core/stats.hpp); tools fold those into a Registry after
// (or periodically during) a run and export the result. Histograms use
// log2 buckets -- bucket i holds values whose bit width is i, i.e.
// [2^(i-1), 2^i) -- which spans nanoseconds to hours in 64 buckets with
// constant-time recording and no per-sample allocation.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

namespace alpha::metrics {

/// Fixed-shape log2 histogram: 65 buckets (value 0, then one per bit
/// width 1..64), plus count/sum/min/max.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t value) noexcept {
    ++buckets_[bucket_index(value)];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  /// Index of the bucket `value` lands in: 0 for 0, else bit_width(value).
  static std::size_t bucket_index(std::uint64_t value) noexcept {
    std::size_t width = 0;
    while (value != 0) {
      ++width;
      value >>= 1;
    }
    return width;
  }
  /// Inclusive upper bound of bucket i (2^i - 1); bucket 0 holds only 0.
  static std::uint64_t upper_bound(std::size_t i) noexcept {
    return i >= 64 ? ~0ull : (1ull << i) - 1;
  }

  /// Estimated q-quantile (q in [0,1]) by rank interpolation inside the
  /// log2 bucket containing the target rank. Exactness bound: the true
  /// quantile is some sample in that bucket, so the estimate always lies
  /// within the intersection of the bucket's value range and [min(), max()]
  /// -- at most a factor-of-2 relative error, and exact whenever that
  /// intersection is a single point (one sample, or all samples equal).
  ///
  /// An empty histogram returns NaN, not 0: adaptive policies read these
  /// quantiles as control inputs, and a fabricated "0 us latency" is a
  /// guess a controller would act on, while NaN fails every threshold
  /// comparison. Callers that want a number must check count() first (or
  /// std::isnan the result).
  double quantile(double q) const noexcept;

  /// Folds another histogram into this one (bucket-wise). Used when
  /// per-shard / per-engine histograms are merged into a node-level view at
  /// scrape time, mirroring how plain counters are summed.
  void merge(const Histogram& other) noexcept {
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  std::uint64_t bucket(std::size_t i) const noexcept { return buckets_[i]; }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Named counters and histograms, each keyed by a prerendered label string
/// (e.g. `assoc="7"`; empty for none). Export follows the Prometheus text
/// format: counters as `name{labels} value`, histograms as cumulative
/// `name_bucket{le="..."}` series plus `_sum` and `_count`.
class Registry {
 public:
  std::uint64_t& counter(const std::string& name, const std::string& labels = "") {
    return counters_[name][labels];
  }
  Histogram& histogram(const std::string& name, const std::string& labels = "") {
    return histograms_[name][labels];
  }

  void write_prometheus(std::FILE* out) const;
  /// write_prometheus into a string (for the telemetry HTTP endpoint).
  std::string render_prometheus() const;

 private:
  std::map<std::string, std::map<std::string, std::uint64_t>> counters_;
  std::map<std::string, std::map<std::string, Histogram>> histograms_;
};

}  // namespace alpha::metrics
