#include "trace/build_info.hpp"

#include "crypto/cpu.hpp"

#ifndef ALPHA_BUILD_VERSION
#define ALPHA_BUILD_VERSION "unknown"
#endif

namespace alpha::trace {
namespace {

std::string backend_string() {
  if (!crypto::hw_acceleration_enabled()) return "scalar";
  const bool sha = crypto::cpu_has_sha_ni();
  const bool aes = crypto::cpu_has_aes_ni();
  if (sha && aes) return "sha-ni+aes-ni";
  if (sha) return "sha-ni";
  if (aes) return "aes-ni";
  return "scalar";
}

// Prometheus label values may not contain raw quotes or backslashes;
// __VERSION__ is free-form vendor text, so sanitize defensively.
std::string sanitize_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\' || c == '\n') {
      out.push_back('_');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

BuildInfo build_info() {
  BuildInfo info;
  info.version = ALPHA_BUILD_VERSION;
  info.backend = backend_string();
  info.compiler = __VERSION__;
  return info;
}

std::string build_info_labels() {
  const BuildInfo info = build_info();
  return "version=\"" + sanitize_label(info.version) + "\",backend=\"" +
         sanitize_label(info.backend) + "\",compiler=\"" +
         sanitize_label(info.compiler) + "\"";
}

std::string build_info_line() {
  const BuildInfo info = build_info();
  return info.version + "|" + info.backend + "|" + info.compiler;
}

void export_build_info(metrics::Registry& registry) {
  registry.counter("alpha_build_info", build_info_labels()) = 1;
}

}  // namespace alpha::trace
