// Flight recorder: crash-safe persistent spill of the trace ring.
//
// The PR-4/5 observability story dies with the process: the ring, the spans
// and the /metrics endpoint are all in-memory. Production MANET nodes treat
// crashes, OOM-kills and restarts as routine (ROADMAP item 4), so the last
// seconds *before* the death are exactly the data worth keeping. The
// FlightRecorder drains the thread's trace ring into memory-mapped,
// versioned segment files:
//
//   [ 4 KiB-aligned FlightHeader ][ event slots, 32 B each ... ][ metrics ]
//
// Crash safety comes from the mmap itself -- an event memcpy'd into the
// mapping survives process death with no further syscalls, because the dirty
// pages belong to the kernel, not the process -- plus an msync() cadence for
// machine-level durability and a last-gasp flush (fatal-signal handler +
// std::terminate hook) that drains whatever the ring still holds, stamps the
// signal number into the header and msync()s, all async-signal-safely.
// Segments rotate by size; a Prometheus text snapshot of the registry is
// appended into each segment's tail slack at rotation and clean shutdown.
//
// The reader half (read_flight_dir) validates headers (magic, version, CRC)
// and event payloads so `alpha_inspect --flight` can reconstruct spans, the
// drop taxonomy, health transitions and the kAdaptDecision log fully
// offline; merge_recordings() correlates recordings from separate processes
// into one timeline, estimating per-node clock offsets from matched
// kTransportSent/kTransportReceived pairs (NTP's two-sample trick: offset =
// (fwd - rev) / 2, latency = (fwd + rev) / 2, medians over all matches).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace alpha::trace {

inline constexpr std::uint32_t kFlightMagic = 0x52464C41u;  // "ALFR" LE
inline constexpr std::uint16_t kFlightVersion = 1;

/// Segment file header, exactly 256 bytes at offset 0. Identity fields are
/// written once at segment creation and covered by identity_crc; progress
/// fields (event_count, events_lost, crash_signal, finalized, metrics_*)
/// mutate as the segment fills and are excluded from the CRC so a torn
/// header update can never invalidate an otherwise-good recording.
struct FlightHeader {
  std::uint32_t magic = kFlightMagic;
  std::uint16_t version = kFlightVersion;
  std::uint16_t header_bytes = 0;      // sizeof(FlightHeader), offset of slot 0
  std::uint32_t node_id = 0;
  std::uint32_t shard_index = 0;
  std::uint32_t segment_index = 0;     // 0, 1, ... within one recorder
  std::uint32_t crash_signal = 0;      // fatal signal that flushed us, else 0
  std::uint64_t wall_epoch_us = 0;     // CLOCK_REALTIME at segment creation
  std::uint64_t clock_origin_us = 0;   // trace-clock value at segment creation
  std::uint64_t config_digest = 0;     // FNV-1a of the node's config blob
  std::uint64_t event_capacity = 0;    // slots in this segment
  std::uint64_t event_count = 0;       // committed events (<= capacity)
  std::uint64_t first_event_index = 0; // absolute ring index of slot 0
  std::uint64_t events_lost = 0;       // ring-overwritten before capture
  std::uint32_t finalized = 0;         // 1 after a clean finalize()
  std::uint32_t metrics_crc = 0;       // CRC-32 of the metrics blob
  std::uint64_t metrics_offset = 0;    // file offset of snapshot text, 0=none
  std::uint64_t metrics_bytes = 0;
  char build_info[144] = {};           // "version|backend|compiler", NUL-padded
  std::uint32_t reserved = 0;
  std::uint32_t identity_crc = 0;      // CRC-32, mutable fields zeroed
};
static_assert(sizeof(FlightHeader) == 256, "recording format is versioned");

/// CRC-32 (IEEE 802.3, the zlib polynomial) so scripts/check_flight.py can
/// validate recordings with Python's zlib.crc32 directly.
std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed = 0) noexcept;

/// FNV-1a 64-bit, for config digests stamped into headers.
std::uint64_t fnv1a64(const void* data, std::size_t len) noexcept;
inline std::uint64_t fnv1a64(const std::string& s) noexcept {
  return fnv1a64(s.data(), s.size());
}

struct FlightOptions {
  std::string dir;                   // created if missing
  std::uint32_t node_id = 0;
  std::uint32_t shard_index = 0;
  std::size_t segment_bytes = 4u << 20;  // rotation threshold (sparse file)
  std::uint64_t config_digest = 0;
  /// Trace-clock value "now" (e.g. Transport::now_us()) at recorder
  /// creation, pairing with wall_epoch_us to map event times to wall time.
  std::uint64_t clock_origin_us = 0;
  /// Wall-clock microseconds at creation; 0 = sample CLOCK_REALTIME.
  /// Overridable so tests can inject a known cross-recording skew.
  std::uint64_t wall_epoch_us = 0;
  /// msync(MS_ASYNC) after this many drained events (machine-crash
  /// durability; process-crash durability needs no msync at all).
  std::size_t msync_every_events = 4096;
  /// Rendered into each segment at rotation/finalize (tail slack permitting).
  /// Called from normal context only, never from the signal path.
  std::function<std::string()> metrics_snapshot;
};

/// Spills one trace ring to segment files. Singled-threaded like the ring
/// itself: construct, drain() periodically from the owning thread,
/// finalize() (or just destroy) when done. crash_flush() is the exception --
/// async-signal-safe, called by the fatal-signal/terminate hooks.
class FlightRecorder {
 public:
  FlightRecorder(FlightOptions options, const Ring* ring);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// False when the directory/segment could not be created; error() says why.
  bool ok() const noexcept { return error_.empty(); }
  const std::string& error() const noexcept { return error_; }

  /// Copies every ring event recorded since the last drain into the current
  /// segment, rotating as needed. Steady-state cost: one generation check
  /// plus a 32 B struct copy per new event (0 allocations). Returns events
  /// captured.
  std::size_t drain();

  /// Final drain + metrics snapshot + durable msync + unmap. Idempotent;
  /// the destructor calls it.
  void finalize();

  /// Last-gasp flush from a fatal-signal handler: drains what fits in the
  /// current segment (no rotation, no allocation, no locks), stamps `signo`,
  /// msync(MS_ASYNC). Safe to call on a half-crashed process.
  void crash_flush(int signo) noexcept;

  std::uint64_t events_written() const noexcept { return total_events_; }
  std::uint32_t segments_opened() const noexcept { return next_segment_; }
  const std::string& current_path() const noexcept { return segment_path_; }

 private:
  bool open_segment();
  void close_segment(bool mark_finalized);
  void write_metrics_blob();
  std::size_t capture(std::uint64_t upto, bool allow_rotate) noexcept;

  FlightOptions options_;
  const Ring* ring_;
  std::string error_;
  std::string segment_path_;

  std::uint8_t* map_ = nullptr;   // current segment mapping
  std::size_t map_len_ = 0;
  int fd_ = -1;
  FlightHeader* header_ = nullptr;
  Event* slots_ = nullptr;
  std::uint64_t capacity_ = 0;    // slots in current segment
  std::uint64_t used_ = 0;        // committed slots in current segment

  std::uint64_t cursor_ = 0;      // absolute ring index of next event
  std::uint64_t ring_generation_ = 0;
  std::uint64_t lost_events_ = 0; // cumulative ring-overwrite losses
  std::uint64_t total_events_ = 0;
  std::size_t since_msync_ = 0;
  std::uint32_t next_segment_ = 0;
  bool finalized_ = false;
};

/// Registers `recorder` with the process-wide last-gasp flush set (bounded,
/// lock-free). The FlightRecorder constructor/destructor do this
/// automatically; these exist for tests.
bool register_crash_recorder(FlightRecorder* recorder) noexcept;
void unregister_crash_recorder(FlightRecorder* recorder) noexcept;

/// Installs fatal-signal handlers (SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT)
/// and a std::terminate hook that crash_flush() every registered recorder,
/// then re-raise the default disposition so exit status and core dumps are
/// preserved. Idempotent. Opt-in: tools call it, the library never does.
bool install_crash_handlers() noexcept;

/// Flushes every registered recorder now (what the handlers do); exposed
/// for tests and for embedders with their own signal infrastructure.
void crash_flush_all(int signo) noexcept;

// ---------------------------------------------------------------------------
// Reader side.

struct FlightSegment {
  FlightHeader header;
  std::vector<Event> events;   // valid events, ring order
  std::string metrics_text;    // empty if absent or CRC-mismatched
  std::string path;
  std::uint64_t invalid_events = 0;  // slots rejected by validation
  bool metrics_valid = false;
};

/// One directory's worth of segments, sorted by (shard, segment index).
struct FlightRecording {
  std::vector<FlightSegment> segments;
  /// Primary node id (from the first segment; segments of one recording
  /// always agree).
  std::uint32_t node_id() const noexcept {
    return segments.empty() ? 0 : segments.front().header.node_id;
  }
  std::uint64_t total_events() const noexcept {
    std::uint64_t n = 0;
    for (const FlightSegment& s : segments) n += s.events.size();
    return n;
  }
};

/// Maps an event timestamp from `header`'s segment onto the recording
/// node's wall clock (microseconds since the Unix epoch).
inline std::uint64_t flight_wall_us(const FlightHeader& header,
                                    std::uint64_t time_us) noexcept {
  return header.wall_epoch_us + time_us - header.clock_origin_us;
}

/// Loads and validates one segment file. Returns false (with *err set) on
/// structural corruption; per-event validation failures only bump
/// out.invalid_events.
bool read_flight_segment(const std::string& path, FlightSegment& out,
                         std::string* err);

/// Loads every *.alfr segment under `dir`. False if none load.
bool read_flight_dir(const std::string& dir, FlightRecording& out,
                     std::string* err);

// ---------------------------------------------------------------------------
// Cross-node merge.

struct MergedEvent {
  std::uint32_t node_id = 0;
  std::uint64_t wall_us = 0;   // offset-corrected wall time
  Event event;
};

/// Estimated clock relation of one recording against the reference
/// (recording 0). offset_us is how far this node's wall clock runs ahead of
/// the reference's; subtracting it aligns the timelines.
struct ClockLink {
  std::uint32_t node_id = 0;
  double offset_us = 0.0;
  double latency_us = 0.0;     // median one-way latency to/from the reference
  std::size_t matched_pairs = 0;
  bool refined = false;        // true: send/recv pairs; false: epoch only
};

struct MergeResult {
  std::vector<MergedEvent> timeline;  // sorted by corrected wall time
  std::vector<ClockLink> links;       // one per non-reference recording
};

/// Correlates recordings from separate processes into one timeline.
/// Recording 0 is the time reference. For each other recording, clock
/// offset is estimated from matched kTransportSent/kTransportReceived pairs
/// (keyed by assoc/seq/packet-type, first occurrence each direction); with
/// no matches it falls back to trusting the wall epochs as-is.
bool merge_recordings(const std::vector<FlightRecording>& recordings,
                      MergeResult& out, std::string* err);

}  // namespace alpha::trace
