#include "trace/prof.hpp"

#include <ctime>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define ALPHA_PROF_HW 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace alpha::trace {

const char* to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kShardDrain:
      return "shard_drain";
    case Stage::kRelayVerify:
      return "relay_verify";
    case Stage::kChainStep:
      return "chain_step";
  }
  return "unknown";
}

namespace {

std::uint64_t mono_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

#ifdef ALPHA_PROF_HW
int perf_open(std::uint32_t type, std::uint64_t config, int group_fd) noexcept {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // leader starts disabled
  attr.exclude_kernel = 1;  // user-space only: works at perf_event_paranoid=2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(::syscall(__NR_perf_event_open, &attr, 0, -1,
                                    group_fd, 0));
}
#endif

}  // namespace

StageProfiler::StageProfiler() : StageProfiler(Options{}) {}

StageProfiler::StageProfiler(Options options) : options_(options) {
  if (options_.sample_every == 0) options_.sample_every = 1;
#ifdef ALPHA_PROF_HW
  group_fd_ = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (group_fd_ >= 0) {
    // Auxiliary counters are best-effort: VMs often virtualize cycles but
    // not cache events. A failed sibling just reads as 0.
    aux_fd_[0] =
        perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, group_fd_);
    aux_fd_[1] =
        perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, group_fd_);
    ::ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ::ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }
#endif
}

StageProfiler::~StageProfiler() {
#ifdef ALPHA_PROF_HW
  for (int fd : aux_fd_) {
    if (fd >= 0) ::close(fd);
  }
  if (group_fd_ >= 0) ::close(group_fd_);
#endif
}

bool StageProfiler::read_group(std::uint64_t out[3]) noexcept {
  out[0] = out[1] = out[2] = 0;
#ifdef ALPHA_PROF_HW
  if (group_fd_ < 0) return false;
  // PERF_FORMAT_GROUP layout: u64 nr, then one u64 per live group member in
  // open order (cycles, instructions, cache misses; failed siblings absent).
  std::uint64_t buf[4] = {};
  const ssize_t n = ::read(group_fd_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(2 * sizeof(std::uint64_t))) return false;
  const std::uint64_t nr = buf[0];
  std::size_t slot = 1;
  out[0] = nr >= 1 ? buf[slot++] : 0;                       // cycles
  out[1] = (aux_fd_[0] >= 0 && nr >= slot) ? buf[slot++] : 0;  // instructions
  out[2] = (aux_fd_[1] >= 0 && nr >= slot) ? buf[slot] : 0;    // cache misses
  return true;
#else
  return false;
#endif
}

bool StageProfiler::begin(Stage stage, Sample& sample) noexcept {
  const auto s = static_cast<std::size_t>(stage);
  ++totals_[s].calls;
  if (entries_[s]++ % options_.sample_every != 0) return false;
  sample.t0_ns = mono_ns();
  sample.counting = read_group(sample.begin);
  return true;
}

void StageProfiler::end(Stage stage, Sample& sample) noexcept {
  const auto s = static_cast<std::size_t>(stage);
  Totals& t = totals_[s];
  ++t.samples;
  const std::uint64_t now = mono_ns();
  t.wall_ns += now >= sample.t0_ns ? now - sample.t0_ns : 0;
  if (!sample.counting) return;
  std::uint64_t after[3];
  if (!read_group(after)) return;
  t.cycles += after[0] >= sample.begin[0] ? after[0] - sample.begin[0] : 0;
  t.instructions +=
      after[1] >= sample.begin[1] ? after[1] - sample.begin[1] : 0;
  t.cache_misses +=
      after[2] >= sample.begin[2] ? after[2] - sample.begin[2] : 0;
}

void export_prof(const StageProfiler& profiler, metrics::Registry& registry) {
  registry.counter("alpha_prof_hw_available") =
      profiler.hw_available() ? 1 : 0;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const auto stage = static_cast<Stage>(s);
    const StageProfiler::Totals& t = profiler.totals(stage);
    const std::string labels =
        std::string("stage=\"") + to_string(stage) + "\"";
    // Assignment, not +=: totals are monotonic, and periodic re-exports
    // (telemetry refresh loops) must be idempotent.
    registry.counter("alpha_prof_calls", labels) = t.calls;
    registry.counter("alpha_prof_samples", labels) = t.samples;
    registry.counter("alpha_prof_wall_ns", labels) = t.wall_ns;
    registry.counter("alpha_prof_cycles", labels) = t.cycles;
    registry.counter("alpha_prof_instructions", labels) = t.instructions;
    registry.counter("alpha_prof_cache_misses", labels) = t.cache_misses;
  }
}

}  // namespace alpha::trace
