// Byte-buffer utilities shared by all ALPHA modules.
//
// The whole code base deals in `Bytes` (a std::vector<uint8_t>) for owned
// buffers and `std::span<const uint8_t>` for views. This header adds the small
// set of helpers the protocol needs: hex encoding for diagnostics, constant
// time comparison for digests and MACs, and concatenation helpers used when
// building hash inputs such as H(tag | h) or H(left | right).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace alpha::crypto {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Encodes a byte view as lowercase hex ("deadbeef").
std::string to_hex(ByteView data);

/// Decodes a hex string (case-insensitive, no separators). Throws
/// std::invalid_argument on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Constant-time equality: runs in time dependent only on the lengths.
/// Returns false for mismatched lengths (length is not secret here).
bool ct_equal(ByteView a, ByteView b) noexcept;

/// Returns the concatenation of the given views in order.
Bytes concat(std::initializer_list<ByteView> parts);

/// Converts a string literal tag (e.g. "S1") to a byte view over its
/// characters, excluding the terminating NUL.
ByteView as_bytes(std::string_view s) noexcept;

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteView src);

}  // namespace alpha::crypto
