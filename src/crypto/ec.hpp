// Elliptic-curve cryptography (prime-field Weierstrass curves, ECDSA).
//
// §3.4/§4.1.3 of the paper single out ECC as the viable way to sign hash
// chain anchors on sensor nodes ("ECC signatures present a viable solution
// for securely exchanging the anchors of hash chains"), comparing against
// Gura et al.'s 160-bit ECC measurements. This implements short-Weierstrass
// curves y^2 = x^3 + ax + b over GF(p) with affine arithmetic on the bignum
// layer: point add/double, double-and-add scalar multiplication, ECDSA
// keygen/sign/verify. Two standard curves are provided: secp160r1 (the
// Gura-era WSN curve) and P-256 (modern default).
//
// Like the RSA/DSA baselines this is correctness-first, not constant-time;
// it exists for the protected bootstrap and the paper's cost comparisons.
#pragma once

#include <optional>
#include <string>

#include "crypto/bignum.hpp"
#include "crypto/bytes.hpp"
#include "crypto/hash.hpp"
#include "crypto/random.hpp"

namespace alpha::crypto {

/// Affine point; infinity is the additive identity.
struct EcPoint {
  BigInt x;
  BigInt y;
  bool infinity = true;

  static EcPoint at_infinity() { return {}; }
  static EcPoint affine(BigInt px, BigInt py) {
    return {std::move(px), std::move(py), false};
  }

  friend bool operator==(const EcPoint& a, const EcPoint& b) {
    if (a.infinity != b.infinity) return false;
    if (a.infinity) return true;
    return a.x == b.x && a.y == b.y;
  }
};

class EcCurve {
 public:
  /// y^2 = x^3 + ax + b over GF(p); G generates a subgroup of prime order n.
  EcCurve(std::string name, BigInt p, BigInt a, BigInt b, EcPoint g, BigInt n);

  /// secp160r1 -- the 160-bit curve class of Gura et al. (§4.1.3).
  static const EcCurve& secp160r1();
  /// NIST P-256 -- the modern default.
  static const EcCurve& p256();

  const std::string& name() const noexcept { return name_; }
  const BigInt& p() const noexcept { return p_; }
  const BigInt& order() const noexcept { return n_; }
  const EcPoint& generator() const noexcept { return g_; }

  /// Group operations (affine; handles identity and inverses).
  bool on_curve(const EcPoint& pt) const;
  EcPoint add(const EcPoint& lhs, const EcPoint& rhs) const;
  EcPoint double_point(const EcPoint& pt) const;
  EcPoint multiply(const BigInt& k, const EcPoint& pt) const;

  /// Field size in bytes (coordinate encoding width).
  std::size_t field_bytes() const noexcept { return (p_.bit_length() + 7) / 8; }
  /// Subgroup order size in bytes (scalar/signature component width).
  std::size_t order_bytes() const noexcept { return (n_.bit_length() + 7) / 8; }

 private:
  BigInt mod(const BigInt& v) const { return v % p_; }
  /// (a - b) mod p for possibly a < b.
  BigInt sub_mod(const BigInt& a, const BigInt& b) const;

  std::string name_;
  BigInt p_, a_, b_;
  EcPoint g_;
  BigInt n_;
};

struct EcdsaPublicKey {
  const EcCurve* curve = nullptr;
  EcPoint point;

  /// Uncompressed SEC1 encoding: 0x04 || X || Y.
  Bytes encode() const;
  static std::optional<EcdsaPublicKey> decode(const EcCurve& curve,
                                              ByteView data);
};

struct EcdsaPrivateKey {
  EcdsaPublicKey pub;
  BigInt d;  // secret scalar, 0 < d < n
};

struct EcdsaSignature {
  BigInt r;
  BigInt s;

  /// Fixed-width wire form: r || s, each order_bytes wide.
  Bytes encode(std::size_t order_bytes) const;
  static std::optional<EcdsaSignature> decode(ByteView data);
};

EcdsaPrivateKey ecdsa_generate(const EcCurve& curve, RandomSource& rng);

EcdsaSignature ecdsa_sign(const EcdsaPrivateKey& key, HashAlgo algo,
                          ByteView message, RandomSource& rng);

bool ecdsa_verify(const EcdsaPublicKey& key, HashAlgo algo, ByteView message,
                  const EcdsaSignature& sig);

}  // namespace alpha::crypto
