// Message authentication codes.
//
// ALPHA's S1 pre-signature is "a MAC keyed with the signer's next undisclosed
// signature chain element M(h_{i-1}, m)" (paper §3.1). Two constructions are
// provided:
//
//  * HMAC (RFC 2104)  - the standard; the paper cites [3] (Bellare et al.)
//    and uses a SHA-1 HMAC in its WMN estimation.
//  * Prefix MAC       - M(k, m) = H(k | m). Safe in ALPHA because the key is
//    a one-time hash-chain element (no extension-attack surface across
//    messages), and what the WSN profile computes on AES-MMO hardware.
//
// Protocol configuration selects the construction; both are available for
// every HashAlgo.
#pragma once

#include "crypto/bytes.hpp"
#include "crypto/digest.hpp"
#include "crypto/hash.hpp"

namespace alpha::crypto {

enum class MacKind : std::uint8_t {
  kHmac = 1,
  kPrefix = 2,
};

std::string_view to_string(MacKind kind) noexcept;

/// HMAC(key, data) per RFC 2104 with the block size of `algo`
/// (64 bytes for SHA-1/SHA-256, 16 bytes for AES-MMO).
Digest hmac(HashAlgo algo, ByteView key, ByteView data);

/// Prefix MAC: H(key | data).
Digest prefix_mac(HashAlgo algo, ByteView key, ByteView data);

/// Dispatch on MacKind.
Digest mac(MacKind kind, HashAlgo algo, ByteView key, ByteView data);

/// Constant-time verification of a received MAC value.
bool verify_mac(MacKind kind, HashAlgo algo, ByteView key, ByteView data,
                const Digest& expected);

}  // namespace alpha::crypto
