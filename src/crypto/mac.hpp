// Message authentication codes.
//
// ALPHA's S1 pre-signature is "a MAC keyed with the signer's next undisclosed
// signature chain element M(h_{i-1}, m)" (paper §3.1). Two constructions are
// provided:
//
//  * HMAC (RFC 2104)  - the standard; the paper cites [3] (Bellare et al.)
//    and uses a SHA-1 HMAC in its WMN estimation.
//  * Prefix MAC       - M(k, m) = H(k | m). Safe in ALPHA because the key is
//    a one-time hash-chain element (no extension-attack surface across
//    messages), and what the WSN profile computes on AES-MMO hardware.
//
// Protocol configuration selects the construction; both are available for
// every HashAlgo.
//
// One ALPHA round MACs a whole batch under one key (the round's chain
// element), so HmacKey/MacContext precompute the key schedule once: the
// HMAC ipad/opad blocks are compressed into cached midstates at
// construction, and each mac() is two resumed hashes with no heap traffic.
#pragma once

#include <array>
#include <optional>

#include "crypto/bytes.hpp"
#include "crypto/digest.hpp"
#include "crypto/hash.hpp"

namespace alpha::crypto {

enum class MacKind : std::uint8_t {
  kHmac = 1,
  kPrefix = 2,
};

std::string_view to_string(MacKind kind) noexcept;

/// HMAC(key, data) per RFC 2104 with the block size of `algo`
/// (64 bytes for SHA-1/SHA-256, 16 bytes for AES-MMO).
Digest hmac(HashAlgo algo, ByteView key, ByteView data);

/// Prefix MAC: H(key | data).
Digest prefix_mac(HashAlgo algo, ByteView key, ByteView data);

/// Dispatch on MacKind.
Digest mac(MacKind kind, HashAlgo algo, ByteView key, ByteView data);

/// Constant-time verification of a received MAC value.
bool verify_mac(MacKind kind, HashAlgo algo, ByteView key, ByteView data,
                const Digest& expected);

/// HMAC key with cached ipad/opad midstates. Construction runs the key
/// schedule (two compressions, plus a pre-hash for keys longer than one
/// block) exactly once, unaccounted by HashOpCounter; each mac() then
/// re-accounts the two cached blocks so counter totals stay
/// compress-equivalent with the from-scratch hmac(): 2 finalizations and
/// 2*block_size + data + digest bytes per MAC (for keys up to one block).
class HmacKey {
 public:
  HmacKey(HashAlgo algo, ByteView key);

  HashAlgo algo() const noexcept { return algo_; }

  /// HMAC(key, data): two resumed hashes, no key schedule, no heap.
  Digest mac(ByteView data) const;
  /// Constant-time check of a received MAC value.
  bool verify(ByteView data, const Digest& expected) const {
    return mac(data).ct_equals(expected);
  }

 private:
  HashAlgo algo_;
  // Chaining values after compressing the ipad/opad block. SHA-1 uses the
  // first 5 words, SHA-256 all 8, AES-MMO the byte arrays.
  std::array<std::uint32_t, 8> inner_words_{};
  std::array<std::uint32_t, 8> outer_words_{};
  std::array<std::uint8_t, 16> inner_mmo_{};
  std::array<std::uint8_t, 16> outer_mmo_{};
};

/// MacKind-dispatching MAC context bound to one key (e.g. one round's chain
/// element). Per-message cost is the data pass alone for both constructions;
/// mac()/verify() never allocate.
class MacContext {
 public:
  MacContext(MacKind kind, HashAlgo algo, ByteView key);

  MacKind kind() const noexcept { return kind_; }
  HashAlgo algo() const noexcept { return algo_; }

  Digest mac(ByteView data) const;
  /// Constant-time check of a received MAC value.
  bool verify(ByteView data, const Digest& expected) const {
    return mac(data).ct_equals(expected);
  }

 private:
  MacKind kind_;
  HashAlgo algo_;
  // kHmac state.
  std::optional<HmacKey> hmac_;
  // kPrefix state: chain-element keys always fit a Digest; longer keys
  // (baseline channels with arbitrary key material) fall back to Bytes.
  Digest prefix_key_;
  Bytes prefix_key_long_;
};

}  // namespace alpha::crypto
