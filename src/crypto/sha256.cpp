#include "crypto/sha256.hpp"

#include <bit>
#include <cstring>

#include "crypto/counter.hpp"
#include "crypto/cpu.hpp"

namespace alpha::crypto {

namespace {
constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
}  // namespace

void Sha256::reset() noexcept {
  state_ = kInitState;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha256::resume(const State& state, std::uint64_t bytes_consumed) noexcept {
  state_ = state;
  total_len_ = bytes_consumed;
  buffer_len_ = 0;
}

void Sha256::compress(State& state, const std::uint8_t* block) noexcept {
#if defined(ALPHA_X86_CRYPTO)
  static const bool has_sha = cpu_has_sha_ni();
  if (has_sha && hw_acceleration_enabled()) {
    compress_ni(state, block);
    return;
  }
#endif
  compress_scalar(state, block);
}

void Sha256::compress_scalar(State& state, const std::uint8_t* block) noexcept {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^
                             (w[i - 15] >> 3);
    const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^
                             (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3],
                e = state[4], f = state[5], g = state[6], h = state[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 =
        std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 =
        std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

void Sha256::update(ByteView data) noexcept {
  HashOpCounter::record_update(data.size());
  total_len_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  if (buffer_len_ > 0) {
    const std::size_t take =
        n < kBlockSize - buffer_len_ ? n : kBlockSize - buffer_len_;
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == kBlockSize) {
      compress(state_, buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (n >= kBlockSize) {
    compress(state_, p);
    p += kBlockSize;
    n -= kBlockSize;
  }
  if (n > 0) {
    std::memcpy(buffer_.data(), p, n);
    buffer_len_ = n;
  }
}

Digest Sha256::finalize() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;

  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_.data() + buffer_len_, 0, kBlockSize - buffer_len_);
    compress(state_, buffer_.data());
    buffer_len_ = 0;
  }
  std::memset(buffer_.data() + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  compress(state_, buffer_.data());

  std::uint8_t out[kDigestSize];
  for (int i = 0; i < 8; ++i) store_be32(out + 4 * i, state_[i]);
  HashOpCounter::record_finalize();
  return Digest(ByteView{out, kDigestSize});
}

}  // namespace alpha::crypto
