#include "crypto/cpu.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#endif

namespace alpha::crypto {

namespace {
struct CpuFeatures {
  bool sha_ni = false;
  bool aes_ni = false;
};

CpuFeatures detect() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.sha_ni = (ebx >> 29) & 1u;  // CPUID.7.0:EBX.SHA[29]
  }
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.aes_ni = (ecx >> 25) & 1u;  // CPUID.1:ECX.AESNI[25]
  }
#endif
  return f;
}

const CpuFeatures g_features = detect();
}  // namespace

bool cpu_has_sha_ni() noexcept { return g_features.sha_ni; }
bool cpu_has_aes_ni() noexcept { return g_features.aes_ni; }

}  // namespace alpha::crypto
