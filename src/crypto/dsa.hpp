// DSA signatures (FIPS 186 classic parameters).
//
// Second public-key baseline of Table 4 ("DSA 1024 sign/verify"). Classic
// (L = 1024, N = 160) parameters match the paper's 2008-era measurements;
// parameter generation is deterministic when driven by an HmacDrbg so benches
// regenerate identical groups without shipping hard-coded constants.
#pragma once

#include "crypto/bignum.hpp"
#include "crypto/bytes.hpp"
#include "crypto/hash.hpp"
#include "crypto/random.hpp"

namespace alpha::crypto {

struct DsaParams {
  BigInt p;  // prime modulus, L bits
  BigInt q;  // prime divisor of p-1, N bits
  BigInt g;  // generator of the order-q subgroup
};

struct DsaPublicKey {
  DsaParams params;
  BigInt y;  // g^x mod p
};

struct DsaPrivateKey {
  DsaPublicKey pub;
  BigInt x;  // secret, 0 < x < q
};

struct DsaSignature {
  BigInt r;
  BigInt s;

  /// Fixed-width wire form: r || s, each N/8 bytes.
  Bytes encode(std::size_t q_bytes) const;
  static DsaSignature decode(ByteView data);
};

/// Generates (p, q, g) with p of `l_bits` and q of `n_bits`
/// (e.g. 1024/160 for the paper's baseline).
DsaParams dsa_generate_params(RandomSource& rng, std::size_t l_bits,
                              std::size_t n_bits);

DsaPrivateKey dsa_generate_key(RandomSource& rng, DsaParams params);

/// Signs H_algo(message); fresh per-message nonce from `rng`.
DsaSignature dsa_sign(const DsaPrivateKey& key, HashAlgo algo,
                      ByteView message, RandomSource& rng);

bool dsa_verify(const DsaPublicKey& key, HashAlgo algo, ByteView message,
                const DsaSignature& sig);

}  // namespace alpha::crypto
