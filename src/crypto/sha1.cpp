#include "crypto/sha1.hpp"

#include <bit>
#include <cstring>

#include "crypto/counter.hpp"
#include "crypto/cpu.hpp"

namespace alpha::crypto {

namespace {
inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
}  // namespace

void Sha1::reset() noexcept {
  state_ = kInitState;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha1::resume(const State& state, std::uint64_t bytes_consumed) noexcept {
  state_ = state;
  total_len_ = bytes_consumed;
  buffer_len_ = 0;
}

void Sha1::compress(State& state, const std::uint8_t* block) noexcept {
#if defined(ALPHA_X86_CRYPTO)
  static const bool has_sha = cpu_has_sha_ni();
  if (has_sha && hw_acceleration_enabled()) {
    compress_ni(state, block);
    return;
  }
#endif
  compress_scalar(state, block);
}

void Sha1::compress_scalar(State& state, const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 80; ++i) {
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3],
                e = state[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = tmp;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
}

void Sha1::update(ByteView data) noexcept {
  HashOpCounter::record_update(data.size());
  total_len_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  if (buffer_len_ > 0) {
    const std::size_t take =
        n < kBlockSize - buffer_len_ ? n : kBlockSize - buffer_len_;
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == kBlockSize) {
      compress(state_, buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (n >= kBlockSize) {
    compress(state_, p);
    p += kBlockSize;
    n -= kBlockSize;
  }
  if (n > 0) {
    std::memcpy(buffer_.data(), p, n);
    buffer_len_ = n;
  }
}

Digest Sha1::finalize() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;

  // Merkle-Damgard padding: 0x80, zeros to 56 mod 64, 64-bit big-endian bit
  // length. Processed directly so padding does not distort the byte counter.
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_.data() + buffer_len_, 0, kBlockSize - buffer_len_);
    compress(state_, buffer_.data());
    buffer_len_ = 0;
  }
  std::memset(buffer_.data() + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  compress(state_, buffer_.data());

  std::uint8_t out[kDigestSize];
  for (int i = 0; i < 5; ++i) store_be32(out + 4 * i, state_[i]);
  HashOpCounter::record_finalize();
  return Digest(ByteView{out, kDigestSize});
}

}  // namespace alpha::crypto
