#include "crypto/hasher_ctx.hpp"

namespace alpha::crypto {

// Out-of-line so the thread_local access goes through one TU (see the GCC
// TLS-wrapper note in counter.hpp).
HasherCtx& tls_hasher(HashAlgo algo) {
  thread_local HasherCtx sha1{HashAlgo::kSha1};
  thread_local HasherCtx sha256{HashAlgo::kSha256};
  thread_local HasherCtx mmo{HashAlgo::kMmo128};
  HasherCtx* ctx = &sha1;
  switch (algo) {
    case HashAlgo::kSha1: ctx = &sha1; break;
    case HashAlgo::kSha256: ctx = &sha256; break;
    case HashAlgo::kMmo128: ctx = &mmo; break;
  }
  ctx->reset();
  return *ctx;
}

}  // namespace alpha::crypto
