#include "crypto/bignum.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace alpha::crypto {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(v));
    if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
  }
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes_be(ByteView bytes) {
  BigInt r;
  r.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // byte i is the (size-1-i)-th least significant byte
    const std::size_t pos = bytes.size() - 1 - i;
    r.limbs_[pos / 4] |= std::uint32_t{bytes[i]} << (8 * (pos % 4));
  }
  r.trim();
  return r;
}

BigInt BigInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes_be(alpha::crypto::from_hex(padded));
}

Bytes BigInt::to_bytes_be(std::size_t min_len) const {
  const std::size_t nbytes = (bit_length() + 7) / 8;
  const std::size_t out_len = std::max(nbytes, min_len);
  Bytes out(out_len, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    out[out_len - 1 - i] =
        static_cast<std::uint8_t>(limbs_[i / 4] >> (8 * (i % 4)));
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = alpha::crypto::to_hex(to_bytes_be());
  const std::size_t nz = s.find_first_not_of('0');
  return s.substr(nz);
}

std::size_t BigInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  return 32 * (limbs_.size() - 1) +
         (32 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigInt::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) noexcept {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt r;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  r.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t s = carry;
    if (i < a.limbs_.size()) s += a.limbs_[i];
    if (i < b.limbs_.size()) s += b.limbs_[i];
    r.limbs_[i] = static_cast<std::uint32_t>(s);
    carry = s >> 32;
  }
  r.limbs_[n] = static_cast<std::uint32_t>(carry);
  r.trim();
  return r;
}

BigInt operator-(const BigInt& a, const BigInt& b) {
  if (a < b) throw std::underflow_error("BigInt: negative subtraction result");
  BigInt r;
  r.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) d -= b.limbs_[i];
    if (d < 0) {
      d += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    r.limbs_[i] = static_cast<std::uint32_t>(d);
  }
  r.trim();
  return r;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt{};
  BigInt r;
  r.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t cur =
          ai * b.limbs_[j] + r.limbs_[i + j] + carry;
      r.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    r.limbs_[i + b.limbs_.size()] += static_cast<std::uint32_t>(carry);
  }
  r.trim();
  return r;
}

BigInt operator<<(const BigInt& a, std::size_t bits) {
  if (a.is_zero() || bits == 0) {
    BigInt r = a;
    return r;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt r;
  r.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const std::uint64_t v = std::uint64_t{a.limbs_[i]} << bit_shift;
    r.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    r.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  r.trim();
  return r;
}

BigInt operator>>(const BigInt& a, std::size_t bits) {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= a.limbs_.size()) return BigInt{};
  BigInt r;
  r.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
    std::uint64_t v = std::uint64_t{a.limbs_[i + limb_shift]} >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= std::uint64_t{a.limbs_[i + limb_shift + 1]} << (32 - bit_shift);
    }
    r.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  r.trim();
  return r;
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& num,
                                         const BigInt& den) {
  if (den.is_zero()) throw std::domain_error("BigInt: division by zero");
  if (num < den) return {BigInt{}, num};

  // Single-limb divisor: simple schoolbook loop.
  if (den.limbs_.size() == 1) {
    const std::uint64_t d = den.limbs_[0];
    BigInt q;
    q.limbs_.assign(num.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | num.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigInt{rem}};
  }

  // Knuth TAOCP vol.2 algorithm D with 32-bit digits.
  const int shift = std::countl_zero(den.limbs_.back());
  const BigInt u = num << static_cast<std::size_t>(shift);
  const BigInt v = den << static_cast<std::size_t>(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // u has m+n+1 digits
  const std::vector<std::uint32_t>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate qhat = (un[j+n]*B + un[j+n-1]) / vn[n-1].
    const std::uint64_t numerator =
        (std::uint64_t{un[j + n]} << 32) | un[j + n - 1];
    std::uint64_t qhat = numerator / vn[n - 1];
    std::uint64_t rhat = numerator % vn[n - 1];

    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply-subtract: un[j..j+n] -= qhat * vn.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                             static_cast<std::int64_t>(p & 0xffffffffull) -
                             borrow;
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = t < 0 ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    un[j + n] = static_cast<std::uint32_t>(t);

    if (t < 0) {
      // qhat was one too large: add back.
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s = std::uint64_t{un[i + j]} + vn[i] + c;
        un[i + j] = static_cast<std::uint32_t>(s);
        c = s >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + c);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  q.trim();
  BigInt r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = r >> static_cast<std::size_t>(shift);
  return {q, r};
}

BigInt BigInt::modexp(const BigInt& base, const BigInt& exp,
                      const BigInt& mod) {
  if (mod.is_zero()) throw std::domain_error("modexp: zero modulus");
  if (mod.is_one()) return BigInt{};
  // Montgomery arithmetic needs an odd modulus (all RSA/DSA/EC moduli are);
  // tiny or even moduli take the schoolbook path.
  if (mod.is_odd() && mod.limbs_.size() >= 2) {
    return modexp_montgomery(base, exp, mod);
  }
  BigInt result{1};
  BigInt b = base % mod;
  const std::size_t nbits = exp.bit_length();
  for (std::size_t i = 0; i < nbits; ++i) {
    if (exp.bit(i)) result = (result * b) % mod;
    b = (b * b) % mod;
  }
  return result;
}

BigInt BigInt::modexp_montgomery(const BigInt& base, const BigInt& exp,
                                 const BigInt& mod) {
  const std::size_t L = mod.limbs_.size();
  const std::vector<std::uint32_t>& n = mod.limbs_;

  // m' = -n^{-1} mod 2^32 via Newton iteration (n odd).
  std::uint32_t inv = n[0];
  for (int i = 0; i < 5; ++i) inv *= 2u - n[0] * inv;
  const std::uint32_t mprime = ~inv + 1u;  // -inv mod 2^32

  // CIOS Montgomery multiplication: t = a*b*R^{-1} mod n, R = 2^(32L).
  // Operands are L-limb vectors already reduced mod n.
  std::vector<std::uint32_t> t(L + 2);
  const auto mont_mul = [&](const std::vector<std::uint32_t>& a,
                            const std::vector<std::uint32_t>& b,
                            std::vector<std::uint32_t>& out) {
    std::fill(t.begin(), t.end(), 0u);
    for (std::size_t i = 0; i < L; ++i) {
      // t += a * b[i]
      std::uint64_t carry = 0;
      const std::uint64_t bi = b[i];
      for (std::size_t j = 0; j < L; ++j) {
        const std::uint64_t cur = t[j] + a[j] * bi + carry;
        t[j] = static_cast<std::uint32_t>(cur);
        carry = cur >> 32;
      }
      std::uint64_t cur = t[L] + carry;
      t[L] = static_cast<std::uint32_t>(cur);
      t[L + 1] = static_cast<std::uint32_t>(cur >> 32);

      // t = (t + m*n) / 2^32 with m chosen so the low limb cancels.
      const std::uint64_t m = static_cast<std::uint32_t>(t[0] * mprime);
      cur = t[0] + m * n[0];
      carry = cur >> 32;
      for (std::size_t j = 1; j < L; ++j) {
        cur = t[j] + m * n[j] + carry;
        t[j - 1] = static_cast<std::uint32_t>(cur);
        carry = cur >> 32;
      }
      cur = t[L] + carry;
      t[L - 1] = static_cast<std::uint32_t>(cur);
      t[L] = t[L + 1] + static_cast<std::uint32_t>(cur >> 32);
      t[L + 1] = 0;
    }
    // Conditional final subtraction: t may be in [0, 2n).
    bool ge = t[L] != 0;
    if (!ge) {
      ge = true;
      for (std::size_t j = L; j-- > 0;) {
        if (t[j] != n[j]) {
          ge = t[j] > n[j];
          break;
        }
      }
    }
    if (ge) {
      std::int64_t borrow = 0;
      for (std::size_t j = 0; j < L; ++j) {
        const std::int64_t d = static_cast<std::int64_t>(t[j]) - n[j] - borrow;
        out[j] = static_cast<std::uint32_t>(d);
        borrow = d < 0 ? 1 : 0;
      }
    } else {
      std::copy_n(t.begin(), L, out.begin());
    }
  };

  const auto to_limbs = [&](const BigInt& v) {
    std::vector<std::uint32_t> out = v.limbs_;
    out.resize(L, 0u);
    return out;
  };

  // R mod n and R^2 mod n via plain division (one-time setup).
  const BigInt r = BigInt{1} << (32 * L);
  const BigInt r_mod = r % mod;
  const BigInt r2_mod = (r_mod * r_mod) % mod;

  std::vector<std::uint32_t> base_m(L), acc(L), tmp(L);
  const std::vector<std::uint32_t> r2 = to_limbs(r2_mod);
  const std::vector<std::uint32_t> base_plain = to_limbs(base % mod);
  mont_mul(base_plain, r2, base_m);  // base * R mod n
  acc = to_limbs(r_mod);             // 1 * R mod n

  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    mont_mul(acc, acc, tmp);
    acc.swap(tmp);
    if (exp.bit(i)) {
      mont_mul(acc, base_m, tmp);
      acc.swap(tmp);
    }
  }

  // Convert out of Montgomery form: multiply by 1.
  std::vector<std::uint32_t> one(L, 0u);
  one[0] = 1u;
  mont_mul(acc, one, tmp);

  BigInt result;
  result.limbs_ = std::move(tmp);
  result.trim();
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::modinv(const BigInt& a, const BigInt& m) {
  // Extended Euclid with explicit sign tracking (values stay non-negative).
  BigInt r0 = m, r1 = a % m;
  BigInt t0{}, t1{1};
  bool t0_neg = false, t1_neg = false;

  while (!r1.is_zero()) {
    auto [q, r2] = divmod(r0, r1);
    // t2 = t0 - q * t1 with sign handling
    const BigInt qt1 = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // same sign: t0 - q*t1 may flip sign
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      // opposite signs: magnitudes add
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }

  if (!r0.is_one()) throw std::domain_error("modinv: not invertible");
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

BigInt BigInt::random_below(RandomSource& rng, const BigInt& bound) {
  if (bound.is_zero()) {
    throw std::invalid_argument("random_below: zero bound");
  }
  const std::size_t nbytes = (bound.bit_length() + 7) / 8;
  for (;;) {
    BigInt candidate = from_bytes_be(rng.bytes(nbytes));
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_bits(RandomSource& rng, std::size_t bits) {
  if (bits == 0) throw std::invalid_argument("random_bits: zero bits");
  const std::size_t nbytes = (bits + 7) / 8;
  Bytes raw = rng.bytes(nbytes);
  // Clear excess leading bits, then force the top bit.
  const std::size_t excess = nbytes * 8 - bits;
  raw[0] = static_cast<std::uint8_t>(raw[0] & (0xffu >> excess));
  raw[0] |= static_cast<std::uint8_t>(0x80u >> excess);
  return from_bytes_be(raw);
}

bool is_probable_prime(const BigInt& n, RandomSource& rng, int rounds) {
  static const std::uint32_t kSmallPrimes[] = {
      2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
      53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113};

  if (n < BigInt{2}) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigInt bp{p};
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }

  // n - 1 = d * 2^s with d odd
  const BigInt n_minus_1 = n - BigInt{1};
  BigInt d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }

  const BigInt two{2};
  const BigInt n_minus_3 = n - BigInt{3};
  for (int round = 0; round < rounds; ++round) {
    // a uniform in [2, n-2]
    const BigInt a = BigInt::random_below(rng, n_minus_3) + two;
    BigInt x = BigInt::modexp(a, d, n);
    if (x.is_one() || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt generate_prime(RandomSource& rng, std::size_t bits) {
  if (bits < 8) throw std::invalid_argument("generate_prime: bits too small");
  const std::size_t nbytes = (bits + 7) / 8;
  const std::size_t excess = nbytes * 8 - bits;
  for (;;) {
    Bytes raw = rng.bytes(nbytes);
    raw[0] = static_cast<std::uint8_t>(raw[0] & (0xffu >> excess));
    // Top two bits set (so p*q of two such primes has exactly 2*bits bits)
    // and odd.
    raw[0] |= static_cast<std::uint8_t>(0x80u >> excess);
    const std::size_t second = bits - 2;  // bit index from LSB
    raw[nbytes - 1 - second / 8] |=
        static_cast<std::uint8_t>(1u << (second % 8));
    raw[nbytes - 1] |= 1u;
    const BigInt candidate = BigInt::from_bytes_be(raw);
    if (is_probable_prime(candidate, rng, 24)) return candidate;
  }
}

}  // namespace alpha::crypto
