#include "crypto/dsa.hpp"

#include <stdexcept>

namespace alpha::crypto {

namespace {

// z = leftmost min(N, outlen) bits of H(m), as an integer (FIPS 186-4 §4.6).
BigInt hash_to_z(HashAlgo algo, ByteView message, const BigInt& q) {
  const Digest h = hash(algo, message);
  const std::size_t n_bits = q.bit_length();
  BigInt z = BigInt::from_bytes_be(h.view());
  const std::size_t h_bits = h.size() * 8;
  if (h_bits > n_bits) z = z >> (h_bits - n_bits);
  return z;
}

}  // namespace

Bytes DsaSignature::encode(std::size_t q_bytes) const {
  Bytes out = r.to_bytes_be(q_bytes);
  const Bytes s_bytes = s.to_bytes_be(q_bytes);
  out.insert(out.end(), s_bytes.begin(), s_bytes.end());
  return out;
}

DsaSignature DsaSignature::decode(ByteView data) {
  if (data.size() % 2 != 0 || data.empty()) {
    throw std::invalid_argument("DsaSignature: bad encoding length");
  }
  const std::size_t half = data.size() / 2;
  return {BigInt::from_bytes_be(data.first(half)),
          BigInt::from_bytes_be(data.subspan(half))};
}

DsaParams dsa_generate_params(RandomSource& rng, std::size_t l_bits,
                              std::size_t n_bits) {
  if (n_bits >= l_bits) {
    throw std::invalid_argument("dsa_generate_params: need N < L");
  }
  const BigInt one{1};
  for (;;) {
    const BigInt q = generate_prime(rng, n_bits);
    const BigInt two_q = q << 1;

    // Search p = k*2q + 1 of exactly l_bits around random starting points.
    for (int attempt = 0; attempt < 4096; ++attempt) {
      BigInt x = BigInt::random_bits(rng, l_bits);
      // p := x - (x mod 2q) + 1  ==>  p = 1 (mod 2q)
      BigInt p = (x - (x % two_q)) + one;
      if (p.bit_length() != l_bits) continue;
      if (!is_probable_prime(p, rng, 24)) continue;

      // g = h^((p-1)/q) mod p for the smallest h >= 2 with g != 1.
      const BigInt exp = (p - one) / q;
      for (std::uint64_t h = 2; h < 100; ++h) {
        const BigInt g = BigInt::modexp(BigInt{h}, exp, p);
        if (!g.is_one()) return {p, q, g};
      }
    }
    // Extremely unlikely: retry with a fresh q.
  }
}

DsaPrivateKey dsa_generate_key(RandomSource& rng, DsaParams params) {
  const BigInt one{1};
  const BigInt x = BigInt::random_below(rng, params.q - one) + one;
  const BigInt y = BigInt::modexp(params.g, x, params.p);
  DsaPrivateKey key;
  key.pub = {std::move(params), y};
  key.x = x;
  return key;
}

DsaSignature dsa_sign(const DsaPrivateKey& key, HashAlgo algo,
                      ByteView message, RandomSource& rng) {
  const DsaParams& pr = key.pub.params;
  const BigInt one{1};
  const BigInt z = hash_to_z(algo, message, pr.q);
  for (;;) {
    const BigInt k = BigInt::random_below(rng, pr.q - one) + one;
    const BigInt r = BigInt::modexp(pr.g, k, pr.p) % pr.q;
    if (r.is_zero()) continue;
    const BigInt kinv = BigInt::modinv(k, pr.q);
    const BigInt s = (kinv * ((z + key.x * r) % pr.q)) % pr.q;
    if (s.is_zero()) continue;
    return {r, s};
  }
}

bool dsa_verify(const DsaPublicKey& key, HashAlgo algo, ByteView message,
                const DsaSignature& sig) {
  const DsaParams& pr = key.params;
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (!(sig.r < pr.q) || !(sig.s < pr.q)) return false;

  BigInt w;
  try {
    w = BigInt::modinv(sig.s, pr.q);
  } catch (const std::domain_error&) {
    return false;
  }
  const BigInt z = hash_to_z(algo, message, pr.q);
  const BigInt u1 = (z * w) % pr.q;
  const BigInt u2 = (sig.r * w) % pr.q;
  const BigInt v =
      ((BigInt::modexp(pr.g, u1, pr.p) * BigInt::modexp(key.y, u2, pr.p)) %
       pr.p) %
      pr.q;
  return v == sig.r;
}

}  // namespace alpha::crypto
