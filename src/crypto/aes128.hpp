// AES-128 block cipher (FIPS 197).
//
// Used as the compression primitive of the Matyas-Meyer-Oseas hash (see
// mmo.hpp), mirroring the paper's WSN evaluation which runs MMO on the
// CC2430's AES-128 hardware (§4.1.3). This is a straightforward table-free
// software implementation: S-box lookups plus xtime-based MixColumns. It is
// not constant-time with respect to cache effects; acceptable here because
// MMO keys are public hash state, not secrets.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace alpha::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  /// Expands the 16-byte key. Throws std::invalid_argument on wrong size.
  explicit Aes128(ByteView key);

  /// Encrypts/decrypts exactly one 16-byte block, in place allowed.
  void encrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const noexcept;
  void decrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const noexcept;

 private:
  // Round keys, 4 words per round plus the initial key.
  std::array<std::uint32_t, 4 * (kRounds + 1)> round_keys_;
};

}  // namespace alpha::crypto
