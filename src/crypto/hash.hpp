// Hash-function abstraction.
//
// ALPHA is parameterized over a cryptographic hash H (paper §2.1: "e.g. SHA-1
// or a block-cipher-based hash function"). The protocol engines, hash chains
// and Merkle trees all work against this interface so the same code runs with
// SHA-1 (the paper's WMN/mobile evaluation), AES-MMO (the WSN evaluation,
// §4.1.3) and SHA-256 (modern profile).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "crypto/bytes.hpp"
#include "crypto/digest.hpp"

namespace alpha::crypto {

enum class HashAlgo : std::uint8_t {
  kSha1 = 1,    // 20-byte digests; paper's default (Tables 4-6, Figs. 5-6)
  kSha256 = 2,  // 32-byte digests; modern drop-in
  kMmo128 = 3,  // 16-byte AES-128 Matyas-Meyer-Oseas; WSN profile (§4.1.3)
};

std::string_view to_string(HashAlgo algo) noexcept;

/// Digest size in bytes for `algo` (the paper's `h`).
std::size_t digest_size(HashAlgo algo) noexcept;

/// Incremental hash context. Create via make_hasher(); reusable after reset().
class Hasher {
 public:
  virtual ~Hasher() = default;

  Hasher(const Hasher&) = delete;
  Hasher& operator=(const Hasher&) = delete;

  virtual void reset() noexcept = 0;
  virtual void update(ByteView data) noexcept = 0;
  /// Finalizes and returns the digest; the context must be reset() before
  /// further use. Increments the global HashOpCounter.
  virtual Digest finalize() noexcept = 0;

  virtual std::size_t digest_size() const noexcept = 0;
  virtual HashAlgo algo() const noexcept = 0;

 protected:
  Hasher() = default;
};

std::unique_ptr<Hasher> make_hasher(HashAlgo algo);

/// One-shot convenience: H(data).
Digest hash(HashAlgo algo, ByteView data);

/// One-shot convenience for concatenated input: H(a | b [| c]).
Digest hash2(HashAlgo algo, ByteView a, ByteView b);
Digest hash3(HashAlgo algo, ByteView a, ByteView b, ByteView c);

}  // namespace alpha::crypto
