// RSA signatures (PKCS#1 v1.5, RSASSA style).
//
// Baseline for Table 4 ("RSA 1024 sign/verify") and the signature option for
// the protected bootstrap of §3.4 (signing hash-chain anchors). Keygen uses
// e = 65537 with two equal-size primes; signing uses the CRT. Deterministic
// when driven by an HmacDrbg, which the tests and benches rely on.
#pragma once

#include "crypto/bignum.hpp"
#include "crypto/bytes.hpp"
#include "crypto/hash.hpp"
#include "crypto/random.hpp"

namespace alpha::crypto {

struct RsaPublicKey {
  BigInt n;  // modulus
  BigInt e;  // public exponent

  /// Modulus size in bytes (= signature size).
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  BigInt d;   // private exponent
  BigInt p;   // prime factor
  BigInt q;   // prime factor
  BigInt dp;  // d mod (p-1)
  BigInt dq;  // d mod (q-1)
  BigInt qinv;  // q^-1 mod p
};

/// Generates an RSA key pair with a modulus of `bits` bits (e.g. 1024 to
/// match the paper's baseline; >= 512, even).
RsaPrivateKey rsa_generate(RandomSource& rng, std::size_t bits);

/// Signs H(message) with EMSA-PKCS1-v1_5 (DigestInfo for `algo`; SHA-1 or
/// SHA-256 only). Returns a modulus-size signature.
Bytes rsa_sign(const RsaPrivateKey& key, HashAlgo algo, ByteView message);

/// Verifies an EMSA-PKCS1-v1_5 signature.
bool rsa_verify(const RsaPublicKey& key, HashAlgo algo, ByteView message,
                ByteView signature);

}  // namespace alpha::crypto
