#include "crypto/random.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "crypto/counter.hpp"
#include "crypto/mac.hpp"
#include "crypto/sha256.hpp"

namespace alpha::crypto {

Bytes RandomSource::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

std::uint64_t RandomSource::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("uniform: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t v;
  do {
    std::uint8_t buf[8];
    fill(buf);
    v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | buf[i];
  } while (v >= limit);
  return v % bound;
}

HmacDrbg::HmacDrbg(ByteView seed)
    : key_(Sha256::kDigestSize, 0x00), v_(Sha256::kDigestSize, 0x01) {
  update(seed);
}

HmacDrbg::HmacDrbg(std::uint64_t seed) : HmacDrbg([&] {
      Bytes s(8);
      for (int i = 0; i < 8; ++i) {
        s[i] = static_cast<std::uint8_t>(seed >> (56 - 8 * i));
      }
      return s;
    }()) {}

void HmacDrbg::update(ByteView material) {
  const CounterPause pause;  // DRBG hashing is not protocol work
  // K = HMAC(K, V || 0x00 || material); V = HMAC(K, V)
  Bytes msg = concat({ByteView{v_}, ByteView{}, material});
  msg.insert(msg.begin() + static_cast<std::ptrdiff_t>(v_.size()), 0x00);
  key_ = hmac(HashAlgo::kSha256, key_, msg).bytes();
  v_ = hmac(HashAlgo::kSha256, key_, v_).bytes();
  if (!material.empty()) {
    msg = concat({ByteView{v_}, ByteView{}, material});
    msg.insert(msg.begin() + static_cast<std::ptrdiff_t>(v_.size()), 0x01);
    key_ = hmac(HashAlgo::kSha256, key_, msg).bytes();
    v_ = hmac(HashAlgo::kSha256, key_, v_).bytes();
  }
}

void HmacDrbg::reseed(ByteView material) { update(material); }

void HmacDrbg::reset(std::uint64_t seed) {
  key_.assign(Sha256::kDigestSize, 0x00);
  v_.assign(Sha256::kDigestSize, 0x01);
  Bytes s(8);
  for (int i = 0; i < 8; ++i) {
    s[i] = static_cast<std::uint8_t>(seed >> (56 - 8 * i));
  }
  update(s);
}

void HmacDrbg::fill(std::span<std::uint8_t> out) {
  const CounterPause pause;  // DRBG hashing is not protocol work
  std::size_t produced = 0;
  while (produced < out.size()) {
    v_ = hmac(HashAlgo::kSha256, key_, v_).bytes();
    const std::size_t take =
        std::min(v_.size(), out.size() - produced);
    std::copy_n(v_.begin(), take, out.begin() + static_cast<std::ptrdiff_t>(produced));
    produced += take;
  }
  update({});
}

void SystemRandom::fill(std::span<std::uint8_t> out) {
  std::FILE* f = std::fopen("/dev/urandom", "rb");
  if (f == nullptr) {
    throw std::runtime_error("SystemRandom: cannot open /dev/urandom");
  }
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (got != out.size()) {
    throw std::runtime_error("SystemRandom: short read from /dev/urandom");
  }
}

}  // namespace alpha::crypto
