// AES-MMO compression via AES-NI: per-block AES-128 key schedule with
// aeskeygenassist (MMO reloads the chaining value as the key every block)
// followed by ten aesenc rounds and the MMO feed-forward XOR.
// Compiled with -maes -msse4.1 and only ever called behind the runtime
// cpu_has_aes_ni() check in MmoHash::compress().
#include "crypto/mmo.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace alpha::crypto {

namespace {
inline __m128i expand_round_key(__m128i key, __m128i keygened) noexcept {
  keygened = _mm_shuffle_epi32(keygened, _MM_SHUFFLE(3, 3, 3, 3));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, keygened);
}
}  // namespace

void MmoHash::compress_ni(State& state, const std::uint8_t* block) noexcept {
  __m128i rk[11];
  rk[0] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data()));
  rk[1] = expand_round_key(rk[0], _mm_aeskeygenassist_si128(rk[0], 0x01));
  rk[2] = expand_round_key(rk[1], _mm_aeskeygenassist_si128(rk[1], 0x02));
  rk[3] = expand_round_key(rk[2], _mm_aeskeygenassist_si128(rk[2], 0x04));
  rk[4] = expand_round_key(rk[3], _mm_aeskeygenassist_si128(rk[3], 0x08));
  rk[5] = expand_round_key(rk[4], _mm_aeskeygenassist_si128(rk[4], 0x10));
  rk[6] = expand_round_key(rk[5], _mm_aeskeygenassist_si128(rk[5], 0x20));
  rk[7] = expand_round_key(rk[6], _mm_aeskeygenassist_si128(rk[6], 0x40));
  rk[8] = expand_round_key(rk[7], _mm_aeskeygenassist_si128(rk[7], 0x80));
  rk[9] = expand_round_key(rk[8], _mm_aeskeygenassist_si128(rk[8], 0x1B));
  rk[10] = expand_round_key(rk[9], _mm_aeskeygenassist_si128(rk[9], 0x36));

  const __m128i m =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  __m128i x = _mm_xor_si128(m, rk[0]);
  x = _mm_aesenc_si128(x, rk[1]);
  x = _mm_aesenc_si128(x, rk[2]);
  x = _mm_aesenc_si128(x, rk[3]);
  x = _mm_aesenc_si128(x, rk[4]);
  x = _mm_aesenc_si128(x, rk[5]);
  x = _mm_aesenc_si128(x, rk[6]);
  x = _mm_aesenc_si128(x, rk[7]);
  x = _mm_aesenc_si128(x, rk[8]);
  x = _mm_aesenc_si128(x, rk[9]);
  x = _mm_aesenclast_si128(x, rk[10]);

  x = _mm_xor_si128(x, m);  // MMO feed-forward
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state.data()), x);
}

}  // namespace alpha::crypto

#endif  // x86_64
