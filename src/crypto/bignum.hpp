// Arbitrary-precision unsigned integers.
//
// Minimal bignum for the public-key baselines (Table 4: RSA-1024 / DSA-1024)
// and the protected bootstrap of §3.4. Non-negative values only — RSA and DSA
// arithmetic never needs negative intermediates except inside the extended
// Euclid, which tracks signs itself. 32-bit limbs, little-endian limb order,
// 64-bit intermediates; schoolbook multiplication and Knuth algorithm D
// division, which are ample for 1024-2048 bit operands.
//
// Not constant-time. The baselines exist for cost-shape comparison against
// ALPHA, exactly like the paper uses them; do not reuse for real keys.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/random.hpp"

namespace alpha::crypto {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  explicit BigInt(std::uint64_t v);

  /// Big-endian byte-string decoding (leading zeros allowed).
  static BigInt from_bytes_be(ByteView bytes);
  /// Hex decoding (no 0x prefix, case-insensitive, odd length allowed).
  static BigInt from_hex(std::string_view hex);

  /// Big-endian encoding, left-padded with zeros to at least `min_len` bytes.
  Bytes to_bytes_be(std::size_t min_len = 0) const;
  std::string to_hex() const;

  bool is_zero() const noexcept { return limbs_.empty(); }
  bool is_odd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1u); }
  bool is_one() const noexcept {
    return limbs_.size() == 1 && limbs_[0] == 1u;
  }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const noexcept;
  /// Bit i (LSB = 0); false beyond bit_length().
  bool bit(std::size_t i) const noexcept;

  friend bool operator==(const BigInt& a, const BigInt& b) noexcept {
    return a.limbs_ == b.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& a,
                                          const BigInt& b) noexcept;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  /// Requires a >= b; throws std::underflow_error otherwise.
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  friend BigInt operator<<(const BigInt& a, std::size_t bits);
  friend BigInt operator>>(const BigInt& a, std::size_t bits);

  /// Quotient and remainder; throws std::domain_error on division by zero.
  static std::pair<BigInt, BigInt> divmod(const BigInt& num,
                                          const BigInt& den);
  friend BigInt operator/(const BigInt& a, const BigInt& b) {
    return divmod(a, b).first;
  }
  friend BigInt operator%(const BigInt& a, const BigInt& b) {
    return divmod(a, b).second;
  }

  /// (base ^ exp) mod mod; mod must be nonzero.
  static BigInt modexp(const BigInt& base, const BigInt& exp,
                       const BigInt& mod);
  /// Multiplicative inverse of a mod m; throws std::domain_error if
  /// gcd(a, m) != 1.
  static BigInt modinv(const BigInt& a, const BigInt& m);
  static BigInt gcd(BigInt a, BigInt b);

  /// Uniform value in [0, bound), bound > 0.
  static BigInt random_below(RandomSource& rng, const BigInt& bound);
  /// Uniform `bits`-bit value with the top bit forced to 1 (bits >= 1).
  static BigInt random_bits(RandomSource& rng, std::size_t bits);

 private:
  void trim() noexcept;

  /// Montgomery-form exponentiation (CIOS); requires an odd modulus.
  static BigInt modexp_montgomery(const BigInt& base, const BigInt& exp,
                                  const BigInt& mod);

  std::vector<std::uint32_t> limbs_;  // little-endian; empty == 0
};

/// Miller-Rabin with `rounds` random bases (error prob <= 4^-rounds).
bool is_probable_prime(const BigInt& n, RandomSource& rng, int rounds = 32);

/// Random prime of exactly `bits` bits (top two bits set so products of two
/// such primes have exactly 2*bits bits, as RSA keygen requires).
BigInt generate_prime(RandomSource& rng, std::size_t bits);

}  // namespace alpha::crypto
