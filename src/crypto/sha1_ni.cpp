// SHA-1 compression via the x86 SHA extensions (sha1rnds4/sha1nexte/
// sha1msg1/sha1msg2), single-block form of the well-known Intel schedule.
// Compiled with -msha -msse4.1 and only ever called behind the runtime
// cpu_has_sha_ni() check in Sha1::compress().
#include "crypto/sha1.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace alpha::crypto {

void Sha1::compress_ni(State& state, const std::uint8_t* block) noexcept {
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0001020304050607ULL, 0x08090a0b0c0d0e0fULL);

  __m128i abcd = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data()));
  __m128i e0 = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  abcd = _mm_shuffle_epi32(abcd, 0x1B);

  const __m128i abcd_save = abcd;
  const __m128i e0_save = e0;
  __m128i e1;

  // Rounds 0-3
  __m128i msg0 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 0));
  msg0 = _mm_shuffle_epi8(msg0, kByteSwap);
  e0 = _mm_add_epi32(e0, msg0);
  e1 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);

  // Rounds 4-7
  __m128i msg1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16));
  msg1 = _mm_shuffle_epi8(msg1, kByteSwap);
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);

  // Rounds 8-11
  __m128i msg2 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32));
  msg2 = _mm_shuffle_epi8(msg2, kByteSwap);
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  // Rounds 12-15
  __m128i msg3 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48));
  msg3 = _mm_shuffle_epi8(msg3, kByteSwap);
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  // Rounds 16-19
  e0 = _mm_sha1nexte_epu32(e0, msg0);
  e1 = abcd;
  msg1 = _mm_sha1msg2_epu32(msg1, msg0);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
  msg3 = _mm_sha1msg1_epu32(msg3, msg0);
  msg2 = _mm_xor_si128(msg2, msg0);

  // Rounds 20-23
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);
  msg3 = _mm_xor_si128(msg3, msg1);

  // Rounds 24-27
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  // Rounds 28-31
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  // Rounds 32-35
  e0 = _mm_sha1nexte_epu32(e0, msg0);
  e1 = abcd;
  msg1 = _mm_sha1msg2_epu32(msg1, msg0);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
  msg3 = _mm_sha1msg1_epu32(msg3, msg0);
  msg2 = _mm_xor_si128(msg2, msg0);

  // Rounds 36-39
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);
  msg3 = _mm_xor_si128(msg3, msg1);

  // Rounds 40-43
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  // Rounds 44-47
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  // Rounds 48-51
  e0 = _mm_sha1nexte_epu32(e0, msg0);
  e1 = abcd;
  msg1 = _mm_sha1msg2_epu32(msg1, msg0);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
  msg3 = _mm_sha1msg1_epu32(msg3, msg0);
  msg2 = _mm_xor_si128(msg2, msg0);

  // Rounds 52-55
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);
  msg3 = _mm_xor_si128(msg3, msg1);

  // Rounds 56-59
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  // Rounds 60-63
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  // Rounds 64-67
  e0 = _mm_sha1nexte_epu32(e0, msg0);
  e1 = abcd;
  msg1 = _mm_sha1msg2_epu32(msg1, msg0);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
  msg3 = _mm_sha1msg1_epu32(msg3, msg0);
  msg2 = _mm_xor_si128(msg2, msg0);

  // Rounds 68-71
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
  msg3 = _mm_xor_si128(msg3, msg1);

  // Rounds 72-75
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);

  // Rounds 76-79
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

  // Fold into the incoming chaining value.
  e0 = _mm_sha1nexte_epu32(e0, e0_save);
  abcd = _mm_add_epi32(abcd, abcd_save);

  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state.data()), abcd);
  state[4] = static_cast<std::uint32_t>(_mm_extract_epi32(e0, 3));
}

}  // namespace alpha::crypto

#endif  // x86_64
