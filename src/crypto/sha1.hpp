// SHA-1 (FIPS 180-4).
//
// The paper's default hash: 20-byte digests used for hash-chain elements,
// MACs and Merkle-tree nodes in the mobile and WMN evaluations (Tables 4-6).
// SHA-1 is cryptographically broken for collision resistance today; it is
// implemented here for fidelity to the 2008 evaluation. Production profiles
// should select HashAlgo::kSha256.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/hash.hpp"

namespace alpha::crypto {

class Sha1 final : public Hasher {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  /// Chaining value of the compression function (a..e, FIPS 180-4 §6.1).
  using State = std::array<std::uint32_t, 5>;
  static constexpr State kInitState = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                                       0x10325476u, 0xC3D2E1F0u};

  Sha1() noexcept { reset(); }

  void reset() noexcept override;
  void update(ByteView data) noexcept override;
  Digest finalize() noexcept override;

  std::size_t digest_size() const noexcept override { return kDigestSize; }
  HashAlgo algo() const noexcept override { return HashAlgo::kSha1; }

  /// One compression-function application: folds a 64-byte block into
  /// `state`. Dispatches to SHA-NI when available and enabled (cpu.hpp).
  static void compress(State& state, const std::uint8_t* block) noexcept;
  /// Portable reference compression; also the pre-acceleration baseline.
  static void compress_scalar(State& state, const std::uint8_t* block) noexcept;

  /// Restarts this context from a precomputed chaining value with
  /// `bytes_consumed` bytes (a whole number of blocks) already folded in.
  /// The replaced input is NOT re-counted by HashOpCounter; callers caching
  /// midstates (HMAC ipad/opad) account for it themselves.
  void resume(const State& state, std::uint64_t bytes_consumed) noexcept;

 private:
  static void compress_ni(State& state, const std::uint8_t* block) noexcept;

  State state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::uint64_t total_len_ = 0;  // bytes consumed
  std::size_t buffer_len_ = 0;
};

}  // namespace alpha::crypto
