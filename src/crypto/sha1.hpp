// SHA-1 (FIPS 180-4).
//
// The paper's default hash: 20-byte digests used for hash-chain elements,
// MACs and Merkle-tree nodes in the mobile and WMN evaluations (Tables 4-6).
// SHA-1 is cryptographically broken for collision resistance today; it is
// implemented here for fidelity to the 2008 evaluation. Production profiles
// should select HashAlgo::kSha256.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/hash.hpp"

namespace alpha::crypto {

class Sha1 final : public Hasher {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1() noexcept { reset(); }

  void reset() noexcept override;
  void update(ByteView data) noexcept override;
  Digest finalize() noexcept override;

  std::size_t digest_size() const noexcept override { return kDigestSize; }
  HashAlgo algo() const noexcept override { return HashAlgo::kSha1; }

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::uint64_t total_len_ = 0;  // bytes consumed
  std::size_t buffer_len_ = 0;
};

}  // namespace alpha::crypto
