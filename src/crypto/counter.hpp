// Hash-operation accounting.
//
// Table 1 of the paper counts the hash computations each role (signer,
// verifier, relay) spends per processed message, split into signature/MAC
// work, hash-chain creation, hash-chain verification and (n)ack handling.
// The protocol engines account these categories explicitly; this global
// counter provides an independent cross-check: every Hasher::finalize() and
// every HMAC computation bumps it, so tests can assert that the engines'
// bookkeeping matches what the crypto layer actually executed.
#pragma once

#include <cstdint>

namespace alpha::crypto {

struct HashOpCounts {
  std::uint64_t hash_finalizations = 0;  // number of digest computations
  std::uint64_t bytes_hashed = 0;        // total input bytes consumed

  HashOpCounts operator-(const HashOpCounts& rhs) const noexcept {
    return {hash_finalizations - rhs.hash_finalizations,
            bytes_hashed - rhs.bytes_hashed};
  }
};

/// Per-thread counter; cheap enough to stay always-on.
/// Accessors are defined out-of-line (counter.cpp): GCC's TLS wrapper for
/// in-header accesses to extern thread_locals trips UBSan's null checks.
class HashOpCounter {
 public:
  static HashOpCounts snapshot() noexcept;
  static void reset() noexcept;

  static void record_update(std::size_t n) noexcept;
  static void record_finalize() noexcept;

  static void set_paused(bool paused) noexcept;
  static bool paused() noexcept;

 private:
  static thread_local HashOpCounts tls_;
  static thread_local bool paused_;
};

/// RAII pause: hashing inside the scope is not accounted. Used by the DRBG
/// so random-number generation never distorts protocol hash counts.
class CounterPause {
 public:
  CounterPause() noexcept : prev_(HashOpCounter::paused()) {
    HashOpCounter::set_paused(true);
  }
  ~CounterPause() { HashOpCounter::set_paused(prev_); }
  CounterPause(const CounterPause&) = delete;
  CounterPause& operator=(const CounterPause&) = delete;

 private:
  bool prev_;
};

/// RAII scope measuring the hash operations performed inside it.
class ScopedHashOps {
 public:
  ScopedHashOps() noexcept : start_(HashOpCounter::snapshot()) {}
  HashOpCounts delta() const noexcept {
    return HashOpCounter::snapshot() - start_;
  }

 private:
  HashOpCounts start_;
};

}  // namespace alpha::crypto
