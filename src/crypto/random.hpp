// Random sources.
//
// Everything random in this code base flows through RandomSource so tests and
// benchmarks can be fully deterministic. Two implementations:
//
//  * HmacDrbg      - deterministic HMAC-SHA-256 DRBG (NIST SP 800-90A shaped;
//                    simplified: no personalization/prediction resistance).
//                    Seeded explicitly; used for hash-chain seeds, pre-ack
//                    secrets, workload generation, and key generation in
//                    tests/benches.
//  * SystemRandom  - /dev/urandom, for real deployments.
#pragma once

#include <cstdint>
#include <memory>

#include "crypto/bytes.hpp"

namespace alpha::crypto {

class RandomSource {
 public:
  virtual ~RandomSource() = default;

  RandomSource(const RandomSource&) = delete;
  RandomSource& operator=(const RandomSource&) = delete;

  /// Fills `out` with random bytes.
  virtual void fill(std::span<std::uint8_t> out) = 0;

  /// Convenience: n fresh random bytes.
  Bytes bytes(std::size_t n);

  /// Uniform integer in [0, bound) via rejection sampling. bound > 0.
  std::uint64_t uniform(std::uint64_t bound);

 protected:
  RandomSource() = default;
};

/// Deterministic DRBG: HMAC-SHA-256 in the SP 800-90A update/generate shape.
class HmacDrbg final : public RandomSource {
 public:
  explicit HmacDrbg(ByteView seed);
  /// Convenience constructor from a 64-bit seed (tests/benches).
  explicit HmacDrbg(std::uint64_t seed);

  void fill(std::span<std::uint8_t> out) override;

  /// Mixes additional entropy/material into the state.
  void reseed(ByteView material);

  /// Resets the state as if freshly constructed from `seed` (replay from a
  /// known point without reconstructing the owner).
  void reset(std::uint64_t seed);

 private:
  void update(ByteView material);

  Bytes key_;  // K
  Bytes v_;    // V
};

/// OS randomness (/dev/urandom). Throws std::runtime_error if unavailable.
class SystemRandom final : public RandomSource {
 public:
  SystemRandom() = default;
  void fill(std::span<std::uint8_t> out) override;
};

}  // namespace alpha::crypto
