// SHA-256 (FIPS 180-4).
//
// Modern 32-byte-digest profile. Not used by the 2008 paper's numbers but
// provided so deployments can swap the broken SHA-1 without touching protocol
// code (everything is parameterized over HashAlgo).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/hash.hpp"

namespace alpha::crypto {

class Sha256 final : public Hasher {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  /// Chaining value of the compression function (a..h, FIPS 180-4 §6.2).
  using State = std::array<std::uint32_t, 8>;
  static constexpr State kInitState = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u,
                                       0xa54ff53au, 0x510e527fu, 0x9b05688cu,
                                       0x1f83d9abu, 0x5be0cd19u};

  Sha256() noexcept { reset(); }

  void reset() noexcept override;
  void update(ByteView data) noexcept override;
  Digest finalize() noexcept override;

  std::size_t digest_size() const noexcept override { return kDigestSize; }
  HashAlgo algo() const noexcept override { return HashAlgo::kSha256; }

  /// One compression-function application: folds a 64-byte block into
  /// `state`. Dispatches to SHA-NI when available and enabled (cpu.hpp).
  static void compress(State& state, const std::uint8_t* block) noexcept;
  /// Portable reference compression; also the pre-acceleration baseline.
  static void compress_scalar(State& state, const std::uint8_t* block) noexcept;

  /// Restarts from a precomputed chaining value (see Sha1::resume).
  void resume(const State& state, std::uint64_t bytes_consumed) noexcept;

 private:
  static void compress_ni(State& state, const std::uint8_t* block) noexcept;

  State state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace alpha::crypto
