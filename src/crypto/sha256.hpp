// SHA-256 (FIPS 180-4).
//
// Modern 32-byte-digest profile. Not used by the 2008 paper's numbers but
// provided so deployments can swap the broken SHA-1 without touching protocol
// code (everything is parameterized over HashAlgo).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/hash.hpp"

namespace alpha::crypto {

class Sha256 final : public Hasher {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256() noexcept { reset(); }

  void reset() noexcept override;
  void update(ByteView data) noexcept override;
  Digest finalize() noexcept override;

  std::size_t digest_size() const noexcept override { return kDigestSize; }
  HashAlgo algo() const noexcept override { return HashAlgo::kSha256; }

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace alpha::crypto
