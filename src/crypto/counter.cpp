#include "crypto/counter.hpp"

namespace alpha::crypto {

thread_local HashOpCounts HashOpCounter::tls_{};
thread_local bool HashOpCounter::paused_ = false;

HashOpCounts HashOpCounter::snapshot() noexcept { return tls_; }

void HashOpCounter::reset() noexcept { tls_ = {}; }

void HashOpCounter::record_update(std::size_t n) noexcept {
  if (!paused_) tls_.bytes_hashed += n;
}

void HashOpCounter::record_finalize() noexcept {
  if (!paused_) ++tls_.hash_finalizations;
}

void HashOpCounter::set_paused(bool paused) noexcept { paused_ = paused; }

bool HashOpCounter::paused() noexcept { return paused_; }

}  // namespace alpha::crypto
