// CPU crypto-extension detection and runtime toggle.
//
// The scalar SHA-1/SHA-256/AES implementations stay as the portable
// reference; when the CPU provides SHA-NI / AES-NI the compression functions
// dispatch to single-block intrinsic backends instead (the paper's "as fast
// as the hash hardware allows" framing, §4.1.3 -- the CC2430's AES core is
// exactly such an accelerator). set_hw_acceleration(false) forces the scalar
// path: tests use it to cross-check both backends, benches use it to measure
// the pre-acceleration baseline.
#pragma once

#include <atomic>

namespace alpha::crypto {

/// CPUID results, cached at static-init time. False on non-x86 builds.
bool cpu_has_sha_ni() noexcept;
bool cpu_has_aes_ni() noexcept;

namespace detail {
inline std::atomic<bool> g_hw_enabled{true};
}  // namespace detail

/// Process-wide switch; acceleration is on by default where supported.
inline bool hw_acceleration_enabled() noexcept {
  return detail::g_hw_enabled.load(std::memory_order_relaxed);
}
inline void set_hw_acceleration(bool enabled) noexcept {
  detail::g_hw_enabled.store(enabled, std::memory_order_relaxed);
}

/// RAII scope forcing the scalar backends (for tests and baselines).
class ScopedScalarCrypto {
 public:
  ScopedScalarCrypto() noexcept : prev_(hw_acceleration_enabled()) {
    set_hw_acceleration(false);
  }
  ~ScopedScalarCrypto() { set_hw_acceleration(prev_); }
  ScopedScalarCrypto(const ScopedScalarCrypto&) = delete;
  ScopedScalarCrypto& operator=(const ScopedScalarCrypto&) = delete;

 private:
  bool prev_;
};

}  // namespace alpha::crypto
