// Fixed-capacity digest value type.
//
// Hash outputs in this code base range from 16 bytes (AES-MMO, the WSN hash of
// paper §4.1.3) over 20 bytes (SHA-1, the paper's default) to 32 bytes
// (SHA-256). A Digest stores up to 32 bytes inline with an explicit length, so
// digests can be passed and compared by value without heap traffic on the
// packet fast path.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>

#include "crypto/bytes.hpp"

namespace alpha::crypto {

class Digest {
 public:
  static constexpr std::size_t kMaxSize = 32;

  /// Empty digest (size 0). Distinct from any real hash output.
  constexpr Digest() noexcept : buf_{}, size_{0} {}

  /// Copies `data` (at most kMaxSize bytes, else throws std::length_error).
  explicit Digest(ByteView data) : buf_{}, size_{data.size()} {
    if (data.size() > kMaxSize) {
      throw std::length_error("Digest: input exceeds 32 bytes");
    }
    std::memcpy(buf_.data(), data.data(), data.size());
  }

  static Digest from_hex(std::string_view hex) {
    const Bytes raw = alpha::crypto::from_hex(hex);
    return Digest(ByteView{raw});
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const std::uint8_t* data() const noexcept { return buf_.data(); }

  ByteView view() const noexcept { return {buf_.data(), size_}; }
  Bytes bytes() const { return Bytes(buf_.begin(), buf_.begin() + size_); }
  std::string hex() const { return to_hex(view()); }

  /// Truncates to the first `n` bytes (n <= size). Used where a protocol
  /// profile carries shortened hash values.
  Digest truncated(std::size_t n) const {
    if (n > size_) throw std::length_error("Digest::truncated: n > size");
    return Digest(ByteView{buf_.data(), n});
  }

  /// Constant-time comparison; use for any secret-derived value.
  bool ct_equals(const Digest& other) const noexcept {
    return ct_equal(view(), other.view());
  }

  /// Non-secret ordering/equality (for containers and tests).
  friend bool operator==(const Digest& a, const Digest& b) noexcept {
    return a.size_ == b.size_ &&
           std::memcmp(a.buf_.data(), b.buf_.data(), a.size_) == 0;
  }
  friend std::strong_ordering operator<=>(const Digest& a,
                                          const Digest& b) noexcept {
    const int c = std::memcmp(a.buf_.data(), b.buf_.data(), kMaxSize);
    if (c != 0) return c < 0 ? std::strong_ordering::less
                             : std::strong_ordering::greater;
    return a.size_ <=> b.size_;
  }

 private:
  std::array<std::uint8_t, kMaxSize> buf_;
  std::size_t size_;
};

/// Hash functor for unordered containers keyed by Digest.
struct DigestHasher {
  std::size_t operator()(const Digest& d) const noexcept {
    // Digests are uniformly distributed; fold the first 8 bytes.
    std::uint64_t v = 0;
    std::memcpy(&v, d.data(), d.size() < 8 ? d.size() : 8);
    return static_cast<std::size_t>(v ^ (d.size() * 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace alpha::crypto
