#include "crypto/bytes.hpp"

#include <stdexcept>

namespace alpha::crypto {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ct_equal(ByteView a, ByteView b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = static_cast<std::uint8_t>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

ByteView as_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace alpha::crypto
