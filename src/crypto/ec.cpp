#include "crypto/ec.hpp"

#include <stdexcept>

namespace alpha::crypto {

EcCurve::EcCurve(std::string name, BigInt p, BigInt a, BigInt b, EcPoint g,
                 BigInt n)
    : name_(std::move(name)),
      p_(std::move(p)),
      a_(std::move(a)),
      b_(std::move(b)),
      g_(std::move(g)),
      n_(std::move(n)) {
  if (!on_curve(g_)) {
    throw std::invalid_argument("EcCurve: generator not on curve");
  }
}

const EcCurve& EcCurve::secp160r1() {
  static const EcCurve curve{
      "secp160r1",
      BigInt::from_hex("ffffffffffffffffffffffffffffffff7fffffff"),
      BigInt::from_hex("ffffffffffffffffffffffffffffffff7ffffffc"),  // p - 3
      BigInt::from_hex("1c97befc54bd7a8b65acf89f81d4d4adc565fa45"),
      EcPoint::affine(
          BigInt::from_hex("4a96b5688ef573284664698968c38bb913cbfc82"),
          BigInt::from_hex("23a628553168947d59dcc912042351377ac5fb32")),
      BigInt::from_hex("0100000000000000000001f4c8f927aed3ca752257")};
  return curve;
}

const EcCurve& EcCurve::p256() {
  static const EcCurve curve{
      "P-256",
      BigInt::from_hex("ffffffff00000001000000000000000000000000"
                       "ffffffffffffffffffffffff"),
      BigInt::from_hex("ffffffff00000001000000000000000000000000"
                       "fffffffffffffffffffffffc"),  // p - 3
      BigInt::from_hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0"
                       "cc53b0f63bce3c3e27d2604b"),
      EcPoint::affine(
          BigInt::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d81"
                           "2deb33a0f4a13945d898c296"),
          BigInt::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce3357"
                           "6b315ececbb6406837bf51f5")),
      BigInt::from_hex("ffffffff00000000ffffffffffffffffbce6faad"
                       "a7179e84f3b9cac2fc632551")};
  return curve;
}

BigInt EcCurve::sub_mod(const BigInt& a, const BigInt& b) const {
  const BigInt bm = b % p_;
  const BigInt am = a % p_;
  if (am >= bm) return am - bm;
  return p_ - (bm - am);
}

bool EcCurve::on_curve(const EcPoint& pt) const {
  if (pt.infinity) return true;
  if (!(pt.x < p_) || !(pt.y < p_)) return false;
  const BigInt lhs = (pt.y * pt.y) % p_;
  const BigInt rhs = ((pt.x * pt.x % p_) * pt.x + a_ * pt.x + b_) % p_;
  return lhs == rhs;
}

EcPoint EcCurve::double_point(const EcPoint& pt) const {
  if (pt.infinity || pt.y.is_zero()) return EcPoint::at_infinity();
  // lambda = (3x^2 + a) / 2y
  const BigInt num = (BigInt{3} * pt.x % p_ * pt.x + a_) % p_;
  const BigInt den = (BigInt{2} * pt.y) % p_;
  const BigInt lambda = (num * BigInt::modinv(den, p_)) % p_;
  const BigInt x3 = sub_mod(lambda * lambda, pt.x + pt.x);
  const BigInt y3 = sub_mod(lambda * sub_mod(pt.x, x3), pt.y);
  return EcPoint::affine(x3, y3);
}

EcPoint EcCurve::add(const EcPoint& lhs, const EcPoint& rhs) const {
  if (lhs.infinity) return rhs;
  if (rhs.infinity) return lhs;
  if (lhs.x == rhs.x) {
    if (lhs.y == rhs.y) return double_point(lhs);
    return EcPoint::at_infinity();  // P + (-P)
  }
  // lambda = (y2 - y1) / (x2 - x1)
  const BigInt num = sub_mod(rhs.y, lhs.y);
  const BigInt den = sub_mod(rhs.x, lhs.x);
  const BigInt lambda = (num * BigInt::modinv(den, p_)) % p_;
  const BigInt x3 = sub_mod(lambda * lambda, lhs.x + rhs.x);
  const BigInt y3 = sub_mod(lambda * sub_mod(lhs.x, x3), lhs.y);
  return EcPoint::affine(x3, y3);
}

namespace {
// Jacobian projective coordinates: (X, Y, Z) represents the affine point
// (X/Z^2, Y/Z^3); Z = 0 is the point at infinity. Doubling and mixed
// addition need no modular inversion, which dominates affine arithmetic --
// one inversion remains at the end of a scalar multiplication.
struct Jacobian {
  BigInt x, y, z;  // z zero <=> infinity
};
}  // namespace

EcPoint EcCurve::multiply(const BigInt& k, const EcPoint& pt) const {
  if (pt.infinity || k.is_zero()) return EcPoint::at_infinity();

  const BigInt& p = p_;
  const auto sub = [&](const BigInt& a, const BigInt& b) {
    return sub_mod(a, b);
  };
  const auto mul = [&](const BigInt& a, const BigInt& b) {
    return (a * b) % p;
  };

  const auto jdouble = [&](const Jacobian& q) -> Jacobian {
    if (q.z.is_zero() || q.y.is_zero()) return {BigInt{1}, BigInt{1}, BigInt{}};
    const BigInt y2 = mul(q.y, q.y);
    const BigInt s = mul(BigInt{4}, mul(q.x, y2));
    const BigInt z2 = mul(q.z, q.z);
    // M = 3X^2 + a*Z^4
    const BigInt m =
        (mul(BigInt{3}, mul(q.x, q.x)) + mul(a_, mul(z2, z2))) % p;
    const BigInt x3 = sub(mul(m, m), mul(BigInt{2}, s));
    const BigInt y3 =
        sub(mul(m, sub(s, x3)), mul(BigInt{8}, mul(y2, y2)));
    const BigInt z3 = mul(mul(BigInt{2}, q.y), q.z);
    return {x3, y3, z3};
  };

  // Mixed addition: Jacobian q + affine (ax, ay).
  const auto jadd_affine = [&](const Jacobian& q, const BigInt& ax,
                               const BigInt& ay) -> Jacobian {
    if (q.z.is_zero()) return {ax, ay, BigInt{1}};
    const BigInt z2 = mul(q.z, q.z);
    const BigInt u2 = mul(ax, z2);
    const BigInt s2 = mul(ay, mul(z2, q.z));
    const BigInt h = sub(u2, q.x);
    const BigInt r = sub(s2, q.y);
    if (h.is_zero()) {
      if (r.is_zero()) return jdouble(q);      // same point
      return {BigInt{1}, BigInt{1}, BigInt{}};  // P + (-P)
    }
    const BigInt h2 = mul(h, h);
    const BigInt h3 = mul(h2, h);
    const BigInt xh2 = mul(q.x, h2);
    const BigInt x3 = sub(sub(mul(r, r), h3), mul(BigInt{2}, xh2));
    const BigInt y3 = sub(mul(r, sub(xh2, x3)), mul(q.y, h3));
    const BigInt z3 = mul(q.z, h);
    return {x3, y3, z3};
  };

  Jacobian acc{BigInt{1}, BigInt{1}, BigInt{}};  // infinity
  // Left-to-right double-and-add keeps the addend affine (mixed addition).
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    acc = jdouble(acc);
    if (k.bit(i)) acc = jadd_affine(acc, pt.x, pt.y);
  }

  if (acc.z.is_zero()) return EcPoint::at_infinity();
  const BigInt zinv = BigInt::modinv(acc.z, p);
  const BigInt zinv2 = mul(zinv, zinv);
  return EcPoint::affine(mul(acc.x, zinv2), mul(acc.y, mul(zinv2, zinv)));
}

Bytes EcdsaPublicKey::encode() const {
  const std::size_t w = curve->field_bytes();
  Bytes out{0x04};
  append(out, point.x.to_bytes_be(w));
  append(out, point.y.to_bytes_be(w));
  return out;
}

std::optional<EcdsaPublicKey> EcdsaPublicKey::decode(const EcCurve& curve,
                                                     ByteView data) {
  const std::size_t w = curve.field_bytes();
  if (data.size() != 1 + 2 * w || data[0] != 0x04) return std::nullopt;
  EcdsaPublicKey key;
  key.curve = &curve;
  key.point = EcPoint::affine(BigInt::from_bytes_be(data.subspan(1, w)),
                              BigInt::from_bytes_be(data.subspan(1 + w, w)));
  if (!curve.on_curve(key.point) || key.point.infinity) return std::nullopt;
  return key;
}

Bytes EcdsaSignature::encode(std::size_t order_bytes) const {
  Bytes out = r.to_bytes_be(order_bytes);
  append(out, s.to_bytes_be(order_bytes));
  return out;
}

std::optional<EcdsaSignature> EcdsaSignature::decode(ByteView data) {
  if (data.empty() || data.size() % 2 != 0) return std::nullopt;
  const std::size_t half = data.size() / 2;
  return EcdsaSignature{BigInt::from_bytes_be(data.first(half)),
                        BigInt::from_bytes_be(data.subspan(half))};
}

namespace {
// Leftmost min(N, hash bits) of H(m) as an integer (same rule as DSA).
BigInt hash_to_z(HashAlgo algo, ByteView message, const BigInt& n) {
  const Digest h = hash(algo, message);
  BigInt z = BigInt::from_bytes_be(h.view());
  const std::size_t h_bits = h.size() * 8;
  const std::size_t n_bits = n.bit_length();
  if (h_bits > n_bits) z = z >> (h_bits - n_bits);
  return z;
}
}  // namespace

EcdsaPrivateKey ecdsa_generate(const EcCurve& curve, RandomSource& rng) {
  const BigInt one{1};
  const BigInt d = BigInt::random_below(rng, curve.order() - one) + one;
  EcdsaPrivateKey key;
  key.pub.curve = &curve;
  key.pub.point = curve.multiply(d, curve.generator());
  key.d = d;
  return key;
}

EcdsaSignature ecdsa_sign(const EcdsaPrivateKey& key, HashAlgo algo,
                          ByteView message, RandomSource& rng) {
  const EcCurve& curve = *key.pub.curve;
  const BigInt& n = curve.order();
  const BigInt one{1};
  const BigInt z = hash_to_z(algo, message, n);
  for (;;) {
    const BigInt k = BigInt::random_below(rng, n - one) + one;
    const EcPoint kg = curve.multiply(k, curve.generator());
    const BigInt r = kg.x % n;
    if (r.is_zero()) continue;
    const BigInt kinv = BigInt::modinv(k, n);
    const BigInt s = (kinv * ((z + key.d * r) % n)) % n;
    if (s.is_zero()) continue;
    return {r, s};
  }
}

bool ecdsa_verify(const EcdsaPublicKey& key, HashAlgo algo, ByteView message,
                  const EcdsaSignature& sig) {
  if (key.curve == nullptr || key.point.infinity) return false;
  const EcCurve& curve = *key.curve;
  const BigInt& n = curve.order();
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (!(sig.r < n) || !(sig.s < n)) return false;

  BigInt w;
  try {
    w = BigInt::modinv(sig.s, n);
  } catch (const std::domain_error&) {
    return false;
  }
  const BigInt z = hash_to_z(algo, message, n);
  const BigInt u1 = (z * w) % n;
  const BigInt u2 = (sig.r * w) % n;
  const EcPoint point = curve.add(curve.multiply(u1, curve.generator()),
                                  curve.multiply(u2, key.point));
  if (point.infinity) return false;
  return (point.x % n) == sig.r;
}

}  // namespace alpha::crypto
