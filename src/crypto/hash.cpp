#include "crypto/hash.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/counter.hpp"
#include "crypto/hasher_ctx.hpp"
#include "crypto/mmo.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

namespace alpha::crypto {

namespace {

inline void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

// Longest input that still fits one padded 64-byte Merkle-Damgard block
// (0x80 marker + 8-byte length leave 55 bytes). Chain steps (tag | digest,
// at most 2 + 32 bytes) and pre-acks always qualify.
constexpr std::size_t kMdOneBlockMax = 55;

// Assembles a|b|c plus padding into a single block and runs exactly one
// compression. Counter semantics match the streaming path: input bytes only
// (no padding), one finalization.
template <typename H>
Digest md_one_block(ByteView a, ByteView b, ByteView c) {
  static_assert(H::kBlockSize == 64);
  std::uint8_t block[64];
  std::size_t n = 0;
  if (!a.empty()) std::memcpy(block + n, a.data(), a.size());
  n += a.size();
  if (!b.empty()) std::memcpy(block + n, b.data(), b.size());
  n += b.size();
  if (!c.empty()) std::memcpy(block + n, c.data(), c.size());
  n += c.size();

  block[n] = 0x80;
  std::memset(block + n + 1, 0, 56 - n - 1);
  const std::uint64_t bit_len = static_cast<std::uint64_t>(n) * 8;
  for (int i = 0; i < 8; ++i) {
    block[56 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }

  typename H::State st = H::kInitState;
  H::compress(st, block);
  HashOpCounter::record_update(n);
  HashOpCounter::record_finalize();

  std::uint8_t out[H::kDigestSize];
  for (std::size_t i = 0; i < H::kDigestSize / 4; ++i) {
    store_be32(out + 4 * i, st[i]);
  }
  return Digest(ByteView{out, H::kDigestSize});
}

}  // namespace

std::string_view to_string(HashAlgo algo) noexcept {
  switch (algo) {
    case HashAlgo::kSha1: return "SHA-1";
    case HashAlgo::kSha256: return "SHA-256";
    case HashAlgo::kMmo128: return "AES-MMO-128";
  }
  return "unknown";
}

std::size_t digest_size(HashAlgo algo) noexcept {
  switch (algo) {
    case HashAlgo::kSha1: return Sha1::kDigestSize;
    case HashAlgo::kSha256: return Sha256::kDigestSize;
    case HashAlgo::kMmo128: return MmoHash::kDigestSize;
  }
  return 0;
}

std::unique_ptr<Hasher> make_hasher(HashAlgo algo) {
  switch (algo) {
    case HashAlgo::kSha1: return std::make_unique<Sha1>();
    case HashAlgo::kSha256: return std::make_unique<Sha256>();
    case HashAlgo::kMmo128: return std::make_unique<MmoHash>();
  }
  throw std::invalid_argument("make_hasher: unknown algorithm");
}

Digest hash(HashAlgo algo, ByteView data) { return hash3(algo, data, {}, {}); }

Digest hash2(HashAlgo algo, ByteView a, ByteView b) {
  return hash3(algo, a, b, {});
}

Digest hash3(HashAlgo algo, ByteView a, ByteView b, ByteView c) {
  const std::size_t total = a.size() + b.size() + c.size();
  if (total <= kMdOneBlockMax) {
    // Single-compress fast path: the signed-packet hot cases (chain step =
    // tag | element, prefix MAC over short payloads, pre-acks) land here.
    if (algo == HashAlgo::kSha1) return md_one_block<Sha1>(a, b, c);
    if (algo == HashAlgo::kSha256) return md_one_block<Sha256>(a, b, c);
  }
  HasherCtx h{algo};
  if (!a.empty()) h.update(a);
  if (!b.empty()) h.update(b);
  if (!c.empty()) h.update(c);
  return h.finalize();
}

}  // namespace alpha::crypto
