#include "crypto/hash.hpp"

#include <stdexcept>

#include "crypto/mmo.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

namespace alpha::crypto {

std::string_view to_string(HashAlgo algo) noexcept {
  switch (algo) {
    case HashAlgo::kSha1: return "SHA-1";
    case HashAlgo::kSha256: return "SHA-256";
    case HashAlgo::kMmo128: return "AES-MMO-128";
  }
  return "unknown";
}

std::size_t digest_size(HashAlgo algo) noexcept {
  switch (algo) {
    case HashAlgo::kSha1: return Sha1::kDigestSize;
    case HashAlgo::kSha256: return Sha256::kDigestSize;
    case HashAlgo::kMmo128: return MmoHash::kDigestSize;
  }
  return 0;
}

std::unique_ptr<Hasher> make_hasher(HashAlgo algo) {
  switch (algo) {
    case HashAlgo::kSha1: return std::make_unique<Sha1>();
    case HashAlgo::kSha256: return std::make_unique<Sha256>();
    case HashAlgo::kMmo128: return std::make_unique<MmoHash>();
  }
  throw std::invalid_argument("make_hasher: unknown algorithm");
}

Digest hash(HashAlgo algo, ByteView data) {
  auto h = make_hasher(algo);
  h->update(data);
  return h->finalize();
}

Digest hash2(HashAlgo algo, ByteView a, ByteView b) {
  auto h = make_hasher(algo);
  h->update(a);
  h->update(b);
  return h->finalize();
}

Digest hash3(HashAlgo algo, ByteView a, ByteView b, ByteView c) {
  auto h = make_hasher(algo);
  h->update(a);
  h->update(b);
  h->update(c);
  return h->finalize();
}

}  // namespace alpha::crypto
