#include "crypto/rsa.hpp"

#include <stdexcept>

namespace alpha::crypto {

namespace {

// DER DigestInfo prefixes for EMSA-PKCS1-v1_5.
constexpr std::uint8_t kSha1Prefix[] = {0x30, 0x21, 0x30, 0x09, 0x06,
                                        0x05, 0x2b, 0x0e, 0x03, 0x02,
                                        0x1a, 0x05, 0x00, 0x04, 0x14};
constexpr std::uint8_t kSha256Prefix[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

ByteView digest_info_prefix(HashAlgo algo) {
  switch (algo) {
    case HashAlgo::kSha1: return {kSha1Prefix, sizeof(kSha1Prefix)};
    case HashAlgo::kSha256: return {kSha256Prefix, sizeof(kSha256Prefix)};
    default:
      throw std::invalid_argument("RSA: unsupported DigestInfo algorithm");
  }
}

// EMSA-PKCS1-v1_5: 0x00 0x01 0xff..0xff 0x00 DigestInfo || H(m)
Bytes emsa_encode(HashAlgo algo, ByteView message, std::size_t em_len) {
  const Digest h = hash(algo, message);
  const ByteView prefix = digest_info_prefix(algo);
  const std::size_t t_len = prefix.size() + h.size();
  if (em_len < t_len + 11) {
    throw std::invalid_argument("RSA: modulus too small for digest");
  }
  Bytes em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(prefix.begin(), prefix.end(),
            em.begin() + static_cast<std::ptrdiff_t>(em_len - t_len));
  std::copy(h.view().begin(), h.view().end(),
            em.begin() + static_cast<std::ptrdiff_t>(em_len - h.size()));
  return em;
}

}  // namespace

RsaPrivateKey rsa_generate(RandomSource& rng, std::size_t bits) {
  if (bits < 512 || bits % 2 != 0) {
    throw std::invalid_argument("rsa_generate: bits must be even and >= 512");
  }
  const BigInt e{65537};
  const BigInt one{1};
  for (;;) {
    const BigInt p = generate_prime(rng, bits / 2);
    const BigInt q = generate_prime(rng, bits / 2);
    if (p == q) continue;
    const BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    const BigInt phi = (p - one) * (q - one);
    if (!BigInt::gcd(e, phi).is_one()) continue;

    RsaPrivateKey key;
    key.pub = {n, e};
    key.d = BigInt::modinv(e, phi);
    // Normalize p > q so qinv = q^-1 mod p is well-defined for CRT.
    key.p = p > q ? p : q;
    key.q = p > q ? q : p;
    key.dp = key.d % (key.p - one);
    key.dq = key.d % (key.q - one);
    key.qinv = BigInt::modinv(key.q, key.p);
    return key;
  }
}

Bytes rsa_sign(const RsaPrivateKey& key, HashAlgo algo, ByteView message) {
  const std::size_t k = key.pub.modulus_bytes();
  const BigInt m = BigInt::from_bytes_be(emsa_encode(algo, message, k));

  // CRT: s = m^d mod n computed from the two half-size exponentiations.
  const BigInt m1 = BigInt::modexp(m % key.p, key.dp, key.p);
  const BigInt m2 = BigInt::modexp(m % key.q, key.dq, key.q);
  const BigInt diff = m1 >= m2 ? m1 - m2 : key.p - ((m2 - m1) % key.p);
  const BigInt h = (key.qinv * diff) % key.p;
  const BigInt s = m2 + h * key.q;
  return s.to_bytes_be(k);
}

bool rsa_verify(const RsaPublicKey& key, HashAlgo algo, ByteView message,
                ByteView signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const BigInt s = BigInt::from_bytes_be(signature);
  if (!(s < key.n)) return false;
  const BigInt m = BigInt::modexp(s, key.e, key.n);
  Bytes expected;
  try {
    expected = emsa_encode(algo, message, k);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return ct_equal(m.to_bytes_be(k), expected);
}

}  // namespace alpha::crypto
