#include "crypto/mac.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "crypto/counter.hpp"
#include "crypto/mmo.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

namespace alpha::crypto {

namespace {

std::size_t block_size(HashAlgo algo) {
  switch (algo) {
    case HashAlgo::kSha1: return Sha1::kBlockSize;
    case HashAlgo::kSha256: return Sha256::kBlockSize;
    case HashAlgo::kMmo128: return MmoHash::kBlockSize;
  }
  throw std::invalid_argument("block_size: unknown algorithm");
}

// Compresses the ipad and opad blocks for `key` (already hashed down if it
// exceeded the block size) into the two chaining values of the HMAC key
// schedule.
template <typename H>
void hmac_midstates(ByteView key, typename H::State& inner,
                    typename H::State& outer) {
  std::uint8_t k0[H::kBlockSize] = {};
  if (!key.empty()) {
    std::memcpy(k0, key.data(), std::min(key.size(), H::kBlockSize));
  }

  std::uint8_t pad[H::kBlockSize];
  inner = H::kInitState;
  for (std::size_t i = 0; i < H::kBlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x36);
  }
  H::compress(inner, pad);

  outer = H::kInitState;
  for (std::size_t i = 0; i < H::kBlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x5c);
  }
  H::compress(outer, pad);
}

// HMAC from cached midstates: resume the inner context one block in, hash
// the data, then the outer context over the inner digest.
template <typename H>
Digest resumed_hmac(const typename H::State& inner,
                    const typename H::State& outer, ByteView data) {
  H h;
  h.resume(inner, H::kBlockSize);
  h.update(data);
  const Digest in = h.finalize();
  h.resume(outer, H::kBlockSize);
  h.update(in.view());
  return h.finalize();
}

}  // namespace

std::string_view to_string(MacKind kind) noexcept {
  switch (kind) {
    case MacKind::kHmac: return "HMAC";
    case MacKind::kPrefix: return "PrefixMAC";
  }
  return "unknown";
}

HmacKey::HmacKey(HashAlgo algo, ByteView key) : algo_(algo) {
  // Key schedule runs once per key; keep it out of the per-MAC accounting
  // (mac() re-accounts the two pad blocks on every call instead).
  CounterPause pause;
  Digest hashed;
  if (key.size() > block_size(algo)) {
    hashed = hash(algo, key);
    key = hashed.view();
  }
  switch (algo_) {
    case HashAlgo::kSha1: {
      Sha1::State in, out;
      hmac_midstates<Sha1>(key, in, out);
      std::copy(in.begin(), in.end(), inner_words_.begin());
      std::copy(out.begin(), out.end(), outer_words_.begin());
      break;
    }
    case HashAlgo::kSha256: {
      Sha256::State in, out;
      hmac_midstates<Sha256>(key, in, out);
      std::copy(in.begin(), in.end(), inner_words_.begin());
      std::copy(out.begin(), out.end(), outer_words_.begin());
      break;
    }
    case HashAlgo::kMmo128:
      hmac_midstates<MmoHash>(key, inner_mmo_, outer_mmo_);
      break;
  }
}

Digest HmacKey::mac(ByteView data) const {
  Digest out;
  switch (algo_) {
    case HashAlgo::kSha1: {
      Sha1::State in, ou;
      std::copy_n(inner_words_.begin(), in.size(), in.begin());
      std::copy_n(outer_words_.begin(), ou.size(), ou.begin());
      out = resumed_hmac<Sha1>(in, ou, data);
      break;
    }
    case HashAlgo::kSha256: {
      Sha256::State in, ou;
      std::copy_n(inner_words_.begin(), in.size(), in.begin());
      std::copy_n(outer_words_.begin(), ou.size(), ou.begin());
      out = resumed_hmac<Sha256>(in, ou, data);
      break;
    }
    case HashAlgo::kMmo128:
      out = resumed_hmac<MmoHash>(inner_mmo_, outer_mmo_, data);
      break;
  }
  // The cached pad blocks stand in for re-hashing the key material: account
  // their bytes so totals stay compress-equivalent with from-scratch hmac().
  HashOpCounter::record_update(2 * block_size(algo_));
  return out;
}

MacContext::MacContext(MacKind kind, HashAlgo algo, ByteView key)
    : kind_(kind), algo_(algo) {
  switch (kind_) {
    case MacKind::kHmac:
      hmac_.emplace(algo, key);
      return;
    case MacKind::kPrefix:
      if (key.size() <= Digest::kMaxSize) {
        prefix_key_ = Digest(key);
      } else {
        prefix_key_long_.assign(key.begin(), key.end());
      }
      return;
  }
  throw std::invalid_argument("MacContext: unknown kind");
}

Digest MacContext::mac(ByteView data) const {
  if (kind_ == MacKind::kHmac) return hmac_->mac(data);
  const ByteView key = prefix_key_long_.empty()
                           ? prefix_key_.view()
                           : ByteView{prefix_key_long_};
  return hash2(algo_, key, data);
}

Digest hmac(HashAlgo algo, ByteView key, ByteView data) {
  // Match HashOpCounter semantics of the historical from-scratch path: an
  // over-long key's pre-hash is accounted here (HmacKey's ctor is paused).
  if (key.size() > block_size(algo)) {
    const Digest kd = hash(algo, key);
    return HmacKey(algo, kd.view()).mac(data);
  }
  return HmacKey(algo, key).mac(data);
}

Digest prefix_mac(HashAlgo algo, ByteView key, ByteView data) {
  return hash2(algo, key, data);
}

Digest mac(MacKind kind, HashAlgo algo, ByteView key, ByteView data) {
  switch (kind) {
    case MacKind::kHmac: return hmac(algo, key, data);
    case MacKind::kPrefix: return prefix_mac(algo, key, data);
  }
  throw std::invalid_argument("mac: unknown kind");
}

bool verify_mac(MacKind kind, HashAlgo algo, ByteView key, ByteView data,
                const Digest& expected) {
  return mac(kind, algo, key, data).ct_equals(expected);
}

}  // namespace alpha::crypto
