#include "crypto/mac.hpp"

#include <stdexcept>

#include "crypto/mmo.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

namespace alpha::crypto {

namespace {
std::size_t block_size(HashAlgo algo) {
  switch (algo) {
    case HashAlgo::kSha1: return Sha1::kBlockSize;
    case HashAlgo::kSha256: return Sha256::kBlockSize;
    case HashAlgo::kMmo128: return MmoHash::kBlockSize;
  }
  throw std::invalid_argument("block_size: unknown algorithm");
}
}  // namespace

std::string_view to_string(MacKind kind) noexcept {
  switch (kind) {
    case MacKind::kHmac: return "HMAC";
    case MacKind::kPrefix: return "PrefixMAC";
  }
  return "unknown";
}

Digest hmac(HashAlgo algo, ByteView key, ByteView data) {
  const std::size_t bs = block_size(algo);

  // Keys longer than the block size are hashed first.
  Bytes k0;
  if (key.size() > bs) {
    k0 = hash(algo, key).bytes();
  } else {
    k0.assign(key.begin(), key.end());
  }
  k0.resize(bs, 0x00);

  Bytes ipad(bs), opad(bs);
  for (std::size_t i = 0; i < bs; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x5c);
  }

  const Digest inner = hash2(algo, ipad, data);
  return hash2(algo, opad, inner.view());
}

Digest prefix_mac(HashAlgo algo, ByteView key, ByteView data) {
  return hash2(algo, key, data);
}

Digest mac(MacKind kind, HashAlgo algo, ByteView key, ByteView data) {
  switch (kind) {
    case MacKind::kHmac: return hmac(algo, key, data);
    case MacKind::kPrefix: return prefix_mac(algo, key, data);
  }
  throw std::invalid_argument("mac: unknown kind");
}

bool verify_mac(MacKind kind, HashAlgo algo, ByteView key, ByteView data,
                const Digest& expected) {
  return mac(kind, algo, key, data).ct_equals(expected);
}

}  // namespace alpha::crypto
