#include "crypto/mmo.hpp"

#include <cstring>

#include "crypto/aes128.hpp"
#include "crypto/counter.hpp"
#include "crypto/cpu.hpp"

namespace alpha::crypto {

void MmoHash::reset() noexcept {
  state_.fill(0);
  total_len_ = 0;
  buffer_len_ = 0;
}

void MmoHash::resume(const State& state, std::uint64_t bytes_consumed) noexcept {
  state_ = state;
  total_len_ = bytes_consumed;
  buffer_len_ = 0;
}

void MmoHash::compress(State& state, const std::uint8_t* block) noexcept {
#if defined(ALPHA_X86_CRYPTO)
  static const bool has_aes = cpu_has_aes_ni();
  if (has_aes && hw_acceleration_enabled()) {
    compress_ni(state, block);
    return;
  }
#endif
  compress_scalar(state, block);
}

void MmoHash::compress_scalar(State& state,
                              const std::uint8_t* block) noexcept {
  // E_{state}(block) XOR block. Key schedule per block: this is what the MMO
  // mode on AES hardware does (the chaining value is loaded as the key).
  const Aes128 cipher{ByteView{state.data(), state.size()}};
  std::uint8_t enc[kBlockSize];
  cipher.encrypt_block(block, enc);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    state[i] = static_cast<std::uint8_t>(enc[i] ^ block[i]);
  }
}

void MmoHash::update(ByteView data) noexcept {
  HashOpCounter::record_update(data.size());
  total_len_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  if (buffer_len_ > 0) {
    const std::size_t take =
        n < kBlockSize - buffer_len_ ? n : kBlockSize - buffer_len_;
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == kBlockSize) {
      compress(state_, buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (n >= kBlockSize) {
    compress(state_, p);
    p += kBlockSize;
    n -= kBlockSize;
  }
  if (n > 0) {
    std::memcpy(buffer_.data(), p, n);
    buffer_len_ = n;
  }
}

Digest MmoHash::finalize() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;

  // Merkle-Damgard strengthening with a 16-byte block: 0x80, zeros to
  // 8 mod 16, then the 64-bit big-endian bit length.
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > kBlockSize - 8) {
    std::memset(buffer_.data() + buffer_len_, 0, kBlockSize - buffer_len_);
    compress(state_, buffer_.data());
    buffer_len_ = 0;
  }
  std::memset(buffer_.data() + buffer_len_, 0, kBlockSize - 8 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[kBlockSize - 8 + i] =
        static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  compress(state_, buffer_.data());

  HashOpCounter::record_finalize();
  return Digest(ByteView{state_.data(), kDigestSize});
}

}  // namespace alpha::crypto
