// Stack-allocated hash context.
//
// make_hasher() heap-allocates a polymorphic Hasher -- fine for long-lived
// streaming use, but ALPHA's per-packet work is a storm of tiny one-shot
// hashes where that allocation dominates. HasherCtx holds the concrete
// hasher in a std::variant on the stack, so one-shot and hot-loop callers
// never touch the heap. The one-shot helpers in hash.hpp use it internally;
// tls_hasher() hands out a per-thread reusable context for streaming
// callers that want to avoid even the (cheap) variant construction.
#pragma once

#include <variant>

#include "crypto/hash.hpp"
#include "crypto/mmo.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

namespace alpha::crypto {

class HasherCtx {
 public:
  explicit HasherCtx(HashAlgo algo) : impl_(std::in_place_type<Sha1>) {
    switch (algo) {
      case HashAlgo::kSha1: break;  // already constructed
      case HashAlgo::kSha256: impl_.emplace<Sha256>(); break;
      case HashAlgo::kMmo128: impl_.emplace<MmoHash>(); break;
    }
  }

  void reset() noexcept {
    std::visit([](auto& h) { h.reset(); }, impl_);
  }
  void update(ByteView data) noexcept {
    std::visit([&](auto& h) { h.update(data); }, impl_);
  }
  Digest finalize() noexcept {
    return std::visit([](auto& h) { return h.finalize(); }, impl_);
  }

  std::size_t digest_size() const noexcept {
    return std::visit([](const auto& h) { return h.digest_size(); }, impl_);
  }
  HashAlgo algo() const noexcept {
    return std::visit([](const auto& h) { return h.algo(); }, impl_);
  }

 private:
  std::variant<Sha1, Sha256, MmoHash> impl_;
};

/// Reusable per-thread context for `algo`, already reset(). Not reentrant:
/// do not hold the reference across a call that may itself hash with the
/// same algorithm (the one-shot helpers use their own stack contexts, so
/// calling hash()/hash2()/hash3() is safe).
HasherCtx& tls_hasher(HashAlgo algo);

}  // namespace alpha::crypto
