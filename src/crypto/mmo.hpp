// Matyas-Meyer-Oseas (MMO) hash over AES-128.
//
// The paper's WSN profile (§4.1.3) computes hash-chain elements and MACs with
// the MMO construction [Matyas/Meyer/Oseas 1985] on the CC2430's AES-128
// hardware, yielding 16-byte digests. The compression function is
//
//     H_i = E_{H_{i-1}}(m_i) XOR m_i
//
// with a fixed all-zero IV as H_0 and the previous chaining value used
// directly as the AES key (g = identity). Arbitrary-length inputs are
// Merkle-Damgard padded (0x80, zeros, 64-bit big-endian bit length) so the
// construction is a proper hash, not just a block compressor. This matches
// the IEEE 802.15.4 / ZigBee AES-MMO usage the CC2430 accelerates.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/hash.hpp"

namespace alpha::crypto {

class MmoHash final : public Hasher {
 public:
  static constexpr std::size_t kDigestSize = 16;
  static constexpr std::size_t kBlockSize = 16;

  /// Chaining value: the running 16-byte MMO state (H_0 = all zeros).
  using State = std::array<std::uint8_t, kDigestSize>;
  static constexpr State kInitState = {};

  MmoHash() noexcept { reset(); }

  void reset() noexcept override;
  void update(ByteView data) noexcept override;
  Digest finalize() noexcept override;

  std::size_t digest_size() const noexcept override { return kDigestSize; }
  HashAlgo algo() const noexcept override { return HashAlgo::kMmo128; }

  /// One compression-function application: state = E_state(block) ^ block.
  /// Dispatches to AES-NI when available and enabled (cpu.hpp).
  static void compress(State& state, const std::uint8_t* block) noexcept;
  /// Portable reference compression (software AES key schedule + rounds).
  static void compress_scalar(State& state, const std::uint8_t* block) noexcept;

  /// Restarts from a precomputed chaining value (see Sha1::resume).
  void resume(const State& state, std::uint64_t bytes_consumed) noexcept;

 private:
  static void compress_ni(State& state, const std::uint8_t* block) noexcept;

  State state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace alpha::crypto
