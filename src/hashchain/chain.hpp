// One-way hash chains with ALPHA's role binding.
//
// A chain is built from a random seed h_0 by iterated hashing up to the
// anchor h_n (paper §2.1). Elements are consumed in reverse order of
// creation: the anchor is published during bootstrapping, then h_{n-1},
// h_{n-2}, ... are disclosed to authenticate packets.
//
// ALPHA binds each element to its protocol purpose (§3.2.1) to defeat the
// reformatting attack: h_i = H("S1" | h_{i-1}) for odd i and
// h_i = H("S2" | h_{i-1}) for even i, so an element that authenticates an S1
// packet can never be replayed as an S2 MAC-key disclosure or vice versa.
// The plain (untagged) construction is also provided for baseline protocols
// (e.g. the TESLA-like comparison scheme).
//
// The signer-side HashChain supports three storage strategies (the ablation
// called out in DESIGN.md §5): store all elements, store only the seed and
// recompute, or keep sqrt-spaced checkpoints. ChainWalker turns the
// element-by-element disclosure sweep over the recomputing strategies from
// O(n) hashing per disclosure into amortized O(sqrt(n)) / O(k) by pebbling:
// see the class comment below and DESIGN.md §5.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/digest.hpp"
#include "crypto/hash.hpp"
#include "crypto/random.hpp"

namespace alpha::hashchain {

using crypto::ByteView;
using crypto::Digest;
using crypto::HashAlgo;

enum class ChainTagging : std::uint8_t {
  kRoleBound = 1,  // ALPHA's S1/S2 domain separation (§3.2.1)
  kPlain = 2,      // h_i = H(h_{i-1}); for baselines
};

/// Domain-separation tag for the step that *produces* element i (i >= 1):
/// "S1" for odd i, "S2" for even i; empty for plain chains.
ByteView step_tag(ChainTagging tagging, std::size_t i) noexcept;

/// One chain step: element i from element i-1.
Digest chain_step(HashAlgo algo, ChainTagging tagging, const Digest& prev,
                  std::size_t i);

/// Iterates chain_step from index `from_index` (holding `from`) up to
/// `to_index`. Requires to_index >= from_index.
Digest chain_advance(HashAlgo algo, ChainTagging tagging, const Digest& from,
                     std::size_t from_index, std::size_t to_index);

/// In ALPHA, odd-index elements authenticate S1 packets and even-index
/// elements key MACs / authenticate S2 packets (§3.2.1).
inline bool is_s1_index(std::size_t i) noexcept { return i % 2 == 1; }
inline bool is_s2_index(std::size_t i) noexcept { return i % 2 == 0 && i > 0; }

enum class ChainStorage : std::uint8_t {
  kFull = 1,        // all n+1 elements resident: O(n*h) memory, O(1) access
  kSeedOnly = 2,    // seed only: O(h) memory, O(i) hashing per access
  kCheckpoint = 3,  // every k-th element: O((n/k)*h) memory, O(k) hashing
};

/// Signer-side hash chain (owns the seed).
class HashChain {
 public:
  /// Builds a chain of `length` steps (elements h_0 .. h_length) from `seed`.
  /// `length` must be even and >= 2 for role-bound chains so the first
  /// disclosed element h_{length-1} carries the S1 tag.
  /// `checkpoint_interval` of 0 selects round(sqrt(length)).
  HashChain(HashAlgo algo, ChainTagging tagging, ByteView seed,
            std::size_t length, ChainStorage storage = ChainStorage::kFull,
            std::size_t checkpoint_interval = 0);

  /// Convenience: fresh random seed of digest size.
  static HashChain generate(HashAlgo algo, ChainTagging tagging,
                            crypto::RandomSource& rng, std::size_t length,
                            ChainStorage storage = ChainStorage::kFull);

  /// Element h_i, 0 <= i <= length(). For the recomputing storages the last
  /// computed element is memoized, so repeated or ascending accesses resume
  /// from the previous result instead of the nearest stored base. The memo
  /// makes element() non-reentrant: do not call concurrently on one chain.
  Digest element(std::size_t i) const;
  Digest anchor() const { return element(length_); }

  std::size_t length() const noexcept { return length_; }
  HashAlgo algo() const noexcept { return algo_; }
  ChainTagging tagging() const noexcept { return tagging_; }
  ChainStorage storage() const noexcept { return storage_; }
  /// Checkpoint spacing (0 unless storage is kCheckpoint).
  std::size_t checkpoint_interval() const noexcept { return interval_; }

  /// Resident bytes for stored elements (Table 2/3 accounting, ablation).
  std::size_t memory_bytes() const noexcept;

 private:
  friend class ChainWalker;  // reads stored checkpoints / seed for pebbling

  HashAlgo algo_;
  ChainTagging tagging_;
  ChainStorage storage_;
  std::size_t length_;
  std::size_t interval_ = 0;        // checkpoint spacing
  std::vector<Digest> elements_;    // full store or checkpoints
  Digest seed_;                     // kept for kSeedOnly / kCheckpoint
  // element() memo (recomputing storages only).
  mutable Digest cursor_;
  mutable std::size_t cursor_index_ = static_cast<std::size_t>(-1);
};

/// Consumption cursor over a signer's chain: hands out elements from
/// h_{length-1} downward and never re-discloses an element.
///
/// For the recomputing storages the walker amortizes the descending sweep:
/// it keeps interval-aligned segments of consecutive elements in two cache
/// slots, refilling a segment with one forward pass from the nearest pebble
/// (kSeedOnly: sqrt-spaced pebbles built once at construction; kCheckpoint:
/// the chain's stored checkpoints). A full-chain walk thus costs at most
/// 2n hash ops for kSeedOnly (n to pebble + under n to refill) and
/// n + O(interval) for kCheckpoint, instead of the O(n^2) of naive per-index
/// recomputation. kFull delegates straight to HashChain::element.
class ChainWalker {
 public:
  explicit ChainWalker(const HashChain& chain);

  /// Index that the next take() will disclose.
  std::size_t next_index() const noexcept { return next_; }

  /// Elements still available for disclosure (excludes the seed h_0).
  std::size_t remaining() const noexcept { return next_; }

  bool exhausted() const noexcept { return next_ == 0; }

  /// Looks at element (next_index - offset) without consuming.
  /// Throws std::out_of_range if the chain is too short.
  Digest peek(std::size_t offset = 0) const;

  /// Discloses the next element and advances by `steps` (default 1).
  /// Throws std::out_of_range when exhausted.
  Digest take(std::size_t steps = 1);

 private:
  Digest fetch(std::size_t i) const;
  const Digest& pebble_at(std::size_t index) const;

  const HashChain* chain_;
  std::size_t next_;
  std::size_t interval_ = 0;      // segment span; 0 = delegate to the chain
  std::vector<Digest> pebbles_;   // own pebbles (kSeedOnly only)
  // Two cached segments of consecutive elements [seg_lo_, seg_lo_+interval_).
  // Two slots so a peek across a segment boundary (e.g. the next round's
  // element while the current round still discloses) does not thrash.
  mutable std::vector<Digest> seg_[2];
  mutable std::size_t seg_lo_[2] = {static_cast<std::size_t>(-1),
                                    static_cast<std::size_t>(-1)};
};

/// Verifier-side chain state: remembers the last authenticated element and
/// accepts only elements that hash forward onto it within `max_gap` steps
/// (gap > 1 accommodates packet loss).
class ChainVerifier {
 public:
  ChainVerifier(HashAlgo algo, ChainTagging tagging, Digest anchor,
                std::size_t anchor_index, std::size_t max_gap = 64) noexcept
      : algo_(algo),
        tagging_(tagging),
        last_(std::move(anchor)),
        last_index_(anchor_index),
        max_gap_(max_gap) {}

  /// Accepts `element` as h_index iff hashing it forward reaches the last
  /// authenticated element. On success the verifier state advances.
  bool accept(const Digest& element, std::size_t index);

  /// Verifies `element` as h_index like accept(), but also handles indices
  /// at or above the last accepted one *without* advancing state: such
  /// elements are derivable from the authenticated state by hashing
  /// forward, so out-of-order arrivals (e.g. a round's S2 overtaken by the
  /// next round's S1 on a jittery link) still verify. Use for disclosures
  /// (S2/A2), never for freshness-bearing announcements (S1/A1).
  bool accept_or_derive(const Digest& element, std::size_t index);

  /// Accepts `element` at whatever index within max_gap steps below the last
  /// authenticated element matches; returns that index, or nullopt.
  std::optional<std::size_t> accept_auto(const Digest& element);

  const Digest& last_element() const noexcept { return last_; }
  std::size_t last_index() const noexcept { return last_index_; }
  std::size_t max_gap() const noexcept { return max_gap_; }

 private:
  HashAlgo algo_;
  ChainTagging tagging_;
  Digest last_;
  std::size_t last_index_;
  std::size_t max_gap_;
};

}  // namespace alpha::hashchain
