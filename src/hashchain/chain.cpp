#include "hashchain/chain.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trace/prof.hpp"

namespace alpha::hashchain {

namespace {

constexpr std::string_view kS1Tag = "S1";
constexpr std::string_view kS2Tag = "S2";

constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

std::size_t sqrt_interval(std::size_t length) {
  auto k = static_cast<std::size_t>(
      std::lround(std::sqrt(static_cast<double>(length))));
  return k == 0 ? 1 : k;
}

// Advances `cur` (holding element from_index) in place up to to_index,
// avoiding the temporary-per-step churn of repeated chain_advance calls.
void advance_inplace(HashAlgo algo, ChainTagging tagging, Digest& cur,
                     std::size_t from_index, std::size_t to_index) {
  for (std::size_t i = from_index + 1; i <= to_index; ++i) {
    cur = chain_step(algo, tagging, cur, i);
  }
}

}  // namespace

ByteView step_tag(ChainTagging tagging, std::size_t i) noexcept {
  if (tagging == ChainTagging::kPlain) return {};
  return crypto::as_bytes(i % 2 == 1 ? kS1Tag : kS2Tag);
}

Digest chain_step(HashAlgo algo, ChainTagging tagging, const Digest& prev,
                  std::size_t i) {
  // Uninstalled cost is one thread-local pointer check; installed, one in
  // sample_every steps reads the perf counter group (see trace/prof.hpp).
  trace::ScopedStage prof_stage(trace::Stage::kChainStep);
  return crypto::hash2(algo, step_tag(tagging, i), prev.view());
}

Digest chain_advance(HashAlgo algo, ChainTagging tagging, const Digest& from,
                     std::size_t from_index, std::size_t to_index) {
  if (to_index < from_index) {
    throw std::invalid_argument("chain_advance: to_index < from_index");
  }
  if (to_index == from_index) return from;
  Digest cur = chain_step(algo, tagging, from, from_index + 1);
  advance_inplace(algo, tagging, cur, from_index + 1, to_index);
  return cur;
}

HashChain::HashChain(HashAlgo algo, ChainTagging tagging, ByteView seed,
                     std::size_t length, ChainStorage storage,
                     std::size_t checkpoint_interval)
    : algo_(algo), tagging_(tagging), storage_(storage), length_(length) {
  if (length < 2) {
    throw std::invalid_argument("HashChain: length must be >= 2");
  }
  if (tagging == ChainTagging::kRoleBound && length % 2 != 0) {
    // Even length guarantees h_{n-1} (first disclosure) is S1-tagged.
    throw std::invalid_argument(
        "HashChain: role-bound chains require even length");
  }
  seed_ = Digest{seed};

  switch (storage_) {
    case ChainStorage::kFull: {
      elements_.reserve(length_ + 1);
      elements_.push_back(seed_);
      for (std::size_t i = 1; i <= length_; ++i) {
        elements_.push_back(chain_step(algo_, tagging_, elements_.back(), i));
      }
      break;
    }
    case ChainStorage::kSeedOnly:
      break;
    case ChainStorage::kCheckpoint: {
      interval_ = checkpoint_interval != 0 ? checkpoint_interval
                                           : sqrt_interval(length_);
      // Checkpoint every interval_-th element starting at h_0.
      Digest cur = seed_;
      elements_.reserve(length_ / interval_ + 1);
      elements_.push_back(cur);
      for (std::size_t i = 1; i <= length_; ++i) {
        cur = chain_step(algo_, tagging_, cur, i);
        if (i % interval_ == 0) elements_.push_back(cur);
      }
      break;
    }
  }
}

HashChain HashChain::generate(HashAlgo algo, ChainTagging tagging,
                              crypto::RandomSource& rng, std::size_t length,
                              ChainStorage storage) {
  const crypto::Bytes seed = rng.bytes(crypto::digest_size(algo));
  return HashChain{algo, tagging, seed, length, storage};
}

Digest HashChain::element(std::size_t i) const {
  if (i > length_) throw std::out_of_range("HashChain::element: index > length");
  switch (storage_) {
    case ChainStorage::kFull:
      return elements_[i];
    case ChainStorage::kSeedOnly:
    case ChainStorage::kCheckpoint: {
      // Nearest stored base at or below i.
      std::size_t base_index = 0;
      const Digest* base = &seed_;
      if (storage_ == ChainStorage::kCheckpoint) {
        const std::size_t cp = i / interval_;
        base_index = cp * interval_;
        base = &elements_[cp];
      }
      // The memoized last result beats the stored base when it sits in
      // [base_index, i]: ascending or repeated accesses become O(delta).
      if (cursor_index_ != kNoIndex && cursor_index_ <= i &&
          cursor_index_ >= base_index) {
        if (cursor_index_ == i) return cursor_;
        advance_inplace(algo_, tagging_, cursor_, cursor_index_, i);
      } else {
        cursor_ = *base;
        advance_inplace(algo_, tagging_, cursor_, base_index, i);
      }
      cursor_index_ = i;
      return cursor_;
    }
  }
  throw std::logic_error("HashChain::element: bad storage");
}

std::size_t HashChain::memory_bytes() const noexcept {
  const std::size_t h = crypto::digest_size(algo_);
  if (storage_ == ChainStorage::kSeedOnly) return h;
  return elements_.size() * h;
}

ChainWalker::ChainWalker(const HashChain& chain)
    : chain_(&chain), next_(chain.length() == 0 ? 0 : chain.length() - 1) {
  switch (chain.storage()) {
    case ChainStorage::kFull:
      break;  // interval_ stays 0: delegate to O(1) lookups
    case ChainStorage::kCheckpoint:
      interval_ = chain.interval_;  // pebbles = the chain's checkpoints
      break;
    case ChainStorage::kSeedOnly: {
      // Build our own sqrt-spaced pebbles with one forward pass (n hash
      // ops, the same price as a single naive element(n) access).
      interval_ = sqrt_interval(chain.length());
      pebbles_.reserve(chain.length() / interval_ + 1);
      Digest cur = chain.seed_;
      pebbles_.push_back(cur);
      for (std::size_t i = 1; i <= chain.length(); ++i) {
        cur = chain_step(chain.algo(), chain.tagging(), cur, i);
        if (i % interval_ == 0) pebbles_.push_back(cur);
      }
      break;
    }
  }
}

const Digest& ChainWalker::pebble_at(std::size_t index) const {
  const std::size_t slot = index / interval_;
  return pebbles_.empty() ? chain_->elements_[slot] : pebbles_[slot];
}

Digest ChainWalker::fetch(std::size_t i) const {
  if (interval_ == 0) return chain_->element(i);
  const std::size_t lo = (i / interval_) * interval_;
  for (int s = 0; s < 2; ++s) {
    if (seg_lo_[s] == lo) return seg_[s][i - lo];
  }
  // Refill: evict the slot covering the higher (already consumed while
  // descending) segment.
  int victim = 0;
  if (seg_lo_[0] != kNoIndex) {
    victim = (seg_lo_[1] == kNoIndex || seg_lo_[0] > seg_lo_[1]) ? 0 : 1;
  }
  const std::size_t hi = std::min(lo + interval_ - 1, chain_->length());
  std::vector<Digest>& seg = seg_[victim];
  seg.clear();
  seg.reserve(interval_);
  Digest cur = pebble_at(lo);
  seg.push_back(cur);
  for (std::size_t j = lo + 1; j <= hi; ++j) {
    cur = chain_step(chain_->algo(), chain_->tagging(), cur, j);
    seg.push_back(cur);
  }
  seg_lo_[victim] = lo;
  return seg[i - lo];
}

Digest ChainWalker::peek(std::size_t offset) const {
  if (offset > next_ || next_ == 0) {
    throw std::out_of_range("ChainWalker::peek: chain exhausted");
  }
  return fetch(next_ - offset);
}

Digest ChainWalker::take(std::size_t steps) {
  if (steps == 0) throw std::invalid_argument("ChainWalker::take: steps == 0");
  if (next_ == 0 || steps > next_) {
    throw std::out_of_range("ChainWalker::take: chain exhausted");
  }
  const Digest out = fetch(next_);
  next_ -= steps;
  return out;
}

bool ChainVerifier::accept_or_derive(const Digest& element,
                                     std::size_t index) {
  if (index == last_index_) return element.ct_equals(last_);
  if (index > last_index_) {
    if (index - last_index_ > max_gap_) return false;
    Digest derived = last_;
    advance_inplace(algo_, tagging_, derived, last_index_, index);
    return derived.ct_equals(element);
  }
  return accept(element, index);
}

bool ChainVerifier::accept(const Digest& element, std::size_t index) {
  if (index >= last_index_) return false;
  if (last_index_ - index > max_gap_) return false;
  Digest advanced = element;
  advance_inplace(algo_, tagging_, advanced, index, last_index_);
  if (!advanced.ct_equals(last_)) return false;
  last_ = element;
  last_index_ = index;
  return true;
}

std::optional<std::size_t> ChainVerifier::accept_auto(const Digest& element) {
  // Tags depend on absolute indices, so candidates at different gaps cannot
  // share intermediate hashes; O(max_gap^2) fixed-size hashes worst case,
  // which is tiny for the default gap of 64.
  Digest advanced;
  for (std::size_t gap = 1; gap <= max_gap_ && gap <= last_index_; ++gap) {
    const std::size_t index = last_index_ - gap;
    advanced = element;
    advance_inplace(algo_, tagging_, advanced, index, last_index_);
    if (advanced.ct_equals(last_)) {
      last_ = element;
      last_index_ = index;
      return index;
    }
  }
  return std::nullopt;
}

}  // namespace alpha::hashchain
