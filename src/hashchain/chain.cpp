#include "hashchain/chain.hpp"

#include <cmath>
#include <stdexcept>

namespace alpha::hashchain {

namespace {
constexpr std::string_view kS1Tag = "S1";
constexpr std::string_view kS2Tag = "S2";
}  // namespace

ByteView step_tag(ChainTagging tagging, std::size_t i) noexcept {
  if (tagging == ChainTagging::kPlain) return {};
  return crypto::as_bytes(i % 2 == 1 ? kS1Tag : kS2Tag);
}

Digest chain_step(HashAlgo algo, ChainTagging tagging, const Digest& prev,
                  std::size_t i) {
  return crypto::hash2(algo, step_tag(tagging, i), prev.view());
}

Digest chain_advance(HashAlgo algo, ChainTagging tagging, Digest from,
                     std::size_t from_index, std::size_t to_index) {
  if (to_index < from_index) {
    throw std::invalid_argument("chain_advance: to_index < from_index");
  }
  for (std::size_t i = from_index + 1; i <= to_index; ++i) {
    from = chain_step(algo, tagging, from, i);
  }
  return from;
}

HashChain::HashChain(HashAlgo algo, ChainTagging tagging, ByteView seed,
                     std::size_t length, ChainStorage storage,
                     std::size_t checkpoint_interval)
    : algo_(algo), tagging_(tagging), storage_(storage), length_(length) {
  if (length < 2) {
    throw std::invalid_argument("HashChain: length must be >= 2");
  }
  if (tagging == ChainTagging::kRoleBound && length % 2 != 0) {
    // Even length guarantees h_{n-1} (first disclosure) is S1-tagged.
    throw std::invalid_argument(
        "HashChain: role-bound chains require even length");
  }
  seed_ = Digest{seed};

  switch (storage_) {
    case ChainStorage::kFull: {
      elements_.reserve(length_ + 1);
      elements_.push_back(seed_);
      for (std::size_t i = 1; i <= length_; ++i) {
        elements_.push_back(chain_step(algo_, tagging_, elements_.back(), i));
      }
      break;
    }
    case ChainStorage::kSeedOnly:
      break;
    case ChainStorage::kCheckpoint: {
      interval_ = checkpoint_interval != 0
                      ? checkpoint_interval
                      : static_cast<std::size_t>(
                            std::lround(std::sqrt(static_cast<double>(length_))));
      if (interval_ == 0) interval_ = 1;
      // Checkpoint every interval_-th element starting at h_0.
      Digest cur = seed_;
      elements_.push_back(cur);
      for (std::size_t i = 1; i <= length_; ++i) {
        cur = chain_step(algo_, tagging_, cur, i);
        if (i % interval_ == 0) elements_.push_back(cur);
      }
      break;
    }
  }
}

HashChain HashChain::generate(HashAlgo algo, ChainTagging tagging,
                              crypto::RandomSource& rng, std::size_t length,
                              ChainStorage storage) {
  const crypto::Bytes seed = rng.bytes(crypto::digest_size(algo));
  return HashChain{algo, tagging, seed, length, storage};
}

Digest HashChain::element(std::size_t i) const {
  if (i > length_) throw std::out_of_range("HashChain::element: index > length");
  switch (storage_) {
    case ChainStorage::kFull:
      return elements_[i];
    case ChainStorage::kSeedOnly:
      return chain_advance(algo_, tagging_, seed_, 0, i);
    case ChainStorage::kCheckpoint: {
      const std::size_t cp = i / interval_;
      const std::size_t cp_index = cp * interval_;
      return chain_advance(algo_, tagging_, elements_[cp], cp_index, i);
    }
  }
  throw std::logic_error("HashChain::element: bad storage");
}

std::size_t HashChain::memory_bytes() const noexcept {
  const std::size_t h = crypto::digest_size(algo_);
  if (storage_ == ChainStorage::kSeedOnly) return h;
  return elements_.size() * h;
}

Digest ChainWalker::peek(std::size_t offset) const {
  if (offset > next_ || next_ == 0) {
    throw std::out_of_range("ChainWalker::peek: chain exhausted");
  }
  return chain_->element(next_ - offset);
}

Digest ChainWalker::take(std::size_t steps) {
  if (steps == 0) throw std::invalid_argument("ChainWalker::take: steps == 0");
  if (next_ == 0 || steps > next_) {
    throw std::out_of_range("ChainWalker::take: chain exhausted");
  }
  const Digest out = chain_->element(next_);
  next_ -= steps;
  return out;
}

bool ChainVerifier::accept_or_derive(const Digest& element,
                                     std::size_t index) {
  if (index == last_index_) return element.ct_equals(last_);
  if (index > last_index_) {
    if (index - last_index_ > max_gap_) return false;
    const Digest derived =
        chain_advance(algo_, tagging_, last_, last_index_, index);
    return derived.ct_equals(element);
  }
  return accept(element, index);
}

bool ChainVerifier::accept(const Digest& element, std::size_t index) {
  if (index >= last_index_) return false;
  if (last_index_ - index > max_gap_) return false;
  const Digest advanced =
      chain_advance(algo_, tagging_, element, index, last_index_);
  if (!advanced.ct_equals(last_)) return false;
  last_ = element;
  last_index_ = index;
  return true;
}

std::optional<std::size_t> ChainVerifier::accept_auto(const Digest& element) {
  // Tags depend on absolute indices, so candidates at different gaps cannot
  // share intermediate hashes; O(max_gap^2) fixed-size hashes worst case,
  // which is tiny for the default gap of 64.
  for (std::size_t gap = 1; gap <= max_gap_ && gap <= last_index_; ++gap) {
    const std::size_t index = last_index_ - gap;
    const Digest advanced =
        chain_advance(algo_, tagging_, element, index, last_index_);
    if (advanced.ct_equals(last_)) {
      last_ = element;
      last_index_ = index;
      return index;
    }
  }
  return std::nullopt;
}

}  // namespace alpha::hashchain
