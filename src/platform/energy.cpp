#include "platform/energy.hpp"

namespace alpha::platform {

EnergyEstimate estimate_alpha_c_energy(const DeviceSpec& dev,
                                       const EnergyModel& energy,
                                       std::size_t packet_payload,
                                       std::size_t presigs_per_s1) {
  EnergyEstimate est;
  const double mac_us = dev.hash.cost_us(packet_payload - dev.hash_size);
  const double chain_us =
      dev.hash.cost_us(dev.hash_size) / static_cast<double>(presigs_per_s1);
  est.cpu_uj = energy.cpu_uj(mac_us + chain_us);
  est.radio_uj = energy.relay_radio_uj(packet_payload);
  return est;
}

EnergyEstimate estimate_blind_energy(const EnergyModel& energy,
                                     std::size_t packet_payload) {
  EnergyEstimate est;
  est.radio_uj = energy.relay_radio_uj(packet_payload);
  return est;
}

EnergyEstimate estimate_ecc_energy(const EnergyModel& energy,
                                   std::size_t packet_payload,
                                   double ec_verify_ms) {
  EnergyEstimate est;
  est.cpu_uj = energy.cpu_uj(ec_verify_ms * 1000.0);
  est.radio_uj = energy.relay_radio_uj(packet_payload);
  return est;
}

FloodEnergy estimate_flood_energy(const DeviceSpec& dev,
                                  const EnergyModel& energy, std::size_t hops,
                                  std::size_t frames, std::size_t frame_size) {
  FloodEnergy out;
  const double n = static_cast<double>(frames);

  // With ALPHA: the entry relay receives each frame, spends one failed
  // lookup/check (bounded by a MAC attempt), and drops it. Receive-only
  // radio; no retransmission, no downstream cost.
  const double check_us = dev.hash.cost_us(frame_size);
  out.with_alpha_j =
      n *
      (energy.cpu_uj(check_us) +
       energy.rx_uj_per_byte * static_cast<double>(frame_size)) /
      1e6;

  // Without ALPHA: every hop receives and retransmits every frame.
  out.without_alpha_j = n * static_cast<double>(hops) *
                        energy.relay_radio_uj(frame_size) / 1e6;
  return out;
}

}  // namespace alpha::platform
