// Energy model for sensor-class nodes.
//
// The paper's motivation is energy ("resource exhaustion attacks (e.g.
// targeting energy, bandwidth, and CPU resources)", §1) but its evaluation
// reports time and bytes only. This model converts both into energy so the
// benches can rank schemes the way a deployment would: CPU energy = active
// power x computation time, radio energy = per-byte transmit/receive cost.
//
// Default constants approximate the paper's CC2430-class node (8051 MCU +
// IEEE 802.15.4 radio at 3 V): ~27 mA active current for CPU+AES, ~30 mA
// radio current at 250 kbit/s. They are deployment parameters, not
// measurements -- every value is explicit and overridable.
#pragma once

#include <cstddef>

#include "platform/devices.hpp"

namespace alpha::platform {

struct EnergyModel {
  /// Active CPU power while hashing/verifying (W). 27 mA x 3 V.
  double cpu_power_w = 0.081;
  /// Radio energy per transmitted byte (uJ/B): 30 mA x 3 V at 250 kbit/s
  /// = 90 mW / 31.25 kB/s = 2.88 uJ/B.
  double tx_uj_per_byte = 2.88;
  /// Radio energy per received byte (uJ/B); receive current is comparable.
  double rx_uj_per_byte = 2.88;

  /// Energy for `us` microseconds of computation (uJ).
  double cpu_uj(double us) const { return cpu_power_w * us; }
  /// Energy to relay (receive + retransmit) `bytes` (uJ).
  double relay_radio_uj(std::size_t bytes) const {
    return (tx_uj_per_byte + rx_uj_per_byte) * static_cast<double>(bytes);
  }
};

/// Per-message relay energy for one scheme on one device.
struct EnergyEstimate {
  double cpu_uj = 0;    // verification work
  double radio_uj = 0;  // receive + forward
  double total_uj() const { return cpu_uj + radio_uj; }
  /// Energy per delivered payload byte (uJ/B).
  double per_payload_byte(std::size_t payload) const {
    return payload == 0 ? 0 : total_uj() / static_cast<double>(payload);
  }
};

/// Relay energy to verify-and-forward one ALPHA-C message: MAC over the
/// message + amortized chain verification (CPU) plus the whole packet over
/// the radio twice. `packet_payload`/`presigs` as in §4.1.3.
EnergyEstimate estimate_alpha_c_energy(const DeviceSpec& dev,
                                       const EnergyModel& energy,
                                       std::size_t packet_payload,
                                       std::size_t presigs_per_s1);

/// Relay energy for a blind forwarder (no verification): radio only.
/// What a symmetric-e2e deployment spends while still carrying forgeries.
EnergyEstimate estimate_blind_energy(const EnergyModel& energy,
                                     std::size_t packet_payload);

/// Relay energy for per-packet ECC verification (the Gura et al. cost the
/// paper cites: `ec_verify_ms` per packet, default 2 x 0.81 s point mults).
EnergyEstimate estimate_ecc_energy(const EnergyModel& energy,
                                   std::size_t packet_payload,
                                   double ec_verify_ms = 1620.0);

/// The §3.5 flood argument in energy terms: joules a downstream path of
/// `hops` relays spends carrying `frames` forged frames of `frame_size`
/// bytes -- with ALPHA (dropped at the first relay: its CPU check only)
/// vs. without (all hops pay radio + nothing detects it).
struct FloodEnergy {
  double with_alpha_j = 0;
  double without_alpha_j = 0;
};
FloodEnergy estimate_flood_energy(const DeviceSpec& dev,
                                  const EnergyModel& energy, std::size_t hops,
                                  std::size_t frames, std::size_t frame_size);

}  // namespace alpha::platform
