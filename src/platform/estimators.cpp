#include "platform/estimators.hpp"

#include <bit>

namespace alpha::platform {

std::size_t ceil_log2(std::size_t n) {
  if (n <= 1) return 0;
  return static_cast<std::size_t>(std::countr_zero(std::bit_ceil(n)));
}

std::optional<std::size_t> alpha_m_payload_per_packet(std::size_t n,
                                                      std::size_t packet_size,
                                                      std::size_t hash_size) {
  const std::size_t sig_bytes = hash_size * (ceil_log2(n) + 1);
  if (sig_bytes >= packet_size) return std::nullopt;
  return packet_size - sig_bytes;
}

std::optional<std::size_t> eq1_signed_bytes(std::size_t n,
                                            std::size_t packet_size,
                                            std::size_t hash_size) {
  const auto payload = alpha_m_payload_per_packet(n, packet_size, hash_size);
  if (!payload.has_value()) return std::nullopt;
  return n * *payload;
}

std::optional<double> overhead_ratio(std::size_t n, std::size_t packet_size,
                                     std::size_t hash_size) {
  const auto payload = alpha_m_payload_per_packet(n, packet_size, hash_size);
  if (!payload.has_value() || *payload == 0) return std::nullopt;
  return static_cast<double>(packet_size) / static_cast<double>(*payload);
}

Table1Row table1_row(AlphaMode mode, Role role, std::size_t n) {
  const double nn = static_cast<double>(n);
  const double lg = static_cast<double>(ceil_log2(n));
  switch (mode) {
    case AlphaMode::kBase:
      // n is 1 by definition in base mode.
      switch (role) {
        case Role::kSigner: return {1, 2, 1, 1};
        case Role::kVerifier: return {1, 2, 1, 2};
        case Role::kRelay: return {1, 0, 1, 1};
      }
      break;
    case AlphaMode::kCumulative:
      switch (role) {
        case Role::kSigner: return {1, 2 / nn, 1 / nn, 1};
        case Role::kVerifier: return {1, 2 / nn, 1 / nn, 2};
        case Role::kRelay: return {1, 0, 1 / nn, 1};
      }
      break;
    case AlphaMode::kMerkle:
      switch (role) {
        case Role::kSigner:
          return {1 + 2 - 1 / nn, 2 / nn, 1 / nn, 2 + lg};
        case Role::kVerifier:
          return {1 + lg, 2 / nn, 1 / nn, 4 - 1 / nn};
        case Role::kRelay:
          return {1 + lg, 0, 1 / nn, 2 + lg};
      }
      break;
  }
  return {};
}

MemoryRow table2_memory(AlphaMode mode, std::size_t n, std::size_t m,
                        std::size_t h) {
  if (mode == AlphaMode::kMerkle) {
    return {n * m + (2 * n - 1) * h, h, h};
  }
  return {n * (m + h), n * h, n * h};
}

MemoryRow table3_ack_memory(AlphaMode mode, std::size_t n, std::size_t s,
                            std::size_t h) {
  if (mode == AlphaMode::kMerkle) {
    return {h, n * s + (4 * n - 1) * h, h};
  }
  return {2 * n * h, 2 * n * h, 2 * n * h};
}

AlphaCEstimate estimate_alpha_c(const DeviceSpec& dev, std::size_t packet_size,
                                std::size_t presigs_per_s1) {
  // Per S2 on a relay: one MAC over the packet plus the S1's chain-element
  // verification amortized over the batch (the paper: "the computation of
  // the SHA-1 MAC is responsible for 99% of the total computational cost").
  const double mac_us = dev.hash.cost_us(packet_size);
  const double s1_share_us =
      dev.hash.cost_us(dev.hash_size) / static_cast<double>(presigs_per_s1);
  AlphaCEstimate est;
  est.per_packet_us = mac_us + s1_share_us;
  est.throughput_mbps =
      static_cast<double>(packet_size) * 8.0 / est.per_packet_us;
  return est;
}

AlphaMEstimate estimate_alpha_m(const DeviceSpec& dev, std::size_t leaves,
                                std::size_t packet_size) {
  AlphaMEstimate est;
  est.leaves = leaves;
  const std::size_t d = ceil_log2(leaves);
  est.payload_bytes =
      alpha_m_payload_per_packet(leaves, packet_size, dev.hash_size)
          .value_or(0);
  // Per S2: hash the packet-sized payload once, then d fixed-size node
  // combines up the tree (the paper prices combines at the small-input
  // hash cost of Table 5).
  est.processing_us = dev.hash.cost_us(packet_size) +
                      static_cast<double>(d) * dev.hash.cost_us(dev.hash_size);
  const double s1_share_us =
      dev.hash.cost_us(dev.hash_size) / static_cast<double>(leaves);
  est.throughput_mbps = static_cast<double>(est.payload_bytes) * 8.0 /
                        (est.processing_us + s1_share_us);
  est.data_per_s1_mbit = static_cast<double>(leaves) *
                         static_cast<double>(est.payload_bytes) * 8.0 / 1e6;
  return est;
}

WsnEstimate estimate_wsn_alpha_c(const DeviceSpec& dev,
                                 std::size_t packet_payload,
                                 std::size_t presigs_per_s1,
                                 bool with_preacks) {
  const std::size_t h = dev.hash_size;
  const double n = static_cast<double>(presigs_per_s1);

  // Relay cost per S2: MAC over the message (payload minus the disclosed
  // chain element, the paper's 84 B point for 100 B packets) plus the S1
  // chain verification amortized over the batch.
  const double mac_us = dev.hash.cost_us(packet_payload - h);
  double per_packet_us = mac_us + dev.hash.cost_us(h) / n;

  // Signature overhead inside the packet payload: chain element + MAC +
  // the packet's share of the S1 pre-signature.
  double overhead = static_cast<double>(2 * h) + static_cast<double>(h) / n;

  if (with_preacks) {
    // Extra relay work per message: verify the A1 ack element (amortized)
    // and recompute one pre-(n)ack commitment -- priced as one fixed-size
    // hash operation, matching the paper's derivation granularity.
    per_packet_us += dev.hash.cost_us(h) / n;
    per_packet_us += dev.hash.cost_us(h);
    // And extra bytes: the pre-ack pair travels in the A1 (2h per message
    // across the round), the A2 discloses h + secret.
    overhead += static_cast<double>(2 * h) / n;
  }

  WsnEstimate est;
  est.per_packet_ms = per_packet_us / 1000.0;
  est.packets_per_s = 1e6 / per_packet_us;
  est.payload_per_packet =
      packet_payload > static_cast<std::size_t>(overhead)
          ? packet_payload - static_cast<std::size_t>(overhead)
          : 0;
  est.goodput_kbps = est.packets_per_s *
                     static_cast<double>(est.payload_per_packet) * 8.0 / 1000.0;
  return est;
}

}  // namespace alpha::platform
