// Device cost models calibrated from the paper's measurements.
//
// The paper's hardware (Nokia 770, Xeon, La Fonera AR2315, Netgear BCM5365,
// AMD Geode LX800 mesh router, AquisGrain CC2430 sensor node) is not
// available; instead, each device is modelled by the primitive costs the
// paper itself measured (Table 4: SHA-1 + RSA/DSA on Nokia/Xeon; Table 5:
// SHA-1 for 20 B and 1024 B digests on the routers; §4.1.3: AES-MMO for
// 16 B and 84 B inputs on the CC2430). Hash cost is interpolated linearly
// between the two measured points -- exactly the derivation the paper's own
// §4.1.2/§4.1.3 estimates perform.
#pragma once

#include <cstddef>
#include <string>

namespace alpha::platform {

/// Affine hash-cost model from two measured (input size, time) points.
struct HashCostModel {
  double base_us = 0.0;
  double per_byte_us = 0.0;

  static HashCostModel from_points(std::size_t size1, double us1,
                                   std::size_t size2, double us2);

  double cost_us(std::size_t input_bytes) const {
    return base_us + per_byte_us * static_cast<double>(input_bytes);
  }
};

struct DeviceSpec {
  std::string name;
  HashCostModel hash;      // the device's hash function
  std::size_t hash_size;   // digest bytes (paper's h): 20 SHA-1, 16 MMO
  // Public-key costs (Table 4 devices only; 0 = not measured).
  double rsa_sign_ms = 0.0;
  double rsa_verify_ms = 0.0;
  double dsa_sign_ms = 0.0;
  double dsa_verify_ms = 0.0;
};

namespace devices {

/// Nokia 770 Internet Tablet, 220 MHz ARM-926 (Table 4).
DeviceSpec nokia770();
/// Intel Xeon 3.2 GHz server (Table 4).
DeviceSpec xeon();
/// "La Fonera", 180 MHz Atheros AR2315 MIPS (Table 5).
DeviceSpec ar2315();
/// Netgear WGT634U, 200 MHz Broadcom 5365 MIPS (Table 5).
DeviceSpec bcm5365();
/// Custom mesh router, 500 MHz AMD Geode LX800 (Table 5).
DeviceSpec geode_lx();
/// AquisGrain 2.0 sensor node, 16 MHz CC2430 with AES hardware (§4.1.3).
DeviceSpec cc2430();

}  // namespace devices

}  // namespace alpha::platform
