#include "platform/devices.hpp"

namespace alpha::platform {

HashCostModel HashCostModel::from_points(std::size_t size1, double us1,
                                         std::size_t size2, double us2) {
  HashCostModel m;
  m.per_byte_us = (us2 - us1) / static_cast<double>(size2 - size1);
  m.base_us = us1 - m.per_byte_us * static_cast<double>(size1);
  return m;
}

namespace devices {

DeviceSpec nokia770() {
  // Table 4 measures a single SHA-1 at 0.02 ms. The paper gives no second
  // point; the per-byte slope is extrapolated from the AR2315 (same-era MIPS
  // class) scaled by the clock ratio 180/220.
  DeviceSpec d;
  d.name = "Nokia 770 (ARM926 220 MHz)";
  const double per_byte = (360.0 - 59.0) / (1024.0 - 20.0) * (180.0 / 220.0);
  d.hash = HashCostModel{20.0 - per_byte * 20.0, per_byte};
  d.hash_size = 20;
  d.rsa_sign_ms = 181.32;
  d.rsa_verify_ms = 10.53;
  d.dsa_sign_ms = 96.71;
  d.dsa_verify_ms = 118.73;
  return d;
}

DeviceSpec xeon() {
  // Table 4: SHA-1 0.01 ms (small input). Slope assumed ~0.01 us/B
  // (2008-era x86 SHA-1 throughput ~100 MB/s including call overhead).
  DeviceSpec d;
  d.name = "Intel Xeon 3.2 GHz";
  d.hash = HashCostModel::from_points(20, 10.0, 1024, 20.0);
  d.hash_size = 20;
  d.rsa_sign_ms = 9.09;
  d.rsa_verify_ms = 0.15;
  d.dsa_sign_ms = 1.34;
  d.dsa_verify_ms = 1.61;
  return d;
}

DeviceSpec ar2315() {
  // Table 5: 0.059 ms / 20 B digest, 0.360 ms / 1024 B digest.
  DeviceSpec d;
  d.name = "Atheros AR2315 (La Fonera, 180 MHz MIPS)";
  d.hash = HashCostModel::from_points(20, 59.0, 1024, 360.0);
  d.hash_size = 20;
  return d;
}

DeviceSpec bcm5365() {
  // Table 5: 0.046 ms / 20 B, 0.361 ms / 1024 B.
  DeviceSpec d;
  d.name = "Broadcom 5365 (Netgear WGT634U, 200 MHz MIPS)";
  d.hash = HashCostModel::from_points(20, 46.0, 1024, 361.0);
  d.hash_size = 20;
  return d;
}

DeviceSpec geode_lx() {
  // Table 5: 0.011 ms / 20 B, 0.062 ms / 1024 B.
  DeviceSpec d;
  d.name = "AMD Geode LX800 (500 MHz x86)";
  d.hash = HashCostModel::from_points(20, 11.0, 1024, 62.0);
  d.hash_size = 20;
  return d;
}

DeviceSpec cc2430() {
  // §4.1.3: AES-MMO 0.78 ms / 16 B input, 2.01 ms / 84 B input
  // (includes memory <-> network-chip transfer time).
  DeviceSpec d;
  d.name = "CC2430 (AquisGrain 2.0, 16 MHz, AES hardware)";
  d.hash = HashCostModel::from_points(16, 780.0, 84, 2010.0);
  d.hash_size = 16;
  return d;
}

}  // namespace devices

}  // namespace alpha::platform
