// Analytical estimators reproducing the paper's evaluation arithmetic.
//
// §4.1.2 (WMN: ALPHA-C upper bounds and Table 6 for ALPHA-M) and §4.1.3
// (WSN: ALPHA-C on the CC2430) derive protocol-level throughput from
// measured primitive costs. These functions perform the same derivations on
// a DeviceSpec, plus the closed forms behind Figures 5/6 (Eq. 1) and
// Tables 1-3.
#pragma once

#include <cstddef>
#include <optional>

#include "platform/devices.hpp"

namespace alpha::platform {

// ---------------------------------------------------------------------------
// Eq. 1 / Figures 5 and 6
// ---------------------------------------------------------------------------

/// ceil(log2(n)) for n >= 1.
std::size_t ceil_log2(std::size_t n);

/// Payload bytes one S2 packet carries in ALPHA-M: spacket - sh*(d+1) where
/// d = ceil(log2 n) (Eq. 1's per-packet term). nullopt when the signature
/// data no longer fits the packet.
std::optional<std::size_t> alpha_m_payload_per_packet(std::size_t n,
                                                      std::size_t packet_size,
                                                      std::size_t hash_size);

/// Eq. 1: total payload bytes covered by one S1 pre-signature with n S2
/// packets of `packet_size` and `hash_size`-byte hashes (Figure 5 series).
std::optional<std::size_t> eq1_signed_bytes(std::size_t n,
                                            std::size_t packet_size,
                                            std::size_t hash_size);

/// Figure 6: transferred bytes per signed payload byte (the overhead ratio,
/// = packet_size / per-packet payload). nullopt when infeasible.
std::optional<double> overhead_ratio(std::size_t n, std::size_t packet_size,
                                     std::size_t hash_size);

// ---------------------------------------------------------------------------
// Table 1: hash computations per message (analytical counts)
// ---------------------------------------------------------------------------

enum class AlphaMode { kBase, kCumulative, kMerkle };
enum class Role { kSigner, kVerifier, kRelay };

struct Table1Row {
  double signature;     // MAC / MT work ('*' entries are whole-message MACs)
  double chain_create;  // off-line capable ('+' entries)
  double chain_verify;
  double ack_nack;
};

/// The paper's Table 1 entry for (mode, role) with n messages per S1.
Table1Row table1_row(AlphaMode mode, Role role, std::size_t n);

// ---------------------------------------------------------------------------
// Tables 2 / 3: memory (bytes) for n parallel messages
// ---------------------------------------------------------------------------

struct MemoryRow {
  std::size_t signer;
  std::size_t verifier;
  std::size_t relay;
};

/// Table 2: buffering for n messages of size m with hash size h.
MemoryRow table2_memory(AlphaMode mode, std::size_t n, std::size_t m,
                        std::size_t h);

/// Table 3: additional memory for n parallel acknowledgments
/// (secret size s, hash size h).
MemoryRow table3_ack_memory(AlphaMode mode, std::size_t n, std::size_t s,
                            std::size_t h);

// ---------------------------------------------------------------------------
// §4.1.2: WMN estimates (ALPHA-C upper bound, Table 6 for ALPHA-M)
// ---------------------------------------------------------------------------

struct AlphaCEstimate {
  double per_packet_us;    // relay cost to verify one S2
  double throughput_mbps;  // verifiable payload upper bound
};

/// ALPHA-C: each S2 costs one MAC over the packet plus the amortized
/// verification of the S1's chain element (1/presigs of a small hash).
AlphaCEstimate estimate_alpha_c(const DeviceSpec& dev, std::size_t packet_size,
                                std::size_t presigs_per_s1);

struct AlphaMEstimate {
  std::size_t leaves;
  double processing_us;     // per-S2: payload hash + log2(n) node combines
  std::size_t payload_bytes;
  double throughput_mbps;   // payload_bits / (processing + S1 share)
  double data_per_s1_mbit;  // n * payload (Table 6 last column)
};

/// Table 6 rows: ALPHA-M per-packet cost and throughput for a leaf count.
AlphaMEstimate estimate_alpha_m(const DeviceSpec& dev, std::size_t leaves,
                                std::size_t packet_size);

// ---------------------------------------------------------------------------
// §4.1.3: WSN estimate (ALPHA-C on the CC2430)
// ---------------------------------------------------------------------------

struct WsnEstimate {
  double per_packet_ms;    // relay verification cost per S2
  double packets_per_s;
  double goodput_kbps;     // verified signed payload
  std::size_t payload_per_packet;  // after signature overhead
};

/// The paper's example: 100 B packet payload, 16 B MMO hashes, 5 pre-signed
/// messages per S1; optionally with pre-acks (reliable mode).
WsnEstimate estimate_wsn_alpha_c(const DeviceSpec& dev,
                                 std::size_t packet_payload,
                                 std::size_t presigs_per_s1,
                                 bool with_preacks);

}  // namespace alpha::platform
