#include "merkle/merkle.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace alpha::merkle {

std::size_t AuthPath::wire_size() const noexcept {
  std::size_t total = 0;
  for (const auto& d : siblings) total += d.size();
  return total;
}

MerkleTree::MerkleTree(HashAlgo algo, const std::vector<Bytes>& messages)
    : algo_(algo) {
  if (messages.empty()) {
    throw std::invalid_argument("MerkleTree: no messages");
  }
  std::vector<Digest> leaves;
  leaves.reserve(messages.size());
  for (const auto& m : messages) {
    leaves.push_back(crypto::hash(algo_, m));
  }
  build(std::move(leaves));
}

MerkleTree::MerkleTree(HashAlgo algo, std::vector<Digest> leaf_digests)
    : algo_(algo) {
  if (leaf_digests.empty()) {
    throw std::invalid_argument("MerkleTree: no leaves");
  }
  build(std::move(leaf_digests));
}

void MerkleTree::build(std::vector<Digest> leaf_digests) {
  leaf_count_ = leaf_digests.size();
  width_ = std::bit_ceil(leaf_count_);
  depth_ = static_cast<std::size_t>(std::countr_zero(width_));

  // Pad to the full width with zero digests of the algorithm's size.
  const Digest zero{crypto::Bytes(crypto::digest_size(algo_), 0x00)};
  leaf_digests.resize(width_, zero);

  nodes_ = std::move(leaf_digests);
  // Exact reservation (2*width - 2 total nodes for width >= 2) so the
  // push_back loop below never reallocates while we read earlier nodes.
  nodes_.reserve(width_ == 1 ? 1 : 2 * width_ - 2);
  for (std::size_t l = 1; l < depth_; ++l) {
    const std::size_t below = level_offset(l - 1);
    const std::size_t count = width_ >> l;
    for (std::size_t i = 0; i < count; ++i) {
      nodes_.push_back(crypto::hash2(algo_, nodes_[below + 2 * i].view(),
                                     nodes_[below + 2 * i + 1].view()));
    }
  }

  const std::size_t top = level_offset(depth_ == 0 ? 0 : depth_ - 1);
  root_ = width_ == 1
              ? nodes_[0]
              : crypto::hash2(algo_, nodes_[top].view(), nodes_[top + 1].view());
  keyed_root_cached_ = false;
}

Digest MerkleTree::keyed_root(ByteView key) const {
  const bool cacheable = key.size() <= Digest::kMaxSize;
  if (cacheable && keyed_root_cached_ && cached_key_.view().size() == key.size() &&
      std::equal(key.begin(), key.end(), cached_key_.data())) {
    return cached_keyed_root_;
  }
  Digest r;
  if (width_ == 1) {
    r = crypto::hash2(algo_, key, nodes_[0].view());
  } else {
    const std::size_t top = level_offset(depth_ - 1);
    r = crypto::hash3(algo_, key, nodes_[top].view(), nodes_[top + 1].view());
  }
  if (cacheable) {
    cached_key_ = Digest{key};
    cached_keyed_root_ = r;
    keyed_root_cached_ = true;
  }
  return r;
}

Digest MerkleTree::leaf(std::size_t index) const {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::leaf: index out of range");
  }
  return nodes_[index];
}

AuthPath MerkleTree::auth_path(std::size_t index) const {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::auth_path: index out of range");
  }
  AuthPath path;
  path.leaf_index = index;
  path.siblings.reserve(depth_);
  std::size_t pos = index;
  for (std::size_t l = 0; l < depth_; ++l) {
    path.siblings.push_back(nodes_[level_offset(l) + (pos ^ 1)]);
    pos >>= 1;
  }
  return path;
}

Digest MerkleTree::root_from_path(HashAlgo algo, const Digest& leaf_digest,
                                  const AuthPath& path) {
  Digest cur = leaf_digest;
  std::size_t pos = path.leaf_index;
  for (const auto& sibling : path.siblings) {
    cur = (pos & 1) ? crypto::hash2(algo, sibling.view(), cur.view())
                    : crypto::hash2(algo, cur.view(), sibling.view());
    pos >>= 1;
  }
  return cur;
}

bool MerkleTree::verify(HashAlgo algo, const Digest& leaf_digest,
                        const AuthPath& path, const Digest& expected_root) {
  return root_from_path(algo, leaf_digest, path).ct_equals(expected_root);
}

bool MerkleTree::verify_keyed(HashAlgo algo, ByteView key,
                              const Digest& leaf_digest, const AuthPath& path,
                              const Digest& expected_keyed_root) {
  if (path.siblings.empty()) {
    // Single-leaf tree: r = H(key | leaf).
    return crypto::hash2(algo, key, leaf_digest.view())
        .ct_equals(expected_keyed_root);
  }
  // Recompute up to the two children of the root, then the keyed combine.
  Digest cur = leaf_digest;
  std::size_t pos = path.leaf_index;
  for (std::size_t i = 0; i + 1 < path.siblings.size(); ++i) {
    const auto& sibling = path.siblings[i];
    cur = (pos & 1) ? crypto::hash2(algo, sibling.view(), cur.view())
                    : crypto::hash2(algo, cur.view(), sibling.view());
    pos >>= 1;
  }
  const Digest& sibling = path.siblings.back();
  const Digest computed =
      (pos & 1) ? crypto::hash3(algo, key, sibling.view(), cur.view())
                : crypto::hash3(algo, key, cur.view(), sibling.view());
  return computed.ct_equals(expected_keyed_root);
}

std::size_t verify_hash_cost(std::size_t leaves) noexcept {
  if (leaves <= 1) return 1;
  return static_cast<std::size_t>(std::countr_zero(std::bit_ceil(leaves))) + 1;
}

std::size_t build_hash_cost(std::size_t leaves) noexcept {
  if (leaves == 0) return 0;
  const std::size_t width = std::bit_ceil(leaves);
  // n message hashes + (width - 1) combines, counting the keyed root.
  return leaves + width - 1;
}

}  // namespace alpha::merkle
