#include "merkle/merkle.hpp"

#include <bit>
#include <stdexcept>

namespace alpha::merkle {

std::size_t AuthPath::wire_size() const noexcept {
  std::size_t total = 0;
  for (const auto& d : siblings) total += d.size();
  return total;
}

MerkleTree::MerkleTree(HashAlgo algo, const std::vector<Bytes>& messages)
    : algo_(algo) {
  if (messages.empty()) {
    throw std::invalid_argument("MerkleTree: no messages");
  }
  std::vector<Digest> leaves;
  leaves.reserve(messages.size());
  for (const auto& m : messages) {
    leaves.push_back(crypto::hash(algo_, m));
  }
  build(std::move(leaves));
}

MerkleTree::MerkleTree(HashAlgo algo, std::vector<Digest> leaf_digests)
    : algo_(algo) {
  if (leaf_digests.empty()) {
    throw std::invalid_argument("MerkleTree: no leaves");
  }
  build(std::move(leaf_digests));
}

void MerkleTree::build(std::vector<Digest> leaf_digests) {
  leaf_count_ = leaf_digests.size();
  width_ = std::bit_ceil(leaf_count_);
  depth_ = static_cast<std::size_t>(std::countr_zero(width_));

  // Pad to the full width with zero digests of the algorithm's size.
  const Digest zero{crypto::Bytes(crypto::digest_size(algo_), 0x00)};
  leaf_digests.resize(width_, zero);

  levels_.clear();
  levels_.push_back(std::move(leaf_digests));
  while (levels_.back().size() > 2) {
    const auto& below = levels_.back();
    std::vector<Digest> above;
    above.reserve(below.size() / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      above.push_back(
          crypto::hash2(algo_, below[i].view(), below[i + 1].view()));
    }
    levels_.push_back(std::move(above));
  }

  const auto& top = levels_.back();
  root_ = top.size() == 1
              ? top[0]
              : crypto::hash2(algo_, top[0].view(), top[1].view());
}

Digest MerkleTree::keyed_root(ByteView key) const {
  const auto& top = levels_.back();
  if (top.size() == 1) {
    return crypto::hash2(algo_, key, top[0].view());
  }
  return crypto::hash3(algo_, key, top[0].view(), top[1].view());
}

Digest MerkleTree::leaf(std::size_t index) const {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::leaf: index out of range");
  }
  return levels_[0][index];
}

AuthPath MerkleTree::auth_path(std::size_t index) const {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::auth_path: index out of range");
  }
  AuthPath path;
  path.leaf_index = index;
  path.siblings.reserve(depth_);
  std::size_t pos = index;
  for (const auto& level : levels_) {
    if (level.size() < 2) break;
    path.siblings.push_back(level[pos ^ 1]);
    pos >>= 1;
  }
  return path;
}

Digest MerkleTree::root_from_path(HashAlgo algo, const Digest& leaf_digest,
                                  const AuthPath& path) {
  Digest cur = leaf_digest;
  std::size_t pos = path.leaf_index;
  for (const auto& sibling : path.siblings) {
    cur = (pos & 1) ? crypto::hash2(algo, sibling.view(), cur.view())
                    : crypto::hash2(algo, cur.view(), sibling.view());
    pos >>= 1;
  }
  return cur;
}

bool MerkleTree::verify(HashAlgo algo, const Digest& leaf_digest,
                        const AuthPath& path, const Digest& expected_root) {
  return root_from_path(algo, leaf_digest, path).ct_equals(expected_root);
}

bool MerkleTree::verify_keyed(HashAlgo algo, ByteView key,
                              const Digest& leaf_digest, const AuthPath& path,
                              const Digest& expected_keyed_root) {
  if (path.siblings.empty()) {
    // Single-leaf tree: r = H(key | leaf).
    return crypto::hash2(algo, key, leaf_digest.view())
        .ct_equals(expected_keyed_root);
  }
  // Recompute up to the two children of the root, then the keyed combine.
  Digest cur = leaf_digest;
  std::size_t pos = path.leaf_index;
  for (std::size_t i = 0; i + 1 < path.siblings.size(); ++i) {
    const auto& sibling = path.siblings[i];
    cur = (pos & 1) ? crypto::hash2(algo, sibling.view(), cur.view())
                    : crypto::hash2(algo, cur.view(), sibling.view());
    pos >>= 1;
  }
  const Digest& sibling = path.siblings.back();
  const Digest computed =
      (pos & 1) ? crypto::hash3(algo, key, sibling.view(), cur.view())
                : crypto::hash3(algo, key, cur.view(), sibling.view());
  return computed.ct_equals(expected_keyed_root);
}

std::size_t verify_hash_cost(std::size_t leaves) noexcept {
  if (leaves <= 1) return 1;
  return static_cast<std::size_t>(std::countr_zero(std::bit_ceil(leaves))) + 1;
}

std::size_t build_hash_cost(std::size_t leaves) noexcept {
  if (leaves == 0) return 0;
  const std::size_t width = std::bit_ceil(leaves);
  // n message hashes + (width - 1) combines, counting the keyed root.
  return leaves + width - 1;
}

}  // namespace alpha::merkle
