#include "merkle/amt.hpp"

#include <stdexcept>

namespace alpha::merkle {

namespace {
std::vector<Digest> build_leaves(HashAlgo algo, std::size_t n,
                                 const std::vector<Bytes>& secrets) {
  std::vector<Digest> leaves;
  leaves.reserve(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    const std::uint16_t index = static_cast<std::uint16_t>(i % n);
    const std::uint8_t enc[2] = {static_cast<std::uint8_t>(index >> 8),
                                 static_cast<std::uint8_t>(index)};
    leaves.push_back(
        crypto::hash2(algo, ByteView{enc, 2}, secrets[i]));
  }
  return leaves;
}
}  // namespace

Digest AckMerkleTree::make_leaf(HashAlgo algo, std::uint16_t index,
                                ByteView secret) {
  const std::uint8_t enc[2] = {static_cast<std::uint8_t>(index >> 8),
                               static_cast<std::uint8_t>(index)};
  return crypto::hash2(algo, ByteView{enc, 2}, secret);
}

AckMerkleTree::AckMerkleTree(HashAlgo algo, std::size_t message_count,
                             crypto::RandomSource& rng,
                             std::size_t secret_size)
    : algo_(algo),
      n_(message_count),
      secret_size_(secret_size),
      secrets_([&] {
        if (message_count == 0 || message_count > 0xffff) {
          throw std::invalid_argument(
              "AckMerkleTree: message_count must be in [1, 65535]");
        }
        std::vector<Bytes> s;
        s.reserve(2 * message_count);
        for (std::size_t i = 0; i < 2 * message_count; ++i) {
          s.push_back(rng.bytes(secret_size));
        }
        return s;
      }()),
      tree_(algo, build_leaves(algo, n_, secrets_)) {}

AckMerkleTree::Proof AckMerkleTree::prove(std::size_t msg_index,
                                          bool ack) const {
  if (msg_index >= n_) {
    throw std::out_of_range("AckMerkleTree::prove: index out of range");
  }
  const std::size_t leaf = ack ? msg_index : n_ + msg_index;
  Proof proof;
  proof.is_ack = ack;
  proof.msg_index = static_cast<std::uint16_t>(msg_index);
  proof.secret = secrets_[leaf];
  proof.path = tree_.auth_path(leaf);
  return proof;
}

bool AckMerkleTree::verify(HashAlgo algo, ByteView key, const Proof& proof,
                           const Digest& expected_keyed_root,
                           std::size_t message_count) {
  if (message_count == 0 || proof.msg_index >= message_count) return false;
  // The leaf position encoded in the path must match the claimed branch:
  // left half (< n) for acks, right half for nacks. Without this check a
  // nack secret could be replayed as an ack.
  const std::size_t expected_leaf = proof.is_ack
                                        ? proof.msg_index
                                        : message_count + proof.msg_index;
  if (proof.path.leaf_index != expected_leaf) return false;
  const Digest leaf = make_leaf(algo, proof.msg_index, proof.secret);
  return MerkleTree::verify_keyed(algo, key, leaf, proof.path,
                                  expected_keyed_root);
}

std::size_t AckMerkleTree::memory_bytes() const noexcept {
  const std::size_t h = crypto::digest_size(algo_);
  // 2n secrets + (2*width - 1) nodes + root.
  return 2 * n_ * secret_size_ + (2 * tree_.width() - 1) * h;
}

}  // namespace alpha::merkle
