// Acknowledgment Merkle Trees (AMT).
//
// ALPHA-M's selective reliability (paper §3.3.3, Fig. 7): per-message
// pre-acks would grow exponentially with tree depth, so the verifier instead
// builds a Merkle tree with 2n leaves for n messages. Leaf j (left half)
// is the *ack* for message j, leaf n+j (right half) the *nack*; each leaf is
// H(x_j | s_i) over the message index x_j and a per-leaf secret s_i. The
// root is keyed with the verifier's next undisclosed acknowledgment-chain
// element: r = H(k | ack_0 | nack_0), and travels in the A1 packet. An A2
// then discloses (x_j, s_i, {Bc}) so the signer and every relay can check
// each (n)ack individually, enabling selective-repeat / go-back-n.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/random.hpp"
#include "merkle/merkle.hpp"

namespace alpha::merkle {

class AckMerkleTree {
 public:
  /// Builds the AMT for `message_count` messages with fresh per-leaf secrets
  /// of `secret_size` bytes (2 * message_count secrets total).
  AckMerkleTree(HashAlgo algo, std::size_t message_count,
                crypto::RandomSource& rng, std::size_t secret_size = 16);

  std::size_t message_count() const noexcept { return n_; }
  std::size_t secret_size() const noexcept { return secret_size_; }

  /// Keyed root for the A1 packet (key = next undisclosed ack-chain element).
  Digest keyed_root(ByteView key) const { return tree_.keyed_root(key); }

  struct Proof {
    bool is_ack = true;
    std::uint16_t msg_index = 0;  // x_j
    Bytes secret;                 // s_i
    AuthPath path;                // {Bc} within the AMT

    std::size_t wire_size() const noexcept {
      return 1 + 2 + secret.size() + path.wire_size();
    }
  };

  /// Proof for message `msg_index` as an ack (true) or nack (false).
  Proof prove(std::size_t msg_index, bool ack) const;

  /// Verifies a disclosed (n)ack against the keyed root from the A1 packet.
  /// Checks leaf reconstruction, branch selection (left = ack) and the keyed
  /// root; `message_count` fixes the ack/nack boundary.
  static bool verify(HashAlgo algo, ByteView key, const Proof& proof,
                     const Digest& expected_keyed_root,
                     std::size_t message_count);

  /// Verifier-side memory: n secrets of size s for each of ack/nack plus the
  /// (4n-1) tree nodes (Table 3's ALPHA-M row: n*s + (4n-1)*h with both
  /// secret sets counted as 2n*s here; the paper counts only the n secrets
  /// that will be disclosed).
  std::size_t memory_bytes() const noexcept;

 private:
  static Digest make_leaf(HashAlgo algo, std::uint16_t index, ByteView secret);

  HashAlgo algo_;
  std::size_t n_;
  std::size_t secret_size_;
  std::vector<Bytes> secrets_;  // 2n secrets: [0,n) acks, [n,2n) nacks
  MerkleTree tree_;
};

}  // namespace alpha::merkle
