// Merkle trees for ALPHA-M pre-signatures.
//
// ALPHA-M (paper §3.3.2, Fig. 4) pre-signs a batch of n messages with a
// single Merkle-tree root: leaf b_j = H(m_j), inner nodes H(left | right),
// and a *keyed* root r = H(k | b_0 | b_1) that binds the tree to the signer's
// next undisclosed hash-chain element k. Each S2 packet carries one message
// m_j plus the complementary branch set {Bc} (the sibling of every node on
// the path from b_j to the root), making every S2 independently verifiable
// in ceil(log2(n)) + 1 hash operations.
//
// Trees are built over any n >= 1 leaves; n is padded up to the next power
// of two with zero digests (documented deviation: the paper always uses
// power-of-two batches, padding makes the API total without changing the
// power-of-two case).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/digest.hpp"
#include "crypto/hash.hpp"

namespace alpha::merkle {

using crypto::ByteView;
using crypto::Bytes;
using crypto::Digest;
using crypto::HashAlgo;

/// Authentication path for one leaf: the sibling digests from the leaf level
/// up to (and excluding) the root, i.e. the paper's {Bc}.
struct AuthPath {
  std::size_t leaf_index = 0;
  std::vector<Digest> siblings;  // siblings.front() is the leaf's sibling

  /// Serialized size in bytes (the |{Bc}|*h term of Eq. 1).
  std::size_t wire_size() const noexcept;
};

class MerkleTree {
 public:
  /// Builds a tree whose leaves are H(m_j) for each pre-image in `messages`.
  /// Throws std::invalid_argument when `messages` is empty.
  MerkleTree(HashAlgo algo, const std::vector<Bytes>& messages);

  /// Builds directly from leaf digests (used by the AMT and tests).
  MerkleTree(HashAlgo algo, std::vector<Digest> leaf_digests);

  std::size_t leaf_count() const noexcept { return leaf_count_; }
  /// Padded width (next power of two >= leaf_count).
  std::size_t width() const noexcept { return width_; }
  /// Tree depth: log2(width); 0 for a single leaf.
  std::size_t depth() const noexcept { return depth_; }

  /// Unkeyed root H(b_0 | b_1) (equals the single leaf when width == 1).
  const Digest& root() const noexcept { return root_; }

  /// ALPHA-M pre-signature root r = H(key | b_0 | b_1); for width == 1,
  /// r = H(key | leaf).
  Digest keyed_root(ByteView key) const;

  Digest leaf(std::size_t index) const;

  /// Complementary branches {Bc} for leaf `index` (< leaf_count).
  AuthPath auth_path(std::size_t index) const;

  /// Recomputes the root from a leaf digest and its path.
  static Digest root_from_path(HashAlgo algo, const Digest& leaf_digest,
                               const AuthPath& path);

  /// Verifies a leaf digest against an unkeyed root.
  static bool verify(HashAlgo algo, const Digest& leaf_digest,
                     const AuthPath& path, const Digest& expected_root);

  /// Verifies a leaf digest against a keyed root (the ALPHA-M S2 check):
  /// recomputes up to the two root children, then H(key | b_0 | b_1).
  static bool verify_keyed(HashAlgo algo, ByteView key,
                           const Digest& leaf_digest, const AuthPath& path,
                           const Digest& expected_keyed_root);

 private:
  void build(std::vector<Digest> leaf_digests);

  /// Offset of level `l` inside nodes_ (level 0 = leaves). Levels shrink
  /// geometrically, so the prefix sum telescopes: 2 * (width - width >> l).
  std::size_t level_offset(std::size_t l) const noexcept {
    return 2 * (width_ - (width_ >> l));
  }

  HashAlgo algo_;
  std::size_t leaf_count_ = 0;
  std::size_t width_ = 0;
  std::size_t depth_ = 0;
  // All levels in one flat allocation: leaves (padded to width_), then each
  // level above, down to the two root children (2*width - 2 nodes total; a
  // single node when width_ == 1). Interior nodes stay resident, so every
  // auth_path() for the batch is pure copying -- no recomputation.
  std::vector<Digest> nodes_;
  Digest root_;
  // keyed_root() memo: ALPHA-M keys a batch's root once per chain element
  // but the signer asks per S2 packet.
  mutable Digest cached_key_;
  mutable Digest cached_keyed_root_;
  mutable bool keyed_root_cached_ = false;
};

/// Number of hash evaluations to verify one S2: path recomputation plus the
/// keyed root (Table 1's "1 + log2(n)" verifier column).
std::size_t verify_hash_cost(std::size_t leaves) noexcept;

/// Number of hash evaluations to build a tree over n message hashes:
/// n leaf hashes + (width - 1) inner/root combines (Table 1 signer column).
std::size_t build_hash_cost(std::size_t leaves) noexcept;

}  // namespace alpha::merkle
