// ALPHA packet formats.
//
// Byte-exact encodings of the protocol messages from paper §3: the three-way
// signature exchange S1 / A1 / S2, the acknowledgment packet A2 (§3.2.2 and
// §3.3.3), and the bootstrap handshake HS1 / HS2 (§3.4). Every packet starts
// with a common header; bodies carry length-prefixed digests so all three
// hash profiles (16/20/32-byte digests) share one format.
//
// Decoding is total: decode() returns std::nullopt for any malformed input.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/digest.hpp"
#include "crypto/hash.hpp"
#include "merkle/merkle.hpp"

namespace alpha::wire {

using crypto::Bytes;
using crypto::ByteView;
using crypto::Digest;

enum class PacketType : std::uint8_t {
  kS1 = 1,   // pre-signature announcement
  kA1 = 2,   // willingness to receive + pre-(n)acks
  kS2 = 3,   // payload + key disclosure
  kA2 = 4,   // (n)ack disclosure
  kHs1 = 5,  // handshake: initiator anchors
  kHs2 = 6,  // handshake: responder anchors
};

/// Transmission mode of a signature round (paper §3.1, §3.3).
enum class Mode : std::uint8_t {
  kBase = 1,        // one message per round
  kCumulative = 2,  // ALPHA-C: n MACs per S1
  kMerkle = 3,      // ALPHA-M: one MT root per S1
  // ALPHA-C+M (§3.3.2): multiple MT roots per S1 -- shallower trees (fewer
  // hashes per {Bc} verification) at the cost of buffering one root per
  // group on relays and the verifier.
  kCumulativeMerkle = 4,
};

constexpr std::uint8_t kWireVersion = 1;

/// Every encoded frame ends in a CRC-32 trailer over the preceding bytes.
/// ALPHA assumes the link layer detects bit errors; on links that corrupt
/// frames in flight the codec has to provide that guarantee itself, because
/// some fields are deliberately unauthenticated when they arrive (the A1's
/// pre-ack commitments are only checkable once the A2 discloses the key --
/// a flipped commitment bit would otherwise poison the round until its
/// retry budget dies). Corrupted frames must fail decode() instead.
constexpr std::size_t kFrameChecksumSize = 4;

/// CRC-32 (IEEE 802.3) over `data`; appended big-endian to every frame.
std::uint32_t frame_checksum(ByteView data) noexcept;

/// Common packet header.
struct Header {
  std::uint32_t assoc_id = 0;  // security association (per-path, §3.1)
  std::uint32_t seq = 0;       // signature round number
};

/// Merkle authentication path as carried in S2/A2 packets.
struct WirePath {
  std::uint16_t leaf_index = 0;
  std::vector<Digest> siblings;

  merkle::AuthPath to_auth_path() const;
  static WirePath from_auth_path(const merkle::AuthPath& path);
};

/// S1 -- announces pre-signatures for a round (Fig. 2 / §3.3).
/// Carries the signer's fresh (odd-index) chain element h_i and either
/// per-message MACs (base / ALPHA-C) or one keyed MT root (ALPHA-M).
struct S1Packet {
  Header hdr;
  Mode mode = Mode::kBase;
  std::uint32_t chain_index = 0;  // index of `chain_element`
  Digest chain_element;           // h^Ss_i, identifies the signer
  // base / cumulative: one MAC per pre-signed message
  std::vector<Digest> macs;
  // merkle: keyed root over the batch + its leaf count
  Digest merkle_root;
  std::uint16_t leaf_count = 0;
  // cumulative-merkle: one keyed root per group of `group_size` messages;
  // the last group covers leaf_count - (roots-1)*group_size messages.
  // leaf_count then holds the total message count of the round.
  std::vector<Digest> merkle_roots;
  std::uint16_t group_size = 0;

  Bytes encode() const;
};

/// A1 -- acknowledges the S1 and signals willingness to receive (Fig. 2).
/// Reliable rounds add either the basic pre-ack/pre-nack pair (Fig. 3) or an
/// AMT root (Fig. 7).
enum class AckScheme : std::uint8_t {
  kNone = 0,    // unreliable transmission
  kPreAck = 1,  // basic pre-ack / pre-nack hashes
  kAmt = 2,     // acknowledgment Merkle tree root
};

struct A1Packet {
  Header hdr;
  std::uint32_t ack_chain_index = 0;  // index of `ack_element`
  Digest ack_element;                 // h^Va_i
  AckScheme scheme = AckScheme::kNone;
  // kPreAck: one pair per pre-signed message (Table 3: 2n*h):
  // pre_acks[j] = H(h^Va_{i-1} | "1" | s_ack_j),
  // pre_nacks[j] = H(h^Va_{i-1} | "0" | s_nack_j)
  std::vector<Digest> pre_acks;
  std::vector<Digest> pre_nacks;
  // kAmt: keyed AMT root + number of messages it acknowledges
  Digest amt_root;
  std::uint16_t amt_msg_count = 0;

  Bytes encode() const;
};

/// S2 -- discloses the MAC key h_{i-1} and carries one payload message
/// (Fig. 2); in ALPHA-M additionally the complementary branch set {Bc}.
struct S2Packet {
  Header hdr;
  Mode mode = Mode::kBase;
  std::uint32_t chain_index = 0;  // index of the disclosed element (i-1)
  Digest disclosed_element;       // h^Ss_{i-1}, the MAC key
  std::uint16_t msg_index = 0;    // position within the round's batch
  std::optional<WirePath> path;   // ALPHA-M {Bc}
  Bytes payload;                  // the message m

  Bytes encode() const;
};

/// A2 -- discloses an acknowledgment (Fig. 3 / Fig. 7).
enum class AckKind : std::uint8_t {
  kAck = 1,
  kNack = 2,
};

struct A2Packet {
  Header hdr;
  std::uint32_t ack_chain_index = 0;  // index of the disclosed element (i-1)
  Digest disclosed_ack_element;       // h^Va_{i-1}
  AckScheme scheme = AckScheme::kPreAck;
  AckKind kind = AckKind::kAck;
  std::uint16_t msg_index = 0;     // AMT only: which message
  Bytes secret;                    // s_ack / s_nack / AMT leaf secret
  std::optional<WirePath> path;    // AMT {Bc}

  Bytes encode() const;
};

/// Handshake packets (§3.4): announce the sender's signature- and
/// acknowledgment-chain anchors for this association. When `signature` is
/// non-empty the anchors are bound to a public key (protected bootstrap).
enum class SigAlg : std::uint8_t {
  kNone = 0,
  kRsa = 1,
  kDsa = 2,
  kEcdsaP160 = 3,  // secp160r1, the paper's WSN-class curve (§4.1.3)
  kEcdsaP256 = 4,
};

/// Parameter reconfiguration rider on a (rekey) handshake: announces the
/// transmission profile both ends run once the fresh chains are active.
/// The adaptive controller stages one of these; the initiator's rekey HS1
/// carries it and the responder echoes it back in the HS2, so the switch
/// lands exactly at the chain-rotation boundary on both ends. The fields
/// are covered by signed_payload(), so a protected bootstrap authenticates
/// the announcement with the same identity signature that binds the
/// anchors; unprotected associations inherit the handshake's existing
/// trust model (monotonic counter + CRC) -- see DESIGN.md §10.
struct ReconfigAnnounce {
  Mode mode = Mode::kBase;
  std::uint16_t batch_size = 1;       // messages pre-signed per S1
  std::uint16_t merkle_group = 8;     // ALPHA-C+M messages per root
  std::uint8_t max_retries = 5;       // retransmit budget per round/handshake
  std::uint32_t rekey_threshold = 0;  // chain headroom that triggers rekey

  friend bool operator==(const ReconfigAnnounce&,
                         const ReconfigAnnounce&) = default;
};

struct HandshakePacket {
  Header hdr;
  bool is_response = false;  // HS1 vs HS2
  crypto::HashAlgo algo = crypto::HashAlgo::kSha1;
  std::uint32_t chain_length = 0;
  std::uint32_t sig_anchor_index = 0;
  std::uint32_t ack_anchor_index = 0;
  Digest sig_anchor;  // anchor of the signature chain
  Digest ack_anchor;  // anchor of the acknowledgment chain
  SigAlg sig_alg = SigAlg::kNone;
  Bytes public_key;  // encoded verification key (opaque to the wire layer)
  Bytes signature;   // over signed_payload()
  // Profile announcement (rekey HS1) or its echo (HS2). Absent on
  // handshakes that keep the current profile.
  std::optional<ReconfigAnnounce> reconfig;

  Bytes encode() const;

  /// The byte string a protected handshake signs: every field above except
  /// the signature itself (the reconfig announcement included).
  Bytes signed_payload() const;
};

using Packet = std::variant<S1Packet, A1Packet, S2Packet, A2Packet,
                            HandshakePacket>;

/// Decodes any ALPHA packet; nullopt on malformed input.
std::optional<Packet> decode(ByteView data);

/// Zero-copy view of an encoded S2 frame -- the relay data hot path. A
/// forwarding node touches every S2 of every flow it carries, so parsing
/// one must not hit the heap: parse_s2 verifies the CRC trailer and every
/// bound exactly like decode() (a frame is viewable iff it is decodable),
/// but borrows the payload and {Bc} bytes from the frame instead of copying
/// them out. The views stay valid only as long as the frame bytes do.
struct S2View {
  Header hdr;
  Mode mode = Mode::kBase;
  std::uint32_t chain_index = 0;  // index of the disclosed element (i-1)
  Digest disclosed_element;       // inline copy; Digest never heap-allocates
  std::uint16_t msg_index = 0;
  bool has_path = false;          // ALPHA-M {Bc} present
  std::uint16_t leaf_index = 0;   // valid when has_path
  std::uint8_t depth = 0;         // sibling count
  ByteView siblings;              // raw length-prefixed digest run
  ByteView payload;               // the message m

  /// Decodes the {Bc} branch set into `out`, reusing its storage: the
  /// sibling vector is cleared but keeps its capacity, so a recycled
  /// AuthPath makes steady-state calls allocation-free.
  void path_into(merkle::AuthPath& out) const;
};

/// Parses an encoded S2 without allocating; nullopt exactly when decode()
/// would refuse the frame.
std::optional<S2View> parse_s2(ByteView data) noexcept;

/// Type of an encoded packet without full decoding; nullopt if truncated.
std::optional<PacketType> peek_type(ByteView data) noexcept;

/// Header of an encoded packet without full decoding.
std::optional<Header> peek_header(ByteView data) noexcept;

/// Association id of an encoded packet without full decoding -- the demux
/// hot path of the node runtime. Total: bounds-checked, nullopt for any
/// truncated or garbage prefix. Needs only the first 6 bytes, so it also
/// succeeds on frames too short for peek_header.
std::optional<std::uint32_t> peek_assoc_id(ByteView data) noexcept;

}  // namespace alpha::wire
