// Bounds-checked big-endian wire codec.
//
// All ALPHA packets are encoded with these primitives. The Writer appends to
// a growing buffer; the Reader throws DecodeError on any out-of-bounds or
// malformed read, which packet-level decode() functions translate into a
// std::nullopt so malformed network input can never crash a node.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "crypto/bytes.hpp"
#include "crypto/digest.hpp"

namespace alpha::wire {

using crypto::ByteView;
using crypto::Bytes;
using crypto::Digest;

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    for (int i = 3; i >= 0; --i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 7; i >= 0; --i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  /// Raw bytes, no length prefix.
  void raw(ByteView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  /// Length-prefixed (u16) byte string.
  void blob16(ByteView data) {
    if (data.size() > 0xffff) throw std::length_error("Writer: blob too long");
    u16(static_cast<std::uint16_t>(data.size()));
    raw(data);
  }

  /// Length-prefixed (u8) digest.
  void digest(const Digest& d) {
    u8(static_cast<std::uint8_t>(d.size()));
    raw(d.view());
  }

  const Bytes& bytes() const noexcept { return buf_; }
  Bytes take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(ByteView data) noexcept : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v =
        static_cast<std::uint16_t>((std::uint16_t{data_[pos_]} << 8) |
                                   data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 8;
    return v;
  }

  ByteView raw(std::size_t n) {
    need(n);
    const ByteView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  Bytes blob16() {
    const std::size_t n = u16();
    const ByteView v = raw(n);
    return Bytes(v.begin(), v.end());
  }

  Digest digest() {
    const std::size_t n = u8();
    if (n > Digest::kMaxSize) throw DecodeError("digest too long");
    return Digest{raw(n)};
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

  /// Declares the message fully parsed; trailing bytes are an error.
  void expect_end() const {
    if (!at_end()) throw DecodeError("trailing bytes");
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw DecodeError("short read");
  }

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace alpha::wire
