#include "wire/packets.hpp"

#include <array>

#include "wire/codec.hpp"

namespace alpha::wire {

namespace {

/// Appends the CRC-32 trailer and releases the finished frame. Every
/// encode() funnels through here so no packet type can skip the checksum.
Bytes seal(Writer&& w) {
  Bytes frame = w.take();
  const std::uint32_t crc = frame_checksum(frame);
  frame.push_back(static_cast<std::uint8_t>(crc >> 24));
  frame.push_back(static_cast<std::uint8_t>(crc >> 16));
  frame.push_back(static_cast<std::uint8_t>(crc >> 8));
  frame.push_back(static_cast<std::uint8_t>(crc));
  return frame;
}

/// Verifies and strips the trailer; nullopt means the frame is corrupt (or
/// too short to carry a trailer at all).
std::optional<ByteView> unseal(ByteView data) noexcept {
  if (data.size() < kFrameChecksumSize) return std::nullopt;
  const ByteView body = data.subspan(0, data.size() - kFrameChecksumSize);
  const ByteView tail = data.subspan(body.size());
  const std::uint32_t expected = (std::uint32_t{tail[0]} << 24) |
                                 (std::uint32_t{tail[1]} << 16) |
                                 (std::uint32_t{tail[2]} << 8) | tail[3];
  if (frame_checksum(body) != expected) return std::nullopt;
  return body;
}

void put_header(Writer& w, PacketType type, const Header& hdr) {
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(hdr.assoc_id);
  w.u32(hdr.seq);
}

Header read_header(Reader& r, PacketType expected) {
  if (r.u8() != kWireVersion) throw DecodeError("bad version");
  if (r.u8() != static_cast<std::uint8_t>(expected)) {
    throw DecodeError("type mismatch");
  }
  Header hdr;
  hdr.assoc_id = r.u32();
  hdr.seq = r.u32();
  return hdr;
}

void put_path(Writer& w, const WirePath& path) {
  w.u16(path.leaf_index);
  if (path.siblings.size() > 0xff) throw std::length_error("path too deep");
  w.u8(static_cast<std::uint8_t>(path.siblings.size()));
  for (const auto& d : path.siblings) w.digest(d);
}

WirePath read_path(Reader& r) {
  WirePath path;
  path.leaf_index = r.u16();
  const std::size_t depth = r.u8();
  path.siblings.reserve(depth);
  for (std::size_t i = 0; i < depth; ++i) path.siblings.push_back(r.digest());
  return path;
}

Mode read_mode(Reader& r) {
  const std::uint8_t m = r.u8();
  if (m < 1 || m > 4) throw DecodeError("bad mode");
  return static_cast<Mode>(m);
}

AckScheme read_scheme(Reader& r) {
  const std::uint8_t s = r.u8();
  if (s > 2) throw DecodeError("bad ack scheme");
  return static_cast<AckScheme>(s);
}

}  // namespace

std::uint32_t frame_checksum(ByteView data) noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const std::uint8_t b : data) {
    crc = table[(crc ^ b) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

merkle::AuthPath WirePath::to_auth_path() const {
  merkle::AuthPath path;
  path.leaf_index = leaf_index;
  path.siblings = siblings;
  return path;
}

WirePath WirePath::from_auth_path(const merkle::AuthPath& path) {
  WirePath wp;
  wp.leaf_index = static_cast<std::uint16_t>(path.leaf_index);
  wp.siblings = path.siblings;
  return wp;
}

Bytes S1Packet::encode() const {
  Writer w;
  put_header(w, PacketType::kS1, hdr);
  w.u8(static_cast<std::uint8_t>(mode));
  w.u32(chain_index);
  w.digest(chain_element);
  if (mode == Mode::kMerkle) {
    w.digest(merkle_root);
    w.u16(leaf_count);
  } else if (mode == Mode::kCumulativeMerkle) {
    if (merkle_roots.empty() || merkle_roots.size() > 0xffff) {
      throw std::length_error("bad root list");
    }
    w.u16(static_cast<std::uint16_t>(merkle_roots.size()));
    for (const auto& root : merkle_roots) w.digest(root);
    w.u16(group_size);
    w.u16(leaf_count);
  } else {
    if (macs.size() > 0xffff) throw std::length_error("too many MACs");
    w.u16(static_cast<std::uint16_t>(macs.size()));
    for (const auto& m : macs) w.digest(m);
  }
  return seal(std::move(w));
}

Bytes A1Packet::encode() const {
  Writer w;
  put_header(w, PacketType::kA1, hdr);
  w.u32(ack_chain_index);
  w.digest(ack_element);
  w.u8(static_cast<std::uint8_t>(scheme));
  switch (scheme) {
    case AckScheme::kNone:
      break;
    case AckScheme::kPreAck: {
      if (pre_acks.size() != pre_nacks.size() || pre_acks.empty() ||
          pre_acks.size() > 0xffff) {
        throw std::length_error("A1: bad pre-(n)ack lists");
      }
      w.u16(static_cast<std::uint16_t>(pre_acks.size()));
      for (const auto& d : pre_acks) w.digest(d);
      for (const auto& d : pre_nacks) w.digest(d);
      break;
    }
    case AckScheme::kAmt:
      w.digest(amt_root);
      w.u16(amt_msg_count);
      break;
  }
  return seal(std::move(w));
}

Bytes S2Packet::encode() const {
  Writer w;
  put_header(w, PacketType::kS2, hdr);
  w.u8(static_cast<std::uint8_t>(mode));
  w.u32(chain_index);
  w.digest(disclosed_element);
  w.u16(msg_index);
  w.u8(path.has_value() ? 1 : 0);
  if (path.has_value()) put_path(w, *path);
  w.blob16(payload);
  return seal(std::move(w));
}

Bytes A2Packet::encode() const {
  Writer w;
  put_header(w, PacketType::kA2, hdr);
  w.u32(ack_chain_index);
  w.digest(disclosed_ack_element);
  w.u8(static_cast<std::uint8_t>(scheme));
  w.u8(static_cast<std::uint8_t>(kind));
  w.u16(msg_index);
  w.blob16(secret);
  w.u8(path.has_value() ? 1 : 0);
  if (path.has_value()) put_path(w, *path);
  return seal(std::move(w));
}

namespace {

/// Serializes the reconfig rider (presence byte + fields); shared between
/// encode() and signed_payload() so the identity signature always covers
/// exactly what travels on the wire.
void put_reconfig(Writer& w, const std::optional<ReconfigAnnounce>& r) {
  w.u8(r.has_value() ? 1 : 0);
  if (!r.has_value()) return;
  w.u8(static_cast<std::uint8_t>(r->mode));
  w.u16(r->batch_size);
  w.u16(r->merkle_group);
  w.u8(r->max_retries);
  w.u32(r->rekey_threshold);
}

}  // namespace

Bytes HandshakePacket::signed_payload() const {
  Writer w;
  w.u8(is_response ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(algo));
  w.u32(hdr.assoc_id);
  w.u32(hdr.seq);  // monotonic handshake counter: anti-replay for rekeying
  w.u32(chain_length);
  w.u32(sig_anchor_index);
  w.u32(ack_anchor_index);
  w.digest(sig_anchor);
  w.digest(ack_anchor);
  w.u8(static_cast<std::uint8_t>(sig_alg));
  w.blob16(public_key);
  put_reconfig(w, reconfig);
  return w.take();
}

Bytes HandshakePacket::encode() const {
  Writer w;
  put_header(w, is_response ? PacketType::kHs2 : PacketType::kHs1, hdr);
  w.u8(static_cast<std::uint8_t>(algo));
  w.u32(chain_length);
  w.u32(sig_anchor_index);
  w.u32(ack_anchor_index);
  w.digest(sig_anchor);
  w.digest(ack_anchor);
  w.u8(static_cast<std::uint8_t>(sig_alg));
  w.blob16(public_key);
  w.blob16(signature);
  put_reconfig(w, reconfig);
  return seal(std::move(w));
}

std::optional<PacketType> peek_type(ByteView data) noexcept {
  if (data.size() < 2 || data[0] != kWireVersion) return std::nullopt;
  const std::uint8_t t = data[1];
  if (t < 1 || t > 6) return std::nullopt;
  return static_cast<PacketType>(t);
}

std::optional<std::uint32_t> peek_assoc_id(ByteView data) noexcept {
  if (!peek_type(data).has_value() || data.size() < 6) return std::nullopt;
  return (std::uint32_t{data[2]} << 24) | (std::uint32_t{data[3]} << 16) |
         (std::uint32_t{data[4]} << 8) | data[5];
}

std::optional<Header> peek_header(ByteView data) noexcept {
  if (!peek_type(data).has_value() || data.size() < 10) return std::nullopt;
  Header hdr;
  hdr.assoc_id = (std::uint32_t{data[2]} << 24) | (std::uint32_t{data[3]} << 16) |
                 (std::uint32_t{data[4]} << 8) | data[5];
  hdr.seq = (std::uint32_t{data[6]} << 24) | (std::uint32_t{data[7]} << 16) |
            (std::uint32_t{data[8]} << 8) | data[9];
  return hdr;
}

namespace {

/// Exception-free bounded cursor for the zero-copy parse path (Reader
/// signals errors by throwing DecodeError, whose message allocates).
/// Reads after a failure are harmless no-ops: `ok` latches false.
struct ViewCursor {
  ByteView d;
  std::size_t pos = 0;
  bool ok = true;

  bool need(std::size_t n) noexcept {
    if (!ok || d.size() - pos < n) ok = false;
    return ok;
  }
  std::uint8_t u8() noexcept { return need(1) ? d[pos++] : 0; }
  std::uint16_t u16() noexcept {
    if (!need(2)) return 0;
    const std::uint16_t v =
        static_cast<std::uint16_t>((std::uint16_t{d[pos]} << 8) | d[pos + 1]);
    pos += 2;
    return v;
  }
  std::uint32_t u32() noexcept {
    if (!need(4)) return 0;
    const std::uint32_t v = (std::uint32_t{d[pos]} << 24) |
                            (std::uint32_t{d[pos + 1]} << 16) |
                            (std::uint32_t{d[pos + 2]} << 8) | d[pos + 3];
    pos += 4;
    return v;
  }
  ByteView raw(std::size_t n) noexcept {
    if (!need(n)) return {};
    const ByteView v = d.subspan(pos, n);
    pos += n;
    return v;
  }
};

}  // namespace

std::optional<S2View> parse_s2(ByteView data) noexcept {
  if (peek_type(data) != PacketType::kS2) return std::nullopt;
  // Checksum first, same as decode(): a frame that fails the CRC is link
  // noise and none of its fields may reach engine state.
  const auto body = unseal(data);
  if (!body.has_value()) return std::nullopt;
  // body is a prefix of data, so the bytes peek_type vetted are body[0..1]
  // -- provided the body actually contains them.
  if (body->size() < 2) return std::nullopt;
  ViewCursor c{*body};
  S2View v;
  c.pos = 2;  // version + type, vetted by peek_type
  v.hdr.assoc_id = c.u32();
  v.hdr.seq = c.u32();
  const std::uint8_t mode = c.u8();
  if (!c.ok || mode < 1 || mode > 4) return std::nullopt;
  v.mode = static_cast<Mode>(mode);
  v.chain_index = c.u32();
  const std::uint8_t dlen = c.u8();
  if (!c.ok || dlen > Digest::kMaxSize) return std::nullopt;
  const ByteView delem = c.raw(dlen);
  if (!c.ok) return std::nullopt;
  v.disclosed_element = Digest{delem};
  v.msg_index = c.u16();
  const std::uint8_t has_path = c.u8();
  if (!c.ok) return std::nullopt;
  if (has_path != 0) {
    v.has_path = true;
    v.leaf_index = c.u16();
    v.depth = c.u8();
    const std::size_t start = c.pos;
    for (std::size_t i = 0; i < v.depth; ++i) {
      const std::uint8_t n = c.u8();
      if (!c.ok || n > Digest::kMaxSize) return std::nullopt;
      c.raw(n);
    }
    if (!c.ok) return std::nullopt;
    v.siblings = body->subspan(start, c.pos - start);
  }
  const std::uint16_t payload_len = c.u16();
  v.payload = c.raw(payload_len);
  // expect_end: trailing bytes are an error, as in decode().
  if (!c.ok || c.pos != body->size()) return std::nullopt;
  return v;
}

void S2View::path_into(merkle::AuthPath& out) const {
  out.leaf_index = leaf_index;
  out.siblings.clear();
  std::size_t pos = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    // Bounds were checked by parse_s2; each entry is len-u8 + bytes.
    const std::size_t n = siblings[pos++];
    out.siblings.emplace_back(siblings.subspan(pos, n));
    pos += n;
  }
}

std::optional<Packet> decode(ByteView data) {
  const auto type = peek_type(data);
  if (!type.has_value()) return std::nullopt;
  // Checksum first: a frame that fails the CRC is link noise, not a
  // protocol message, and none of its fields may reach engine state.
  const auto body = unseal(data);
  if (!body.has_value()) return std::nullopt;
  try {
    Reader r{*body};
    switch (*type) {
      case PacketType::kS1: {
        S1Packet p;
        p.hdr = read_header(r, PacketType::kS1);
        p.mode = read_mode(r);
        p.chain_index = r.u32();
        p.chain_element = r.digest();
        if (p.mode == Mode::kMerkle) {
          p.merkle_root = r.digest();
          p.leaf_count = r.u16();
          if (p.leaf_count == 0) throw DecodeError("empty merkle batch");
        } else if (p.mode == Mode::kCumulativeMerkle) {
          const std::size_t roots = r.u16();
          if (roots == 0) throw DecodeError("empty root list");
          p.merkle_roots.reserve(roots);
          for (std::size_t i = 0; i < roots; ++i) {
            p.merkle_roots.push_back(r.digest());
          }
          p.group_size = r.u16();
          p.leaf_count = r.u16();
          // Consistency: leaf_count messages must need exactly `roots`
          // groups of group_size.
          if (p.group_size == 0 || p.leaf_count == 0 ||
              (static_cast<std::size_t>(p.leaf_count) + p.group_size - 1) /
                      p.group_size !=
                  roots) {
            throw DecodeError("inconsistent group structure");
          }
        } else {
          const std::size_t n = r.u16();
          if (n == 0) throw DecodeError("empty mac list");
          p.macs.reserve(n);
          for (std::size_t i = 0; i < n; ++i) p.macs.push_back(r.digest());
        }
        r.expect_end();
        return p;
      }
      case PacketType::kA1: {
        A1Packet p;
        p.hdr = read_header(r, PacketType::kA1);
        p.ack_chain_index = r.u32();
        p.ack_element = r.digest();
        p.scheme = read_scheme(r);
        if (p.scheme == AckScheme::kPreAck) {
          const std::size_t n = r.u16();
          if (n == 0) throw DecodeError("empty pre-ack list");
          p.pre_acks.reserve(n);
          p.pre_nacks.reserve(n);
          for (std::size_t i = 0; i < n; ++i) p.pre_acks.push_back(r.digest());
          for (std::size_t i = 0; i < n; ++i) p.pre_nacks.push_back(r.digest());
        } else if (p.scheme == AckScheme::kAmt) {
          p.amt_root = r.digest();
          p.amt_msg_count = r.u16();
          if (p.amt_msg_count == 0) throw DecodeError("empty amt");
        }
        r.expect_end();
        return p;
      }
      case PacketType::kS2: {
        S2Packet p;
        p.hdr = read_header(r, PacketType::kS2);
        p.mode = read_mode(r);
        p.chain_index = r.u32();
        p.disclosed_element = r.digest();
        p.msg_index = r.u16();
        if (r.u8() != 0) p.path = read_path(r);
        p.payload = r.blob16();
        r.expect_end();
        return p;
      }
      case PacketType::kA2: {
        A2Packet p;
        p.hdr = read_header(r, PacketType::kA2);
        p.ack_chain_index = r.u32();
        p.disclosed_ack_element = r.digest();
        p.scheme = read_scheme(r);
        if (p.scheme == AckScheme::kNone) throw DecodeError("A2 needs scheme");
        const std::uint8_t kind = r.u8();
        if (kind < 1 || kind > 2) throw DecodeError("bad ack kind");
        p.kind = static_cast<AckKind>(kind);
        p.msg_index = r.u16();
        p.secret = r.blob16();
        if (r.u8() != 0) p.path = read_path(r);
        r.expect_end();
        return p;
      }
      case PacketType::kHs1:
      case PacketType::kHs2: {
        HandshakePacket p;
        p.hdr = read_header(r, *type);
        p.is_response = (*type == PacketType::kHs2);
        const std::uint8_t algo = r.u8();
        if (algo < 1 || algo > 3) throw DecodeError("bad hash algo");
        p.algo = static_cast<crypto::HashAlgo>(algo);
        p.chain_length = r.u32();
        p.sig_anchor_index = r.u32();
        p.ack_anchor_index = r.u32();
        p.sig_anchor = r.digest();
        p.ack_anchor = r.digest();
        const std::uint8_t sig_alg = r.u8();
        if (sig_alg > 4) throw DecodeError("bad sig alg");
        p.sig_alg = static_cast<SigAlg>(sig_alg);
        p.public_key = r.blob16();
        p.signature = r.blob16();
        const std::uint8_t has_reconfig = r.u8();
        if (has_reconfig > 1) throw DecodeError("bad reconfig flag");
        if (has_reconfig == 1) {
          ReconfigAnnounce rc;
          rc.mode = read_mode(r);
          rc.batch_size = r.u16();
          rc.merkle_group = r.u16();
          rc.max_retries = r.u8();
          rc.rekey_threshold = r.u32();
          // Engine invariants, enforced at the trust boundary: a peer (or
          // flipped bit the CRC missed) must not be able to announce a
          // profile the engines cannot run. 4096 mirrors the verifier's
          // per-round kMaxBatch flood guard.
          if (rc.batch_size == 0 || rc.batch_size > 4096 ||
              rc.merkle_group == 0 || rc.max_retries == 0) {
            throw DecodeError("bad reconfig");
          }
          p.reconfig = rc;
        }
        r.expect_end();
        return p;
      }
    }
  } catch (const DecodeError&) {
    return std::nullopt;
  } catch (const std::length_error&) {
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace alpha::wire
