#include "net/network.hpp"

#include <deque>
#include <stdexcept>

#include "trace/trace.hpp"
#include "wire/packets.hpp"

namespace alpha::net {

void Network::add_node(NodeId id, ReceiveFn handler) {
  if (nodes_.contains(id)) {
    throw std::invalid_argument("Network::add_node: duplicate node");
  }
  nodes_[id] = NodeEntry{std::move(handler)};
}

void Network::set_handler(NodeId id, ReceiveFn handler) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    throw std::invalid_argument("Network::set_handler: unknown node");
  }
  it->second.handler = std::move(handler);
}

void Network::add_link(NodeId a, NodeId b, LinkConfig config) {
  if (!nodes_.contains(a) || !nodes_.contains(b)) {
    throw std::invalid_argument("Network::add_link: unknown endpoint");
  }
  if (a == b) throw std::invalid_argument("Network::add_link: self link");
  DirectedLink link;
  link.config = config;
  links_[{a, b}] = link;
  links_[{b, a}] = link;
}

Network::DirectedLink* Network::find_link(NodeId from, NodeId to) {
  const auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : &it->second;
}

const Network::DirectedLink* Network::find_link(NodeId from,
                                                NodeId to) const {
  const auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : &it->second;
}

void Network::set_link_faults(NodeId a, NodeId b, FaultConfig faults) {
  DirectedLink* ab = find_link(a, b);
  DirectedLink* ba = find_link(b, a);
  if (ab == nullptr || ba == nullptr) {
    throw std::invalid_argument("Network::set_link_faults: no such link");
  }
  ab->faults = faults;
  ba->faults = faults;
}

void Network::set_link_up(NodeId a, NodeId b, bool up) {
  DirectedLink* ab = find_link(a, b);
  DirectedLink* ba = find_link(b, a);
  if (ab == nullptr || ba == nullptr) {
    throw std::invalid_argument("Network::set_link_up: no such link");
  }
  ab->up = up;
  ba->up = up;
}

bool Network::link_up(NodeId a, NodeId b) const {
  const DirectedLink* link = find_link(a, b);
  if (link == nullptr) {
    throw std::invalid_argument("Network::link_up: no such link");
  }
  return link->up;
}

void Network::schedule_partition(NodeId a, NodeId b, SimTime at,
                                 SimTime duration) {
  if (find_link(a, b) == nullptr) {
    throw std::invalid_argument("Network::schedule_partition: no such link");
  }
  sim_->schedule_at(at, [this, a, b] { set_link_up(a, b, false); });
  sim_->schedule_at(at + duration, [this, a, b] { set_link_up(a, b, true); });
}

bool Network::chaos_chance(double rate) {
  if (rate <= 0.0) return false;
  const double draw = static_cast<double>(chaos_rng_.uniform(1u << 24)) /
                      static_cast<double>(1u << 24);
  return draw < rate;
}

void Network::schedule_delivery(NodeId from, NodeId to, Bytes frame,
                                SimTime delay) {
  sim_->schedule_in(delay, [this, from, to, data = std::move(frame)] {
    const auto it = nodes_.find(to);
    if (it != nodes_.end() && it->second.handler) {
      it->second.handler(from, data);
    }
  });
}

bool Network::send(NodeId from, NodeId to, Bytes frame) {
  // Typed-trace terminal events: exactly one kNetDelivered or kNetDropped
  // per send(), plus one kNetDuplicated per injected extra copy. The trace
  // completeness tests hold every injected frame against this invariant.
  trace::Event net_event;
  if (trace::enabled()) {
    net_event.time_us = sim_->now();
    net_event.detail = trace::pack_net_detail(from, to, frame.size());
    net_event.origin = static_cast<std::uint8_t>(from);
    if (const auto assoc = wire::peek_assoc_id(frame)) {
      net_event.assoc_id = *assoc;
    }
    if (const auto hdr = wire::peek_header(frame)) net_event.seq = hdr->seq;
    if (const auto type = wire::peek_type(frame)) {
      net_event.packet_type = static_cast<std::uint8_t>(*type);
    }
  }
  const auto net_emit = [&](trace::EventKind kind, trace::DropReason reason) {
    if (!trace::enabled()) return;
    trace::Event e = net_event;
    e.kind = kind;
    e.reason = reason;
    trace::emit(e);
  };

  const auto trace = [&](FrameFate fate, SimTime delivery_at,
                         bool corrupted = false, bool reordered = false) {
    if (tracer_) {
      tracer_(TraceRecord{sim_->now(), delivery_at, from, to, frame.size(),
                          fate, corrupted, reordered});
    }
  };

  DirectedLink* link = find_link(from, to);
  if (link == nullptr) {
    trace(FrameFate::kNoLink, 0);
    net_emit(trace::EventKind::kNetDropped, trace::DropReason::kNoLink);
    return false;
  }
  ++link->stats.frames_sent;

  // Partition: the frame vanishes; the sender cannot tell this from loss.
  if (!link->up) {
    ++link->stats.frames_link_down;
    trace(FrameFate::kLinkDown, 0);
    net_emit(trace::EventKind::kNetDropped, trace::DropReason::kLinkDown);
    return true;
  }

  if (frame.size() > link->config.mtu) {
    ++link->stats.frames_oversize;
    trace(FrameFate::kOversize, 0);
    net_emit(trace::EventKind::kNetDropped, trace::DropReason::kOversize);
    return false;
  }

  // Bernoulli loss.
  if (link->config.loss_rate > 0.0) {
    const double draw =
        static_cast<double>(rng_.uniform(1u << 24)) / static_cast<double>(1u << 24);
    if (draw < link->config.loss_rate) {
      ++link->stats.frames_lost;
      trace(FrameFate::kLost, 0);
      net_emit(trace::EventKind::kNetDropped, trace::DropReason::kLost);
      return true;  // sent but lost in flight
    }
  }

  // Gilbert-Elliott bursty loss: advance the state machine per frame, then
  // apply the state's loss probability. All fault draws come from the chaos
  // stream in a fixed order (burst, corrupt, reorder, duplicate), so one
  // chaos seed replays the whole schedule.
  const FaultConfig& faults = link->faults;
  if (faults.burst.has_value()) {
    const BurstLossConfig& burst = *faults.burst;
    if (link->burst_bad) {
      if (chaos_chance(burst.p_exit_bad)) link->burst_bad = false;
    } else if (chaos_chance(burst.p_enter_bad)) {
      link->burst_bad = true;
    }
    if (chaos_chance(link->burst_bad ? burst.loss_bad : burst.loss_good)) {
      ++link->stats.frames_lost;
      trace(FrameFate::kLost, 0);
      net_emit(trace::EventKind::kNetDropped, trace::DropReason::kLost);
      return true;
    }
  }

  // Bit corruption: flip 1..corrupt_max_bits random bits in flight.
  bool corrupted = false;
  if (chaos_chance(faults.corrupt_rate) && !frame.empty()) {
    const int bits =
        1 + static_cast<int>(chaos_rng_.uniform(
                std::max(faults.corrupt_max_bits, 1)));
    for (int i = 0; i < bits; ++i) {
      frame[chaos_rng_.uniform(frame.size())] ^=
          static_cast<std::uint8_t>(1u << chaos_rng_.uniform(8));
    }
    corrupted = true;
    ++link->stats.frames_corrupted;
  }

  // Serialization: the link transmits one frame at a time.
  const SimTime now = sim_->now();
  const std::uint64_t bps =
      link->config.bandwidth_bps == 0 ? 1 : link->config.bandwidth_bps;
  const SimTime tx_time =
      static_cast<SimTime>(frame.size() * 8ull * kSecond / bps);
  const SimTime start = std::max(now, link->busy_until);
  link->busy_until = start + tx_time;

  SimTime delay = link->busy_until - now + link->config.latency;
  if (link->config.jitter > 0) {
    delay += rng_.uniform(link->config.jitter + 1);
  }

  // Bounded reordering: hold the frame back so frames sent after it
  // overtake it.
  bool reordered = false;
  if (chaos_chance(faults.reorder_rate) && faults.reorder_window > 0) {
    delay += 1 + chaos_rng_.uniform(faults.reorder_window);
    reordered = true;
    ++link->stats.frames_reordered;
  }

  // Duplication: a second copy arrives shortly after the original.
  if (chaos_chance(faults.duplicate_rate)) {
    const SimTime offset =
        1 + chaos_rng_.uniform(std::max<SimTime>(faults.reorder_window, 1));
    ++link->stats.frames_duplicated;
    trace(FrameFate::kDuplicated, sim_->now() + delay + offset, corrupted);
    net_emit(trace::EventKind::kNetDuplicated,
             corrupted ? trace::DropReason::kChaosCorrupted
                       : trace::DropReason::kNone);
    schedule_delivery(from, to, frame, delay + offset);
  }

  link->stats.bytes_delivered += frame.size();
  ++link->stats.frames_delivered;
  trace(FrameFate::kDelivered, sim_->now() + delay, corrupted, reordered);
  net_emit(trace::EventKind::kNetDelivered,
           corrupted ? trace::DropReason::kChaosCorrupted
                     : trace::DropReason::kNone);
  schedule_delivery(from, to, std::move(frame), delay);
  return true;
}

std::vector<NodeId> Network::route(NodeId src, NodeId dst) const {
  if (!nodes_.contains(src) || !nodes_.contains(dst)) return {};
  if (src == dst) return {src};

  std::map<NodeId, NodeId> parent;
  std::deque<NodeId> frontier{src};
  parent[src] = src;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    for (const auto& [key, link] : links_) {
      if (key.first != cur) continue;
      const NodeId next = key.second;
      if (parent.contains(next)) continue;
      parent[next] = cur;
      if (next == dst) {
        std::vector<NodeId> path{dst};
        NodeId walk = dst;
        while (walk != src) {
          walk = parent[walk];
          path.push_back(walk);
        }
        return {path.rbegin(), path.rend()};
      }
      frontier.push_back(next);
    }
  }
  return {};
}

std::vector<NodeId> Network::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& [key, link] : links_) {
    if (key.first == id) out.push_back(key.second);
  }
  return out;
}

const LinkStats& Network::link_stats(NodeId from, NodeId to) const {
  const DirectedLink* link = find_link(from, to);
  if (link == nullptr) {
    throw std::invalid_argument("Network::link_stats: no such link");
  }
  return link->stats;
}

LinkStats Network::total_stats() const {
  LinkStats total;
  for (const auto& [key, link] : links_) {
    total.frames_sent += link.stats.frames_sent;
    total.frames_delivered += link.stats.frames_delivered;
    total.frames_lost += link.stats.frames_lost;
    total.frames_oversize += link.stats.frames_oversize;
    total.bytes_delivered += link.stats.bytes_delivered;
    total.frames_duplicated += link.stats.frames_duplicated;
    total.frames_corrupted += link.stats.frames_corrupted;
    total.frames_reordered += link.stats.frames_reordered;
    total.frames_link_down += link.stats.frames_link_down;
  }
  return total;
}

}  // namespace alpha::net
