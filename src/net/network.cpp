#include "net/network.hpp"

#include <deque>
#include <stdexcept>

namespace alpha::net {

void Network::add_node(NodeId id, ReceiveFn handler) {
  if (nodes_.contains(id)) {
    throw std::invalid_argument("Network::add_node: duplicate node");
  }
  nodes_[id] = NodeEntry{std::move(handler)};
}

void Network::set_handler(NodeId id, ReceiveFn handler) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    throw std::invalid_argument("Network::set_handler: unknown node");
  }
  it->second.handler = std::move(handler);
}

void Network::add_link(NodeId a, NodeId b, LinkConfig config) {
  if (!nodes_.contains(a) || !nodes_.contains(b)) {
    throw std::invalid_argument("Network::add_link: unknown endpoint");
  }
  if (a == b) throw std::invalid_argument("Network::add_link: self link");
  links_[{a, b}] = DirectedLink{config, {}, 0};
  links_[{b, a}] = DirectedLink{config, {}, 0};
}

Network::DirectedLink* Network::find_link(NodeId from, NodeId to) {
  const auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : &it->second;
}

const Network::DirectedLink* Network::find_link(NodeId from,
                                                NodeId to) const {
  const auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : &it->second;
}

bool Network::send(NodeId from, NodeId to, Bytes frame) {
  const auto trace = [&](FrameFate fate, SimTime delivery_at) {
    if (tracer_) {
      tracer_(TraceRecord{sim_->now(), delivery_at, from, to, frame.size(),
                          fate});
    }
  };

  DirectedLink* link = find_link(from, to);
  if (link == nullptr) {
    trace(FrameFate::kNoLink, 0);
    return false;
  }
  ++link->stats.frames_sent;

  if (frame.size() > link->config.mtu) {
    ++link->stats.frames_oversize;
    trace(FrameFate::kOversize, 0);
    return false;
  }

  // Bernoulli loss.
  if (link->config.loss_rate > 0.0) {
    const double draw =
        static_cast<double>(rng_.uniform(1u << 24)) / static_cast<double>(1u << 24);
    if (draw < link->config.loss_rate) {
      ++link->stats.frames_lost;
      trace(FrameFate::kLost, 0);
      return true;  // sent but lost in flight
    }
  }

  // Serialization: the link transmits one frame at a time.
  const SimTime now = sim_->now();
  const std::uint64_t bps =
      link->config.bandwidth_bps == 0 ? 1 : link->config.bandwidth_bps;
  const SimTime tx_time =
      static_cast<SimTime>(frame.size() * 8ull * kSecond / bps);
  const SimTime start = std::max(now, link->busy_until);
  link->busy_until = start + tx_time;

  SimTime delay = link->busy_until - now + link->config.latency;
  if (link->config.jitter > 0) {
    delay += rng_.uniform(link->config.jitter + 1);
  }

  link->stats.bytes_delivered += frame.size();
  ++link->stats.frames_delivered;
  trace(FrameFate::kDelivered, sim_->now() + delay);

  sim_->schedule_in(delay, [this, from, to, data = std::move(frame)] {
    const auto it = nodes_.find(to);
    if (it != nodes_.end() && it->second.handler) {
      it->second.handler(from, data);
    }
  });
  return true;
}

std::vector<NodeId> Network::route(NodeId src, NodeId dst) const {
  if (!nodes_.contains(src) || !nodes_.contains(dst)) return {};
  if (src == dst) return {src};

  std::map<NodeId, NodeId> parent;
  std::deque<NodeId> frontier{src};
  parent[src] = src;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    for (const auto& [key, link] : links_) {
      if (key.first != cur) continue;
      const NodeId next = key.second;
      if (parent.contains(next)) continue;
      parent[next] = cur;
      if (next == dst) {
        std::vector<NodeId> path{dst};
        NodeId walk = dst;
        while (walk != src) {
          walk = parent[walk];
          path.push_back(walk);
        }
        return {path.rbegin(), path.rend()};
      }
      frontier.push_back(next);
    }
  }
  return {};
}

std::vector<NodeId> Network::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& [key, link] : links_) {
    if (key.first == id) out.push_back(key.second);
  }
  return out;
}

const LinkStats& Network::link_stats(NodeId from, NodeId to) const {
  const DirectedLink* link = find_link(from, to);
  if (link == nullptr) {
    throw std::invalid_argument("Network::link_stats: no such link");
  }
  return link->stats;
}

LinkStats Network::total_stats() const {
  LinkStats total;
  for (const auto& [key, link] : links_) {
    total.frames_sent += link.stats.frames_sent;
    total.frames_delivered += link.stats.frames_delivered;
    total.frames_lost += link.stats.frames_lost;
    total.frames_oversize += link.stats.frames_oversize;
    total.bytes_delivered += link.stats.bytes_delivered;
  }
  return total;
}

}  // namespace alpha::net
