// Discrete-event simulation core.
//
// The paper evaluates ALPHA on physical multi-hop testbeds (Nokia 770, mesh
// routers, AquisGrain sensor nodes). This simulator substitutes those paths
// with a deterministic event queue: virtual time in microseconds, FIFO
// tie-breaking, and no dependence on wall-clock time, so every protocol
// experiment is exactly reproducible from a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace alpha::net {

/// Virtual time in microseconds since simulation start.
using SimTime = std::uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now).
  void schedule_at(SimTime at, std::function<void()> fn);
  /// Schedules `fn` after `delay` from now.
  void schedule_in(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs until the queue drains or `max_events` fire. Returns events fired.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with time <= deadline; leaves later events queued.
  /// Advances now() to `deadline` even if the queue drains earlier.
  std::size_t run_until(SimTime deadline);

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO among equal timestamps
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace alpha::net
