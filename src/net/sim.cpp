#include "net/sim.hpp"

#include <stdexcept>

namespace alpha::net {

void Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (!queue_.empty() && fired < max_events) {
    // Copy out before pop: the handler may schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++fired;
  }
  return fired;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++fired;
  }
  now_ = deadline;
  return fired;
}

}  // namespace alpha::net
