#include "net/transport.hpp"

#include <algorithm>
#include <chrono>

#include "trace/trace.hpp"
#include "wire/packets.hpp"

namespace alpha::net {

namespace {
// UDP has no network model underneath, so the transport itself marks the
// frame boundary events (the simulator path gets these from net::Network).
void emit_transport_event(trace::EventKind kind, PeerAddr peer,
                          crypto::ByteView frame, std::uint64_t now_us) {
  if (!trace::enabled()) return;
  trace::Event e;
  e.time_us = now_us;
  e.detail = trace::pack_net_detail(static_cast<std::uint32_t>(peer),
                                    static_cast<std::uint32_t>(peer),
                                    frame.size());
  if (const auto assoc = wire::peek_assoc_id(frame)) e.assoc_id = *assoc;
  if (const auto hdr = wire::peek_header(frame)) e.seq = hdr->seq;
  if (const auto type = wire::peek_type(frame)) {
    e.packet_type = static_cast<std::uint8_t>(*type);
  }
  e.kind = kind;
  trace::emit(e);
}
}  // namespace

// ---------------------------------------------------------------- simulator

SimTransport::SimTransport(Network& network, NodeId self)
    : network_(&network), self_(self) {
  network_->set_handler(self_, [this](NodeId from, crypto::ByteView frame) {
    ++frames_delivered_;
    if (receiver_) {
      receiver_(static_cast<PeerAddr>(from), frame);
    } else {
      // No push consumer: hold the frame (with its virtual arrival time)
      // for the next recv_batch.
      pending_.push(Buffered{static_cast<PeerAddr>(from), now_us(),
                             crypto::Bytes(frame.begin(), frame.end())});
    }
  });
}

SimTransport::~SimTransport() {
  // Leave no dangling handler behind; the network may outlive us.
  if (network_->has_node(self_)) network_->set_handler(self_, nullptr);
}

void SimTransport::set_receiver(ReceiveFn receiver) {
  receiver_ = std::move(receiver);
}

bool SimTransport::send(PeerAddr peer, crypto::Bytes frame) {
  return network_->send(self_, static_cast<NodeId>(peer), std::move(frame));
}

std::size_t SimTransport::poll(int timeout_ms) {
  const std::size_t before = frames_delivered_;
  auto& sim = network_->sim();
  sim.run_until(sim.now() +
                static_cast<SimTime>(std::max(timeout_ms, 0)) * kMillisecond);
  return frames_delivered_ - before;
}

std::uint64_t SimTransport::now_us() const { return network_->sim().now(); }

std::size_t SimTransport::recv_batch(int timeout_ms, RxFrame* out,
                                     std::size_t max) {
  if (max == 0) return 0;
  if (pending_.empty() && timeout_ms > 0) poll(timeout_ms);
  drained_.clear();
  while (!pending_.empty() && drained_.size() < max) {
    drained_.push_back(std::move(pending_.front()));
    pending_.pop();
  }
  for (std::size_t i = 0; i < drained_.size(); ++i) {
    out[i].from = drained_[i].from;
    out[i].recv_us = drained_[i].recv_us;
    out[i].data = crypto::ByteView{drained_[i].data.data(),
                                   drained_[i].data.size()};
  }
  return drained_.size();
}

void SimTransport::schedule(std::uint64_t at_us, std::function<void()> fn) {
  auto& sim = network_->sim();
  sim.schedule_at(std::max<SimTime>(at_us, sim.now()), std::move(fn));
}

// ------------------------------------------------------------- UDP sockets

UdpTransport::UdpTransport(std::uint16_t port) : endpoint_(port) {}

UdpTransport::UdpTransport(UdpEndpoint endpoint)
    : endpoint_(std::move(endpoint)) {}

void UdpTransport::set_receiver(ReceiveFn receiver) {
  receiver_ = std::move(receiver);
}

bool UdpTransport::send(PeerAddr peer, crypto::Bytes frame) {
  emit_transport_event(trace::EventKind::kTransportSent, peer, frame,
                       now_us());
  endpoint_.send_to(static_cast<std::uint16_t>(peer), frame);
  return true;
}

std::size_t UdpTransport::poll(int timeout_ms) {
  // Cap the socket wait so a due timer is never held hostage by a quiet
  // socket, then drain everything already queued without blocking.
  int wait = std::max(timeout_ms, 0);
  if (!timers_.empty()) {
    const std::uint64_t now = now_us();
    const std::uint64_t next = timers_.top().at_us;
    const std::uint64_t until_ms = next <= now ? 0 : (next - now + 999) / 1000;
    wait = static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(wait), until_ms));
  }

  std::size_t frames = 0;
  auto dg = endpoint_.receive(wait);
  while (dg.has_value()) {
    ++frames;
    emit_transport_event(trace::EventKind::kTransportReceived,
                         static_cast<PeerAddr>(dg->from_port), dg->data,
                         now_us());
    if (receiver_) {
      receiver_(static_cast<PeerAddr>(dg->from_port), dg->data);
    }
    dg = endpoint_.receive(0);
  }
  fire_due_timers();
  return frames;
}

std::size_t UdpTransport::recv_batch(int timeout_ms, RxFrame* out,
                                     std::size_t max) {
  const std::size_t cap =
      max < UdpEndpoint::kBatchSize ? max : UdpEndpoint::kBatchSize;
  UdpEndpoint::Datagram dgs[UdpEndpoint::kBatchSize];
  const std::size_t got =
      endpoint_.receive_batch(std::max(timeout_ms, 0), dgs, cap);
  const std::uint64_t now = now_us();
  for (std::size_t i = 0; i < got; ++i) {
    emit_transport_event(trace::EventKind::kTransportReceived,
                         static_cast<PeerAddr>(dgs[i].from_port), dgs[i].data,
                         now);
    out[i].from = static_cast<PeerAddr>(dgs[i].from_port);
    out[i].recv_us = now;
    out[i].data = dgs[i].data;
  }
  return got;
}

std::size_t UdpTransport::send_batch(const TxFrame* frames, std::size_t n) {
  std::size_t sent = 0;
  UdpEndpoint::OutDatagram dgs[UdpEndpoint::kBatchSize];
  while (sent < n) {
    const std::size_t chunk =
        std::min<std::size_t>(n - sent, UdpEndpoint::kBatchSize);
    for (std::size_t i = 0; i < chunk; ++i) {
      dgs[i].dest_port = static_cast<std::uint16_t>(frames[sent + i].peer);
      dgs[i].data = frames[sent + i].data;
    }
    const std::size_t accepted = endpoint_.send_many(dgs, chunk);
    const std::uint64_t now = now_us();
    for (std::size_t i = 0; i < accepted; ++i) {
      emit_transport_event(trace::EventKind::kTransportSent,
                           frames[sent + i].peer, frames[sent + i].data, now);
    }
    sent += accepted;
    // Partial kernel completion = backpressure; hand the tail back to the
    // caller instead of spinning on a congested socket.
    if (accepted < chunk) break;
  }
  return sent;
}

std::uint64_t UdpTransport::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void UdpTransport::schedule(std::uint64_t at_us, std::function<void()> fn) {
  timers_.push(Timer{at_us, next_timer_seq_++, std::move(fn)});
}

void UdpTransport::fire_due_timers() {
  while (!timers_.empty() && timers_.top().at_us <= now_us()) {
    Timer timer = std::move(const_cast<Timer&>(timers_.top()));
    timers_.pop();
    timer.fn();
  }
}

}  // namespace alpha::net
