// Unified transport abstraction for the node runtime.
//
// The protocol engines are frame-in / frame-out, but the two worlds they run
// in expose incompatible driving models: the simulator pushes frames into
// per-node receive callbacks while virtual time advances, and UDP sockets
// must be drained by blocking polls against wall-clock time. Transport hides
// that difference behind one interface -- send a frame to a peer, drain
// pending input, read a monotonic clock, schedule a callback -- so AlphaNode
// (core/node.hpp) and every example/tool/test can run identically over
// either world.
//
// Peers are opaque 64-bit addresses: a net::NodeId in the simulator, a
// loopback UDP port for sockets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "crypto/bytes.hpp"
#include "net/network.hpp"
#include "net/udp.hpp"

namespace alpha::net {

/// Opaque peer address (NodeId for the simulator, UDP port for sockets).
using PeerAddr = std::uint64_t;

class Transport {
 public:
  /// Inbound frame handler: (source peer, frame bytes).
  using ReceiveFn = std::function<void(PeerAddr, crypto::ByteView)>;

  virtual ~Transport() = default;

  /// Installs the single inbound-frame consumer (the node's demux).
  virtual void set_receiver(ReceiveFn receiver) = 0;

  /// Sends one frame toward `peer`. Returns false if the transport knows
  /// the frame was not sent (no link, oversize); best-effort otherwise.
  virtual bool send(PeerAddr peer, crypto::Bytes frame) = 0;

  /// Drives the transport for up to `timeout_ms`: delivers pending inbound
  /// frames to the receiver and fires due scheduled callbacks. Returns the
  /// number of frames delivered. EINTR-safe on real sockets.
  virtual std::size_t poll(int timeout_ms) = 0;

  /// Monotonic time in microseconds (virtual in the simulator, steady
  /// wall clock over sockets).
  virtual std::uint64_t now_us() const = 0;

  /// Requests `fn` to run at absolute time `at_us` (clamped to now). The
  /// simulator fires it from its event queue; socket transports fire it
  /// from poll(). Used by the node runtime's timer wheel.
  virtual void schedule(std::uint64_t at_us, std::function<void()> fn) = 0;
};

/// Transport adapter over the discrete-event simulator: binds to one
/// network node, pushes arriving frames straight into the receiver while
/// the simulation runs, and maps poll() to advancing virtual time.
class SimTransport final : public Transport {
 public:
  /// Binds to `self`, which must already exist in `network`. Replaces the
  /// node's receive handler for the lifetime of this transport.
  SimTransport(Network& network, NodeId self);
  ~SimTransport() override;

  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  void set_receiver(ReceiveFn receiver) override;
  bool send(PeerAddr peer, crypto::Bytes frame) override;
  std::size_t poll(int timeout_ms) override;
  std::uint64_t now_us() const override;
  void schedule(std::uint64_t at_us, std::function<void()> fn) override;

  NodeId self() const noexcept { return self_; }

 private:
  Network* network_;
  NodeId self_;
  ReceiveFn receiver_;
  std::size_t frames_delivered_ = 0;  // total, for poll() deltas
};

/// Transport adapter over a real UDP socket: poll() waits for and then
/// non-blockingly drains the socket, and scheduled callbacks fire from
/// poll() against the steady clock.
class UdpTransport final : public Transport {
 public:
  /// Binds a fresh loopback endpoint (port 0 = ephemeral).
  explicit UdpTransport(std::uint16_t port = 0);
  /// Adopts an already-bound endpoint.
  explicit UdpTransport(UdpEndpoint endpoint);

  void set_receiver(ReceiveFn receiver) override;
  bool send(PeerAddr peer, crypto::Bytes frame) override;
  std::size_t poll(int timeout_ms) override;
  std::uint64_t now_us() const override;
  void schedule(std::uint64_t at_us, std::function<void()> fn) override;

  std::uint16_t port() const noexcept { return endpoint_.port(); }
  UdpEndpoint& endpoint() noexcept { return endpoint_; }

 private:
  void fire_due_timers();

  struct Timer {
    std::uint64_t at_us;
    std::uint64_t seq;  // FIFO among equal deadlines
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Timer& a, const Timer& b) const noexcept {
      if (a.at_us != b.at_us) return a.at_us > b.at_us;
      return a.seq > b.seq;
    }
  };

  UdpEndpoint endpoint_;
  ReceiveFn receiver_;
  std::priority_queue<Timer, std::vector<Timer>, Later> timers_;
  std::uint64_t next_timer_seq_ = 0;
};

}  // namespace alpha::net
