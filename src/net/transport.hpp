// Unified transport abstraction for the node runtime.
//
// The protocol engines are frame-in / frame-out, but the two worlds they run
// in expose incompatible driving models: the simulator pushes frames into
// per-node receive callbacks while virtual time advances, and UDP sockets
// must be drained by blocking polls against wall-clock time. Transport hides
// that difference behind one interface -- send a frame to a peer, drain
// pending input, read a monotonic clock, schedule a callback -- so AlphaNode
// (core/node.hpp) and every example/tool/test can run identically over
// either world.
//
// Peers are opaque 64-bit addresses: a net::NodeId in the simulator, a
// loopback UDP port for sockets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "crypto/bytes.hpp"
#include "net/network.hpp"
#include "net/udp.hpp"

namespace alpha::net {

/// Opaque peer address (NodeId for the simulator, UDP port for sockets).
using PeerAddr = std::uint64_t;

/// One inbound frame returned by Transport::recv_batch. `data` views
/// transport-owned storage valid until the next recv_batch/poll call on the
/// same transport; `recv_us` is the arrival timestamp on the transport's
/// clock (virtual arrival time in the simulator, batch drain time on
/// sockets).
struct RxFrame {
  PeerAddr from = 0;
  std::uint64_t recv_us = 0;
  crypto::ByteView data;
};

/// One outbound frame for Transport::send_batch. The view must stay valid
/// for the duration of the call only.
struct TxFrame {
  PeerAddr peer = 0;
  crypto::ByteView data;
};

class Transport {
 public:
  /// Inbound frame handler: (source peer, frame bytes).
  using ReceiveFn = std::function<void(PeerAddr, crypto::ByteView)>;

  virtual ~Transport() = default;

  /// Installs the single inbound-frame consumer (the node's demux).
  virtual void set_receiver(ReceiveFn receiver) = 0;

  /// Sends one frame toward `peer`. Returns false if the transport knows
  /// the frame was not sent (no link, oversize); best-effort otherwise.
  virtual bool send(PeerAddr peer, crypto::Bytes frame) = 0;

  /// Drives the transport for up to `timeout_ms`: delivers pending inbound
  /// frames to the receiver and fires due scheduled callbacks. Returns the
  /// number of frames delivered. EINTR-safe on real sockets.
  virtual std::size_t poll(int timeout_ms) = 0;

  /// Monotonic time in microseconds (virtual in the simulator, steady
  /// wall clock over sockets).
  virtual std::uint64_t now_us() const = 0;

  /// Requests `fn` to run at absolute time `at_us` (clamped to now). The
  /// simulator fires it from its event queue; socket transports fire it
  /// from poll(). Used by the node runtime's timer wheel.
  virtual void schedule(std::uint64_t at_us, std::function<void()> fn) = 0;

  // ---- batched I/O (the sharded runtime's drive model) -------------------
  //
  // recv_batch/send_batch form a pull-based alternative to the
  // set_receiver/poll push model: the caller owns the drive loop and the
  // transport amortizes per-frame cost over a batch (one recvmmsg/sendmmsg
  // syscall on UDP, one buffered dequeue on the simulator). A transport is
  // driven through exactly one of the two models at a time -- frames go to
  // the receiver when one is installed, to recv_batch's buffer otherwise.

  /// Pulls up to `max` pending inbound frames, waiting up to `timeout_ms`
  /// for the first. Returns the number written to `out`; views stay valid
  /// until the next recv_batch/poll call. Default: no batch support (0).
  virtual std::size_t recv_batch(int timeout_ms, RxFrame* out,
                                 std::size_t max) {
    (void)timeout_ms;
    (void)out;
    (void)max;
    return 0;
  }

  /// Sends `n` frames, returning how many were accepted (a partial count
  /// surfaces transient backpressure; the caller resubmits the tail).
  /// Default: a loop over send(), one frame copy each.
  virtual std::size_t send_batch(const TxFrame* frames, std::size_t n) {
    std::size_t sent = 0;
    for (; sent < n; ++sent) {
      const TxFrame& f = frames[sent];
      if (!send(f.peer, crypto::Bytes(f.data.begin(), f.data.end()))) {
        // Count the frame as consumed: the transport rejected it for
        // cause (no link, oversize), which retrying cannot fix.
      }
    }
    return sent;
  }

  /// True when now_us() is safe to call concurrently from several threads
  /// (a steady wall clock). The simulator's virtual clock is advanced by
  /// its single driving thread and is not.
  virtual bool clock_thread_safe() const { return false; }
};

/// Transport adapter over the discrete-event simulator: binds to one
/// network node, pushes arriving frames straight into the receiver while
/// the simulation runs, and maps poll() to advancing virtual time.
class SimTransport final : public Transport {
 public:
  /// Binds to `self`, which must already exist in `network`. Replaces the
  /// node's receive handler for the lifetime of this transport.
  SimTransport(Network& network, NodeId self);
  ~SimTransport() override;

  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  void set_receiver(ReceiveFn receiver) override;
  bool send(PeerAddr peer, crypto::Bytes frame) override;
  std::size_t poll(int timeout_ms) override;
  std::uint64_t now_us() const override;
  void schedule(std::uint64_t at_us, std::function<void()> fn) override;

  /// With no receiver installed, arriving frames are buffered (stamped with
  /// their virtual arrival time). recv_batch advances virtual time by up to
  /// `timeout_ms` only when the buffer is empty, then hands out buffered
  /// frames in arrival order. timeout 0 = drain-only.
  std::size_t recv_batch(int timeout_ms, RxFrame* out,
                         std::size_t max) override;

  NodeId self() const noexcept { return self_; }

 private:
  struct Buffered {
    PeerAddr from;
    std::uint64_t recv_us;
    crypto::Bytes data;
  };

  Network* network_;
  NodeId self_;
  ReceiveFn receiver_;
  std::size_t frames_delivered_ = 0;  // total, for poll() deltas
  std::queue<Buffered> pending_;      // frames buffered for recv_batch
  std::vector<Buffered> drained_;     // storage behind the last batch's views
};

/// Transport adapter over a real UDP socket: poll() waits for and then
/// non-blockingly drains the socket, and scheduled callbacks fire from
/// poll() against the steady clock.
class UdpTransport final : public Transport {
 public:
  /// Binds a fresh loopback endpoint (port 0 = ephemeral).
  explicit UdpTransport(std::uint16_t port = 0);
  /// Adopts an already-bound endpoint.
  explicit UdpTransport(UdpEndpoint endpoint);

  void set_receiver(ReceiveFn receiver) override;
  bool send(PeerAddr peer, crypto::Bytes frame) override;
  std::size_t poll(int timeout_ms) override;
  std::uint64_t now_us() const override;
  void schedule(std::uint64_t at_us, std::function<void()> fn) override;

  /// One recvmmsg() drains up to min(max, UdpEndpoint::kBatchSize) queued
  /// datagrams after waiting up to `timeout_ms` for the first.
  std::size_t recv_batch(int timeout_ms, RxFrame* out,
                         std::size_t max) override;
  /// One sendmmsg() per kBatchSize chunk; stops at the first partial kernel
  /// completion and returns how many frames were accepted.
  std::size_t send_batch(const TxFrame* frames, std::size_t n) override;
  bool clock_thread_safe() const override { return true; }

  std::uint16_t port() const noexcept { return endpoint_.port(); }
  UdpEndpoint& endpoint() noexcept { return endpoint_; }

 private:
  void fire_due_timers();

  struct Timer {
    std::uint64_t at_us;
    std::uint64_t seq;  // FIFO among equal deadlines
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Timer& a, const Timer& b) const noexcept {
      if (a.at_us != b.at_us) return a.at_us > b.at_us;
      return a.seq > b.seq;
    }
  };

  UdpEndpoint endpoint_;
  ReceiveFn receiver_;
  std::priority_queue<Timer, std::vector<Timer>, Later> timers_;
  std::uint64_t next_timer_seq_ = 0;
};

}  // namespace alpha::net
