// Real-socket transport (IPv4 UDP).
//
// The protocol engines are transport-agnostic: they consume and produce byte
// frames. This endpoint runs them over genuine POSIX datagram sockets so the
// examples and integration tests exercise ALPHA end-to-end on the loopback
// interface, not only inside the simulator.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/bytes.hpp"

namespace alpha::net {

class UdpEndpoint {
 public:
  /// Binds to 127.0.0.1:port; port 0 selects an ephemeral port.
  /// Throws std::runtime_error on socket errors.
  explicit UdpEndpoint(std::uint16_t port = 0);
  ~UdpEndpoint();

  UdpEndpoint(const UdpEndpoint&) = delete;
  UdpEndpoint& operator=(const UdpEndpoint&) = delete;
  UdpEndpoint(UdpEndpoint&& other) noexcept;
  UdpEndpoint& operator=(UdpEndpoint&& other) noexcept;

  std::uint16_t port() const noexcept { return port_; }

  /// Sends one datagram to 127.0.0.1:dest_port.
  void send_to(std::uint16_t dest_port, crypto::ByteView data);

  struct Datagram {
    std::uint16_t from_port;
    /// View into the endpoint's reusable receive buffer: valid until the
    /// next receive() on (or move of) this endpoint. Copy to retain.
    crypto::ByteView data;
  };

  /// Waits up to timeout_ms for a datagram; nullopt on timeout. 0 performs
  /// a non-blocking drain probe. Interrupted syscalls (EINTR) are retried,
  /// never surfaced as errors. The payload lands in a per-endpoint buffer
  /// (allocated once, lazily), keeping the receive path allocation-free.
  std::optional<Datagram> receive(int timeout_ms);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  crypto::Bytes recv_buf_;
};

}  // namespace alpha::net
