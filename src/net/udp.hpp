// Real-socket transport (IPv4 UDP).
//
// The protocol engines are transport-agnostic: they consume and produce byte
// frames. This endpoint runs them over genuine POSIX datagram sockets so the
// examples and integration tests exercise ALPHA end-to-end on the loopback
// interface, not only inside the simulator.
//
// Two I/O shapes are offered:
//  * one-at-a-time send_to()/receive() -- the classic poll-loop path, and
//  * batched send_many()/receive_batch() over sendmmsg()/recvmmsg(), which
//    amortize one syscall over a whole batch for the sharded runtime's
//    dedicated I/O thread. All receive paths land in per-endpoint buffers
//    allocated once (lazily), keeping the steady state allocation-free.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/bytes.hpp"

struct mmsghdr;  // <sys/socket.h>; kept out of this header

namespace alpha::net {

class UdpEndpoint {
 public:
  /// Datagrams per receive_batch/send_many syscall. Linux caps sendmmsg at
  /// UIO_MAXIOV anyway; 32 amortizes the syscall without bloating the
  /// preallocated receive buffers (32 x 64 KiB).
  static constexpr std::size_t kBatchSize = 32;

  /// Binds to 127.0.0.1:port; port 0 selects an ephemeral port.
  /// Throws std::runtime_error on socket errors.
  explicit UdpEndpoint(std::uint16_t port = 0);
  ~UdpEndpoint();

  UdpEndpoint(const UdpEndpoint&) = delete;
  UdpEndpoint& operator=(const UdpEndpoint&) = delete;
  UdpEndpoint(UdpEndpoint&& other) noexcept;
  UdpEndpoint& operator=(UdpEndpoint&& other) noexcept;

  std::uint16_t port() const noexcept { return port_; }

  /// Sends one datagram to 127.0.0.1:dest_port.
  void send_to(std::uint16_t dest_port, crypto::ByteView data);

  struct Datagram {
    std::uint16_t from_port;
    /// View into the endpoint's reusable receive buffer: valid until the
    /// next receive()/receive_batch() on (or move of) this endpoint. Copy
    /// to retain.
    crypto::ByteView data;
  };

  /// Waits up to timeout_ms for a datagram; nullopt on timeout. 0 performs
  /// a non-blocking drain probe. Interrupted syscalls (EINTR) are retried,
  /// never surfaced as errors. The payload lands in a per-endpoint buffer
  /// (allocated once, lazily), keeping the receive path allocation-free.
  std::optional<Datagram> receive(int timeout_ms);

  /// Batched receive via recvmmsg(): waits up to timeout_ms for the first
  /// datagram, then drains up to min(max, kBatchSize) already-queued ones
  /// in ONE syscall. Returns the number received into `out`; their views
  /// point into per-slot buffers valid until the next receive call. A
  /// second back-to-back call with timeout 0 continues draining.
  std::size_t receive_batch(int timeout_ms, Datagram* out, std::size_t max);

  struct OutDatagram {
    std::uint16_t dest_port = 0;
    crypto::ByteView data;
  };

  /// Batched send via sendmmsg(): submits up to kBatchSize datagrams in one
  /// syscall and returns how many the kernel actually accepted -- a PARTIAL
  /// completion (kernel queue pressure, EAGAIN after some progress) is a
  /// normal outcome, not an error: the caller resubmits the remainder.
  /// Throws only when the kernel accepts nothing and reports a real error.
  std::size_t send_many(const OutDatagram* out, std::size_t n);

  /// Test seam: replaces the sendmmsg(2) syscall for this endpoint so unit
  /// tests can inject short completions and transient errors. nullptr
  /// restores the real syscall.
  using SendmmsgFn = int (*)(int fd, ::mmsghdr* msgs, unsigned n, int flags);
  void set_sendmmsg_for_test(SendmmsgFn fn) noexcept { sendmmsg_fn_ = fn; }

 private:
  void ensure_batch_buffers();

  int fd_ = -1;
  std::uint16_t port_ = 0;
  crypto::Bytes recv_buf_;
  /// receive_batch storage: kBatchSize slots of 64 KiB plus address/iovec
  /// arrays, all in one lazily-allocated block (see ensure_batch_buffers).
  crypto::Bytes batch_buf_;
  SendmmsgFn sendmmsg_fn_ = nullptr;
};

}  // namespace alpha::net
