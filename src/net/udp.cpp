#include "net/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace alpha::net {

namespace {
[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

constexpr std::size_t kMaxDatagram = 65536;

// Layout of UdpEndpoint::batch_buf_: one contiguous lazily-allocated block
// holding everything recvmmsg needs, so enabling batched receive costs one
// allocation for the lifetime of the endpoint.
struct BatchStorage {
  ::mmsghdr headers[UdpEndpoint::kBatchSize];
  ::iovec iovecs[UdpEndpoint::kBatchSize];
  ::sockaddr_in addrs[UdpEndpoint::kBatchSize];
  std::uint8_t payloads[UdpEndpoint::kBatchSize][kMaxDatagram];
};

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}
}  // namespace

UdpEndpoint::UdpEndpoint(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) fail("socket");

  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fail("bind");
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd_);
    fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

UdpEndpoint::~UdpEndpoint() {
  if (fd_ >= 0) ::close(fd_);
}

UdpEndpoint::UdpEndpoint(UdpEndpoint&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      recv_buf_(std::move(other.recv_buf_)),
      batch_buf_(std::move(other.batch_buf_)),
      sendmmsg_fn_(std::exchange(other.sendmmsg_fn_, nullptr)) {}

UdpEndpoint& UdpEndpoint::operator=(UdpEndpoint&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    recv_buf_ = std::move(other.recv_buf_);
    batch_buf_ = std::move(other.batch_buf_);
    sendmmsg_fn_ = std::exchange(other.sendmmsg_fn_, nullptr);
  }
  return *this;
}

void UdpEndpoint::send_to(std::uint16_t dest_port, crypto::ByteView data) {
  sockaddr_in addr = loopback_addr(dest_port);
  // Datagram sockets send atomically: sendto either queues the whole frame
  // or fails (EMSGSIZE for oversize). A short count is therefore a kernel
  // contract violation, not a condition to resume from -- treat it as an
  // error rather than looping on the remainder (which would corrupt the
  // frame stream with a partial datagram).
  ssize_t sent;
  do {
    sent = ::sendto(fd_, data.data(), data.size(), 0,
                    reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (sent < 0 && errno == EINTR);
  if (sent < 0) fail("sendto");
  if (static_cast<std::size_t>(sent) != data.size()) {
    throw std::runtime_error("sendto: short datagram write");
  }
}

std::optional<UdpEndpoint::Datagram> UdpEndpoint::receive(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  int ready;
  do {
    ready = ::poll(&pfd, 1, timeout_ms);
  } while (ready < 0 && errno == EINTR);  // signal during wait: retry
  if (ready < 0) fail("poll");
  if (ready == 0) return std::nullopt;

  // One reusable buffer per endpoint (max UDP payload), allocated on the
  // first receive: the steady-state receive path never touches the heap.
  if (recv_buf_.size() != kMaxDatagram) recv_buf_.resize(kMaxDatagram);
  sockaddr_in from{};
  socklen_t from_len = sizeof(from);
  ssize_t got;
  do {
    got = ::recvfrom(fd_, recv_buf_.data(), recv_buf_.size(), 0,
                     reinterpret_cast<sockaddr*>(&from), &from_len);
  } while (got < 0 && errno == EINTR);
  if (got < 0) fail("recvfrom");
  return Datagram{ntohs(from.sin_port),
                  crypto::ByteView{recv_buf_.data(),
                                   static_cast<std::size_t>(got)}};
}

void UdpEndpoint::ensure_batch_buffers() {
  if (batch_buf_.size() == sizeof(BatchStorage)) return;
  batch_buf_.resize(sizeof(BatchStorage));
  auto* storage = reinterpret_cast<BatchStorage*>(batch_buf_.data());
  for (std::size_t i = 0; i < kBatchSize; ++i) {
    storage->iovecs[i].iov_base = storage->payloads[i];
    storage->iovecs[i].iov_len = kMaxDatagram;
    std::memset(&storage->headers[i], 0, sizeof(::mmsghdr));
    storage->headers[i].msg_hdr.msg_iov = &storage->iovecs[i];
    storage->headers[i].msg_hdr.msg_iovlen = 1;
  }
}

std::size_t UdpEndpoint::receive_batch(int timeout_ms, Datagram* out,
                                       std::size_t max) {
  if (max == 0) return 0;
  pollfd pfd{fd_, POLLIN, 0};
  int ready;
  do {
    ready = ::poll(&pfd, 1, timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) fail("poll");
  if (ready == 0) return 0;

  ensure_batch_buffers();
  auto* storage = reinterpret_cast<BatchStorage*>(batch_buf_.data());
  const unsigned want =
      static_cast<unsigned>(max < kBatchSize ? max : kBatchSize);
  for (unsigned i = 0; i < want; ++i) {
    // recvmmsg updates msg_namelen/msg_len per call; reset before reuse.
    storage->headers[i].msg_hdr.msg_name = &storage->addrs[i];
    storage->headers[i].msg_hdr.msg_namelen = sizeof(::sockaddr_in);
    storage->headers[i].msg_len = 0;
  }
  int got;
  do {
    got = ::recvmmsg(fd_, storage->headers, want, MSG_DONTWAIT, nullptr);
  } while (got < 0 && errno == EINTR);
  if (got < 0) {
    // The poll() said readable but the queue drained in between (possible
    // with concurrent consumers; benign): report an empty batch.
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    fail("recvmmsg");
  }
  for (int i = 0; i < got; ++i) {
    out[i].from_port = ntohs(storage->addrs[i].sin_port);
    out[i].data = crypto::ByteView{storage->payloads[i],
                                   storage->headers[i].msg_len};
  }
  return static_cast<std::size_t>(got);
}

std::size_t UdpEndpoint::send_many(const OutDatagram* out, std::size_t n) {
  if (n == 0) return 0;
  ensure_batch_buffers();
  auto* storage = reinterpret_cast<BatchStorage*>(batch_buf_.data());
  const unsigned want = static_cast<unsigned>(n < kBatchSize ? n : kBatchSize);
  for (unsigned i = 0; i < want; ++i) {
    storage->addrs[i] = loopback_addr(out[i].dest_port);
    // const_cast: sendmmsg never writes through iov_base on the send side;
    // the iovec struct is shared with the receive path.
    storage->iovecs[i].iov_base =
        const_cast<std::uint8_t*>(out[i].data.data());
    storage->iovecs[i].iov_len = out[i].data.size();
    storage->headers[i].msg_hdr.msg_name = &storage->addrs[i];
    storage->headers[i].msg_hdr.msg_namelen = sizeof(::sockaddr_in);
    storage->headers[i].msg_len = 0;
  }
  int sent;
  do {
    sent = sendmmsg_fn_ != nullptr
               ? sendmmsg_fn_(fd_, storage->headers, want, 0)
               : ::sendmmsg(fd_, storage->headers, want, 0);
  } while (sent < 0 && errno == EINTR);
  // Restore the receive-side iovec invariants before any error path.
  for (unsigned i = 0; i < want; ++i) {
    storage->iovecs[i].iov_base = storage->payloads[i];
    storage->iovecs[i].iov_len = kMaxDatagram;
  }
  if (sent < 0) {
    // Transient backpressure with zero progress: a 0-frame completion the
    // caller retries, exactly like a partial one. Hard errors still throw.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) return 0;
    fail("sendmmsg");
  }
  // sendmmsg returning k < want is a PARTIAL completion: datagrams [0, k)
  // are queued, [k, want) are not. Surfacing k (instead of erroring the
  // whole batch) lets the caller resubmit only the unsent tail -- dropping
  // or re-sending the whole batch would lose or duplicate frames.
  return static_cast<std::size_t>(sent);
}

}  // namespace alpha::net
