#include "net/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace alpha::net {

namespace {
[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

UdpEndpoint::UdpEndpoint(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) fail("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fail("bind");
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd_);
    fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

UdpEndpoint::~UdpEndpoint() {
  if (fd_ >= 0) ::close(fd_);
}

UdpEndpoint::UdpEndpoint(UdpEndpoint&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      recv_buf_(std::move(other.recv_buf_)) {}

UdpEndpoint& UdpEndpoint::operator=(UdpEndpoint&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    recv_buf_ = std::move(other.recv_buf_);
  }
  return *this;
}

void UdpEndpoint::send_to(std::uint16_t dest_port, crypto::ByteView data) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(dest_port);
  // Datagram sockets send atomically: sendto either queues the whole frame
  // or fails (EMSGSIZE for oversize). A short count is therefore a kernel
  // contract violation, not a condition to resume from -- treat it as an
  // error rather than looping on the remainder (which would corrupt the
  // frame stream with a partial datagram).
  ssize_t sent;
  do {
    sent = ::sendto(fd_, data.data(), data.size(), 0,
                    reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (sent < 0 && errno == EINTR);
  if (sent < 0) fail("sendto");
  if (static_cast<std::size_t>(sent) != data.size()) {
    throw std::runtime_error("sendto: short datagram write");
  }
}

std::optional<UdpEndpoint::Datagram> UdpEndpoint::receive(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  int ready;
  do {
    ready = ::poll(&pfd, 1, timeout_ms);
  } while (ready < 0 && errno == EINTR);  // signal during wait: retry
  if (ready < 0) fail("poll");
  if (ready == 0) return std::nullopt;

  // One reusable buffer per endpoint (max UDP payload), allocated on the
  // first receive: the steady-state receive path never touches the heap.
  if (recv_buf_.size() != 65536) recv_buf_.resize(65536);
  sockaddr_in from{};
  socklen_t from_len = sizeof(from);
  ssize_t got;
  do {
    got = ::recvfrom(fd_, recv_buf_.data(), recv_buf_.size(), 0,
                     reinterpret_cast<sockaddr*>(&from), &from_len);
  } while (got < 0 && errno == EINTR);
  if (got < 0) fail("recvfrom");
  return Datagram{ntohs(from.sin_port),
                  crypto::ByteView{recv_buf_.data(),
                                   static_cast<std::size_t>(got)}};
}

}  // namespace alpha::net
