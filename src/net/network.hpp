// Multi-hop network model: nodes, links, routing, statistics.
//
// Models what the protocol can observe of a wireless multi-hop path:
// per-link propagation latency, random jitter, Bernoulli loss, serialization
// delay from finite bandwidth (with a busy-until queue per direction), and an
// MTU that drops oversized frames. Routing is static shortest-path (BFS),
// matching the paper's requirement that the relay set stays stable for the
// lifetime of a hash chain (§3.1.1).
//
// Nodes attach a receive handler; the ALPHA engines bind to that. Everything
// is deterministic given the seed of the RandomSource driving jitter/loss.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/random.hpp"
#include "net/sim.hpp"

namespace alpha::net {

using crypto::Bytes;
using crypto::ByteView;

using NodeId = std::uint32_t;

struct LinkConfig {
  SimTime latency = 5 * kMillisecond;  // one-way propagation
  SimTime jitter = 0;                  // uniform extra delay in [0, jitter]
  double loss_rate = 0.0;              // Bernoulli frame loss
  std::uint64_t bandwidth_bps = 54'000'000;  // 802.11g default
  std::size_t mtu = 1280;              // minimum IPv6 MTU (paper Fig. 5)
};

struct LinkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t frames_oversize = 0;
  std::uint64_t bytes_delivered = 0;
};

/// Handler invoked on frame arrival: (from, frame bytes).
using ReceiveFn = std::function<void(NodeId, ByteView)>;

class Network {
 public:
  Network(Simulator& sim, std::uint64_t seed = 1)
      : sim_(&sim), rng_(seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node. Handlers may be set later via set_handler.
  void add_node(NodeId id, ReceiveFn handler = nullptr);
  void set_handler(NodeId id, ReceiveFn handler);
  bool has_node(NodeId id) const noexcept { return nodes_.contains(id); }

  /// Adds a bidirectional link; both directions share the config but have
  /// independent queues and stats.
  void add_link(NodeId a, NodeId b, LinkConfig config = {});

  /// Sends one frame from `from` to adjacent `to`. Returns false if there
  /// is no such link or the frame exceeds the MTU (dropped, counted).
  bool send(NodeId from, NodeId to, Bytes frame);

  /// Shortest path (BFS, hop count) from src to dst, inclusive.
  /// Empty if unreachable.
  std::vector<NodeId> route(NodeId src, NodeId dst) const;

  /// Neighbors of a node.
  std::vector<NodeId> neighbors(NodeId id) const;

  const LinkStats& link_stats(NodeId from, NodeId to) const;
  LinkStats total_stats() const;

  /// One record per frame handed to send(): what happened to it and when it
  /// will arrive (delivery_at == 0 for drops).
  enum class FrameFate : std::uint8_t {
    kDelivered = 1,
    kLost = 2,      // random loss
    kOversize = 3,  // exceeded the MTU
    kNoLink = 4,
  };
  struct TraceRecord {
    SimTime sent_at;
    SimTime delivery_at;
    NodeId from;
    NodeId to;
    std::size_t size;
    FrameFate fate;
  };
  using TraceFn = std::function<void(const TraceRecord&)>;

  /// Installs a frame tracer (nullptr disables). Called synchronously from
  /// send(); keep it cheap.
  void set_tracer(TraceFn tracer) { tracer_ = std::move(tracer); }

  Simulator& sim() noexcept { return *sim_; }

 private:
  struct DirectedLink {
    LinkConfig config;
    LinkStats stats;
    SimTime busy_until = 0;  // serialization queue tail
  };

  struct NodeEntry {
    ReceiveFn handler;
  };

  DirectedLink* find_link(NodeId from, NodeId to);
  const DirectedLink* find_link(NodeId from, NodeId to) const;

  Simulator* sim_;
  crypto::HmacDrbg rng_;
  std::map<NodeId, NodeEntry> nodes_;
  std::map<std::pair<NodeId, NodeId>, DirectedLink> links_;
  TraceFn tracer_;
};

}  // namespace alpha::net
