// Multi-hop network model: nodes, links, routing, statistics.
//
// Models what the protocol can observe of a wireless multi-hop path:
// per-link propagation latency, random jitter, Bernoulli loss, serialization
// delay from finite bandwidth (with a busy-until queue per direction), and an
// MTU that drops oversized frames. Routing is static shortest-path (BFS),
// matching the paper's requirement that the relay set stays stable for the
// lifetime of a hash chain (§3.1.1).
//
// On top of the benign model sits an adversarial fault layer (§5 threat
// model): per-link schedules of frame duplication, bounded reordering,
// random bit corruption, Gilbert-Elliott bursty loss, and timed link
// up/down partitions. Faults draw from their own seeded RandomSource, so
// (a) enabling them never perturbs the benign jitter/loss stream and
// (b) an entire adversarial run replays bit-for-bit from one chaos seed.
//
// Nodes attach a receive handler; the ALPHA engines bind to that. Everything
// is deterministic given the seed of the RandomSource driving jitter/loss.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/random.hpp"
#include "net/sim.hpp"

namespace alpha::net {

using crypto::Bytes;
using crypto::ByteView;

using NodeId = std::uint32_t;

struct LinkConfig {
  SimTime latency = 5 * kMillisecond;  // one-way propagation
  SimTime jitter = 0;                  // uniform extra delay in [0, jitter]
  double loss_rate = 0.0;              // Bernoulli frame loss
  std::uint64_t bandwidth_bps = 54'000'000;  // 802.11g default
  std::size_t mtu = 1280;              // minimum IPv6 MTU (paper Fig. 5)
};

/// Two-state Gilbert-Elliott loss: per frame the link flips between a good
/// and a bad state, each with its own loss probability -- losses cluster
/// into bursts with geometric lengths (mean bad burst = 1/p_exit_bad).
struct BurstLossConfig {
  double p_enter_bad = 0.05;  // good -> bad transition per frame
  double p_exit_bad = 0.25;   // bad -> good transition per frame
  double loss_good = 0.0;     // loss probability in the good state
  double loss_bad = 0.75;     // loss probability in the bad state
};

/// Adversarial fault schedule for one link. Every rate is a per-frame
/// probability drawn from the network's chaos RandomSource.
struct FaultConfig {
  double duplicate_rate = 0.0;  // frame delivered a second time
  double corrupt_rate = 0.0;    // random bit flips applied in flight
  int corrupt_max_bits = 3;     // 1..N bits flipped per corrupted frame
  double reorder_rate = 0.0;    // frame held back by an extra random delay
  SimTime reorder_window = 50 * kMillisecond;  // bound on the extra delay
                                               // (also the duplicate offset)
  std::optional<BurstLossConfig> burst;  // Gilbert-Elliott bursty loss

  bool any() const noexcept {
    return duplicate_rate > 0.0 || corrupt_rate > 0.0 || reorder_rate > 0.0 ||
           burst.has_value();
  }
};

struct LinkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;       // random loss (Bernoulli + burst)
  std::uint64_t frames_oversize = 0;
  std::uint64_t bytes_delivered = 0;
  // Fault-layer counters.
  std::uint64_t frames_duplicated = 0;  // extra copies injected
  std::uint64_t frames_corrupted = 0;   // delivered with flipped bits
  std::uint64_t frames_reordered = 0;   // held back past later frames
  std::uint64_t frames_link_down = 0;   // swallowed by a partition
};

/// Handler invoked on frame arrival: (from, frame bytes).
using ReceiveFn = std::function<void(NodeId, ByteView)>;

class Network {
 public:
  /// `seed` drives the benign jitter/loss stream; faults draw from a
  /// separate chaos stream derived from it (see set_chaos_seed).
  Network(Simulator& sim, std::uint64_t seed = 1)
      : sim_(&sim), rng_(seed), chaos_rng_(seed ^ kChaosSeedSalt) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node. Handlers may be set later via set_handler.
  void add_node(NodeId id, ReceiveFn handler = nullptr);
  void set_handler(NodeId id, ReceiveFn handler);
  bool has_node(NodeId id) const noexcept { return nodes_.contains(id); }

  /// Adds a bidirectional link; both directions share the config but have
  /// independent queues and stats.
  void add_link(NodeId a, NodeId b, LinkConfig config = {});

  /// Installs a fault schedule on both directions of an existing link
  /// (independent burst state and counters per direction).
  void set_link_faults(NodeId a, NodeId b, FaultConfig faults);

  /// Immediately raises/cuts both directions of a link. Frames sent into a
  /// down link vanish (the sender cannot tell a partition from loss).
  void set_link_up(NodeId a, NodeId b, bool up);
  bool link_up(NodeId a, NodeId b) const;

  /// Schedules a partition: the link goes down at `at` and heals at
  /// `at + duration` (simulator events, so fully deterministic).
  void schedule_partition(NodeId a, NodeId b, SimTime at, SimTime duration);

  /// Reseeds the fault stream independently of the benign seed, so one
  /// chaos seed replays a whole adversarial schedule bit-for-bit.
  void set_chaos_seed(std::uint64_t seed) {
    chaos_rng_.reset(seed ^ kChaosSeedSalt);
  }

  /// Sends one frame from `from` to adjacent `to`. Returns false if there
  /// is no such link or the frame exceeds the MTU (dropped, counted).
  bool send(NodeId from, NodeId to, Bytes frame);

  /// Shortest path (BFS, hop count) from src to dst, inclusive.
  /// Empty if unreachable.
  std::vector<NodeId> route(NodeId src, NodeId dst) const;

  /// Neighbors of a node.
  std::vector<NodeId> neighbors(NodeId id) const;

  const LinkStats& link_stats(NodeId from, NodeId to) const;
  LinkStats total_stats() const;

  /// One record per frame handed to send(): what happened to it and when it
  /// will arrive (delivery_at == 0 for drops).
  enum class FrameFate : std::uint8_t {
    kDelivered = 1,
    kLost = 2,       // random loss (Bernoulli or burst)
    kOversize = 3,   // exceeded the MTU
    kNoLink = 4,
    kLinkDown = 5,   // swallowed by a partition
    kDuplicated = 6, // extra copy injected (second record for one send)
  };
  struct TraceRecord {
    SimTime sent_at;
    SimTime delivery_at;
    NodeId from;
    NodeId to;
    std::size_t size;
    FrameFate fate;
    bool corrupted = false;  // bits flipped in flight
    bool reordered = false;  // held back past later frames
  };
  using TraceFn = std::function<void(const TraceRecord&)>;

  /// Installs a frame tracer (nullptr disables). Called synchronously from
  /// send(); keep it cheap.
  void set_tracer(TraceFn tracer) { tracer_ = std::move(tracer); }

  Simulator& sim() noexcept { return *sim_; }

 private:
  static constexpr std::uint64_t kChaosSeedSalt = 0xc4a05'5eedull;

  struct DirectedLink {
    LinkConfig config;
    LinkStats stats;
    SimTime busy_until = 0;  // serialization queue tail
    FaultConfig faults;
    bool up = true;          // partition state
    bool burst_bad = false;  // Gilbert-Elliott state
  };

  struct NodeEntry {
    ReceiveFn handler;
  };

  DirectedLink* find_link(NodeId from, NodeId to);
  const DirectedLink* find_link(NodeId from, NodeId to) const;
  /// One chaos draw in [0, 1); consumed only when `rate` > 0 so disabled
  /// fault classes never advance the stream.
  bool chaos_chance(double rate);
  void schedule_delivery(NodeId from, NodeId to, Bytes frame, SimTime delay);

  Simulator* sim_;
  crypto::HmacDrbg rng_;
  crypto::HmacDrbg chaos_rng_;
  std::map<NodeId, NodeEntry> nodes_;
  std::map<std::pair<NodeId, NodeId>, DirectedLink> links_;
  TraceFn tracer_;
};

}  // namespace alpha::net
