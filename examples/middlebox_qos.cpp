// Secure middlebox signaling (§3.5 / §1: "rate and resource allocation
// within the network controlled by end-hosts but enforced by intermediate
// nodes").
//
// The end hosts run an ALPHA-protected control channel. The relay in the
// middle extracts *authenticated* control messages ("rate=<kbps>") and
// adjusts its enforcement state. A forged control message injected next to
// the relay never reaches the enforcement logic: the relay only extracts
// payloads that verified against the signer's pre-signature.
//
//   $ ./middlebox_qos
#include <cstdio>
#include <string>

#include "core/attackers.hpp"
#include "core/path.hpp"

using namespace alpha;

namespace {

crypto::Bytes msg(const std::string& s) {
  return crypto::Bytes(s.begin(), s.end());
}

}  // namespace

int main() {
  std::printf("== authenticated QoS signaling to an on-path middlebox ==\n");

  net::Simulator sim;
  net::Network network{sim, 4};
  for (net::NodeId id = 0; id <= 2; ++id) network.add_node(id);
  network.add_link(0, 1);
  network.add_link(1, 2);

  core::Config config;
  config.reliable = true;  // signaling wants confirmation

  core::ProtectedPath path{network, {0, 1, 2}, config, 1, 31};

  // Middlebox enforcement state, driven only by authenticated extractions.
  int rate_limit_kbps = 64;
  path.set_extraction_handler([&](std::size_t relay, crypto::ByteView payload) {
    const std::string cmd(payload.begin(), payload.end());
    if (cmd.rfind("rate=", 0) == 0) {
      rate_limit_kbps = std::stoi(cmd.substr(5));
      std::printf("middlebox (relay %zu): authenticated \"%s\" -> limit now "
                  "%d kbps\n",
                  relay, cmd.c_str(), rate_limit_kbps);
    }
  });

  path.start();
  sim.run_until(net::kSecond);
  std::printf("control channel established: %s\n",
              path.initiator().established() ? "yes" : "no");

  // Genuine signaling from the end host.
  path.initiator().submit(msg("rate=512"), sim.now());
  sim.run_until(2 * net::kSecond);

  // An attacker adjacent to the middlebox injects a forged rate command.
  network.add_node(66);
  network.add_link(66, 1);
  wire::S2Packet forged;
  forged.hdr = {1, 40};
  forged.mode = wire::Mode::kBase;
  forged.chain_index = 2;
  forged.disclosed_element =
      crypto::Digest{crypto::ByteView{crypto::Bytes(20, 0x13)}};
  forged.payload = msg("rate=999999");
  network.send(66, 1, forged.encode());
  sim.run_until(sim.now() + net::kSecond);
  std::printf("attacker injected \"rate=999999\": limit still %d kbps "
              "(forged frame dropped: %s)\n",
              rate_limit_kbps,
              path.relay(0).stats().dropped_unsolicited +
                          path.relay(0).stats().dropped_invalid >
                      0
                  ? "yes"
                  : "no");

  // A second genuine update.
  path.initiator().submit(msg("rate=128"), sim.now());
  sim.run_until(sim.now() + 2 * net::kSecond);

  std::printf("\nfinal middlebox rate limit: %d kbps (expected 128)\n",
              rate_limit_kbps);
  std::printf("relay: %llu authenticated extractions, %llu frames dropped\n",
              static_cast<unsigned long long>(
                  path.relay(0).stats().messages_extracted),
              static_cast<unsigned long long>(
                  path.relay(0).stats().dropped_invalid +
                  path.relay(0).stats().dropped_unsolicited));
  return rate_limit_kbps == 128 ? 0 : 1;
}
