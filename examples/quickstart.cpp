// Quickstart: the smallest complete ALPHA session, on the node runtime.
//
// Four AlphaNodes on a three-hop simulated path (signer, two relays,
// verifier), all talking through the Transport abstraction: bootstrap
// handshake (the verifier end accepts it on demand), one reliable message,
// and a look at the statistics each runtime collected.
//
//   $ ./quickstart
#include <cstdio>

#include "core/node.hpp"
#include "net/network.hpp"

using namespace alpha;

int main() {
  net::Simulator sim;
  net::Network network{sim, /*seed=*/1};

  // s --- r1 --- r2 --- v, 5 ms per hop.
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 5 * net::kMillisecond;
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1, link);

  core::Config config;
  config.reliable = true;  // S1 -> A1 -> S2 -> A2

  // One runtime node per network node; each owns a SimTransport bound to
  // its NodeId. The same code would run over UdpTransport unchanged.
  core::AlphaNode::Options signer_opts;
  signer_opts.config = config;
  signer_opts.seed = 2024;
  core::AlphaNode::Callbacks signer_cbs;
  std::vector<std::pair<std::uint64_t, core::DeliveryStatus>> deliveries;
  signer_cbs.on_delivery = [&](std::uint32_t, std::uint64_t cookie,
                               core::DeliveryStatus status) {
    deliveries.emplace_back(cookie, status);
  };
  core::AlphaNode signer{std::make_unique<net::SimTransport>(network, 0),
                         signer_opts, signer_cbs};
  signer.add_initiator(/*assoc_id=*/1, /*peer=*/1, config);

  core::AlphaNode::Options relay_opts;
  relay_opts.config = config;
  core::AlphaNode relay1{std::make_unique<net::SimTransport>(network, 1),
                         relay_opts};
  relay1.add_relay(/*upstream=*/0, /*downstream=*/2);
  core::AlphaNode relay2{std::make_unique<net::SimTransport>(network, 2),
                         relay_opts};
  relay2.add_relay(/*upstream=*/1, /*downstream=*/3);

  core::AlphaNode::Options verifier_opts;
  verifier_opts.config = config;
  verifier_opts.seed = 2025;
  verifier_opts.accept_inbound = true;  // responder spawned by the HS1
  core::AlphaNode::Callbacks verifier_cbs;
  std::vector<crypto::Bytes> delivered;
  verifier_cbs.on_message = [&](std::uint32_t, crypto::ByteView payload) {
    delivered.emplace_back(payload.begin(), payload.end());
  };
  core::AlphaNode verifier{std::make_unique<net::SimTransport>(network, 3),
                           verifier_opts, verifier_cbs};

  std::printf("== ALPHA quickstart ==\n");
  signer.start(1);
  sim.run_until(net::kSecond);
  std::printf("handshake complete: %s (responder accepted on demand: %s)\n",
              signer.established_count() == 1 ? "yes" : "no",
              verifier.snapshot().accepted_handshakes == 1 ? "yes" : "no");

  const std::string text = "hello, hop-by-hop authenticated world";
  signer.submit(1, crypto::Bytes(text.begin(), text.end()));
  sim.run_until(2 * net::kSecond);

  for (const auto& m : delivered) {
    std::printf("verifier delivered: \"%.*s\"\n", static_cast<int>(m.size()),
                reinterpret_cast<const char*>(m.data()));
  }
  for (const auto& [cookie, status] : deliveries) {
    std::printf("signer: message %llu %s\n",
                static_cast<unsigned long long>(cookie),
                status == core::DeliveryStatus::kAcked ? "acknowledged"
                                                       : "not acknowledged");
  }

  const auto& s = signer.host(1)->signer()->stats();
  std::printf("\nsigner:   S1=%llu S2=%llu acks=%llu hash ops: sig=%llu "
              "chain-verify=%llu ack=%llu\n",
              static_cast<unsigned long long>(s.s1_sent),
              static_cast<unsigned long long>(s.s2_sent),
              static_cast<unsigned long long>(s.acks_received),
              static_cast<unsigned long long>(s.hashes.signature),
              static_cast<unsigned long long>(s.hashes.chain_verify),
              static_cast<unsigned long long>(s.hashes.ack));
  const auto& v = verifier.host(1)->verifier()->stats();
  std::printf("verifier: delivered=%llu A1=%llu A2=%llu\n",
              static_cast<unsigned long long>(v.messages_delivered),
              static_cast<unsigned long long>(v.a1_sent),
              static_cast<unsigned long long>(v.a2_sent));
  core::AlphaNode* relay_nodes[] = {&relay1, &relay2};
  for (std::size_t i = 0; i < 2; ++i) {
    const auto snap = relay_nodes[i]->snapshot();
    std::printf("relay %zu:  forwarded=%llu extracted=%llu dropped=%llu\n", i,
                static_cast<unsigned long long>(snap.relay.forwarded),
                static_cast<unsigned long long>(snap.relay.messages_extracted),
                static_cast<unsigned long long>(snap.relay.dropped_invalid +
                                                snap.relay.dropped_unsolicited));
  }
  const auto node_snap = signer.snapshot();
  std::printf("runtime:  frames in=%llu out=%llu demux-misses=%llu "
              "timer-fires=%llu\n",
              static_cast<unsigned long long>(node_snap.frames_in),
              static_cast<unsigned long long>(node_snap.frames_out),
              static_cast<unsigned long long>(node_snap.demux_misses),
              static_cast<unsigned long long>(node_snap.timer_fires));
  return delivered.size() == 1 && deliveries.size() == 1 ? 0 : 1;
}
