// Quickstart: the smallest complete ALPHA session.
//
// Two hosts on a three-hop simulated path (signer, two relays, verifier):
// bootstrap handshake, one unreliable message, one reliable message, and a
// look at the statistics each role collected.
//
//   $ ./quickstart
#include <cstdio>

#include "core/path.hpp"

using namespace alpha;

int main() {
  net::Simulator sim;
  net::Network network{sim, /*seed=*/1};

  // s --- r1 --- r2 --- v, 5 ms per hop.
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 5 * net::kMillisecond;
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1, link);

  core::Config config;
  config.reliable = true;  // S1 -> A1 -> S2 -> A2

  core::ProtectedPath path{network, {0, 1, 2, 3}, config, /*assoc_id=*/1,
                           /*seed=*/2024};

  std::printf("== ALPHA quickstart ==\n");
  path.start();
  sim.run_until(net::kSecond);
  std::printf("handshake complete: %s\n",
              path.initiator().established() ? "yes" : "no");

  const std::string text = "hello, hop-by-hop authenticated world";
  path.initiator().submit(crypto::Bytes(text.begin(), text.end()), sim.now());
  sim.run_until(2 * net::kSecond);

  for (const auto& m : path.delivered_to_responder()) {
    std::printf("verifier delivered: \"%.*s\"\n", static_cast<int>(m.size()),
                reinterpret_cast<const char*>(m.data()));
  }
  for (const auto& [cookie, status] : path.initiator_deliveries()) {
    std::printf("signer: message %llu %s\n",
                static_cast<unsigned long long>(cookie),
                status == core::DeliveryStatus::kAcked ? "acknowledged"
                                                       : "not acknowledged");
  }

  const auto& signer = path.initiator().signer()->stats();
  std::printf("\nsigner:   S1=%llu S2=%llu acks=%llu hash ops: sig=%llu "
              "chain-verify=%llu ack=%llu\n",
              static_cast<unsigned long long>(signer.s1_sent),
              static_cast<unsigned long long>(signer.s2_sent),
              static_cast<unsigned long long>(signer.acks_received),
              static_cast<unsigned long long>(signer.hashes.signature),
              static_cast<unsigned long long>(signer.hashes.chain_verify),
              static_cast<unsigned long long>(signer.hashes.ack));
  const auto& verifier = path.responder().verifier()->stats();
  std::printf("verifier: delivered=%llu A1=%llu A2=%llu\n",
              static_cast<unsigned long long>(verifier.messages_delivered),
              static_cast<unsigned long long>(verifier.a1_sent),
              static_cast<unsigned long long>(verifier.a2_sent));
  for (std::size_t i = 0; i < path.relay_count(); ++i) {
    const auto& r = path.relay(i).stats();
    std::printf("relay %zu:  forwarded=%llu extracted=%llu dropped=%llu\n", i,
                static_cast<unsigned long long>(r.forwarded),
                static_cast<unsigned long long>(r.messages_extracted),
                static_cast<unsigned long long>(r.dropped_invalid +
                                                r.dropped_unsolicited));
  }
  return 0;
}
