// Attack walkthrough: what ALPHA's hop-by-hop verification buys (§3.5).
//
// Three attacks against a four-hop protected path, with per-role counters:
//   1. outsider S2 flood        -> dies at the first relay
//   2. outsider S1 flood        -> forwarded but never answered, and the
//                                  flooding sender is identifiable
//   3. insider tampering relay  -> caught by the next honest relay
//
//   $ ./attack_demo
#include <cstdio>

#include "core/attackers.hpp"
#include "core/path.hpp"

using namespace alpha;

namespace {

void banner(const char* title) { std::printf("\n-- %s --\n", title); }

void s2_flood() {
  banner("attack 1: unsolicited data flood (forged S2 packets)");
  net::Simulator sim;
  net::Network network{sim, 1};
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1);

  core::ProtectedPath path{network, {0, 1, 2, 3}, core::Config{}, 1, 10};
  path.start();
  sim.run_until(net::kSecond);

  network.add_node(50);
  network.add_link(50, 1);
  core::launch_s2_flood(network, 50, 1, 1, /*count=*/100, /*payload_size=*/900,
                        net::kMillisecond, 4);
  sim.run_until(3 * net::kSecond);

  std::printf("forged frames dropped at first relay: %llu/100\n",
              static_cast<unsigned long long>(
                  path.relay(0).stats().dropped_unsolicited));
  std::printf("forged bytes that crossed the second hop: 0 (link carried "
              "%llu frames, all protocol traffic)\n",
              static_cast<unsigned long long>(
                  network.link_stats(1, 2).frames_sent));
}

void s1_flood() {
  banner("attack 2: path-reservation flood (forged S1 packets)");
  net::Simulator sim;
  net::Network network{sim, 2};
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1);

  core::ProtectedPath path{network, {0, 1, 2, 3}, core::Config{}, 1, 11};
  path.start();
  sim.run_until(net::kSecond);

  // Forged S1s reach the verifier (S1 is the one packet type relays forward
  // optimistically) but fail chain verification everywhere; no A1 is ever
  // granted, so they reserve nothing.
  crypto::HmacDrbg rng{9};
  network.add_node(51);
  network.add_link(51, 1);
  for (int i = 0; i < 100; ++i) {
    const auto s1 = core::forge_s1(1, static_cast<std::uint32_t>(1000 + i),
                                   20, rng);
    network.send(51, 1, s1.encode());
  }
  sim.run_until(sim.now() + 2 * net::kSecond);

  const auto& r0 = path.relay(0).stats();
  std::printf("forged S1s dropped by the first relay's chain check: %llu\n",
              static_cast<unsigned long long>(r0.dropped_invalid));
  std::printf("A1 responses provoked: %llu (the verifier granted nothing)\n",
              static_cast<unsigned long long>(
                  path.responder().verifier()->stats().a1_sent));
}

void insider_tamper() {
  banner("attack 3: insider relay modifies payloads in transit");
  net::Simulator sim;
  net::Network network{sim, 3};
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1);

  core::ProtectedPath path{network, {0, 1, 2, 3}, core::Config{}, 1, 12};
  // Replace relay r1 (node 1) with a tampering forwarder.
  network.set_handler(1, [&](net::NodeId from, crypto::ByteView frame) {
    const net::NodeId next = from == 0 ? 2 : 0;
    network.send(1, next, core::tamper_s2_payload(frame));
  });
  path.start();
  sim.run_until(net::kSecond);

  path.initiator().submit(crypto::Bytes(100, 0x42), sim.now());
  sim.run_until(2 * net::kSecond);

  std::printf("payloads accepted by the verifier: %zu (expected 0)\n",
              path.delivered_to_responder().size());
  std::printf("tampered S2 dropped by the next honest relay: %llu\n",
              static_cast<unsigned long long>(
                  path.relay(1).stats().dropped_invalid));
  std::printf("=> with hop-by-hop symmetric keys this modification would be "
              "undetectable (see baselines/hopwise)\n");
}

}  // namespace

int main() {
  std::printf("== ALPHA attack mitigation demo ==\n");
  s2_flood();
  s1_flood();
  insider_tamper();
  return 0;
}
