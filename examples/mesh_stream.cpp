// Wireless-mesh bulk transfer (the paper's §4.1.2 scenario).
//
// A five-hop 802.11-like path streams 1 MiB of data under ALPHA-C and
// ALPHA-M and reports goodput, per-relay verification counts, and what
// happens when an attacker injects forged data mid-path: every forgery dies
// at the first honest relay, costing the rest of the path nothing.
//
//   $ ./mesh_stream
#include <cstdio>

#include "core/attackers.hpp"
#include "core/path.hpp"

using namespace alpha;

namespace {

void run_mode(wire::Mode mode, const char* name) {
  net::Simulator sim;
  net::Network network{sim, 7};

  const std::size_t hops = 5;
  for (net::NodeId id = 0; id <= hops; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 2 * net::kMillisecond;
  link.jitter = 1 * net::kMillisecond;
  link.bandwidth_bps = 54'000'000;  // 802.11g
  link.mtu = 1500;
  std::vector<net::NodeId> nodes;
  for (net::NodeId id = 0; id <= hops; ++id) nodes.push_back(id);
  for (net::NodeId id = 0; id < hops; ++id) network.add_link(id, id + 1, link);

  core::Config config;
  config.mode = mode;
  config.batch_size = 16;
  config.chain_length = 4096;

  core::ProtectedPath path{network, nodes, config, 1, 99};
  path.start(600 * net::kSecond);
  sim.run_until(net::kSecond);

  const std::size_t kChunk = 1200;
  const std::size_t kChunks = 875;  // ~1 MiB
  const net::SimTime t0 = sim.now();
  for (std::size_t i = 0; i < kChunks; ++i) {
    path.initiator().submit(crypto::Bytes(kChunk, static_cast<std::uint8_t>(i)),
                            sim.now());
  }
  // Step forward until the stream drains (or a generous deadline passes).
  while (path.delivered_to_responder().size() < kChunks &&
         sim.now() < t0 + 500 * net::kSecond) {
    sim.run_until(sim.now() + 100 * net::kMillisecond);
  }

  const std::size_t delivered = path.delivered_to_responder().size();
  const double elapsed_s =
      static_cast<double>(sim.now() - t0) / net::kSecond;
  std::printf("%-10s delivered %zu/%zu chunks, goodput %.2f Mbit/s\n", name,
              delivered, kChunks,
              static_cast<double>(delivered * kChunk * 8) /
                  (elapsed_s * 1e6));
  for (std::size_t i = 0; i < path.relay_count(); ++i) {
    const auto& r = path.relay(i).stats();
    std::printf("  relay %zu: forwarded=%llu verified-payloads=%llu "
                "buffered-bytes=%zu\n",
                i, static_cast<unsigned long long>(r.forwarded),
                static_cast<unsigned long long>(r.messages_extracted),
                path.relay(i).buffered_bytes());
  }
  std::uint64_t frames = 0, fires = 0;
  for (std::size_t i = 0; i < path.node_count(); ++i) {
    const auto snap = path.node(i).snapshot();
    frames += snap.frames_in;
    fires += snap.timer_fires;
  }
  std::printf("  runtime: %llu frames demuxed, %llu timer fires across %zu "
              "nodes\n",
              static_cast<unsigned long long>(frames),
              static_cast<unsigned long long>(fires), path.node_count());
}

void run_attack() {
  std::printf("\n-- forged-data injection against the stream --\n");
  net::Simulator sim;
  net::Network network{sim, 11};
  for (net::NodeId id = 0; id <= 4; ++id) network.add_node(id);
  for (net::NodeId id = 0; id < 4; ++id) network.add_link(id, id + 1);

  core::Config config;
  config.mode = wire::Mode::kCumulative;
  config.batch_size = 8;
  core::ProtectedPath path{network, {0, 1, 2, 3, 4}, config, 1, 5};
  path.start();
  sim.run_until(net::kSecond);

  // Attacker joins next to relay 2 (node 2) and floods forged S2 frames.
  network.add_node(66);
  network.add_link(66, 2);
  core::launch_s2_flood(network, 66, 2, /*assoc_id=*/1, /*count=*/200,
                        /*payload_size=*/1000, /*interval=*/net::kMillisecond,
                        /*seed=*/3);
  for (int i = 0; i < 40; ++i) {
    path.initiator().submit(crypto::Bytes(500, 0xaa), sim.now());
  }
  sim.run_until(5 * net::kSecond);

  std::printf("legit chunks delivered: %zu/40\n",
              path.delivered_to_responder().size());
  const auto& victim = path.relay(1).stats();  // node 2
  std::printf("relay at injection point: dropped %llu unsolicited frames\n",
              static_cast<unsigned long long>(victim.dropped_unsolicited));
  std::printf("frames on the link beyond the injection point: %llu "
              "(all of them legitimate)\n",
              static_cast<unsigned long long>(
                  network.link_stats(2, 3).frames_sent));
}

}  // namespace

int main() {
  std::printf("== ALPHA in a wireless mesh (5 hops, 802.11g-like links) ==\n");
  run_mode(wire::Mode::kCumulative, "ALPHA-C");
  run_mode(wire::Mode::kMerkle, "ALPHA-M");
  run_attack();
  return 0;
}
