// Wireless-sensor-network signaling (the paper's §4.1.3 scenario).
//
// Sensor-class profile: AES-MMO hashes (16-byte digests, what the CC2430's
// AES hardware computes), 100-byte packet payloads, an IEEE 802.15.4-like
// 250 kbit/s link, ALPHA-C with 5 pre-signatures per S1, and reliable
// delivery with pre-acks -- a sensor reporting readings to an actuator node
// through two relays, with every relay authenticating every packet.
//
//   $ ./sensor_signaling
#include <cstdio>

#include "core/path.hpp"
#include "platform/estimators.hpp"

using namespace alpha;

int main() {
  std::printf("== ALPHA in a sensor network (AES-MMO, 802.15.4-like) ==\n");

  net::Simulator sim;
  net::Network network{sim, 3};
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 4 * net::kMillisecond;
  link.jitter = 2 * net::kMillisecond;
  link.bandwidth_bps = 250'000;  // IEEE 802.15.4
  link.mtu = 127;                // 802.15.4 frame limit
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1, link);

  core::Config config;
  config.algo = crypto::HashAlgo::kMmo128;  // 16-byte digests
  config.mac_kind = crypto::MacKind::kPrefix;  // single-pass MAC, hw-friendly
  config.mode = wire::Mode::kCumulative;
  // The paper's analytical example uses 5 pre-signatures per S1; a reliable
  // A1 carrying 5 pre-ack pairs would not fit a 127 B 802.15.4 frame, so
  // the MTU hint lets the engines clamp batches to what the frame carries.
  config.batch_size = 5;
  config.mtu_hint = 127;
  config.reliable = true;
  config.chain_length = 512;
  config.rto_us = 500 * net::kMillisecond;

  core::ProtectedPath path{network, {0, 1, 2, 3}, config, 1, 77};
  path.start(600 * net::kSecond);
  sim.run_until(2 * net::kSecond);
  std::printf("bootstrap: %s\n",
              path.initiator().established() ? "established" : "FAILED");

  // 25 sensor readings of ~40 bytes (fits the 127 B MTU with ALPHA
  // overhead: 16 B chain element + 16 B MAC + framing).
  for (int i = 0; i < 25; ++i) {
    char reading[40];
    std::snprintf(reading, sizeof(reading), "temp=%2d.%dC node=7 t=%04d",
                  20 + i % 5, i % 10, i);
    path.initiator().submit(
        crypto::Bytes(reading, reading + std::strlen(reading)), sim.now());
  }
  sim.run_until(sim.now() + 120 * net::kSecond);

  std::size_t acked = 0;
  for (const auto& [cookie, status] : path.initiator_deliveries()) {
    if (status == core::DeliveryStatus::kAcked) ++acked;
  }
  std::printf("readings delivered: %zu/25, acknowledged: %zu/25\n",
              path.delivered_to_responder().size(), acked);
  for (std::size_t i = 0; i < path.relay_count(); ++i) {
    std::printf("relay %zu verified %llu payloads, buffered %zu bytes\n", i,
                static_cast<unsigned long long>(
                    path.relay(i).stats().messages_extracted),
                path.relay(i).buffered_bytes());
  }

  // Side-by-side: what the paper's CC2430 cost model predicts for this
  // configuration (§4.1.3).
  const auto est = platform::estimate_wsn_alpha_c(platform::devices::cc2430(),
                                                  100, 5, /*preacks=*/true);
  std::printf("\nCC2430 analytical estimate for this profile: %.0f pkt/s, "
              "%.1f kbit/s verified goodput (paper: 334 pkt/s, 156.56 kbit/s)\n",
              est.packets_per_s, est.goodput_kbps);
  return 0;
}
