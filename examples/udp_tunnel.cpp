// ALPHA over real UDP sockets, on the node runtime.
//
// The same AlphaNode that runs in the simulator, bound to POSIX datagram
// sockets on the loopback interface via UdpTransport. The hand-rolled
// socket pump is gone: poll() drains the socket, fires the timer wheel,
// and dispatches frames by association id. Node B pre-provisions
// nothing -- it accepts the inbound handshake on demand.
//
// By default both endpoints run in this process. With --role a / --role b
// each endpoint runs in its own process -- the pairing for the flight
// recorder's cross-process merge:
//
//   $ ./udp_tunnel --role b --port 47001 --flight-dir /tmp/fl-b &
//   $ ./udp_tunnel --role a --peer-port 47001 --flight-dir /tmp/fl-a
//   $ alpha_inspect --merge /tmp/fl-a,/tmp/fl-b
//
// With --metrics-port N (0 = ephemeral) the process also serves live
// /metrics and /healthz on 127.0.0.1 while the tunnel runs, and
// --serve-seconds S keeps the process (and the endpoint) alive after the
// exchange so a scraper can observe the final state.
//
//   $ ./udp_tunnel
//   $ ./udp_tunnel --metrics-port 0 --serve-seconds 5
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/node.hpp"
#include "trace/build_info.hpp"
#include "trace/flight.hpp"
#include "trace/health.hpp"
#include "trace/metrics.hpp"
#include "trace/spans.hpp"
#include "trace/telemetry.hpp"

using namespace alpha;

int main(int argc, char** argv) {
  int metrics_port = -1;  // -1 = no telemetry endpoint (default)
  int serve_seconds = 0;
  int bind_port = 0;      // 0 = ephemeral
  int peer_port = 0;      // role a: where node B listens
  std::string role = "ab";
  std::string flight_dir;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-port") == 0) {
      metrics_port = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--serve-seconds") == 0) {
      serve_seconds = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--port") == 0) {
      bind_port = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--peer-port") == 0) {
      peer_port = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--role") == 0) {
      role = argv[i + 1];
    } else if (std::strcmp(argv[i], "--flight-dir") == 0) {
      flight_dir = argv[i + 1];
    }
  }
  const bool run_a = role == "ab" || role == "a";
  const bool run_b = role == "ab" || role == "b";
  if (!run_a && !run_b) {
    std::fprintf(stderr, "--role must be a, b, or ab\n");
    return 2;
  }
  if (role == "a" && peer_port <= 0) {
    std::fprintf(stderr, "--role a needs --peer-port (node B's port)\n");
    return 2;
  }

  std::printf("== ALPHA over UDP (127.0.0.1, role %s) ==\n", role.c_str());

  core::Config config;
  config.reliable = true;
  config.rto_us = 100'000;

  // Origins 1 (A) and 2 (B) keep the two endpoints distinguishable in
  // traces even when both run in one process -- and give the merged
  // cross-process timeline stable node identities.
  std::unique_ptr<core::AlphaNode> node_a, node_b;
  bool done = false;
  std::vector<crypto::Bytes> at_b;
  if (run_a) {
    core::AlphaNode::Options a_opts;
    a_opts.config = config;
    a_opts.seed = 1;
    a_opts.trace_origin = 1;
    core::AlphaNode::Callbacks a_cbs;
    a_cbs.on_delivery = [&](std::uint32_t, std::uint64_t,
                            core::DeliveryStatus status) {
      if (status == core::DeliveryStatus::kAcked) done = true;
    };
    node_a = std::make_unique<core::AlphaNode>(
        std::make_unique<net::UdpTransport>(
            role == "a" ? static_cast<std::uint16_t>(bind_port) : 0),
        a_opts, a_cbs);
  }
  if (run_b) {
    core::AlphaNode::Options b_opts;
    b_opts.config = config;
    b_opts.seed = 2;
    b_opts.trace_origin = 2;
    b_opts.accept_inbound = true;
    core::AlphaNode::Callbacks b_cbs;
    b_cbs.on_message = [&](std::uint32_t, crypto::ByteView payload) {
      at_b.emplace_back(payload.begin(), payload.end());
    };
    node_b = std::make_unique<core::AlphaNode>(
        std::make_unique<net::UdpTransport>(
            static_cast<std::uint16_t>(bind_port)),
        b_opts, b_cbs);
  }

  const auto port = [](core::AlphaNode& n) {
    return static_cast<net::UdpTransport&>(n.transport()).port();
  };
  if (node_a) std::printf("endpoint A on port %u\n", port(*node_a));
  if (node_b) std::printf("endpoint B on port %u\n", port(*node_b));
  std::fflush(stdout);

  // Optional live telemetry: trace ring -> span builder -> registry,
  // health monitor over the local nodes' snapshots, HTTP endpoint polled
  // from the same loop that pumps the sockets (no extra thread).
  std::unique_ptr<trace::Ring> ring;
  metrics::Registry registry;
  trace::export_build_info(registry);
  trace::SpanBuilder spans{&registry};
  trace::HealthMonitor health;
  std::unique_ptr<trace::TelemetryServer> telemetry;
  const auto start_time = std::chrono::steady_clock::now();
  const auto now_us = [&] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_time)
            .count());
  };
  const auto refresh = [&] {
    if (!ring) return;
    spans.ingest_new(*ring);
    std::uint64_t frames_in = 0, frames_out = 0;
    std::vector<trace::AssocHealthSample> samples;
    const auto fold = [&](core::AlphaNode& node, bool sample_assocs) {
      const auto snap = node.snapshot(true);
      frames_in += snap.frames_in;
      frames_out += snap.frames_out;
      if (&node == node_b.get()) {
        registry.counter("alpha_messages_delivered") =
            snap.messages_delivered;
      }
      if (!sample_assocs) return;
      for (const auto& a : snap.assocs) {
        trace::AssocHealthSample s;
        s.assoc_id = a.assoc_id;
        s.established = a.established;
        s.failed = a.failed;
        s.round_active = a.round_active;
        s.round_seq = a.round_seq;
        s.round_retries = a.round_retries;
        s.rekeys_started = a.rekeys_started;
        samples.push_back(s);
      }
    };
    if (node_a) fold(*node_a, /*sample_assocs=*/true);
    if (node_b) fold(*node_b, /*sample_assocs=*/node_a == nullptr);
    registry.counter("alpha_frames_in") = frames_in;
    registry.counter("alpha_frames_out") = frames_out;
    health.observe(samples, now_us(), ring->dropped());
  };
  if (metrics_port >= 0 || !flight_dir.empty()) {
    ring = std::make_unique<trace::Ring>(1 << 14);
    trace::install(ring.get());
  }
  if (metrics_port >= 0) {
    trace::TelemetryServer::Options t_opts;
    t_opts.port = static_cast<std::uint16_t>(metrics_port);
    telemetry = std::make_unique<trace::TelemetryServer>(
        t_opts,
        [&] {
          refresh();
          return registry.render_prometheus();
        },
        [&] {
          refresh();
          return std::make_pair(health.http_status(), health.healthz_json());
        });
    if (!telemetry->ok()) {
      std::fprintf(stderr, "cannot bind metrics port %d\n", metrics_port);
      return 1;
    }
    std::fprintf(stderr, "telemetry: serving on 127.0.0.1:%u\n",
                 telemetry->port());
    std::fflush(stderr);
  }

  // Flight recorder: crash-safe spill of the event ring, one directory per
  // process. clock_origin is the transport's own clock so the recording's
  // wall epoch anchors event timestamps for the cross-process merge.
  std::unique_ptr<trace::FlightRecorder> flight;
  if (!flight_dir.empty()) {
    net::UdpTransport& clock = static_cast<net::UdpTransport&>(
        node_a ? node_a->transport() : node_b->transport());
    trace::FlightOptions fopts;
    fopts.dir = flight_dir;
    fopts.node_id = role == "b" ? 2 : 1;
    fopts.clock_origin_us = clock.now_us();
    fopts.config_digest =
        trace::fnv1a64("udp_tunnel reliable rto=100000 role=" + role);
    fopts.metrics_snapshot = [&] {
      refresh();
      return registry.render_prometheus();
    };
    flight = std::make_unique<trace::FlightRecorder>(fopts, ring.get());
    if (!flight->ok()) {
      std::fprintf(stderr, "%s\n", flight->error().c_str());
      return 1;
    }
    trace::install_crash_handlers();
  }

  if (node_a) {
    const std::uint16_t peer =
        node_b ? port(*node_b) : static_cast<std::uint16_t>(peer_port);
    node_a->add_initiator(/*assoc_id=*/1, /*peer=*/peer, config);
    node_a->start(1);
    const auto payload = crypto::as_bytes("datagram over real sockets");
    node_a->submit(1, crypto::Bytes(payload.begin(), payload.end()));
  }

  // Role b has no completion signal of its own: it pumps until a message
  // arrives (plus a grace period so the final A2 exchange settles), or
  // until the deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  auto settle_until = deadline;
  while (std::chrono::steady_clock::now() < deadline) {
    if (node_a) node_a->poll(5);
    if (node_b) node_b->poll(5);
    if (telemetry) telemetry->poll(0);
    if (flight) flight->drain();
    if (run_a && done) break;
    if (!run_a && !at_b.empty()) {
      if (settle_until == deadline) {
        settle_until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(1500);
      } else if (std::chrono::steady_clock::now() >= settle_until) {
        break;
      }
    }
  }

  if (node_a) {
    std::printf("established: A %s\n",
                node_a->established_count() == 1 ? "yes" : "no");
  }
  if (node_b) {
    std::printf("established: B %s\n",
                node_b->established_count() == 1 ? "yes" : "no");
    for (const auto& m : at_b) {
      std::printf("B received: \"%.*s\" (authenticated%s)\n",
                  static_cast<int>(m.size()),
                  reinterpret_cast<const char*>(m.data()),
                  run_a ? (done ? ", acknowledged: yes" : ", acknowledged: no")
                        : "");
    }
    const auto snap = node_b->snapshot();
    std::printf("B runtime: frames in=%llu accepted-handshakes=%llu "
                "demux-misses=%llu\n",
                static_cast<unsigned long long>(snap.frames_in),
                static_cast<unsigned long long>(snap.accepted_handshakes),
                static_cast<unsigned long long>(snap.demux_misses));
  }
  if (telemetry && serve_seconds > 0) {
    refresh();
    std::printf("serving telemetry for %ds...\n", serve_seconds);
    const auto serve_until = std::chrono::steady_clock::now() +
                             std::chrono::seconds(serve_seconds);
    while (std::chrono::steady_clock::now() < serve_until) {
      telemetry->poll(100);
    }
  }
  if (flight) {
    flight->finalize();
    std::fprintf(stderr, "flight: %llu events -> %s\n",
                 static_cast<unsigned long long>(flight->events_written()),
                 flight_dir.c_str());
  }
  trace::install(nullptr);
  if (run_a && run_b) return at_b.size() == 1 && done ? 0 : 1;
  if (run_a) return done ? 0 : 1;
  return at_b.empty() ? 1 : 0;
}
