// ALPHA over real UDP sockets, on the node runtime.
//
// The same AlphaNode that runs in the simulator, bound to two POSIX
// datagram sockets on the loopback interface via UdpTransport. The hand-
// rolled socket pump is gone: poll() drains the socket, fires the timer
// wheel, and dispatches frames by association id. Node B pre-provisions
// nothing -- it accepts the inbound handshake on demand.
//
// With --metrics-port N (0 = ephemeral) endpoint A also serves live
// /metrics and /healthz on 127.0.0.1 while the tunnel runs, and
// --serve-seconds S keeps the process (and the endpoint) alive after the
// exchange so a scraper can observe the final state.
//
//   $ ./udp_tunnel
//   $ ./udp_tunnel --metrics-port 0 --serve-seconds 5
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/node.hpp"
#include "trace/health.hpp"
#include "trace/metrics.hpp"
#include "trace/spans.hpp"
#include "trace/telemetry.hpp"

using namespace alpha;

int main(int argc, char** argv) {
  int metrics_port = -1;  // -1 = no telemetry endpoint (default)
  int serve_seconds = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-port") == 0) {
      metrics_port = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--serve-seconds") == 0) {
      serve_seconds = std::atoi(argv[i + 1]);
    }
  }

  std::printf("== ALPHA over UDP (127.0.0.1) ==\n");

  core::Config config;
  config.reliable = true;
  config.rto_us = 100'000;

  core::AlphaNode::Options a_opts;
  a_opts.config = config;
  a_opts.seed = 1;
  bool done = false;
  core::AlphaNode::Callbacks a_cbs;
  a_cbs.on_delivery = [&](std::uint32_t, std::uint64_t,
                          core::DeliveryStatus status) {
    if (status == core::DeliveryStatus::kAcked) done = true;
  };
  core::AlphaNode node_a{std::make_unique<net::UdpTransport>(), a_opts,
                         a_cbs};

  core::AlphaNode::Options b_opts;
  b_opts.config = config;
  b_opts.seed = 2;
  b_opts.accept_inbound = true;
  std::vector<crypto::Bytes> at_b;
  core::AlphaNode::Callbacks b_cbs;
  b_cbs.on_message = [&](std::uint32_t, crypto::ByteView payload) {
    at_b.emplace_back(payload.begin(), payload.end());
  };
  core::AlphaNode node_b{std::make_unique<net::UdpTransport>(), b_opts,
                         b_cbs};

  const auto port = [](core::AlphaNode& n) {
    return static_cast<net::UdpTransport&>(n.transport()).port();
  };
  std::printf("endpoint A on port %u, endpoint B on port %u\n", port(node_a),
              port(node_b));

  // Optional live telemetry: trace ring -> span builder -> registry,
  // health monitor over both nodes' snapshots, HTTP endpoint polled from
  // the same loop that pumps the sockets (no extra thread).
  std::unique_ptr<trace::Ring> ring;
  metrics::Registry registry;
  trace::SpanBuilder spans{&registry};
  trace::HealthMonitor health;
  std::unique_ptr<trace::TelemetryServer> telemetry;
  const auto start_time = std::chrono::steady_clock::now();
  const auto now_us = [&] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_time)
            .count());
  };
  const auto refresh = [&] {
    if (!ring) return;
    spans.ingest_new(*ring);
    const auto snap_a = node_a.snapshot(true);
    const auto snap_b = node_b.snapshot(true);
    registry.counter("alpha_messages_delivered") = snap_b.messages_delivered;
    registry.counter("alpha_frames_in") = snap_a.frames_in + snap_b.frames_in;
    registry.counter("alpha_frames_out") =
        snap_a.frames_out + snap_b.frames_out;
    std::vector<trace::AssocHealthSample> samples;
    for (const auto& a : snap_a.assocs) {
      trace::AssocHealthSample s;
      s.assoc_id = a.assoc_id;
      s.established = a.established;
      s.failed = a.failed;
      s.round_active = a.round_active;
      s.round_seq = a.round_seq;
      s.round_retries = a.round_retries;
      s.rekeys_started = a.rekeys_started;
      samples.push_back(s);
    }
    health.observe(samples, now_us(), ring->dropped());
  };
  if (metrics_port >= 0) {
    ring = std::make_unique<trace::Ring>(1 << 14);
    trace::install(ring.get());
    trace::TelemetryServer::Options t_opts;
    t_opts.port = static_cast<std::uint16_t>(metrics_port);
    telemetry = std::make_unique<trace::TelemetryServer>(
        t_opts,
        [&] {
          refresh();
          return registry.render_prometheus();
        },
        [&] {
          refresh();
          return std::make_pair(health.http_status(), health.healthz_json());
        });
    if (!telemetry->ok()) {
      std::fprintf(stderr, "cannot bind metrics port %d\n", metrics_port);
      return 1;
    }
    std::fprintf(stderr, "telemetry: serving on 127.0.0.1:%u\n",
                 telemetry->port());
    std::fflush(stderr);
  }

  node_a.add_initiator(/*assoc_id=*/1, /*peer=*/port(node_b), config);
  node_a.start(1);
  const auto payload = crypto::as_bytes("datagram over real sockets");
  node_a.submit(1, crypto::Bytes(payload.begin(), payload.end()));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done && std::chrono::steady_clock::now() < deadline) {
    node_a.poll(5);
    node_b.poll(5);
    if (telemetry) telemetry->poll(0);
  }

  std::printf("established: %s / %s\n",
              node_a.established_count() == 1 ? "A yes" : "A no",
              node_b.established_count() == 1 ? "B yes" : "B no");
  for (const auto& m : at_b) {
    std::printf("B received: \"%.*s\" (authenticated, acknowledged: %s)\n",
                static_cast<int>(m.size()),
                reinterpret_cast<const char*>(m.data()),
                done ? "yes" : "no");
  }
  const auto snap = node_b.snapshot();
  std::printf("B runtime: frames in=%llu accepted-handshakes=%llu "
              "demux-misses=%llu\n",
              static_cast<unsigned long long>(snap.frames_in),
              static_cast<unsigned long long>(snap.accepted_handshakes),
              static_cast<unsigned long long>(snap.demux_misses));
  if (telemetry && serve_seconds > 0) {
    refresh();
    std::printf("serving telemetry for %ds...\n", serve_seconds);
    const auto serve_until = std::chrono::steady_clock::now() +
                             std::chrono::seconds(serve_seconds);
    while (std::chrono::steady_clock::now() < serve_until) {
      telemetry->poll(100);
    }
  }
  trace::install(nullptr);
  return at_b.size() == 1 && done ? 0 : 1;
}
