// ALPHA over real UDP sockets.
//
// The same protocol engines that run in the simulator, bound to two POSIX
// datagram sockets on the loopback interface. Demonstrates the transport-
// agnostic design: frames in, frames out, wall-clock time for
// retransmissions.
//
//   $ ./udp_tunnel
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/host.hpp"
#include "net/udp.hpp"

using namespace alpha;

namespace {
std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

int main() {
  std::printf("== ALPHA over UDP (127.0.0.1) ==\n");

  net::UdpEndpoint sock_a, sock_b;
  std::printf("endpoint A on port %u, endpoint B on port %u\n", sock_a.port(),
              sock_b.port());

  core::Config config;
  config.reliable = true;

  crypto::SystemRandom rng_a, rng_b;

  std::vector<crypto::Bytes> at_b;
  bool done = false;

  core::Host::Callbacks a_cb;
  a_cb.send = [&](crypto::Bytes frame) { sock_a.send_to(sock_b.port(), frame); };
  a_cb.on_delivery = [&](std::uint64_t, core::DeliveryStatus status) {
    if (status == core::DeliveryStatus::kAcked) done = true;
  };
  core::Host host_a{config, 1, /*initiator=*/true, rng_a, std::move(a_cb)};

  core::Host::Callbacks b_cb;
  b_cb.send = [&](crypto::Bytes frame) { sock_b.send_to(sock_a.port(), frame); };
  b_cb.on_message = [&](crypto::ByteView payload) {
    at_b.emplace_back(payload.begin(), payload.end());
  };
  core::Host host_b{config, 1, /*initiator=*/false, rng_b, std::move(b_cb)};

  host_a.start();
  const auto payload = crypto::as_bytes("datagram over real sockets");
  host_a.submit(crypto::Bytes(payload.begin(), payload.end()), now_us());

  // Single-threaded event loop over both sockets.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done && std::chrono::steady_clock::now() < deadline) {
    if (auto dg = sock_a.receive(5)) host_a.on_frame(dg->data, now_us());
    if (auto dg = sock_b.receive(5)) host_b.on_frame(dg->data, now_us());
    host_a.on_tick(now_us());
    host_b.on_tick(now_us());
  }

  std::printf("established: %s / %s\n",
              host_a.established() ? "A yes" : "A no",
              host_b.established() ? "B yes" : "B no");
  for (const auto& m : at_b) {
    std::printf("B received: \"%.*s\" (authenticated, acknowledged: %s)\n",
                static_cast<int>(m.size()),
                reinterpret_cast<const char*>(m.data()),
                done ? "yes" : "no");
  }
  return at_b.size() == 1 && done ? 0 : 1;
}
