// ALPHA over real UDP sockets, on the node runtime.
//
// The same AlphaNode that runs in the simulator, bound to two POSIX
// datagram sockets on the loopback interface via UdpTransport. The hand-
// rolled socket pump is gone: poll() drains the socket, fires the timer
// wheel, and dispatches frames by association id. Node B pre-provisions
// nothing -- it accepts the inbound handshake on demand.
//
//   $ ./udp_tunnel
#include <chrono>
#include <cstdio>

#include "core/node.hpp"

using namespace alpha;

int main() {
  std::printf("== ALPHA over UDP (127.0.0.1) ==\n");

  core::Config config;
  config.reliable = true;
  config.rto_us = 100'000;

  core::AlphaNode::Options a_opts;
  a_opts.config = config;
  a_opts.seed = 1;
  bool done = false;
  core::AlphaNode::Callbacks a_cbs;
  a_cbs.on_delivery = [&](std::uint32_t, std::uint64_t,
                          core::DeliveryStatus status) {
    if (status == core::DeliveryStatus::kAcked) done = true;
  };
  core::AlphaNode node_a{std::make_unique<net::UdpTransport>(), a_opts,
                         a_cbs};

  core::AlphaNode::Options b_opts;
  b_opts.config = config;
  b_opts.seed = 2;
  b_opts.accept_inbound = true;
  std::vector<crypto::Bytes> at_b;
  core::AlphaNode::Callbacks b_cbs;
  b_cbs.on_message = [&](std::uint32_t, crypto::ByteView payload) {
    at_b.emplace_back(payload.begin(), payload.end());
  };
  core::AlphaNode node_b{std::make_unique<net::UdpTransport>(), b_opts,
                         b_cbs};

  const auto port = [](core::AlphaNode& n) {
    return static_cast<net::UdpTransport&>(n.transport()).port();
  };
  std::printf("endpoint A on port %u, endpoint B on port %u\n", port(node_a),
              port(node_b));

  node_a.add_initiator(/*assoc_id=*/1, /*peer=*/port(node_b), config);
  node_a.start(1);
  const auto payload = crypto::as_bytes("datagram over real sockets");
  node_a.submit(1, crypto::Bytes(payload.begin(), payload.end()));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done && std::chrono::steady_clock::now() < deadline) {
    node_a.poll(5);
    node_b.poll(5);
  }

  std::printf("established: %s / %s\n",
              node_a.established_count() == 1 ? "A yes" : "A no",
              node_b.established_count() == 1 ? "B yes" : "B no");
  for (const auto& m : at_b) {
    std::printf("B received: \"%.*s\" (authenticated, acknowledged: %s)\n",
                static_cast<int>(m.size()),
                reinterpret_cast<const char*>(m.data()),
                done ? "yes" : "no");
  }
  const auto snap = node_b.snapshot();
  std::printf("B runtime: frames in=%llu accepted-handshakes=%llu "
              "demux-misses=%llu\n",
              static_cast<unsigned long long>(snap.frames_in),
              static_cast<unsigned long long>(snap.accepted_handshakes),
              static_cast<unsigned long long>(snap.demux_misses));
  return at_b.size() == 1 && done ? 0 : 1;
}
