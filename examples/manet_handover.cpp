// MANET route handover (the §1 mobile multi-hop motivation).
//
// A mobile node talks to a gateway through relay r1. The route then breaks
// (mobility) and traffic must flow through r2 -- a relay that has never seen
// this association's handshake and therefore drops everything as
// unsolicited (which is exactly what hop-by-hop authentication is for).
// force_rekey() re-bootstraps the association over the new path: fresh
// chains, fresh anchors, and r2 starts verifying. No message is lost.
//
//   $ ./manet_handover
#include <cstdio>

#include "core/host.hpp"
#include "core/relay.hpp"
#include "net/network.hpp"

using namespace alpha;

namespace {
crypto::Bytes msg(const std::string& s) {
  return crypto::Bytes(s.begin(), s.end());
}
}  // namespace

int main() {
  std::printf("== MANET handover: route change + rekey ==\n");

  net::Simulator sim;
  net::Network network{sim, 21};
  // mobile(0) -- r1(1) -- gw(3)   and the alternative  mobile -- r2(2) -- gw
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  network.add_link(0, 1);
  network.add_link(0, 2);
  network.add_link(1, 3);
  network.add_link(2, 3);

  bool via_r2 = false;  // current route selector

  core::Config config;
  config.reliable = true;
  config.rto_us = 100 * net::kMillisecond;

  // Relays.
  auto make_relay = [&](net::NodeId self, std::optional<core::RelayEngine>& r) {
    core::RelayEngine::Callbacks cb;
    cb.forward = [&network, self](core::Direction dir,
                                  crypto::ByteView frame) {
      network.send(self, dir == core::Direction::kForward ? 3 : 0,
                   crypto::Bytes(frame.begin(), frame.end()));
    };
    r.emplace(config, core::RelayEngine::Options{}, std::move(cb));
    network.set_handler(self, [&r](net::NodeId from, crypto::ByteView f) {
      r->on_frame(from == 0 ? core::Direction::kForward
                            : core::Direction::kReverse,
                  f);
    });
  };
  std::optional<core::RelayEngine> r1, r2;
  make_relay(1, r1);
  make_relay(2, r2);

  // Hosts.
  crypto::HmacDrbg rng_a{1}, rng_b{2};
  std::vector<crypto::Bytes> at_gw;
  int acked = 0;
  core::Host::Callbacks a_cb;
  a_cb.send = [&](crypto::Bytes frame) {
    network.send(0, via_r2 ? 2 : 1, std::move(frame));
  };
  a_cb.on_delivery = [&](std::uint64_t, core::DeliveryStatus st) {
    if (st == core::DeliveryStatus::kAcked) ++acked;
  };
  core::Host mobile{config, 1, true, rng_a, std::move(a_cb)};
  core::Host::Callbacks b_cb;
  b_cb.send = [&](crypto::Bytes frame) {
    network.send(3, via_r2 ? 2 : 1, std::move(frame));
  };
  b_cb.on_message = [&](crypto::ByteView payload) {
    at_gw.emplace_back(payload.begin(), payload.end());
  };
  core::Host gateway{config, 1, false, rng_b, std::move(b_cb)};
  network.set_handler(0, [&](net::NodeId, crypto::ByteView f) {
    mobile.on_frame(f, sim.now());
  });
  network.set_handler(3, [&](net::NodeId, crypto::ByteView f) {
    gateway.on_frame(f, sim.now());
  });

  // Retransmission ticks (refers to the named function, no self-capture).
  std::function<void()> tick = [&] {
    mobile.on_tick(sim.now());
    gateway.on_tick(sim.now());
    if (sim.now() < 120 * net::kSecond) sim.schedule_in(50'000, tick);
  };
  sim.schedule_in(50'000, tick);

  mobile.start();
  sim.run_until(net::kSecond);
  std::printf("bootstrap via r1: %s\n",
              mobile.established() ? "established" : "FAILED");

  mobile.submit(msg("location update #1 (via r1)"), sim.now());
  sim.run_until(2 * net::kSecond);
  std::printf("delivered via r1: %zu, r1 verified %llu payloads\n",
              at_gw.size(),
              static_cast<unsigned long long>(r1->stats().messages_extracted));

  std::printf("\n-- route breaks; traffic now flows via r2 --\n");
  via_r2 = true;
  mobile.force_rekey(sim.now());  // the mobility hook
  sim.run_until(3 * net::kSecond);
  std::printf("rekey over the new path: %s\n",
              mobile.rekey_pending() ? "still pending" : "complete");

  mobile.submit(msg("location update #2 (via r2)"), sim.now());
  sim.run_until(5 * net::kSecond);

  std::printf("delivered total: %zu/2, acked %d/2\n", at_gw.size(), acked);
  std::printf("r2 verified %llu payloads after the handover "
              "(and had dropped %llu frames before it)\n",
              static_cast<unsigned long long>(r2->stats().messages_extracted),
              static_cast<unsigned long long>(
                  r2->stats().dropped_unsolicited));
  return at_gw.size() == 2 && acked == 2 ? 0 : 1;
}
