// Relay fast-path throughput: forwarded-and-verified packets per second.
//
// Three sweeps, one JSON artifact (BENCH_relay_mpps.json):
//
//  * mpps sweep (single core) -- pre-records authentic ALPHA-C traffic
//    (engine-generated S1/A1/S2 rounds, round-robin interleaved across the
//    associations to defeat cache locality), then replays the identical
//    schedule through the scalar RelayEngine and through RelayPipeline at
//    several flush sizes, timing verify-and-forward wall clock. Generation
//    is outside the timed window; the replay is single-threaded, so the
//    rates are per core. The batched/scalar margin is recorded per row.
//
//  * worker sweep -- a ShardedNode relay between two end nodes on real UDP
//    loopback, relay bindings sharded by assoc id across 1/2/4 workers.
//    Measures end-to-end delivery and the relay's forwarding rate.
//    hardware_concurrency is recorded so the CI gate
//    (scripts/check_perf_smoke.py --relay) only enforces scaling where the
//    cores exist to scale onto.
//
//  * table5_modern -- the paper's Table 5 sizes ALPHA's feasibility by
//    SHA-1 delay on 2008 router hardware. This section re-anchors it:
//    measured host SHA-1 cost, the measured relay cost per verified packet
//    on this host, and the per-device estimates at ~3 short-input hashes
//    per forwarded S2 (1 chain step + keyed MAC).
//
//   $ bench_relay_mpps                        # full sweep
//   $ bench_relay_mpps --target-frames 20000  # calibration run
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/relay_pipeline.hpp"
#include "core/sharded_node.hpp"
#include "crypto/sha1.hpp"
#include "net/transport.hpp"
#include "platform/devices.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

// --------------------------------------------------------------- mpps sweep

constexpr std::size_t kRoundMsgs = 16;  // S2s per S1 (ALPHA-C batch)

core::Config sweep_config(std::size_t rounds) {
  core::Config config;
  config.mode = wire::Mode::kCumulative;
  config.batch_size = kRoundMsgs;
  config.chain_length = 2 * rounds + 4;
  return config;
}

/// One association's pre-generated traffic: handshakes plus `rounds`
/// engine-authentic rounds of S1 / A1 / kRoundMsgs S2 frames.
struct RoundFrames {
  crypto::Bytes s1;
  crypto::Bytes a1;
  std::vector<crypto::Bytes> s2s;
};

struct AssocTraffic {
  crypto::Bytes hs1;
  crypto::Bytes hs2;
  std::vector<RoundFrames> rounds;
};

AssocTraffic generate_assoc(const core::Config& config, std::uint32_t assoc,
                            std::size_t rounds, std::uint64_t seed) {
  crypto::HmacDrbg rng{seed};
  auto sig = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng,
      config.chain_length);
  auto ack = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng,
      config.chain_length);

  AssocTraffic traffic;
  wire::HandshakePacket hs1;
  hs1.hdr = {assoc, 0};
  hs1.algo = config.algo;
  hs1.chain_length = static_cast<std::uint32_t>(config.chain_length);
  hs1.sig_anchor = sig.anchor();
  hs1.sig_anchor_index = static_cast<std::uint32_t>(sig.length());
  hs1.ack_anchor = ack.anchor();
  hs1.ack_anchor_index = static_cast<std::uint32_t>(ack.length());
  traffic.hs1 = hs1.encode();
  wire::HandshakePacket hs2 = hs1;
  hs2.is_response = true;
  traffic.hs2 = hs2.encode();

  std::vector<crypto::Bytes> emitted;
  core::SignerEngine::Callbacks scb;
  scb.send = [&](crypto::Bytes f) { emitted.push_back(std::move(f)); };
  core::SignerEngine signer{config,      assoc, sig, ack.anchor(),
                            ack.length(), std::move(scb)};
  core::VerifierEngine::Callbacks vcb;
  vcb.send = [&](crypto::Bytes f) { emitted.push_back(std::move(f)); };
  core::VerifierEngine verifier{config,       assoc,           ack,
                                sig.anchor(), sig.length(),    std::move(vcb),
                                rng};

  traffic.rounds.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    RoundFrames round;
    for (std::size_t m = 0; m < kRoundMsgs; ++m) {
      signer.submit(crypto::Bytes(256, static_cast<std::uint8_t>(m)), 0);
    }
    // A full ALPHA-C batch emits exactly one S1; answering it with the
    // verifier's A1 releases the round's S2s.
    if (emitted.size() != 1) {
      std::fprintf(stderr, "generation: expected 1 S1, got %zu frames\n",
                   emitted.size());
      std::exit(1);
    }
    round.s1 = std::move(emitted[0]);
    emitted.clear();
    const auto s1 = wire::decode(round.s1);
    verifier.on_s1(std::get<wire::S1Packet>(*s1));
    round.a1 = std::move(emitted.at(0));
    emitted.clear();
    const auto a1 = wire::decode(round.a1);
    signer.on_a1(std::get<wire::A1Packet>(*a1), 0);
    if (emitted.size() != kRoundMsgs) {
      std::fprintf(stderr, "generation: expected %zu S2s, got %zu\n",
                   kRoundMsgs, emitted.size());
      std::exit(1);
    }
    round.s2s = std::move(emitted);
    emitted.clear();
    traffic.rounds.push_back(std::move(round));
  }
  return traffic;
}

struct Item {
  core::Direction dir;
  const crypto::Bytes* frame;
};

/// Round-robin interleave across associations (all S1s of a round, all A1s,
/// then the S2s message-wise across associations): the worst realistic
/// demux pattern -- consecutive frames never share an association when
/// more than one exists.
std::vector<Item> build_schedule(const std::vector<AssocTraffic>& assocs,
                                 std::size_t rounds) {
  std::vector<Item> schedule;
  schedule.reserve(assocs.size() * rounds * (2 + kRoundMsgs));
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const auto& a : assocs) {
      schedule.push_back({core::Direction::kForward, &a.rounds[r].s1});
    }
    for (const auto& a : assocs) {
      schedule.push_back({core::Direction::kReverse, &a.rounds[r].a1});
    }
    for (std::size_t m = 0; m < kRoundMsgs; ++m) {
      for (const auto& a : assocs) {
        schedule.push_back({core::Direction::kForward, &a.rounds[r].s2s[m]});
      }
    }
  }
  return schedule;
}

struct MppsRow {
  std::size_t assocs = 0;
  std::size_t batch = 0;  // 0 = scalar RelayEngine
  std::size_t frames = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  double wall_s = 0;
  double pkts_per_s = 0;
  double speedup_vs_scalar = 0;  // batched rows only
};

MppsRow replay_scalar(const core::Config& config,
                      const std::vector<AssocTraffic>& assocs,
                      const std::vector<Item>& schedule) {
  core::RelayEngine::Callbacks cb;
  cb.forward = [](core::Direction, crypto::ByteView) {};
  core::RelayEngine relay{config, {}, std::move(cb)};
  for (const auto& a : assocs) {
    relay.on_frame(core::Direction::kForward, a.hs1);
    relay.on_frame(core::Direction::kReverse, a.hs2);
  }
  const std::uint64_t before = relay.stats().forwarded;
  const auto t0 = WallClock::now();
  for (const auto& it : schedule) relay.on_frame(it.dir, *it.frame);
  MppsRow row;
  row.wall_s = seconds_since(t0);
  row.assocs = assocs.size();
  row.frames = schedule.size();
  row.forwarded = relay.stats().forwarded - before;
  row.dropped = relay.stats().dropped_invalid +
                relay.stats().dropped_unsolicited;
  row.pkts_per_s = row.wall_s > 0 ? row.frames / row.wall_s : 0;
  return row;
}

MppsRow replay_batched(const core::Config& config,
                       const std::vector<AssocTraffic>& assocs,
                       const std::vector<Item>& schedule, std::size_t batch) {
  core::RelayPipeline::Callbacks cb;
  cb.forward_batch = [](const core::RelayPipeline::ForwardItem*,
                        std::size_t) {};
  core::RelayPipeline pipe{config, {}, std::move(cb), batch};
  for (const auto& a : assocs) {
    pipe.enqueue(core::Direction::kForward, a.hs1);
    pipe.enqueue(core::Direction::kReverse, a.hs2);
  }
  pipe.flush();
  const std::uint64_t before = pipe.stats().forwarded;
  const auto t0 = WallClock::now();
  for (const auto& it : schedule) pipe.enqueue(it.dir, *it.frame);
  pipe.flush();
  MppsRow row;
  row.wall_s = seconds_since(t0);
  row.assocs = assocs.size();
  row.batch = batch;
  row.frames = schedule.size();
  row.forwarded = pipe.stats().forwarded - before;
  row.dropped = pipe.stats().dropped_invalid +
                pipe.stats().dropped_unsolicited;
  row.pkts_per_s = row.wall_s > 0 ? row.frames / row.wall_s : 0;
  return row;
}

// ------------------------------------------------------------ worker sweep

struct WorkerRow {
  std::uint32_t workers = 0;
  std::size_t assocs = 0;
  std::size_t messages = 0;
  std::size_t delivered = 0;
  std::uint64_t relay_forwarded = 0;
  std::uint64_t relay_dropped = 0;
  double wall_s = 0;
  double relay_fwd_per_s = 0;
  double goodput_msgs_per_s = 0;
  std::uint64_t ring_overflows = 0;
  double verify_batch_p50_ns = 0;
};

WorkerRow run_worker_sweep(std::uint32_t relay_workers, std::size_t assocs,
                           std::size_t msgs_per_assoc) {
  core::Config config;
  config.reliable = true;
  config.chain_length = 4096;
  config.rto_us = 50'000;
  config.max_retries = 200;

  auto udp_a = std::make_unique<net::UdpTransport>();
  auto udp_b = std::make_unique<net::UdpTransport>();
  auto udp_r = std::make_unique<net::UdpTransport>();
  const std::uint16_t port_a = udp_a->port();
  const std::uint16_t port_b = udp_b->port();
  const std::uint16_t port_r = udp_r->port();

  core::ShardedNode::Options r_opts;
  r_opts.shard.config = config;
  r_opts.shard.seed = 9;
  r_opts.workers = relay_workers;
  core::ShardedNode relay{std::move(udp_r), r_opts};
  std::vector<std::uint32_t> ids(assocs);
  for (std::size_t i = 0; i < assocs; ++i) {
    ids[i] = static_cast<std::uint32_t>(i + 1);
  }
  relay.add_relay(/*upstream=*/port_a, /*downstream=*/port_b, ids,
                  /*relay_batch=*/32);

  core::ShardedNode::Options a_opts;
  a_opts.shard.config = config;
  a_opts.shard.seed = 7;
  a_opts.workers = 1;
  core::ShardedNode node_a{std::move(udp_a), a_opts};

  std::atomic<std::size_t> delivered{0};
  core::ShardedNode::Callbacks b_cbs;
  b_cbs.on_message = [&](std::uint32_t, crypto::ByteView) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  };
  core::ShardedNode::Options b_opts;
  b_opts.shard.config = config;
  b_opts.shard.seed = 8;
  b_opts.shard.accept_inbound = true;
  b_opts.workers = 1;
  core::ShardedNode node_b{std::move(udp_b), b_opts, b_cbs};

  WorkerRow row;
  row.workers = relay_workers;
  row.assocs = assocs;
  row.messages = assocs * msgs_per_assoc;

  for (const auto id : ids) node_a.add_initiator(id, port_r, config, {});
  relay.poll(0);  // threaded runtimes launch lazily; the relay only reacts
  node_b.poll(0);
  for (const auto id : ids) node_a.start(id);
  const auto hs_deadline = WallClock::now() + std::chrono::seconds(60);
  while (node_a.established_count() < assocs &&
         WallClock::now() < hs_deadline) {
    node_a.poll(10);
  }
  if (node_a.established_count() < assocs) {
    std::fprintf(stderr, "worker sweep: only %zu/%zu established\n",
                 node_a.established_count(), assocs);
    return row;
  }

  const auto t0 = WallClock::now();
  for (std::size_t i = 0; i < msgs_per_assoc; ++i) {
    for (const auto id : ids) {
      node_a.submit(id, crypto::Bytes(256, static_cast<std::uint8_t>(i)));
    }
  }
  const auto deadline = WallClock::now() + std::chrono::seconds(120);
  while (delivered.load(std::memory_order_relaxed) < row.messages &&
         WallClock::now() < deadline) {
    node_a.poll(20);
  }
  row.wall_s = seconds_since(t0);
  row.delivered = delivered.load(std::memory_order_relaxed);
  row.goodput_msgs_per_s =
      row.wall_s > 0 ? static_cast<double>(row.delivered) / row.wall_s : 0;

  core::NodeSnapshot snap = relay.snapshot();
  row.relay_forwarded = snap.relay.forwarded;
  row.relay_dropped =
      snap.relay.dropped_invalid + snap.relay.dropped_unsolicited;
  row.relay_fwd_per_s =
      row.wall_s > 0 ? static_cast<double>(row.relay_forwarded) / row.wall_s
                     : 0;
  // quantile() returns NaN on an empty histogram (scalar relays do not
  // record batch timings); 0 keeps the JSON artifact numeric.
  row.verify_batch_p50_ns = snap.relay.verify_batch_ns.count() > 0
                                ? snap.relay.verify_batch_ns.quantile(0.5)
                                : 0.0;
  for (const auto& ss : relay.shard_stats()) {
    row.ring_overflows += ss.in_overflows + ss.out_overflows;
  }
  return row;
}

// ----------------------------------------------------------- table5 modern

double measure_sha1_us(std::size_t input_bytes, int iters) {
  crypto::Bytes buf(input_bytes, 0x5a);
  volatile std::uint8_t sink = 0;
  const auto t0 = WallClock::now();
  for (int i = 0; i < iters; ++i) {
    crypto::Sha1 h;
    h.update(buf);
    sink = sink ^ h.finalize().data()[0];
  }
  (void)sink;
  return seconds_since(t0) * 1e6 / iters;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t target_frames = 120'000;
  std::size_t worker_msgs = 20;
  std::string out_path = "BENCH_relay_mpps.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--target-frames") == 0 && i + 1 < argc) {
      target_frames =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--worker-msgs") == 0 && i + 1 < argc) {
      worker_msgs =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--target-frames N] [--worker-msgs N] "
                   "[--out FILE.json]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  header("Relay fast path: verified-and-forwarded pkts/s per core "
         "(scalar vs batched), multi-worker relay scaling");
  std::printf("hardware_concurrency: %u\n", hw);

  JsonWriter json;
  json.begin_object()
      .field("bench", "relay_mpps")
      .field("schema_version", 1)
      .field("hardware_concurrency", static_cast<std::uint64_t>(hw))
      .field("round_msgs", static_cast<std::uint64_t>(kRoundMsgs));

  bool ok = true;

  std::printf("\n%8s %8s %10s %10s %9s %14s %10s\n", "assocs", "batch",
              "frames", "forwarded", "wall (s)", "pkts/s/core", "speedup");
  json.key("mpps_sweep").begin_array();
  double best_batched_ns_per_pkt = 0;
  for (const std::size_t assocs : {1u, 16u, 256u}) {
    const std::size_t frames_per_round = assocs * (2 + kRoundMsgs);
    std::size_t rounds = target_frames / frames_per_round;
    if (rounds < 4) rounds = 4;
    const core::Config config = sweep_config(rounds);

    std::vector<AssocTraffic> traffic;
    traffic.reserve(assocs);
    for (std::size_t a = 0; a < assocs; ++a) {
      traffic.push_back(generate_assoc(config,
                                       static_cast<std::uint32_t>(a + 1),
                                       rounds, /*seed=*/1000 + a));
    }
    const std::vector<Item> schedule = build_schedule(traffic, rounds);

    const MppsRow scalar = replay_scalar(config, traffic, schedule);
    ok = ok && scalar.forwarded == scalar.frames && scalar.dropped == 0;
    std::printf("%8zu %8s %10zu %10llu %9.3f %14.0f %10s\n", scalar.assocs,
                "scalar", scalar.frames,
                static_cast<unsigned long long>(scalar.forwarded),
                scalar.wall_s, scalar.pkts_per_s, "1.00x");
    json.begin_object()
        .field("assocs", static_cast<std::uint64_t>(scalar.assocs))
        .field("engine", "scalar")
        .field("batch", 0)
        .field("frames", static_cast<std::uint64_t>(scalar.frames))
        .field("forwarded", scalar.forwarded)
        .field("dropped", scalar.dropped)
        .field("wall_s", scalar.wall_s)
        .field("pkts_per_s", scalar.pkts_per_s)
        .end_object();

    for (const std::size_t batch : {8u, 32u, 128u}) {
      const MppsRow b = replay_batched(config, traffic, schedule, batch);
      const double speedup =
          scalar.pkts_per_s > 0 ? b.pkts_per_s / scalar.pkts_per_s : 0;
      ok = ok && b.forwarded == b.frames && b.dropped == 0;
      std::printf("%8zu %8zu %10zu %10llu %9.3f %14.0f %9.2fx\n", b.assocs,
                  b.batch, b.frames,
                  static_cast<unsigned long long>(b.forwarded), b.wall_s,
                  b.pkts_per_s, speedup);
      json.begin_object()
          .field("assocs", static_cast<std::uint64_t>(b.assocs))
          .field("engine", "batched")
          .field("batch", static_cast<std::uint64_t>(b.batch))
          .field("frames", static_cast<std::uint64_t>(b.frames))
          .field("forwarded", b.forwarded)
          .field("dropped", b.dropped)
          .field("wall_s", b.wall_s)
          .field("pkts_per_s", b.pkts_per_s)
          .field("speedup_vs_scalar", speedup)
          .end_object();
      if (b.pkts_per_s > 0 && 1e9 / b.pkts_per_s < best_batched_ns_per_pkt) {
        best_batched_ns_per_pkt = 1e9 / b.pkts_per_s;
      }
      if (best_batched_ns_per_pkt == 0 && b.pkts_per_s > 0) {
        best_batched_ns_per_pkt = 1e9 / b.pkts_per_s;
      }
    }
  }
  json.end_array();

  std::printf("\n%8s %8s %10s %10s %9s %14s %14s %10s\n", "workers",
              "assocs", "messages", "delivered", "wall (s)", "relay fwd/s",
              "msg/s (e2e)", "overflows");
  json.key("worker_sweep").begin_array();
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    const WorkerRow r = run_worker_sweep(workers, /*assocs=*/64, worker_msgs);
    ok = ok && r.delivered == r.messages && r.relay_dropped == 0;
    std::printf("%8u %8zu %10zu %10zu %9.2f %14.0f %14.0f %10llu\n",
                r.workers, r.assocs, r.messages, r.delivered, r.wall_s,
                r.relay_fwd_per_s, r.goodput_msgs_per_s,
                static_cast<unsigned long long>(r.ring_overflows));
    json.begin_object()
        .field("workers", static_cast<std::uint64_t>(r.workers))
        .field("assocs", static_cast<std::uint64_t>(r.assocs))
        .field("messages", static_cast<std::uint64_t>(r.messages))
        .field("delivered", static_cast<std::uint64_t>(r.delivered))
        .field("relay_forwarded", r.relay_forwarded)
        .field("relay_dropped", r.relay_dropped)
        .field("wall_s", r.wall_s)
        .field("relay_fwd_per_s", r.relay_fwd_per_s)
        .field("goodput_msgs_per_s", r.goodput_msgs_per_s)
        .field("verify_batch_p50_ns", r.verify_batch_p50_ns)
        .field("ring_overflows", r.ring_overflows)
        .end_object();
  }
  json.end_array();

  // Table 5, re-anchored: the paper sized relay feasibility by SHA-1 delay
  // on 2008 router hardware; a forwarded S2 costs ~3 short-input hashes
  // (one chain step + a keyed MAC over the packet).
  const double host_sha1_20_us = measure_sha1_us(20, 200'000);
  const platform::DeviceSpec devices[] = {
      platform::devices::ar2315(),
      platform::devices::bcm5365(),
      platform::devices::geode_lx(),
  };
  std::printf("\nTable 5 (modern): host SHA-1(20 B) %.3f us; measured relay "
              "cost %.0f ns/pkt (best batched row)\n",
              host_sha1_20_us, best_batched_ns_per_pkt);
  json.key("table5_modern")
      .begin_object()
      .field("host_sha1_20B_us", host_sha1_20_us)
      .field("measured_relay_ns_per_pkt", best_batched_ns_per_pkt)
      .field("measured_relay_kpps_per_core",
             best_batched_ns_per_pkt > 0 ? 1e6 / best_batched_ns_per_pkt : 0)
      .key("devices")
      .begin_array();
  std::printf("%-44s %14s %16s\n", "device", "SHA-1(20B)", "est relay kpps");
  for (const auto& dev : devices) {
    const double dev_us = dev.hash.cost_us(20);
    const double est_kpps = dev_us > 0 ? 1e3 / (3 * dev_us) : 0;
    std::printf("%-44s %11.3f ms %16.1f\n", dev.name.c_str(), dev_us / 1000.0,
                est_kpps);
    json.begin_object()
        .field("name", dev.name.c_str())
        .field("sha1_20B_us_model", dev_us)
        .field("est_relay_kpps", est_kpps)
        .end_object();
  }
  json.end_array().end_object();
  json.end_object();

  if (!json.write_file(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  std::printf(
      "Reading: the mpps sweep replays identical engine-authentic schedules\n"
      "through both relay paths on one core -- flat-array demux, zero-copy\n"
      "S2 parsing and batched verification are the whole margin. The worker\n"
      "sweep shows the same bindings sharded across cores (meaningful only\n"
      "where hardware_concurrency provides them); table5_modern re-anchors\n"
      "the paper's router feasibility numbers to current hash rates.\n");
  return ok ? 0 : 1;
}
