// Hot-path microbenchmarks with a machine-readable perf trajectory.
//
// Measures the per-operation cost of the signed-packet hot path -- chain
// step, prefix MAC, cached HMAC, Merkle batch signing, amortized chain
// traversal -- in three dimensions: wall-clock ns/op, hash compressions/op
// (HashOpCounter) and heap allocations/op (alloc_hook). Results go to
// BENCH_hotpath.json (schema in EXPERIMENTS.md) so successive commits can
// be compared; the "legacy" variants reconstruct the pre-optimization path
// (heap-allocated one-shot hasher, scalar compression, per-call HMAC key
// schedule) for an in-tree speedup baseline.
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crypto/counter.hpp"
#include "crypto/cpu.hpp"
#include "crypto/hash.hpp"
#include "crypto/mac.hpp"
#include "crypto/random.hpp"
#include "hashchain/chain.hpp"
#include "merkle/merkle.hpp"
#include "support/alloc_hook.hpp"
#include "trace/flight.hpp"
#include "trace/trace.hpp"

namespace {

using namespace alpha;
using bench::JsonWriter;
using Clock = std::chrono::steady_clock;

volatile std::uint8_t g_sink;
inline void sink(const crypto::Digest& d) {
  g_sink = static_cast<std::uint8_t>(g_sink ^ d.data()[0]);
}

// --recorded: the flight recorder drains the live ring once per measured
// iteration, so every row's cost includes the spill path it would pay in a
// recorded production run. One branch per op in all modes keeps the
// baselines comparable.
trace::FlightRecorder* g_recorder = nullptr;

struct Sample {
  double ns_per_op = 0;
  double hash_ops_per_op = 0;
  double allocs_per_op = 0;
};

/// Runs `op` `iters` times (after a warmup tenth) and reports all three
/// per-op metrics.
template <typename F>
Sample measure(std::size_t iters, F&& op) {
  for (std::size_t i = 0; i < iters / 10 + 1; ++i) op();
  if (g_recorder != nullptr) g_recorder->drain();  // settle warmup events
  const crypto::ScopedHashOps hashes;
  const testsupport::ScopedAllocCount allocs;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    op();
    if (g_recorder != nullptr) g_recorder->drain();
  }
  const auto t1 = Clock::now();
  Sample s;
  s.ns_per_op =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(iters);
  s.hash_ops_per_op = static_cast<double>(hashes.delta().hash_finalizations) /
                      static_cast<double>(iters);
  s.allocs_per_op = static_cast<double>(allocs.delta()) /
                    static_cast<double>(iters);
  return s;
}

void emit(JsonWriter& json, const char* name, crypto::HashAlgo algo,
          const Sample& s) {
  json.begin_object()
      .field("name", name)
      .field("algo", crypto::to_string(algo))
      .field("ns_per_op", s.ns_per_op)
      .field("hash_ops_per_op", s.hash_ops_per_op)
      .field("allocs_per_op", s.allocs_per_op)
      .end_object();
  std::printf("%-28s %-12s %10.1f ns/op %7.2f hash/op %7.3f alloc/op\n",
              name, std::string(crypto::to_string(algo)).c_str(), s.ns_per_op,
              s.hash_ops_per_op, s.allocs_per_op);
}

// Pre-optimization chain step: heap-allocated polymorphic hasher and the
// portable scalar compression, exactly what hash2() compiled to before the
// one-shot fast path and the hardware backends existed.
crypto::Digest legacy_chain_step(crypto::HashAlgo algo,
                                 hashchain::ChainTagging tagging,
                                 const crypto::Digest& prev, std::size_t i) {
  const crypto::ScopedScalarCrypto scalar;
  const auto hasher = crypto::make_hasher(algo);
  hasher->update(hashchain::step_tag(tagging, i));
  hasher->update(prev.view());
  return hasher->finalize();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_hotpath.json";
  bool traced = false;    // run every measurement with the trace ring live
  bool recorded = false;  // --traced plus a draining flight recorder
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--traced") {
      traced = true;
    } else if (std::string(argv[i]) == "--recorded") {
      traced = true;
      recorded = true;
    } else {
      out_path = argv[i];
    }
  }
  constexpr std::size_t kIters = 200000;
  constexpr std::size_t kWalkN = std::size_t{1} << 14;

  // With --traced the global sink is installed for the whole run: every
  // emit() in library code records into the ring, which must cost no
  // allocations and no measurable slowdown (CI gates on both).
  trace::Ring trace_ring(std::size_t{1} << 12);
  if (traced) trace::install(&trace_ring);

  // --recorded adds the crash-safe spill: a single over-sized segment
  // (far above what the run can emit) so no rotation -- and therefore no
  // allocation -- can land inside a measured loop.
  std::optional<trace::FlightRecorder> recorder;
  if (recorded) {
    trace::FlightOptions fopts;
    fopts.dir = "bench_flight";
    fopts.segment_bytes = std::size_t{32} << 20;
    fopts.config_digest = trace::fnv1a64("bench_hotpath --recorded");
    recorder.emplace(fopts, &trace_ring);
    if (!recorder->ok()) {
      std::fprintf(stderr, "%s\n", recorder->error().c_str());
      return 1;
    }
    g_recorder = &*recorder;
  }

  crypto::HmacDrbg rng(42);
  const crypto::Digest key{crypto::ByteView{rng.bytes(20)}};
  const crypto::Bytes payload = rng.bytes(256);

  bench::header("Hot-path cost (ns/op, hash-ops/op, allocs/op)");

  JsonWriter json;
  json.begin_object()
      .field("bench", "hotpath")
      .field("schema_version", 1)
      .field("traced", traced)
      .field("recorded", recorded)
      .field("hw_acceleration",
             crypto::hw_acceleration_enabled() &&
                 (crypto::cpu_has_sha_ni() || crypto::cpu_has_aes_ni()))
      .field("sha_ni", crypto::cpu_has_sha_ni())
      .field("aes_ni", crypto::cpu_has_aes_ni())
      .key("results")
      .begin_array();

  double step_new_ns = 0;
  double step_legacy_ns = 0;
  for (const auto algo : {crypto::HashAlgo::kSha1, crypto::HashAlgo::kSha256,
                          crypto::HashAlgo::kMmo128}) {
    const auto tagging = hashchain::ChainTagging::kRoleBound;
    const crypto::Digest prev{
        crypto::ByteView{rng.bytes(crypto::digest_size(algo))}};

    const Sample legacy = measure(kIters, [&] {
      sink(legacy_chain_step(algo, tagging, prev, 3));
    });
    emit(json, "chain_step_legacy", algo, legacy);

    const Sample fast = measure(kIters, [&] {
      sink(hashchain::chain_step(algo, tagging, prev, 3));
    });
    emit(json, "chain_step", algo, fast);

    if (algo == crypto::HashAlgo::kSha1) {
      step_legacy_ns = legacy.ns_per_op;
      step_new_ns = fast.ns_per_op;
    }
  }

  for (const auto algo : {crypto::HashAlgo::kSha1, crypto::HashAlgo::kMmo128}) {
    const crypto::MacContext prefix(crypto::MacKind::kPrefix, algo,
                                    key.view());
    emit(json, "prefix_mac", algo,
         measure(kIters, [&] { sink(prefix.mac(payload)); }));
  }

  {
    const auto algo = crypto::HashAlgo::kSha1;
    emit(json, "hmac_per_call", algo, measure(kIters, [&] {
           sink(crypto::hmac(algo, key.view(), payload));
         }));
    const crypto::HmacKey cached(algo, key.view());
    emit(json, "hmac_cached", algo,
         measure(kIters, [&] { sink(cached.mac(payload)); }));
  }

  // Amortized full-chain disclosure sweep, seed-only storage: the walker
  // must stay within 2n total hash ops (pebbling pass + segment refills).
  {
    const auto algo = crypto::HashAlgo::kSha1;
    const crypto::Bytes seed = rng.bytes(20);
    const hashchain::HashChain chain(algo, hashchain::ChainTagging::kRoleBound,
                                     seed, kWalkN,
                                     hashchain::ChainStorage::kSeedOnly);
    const crypto::ScopedHashOps hashes;
    const testsupport::ScopedAllocCount allocs;
    const auto t0 = Clock::now();
    hashchain::ChainWalker walker(chain);
    while (!walker.exhausted()) sink(walker.take());
    const auto t1 = Clock::now();
    Sample s;
    const double ops = static_cast<double>(kWalkN - 1);
    s.ns_per_op =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / ops;
    s.hash_ops_per_op =
        static_cast<double>(hashes.delta().hash_finalizations) / ops;
    s.allocs_per_op = static_cast<double>(allocs.delta()) / ops;
    emit(json, "seedonly_walk_2e14", algo, s);
    std::printf("  (walker total hash ops: %llu, bound 2n = %llu)\n",
                static_cast<unsigned long long>(
                    hashes.delta().hash_finalizations),
                static_cast<unsigned long long>(2 * kWalkN));
  }

  // ALPHA-M batch: tree build over 64 messages + per-packet auth_path and
  // memoized keyed root.
  {
    const auto algo = crypto::HashAlgo::kSha1;
    std::vector<crypto::Bytes> messages;
    for (int i = 0; i < 64; ++i) messages.push_back(rng.bytes(64));
    emit(json, "merkle_build_64", algo, measure(2000, [&] {
           const merkle::MerkleTree tree(algo, messages);
           sink(tree.root());
         }));
    const merkle::MerkleTree tree(algo, messages);
    std::size_t leaf = 0;
    emit(json, "merkle_s2_emit", algo, measure(kIters, [&] {
           sink(tree.keyed_root(key.view()));
           g_sink = static_cast<std::uint8_t>(
               g_sink ^ tree.auth_path(leaf = (leaf + 1) % 64).siblings[0]
                            .data()[0]);
         }));
  }

  // Trace-event recording itself: one 32-byte POD copy into the ring plus
  // the ambient-context stamp. This is the per-event overhead every traced
  // protocol operation pays, so it must be allocation-free.
  {
    trace::Ring* prev = trace::sink();
    trace::Ring emit_ring(std::size_t{1} << 12);
    trace::install(&emit_ring);
    const trace::ScopedContext ctx(/*origin=*/1, /*time_us=*/123);
    std::uint32_t seq = 0;
    emit(json, "trace_emit", crypto::HashAlgo::kSha1, measure(kIters, [&] {
           trace::emit(trace::EventKind::kPacketSent, 7, ++seq, 1,
                       trace::DropReason::kNone, 42);
         }));
    g_sink = static_cast<std::uint8_t>(
        g_sink ^ static_cast<std::uint8_t>(emit_ring.total()));
    trace::install(prev);
  }

  json.end_array()
      .field("chain_step_speedup_sha1", step_legacy_ns / step_new_ns)
      .end_object();

  std::printf("\nchain-step speedup (SHA-1, new vs legacy): %.1fx\n",
              step_legacy_ns / step_new_ns);

  if (recorder.has_value()) {
    g_recorder = nullptr;
    recorder->finalize();
    std::printf("flight recording: %llu events -> bench_flight/\n",
                static_cast<unsigned long long>(recorder->events_written()));
  }

  if (!json.write_file(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
