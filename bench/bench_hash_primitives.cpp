// Micro-benchmarks: the crypto primitives everything else is built on.
//
// Supports the Table 4/5 reproductions: SHA-1/SHA-256/AES-MMO throughput
// across input sizes and the two MAC constructions.
#include <benchmark/benchmark.h>

#include "crypto/hash.hpp"
#include "crypto/mac.hpp"

using namespace alpha::crypto;

namespace {

void BM_Hash(benchmark::State& state, HashAlgo algo) {
  const Bytes input(static_cast<std::size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash(algo, input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Mac(benchmark::State& state, MacKind kind, HashAlgo algo) {
  const Bytes key(digest_size(algo), 0x42);
  const Bytes input(static_cast<std::size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac(kind, algo, key, input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

}  // namespace

// The paper's calibration sizes: 20/1024 B (Table 5), 16/84 B (§4.1.3).
BENCHMARK_CAPTURE(BM_Hash, sha1, HashAlgo::kSha1)
    ->Arg(20)->Arg(64)->Arg(84)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK_CAPTURE(BM_Hash, sha256, HashAlgo::kSha256)
    ->Arg(20)->Arg(64)->Arg(1024)->Arg(4096);
BENCHMARK_CAPTURE(BM_Hash, aes_mmo, HashAlgo::kMmo128)
    ->Arg(16)->Arg(84)->Arg(100)->Arg(1024);
BENCHMARK_CAPTURE(BM_Mac, hmac_sha1, MacKind::kHmac, HashAlgo::kSha1)
    ->Arg(64)->Arg(1024);
BENCHMARK_CAPTURE(BM_Mac, prefix_sha1, MacKind::kPrefix, HashAlgo::kSha1)
    ->Arg(64)->Arg(1024);
BENCHMARK_CAPTURE(BM_Mac, prefix_mmo, MacKind::kPrefix, HashAlgo::kMmo128)
    ->Arg(84);

BENCHMARK_MAIN();
