// Table 5 -- SHA-1 delay on wireless routers.
//
// Paper (Table 5): SHA-1 cost for 20 B and 1024 B inputs on the AR2315
// (La Fonera), Broadcom 5365 (Netgear WGT634U) and Geode LX mesh router.
//
// The devices are modelled from the paper's own measurements (src/platform);
// this harness prints those calibration points next to what the from-scratch
// SHA-1 costs on this host for the same input sizes, giving the scale factor
// used by the other device-level estimates.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "crypto/sha1.hpp"
#include "platform/devices.hpp"

using namespace alpha;
using namespace alpha::bench;
using Clock = std::chrono::steady_clock;

namespace {
double measure_sha1_ms(std::size_t input_bytes, int iters) {
  crypto::Bytes buf(input_bytes, 0x5a);
  volatile std::uint8_t sink = 0;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    crypto::Sha1 h;
    h.update(buf);
    sink = sink ^ h.finalize().data()[0];
  }
  (void)sink;
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
         iters;
}
}  // namespace

int main() {
  header("Table 5: SHA-1 delay on wireless routers (paper model vs. host)");

  const platform::DeviceSpec devices[] = {
      platform::devices::ar2315(),
      platform::devices::bcm5365(),
      platform::devices::geode_lx(),
  };

  const double host_20 = measure_sha1_ms(20, 50000);
  const double host_1024 = measure_sha1_ms(1024, 20000);

  std::printf("\n%-44s %14s %14s\n", "device", "20 B digest", "1024 B digest");
  for (const auto& dev : devices) {
    std::printf("%-44s %11.3f ms %11.3f ms\n", dev.name.c_str(),
                dev.hash.cost_us(20) / 1000.0, dev.hash.cost_us(1024) / 1000.0);
  }
  std::printf("%-44s %11.5f ms %11.5f ms\n", "this host (from-scratch SHA-1)",
              host_20, host_1024);
  std::printf("\nhost-to-AR2315 scale factor: %.0fx (20 B), %.0fx (1024 B)\n",
              0.059 / host_20, 0.360 / host_1024);
  return 0;
}
