// Extension figure -- goodput and verification cost vs. fault intensity.
//
// Drives the reliable ALPHA-C profile over a 3-hop simulated path while the
// adversarial fault layer escalates: corruption, duplication, reordering and
// Gilbert-Elliott bursty loss, each swept independently plus one combined
// "hostile" schedule. Reported per cell: end-to-end goodput and the hash
// operations spent per delivered message (signer + verifier + relays) -- the
// protocol's robustness bill. Every row is deterministic per chaos seed.
#include <cstdio>

#include "bench_util.hpp"
#include "core/path.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

struct ChaosResult {
  double goodput_mbps = 0.0;
  double hashes_per_delivered = 0.0;
  double delivered_fraction = 0.0;
};

ChaosResult measure(const net::FaultConfig& faults, double loss,
                    std::size_t messages, std::size_t msg_size) {
  net::Simulator sim;
  net::Network network{sim, 11};
  network.set_chaos_seed(0xbe7c4a05);
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 5 * net::kMillisecond;
  link.bandwidth_bps = 54'000'000;
  link.mtu = 1500;
  link.loss_rate = loss;
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1, link);

  core::Config config;
  config.mode = wire::Mode::kCumulative;
  config.batch_size = 16;
  config.reliable = true;
  config.retransmit_on_nack = true;
  config.rto_us = 100 * net::kMillisecond;
  config.max_retries = 50;
  config.chain_length = 8192;

  core::ProtectedPath path{network, {0, 1, 2, 3}, config, 1, 7};
  for (net::NodeId id = 0; id < 3; ++id) {
    network.set_link_faults(id, id + 1, faults);
  }
  path.start();
  sim.run_until(5 * net::kSecond);
  for (int attempt = 0; attempt < 20 && !path.initiator().established();
       ++attempt) {
    path.initiator().start();
    sim.run_until(sim.now() + 5 * net::kSecond);
  }
  if (!path.initiator().established()) return {};

  const net::SimTime t0 = sim.now();
  for (std::size_t i = 0; i < messages; ++i) {
    path.initiator().submit(crypto::Bytes(msg_size, 0x42), sim.now());
  }
  while (path.delivered_to_responder().size() < messages &&
         sim.now() < t0 + 600 * net::kSecond) {
    sim.run_until(sim.now() + 100 * net::kMillisecond);
  }

  const std::size_t delivered = path.delivered_to_responder().size();
  if (delivered == 0) return {};
  const double elapsed_s = static_cast<double>(sim.now() - t0) / net::kSecond;

  std::uint64_t hashes = path.initiator().signer()->stats().hashes.total() +
                         path.responder().verifier()->stats().hashes.total();
  for (std::size_t i = 0; i < path.relay_count(); ++i) {
    hashes += path.relay(i).stats().hashes.total();
  }

  ChaosResult result;
  result.goodput_mbps =
      static_cast<double>(delivered * msg_size * 8) / (elapsed_s * 1e6);
  result.hashes_per_delivered =
      static_cast<double>(hashes) / static_cast<double>(delivered);
  result.delivered_fraction =
      static_cast<double>(delivered) / static_cast<double>(messages);
  return result;
}

void print_row(const char* name, const ChaosResult& r) {
  std::printf("%-22s %10.3f %12.1f %10.0f%%\n", name, r.goodput_mbps,
              r.hashes_per_delivered, r.delivered_fraction * 100.0);
}

}  // namespace

int main() {
  header("Extension figure: goodput + hash cost vs. fault intensity "
         "(ALPHA-C n=16 reliable, 3 hops, 5 ms/hop, 800 B messages)");

  const std::size_t kMessages = 200;
  const std::size_t kMsgSize = 800;

  std::printf("\n%-22s %10s %12s %11s\n", "fault schedule", "Mbit/s",
              "hash/deliv", "delivered");

  print_row("clean", measure({}, 0.0, kMessages, kMsgSize));

  for (const double rate : {0.01, 0.05, 0.10}) {
    net::FaultConfig faults;
    faults.corrupt_rate = rate;
    char name[32];
    std::snprintf(name, sizeof name, "corrupt %.0f%%", rate * 100);
    print_row(name, measure(faults, 0.0, kMessages, kMsgSize));
  }

  for (const double rate : {0.10, 0.30}) {
    net::FaultConfig faults;
    faults.duplicate_rate = rate;
    char name[32];
    std::snprintf(name, sizeof name, "duplicate %.0f%%", rate * 100);
    print_row(name, measure(faults, 0.0, kMessages, kMsgSize));
  }

  for (const double rate : {0.10, 0.30}) {
    net::FaultConfig faults;
    faults.reorder_rate = rate;
    faults.reorder_window = 50 * net::kMillisecond;
    char name[32];
    std::snprintf(name, sizeof name, "reorder %.0f%%", rate * 100);
    print_row(name, measure(faults, 0.0, kMessages, kMsgSize));
  }

  for (const double bad : {0.50, 0.80}) {
    net::FaultConfig faults;
    faults.burst = net::BurstLossConfig{0.05, 0.25, 0.0, bad};
    char name[32];
    std::snprintf(name, sizeof name, "burst loss %.0f%%", bad * 100);
    print_row(name, measure(faults, 0.0, kMessages, kMsgSize));
  }

  {
    net::FaultConfig faults;
    faults.corrupt_rate = 0.02;
    faults.duplicate_rate = 0.05;
    faults.reorder_rate = 0.10;
    faults.burst = net::BurstLossConfig{0.05, 0.25, 0.0, 0.60};
    print_row("hostile (all faults)",
              measure(faults, 0.05, kMessages, kMsgSize));
  }

  std::printf("\nGoodput degrades with fault intensity while the per-message "
              "hash bill grows\nwith every retransmitted round; corrupted "
              "frames are rejected by relays and\nthe verifier, never "
              "delivered.\n");
  return 0;
}
