// Micro-benchmarks: hash-chain operations + the storage-strategy ablation.
//
// DESIGN.md §5 ablation: full store (O(n) memory, O(1) element access) vs.
// seed-only (O(1)/O(n)) vs. sqrt checkpointing (O(sqrt n)/O(sqrt n)). The
// walk benchmarks traverse a chain top-down the way a signer discloses.
#include <benchmark/benchmark.h>

#include "crypto/random.hpp"
#include "hashchain/chain.hpp"

using namespace alpha;
using namespace alpha::hashchain;

namespace {

void BM_ChainGenerate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const crypto::Bytes seed(20, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashChain{crypto::HashAlgo::kSha1,
                                       ChainTagging::kRoleBound, seed, n});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChainGenerate)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ChainWalk(benchmark::State& state, ChainStorage storage) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const crypto::Bytes seed(20, 1);
  const HashChain chain{crypto::HashAlgo::kSha1, ChainTagging::kRoleBound,
                        seed, n, storage};
  for (auto _ : state) {
    ChainWalker walker{chain};
    while (!walker.exhausted()) {
      benchmark::DoNotOptimize(walker.take());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n - 1));
  state.counters["memoryB"] =
      static_cast<double>(chain.memory_bytes());
}
BENCHMARK_CAPTURE(BM_ChainWalk, full_store, ChainStorage::kFull)
    ->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK_CAPTURE(BM_ChainWalk, seed_only, ChainStorage::kSeedOnly)
    ->Arg(256)->Arg(1024);
BENCHMARK_CAPTURE(BM_ChainWalk, checkpoint, ChainStorage::kCheckpoint)
    ->Arg(256)->Arg(1024)->Arg(4096);

void BM_ChainVerifyStep(benchmark::State& state) {
  crypto::HmacDrbg rng{1};
  const auto chain = HashChain::generate(crypto::HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 4096);
  for (auto _ : state) {
    state.PauseTiming();
    ChainVerifier verifier{crypto::HashAlgo::kSha1, ChainTagging::kRoleBound,
                           chain.anchor(), 4096};
    state.ResumeTiming();
    for (std::size_t i = 4095; i > 4095 - 64; --i) {
      benchmark::DoNotOptimize(verifier.accept(chain.element(i), i));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ChainVerifyStep);

void BM_ChainVerifyWithGap(benchmark::State& state) {
  // Packet loss: the disclosed element is `gap` steps below the last one.
  const std::size_t gap = static_cast<std::size_t>(state.range(0));
  crypto::HmacDrbg rng{2};
  const auto chain = HashChain::generate(crypto::HashAlgo::kSha1,
                                         ChainTagging::kRoleBound, rng, 8192);
  for (auto _ : state) {
    state.PauseTiming();
    ChainVerifier verifier{crypto::HashAlgo::kSha1, ChainTagging::kRoleBound,
                           chain.anchor(), 8192, /*max_gap=*/256};
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        verifier.accept(chain.element(8192 - gap), 8192 - gap));
  }
}
BENCHMARK(BM_ChainVerifyWithGap)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
