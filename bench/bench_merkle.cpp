// Micro-benchmarks: Merkle trees (ALPHA-M) and acknowledgment Merkle trees.
//
// Shows the log-vs-linear trade-off behind Table 6: tree build is O(n),
// per-leaf verification O(log n) with constant buffer.
#include <benchmark/benchmark.h>

#include "crypto/random.hpp"
#include "merkle/amt.hpp"
#include "merkle/merkle.hpp"

using namespace alpha;
using namespace alpha::merkle;

namespace {

std::vector<Bytes> make_messages(std::size_t n, std::size_t size) {
  crypto::HmacDrbg rng{42};
  std::vector<Bytes> msgs;
  msgs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) msgs.push_back(rng.bytes(size));
  return msgs;
}

void BM_TreeBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto msgs = make_messages(n, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree{crypto::HashAlgo::kSha1, msgs});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TreeBuild)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_AuthPath(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const MerkleTree tree{crypto::HashAlgo::kSha1, make_messages(n, 1024)};
  std::size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.auth_path(j));
    j = (j + 1) % n;
  }
}
BENCHMARK(BM_AuthPath)->Arg(16)->Arg(1024);

void BM_VerifyKeyed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto msgs = make_messages(n, 1024);
  const MerkleTree tree{crypto::HashAlgo::kSha1, msgs};
  const crypto::Bytes key(20, 7);
  const Digest root = tree.keyed_root(key);
  const Digest leaf = crypto::hash(crypto::HashAlgo::kSha1, msgs[0]);
  const AuthPath path = tree.auth_path(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MerkleTree::verify_keyed(crypto::HashAlgo::kSha1, key, leaf, path,
                                 root));
  }
  state.counters["log2n"] = static_cast<double>(path.siblings.size());
}
BENCHMARK(BM_VerifyKeyed)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_AmtBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  crypto::HmacDrbg rng{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(AckMerkleTree{crypto::HashAlgo::kSha1, n, rng});
  }
}
BENCHMARK(BM_AmtBuild)->Arg(16)->Arg(256);

void BM_AmtProveVerify(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  crypto::HmacDrbg rng{4};
  const AckMerkleTree amt{crypto::HashAlgo::kSha1, n, rng};
  const crypto::Bytes key(20, 9);
  const Digest root = amt.keyed_root(key);
  std::size_t j = 0;
  for (auto _ : state) {
    const auto proof = amt.prove(j, true);
    benchmark::DoNotOptimize(
        AckMerkleTree::verify(crypto::HashAlgo::kSha1, key, proof, root, n));
    j = (j + 1) % n;
  }
}
BENCHMARK(BM_AmtProveVerify)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
