// Figure 6 -- signature overhead: transferred bytes per signed byte.
//
// Paper (Fig. 6): the ratio of bytes sent per payload byte for the same
// four packet sizes as Fig. 5. Larger packets amortize the {Bc} better;
// the ratio climbs toward the feasibility edge where signature data fills
// the packet (the paper plots up to ~5).
#include <cmath>

#include "bench_util.hpp"
#include "platform/estimators.hpp"

using namespace alpha;
using namespace alpha::bench;

int main() {
  header("Figure 6: transferred bytes per signed byte vs. number of S2 "
         "packets (h = 20 B)");

  const std::size_t packet_sizes[] = {1280, 512, 256, 128};
  std::printf("%10s", "n");
  for (const auto ps : packet_sizes) std::printf("  %9zu B", ps);
  std::printf("\n");

  std::vector<std::size_t> ns;
  for (double x = 0; x <= 23.5; x += 0.5) {
    ns.push_back(static_cast<std::size_t>(std::llround(std::pow(2.0, x))));
  }
  std::sort(ns.begin(), ns.end());
  ns.erase(std::unique(ns.begin(), ns.end()), ns.end());

  for (const std::size_t n : ns) {
    if (n > 10'000'000) break;
    std::printf("%10zu", n);
    for (const auto ps : packet_sizes) {
      const auto ratio = platform::overhead_ratio(n, ps, 20);
      if (ratio.has_value()) {
        std::printf("  %11.3f", *ratio);
      } else {
        std::printf("  %11s", "-");
      }
    }
    std::printf("\n");
  }

  std::printf("\nShape checks (paper):\n");
  std::printf("  - overhead lower for larger packets at every n: %s\n",
              *platform::overhead_ratio(1024, 1280, 20) <
                      *platform::overhead_ratio(1024, 512, 20)
                  ? "OK"
                  : "VIOLATED");
  std::printf("  - ratio monotonically rises across depth steps: %s\n",
              *platform::overhead_ratio(2, 1280, 20) <
                      *platform::overhead_ratio(4'000'000, 1280, 20)
                  ? "OK"
                  : "VIOLATED");
  return 0;
}
