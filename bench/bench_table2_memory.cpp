// Table 2 -- memory requirements for n messages sent in parallel.
//
// Paper (Table 2), message size m, hash size h:
//   ALPHA / ALPHA-C : signer n(m+h), verifier n*h, relay n*h
//   ALPHA-M         : signer n*m + (2n-1)h, verifier h, relay h
//
// The harness opens a round, withholds the A1 so all roles sit on their
// buffers, and reads the engines' byte gauges. An ablation row shows what
// relays would buffer *without* pre-signatures (the whole message, §3.1.1).
#include "bench_util.hpp"
#include "platform/estimators.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

void run(wire::Mode mode, platform::AlphaMode pmode, const char* name,
         std::size_t n, std::size_t m) {
  core::Config config;
  config.mode = mode;
  config.batch_size = n;
  config.chain_length = 4096;

  TriadFixture fx{config};
  for (std::size_t i = 0; i < n; ++i) {
    fx.signer().submit(crypto::Bytes(m, 0x5a), 0);
  }
  fx.pump_without_a1();

  const auto paper = platform::table2_memory(pmode, n, m, 20);
  std::printf(
      "%-8s n=%4zu m=%4zu | signer %8zu B (paper %8zu) | verifier %7zu B "
      "(paper %6zu) | relay %7zu B (paper %6zu) | no-presig relay %8zu B\n",
      name, n, m, fx.signer().buffered_bytes(), paper.signer,
      fx.verifier().buffered_bytes(), paper.verifier,
      fx.relay().buffered_bytes(), paper.relay,
      n * (m + 20));  // buffering full messages instead of pre-signatures
}

}  // namespace

int main() {
  header("Table 2: memory requirements for n parallel messages "
         "(measured vs. paper; h = 20 B)");
  std::printf(
      "The ALPHA-M signer gauge includes the full Merkle tree (2n-1 nodes\n"
      "plus padding for non-power-of-two n); verifier and relay hold only\n"
      "the root. The last column is the §3.1.1 ablation: what relays would\n"
      "buffer if S1 carried whole messages instead of pre-signatures.\n\n");

  for (const std::size_t n : {1u, 4u, 16u, 64u, 256u}) {
    run(wire::Mode::kCumulative, platform::AlphaMode::kCumulative, "ALPHA-C",
        n, 1000);
  }
  std::printf("\n");
  for (const std::size_t n : {1u, 4u, 16u, 64u, 256u}) {
    run(wire::Mode::kMerkle, platform::AlphaMode::kMerkle, "ALPHA-M", n, 1000);
  }
  std::printf("\nBase ALPHA (n = 1):\n");
  run(wire::Mode::kBase, platform::AlphaMode::kBase, "ALPHA", 1, 1000);
  return 0;
}
