// Node-runtime scalability with concurrent associations.
//
// One AlphaNode pair over the deterministic simulator: node A runs N
// initiator associations, node B accepts every inbound handshake on demand,
// and all frames share one fat link. Measures what the multi-association
// runtime adds on top of the engines: establishment throughput, message
// throughput across all associations, and the per-frame demux overhead of
// the assoc-id peek + map lookup hot path.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/node.hpp"
#include "net/network.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

constexpr std::size_t kMessagesPerAssoc = 4;
constexpr std::size_t kPayloadBytes = 256;

struct Row {
  std::size_t assocs = 0;
  std::size_t established = 0;
  double establish_wall_s = 0;
  std::size_t delivered = 0;
  double stream_sim_s = 0;
  double stream_wall_s = 0;
  std::uint64_t frames = 0;
  double wall_us_per_frame = 0;
};

Row run(std::size_t n) {
  using WallClock = std::chrono::steady_clock;
  net::Simulator sim;
  net::Network network{sim, /*seed=*/static_cast<std::uint64_t>(n)};
  network.add_node(0);
  network.add_node(1);
  net::LinkConfig link;
  link.latency = net::kMillisecond;
  link.bandwidth_bps = 10'000'000'000;  // keep the link out of the picture
  link.mtu = 65'535;
  network.add_link(0, 1, link);

  core::Config config;
  config.chain_length = 64;
  config.batch_size = kMessagesPerAssoc;  // one full round per association

  core::AlphaNode::Options a_opts;
  a_opts.config = config;
  a_opts.seed = 42;
  core::AlphaNode node_a{std::make_unique<net::SimTransport>(network, 0),
                         a_opts};

  core::AlphaNode::Options b_opts;
  b_opts.config = config;
  b_opts.seed = 43;
  b_opts.accept_inbound = true;
  std::size_t delivered = 0;
  core::AlphaNode::Callbacks b_cbs;
  b_cbs.on_message = [&](std::uint32_t, crypto::ByteView) { ++delivered; };
  core::AlphaNode node_b{std::make_unique<net::SimTransport>(network, 1),
                         b_opts, b_cbs};

  Row row;
  row.assocs = n;

  // Phase 1: establish all N associations concurrently.
  const auto t0 = WallClock::now();
  for (std::size_t a = 0; a < n; ++a) {
    const auto assoc_id = static_cast<std::uint32_t>(a + 1);
    node_a.add_initiator(assoc_id, /*peer=*/1, config);
    node_a.start(assoc_id);
  }
  while (node_a.established_count() < n &&
         sim.now() < 120 * net::kSecond) {
    sim.run_until(sim.now() + net::kSecond);
  }
  row.establish_wall_s =
      std::chrono::duration<double>(WallClock::now() - t0).count();
  row.established = node_a.established_count();

  // Phase 2: stream one round per association.
  const net::SimTime s0 = sim.now();
  const auto w0 = WallClock::now();
  for (std::size_t i = 0; i < kMessagesPerAssoc; ++i) {
    for (std::size_t a = 0; a < n; ++a) {
      node_a.submit(static_cast<std::uint32_t>(a + 1),
                    crypto::Bytes(kPayloadBytes,
                                  static_cast<std::uint8_t>(a)));
    }
  }
  const std::size_t want = n * kMessagesPerAssoc;
  while (delivered < want && sim.now() < s0 + 240 * net::kSecond) {
    sim.run_until(sim.now() + net::kSecond);
  }
  row.stream_wall_s =
      std::chrono::duration<double>(WallClock::now() - w0).count();
  row.stream_sim_s = static_cast<double>(sim.now() - s0) / net::kSecond;
  row.delivered = delivered;

  const auto a_snap = node_a.snapshot();
  const auto b_snap = node_b.snapshot();
  row.frames = a_snap.frames_in + b_snap.frames_in;
  const double total_wall = row.establish_wall_s + row.stream_wall_s;
  row.wall_us_per_frame =
      row.frames == 0 ? 0 : total_wall * 1e6 / static_cast<double>(row.frames);
  return row;
}

}  // namespace

int main() {
  header("Node runtime: N concurrent associations through one node pair "
         "(demux + timer wheel overhead)");

  std::printf("\n%8s %13s %15s %13s %13s %11s %13s\n", "assocs", "established",
              "estab/s (wall)", "delivered", "msg/s (sim)", "frames",
              "us/frame");
  bool ok = true;
  for (const std::size_t n : {1u, 16u, 256u, 1024u}) {
    const Row r = run(n);
    ok = ok && r.established == r.assocs &&
         r.delivered == r.assocs * kMessagesPerAssoc;
    std::printf("%8zu %13zu %15.0f %13zu %13.0f %11llu %13.3f\n", r.assocs,
                r.established,
                r.establish_wall_s > 0
                    ? static_cast<double>(r.established) / r.establish_wall_s
                    : 0.0,
                r.delivered,
                r.stream_sim_s > 0
                    ? static_cast<double>(r.delivered) / r.stream_sim_s
                    : 0.0,
                static_cast<unsigned long long>(r.frames),
                r.wall_us_per_frame);
  }

  std::printf(
      "\nReading: every association is its own hash-chain pair and S1/A1/S2\n"
      "state machine; the runtime adds a 6-byte assoc-id peek and one map\n"
      "lookup per frame, and its timer wheel only ticks associations with a\n"
      "pending deadline. us/frame staying flat as N grows is the point.\n");
  return ok ? 0 : 1;
}
