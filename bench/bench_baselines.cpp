// Baseline comparison: per-message end-to-end protection cost.
//
// The paper's positioning (§1, Table 4): ALPHA sits between symmetric MACs
// (cheap, but invisible to relays) and per-packet public-key signatures
// (verifiable on-path, but orders of magnitude slower). This bench runs one
// message through each scheme end to end on the host.
#include <benchmark/benchmark.h>

#include "baselines/hmac_e2e.hpp"
#include "baselines/hopwise.hpp"
#include "baselines/pk_channel.hpp"
#include "baselines/tesla_like.hpp"
#include "bench_util.hpp"

using namespace alpha;

namespace {

void BM_AlphaRound(benchmark::State& state, bool reliable) {
  core::Config config;
  config.reliable = reliable;
  config.chain_length = 1 << 18;
  bench::TriadFixture fx{config};
  const crypto::Bytes payload(1024, 0x11);
  for (auto _ : state) {
    fx.signer().submit(payload, 0);
    fx.pump();
  }
  if (!fx.signer().can_send()) state.SkipWithError("chain exhausted");
}
BENCHMARK_CAPTURE(BM_AlphaRound, unreliable, false)
    ->Unit(benchmark::kMicrosecond)->Iterations(20000);
BENCHMARK_CAPTURE(BM_AlphaRound, reliable, true)
    ->Unit(benchmark::kMicrosecond)->Iterations(20000);

void BM_HmacE2e(benchmark::State& state) {
  crypto::HmacDrbg rng{1};
  const baselines::HmacChannel ch{crypto::HashAlgo::kSha1,
                                  crypto::MacKind::kHmac, rng.bytes(20)};
  const crypto::Bytes payload(1024, 0x22);
  for (auto _ : state) {
    const auto frame = ch.protect(payload);
    benchmark::DoNotOptimize(ch.verify(frame));
  }
}
BENCHMARK(BM_HmacE2e)->Unit(benchmark::kMicrosecond);

void BM_HopwisePath(benchmark::State& state) {
  crypto::HmacDrbg rng{2};
  const baselines::HopwisePath path{crypto::HashAlgo::kSha1,
                                    crypto::MacKind::kHmac,
                                    static_cast<std::size_t>(state.range(0)),
                                    rng};
  const crypto::Bytes payload(1024, 0x33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(path.transmit(payload));
  }
}
BENCHMARK(BM_HopwisePath)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_TeslaRoundtrip(benchmark::State& state) {
  baselines::TeslaConfig tc;
  tc.chain_length = 1 << 16;
  const baselines::TeslaSender sender{tc, crypto::Bytes(20, 1), 0};
  const crypto::Bytes payload(1024, 0x44);
  std::uint64_t t = 0;
  baselines::TeslaReceiver receiver{tc, sender.anchor(), 0};
  for (auto _ : state) {
    const auto frame = sender.protect(payload, t);
    benchmark::DoNotOptimize(receiver.on_packet(frame, t + 1000));
    t += tc.epoch_us;  // one packet per epoch keeps the chain advancing
  }
}
BENCHMARK(BM_TeslaRoundtrip)->Unit(benchmark::kMicrosecond)->Iterations(20000);

void BM_PkPerPacket(benchmark::State& state) {
  crypto::HmacDrbg rng{5};
  const core::Identity id = core::Identity::make_rsa(rng, 1024);
  const baselines::PkChannel ch{id, crypto::HashAlgo::kSha1, rng};
  const crypto::Bytes pub = id.encode_public();
  const crypto::Bytes payload(1024, 0x55);
  for (auto _ : state) {
    const auto frame = ch.protect(payload);
    benchmark::DoNotOptimize(baselines::PkChannel::verify(
        frame, wire::SigAlg::kRsa, pub, crypto::HashAlgo::kSha1));
  }
}
BENCHMARK(BM_PkPerPacket)->Unit(benchmark::kMicrosecond)->Iterations(50);

}  // namespace

BENCHMARK_MAIN();
