// §4.1.3 -- ALPHA-C on sensor nodes (CC2430, AES-MMO).
//
// Paper: with the MMO hash on the CC2430's AES hardware (0.78 ms / 16 B,
// 2.01 ms / 84 B), 100 B packet payloads and 5 pre-signatures per S1,
// relays verify up to ~244 kbit/s of signed payload in ~460 S2 packets/s --
// close to the 250 kbit/s IEEE 802.15.4 ceiling; pre-acks reduce this to
// ~156.56 kbit/s in ~334 packets.
//
// Reproduced from the CC2430 model, with a functional AES-MMO check on the
// host (same construction, software AES).
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "crypto/ec.hpp"
#include "crypto/mmo.hpp"
#include "platform/estimators.hpp"

using namespace alpha;
using namespace alpha::bench;
using Clock = std::chrono::steady_clock;

namespace {
volatile std::size_t benchmark_sink = 0;
}

int main() {
  header("§4.1.3: ALPHA-C on the CC2430 sensor platform (MMO hash, 100 B "
         "packets, 5 pre-signatures per S1)");

  const auto dev = platform::devices::cc2430();
  const auto plain = platform::estimate_wsn_alpha_c(dev, 100, 5, false);
  const auto reliable = platform::estimate_wsn_alpha_c(dev, 100, 5, true);

  std::printf("\n%-28s %12s %12s %14s\n", "mode", "pkt/s", "goodput",
              "paper");
  std::printf("%-28s %12.0f %9.1f kbit/s  (460 pkt/s, 244 kbit/s)\n",
              "unacknowledged", plain.packets_per_s, plain.goodput_kbps);
  std::printf("%-28s %12.0f %9.1f kbit/s  (334 pkt/s, 156.56 kbit/s)\n",
              "with pre-acks", reliable.packets_per_s, reliable.goodput_kbps);
  std::printf("\nIEEE 802.15.4 ceiling: 250 kbit/s -> ALPHA-C verification "
              "keeps up with the radio (%s)\n",
              plain.goodput_kbps < 250.0 ? "OK, just below" : "check");

  std::printf("\nECC comparison (paper, Gura et al.): one 160-bit point "
              "multiplication ~810 ms on an 8 MHz ATmega128 -- vs %.2f ms "
              "per ALPHA-verified packet here, a ~%.0fx gap.\n",
              plain.per_packet_ms, 810.0 / plain.per_packet_ms);

  // Our own from-scratch secp160r1: one scalar multiplication on this host,
  // for the same per-packet-PK-is-prohibitive argument.
  {
    const auto& curve = crypto::EcCurve::secp160r1();
    crypto::HmacDrbg rng{0xec};
    const crypto::BigInt k = crypto::BigInt::random_below(rng, curve.order());
    const auto t0 = Clock::now();
    const int iters = 5;
    for (int i = 0; i < iters; ++i) {
      benchmark_sink =
          benchmark_sink + curve.multiply(k, curve.generator()).x.bit_length();
    }
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
        iters;
    std::printf("host secp160r1 point multiplication: %.1f ms -> per-packet "
                "ECC remains prohibitive next to a %.5f ms MMO hash, "
                "matching the paper's conclusion that ECC belongs in the "
                "bootstrap only (§3.4).\n",
                ms, dev.hash.cost_us(16) / 1000.0 / 1000.0);
  }

  // Functional MMO cost on this host (software AES-128): the same two input
  // sizes the paper measured on hardware.
  for (const std::size_t size : {16u, 84u}) {
    crypto::Bytes buf(size, 0x33);
    volatile std::uint8_t sink = 0;
    const int iters = 20000;
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      crypto::MmoHash h;
      h.update(buf);
      sink = sink ^ h.finalize().data()[0];
    }
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
        iters;
    (void)sink;
    std::printf("host AES-MMO over %3zu B: %.5f ms (CC2430 hardware: %.2f "
                "ms)\n",
                size, ms, dev.hash.cost_us(size) / 1000.0);
  }
  return 0;
}
