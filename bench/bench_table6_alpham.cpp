// Table 6 -- ALPHA-M estimates on mesh routers.
//
// Paper (Table 6): for Merkle trees of 16..1024 leaves with 1024 B packets:
// per-packet processing time (AR2315 / Geode), per-packet payload,
// verifiable-throughput upper bound (AR / Geode), and signed data per S1.
//
// Reproduced from the same derivation (payload from Eq. 1; processing =
// one packet-sized hash + log2(n) node hashes; throughput = payload bits
// over processing plus the amortized S1 share). The paper's printed values
// are shown alongside. Note: the paper's Geode processing column is
// internally inconsistent with its own Table 5 costs (it increments by the
// Geode's 1024 B cost per tree level instead of its 20 B cost); our Geode
// column follows the physically meaningful derivation, which is why it is
// lower than the printed one while the AR column matches within rounding.
#include <cstdio>

#include "bench_util.hpp"
#include "platform/estimators.hpp"

using namespace alpha;
using namespace alpha::bench;

int main() {
  header("Table 6: ALPHA-M estimates (1024 B packets, 20 B hashes)");

  const struct {
    std::size_t leaves;
    double paper_proc_ar, paper_proc_geode;
    std::size_t paper_payload;
    double paper_tput_ar, paper_tput_geode;
    double paper_data_per_s1;
  } paper_rows[] = {
      {16, 599, 258, 924, 11.8, 27.3, 0.1},
      {32, 660, 320, 904, 10.4, 21.5, 0.2},
      {64, 718, 382, 884, 9.4, 17.7, 0.4},
      {128, 778, 444, 864, 8.5, 14.8, 0.8},
      {256, 837, 505, 844, 7.7, 12.7, 1.6},
      {512, 897, 567, 824, 7.0, 11.1, 3.2},
      {1024, 956, 629, 804, 6.4, 9.8, 6.3},
  };

  const auto ar = platform::devices::ar2315();
  const auto geode = platform::devices::geode_lx();

  std::printf("\n%6s | %-21s | %-17s | %-23s | %-14s\n", "leaves",
              "processing us (AR/Geo)", "payload B", "throughput Mbit/s",
              "data per S1 Mbit");
  std::printf("%6s | %10s %10s | %8s %8s | %11s %11s | %6s %7s\n", "", "ours",
              "paper", "ours", "paper", "ours AR/Geo", "paper", "ours",
              "paper");
  for (const auto& row : paper_rows) {
    const auto est_ar = platform::estimate_alpha_m(ar, row.leaves, 1024);
    const auto est_geode = platform::estimate_alpha_m(geode, row.leaves, 1024);
    std::printf(
        "%6zu | %4.0f/%4.0f  %4.0f/%4.0f | %8zu %8zu | %4.1f/%4.1f  "
        "%4.1f/%4.1f | %6.2f %7.1f\n",
        row.leaves, est_ar.processing_us, est_geode.processing_us,
        row.paper_proc_ar, row.paper_proc_geode, est_ar.payload_bytes,
        row.paper_payload, est_ar.throughput_mbps, est_geode.throughput_mbps,
        row.paper_tput_ar, row.paper_tput_geode, est_ar.data_per_s1_mbit,
        row.paper_data_per_s1);
  }

  std::printf("\nShape checks: throughput falls and data-per-S1 grows with "
              "leaf count on both devices -- the paper's trade-off (§4.1.2).\n");
  return 0;
}
