// Micro-benchmarks: the public-key baselines (from-scratch bignum RSA/DSA).
//
// Supports Table 4's comparison rows and quantifies why the paper restricts
// asymmetric cryptography to the bootstrap handshake (§3.4).
#include <benchmark/benchmark.h>

#include "crypto/dsa.hpp"
#include "crypto/ec.hpp"
#include "crypto/rsa.hpp"

using namespace alpha::crypto;

namespace {

const RsaPrivateKey& rsa_key(std::size_t bits) {
  static std::map<std::size_t, RsaPrivateKey> cache;
  const auto it = cache.find(bits);
  if (it != cache.end()) return it->second;
  HmacDrbg rng{bits};
  return cache.emplace(bits, rsa_generate(rng, bits)).first->second;
}

const DsaPrivateKey& dsa_key() {
  static const DsaPrivateKey key = [] {
    HmacDrbg rng{1601};
    return dsa_generate_key(rng, dsa_generate_params(rng, 1024, 160));
  }();
  return key;
}

void BM_RsaSign(benchmark::State& state) {
  const auto& key = rsa_key(static_cast<std::size_t>(state.range(0)));
  const auto msg = as_bytes("per-packet signature baseline");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign(key, HashAlgo::kSha1, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_RsaVerify(benchmark::State& state) {
  const auto& key = rsa_key(static_cast<std::size_t>(state.range(0)));
  const auto msg = as_bytes("per-packet signature baseline");
  const Bytes sig = rsa_sign(key, HashAlgo::kSha1, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_verify(key.pub, HashAlgo::kSha1, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_DsaSign(benchmark::State& state) {
  const auto& key = dsa_key();
  HmacDrbg rng{7};
  const auto msg = as_bytes("per-packet signature baseline");
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsa_sign(key, HashAlgo::kSha1, msg, rng));
  }
}
BENCHMARK(BM_DsaSign)->Unit(benchmark::kMillisecond);

void BM_DsaVerify(benchmark::State& state) {
  const auto& key = dsa_key();
  HmacDrbg rng{8};
  const auto msg = as_bytes("per-packet signature baseline");
  const DsaSignature sig = dsa_sign(key, HashAlgo::kSha1, msg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsa_verify(key.pub, HashAlgo::kSha1, msg, sig));
  }
}
BENCHMARK(BM_DsaVerify)->Unit(benchmark::kMillisecond);

void BM_EcdsaSign(benchmark::State& state, const EcCurve& curve) {
  HmacDrbg rng{0xecc};
  const EcdsaPrivateKey key = ecdsa_generate(curve, rng);
  const auto msg = as_bytes("anchor signing on sensors");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa_sign(key, HashAlgo::kSha1, msg, rng));
  }
}
BENCHMARK_CAPTURE(BM_EcdsaSign, secp160r1, EcCurve::secp160r1())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EcdsaSign, p256, EcCurve::p256())
    ->Unit(benchmark::kMillisecond);

void BM_EcdsaVerify(benchmark::State& state, const EcCurve& curve) {
  HmacDrbg rng{0xecd};
  const EcdsaPrivateKey key = ecdsa_generate(curve, rng);
  const auto msg = as_bytes("anchor signing on sensors");
  const EcdsaSignature sig = ecdsa_sign(key, HashAlgo::kSha1, msg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa_verify(key.pub, HashAlgo::kSha1, msg, sig));
  }
}
BENCHMARK_CAPTURE(BM_EcdsaVerify, secp160r1, EcCurve::secp160r1())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EcdsaVerify, p256, EcCurve::p256())
    ->Unit(benchmark::kMillisecond);

void BM_EcPointMultiply(benchmark::State& state) {
  // The Gura et al. comparison point from §4.1.3: one 160-bit scalar
  // multiplication (0.81 s on an 8 MHz ATmega128).
  const EcCurve& curve = EcCurve::secp160r1();
  HmacDrbg rng{0xecf};
  const BigInt k = BigInt::random_below(rng, curve.order());
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.multiply(k, curve.generator()));
  }
}
BENCHMARK(BM_EcPointMultiply)->Unit(benchmark::kMillisecond);

void BM_RsaKeygen(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    HmacDrbg rng{seed++};
    benchmark::DoNotOptimize(rsa_generate(rng, 512));
  }
}
BENCHMARK(BM_RsaKeygen)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
