// §4.1.2 -- ALPHA-C verifiable-throughput upper bounds for WMNs.
//
// Paper: with 1024 B payloads and 20 cumulative pre-signatures per S1, the
// commodity routers (AR2315, BCM5365) verify about 20 Mbit/s and the Geode
// about 120 Mbit/s; the SHA-1 MAC accounts for 99% of the cost.
//
// Reproduced from the device models plus a host-measured functional check:
// the real verifier engine processes a 20-message round and the measured MAC
// share of total hashing cost is reported.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "crypto/counter.hpp"
#include "crypto/mac.hpp"
#include "platform/estimators.hpp"

using namespace alpha;
using namespace alpha::bench;
using Clock = std::chrono::steady_clock;

int main() {
  header("§4.1.2: ALPHA-C throughput upper bounds (1024 B payload, 20 "
         "pre-signatures per S1)");

  const struct {
    platform::DeviceSpec dev;
    double paper_mbps;
  } rows[] = {
      {platform::devices::ar2315(), 20.0},
      {platform::devices::bcm5365(), 20.0},
      {platform::devices::geode_lx(), 120.0},
  };

  std::printf("\n%-44s %16s %14s %12s\n", "device", "per-packet (us)",
              "ours (Mbit/s)", "paper");
  for (const auto& row : rows) {
    const auto est = platform::estimate_alpha_c(row.dev, 1024, 20);
    std::printf("%-44s %16.1f %14.1f %9.0f\n", row.dev.name.c_str(),
                est.per_packet_us, est.throughput_mbps, row.paper_mbps);
  }

  // Functional cross-check on this host: drive the real engines through a
  // 20-message ALPHA-C round and split hashing work between MAC and chain
  // verification.
  core::Config config;
  config.mode = wire::Mode::kCumulative;
  config.batch_size = 20;
  TriadFixture fx{config};
  crypto::HashOpCounter::reset();
  for (int i = 0; i < 20; ++i) fx.signer().submit(crypto::Bytes(1024, 1), 0);
  fx.pump();
  const auto& v = fx.verifier().stats().hashes;
  // MAC hashing dominates: each HMAC consumes the 1024 B payload while the
  // chain check hashes ~22 B. Estimate the byte-weighted cost share.
  const double mac_bytes = 20.0 * 1024.0;
  const double chain_bytes =
      static_cast<double>(v.chain_verify) * 22.0;
  std::printf("\nfunctional check (real verifier, this host): MAC share of "
              "hashed bytes = %.1f%% (paper: ~99%%)\n",
              100.0 * mac_bytes / (mac_bytes + chain_bytes));

  // Host throughput for the same configuration, measured.
  crypto::Bytes key(20, 7), payload(1024, 9);
  volatile std::uint8_t sink = 0;
  const int iters = 20000;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    sink = sink ^
           crypto::hmac(crypto::HashAlgo::kSha1, key, payload).data()[0];
  }
  const double per_packet_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count() /
      iters;
  std::printf("this host: %.1f us per 1024 B MAC -> %.0f Mbit/s verifiable "
              "upper bound\n",
              per_packet_us, 1024 * 8 / per_packet_us);
  (void)sink;
  return 0;
}
