// Table 4 -- ALPHA signature-step delays vs. RSA/DSA.
//
// Paper (Table 4): per-step processing time of the ALPHA signature exchange
// (send S1, process S1 + send A1, process A1 + send S2, verify S2 + send A2,
// process A2; sender/receiver totals) measured on a Nokia 770 and a Xeon
// 3.2 GHz as the mean of 300 signatures, next to SHA-1, RSA-1024 and
// DSA-1024 primitives.
//
// This harness measures the same five steps of this implementation on the
// host (mean of 300 reliable rounds, 64 B signaling payload), measures the
// from-scratch SHA-1 / RSA-1024 / DSA-1024, and adds device-scaled
// estimates: host step time x (device hash cost / host hash cost), since the
// steps are hash-dominated. The paper's numbers are printed for comparison.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "crypto/dsa.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha1.hpp"
#include "platform/devices.hpp"

using namespace alpha;
using namespace alpha::bench;
using Clock = std::chrono::steady_clock;

namespace {

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

struct StepTimes {
  double send_s1 = 0, process_s1 = 0, process_a1 = 0, verify_s2 = 0,
         process_a2 = 0;
  double sender_total() const { return send_s1 + process_a1 + process_a2; }
  double receiver_total() const { return process_s1 + verify_s2; }
};

StepTimes measure_alpha_steps(int rounds) {
  core::Config config;
  config.reliable = true;
  config.chain_length = static_cast<std::size_t>(2 * rounds + 16);

  crypto::HmacDrbg rng{1};
  auto sig_chain = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng,
      config.chain_length);
  auto ack_chain = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, rng,
      config.chain_length);

  std::vector<crypto::Bytes> to_verifier, to_signer;
  core::SignerEngine::Callbacks scb;
  scb.send = [&](crypto::Bytes f) { to_verifier.push_back(std::move(f)); };
  core::SignerEngine signer{config, 1, sig_chain, ack_chain.anchor(),
                            ack_chain.length(), std::move(scb)};
  core::VerifierEngine::Callbacks vcb;
  vcb.send = [&](crypto::Bytes f) { to_signer.push_back(std::move(f)); };
  core::VerifierEngine verifier{config,
                                1,
                                ack_chain,
                                sig_chain.anchor(),
                                sig_chain.length(),
                                std::move(vcb),
                                rng};

  StepTimes sum;
  const crypto::Bytes payload(64, 0x42);  // HIP-signaling-sized message

  for (int i = 0; i < rounds; ++i) {
    to_verifier.clear();
    to_signer.clear();

    auto t0 = Clock::now();
    signer.submit(payload, 0);  // creates MAC + S1
    sum.send_s1 += us_since(t0);
    const auto s1 = std::get<wire::S1Packet>(*wire::decode(to_verifier.back()));

    t0 = Clock::now();
    verifier.on_s1(s1);  // verify chain element, pre-acks, emit A1
    sum.process_s1 += us_since(t0);
    const auto a1 = std::get<wire::A1Packet>(*wire::decode(to_signer.back()));

    t0 = Clock::now();
    signer.on_a1(a1, 0);  // verify ack element, emit S2
    sum.process_a1 += us_since(t0);
    const auto s2 = std::get<wire::S2Packet>(*wire::decode(to_verifier.back()));

    t0 = Clock::now();
    verifier.on_s2(s2);  // verify disclosure + MAC, emit A2
    sum.verify_s2 += us_since(t0);
    const auto a2 = std::get<wire::A2Packet>(*wire::decode(to_signer.back()));

    t0 = Clock::now();
    signer.on_a2(a2, 0);  // verify (n)ack
    sum.process_a2 += us_since(t0);
  }

  const double inv = 1.0 / rounds;
  return {sum.send_s1 * inv, sum.process_s1 * inv, sum.process_a1 * inv,
          sum.verify_s2 * inv, sum.process_a2 * inv};
}

template <typename F>
double time_ms(int iters, F&& fn) {
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) fn();
  return us_since(t0) / (1000.0 * iters);
}

}  // namespace

int main() {
  header("Table 4: ALPHA, RSA and DSA delay (measured on this host, scaled "
         "to the paper's devices)");

  const int kRounds = 300;  // the paper's sample count
  const auto steps = measure_alpha_steps(kRounds);

  // Host SHA-1 cost for the device-scaling factor.
  crypto::Bytes buf(64, 0xaa);
  volatile std::uint8_t sink = 0;
  const double host_sha1_ms = time_ms(20000, [&] {
    crypto::Sha1 h;
    h.update(buf);
    sink = sink ^ h.finalize().data()[0];
  });

  const auto nokia = platform::devices::nokia770();
  const auto xeon = platform::devices::xeon();
  const double nokia_scale = nokia.hash.cost_us(64) / (host_sha1_ms * 1000.0);
  const double xeon_scale = xeon.hash.cost_us(64) / (host_sha1_ms * 1000.0);

  std::printf("\n%-22s %10s %14s %14s | %10s %10s\n", "step (mean of 300)",
              "host (ms)", "Nokia est (ms)", "Xeon est (ms)", "paper N770",
              "paper Xeon");
  const struct {
    const char* name;
    double host_us;
    double paper_nokia, paper_xeon;
  } rows[] = {
      {"Send S1", steps.send_s1, 0.33, 0.03},
      {"Process S1, send A1", steps.process_s1, 1.47, 0.05},
      {"Process A1, send S2", steps.process_a1, 1.52, 0.05},
      {"Verify S2, send A2", steps.verify_s2, 1.60, 0.05},
      {"Process A2", steps.process_a2, 0.49, 0.05},
      {"Sender (total)", steps.sender_total(), 2.34, 0.13},
      {"Receiver (total)", steps.receiver_total(), 3.07, 0.10},
  };
  for (const auto& row : rows) {
    std::printf("%-22s %10.4f %14.3f %14.4f | %10.2f %10.2f\n", row.name,
                row.host_us / 1000.0, row.host_us * nokia_scale / 1000.0,
                row.host_us * xeon_scale / 1000.0, row.paper_nokia,
                row.paper_xeon);
  }

  std::printf("\nPrimitives on this host (from-scratch implementations):\n");
  std::printf("%-22s %10.4f ms                        | %10.2f %10.2f\n",
              "SHA-1 hash (64 B)", host_sha1_ms, 0.02, 0.01);

  crypto::HmacDrbg rng{0xca11};
  const auto rsa = crypto::rsa_generate(rng, 1024);
  const auto msg = crypto::as_bytes("table four baseline message");
  crypto::Bytes sig;
  const double rsa_sign_ms =
      time_ms(20, [&] { sig = crypto::rsa_sign(rsa, crypto::HashAlgo::kSha1, msg); });
  volatile bool ok = false;
  const double rsa_verify_ms = time_ms(50, [&] {
    ok = crypto::rsa_verify(rsa.pub, crypto::HashAlgo::kSha1, msg, sig);
  });
  std::printf("%-22s %10.3f ms                        | %10.2f %10.2f\n",
              "RSA-1024 sign", rsa_sign_ms, 181.32, 9.09);
  std::printf("%-22s %10.3f ms                        | %10.2f %10.2f\n",
              "RSA-1024 verify", rsa_verify_ms, 10.53, 0.15);

  const auto dsa_params = crypto::dsa_generate_params(rng, 1024, 160);
  const auto dsa = crypto::dsa_generate_key(rng, dsa_params);
  crypto::DsaSignature dsig;
  const double dsa_sign_ms = time_ms(20, [&] {
    dsig = crypto::dsa_sign(dsa, crypto::HashAlgo::kSha1, msg, rng);
  });
  const double dsa_verify_ms = time_ms(20, [&] {
    ok = crypto::dsa_verify(dsa.pub, crypto::HashAlgo::kSha1, msg, dsig);
  });
  std::printf("%-22s %10.3f ms                        | %10.2f %10.2f\n",
              "DSA-1024 sign", dsa_sign_ms, 96.71, 1.34);
  std::printf("%-22s %10.3f ms                        | %10.2f %10.2f\n",
              "DSA-1024 verify", dsa_verify_ms, 118.73, 1.61);

  std::printf("\nShape check: full ALPHA exchange vs. one public-key op\n");
  std::printf("  ALPHA sender+receiver total: %.4f ms\n",
              (steps.sender_total() + steps.receiver_total()) / 1000.0);
  std::printf("  cheapest PK op (RSA verify): %.3f ms  (ALPHA %.0fx cheaper "
              "than RSA sign)\n",
              rsa_verify_ms,
              rsa_sign_ms /
                  ((steps.sender_total() + steps.receiver_total()) / 1000.0));
  (void)sink;
  (void)ok;
  return 0;
}
