// Extension figure -- energy on sensor relays (the §1 motivation, in
// joules).
//
// Per-message relay energy (CPU + radio) on a CC2430-class node for: a
// blind forwarder, ALPHA-C verification, and per-packet ECC -- plus the
// §3.5 flood scenario priced in energy: how many joules a 6-hop downstream
// path burns carrying forged traffic, with and without ALPHA's first-hop
// filtering. Model constants are stated in src/platform/energy.hpp.
#include <cstdio>

#include "bench_util.hpp"
#include "platform/energy.hpp"

using namespace alpha;
using namespace alpha::bench;

int main() {
  header("Extension: relay energy per message on a CC2430-class node "
         "(100 B packets, 5 pre-signatures per S1)");

  const auto dev = platform::devices::cc2430();
  const platform::EnergyModel energy;

  const auto blind = platform::estimate_blind_energy(energy, 100);
  const auto alpha_c = platform::estimate_alpha_c_energy(dev, energy, 100, 5);
  const auto ecc = platform::estimate_ecc_energy(energy, 100);

  std::printf("\n%-34s %12s %12s %12s\n", "relay behaviour", "CPU (uJ)",
              "radio (uJ)", "total (uJ)");
  std::printf("%-34s %12.1f %12.1f %12.1f\n",
              "blind forwarding (no security)", blind.cpu_uj, blind.radio_uj,
              blind.total_uj());
  std::printf("%-34s %12.1f %12.1f %12.1f\n", "ALPHA-C verify-and-forward",
              alpha_c.cpu_uj, alpha_c.radio_uj, alpha_c.total_uj());
  std::printf("%-34s %12.1f %12.1f %12.1f\n",
              "per-packet ECC verify (Gura)", ecc.cpu_uj, ecc.radio_uj,
              ecc.total_uj());
  std::printf("\nALPHA's verification overhead over blind forwarding: "
              "%.0f%% -- vs %.0fx for per-packet ECC.\n",
              100.0 * (alpha_c.total_uj() - blind.total_uj()) /
                  blind.total_uj(),
              ecc.total_uj() / blind.total_uj());

  std::printf("\n-- §3.5 flood, priced in energy (6 downstream hops) --\n");
  std::printf("%10s %18s %18s %10s\n", "frames", "with ALPHA (J)",
              "without (J)", "saving");
  for (const std::size_t frames : {100u, 1000u, 10000u, 100000u}) {
    const auto flood =
        platform::estimate_flood_energy(dev, energy, 6, frames, 100);
    std::printf("%10zu %18.3f %18.3f %9.0fx\n", frames, flood.with_alpha_j,
                flood.without_alpha_j,
                flood.without_alpha_j / flood.with_alpha_j);
  }
  std::printf("\nReading: first-hop filtering turns a flood from a "
              "path-wide battery drain into a bounded cost at the entry "
              "relay -- the energy form of \"unsolicited data cannot "
              "propagate far beyond its source\".\n");
  return 0;
}
