// Extension figure -- simulator-measured goodput vs. batch size per mode.
//
// The paper's bandwidth-adaptation argument (§3.3): the strictly sequential
// base exchange caps throughput at one message per 1.5 RTT, while ALPHA-C/M
// amortize the S1/A1 round trip over n messages. This bench measures
// end-to-end goodput on a 3-hop simulated path (5 ms/hop, 54 Mbit/s links)
// as the batch size grows, for every mode -- the protocol-level counterpart
// of the analytical Table 6.
#include <cstdio>

#include "bench_util.hpp"
#include "core/path.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

double measure_goodput_mbps(wire::Mode mode, std::size_t batch,
                            std::size_t messages, std::size_t msg_size) {
  net::Simulator sim;
  net::Network network{sim, 11};
  for (net::NodeId id = 0; id <= 3; ++id) network.add_node(id);
  net::LinkConfig link;
  link.latency = 5 * net::kMillisecond;
  link.bandwidth_bps = 54'000'000;
  link.mtu = 1500;
  for (net::NodeId id = 0; id < 3; ++id) network.add_link(id, id + 1, link);

  core::Config config;
  config.mode = mode;
  config.batch_size = batch;
  config.merkle_group = 8;
  config.chain_length = 8192;

  core::ProtectedPath path{network, {0, 1, 2, 3}, config, 1, 7};
  path.start(/*tick_horizon_us=*/3600 * net::kSecond);
  sim.run_until(net::kSecond);
  if (!path.initiator().established()) return 0.0;

  const net::SimTime t0 = sim.now();
  for (std::size_t i = 0; i < messages; ++i) {
    path.initiator().submit(crypto::Bytes(msg_size, 0x42), sim.now());
  }
  while (path.delivered_to_responder().size() < messages &&
         sim.now() < t0 + 3000 * net::kSecond) {
    sim.run_until(sim.now() + 100 * net::kMillisecond);
  }
  const double elapsed_s = static_cast<double>(sim.now() - t0) / net::kSecond;
  return static_cast<double>(path.delivered_to_responder().size() * msg_size *
                             8) /
         (elapsed_s * 1e6);
}

}  // namespace

int main() {
  header("Extension figure: end-to-end goodput vs. batch size "
         "(3 hops, 5 ms/hop, 54 Mbit/s, 1200 B messages)");

  const std::size_t batches[] = {1, 4, 16, 64};
  std::printf("\n%-10s", "batch n");
  for (const auto b : batches) std::printf(" %9zu", b);
  std::printf("   (goodput, Mbit/s)\n");

  const struct {
    const char* name;
    wire::Mode mode;
  } modes[] = {
      {"base", wire::Mode::kBase},
      {"ALPHA-C", wire::Mode::kCumulative},
      {"ALPHA-M", wire::Mode::kMerkle},
      {"ALPHA-C+M", wire::Mode::kCumulativeMerkle},
  };

  for (const auto& m : modes) {
    std::printf("%-10s", m.name);
    for (const auto b : batches) {
      if (m.mode == wire::Mode::kBase && b > 1) {
        std::printf(" %9s", "-");  // base mode has no batching
        continue;
      }
      const double mbps = measure_goodput_mbps(m.mode, b, 256, 1200);
      std::printf(" %9.2f", mbps);
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading: base mode is capped at ~1 message / 1.5 RTT (0.3 Mbit/s\n"
      "here); batching amortizes the S1/A1 exchange so goodput scales nearly\n"
      "linearly with n until link bandwidth and serialization dominate --\n"
      "the adaptation range the paper's §3.3 claims.\n");
  return 0;
}
