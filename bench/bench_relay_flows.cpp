// §3.1.1 -- relay scalability with the number of flows.
//
// Paper: "On forwarding devices in particular, pre-signatures offer
// significantly better scalability with the number of flows than regularly
// signed messages." This harness runs one real relay engine with an
// increasing number of concurrent associations, each holding a pending
// 16-message round of 1000 B messages, and reports the relay's actual
// buffer occupancy -- next to what buffering whole messages (no
// pre-signatures) would cost, and the ALPHA-M variant (one root per round).
#include <cstdio>

#include "bench_util.hpp"
#include "core/relay.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

std::size_t relay_bytes_for_flows(std::size_t flows, wire::Mode mode) {
  core::Config config;
  config.mode = mode;
  config.batch_size = 16;
  config.chain_length = 128;

  core::RelayEngine::Callbacks cb;
  cb.forward = [](core::Direction, crypto::ByteView) {};
  core::RelayEngine relay{config, core::RelayEngine::Options{},
                          std::move(cb)};

  crypto::HmacDrbg rng{77};
  for (std::size_t f = 0; f < flows; ++f) {
    const std::uint32_t assoc = static_cast<std::uint32_t>(f + 1);
    auto sig = hashchain::HashChain::generate(
        config.algo, hashchain::ChainTagging::kRoleBound, rng, 128);
    auto ack = hashchain::HashChain::generate(
        config.algo, hashchain::ChainTagging::kRoleBound, rng, 128);

    wire::HandshakePacket hs;
    hs.hdr = {assoc, 1};
    hs.algo = config.algo;
    hs.chain_length = 128;
    hs.sig_anchor = sig.anchor();
    hs.sig_anchor_index = 128;
    hs.ack_anchor = ack.anchor();
    hs.ack_anchor_index = 128;
    relay.on_frame(core::Direction::kForward, hs.encode());

    // One pending 16-message round per flow.
    std::vector<crypto::Bytes> frames;
    core::SignerEngine::Callbacks scb;
    scb.send = [&](crypto::Bytes fr) { frames.push_back(std::move(fr)); };
    core::SignerEngine signer{config, assoc, sig, ack.anchor(), 128,
                              std::move(scb)};
    for (int i = 0; i < 16; ++i) signer.submit(crypto::Bytes(1000, 0x42), 0);
    relay.on_frame(core::Direction::kForward, frames.at(0));  // the S1
  }
  return relay.buffered_bytes();
}

}  // namespace

int main() {
  header("§3.1.1: relay buffer occupancy vs. concurrent flows "
         "(16 x 1000 B messages pending per flow)");

  std::printf("\n%8s %16s %16s %20s\n", "flows", "ALPHA-C (B)",
              "ALPHA-M (B)", "no pre-sigs (B)");
  for (const std::size_t flows : {1u, 8u, 64u, 256u, 1024u}) {
    const std::size_t alpha_c =
        relay_bytes_for_flows(flows, wire::Mode::kCumulative);
    const std::size_t alpha_m =
        relay_bytes_for_flows(flows, wire::Mode::kMerkle);
    // Without pre-signatures the relay would hold the messages themselves
    // until the disclosure arrives: n*(m+h) per flow.
    const std::size_t full = flows * 16 * (1000 + 20);
    std::printf("%8zu %16zu %16zu %20zu\n", flows, alpha_c, alpha_m, full);
  }

  std::printf(
      "\nReading: per flow, a pending round costs the relay 320 B of MACs\n"
      "(ALPHA-C) or one 20 B root (ALPHA-M) instead of ~16 kB of payload --\n"
      "the 'significantly better scalability with the number of flows' and\n"
      "the reason memory-exhaustion attacks on relays get harder (§3.1.1).\n");
  return 0;
}
