// Figure 5 -- signed bytes per S1 pre-signature (Eq. 1).
//
// Paper (Fig. 5): total payload covered by one S1 as a function of the
// number of S2 packets, for total packet sizes 1280 / 512 / 256 / 128 bytes
// with 20-byte hashes; see-saw pattern as {Bc} grows by one level at every
// power of two.
//
// Printed as series rows (log-spaced n plus the points around each power of
// two to expose the see-saw). For feasible small n the closed form is also
// validated against actual encoded S2 packets.
#include <cmath>

#include "bench_util.hpp"
#include "merkle/merkle.hpp"
#include "platform/estimators.hpp"
#include "wire/packets.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

// Empirical check: build a real ALPHA-M batch of n messages sized so every
// encoded S2 is exactly `packet_size` bytes, and count signed payload.
std::size_t empirical_signed_bytes(std::size_t n, std::size_t packet_size,
                                   std::size_t hash_size) {
  const auto per_packet =
      platform::alpha_m_payload_per_packet(n, packet_size, hash_size);
  if (!per_packet.has_value()) return 0;
  // Per-packet payload from Eq. 1 covers ALPHA signature data only (chain
  // element + {Bc}); build the packet and check the signature share matches.
  std::vector<crypto::Bytes> msgs(n, crypto::Bytes(*per_packet, 0xab));
  const merkle::MerkleTree tree{crypto::HashAlgo::kSha1, msgs};

  std::size_t total = 0;
  for (std::size_t j = 0; j < n; ++j) {
    wire::S2Packet s2;
    s2.mode = wire::Mode::kMerkle;
    s2.disclosed_element =
        crypto::Digest{crypto::ByteView{crypto::Bytes(hash_size, 1)}};
    s2.msg_index = static_cast<std::uint16_t>(j);
    s2.path = wire::WirePath::from_auth_path(tree.auth_path(j));
    s2.payload = msgs[j];
    const std::size_t frame = s2.encode().size();
    // Signature bytes in the frame: disclosed element + {Bc} digests.
    const std::size_t sig_bytes =
        hash_size + s2.path->siblings.size() * hash_size;
    // Eq. 1 charges exactly (depth+1) hashes; confirm.
    if (sig_bytes != hash_size * (platform::ceil_log2(n) + 1)) return 0;
    (void)frame;
    total += msgs[j].size();
  }
  return total;
}

}  // namespace

int main() {
  header("Figure 5: signed bytes per S1 pre-signature vs. number of S2 "
         "packets (Eq. 1; h = 20 B)");

  const std::size_t packet_sizes[] = {1280, 512, 256, 128};

  std::printf("%10s", "n");
  for (const auto ps : packet_sizes) std::printf("  %12zu B", ps);
  std::printf("\n");

  // Log-spaced plus power-of-two +/-1 points for the see-saw.
  std::vector<std::size_t> ns;
  for (double x = 0; x <= 23.5; x += 0.5) {
    ns.push_back(static_cast<std::size_t>(std::llround(std::pow(2.0, x))));
  }
  for (int p = 1; p <= 23; ++p) {
    ns.push_back((1u << p) + 1);
  }
  std::sort(ns.begin(), ns.end());
  ns.erase(std::unique(ns.begin(), ns.end()), ns.end());

  for (const std::size_t n : ns) {
    if (n > 10'000'000) break;
    std::printf("%10zu", n);
    for (const auto ps : packet_sizes) {
      const auto total = platform::eq1_signed_bytes(n, ps, 20);
      if (total.has_value()) {
        std::printf("  %14zu", *total);
      } else {
        std::printf("  %14s", "-");
      }
    }
    std::printf("\n");
  }

  std::printf("\nEmpirical validation (closed form vs. real encoded ALPHA-M "
              "batches):\n");
  for (const std::size_t n : {1u, 2u, 8u, 16u, 64u, 256u}) {
    for (const std::size_t ps : {1280u, 512u, 256u}) {
      const auto closed = platform::eq1_signed_bytes(n, ps, 20);
      const std::size_t measured = empirical_signed_bytes(n, ps, 20);
      std::printf("  n=%4zu packet=%5zu closed-form=%8zu measured=%8zu %s\n",
                  n, ps, closed.value_or(0), measured,
                  closed.value_or(0) == measured ? "OK" : "MISMATCH");
    }
  }
  return 0;
}
