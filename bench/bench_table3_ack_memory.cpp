// Table 3 -- additional memory for n parallel acknowledgments.
//
// Paper (Table 3), hash size h, secret size s:
//   ALPHA / ALPHA-C : 2n*h on signer, verifier and relay (pre-ack pairs)
//   ALPHA-M         : signer h, verifier n*s + (4n-1)h (the AMT), relay h
//
// Reliable rounds are opened and the engines' acknowledgment gauges read
// while the round is in flight (S2s withheld so the (n)acks stay pending).
#include "bench_util.hpp"
#include "platform/estimators.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

void run(wire::Mode mode, platform::AlphaMode pmode, const char* name,
         std::size_t n) {
  core::Config config;
  config.mode = mode;
  config.batch_size = n;
  config.reliable = true;
  config.chain_length = 4096;
  config.secret_size = 16;

  TriadFixture fx{config};
  for (std::size_t i = 0; i < n; ++i) {
    fx.signer().submit(crypto::Bytes(100, 0x11), 0);
  }
  // Full pump lets the A1 through; the verifier keeps its (n)ack state for
  // the round until it retires. Measure right after delivery.
  fx.pump();

  const auto paper = platform::table3_ack_memory(pmode, n, 16, 20);
  std::printf(
      "%-8s n=%4zu | verifier ack state %8zu B (paper %8zu) | relay ack "
      "state %7zu B (paper %6zu)\n",
      name, n, fx.verifier().ack_buffered_bytes(), paper.verifier,
      fx.relay().ack_buffered_bytes(), paper.relay);
}

}  // namespace

int main() {
  header("Table 3: additional memory for n parallel acknowledgments "
         "(measured vs. paper; h = 20 B, s = 16 B)");
  std::printf(
      "Verifier gauge counts both secret sets (2n*s) plus, for ALPHA-M, the\n"
      "AMT nodes ((4n-1)h for power-of-two n) -- the paper's n*s counts only\n"
      "the secrets eventually disclosed. Relay gauge: pre-ack pairs (2n*h)\n"
      "for base/C, one AMT root (h) for ALPHA-M.\n\n");

  for (const std::size_t n : {1u, 4u, 16u, 64u}) {
    run(wire::Mode::kCumulative, platform::AlphaMode::kCumulative, "ALPHA-C",
        n);
  }
  std::printf("\n");
  for (const std::size_t n : {1u, 4u, 16u, 64u}) {
    run(wire::Mode::kMerkle, platform::AlphaMode::kMerkle, "ALPHA-M", n);
  }
  return 0;
}
