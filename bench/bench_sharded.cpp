// Sharded runtime scalability: association capacity and worker scaling.
//
// Two sweeps, one JSON artifact (BENCH_sharded.json):
//
//  * assoc sweep -- one ShardedNode pair over the deterministic simulator
//    (inline drive, so the run is single-threaded and replayable), swept to
//    10^6 concurrent associations. Establishment happens in waves so the
//    simulator's in-flight frame queue stays bounded; each association then
//    streams one authenticated message. Measures establishment rate, wall
//    goodput, and that the rings never overflowed.
//
//  * worker sweep -- two ShardedNodes over real UDP loopback in threaded
//    mode (dedicated I/O thread + N shard workers each), fixed association
//    count spanning every shard, fixed message volume. Measures wall-clock
//    goodput at 1/2/4 workers. hardware_concurrency is recorded so the CI
//    gate (scripts/check_perf_smoke.py --sharded) only enforces monotone
//    scaling where the cores exist to scale onto.
//
//   $ bench_sharded                    # full sweep (10^6 assocs)
//   $ bench_sharded --max-assocs 10000 # calibration run
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/sharded_node.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

// ------------------------------------------------------------- assoc sweep

struct AssocRow {
  std::size_t assocs = 0;
  std::uint32_t workers = 0;
  std::size_t established = 0;
  double establish_wall_s = 0;
  std::size_t delivered = 0;
  double stream_wall_s = 0;
  std::uint64_t ring_overflows = 0;
};

AssocRow run_assoc_sweep(std::size_t n, std::uint32_t workers) {
  net::Simulator sim;
  net::Network network{sim, /*seed=*/static_cast<std::uint64_t>(n)};
  network.add_node(0);
  network.add_node(1);
  net::LinkConfig link;
  link.latency = net::kMillisecond;
  link.bandwidth_bps = 100'000'000'000;  // capacity, not the link, is measured
  link.mtu = 65'535;
  network.add_link(0, 1, link);

  // One round of one message per association; a short chain keeps the
  // per-association establishment cost (chain generation on both ends) and
  // resident state minimal, which is what lets one process hold 10^6 of them.
  core::Config config;
  config.chain_length = 16;
  config.batch_size = 1;

  core::ShardedNode::Options a_opts;
  a_opts.shard.config = config;
  a_opts.shard.seed = 42;
  a_opts.workers = workers;
  core::ShardedNode node_a{std::make_unique<net::SimTransport>(network, 0),
                           a_opts};

  std::size_t delivered = 0;
  core::ShardedNode::Callbacks b_cbs;
  b_cbs.on_message = [&](std::uint32_t, crypto::ByteView) { ++delivered; };
  core::ShardedNode::Options b_opts;
  b_opts.shard.config = config;
  b_opts.shard.seed = 43;
  b_opts.shard.accept_inbound = true;
  core::ShardedNode node_b{std::make_unique<net::SimTransport>(network, 1),
                           b_opts, b_cbs};

  AssocRow row;
  row.assocs = n;
  row.workers = workers;

  // Establish in waves: bounding the in-flight handshakes bounds the
  // simulator's event queue (10^6 simultaneous HS1s would hold every frame
  // buffer live at once).
  const std::size_t kWave = 10'000;
  const auto t0 = WallClock::now();
  for (std::size_t base = 0; base < n; base += kWave) {
    const std::size_t end = base + kWave < n ? base + kWave : n;
    for (std::size_t a = base; a < end; ++a) {
      const auto assoc_id = static_cast<std::uint32_t>(a + 1);
      node_a.add_initiator(assoc_id, /*peer=*/1, config, {});
      node_a.start(assoc_id);
    }
    while (node_a.established_count() < end &&
           sim.now() < (base / kWave + 1) * 600 * net::kSecond) {
      sim.run_until(sim.now() + net::kSecond);
    }
  }
  row.establish_wall_s = seconds_since(t0);
  row.established = node_a.established_count();

  // Stream one message per association, again in waves.
  const auto w0 = WallClock::now();
  for (std::size_t base = 0; base < n; base += kWave) {
    const std::size_t end = base + kWave < n ? base + kWave : n;
    for (std::size_t a = base; a < end; ++a) {
      node_a.submit(static_cast<std::uint32_t>(a + 1),
                    crypto::Bytes(64, static_cast<std::uint8_t>(a)));
    }
    while (delivered < end &&
           sim.now() < (n / kWave + base / kWave + 2) * 600 * net::kSecond) {
      sim.run_until(sim.now() + net::kSecond);
    }
  }
  row.stream_wall_s = seconds_since(w0);
  row.delivered = delivered;

  for (const auto& ss : node_a.shard_stats()) {
    row.ring_overflows += ss.in_overflows + ss.out_overflows;
  }
  for (const auto& ss : node_b.shard_stats()) {
    row.ring_overflows += ss.in_overflows + ss.out_overflows;
  }
  return row;
}

// ------------------------------------------------------------ worker sweep

struct WorkerRow {
  std::uint32_t workers = 0;
  std::size_t assocs = 0;
  std::size_t messages = 0;
  std::size_t delivered = 0;
  double wall_s = 0;
  double goodput_msgs_per_s = 0;
  std::uint64_t ring_overflows = 0;
};

WorkerRow run_worker_sweep(std::uint32_t workers, std::size_t assocs,
                           std::size_t msgs_per_assoc) {
  core::Config config;
  config.reliable = true;  // every message is retransmitted to completion
  config.chain_length = 4096;
  config.rto_us = 50'000;
  config.max_retries = 200;

  auto udp_a = std::make_unique<net::UdpTransport>();
  auto udp_b = std::make_unique<net::UdpTransport>();
  const std::uint16_t port_b = udp_b->port();

  core::ShardedNode::Options a_opts;
  a_opts.shard.config = config;
  a_opts.shard.seed = 7;
  a_opts.workers = workers;
  core::ShardedNode node_a{std::move(udp_a), a_opts};

  std::atomic<std::size_t> delivered{0};
  core::ShardedNode::Callbacks b_cbs;
  b_cbs.on_message = [&](std::uint32_t, crypto::ByteView) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  };
  core::ShardedNode::Options b_opts;
  b_opts.shard.config = config;
  b_opts.shard.seed = 8;
  b_opts.shard.accept_inbound = true;
  b_opts.workers = workers;
  core::ShardedNode node_b{std::move(udp_b), b_opts, b_cbs};

  WorkerRow row;
  row.workers = workers;
  row.assocs = assocs;
  row.messages = assocs * msgs_per_assoc;

  for (std::size_t a = 0; a < assocs; ++a) {
    node_a.add_initiator(static_cast<std::uint32_t>(a + 1), port_b, config,
                         {});
  }
  // Threaded runtimes launch lazily on the first poll/start/submit; the
  // responder only ever reacts, so kick its threads explicitly.
  node_b.poll(0);
  for (std::size_t a = 0; a < assocs; ++a) {
    node_a.start(static_cast<std::uint32_t>(a + 1));
  }
  const auto hs_deadline = WallClock::now() + std::chrono::seconds(60);
  while (node_a.established_count() < assocs &&
         WallClock::now() < hs_deadline) {
    node_a.poll(10);
  }
  if (node_a.established_count() < assocs) {
    std::fprintf(stderr, "worker sweep: only %zu/%zu established\n",
                 node_a.established_count(), assocs);
    return row;
  }

  // Submit round-robin across associations so every shard streams
  // concurrently; submit() applies ring backpressure by itself.
  const auto t0 = WallClock::now();
  for (std::size_t i = 0; i < msgs_per_assoc; ++i) {
    for (std::size_t a = 0; a < assocs; ++a) {
      node_a.submit(static_cast<std::uint32_t>(a + 1),
                    crypto::Bytes(256, static_cast<std::uint8_t>(i)));
    }
  }
  const auto deadline = WallClock::now() + std::chrono::seconds(120);
  while (delivered.load(std::memory_order_relaxed) < row.messages &&
         WallClock::now() < deadline) {
    node_a.poll(20);
  }
  row.wall_s = seconds_since(t0);
  row.delivered = delivered.load(std::memory_order_relaxed);
  row.goodput_msgs_per_s =
      row.wall_s > 0 ? static_cast<double>(row.delivered) / row.wall_s : 0;
  for (const auto& ss : node_a.shard_stats()) {
    row.ring_overflows += ss.in_overflows + ss.out_overflows;
  }
  for (const auto& ss : node_b.shard_stats()) {
    row.ring_overflows += ss.in_overflows + ss.out_overflows;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_assocs = 1'000'000;
  std::string out_path = "BENCH_sharded.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-assocs") == 0 && i + 1 < argc) {
      max_assocs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr,
                                                          10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--max-assocs N] [--out FILE.json]\n", argv[0]);
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  header("Sharded runtime: association capacity (sim, inline) and worker "
         "scaling (UDP, threaded)");
  std::printf("hardware_concurrency: %u\n", hw);

  JsonWriter json;
  json.begin_object()
      .field("bench", "sharded")
      .field("schema_version", 1)
      .field("hardware_concurrency", static_cast<std::uint64_t>(hw));

  bool ok = true;

  std::printf("\n%9s %8s %12s %15s %10s %12s %10s\n", "assocs", "workers",
              "established", "estab/s (wall)", "delivered", "msg/s (wall)",
              "overflows");
  json.key("assoc_sweep").begin_array();
  for (const std::size_t n : {1'000ull, 10'000ull, 100'000ull,
                              1'000'000ull}) {
    if (n > max_assocs) break;
    const AssocRow r = run_assoc_sweep(n, /*workers=*/4);
    ok = ok && r.established == r.assocs && r.delivered == r.assocs &&
         r.ring_overflows == 0;
    std::printf("%9zu %8u %12zu %15.0f %10zu %12.0f %10llu\n", r.assocs,
                r.workers, r.established,
                r.establish_wall_s > 0
                    ? static_cast<double>(r.established) / r.establish_wall_s
                    : 0.0,
                r.delivered,
                r.stream_wall_s > 0
                    ? static_cast<double>(r.delivered) / r.stream_wall_s
                    : 0.0,
                static_cast<unsigned long long>(r.ring_overflows));
    json.begin_object()
        .field("assocs", static_cast<std::uint64_t>(r.assocs))
        .field("workers", static_cast<std::uint64_t>(r.workers))
        .field("established", static_cast<std::uint64_t>(r.established))
        .field("establish_wall_s", r.establish_wall_s)
        .field("delivered", static_cast<std::uint64_t>(r.delivered))
        .field("stream_wall_s", r.stream_wall_s)
        .field("ring_overflows", r.ring_overflows)
        .end_object();
  }
  json.end_array();

  std::printf("\n%8s %8s %10s %10s %9s %14s %10s\n", "workers", "assocs",
              "messages", "delivered", "wall (s)", "msg/s (wall)",
              "overflows");
  json.key("worker_sweep").begin_array();
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    const WorkerRow r = run_worker_sweep(workers, /*assocs=*/256,
                                         /*msgs_per_assoc=*/40);
    ok = ok && r.delivered == r.messages;
    std::printf("%8u %8zu %10zu %10zu %9.2f %14.0f %10llu\n", r.workers,
                r.assocs, r.messages, r.delivered, r.wall_s,
                r.goodput_msgs_per_s,
                static_cast<unsigned long long>(r.ring_overflows));
    json.begin_object()
        .field("workers", static_cast<std::uint64_t>(r.workers))
        .field("assocs", static_cast<std::uint64_t>(r.assocs))
        .field("messages", static_cast<std::uint64_t>(r.messages))
        .field("delivered", static_cast<std::uint64_t>(r.delivered))
        .field("wall_s", r.wall_s)
        .field("goodput_msgs_per_s", r.goodput_msgs_per_s)
        .field("ring_overflows", r.ring_overflows)
        .end_object();
  }
  json.end_array().end_object();

  if (!json.write_file(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  std::printf(
      "Reading: the assoc sweep shows one process holding every association\n"
      "of a 10^6-endpoint deployment (disjoint shard slices, rings never\n"
      "overflow); the worker sweep shows wall-clock goodput vs. shard count\n"
      "on real sockets -- meaningful only where hardware_concurrency\n"
      "provides the cores (the CI gate is conditional on that).\n");
  return ok ? 0 : 1;
}
