// Shared helpers for the table/figure regeneration harnesses.
//
// Each bench binary prints the paper's rows next to what this implementation
// measures, so EXPERIMENTS.md can record paper-vs-measured per experiment.
#pragma once

#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/host.hpp"
#include "core/relay.hpp"
#include "core/signer.hpp"
#include "core/verifier.hpp"

namespace alpha::bench {

/// Queued-frame loopback connecting one signer, one verifier and one relay
/// in between -- the measurement fixture for Tables 1-3.
class TriadFixture {
 public:
  explicit TriadFixture(core::Config config, std::uint64_t seed = 1)
      : config_(config),
        rng_(seed),
        sig_chain_(hashchain::HashChain::generate(
            config.algo, hashchain::ChainTagging::kRoleBound, rng_,
            config.chain_length)),
        ack_chain_(hashchain::HashChain::generate(
            config.algo, hashchain::ChainTagging::kRoleBound, rng_,
            config.chain_length)) {
    core::SignerEngine::Callbacks scb;
    scb.send = [this](crypto::Bytes frame) {
      queue_.push_back({kTowardVerifier, std::move(frame)});
    };
    signer_.emplace(config_, 1, sig_chain_, ack_chain_.anchor(),
                    ack_chain_.length(), std::move(scb));

    core::VerifierEngine::Callbacks vcb;
    vcb.send = [this](crypto::Bytes frame) {
      queue_.push_back({kTowardSigner, std::move(frame)});
    };
    vcb.on_message = [this](std::uint32_t, std::uint16_t, crypto::ByteView) {
      ++delivered_;
    };
    verifier_.emplace(config_, 1, ack_chain_, sig_chain_.anchor(),
                      sig_chain_.length(), std::move(vcb), rng_);

    // Relay learns anchors via a synthetic handshake pair.
    core::RelayEngine::Callbacks rcb;
    rcb.forward = [](core::Direction, crypto::Bytes) {};
    relay_.emplace(config_, core::RelayEngine::Options{}, std::move(rcb));
    wire::HandshakePacket hs1;
    hs1.hdr = {1, 0};
    hs1.algo = config_.algo;
    hs1.chain_length = static_cast<std::uint32_t>(config_.chain_length);
    hs1.sig_anchor = sig_chain_.anchor();
    hs1.sig_anchor_index = static_cast<std::uint32_t>(sig_chain_.length());
    hs1.ack_anchor = ack_chain_.anchor();  // unused flow, but must be valid
    hs1.ack_anchor_index = static_cast<std::uint32_t>(ack_chain_.length());
    relay_->on_frame(core::Direction::kForward, hs1.encode());
    wire::HandshakePacket hs2 = hs1;
    hs2.is_response = true;
    relay_->on_frame(core::Direction::kReverse, hs2.encode());
  }

  /// Pumps queued frames through relay + destination until quiescent.
  void pump() {
    while (!queue_.empty()) {
      auto [dir, frame] = std::move(queue_.front());
      queue_.pop_front();
      relay_->on_frame(dir == kTowardVerifier ? core::Direction::kForward
                                              : core::Direction::kReverse,
                       frame);
      const auto packet = wire::decode(frame);
      if (!packet.has_value()) continue;
      if (dir == kTowardVerifier) {
        if (const auto* s1 = std::get_if<wire::S1Packet>(&*packet)) {
          verifier_->on_s1(*s1);
        } else if (const auto* s2 = std::get_if<wire::S2Packet>(&*packet)) {
          verifier_->on_s2(*s2);
        }
      } else {
        if (const auto* a1 = std::get_if<wire::A1Packet>(&*packet)) {
          signer_->on_a1(*a1, 0);
        } else if (const auto* a2 = std::get_if<wire::A2Packet>(&*packet)) {
          signer_->on_a2(*a2, 0);
        }
      }
    }
  }

  /// Pumps but holds A1 frames back (rounds stay pending for memory
  /// measurements).
  void pump_without_a1() {
    std::deque<std::pair<int, crypto::Bytes>> keep;
    while (!queue_.empty()) {
      auto [dir, frame] = std::move(queue_.front());
      queue_.pop_front();
      if (wire::peek_type(frame) == wire::PacketType::kA1) continue;
      relay_->on_frame(dir == kTowardVerifier ? core::Direction::kForward
                                              : core::Direction::kReverse,
                       frame);
      if (dir == kTowardVerifier) {
        const auto packet = wire::decode(frame);
        if (const auto* s1 = std::get_if<wire::S1Packet>(&*packet)) {
          verifier_->on_s1(*s1);
        }
      }
    }
  }

  core::SignerEngine& signer() { return *signer_; }
  core::VerifierEngine& verifier() { return *verifier_; }
  core::RelayEngine& relay() { return *relay_; }
  std::size_t delivered() const { return delivered_; }
  crypto::HmacDrbg& rng() { return rng_; }

 private:
  static constexpr int kTowardVerifier = 0;
  static constexpr int kTowardSigner = 1;

  core::Config config_;
  crypto::HmacDrbg rng_;
  hashchain::HashChain sig_chain_;
  hashchain::HashChain ack_chain_;
  std::deque<std::pair<int, crypto::Bytes>> queue_;
  std::optional<core::SignerEngine> signer_;
  std::optional<core::VerifierEngine> verifier_;
  std::optional<core::RelayEngine> relay_;
  std::size_t delivered_ = 0;
};

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace alpha::bench
