// Shared helpers for the table/figure regeneration harnesses.
//
// Each bench binary prints the paper's rows next to what this implementation
// measures, so EXPERIMENTS.md can record paper-vs-measured per experiment.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "core/host.hpp"
#include "core/relay.hpp"
#include "core/signer.hpp"
#include "core/verifier.hpp"

namespace alpha::bench {

/// Queued-frame loopback connecting one signer, one verifier and one relay
/// in between -- the measurement fixture for Tables 1-3.
class TriadFixture {
 public:
  explicit TriadFixture(core::Config config, std::uint64_t seed = 1)
      : config_(config),
        rng_(seed),
        sig_chain_(hashchain::HashChain::generate(
            config.algo, hashchain::ChainTagging::kRoleBound, rng_,
            config.chain_length)),
        ack_chain_(hashchain::HashChain::generate(
            config.algo, hashchain::ChainTagging::kRoleBound, rng_,
            config.chain_length)) {
    core::SignerEngine::Callbacks scb;
    scb.send = [this](crypto::Bytes frame) {
      queue_.push_back({kTowardVerifier, std::move(frame)});
    };
    signer_.emplace(config_, 1, sig_chain_, ack_chain_.anchor(),
                    ack_chain_.length(), std::move(scb));

    core::VerifierEngine::Callbacks vcb;
    vcb.send = [this](crypto::Bytes frame) {
      queue_.push_back({kTowardSigner, std::move(frame)});
    };
    vcb.on_message = [this](std::uint32_t, std::uint16_t, crypto::ByteView) {
      ++delivered_;
    };
    verifier_.emplace(config_, 1, ack_chain_, sig_chain_.anchor(),
                      sig_chain_.length(), std::move(vcb), rng_);

    // Relay learns anchors via a synthetic handshake pair.
    core::RelayEngine::Callbacks rcb;
    rcb.forward = [](core::Direction, crypto::ByteView) {};
    relay_.emplace(config_, core::RelayEngine::Options{}, std::move(rcb));
    wire::HandshakePacket hs1;
    hs1.hdr = {1, 0};
    hs1.algo = config_.algo;
    hs1.chain_length = static_cast<std::uint32_t>(config_.chain_length);
    hs1.sig_anchor = sig_chain_.anchor();
    hs1.sig_anchor_index = static_cast<std::uint32_t>(sig_chain_.length());
    hs1.ack_anchor = ack_chain_.anchor();  // unused flow, but must be valid
    hs1.ack_anchor_index = static_cast<std::uint32_t>(ack_chain_.length());
    relay_->on_frame(core::Direction::kForward, hs1.encode());
    wire::HandshakePacket hs2 = hs1;
    hs2.is_response = true;
    relay_->on_frame(core::Direction::kReverse, hs2.encode());
  }

  /// Pumps queued frames through relay + destination until quiescent.
  void pump() {
    while (!queue_.empty()) {
      auto [dir, frame] = std::move(queue_.front());
      queue_.pop_front();
      relay_->on_frame(dir == kTowardVerifier ? core::Direction::kForward
                                              : core::Direction::kReverse,
                       frame);
      const auto packet = wire::decode(frame);
      if (!packet.has_value()) continue;
      if (dir == kTowardVerifier) {
        if (const auto* s1 = std::get_if<wire::S1Packet>(&*packet)) {
          verifier_->on_s1(*s1);
        } else if (const auto* s2 = std::get_if<wire::S2Packet>(&*packet)) {
          verifier_->on_s2(*s2);
        }
      } else {
        if (const auto* a1 = std::get_if<wire::A1Packet>(&*packet)) {
          signer_->on_a1(*a1, 0);
        } else if (const auto* a2 = std::get_if<wire::A2Packet>(&*packet)) {
          signer_->on_a2(*a2, 0);
        }
      }
    }
  }

  /// Pumps but holds A1 frames back (rounds stay pending for memory
  /// measurements).
  void pump_without_a1() {
    std::deque<std::pair<int, crypto::Bytes>> keep;
    while (!queue_.empty()) {
      auto [dir, frame] = std::move(queue_.front());
      queue_.pop_front();
      if (wire::peek_type(frame) == wire::PacketType::kA1) continue;
      relay_->on_frame(dir == kTowardVerifier ? core::Direction::kForward
                                              : core::Direction::kReverse,
                       frame);
      if (dir == kTowardVerifier) {
        const auto packet = wire::decode(frame);
        if (const auto* s1 = std::get_if<wire::S1Packet>(&*packet)) {
          verifier_->on_s1(*s1);
        }
      }
    }
  }

  core::SignerEngine& signer() { return *signer_; }
  core::VerifierEngine& verifier() { return *verifier_; }
  core::RelayEngine& relay() { return *relay_; }
  std::size_t delivered() const { return delivered_; }
  crypto::HmacDrbg& rng() { return rng_; }

 private:
  static constexpr int kTowardVerifier = 0;
  static constexpr int kTowardSigner = 1;

  core::Config config_;
  crypto::HmacDrbg rng_;
  hashchain::HashChain sig_chain_;
  hashchain::HashChain ack_chain_;
  std::deque<std::pair<int, crypto::Bytes>> queue_;
  std::optional<core::SignerEngine> signer_;
  std::optional<core::VerifierEngine> verifier_;
  std::optional<core::RelayEngine> relay_;
  std::size_t delivered_ = 0;
};

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Minimal machine-readable output writer for the BENCH_*.json trajectory
/// files (schema documented in EXPERIMENTS.md). Emits valid JSON as long as
/// begin/end calls nest correctly; no escaping beyond quotes/backslashes is
/// performed, so keep keys and string values ASCII.
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    comma();
    quote(k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    quote(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::uint64_t>(v)); }

  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    return key(k).value(v);
  }

  const std::string& str() const { return out_; }

  /// Writes the document to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::size_t n = std::fwrite(out_.data(), 1, out_.size(), f);
    const bool ok = n == out_.size() && std::fputc('\n', f) != EOF;
    return std::fclose(f) == 0 && ok;
  }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    first_in_scope_ = true;
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    first_in_scope_ = false;
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;  // value right after key: no comma
      return;
    }
    if (!first_in_scope_) out_ += ',';
    first_in_scope_ = false;
  }
  void quote(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
    out_ += '"';
  }

  std::string out_;
  bool first_in_scope_ = true;
  bool pending_value_ = false;
};

}  // namespace alpha::bench
