// Table 1 -- hash computations for processing one message.
//
// Paper (Table 1): per-message hash operations for ALPHA, ALPHA-C and
// ALPHA-M, per role, split into signature, hash-chain creation, hash-chain
// verification and (n)ack handling. ALPHA-C/-M send n messages per S1.
//
// This harness runs the real engines (signer + relay + verifier through a
// lossless loopback, reliable mode so ack columns are exercised), counts the
// hash operations each role actually executed via the instrumented crypto
// layer, and prints them next to the paper's analytical entries. Two
// expected differences are called out in the footnotes: HMAC costs 2 hash
// finalizations (the paper counts 1 MAC), and chain creation is a one-time
// cost measured separately.
#include "bench_util.hpp"
#include "crypto/counter.hpp"
#include "platform/estimators.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

struct Measured {
  core::HashWork signer, verifier, relay;
  double chain_create_per_msg;  // measured chain build, amortized
};

Measured run_mode(wire::Mode mode, std::size_t n, std::size_t messages) {
  core::Config config;
  config.mode = mode;
  config.batch_size = n;
  config.reliable = true;
  config.chain_length = 4096;

  // Chain creation cost: count hashes to build one chain pair, amortize per
  // message (2 elements consumed per round of n messages).
  crypto::HmacDrbg chain_rng{7};
  const crypto::ScopedHashOps chain_ops;
  const auto probe = hashchain::HashChain::generate(
      config.algo, hashchain::ChainTagging::kRoleBound, chain_rng, 4096);
  const double create_per_element =
      static_cast<double>(chain_ops.delta().hash_finalizations) / 4096.0;
  (void)probe;

  TriadFixture fx{config};
  for (std::size_t i = 0; i < messages; ++i) {
    fx.signer().submit(crypto::Bytes(64, static_cast<std::uint8_t>(i)), 0);
    if ((i + 1) % n == 0) fx.pump();
  }
  fx.pump();

  Measured m;
  m.signer = fx.signer().stats().hashes;
  m.verifier = fx.verifier().stats().hashes;
  m.relay = fx.relay().stats().hashes;
  // 2 chain elements per round; per message = 2 * create_per_element / n.
  m.chain_create_per_msg = 2.0 * create_per_element / static_cast<double>(n);
  return m;
}

void print_row(const char* role, const core::HashWork& w,
               double chain_create, std::size_t messages,
               const platform::Table1Row& paper) {
  const double per = 1.0 / static_cast<double>(messages);
  std::printf(
      "  %-9s sig=%6.2f (paper %5.2f)  hc-create=%5.2f (paper %5.2f)  "
      "hc-verify=%5.2f (paper %5.2f)  ack=%6.2f (paper %5.2f)\n",
      role, static_cast<double>(w.signature) * per, paper.signature,
      chain_create, paper.chain_create,
      static_cast<double>(w.chain_verify) * per, paper.chain_verify,
      static_cast<double>(w.ack) * per, paper.ack_nack);
}

void run(const char* name, wire::Mode mode, platform::AlphaMode pmode,
         std::size_t n) {
  const std::size_t messages = 512;
  const auto m = run_mode(mode, n, messages);
  std::printf("\n%s (n = %zu messages per S1), measured per message:\n", name,
              n);
  print_row("signer", m.signer, m.chain_create_per_msg, messages,
            platform::table1_row(pmode, platform::Role::kSigner, n));
  print_row("verifier", m.verifier, m.chain_create_per_msg, messages,
            platform::table1_row(pmode, platform::Role::kVerifier, n));
  print_row("relay", m.relay, 0.0, messages,
            platform::table1_row(pmode, platform::Role::kRelay, n));
}

}  // namespace

int main() {
  header("Table 1: hash computations for processing one message "
         "(measured vs. paper)");
  std::printf(
      "Notes on expected offsets vs. the paper's logical counts:\n"
      " - 'sig': the paper counts 1 MAC ('1*'); our HMAC construction costs\n"
      "   2 hash finalizations per MAC, so base/C rows read 2.00.\n"
      " - 'hc-verify': the paper counts 1 per chain; endpoints verify two\n"
      "   disclosures per round (S1 + S2 elements), relays track both the\n"
      "   signature AND acknowledgment chains (4 disclosures per reliable\n"
      "   round), so measured values are 2x/4x the per-chain entry.\n"
      " - ALPHA-M signer 'sig': our builder spends exactly 2n hashes per\n"
      "   batch (n leaves + n-1 combines + keyed root) = 2.00/message; the\n"
      "   paper's 3 - 1/n additionally counts a per-message MAC separate\n"
      "   from the leaf hash.\n"
      " - chain creation ('+' entries) is off-line work, measured from a\n"
      "   real 4096-element chain build; ack columns match the paper\n"
      "   exactly (1 / 2 / 2+log2 n / 4-1/n).\n");

  run("ALPHA (base)", wire::Mode::kBase, platform::AlphaMode::kBase, 1);
  run("ALPHA-C", wire::Mode::kCumulative, platform::AlphaMode::kCumulative,
      16);
  run("ALPHA-C", wire::Mode::kCumulative, platform::AlphaMode::kCumulative,
      64);
  run("ALPHA-M", wire::Mode::kMerkle, platform::AlphaMode::kMerkle, 16);
  run("ALPHA-M", wire::Mode::kMerkle, platform::AlphaMode::kMerkle, 64);
  return 0;
}
