// §3.2.2 / §3.5 -- latency properties in RTTs.
//
// Paper claims quantified on the simulator:
//  * minimum application latency of an ALPHA signature: 1.5 RTT (S1-A1-S2);
//  * reliable confirmation with pre-acks: 2 RTT instead of 3 (the naive
//    six-packet scheme: a full 3-way signature in each direction);
//  * TESLA-like time-based baseline: verification latency is bound to the
//    disclosure delay (epochs), independent of the path RTT.
#include <cstdio>

#include "baselines/tesla_like.hpp"
#include "bench_util.hpp"
#include "core/path.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

struct Timing {
  double delivery_rtt = 0;  // submission -> verifier delivery
  double ack_rtt = 0;       // submission -> signer confirmation (reliable)
};

Timing measure(std::size_t hops, bool reliable, net::SimTime hop_latency) {
  net::Simulator sim;
  net::Network network{sim, 2};
  std::vector<net::NodeId> nodes;
  for (net::NodeId id = 0; id <= hops; ++id) {
    network.add_node(id);
    nodes.push_back(id);
  }
  net::LinkConfig link;
  link.latency = hop_latency;
  link.bandwidth_bps = 1'000'000'000;
  for (net::NodeId id = 0; id < hops; ++id) network.add_link(id, id + 1, link);

  core::Config config;
  config.reliable = reliable;
  core::ProtectedPath path{network, nodes, config, 1, 3};
  path.start();
  sim.run_until(net::kSecond);

  const net::SimTime t0 = sim.now();
  path.initiator().submit(crypto::Bytes(100, 1), t0);

  net::SimTime delivered_at = 0, acked_at = 0;
  while (sim.now() < t0 + 10 * net::kSecond) {
    sim.run_until(sim.now() + net::kMillisecond);
    if (delivered_at == 0 && !path.delivered_to_responder().empty()) {
      delivered_at = sim.now();
    }
    if (acked_at == 0 && !path.initiator_deliveries().empty()) {
      acked_at = sim.now();
    }
    if (delivered_at != 0 && (!reliable || acked_at != 0)) break;
  }

  const double rtt =
      2.0 * static_cast<double>(hops) * static_cast<double>(hop_latency);
  Timing t;
  t.delivery_rtt = static_cast<double>(delivered_at - t0) / rtt;
  t.ack_rtt = acked_at != 0 ? static_cast<double>(acked_at - t0) / rtt : 0;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_latency.json";
  if (argc > 1) out_path = argv[1];

  header("Latency in round-trip times: ALPHA delivery/ack vs. baselines");

  JsonWriter json;
  json.begin_object()
      .field("bench", "latency_rtt")
      .field("schema_version", 1)
      .field("hop_latency_ms", 10)
      .key("results")
      .begin_array();

  std::printf("\n%-34s %14s %14s\n", "configuration", "delivery (RTT)",
              "ack (RTT)");
  for (const std::size_t hops : {1u, 2u, 4u}) {
    const auto unrel = measure(hops, false, 10 * net::kMillisecond);
    const auto rel = measure(hops, true, 10 * net::kMillisecond);
    std::printf("%zu hop(s), unreliable            %14.2f %14s\n", hops,
                unrel.delivery_rtt, "-");
    std::printf("%zu hop(s), reliable (pre-acks)   %14.2f %14.2f\n", hops,
                rel.delivery_rtt, rel.ack_rtt);
    json.begin_object()
        .field("hops", static_cast<std::uint64_t>(hops))
        .field("reliable", false)
        .field("delivery_rtt", unrel.delivery_rtt)
        .field("ack_rtt", 0.0)
        .end_object();
    json.begin_object()
        .field("hops", static_cast<std::uint64_t>(hops))
        .field("reliable", true)
        .field("delivery_rtt", rel.delivery_rtt)
        .field("ack_rtt", rel.ack_rtt)
        .end_object();
  }
  std::printf("\npaper: delivery >= 1.5 RTT (S1-A1-S2); pre-acks confirm in "
              "2 RTT instead of the naive 3 RTT (six-packet exchange).\n");

  // TESLA-like: verification latency equals the disclosure delay regardless
  // of RTT -- on a 20 ms-RTT path with 100 ms epochs and d = 2 that is
  // ~10 RTT before a packet can be trusted.
  baselines::TeslaConfig tc;
  tc.epoch_us = 100'000;
  tc.disclosure_delay = 2;
  baselines::TeslaSender sender{tc, crypto::Bytes(20, 1), 0};
  baselines::TeslaReceiver receiver{tc, sender.anchor(), 0};
  const auto frame = sender.protect(crypto::as_bytes("m"), 10'000);
  receiver.on_packet(frame, 30'000);  // arrives after one 20 ms RTT
  std::uint64_t verified_at = 0;
  for (std::uint64_t t = 100'000; t <= 1'000'000; t += 100'000) {
    const auto released = receiver.on_packet(sender.heartbeat(t), t + 10'000);
    if (!released.empty()) {
      verified_at = t + 10'000;
      break;
    }
  }
  std::printf("\nTESLA-like baseline (100 ms epochs, d=2): packet arriving "
              "after 20 ms verified at t=%.0f ms -> %.1f RTT of latency vs. "
              "ALPHA's 1.5.\n",
              verified_at / 1000.0, verified_at / 20'000.0);

  json.end_array()
      .key("tesla_baseline")
      .begin_object()
      .field("epoch_ms", 100)
      .field("disclosure_delay", 2)
      .field("verification_rtt", verified_at / 20'000.0)
      .end_object()
      .end_object();
  if (!json.write_file(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
