// §3.5 -- flood mitigation (qualitative claim, quantified).
//
// Paper: "unsolicited data cannot propagate far beyond its source in the
// network" -- the first ALPHA relay drops data that lacks an S1/A1 context.
// This harness floods a 6-hop path at increasing rates, with and without
// ALPHA-verifying relays, and reports how many attack bytes each hop had to
// carry. The shape to reproduce: without ALPHA the flood loads every link;
// with ALPHA only the entry link sees it.
#include <cstdio>

#include "bench_util.hpp"
#include "core/attackers.hpp"
#include "core/path.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

struct FloodResult {
  std::uint64_t bytes_hop_by_hop[6] = {};
  std::uint64_t dropped_at_entry = 0;
  std::size_t legit_delivered = 0;
};

FloodResult run(bool alpha_relays, std::size_t flood_frames) {
  net::Simulator sim;
  net::Network network{sim, 5};
  const std::size_t hops = 6;
  for (net::NodeId id = 0; id <= hops; ++id) network.add_node(id);
  for (net::NodeId id = 0; id < hops; ++id) network.add_link(id, id + 1);

  core::Config config;
  std::vector<net::NodeId> nodes;
  for (net::NodeId id = 0; id <= hops; ++id) nodes.push_back(id);
  core::ProtectedPath path{network, nodes, config, 1, 21};

  if (!alpha_relays) {
    // Replace every relay with a blind forwarder (no verification).
    for (std::size_t i = 1; i < hops; ++i) {
      const net::NodeId self = static_cast<net::NodeId>(i);
      network.set_handler(self, [&network, self](net::NodeId from,
                                                 crypto::ByteView frame) {
        // Anything that does not come from the downstream neighbor (incl.
        // the attacker's side link) is forwarded downstream.
        const net::NodeId next = from == self + 1 ? self - 1 : self + 1;
        network.send(self, next,
                     crypto::Bytes(frame.begin(), frame.end()));
      });
    }
  }

  path.start();
  sim.run_until(net::kSecond);

  // Attacker attached to node 1 (first relay).
  network.add_node(99);
  network.add_link(99, 1);
  core::launch_s2_flood(network, 99, 1, 1, flood_frames, 900,
                        100 * net::kMicrosecond, 17);
  for (int i = 0; i < 10; ++i) {
    path.initiator().submit(crypto::Bytes(500, 0x31), sim.now());
  }
  sim.run_until(sim.now() + 30 * net::kSecond);

  FloodResult result;
  for (std::size_t i = 0; i < hops; ++i) {
    result.bytes_hop_by_hop[i] =
        network.link_stats(static_cast<net::NodeId>(i),
                           static_cast<net::NodeId>(i + 1))
            .bytes_delivered;
  }
  if (alpha_relays) {
    result.dropped_at_entry = path.relay(0).stats().dropped_unsolicited;
  }
  result.legit_delivered = path.delivered_to_responder().size();
  return result;
}

}  // namespace

int main() {
  header("§3.5: flood mitigation -- attack bytes carried per hop, with and "
         "without ALPHA relays");

  for (const std::size_t flood : {100u, 1000u, 5000u}) {
    const auto without = run(/*alpha_relays=*/false, flood);
    const auto with = run(/*alpha_relays=*/true, flood);
    std::printf("\nflood of %zu forged 900 B frames injected at hop 1:\n",
                flood);
    std::printf("  %-18s", "bytes on hop i->i+1:");
    for (int i = 0; i < 6; ++i) std::printf(" %9llu",
        static_cast<unsigned long long>(without.bytes_hop_by_hop[i]));
    std::printf("   (blind relays)\n");
    std::printf("  %-18s", "");
    for (int i = 0; i < 6; ++i) std::printf(" %9llu",
        static_cast<unsigned long long>(with.bytes_hop_by_hop[i]));
    std::printf("   (ALPHA relays)\n");
    std::printf("  ALPHA entry relay dropped %llu unsolicited frames; "
                "legitimate delivery %zu/10 vs %zu/10\n",
                static_cast<unsigned long long>(with.dropped_at_entry),
                with.legit_delivered, without.legit_delivered);
  }
  std::printf("\nShape: with ALPHA, links beyond the entry hop carry only "
              "protocol traffic regardless of flood size.\n");
  return 0;
}
