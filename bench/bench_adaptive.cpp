// Closed-loop adaptivity under seeded chaos schedules (BENCH_adaptive.json).
//
// Three deterministic scenarios -- a Gilbert-Elliott phase shift, a cycle of
// hard partitions, and a Bernoulli loss ramp -- each run once per static
// ladder rung (the controller disabled, the association pinned to that
// (mode, batch) for its lifetime) and once with the AdaptiveController
// closing the loop. Every run is virtual-time over the deterministic
// simulator (inline sharded drive), so the committed artifact replays
// bit-identically on any machine.
//
// The score per row is goodput x efficiency:
//
//   score = (delivered / virtual_duration) * (delivered / frames_sent)
//
// i.e. a config is penalized both for losing messages (lean rungs under
// burst loss exhaust their retry budgets) and for spending wire frames
// (robust rungs burn 4+ frames per message on a clean channel). No static
// rung wins every schedule -- that is the point of adapting -- so the CI
// gate (scripts/check_perf_smoke.py --adaptive) enforces that the adaptive
// row beats every static rung on the score summed across scenarios, while
// also delivering every submitted message in every scenario.
//
//   $ bench_adaptive                   # full sweep
//   $ bench_adaptive --out FILE.json
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/adapt.hpp"
#include "core/sharded_node.hpp"
#include "net/network.hpp"
#include "trace/trace.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

using net::kMillisecond;
using net::kSecond;
using net::SimTime;

// ------------------------------------------------------------ the schedule

/// A fault profile taking effect at `at` (virtual time) on the one link.
struct FaultPhase {
  SimTime at = 0;
  net::FaultConfig faults;
};

struct Partition {
  SimTime at = 0;
  SimTime duration = 0;
};

struct Scenario {
  const char* name;
  std::uint64_t chaos_seed;  // 0: the run draws no randomness at all
  std::vector<FaultPhase> phases;
  std::vector<Partition> partitions;
};

net::FaultConfig ge(double p_enter, double p_exit, double loss_good,
                    double loss_bad) {
  net::FaultConfig f;
  net::BurstLossConfig burst;
  burst.p_enter_bad = p_enter;
  burst.p_exit_bad = p_exit;
  burst.loss_good = loss_good;
  burst.loss_bad = loss_bad;
  f.burst = burst;
  return f;
}

// Every scenario follows the same dramaturgy, with different dressing:
// calm (big batches earn their keep) -> tremor (moderate loss: the signal a
// controller can read) -> killer (a long outage that outlasts mid-ladder
// retry budgets, but not the fat budget of rung 0) -> calm again. A static
// rung has to pick one posture for the whole run: lean rungs lose whole
// in-flight rounds to the killer (budget 6 covers ~11 s of the capped
// exponential backoff; rung 0's budget covers ~61 s), robust rungs pay 4+
// frames per message through every calm stretch. The controller demotes on
// the tremor, rides out the killer at rung 0 with one message in flight,
// and snap-promotes back when the channel heals.
std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;

  // Bursty channel whose burst statistics shift mid-run: mild clustered
  // loss, a tremor of frequent lossy bursts (plus duplication and
  // reordering), then a 46 s blackout, then mild again.
  {
    Scenario s;
    s.name = "ge_phase_shift";
    s.chaos_seed = 0xa1fa'0001;
    net::FaultConfig mild = ge(0.01, 0.4, 0.0, 0.4);
    net::FaultConfig tremor = ge(0.15, 0.15, 0.03, 0.55);
    tremor.duplicate_rate = 0.02;
    tremor.reorder_rate = 0.05;
    s.phases = {{0, mild}, {36 * kSecond, tremor}, {49 * kSecond, mild}};
    s.partitions = {{50'500 * kMillisecond, 46 * kSecond}};
    out.push_back(std::move(s));
  }

  // Clean channel, two outage cycles, no chaos randomness at all (the
  // schedule is pure simulator events): a short survivable partition as the
  // tremor, then a long killer partition while every rung's EWMA is still
  // hot from the first.
  {
    Scenario s;
    s.name = "partition_cycle";
    s.chaos_seed = 0;
    s.partitions = {{31'500 * kMillisecond, 3'500 * kMillisecond},
                    {41'500 * kMillisecond, 46 * kSecond},
                    {95'500 * kMillisecond, 8 * kSecond},
                    {106'500 * kMillisecond, 20 * kSecond}};
    out.push_back(std::move(s));
  }

  // Bernoulli loss ramp into an outage: clean, mild, then a climbing ramp
  // that crests in a 46 s partition before clearing. Expressed as a
  // degenerate Gilbert-Elliott channel that never leaves the good state.
  {
    Scenario s;
    s.name = "loss_ramp";
    s.chaos_seed = 0xa1fa'0002;
    s.phases = {{0, ge(0.0, 1.0, 0.0, 0.0)},
                {30 * kSecond, ge(0.0, 1.0, 0.06, 0.0)},
                {48 * kSecond, ge(0.0, 1.0, 0.22, 0.0)},
                {60 * kSecond, ge(0.0, 1.0, 0.30, 0.0)},
                {84 * kSecond, ge(0.0, 1.0, 0.02, 0.0)}};
    s.partitions = {{67'500 * kMillisecond, 46 * kSecond}};
    out.push_back(std::move(s));
  }
  return out;
}

// ------------------------------------------------------------------ a run

constexpr SimTime kTrafficStart = 6 * kSecond;
constexpr SimTime kTrafficEnd = 126 * kSecond;
constexpr SimTime kBurstEvery = 4 * kSecond;
constexpr std::size_t kBurstSize = 16;
constexpr SimTime kDrainUntil = 210 * kSecond;

core::Config base_config() {
  core::Config config;
  // The deployment profile is an efficient big-batch rung: the adaptive row
  // starts where a throughput-minded operator would pin it, and has to earn
  // its robustness by demoting. Static rows override mode/batch per rung.
  config.mode = core::Mode::kCumulative;
  config.batch_size = 16;
  config.reliable = true;
  config.retransmit_on_nack = true;
  config.rto_us = 100 * kMillisecond;  // backoff reaches rto_max (5 s)
  config.max_retries = 6;
  config.chain_length = 4096;  // headroom for reconfig rekeys
  return config;
}

/// Controller tuning for the bench: faster windows than the library default
/// (the schedule's phases are tens of seconds, not minutes) and a backlog
/// flush threshold high enough that one queued burst at a lean rung never
/// reads as "outage backlog". Promotion keeps the default patience: eager
/// EWMA-based re-promotion walks straight back into the next outage of a
/// partition cycle, while the backlog-flush override already covers the
/// "disturbance over, queue deep" case without waiting out the EWMA.
core::AdaptiveController::Options controller_options() {
  core::AdaptiveController::Options opts;
  opts.interval_us = 300 * kMillisecond;
  opts.loss_alpha = 0.5;
  opts.promote_loss = 0.05;
  opts.severe_loss = 0.30;
  // Low enough that one 16-message burst landing on rung 0 after a short
  // outage counts as "queue deep" and snaps straight back up; the clean-link
  // and no-budget-pressure guards keep it from firing mid-disturbance.
  opts.flush_backlog_factor = 12;
  // Sparse 4 s bursts mean a single clean burst can satisfy window-counted
  // patience seconds after an outage ends; demand 12 s of clean *time*
  // before any optimistic promotion. Recovery from a drained outage still
  // happens instantly via the backlog-flush override.
  opts.promote_hold_us = 12 * kSecond;
  return opts;
}

/// Static rung `index` of the controller's own ladder, pinned for the whole
/// association -- exactly what the controller would run if it parked there.
core::Config pinned_config(std::size_t index) {
  std::size_t count = 0;
  const core::AdaptProfile* ladder = core::AdaptiveController::ladder(&count);
  const core::AdaptProfile& p = ladder[index % count];
  core::Config config = base_config();
  config.mode = p.mode;
  config.batch_size = p.batch;
  config.merkle_group = p.merkle_group;
  config.max_retries = base_config().max_retries + p.extra_retries;
  return config;
}

const char* mode_name(core::Mode mode) {
  switch (mode) {
    case core::Mode::kBase: return "base";
    case core::Mode::kCumulative: return "C";
    case core::Mode::kMerkle: return "M";
    case core::Mode::kCumulativeMerkle: return "C+M";
  }
  return "?";
}

struct Row {
  std::string config_label;
  bool adaptive = false;
  std::size_t submitted = 0;
  std::size_t delivered = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_lost = 0;
  double goodput_msgs_per_s = 0;
  double frames_per_msg = 0;
  double score = 0;
  std::uint64_t adapt_evaluations = 0;
  std::uint64_t adapt_switches = 0;
  std::uint64_t reconfigs_applied = 0;
  std::string final_profile;
};

Row run_one(const Scenario& scenario, const core::Config& config,
            bool adaptive, const std::string& trace_path = {}) {
  // Optional decision trace for the run (alpha_inspect --adapt explains it).
  std::optional<trace::Ring> ring;
  if (!trace_path.empty()) {
    ring.emplace(std::size_t{1} << 18);
    trace::install(&*ring);
  }
  net::Simulator sim;
  net::Network network(sim, /*seed=*/1337);
  if (scenario.chaos_seed != 0) network.set_chaos_seed(scenario.chaos_seed);
  network.add_node(0);
  network.add_node(1);
  net::LinkConfig link;
  link.latency = 2 * kMillisecond;
  network.add_link(0, 1, link);
  for (const auto& p : scenario.partitions) {
    network.schedule_partition(0, 1, p.at, p.duration);
  }

  constexpr std::uint32_t kAssoc = 1;
  std::size_t delivered = 0;

  core::ShardedNode::Options a_opts;
  a_opts.shard.config = config;
  a_opts.shard.seed = 7;
  if (adaptive) a_opts.shard.adaptive = controller_options();
  a_opts.workers = 1;
  core::ShardedNode a{std::make_unique<net::SimTransport>(network, 0),
                      a_opts, {}};

  core::ShardedNode::Options b_opts;
  b_opts.shard.config = config;
  b_opts.shard.seed = 8;
  b_opts.shard.accept_inbound = true;
  b_opts.workers = 1;
  core::ShardedNode::Callbacks b_cbs;
  b_cbs.on_message = [&delivered](std::uint32_t, crypto::ByteView) {
    ++delivered;
  };
  core::ShardedNode b{std::make_unique<net::SimTransport>(network, 1),
                      b_opts, b_cbs};

  a.add_initiator(kAssoc, /*peer=*/1);
  a.start(kAssoc);
  sim.run_until(3 * kSecond);

  Row row;
  row.adaptive = adaptive;
  if (a.established_count() != 1) return row;  // scored zero

  // Drive the schedule at one-second granularity so fault-phase boundaries
  // land where the scenario says, not quantized to burst times; bursts go
  // out every kBurstEvery within the same pass.
  std::size_t next_phase = 0;
  std::uint8_t fill = 0;
  SimTime next_burst = kTrafficStart;
  for (SimTime t = kTrafficStart; t <= kTrafficEnd; t += kSecond) {
    while (next_phase < scenario.phases.size() &&
           scenario.phases[next_phase].at <= t) {
      network.set_link_faults(0, 1, scenario.phases[next_phase].faults);
      ++next_phase;
    }
    if (t >= next_burst) {
      for (std::size_t i = 0; i < kBurstSize; ++i) {
        a.submit(kAssoc, crypto::Bytes(48, fill));
        ++fill;
        ++row.submitted;
      }
      next_burst += kBurstEvery;
    }
    sim.run_until(t);
  }
  // Calm channel for the drain so every straggler retransmission lands.
  network.set_link_faults(0, 1, net::FaultConfig{});
  sim.run_until(kDrainUntil);

  row.delivered = delivered;
  const core::NodeSnapshot snap = a.snapshot(/*per_assoc=*/true);
  row.adapt_evaluations = snap.adapt_evaluations;
  row.adapt_switches = snap.adapt_switches;
  row.reconfigs_applied = snap.reconfigs_applied;
  for (const auto& as : snap.assocs) {
    if (as.assoc_id != kAssoc) continue;
    row.final_profile = std::string(mode_name(as.mode)) + "/" +
                        std::to_string(as.batch);
  }

  const net::LinkStats wire = network.total_stats();
  row.frames_sent = wire.frames_sent;
  row.frames_lost = wire.frames_lost + wire.frames_link_down;
  const double duration_s =
      static_cast<double>(kTrafficEnd - kTrafficStart) / kSecond;
  row.goodput_msgs_per_s = static_cast<double>(row.delivered) / duration_s;
  row.frames_per_msg =
      row.delivered > 0
          ? static_cast<double>(row.frames_sent) / row.delivered
          : 0.0;
  const double efficiency =
      row.frames_sent > 0
          ? static_cast<double>(row.delivered) / row.frames_sent
          : 0.0;
  row.score = row.goodput_msgs_per_s * efficiency;
  if (ring.has_value()) {
    trace::install(nullptr);
    trace::write_jsonl(*ring, trace_path);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_adaptive.json";
  std::string trace_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_prefix = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE.json] [--trace PREFIX]\n",
                   argv[0]);
      return 2;
    }
  }

  header("Adaptive controller vs. static (mode, batch) rungs under seeded "
         "chaos schedules");

  std::size_t ladder_count = 0;
  core::AdaptiveController::ladder(&ladder_count);

  JsonWriter json;
  json.begin_object()
      .field("bench", "adaptive")
      .field("schema_version", 1);

  struct Aggregate {
    std::string label;
    bool adaptive = false;
    double total_score = 0;
    std::size_t total_delivered = 0;
    std::size_t total_submitted = 0;
    std::uint64_t adapt_switches = 0;
    std::uint64_t reconfigs_applied = 0;
    bool delivered_everything = true;
  };
  std::vector<Aggregate> totals(ladder_count + 1);

  json.key("scenarios").begin_array();
  for (const Scenario& scenario : scenarios()) {
    std::printf("\n-- %s --\n", scenario.name);
    std::printf("%10s %9s %9s %8s %8s %12s %8s %10s\n", "config", "submit",
                "deliver", "frames", "f/msg", "goodput/s", "score",
                "switches");
    json.begin_object()
        .field("name", scenario.name)
        .field("chaos_seed", scenario.chaos_seed)
        .field("duration_s",
               static_cast<std::uint64_t>((kTrafficEnd - kTrafficStart) /
                                          kSecond));
    json.key("rows").begin_array();

    for (std::size_t i = 0; i <= ladder_count; ++i) {
      const bool adaptive = i == ladder_count;
      const core::Config config =
          adaptive ? base_config() : pinned_config(i);
      // The adaptive run optionally dumps its decision trace per scenario
      // (explained offline via alpha_inspect --adapt).
      std::string trace_path;
      if (adaptive && !trace_prefix.empty()) {
        trace_path = trace_prefix + "." + scenario.name + ".jsonl";
      }
      Row row = run_one(scenario, config, adaptive, trace_path);
      row.config_label =
          adaptive ? "adaptive"
                   : std::string(mode_name(config.mode)) + "/" +
                         std::to_string(config.effective_batch());

      Aggregate& agg = totals[i];
      agg.label = row.config_label;
      agg.adaptive = adaptive;
      agg.total_score += row.score;
      agg.total_delivered += row.delivered;
      agg.total_submitted += row.submitted;
      agg.adapt_switches += row.adapt_switches;
      agg.reconfigs_applied += row.reconfigs_applied;
      agg.delivered_everything =
          agg.delivered_everything && row.delivered == row.submitted;

      std::printf("%10s %9zu %9zu %8llu %8.2f %12.2f %8.3f %10llu\n",
                  row.config_label.c_str(), row.submitted, row.delivered,
                  static_cast<unsigned long long>(row.frames_sent),
                  row.frames_per_msg, row.goodput_msgs_per_s, row.score,
                  static_cast<unsigned long long>(row.adapt_switches));
      json.begin_object()
          .field("config", row.config_label)
          .field("adaptive", row.adaptive)
          .field("submitted", static_cast<std::uint64_t>(row.submitted))
          .field("delivered", static_cast<std::uint64_t>(row.delivered))
          .field("frames_sent", row.frames_sent)
          .field("frames_lost", row.frames_lost)
          .field("goodput_msgs_per_s", row.goodput_msgs_per_s)
          .field("frames_per_msg", row.frames_per_msg)
          .field("score", row.score)
          .field("adapt_evaluations", row.adapt_evaluations)
          .field("adapt_switches", row.adapt_switches)
          .field("reconfigs_applied", row.reconfigs_applied)
          .field("final_profile", row.final_profile)
          .end_object();
    }
    json.end_array().end_object();
  }
  json.end_array();

  std::printf("\n-- aggregate (score summed across scenarios) --\n");
  std::printf("%10s %12s %10s %10s %10s\n", "config", "total_score",
              "delivered", "submitted", "switches");
  bool adaptive_wins = true;
  const Aggregate& adap = totals.back();
  json.key("aggregate").begin_array();
  for (const Aggregate& agg : totals) {
    if (!agg.adaptive && adap.total_score <= agg.total_score) {
      adaptive_wins = false;
    }
    std::printf("%10s %12.3f %10zu %10zu %10llu\n", agg.label.c_str(),
                agg.total_score, agg.total_delivered, agg.total_submitted,
                static_cast<unsigned long long>(agg.adapt_switches));
    json.begin_object()
        .field("config", agg.label)
        .field("adaptive", agg.adaptive)
        .field("total_score", agg.total_score)
        .field("total_delivered",
               static_cast<std::uint64_t>(agg.total_delivered))
        .field("total_submitted",
               static_cast<std::uint64_t>(agg.total_submitted))
        .field("delivered_everything", agg.delivered_everything)
        .field("adapt_switches", agg.adapt_switches)
        .field("reconfigs_applied", agg.reconfigs_applied)
        .end_object();
  }
  json.end_array().end_object();

  if (!json.write_file(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  std::printf(
      "Reading: each scenario pins one seeded fault schedule; static rungs\n"
      "trade delivery (lean rungs lose rounds in bursts/partitions) against\n"
      "wire overhead (robust rungs burn frames on clean phases). The\n"
      "adaptive row rides the ladder at rekey boundaries and must beat all\n"
      "statics on the aggregate score while delivering every message.\n");

  const bool ok = adaptive_wins && adap.delivered_everything &&
                  adap.adapt_switches > 0 && adap.reconfigs_applied > 0;
  if (!ok) {
    std::fprintf(stderr, "adaptive gate FAILED (wins=%d all_delivered=%d "
                         "switches=%llu reconfigs=%llu)\n",
                 adaptive_wins, adap.delivered_everything,
                 static_cast<unsigned long long>(adap.adapt_switches),
                 static_cast<unsigned long long>(adap.reconfigs_applied));
  }
  return ok ? 0 : 1;
}
