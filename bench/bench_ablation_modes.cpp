// Ablation -- the mode trade-off space (§3.3.2, incl. the C+M combination).
//
// For one 64-message round, measured from the real engines: per-message
// verifier hash cost, per-S2 signature bytes on the wire, and bytes buffered
// by the relay while the round is pending. The paper's claim: ALPHA-C is
// constant-cost/linear-buffer, ALPHA-M is log-cost/constant-buffer, and the
// combination interpolates ("reduction of the computational cost for
// verifying {Bc} ... requires larger buffering capabilities from relays").
#include "bench_util.hpp"
#include "crypto/counter.hpp"

using namespace alpha;
using namespace alpha::bench;

namespace {

struct Row {
  double verify_hashes_per_msg;
  std::size_t sig_bytes_per_s2;
  std::size_t relay_buffer;
  std::size_t s1_bytes;
};

Row run(core::Config config, std::size_t messages) {
  // Pass 1: relay buffer while the round is pending (A1 withheld).
  TriadFixture held{config};
  for (std::size_t i = 0; i < messages; ++i) {
    held.signer().submit(crypto::Bytes(1000, 0x5a), 0);
  }
  held.pump_without_a1();
  const std::size_t relay_buffer = held.relay().buffered_bytes();

  // Pass 2: full run, measuring verifier hashes and S2 sizes.
  TriadFixture fx{config};
  std::size_t s2_payload_total = 0, s2_frame_total = 0, s2_count = 0;
  std::size_t s1_bytes = 0;
  // Wrap the fixture pump with a frame size probe via a decode pass: the
  // fixture has no hook, so resubmit and inspect through the signer stats
  // instead -- simplest is to capture sizes by re-encoding what the
  // verifier receives. We probe by intercepting with a custom callback
  // round: rebuild frames through SignerEngine directly.
  crypto::HashOpCounter::reset();
  for (std::size_t i = 0; i < messages; ++i) {
    fx.signer().submit(crypto::Bytes(1000, 0x5a), 0);
  }
  fx.pump();
  const auto verify_hashes = fx.verifier().stats().hashes.signature +
                             fx.verifier().stats().hashes.chain_verify;

  // Wire sizes from freshly encoded packets of an identical round.
  {
    core::SignerEngine::Callbacks cb;
    std::vector<crypto::Bytes> frames;
    cb.send = [&](crypto::Bytes f) { frames.push_back(std::move(f)); };
    crypto::HmacDrbg rng{9};
    auto sig_chain = hashchain::HashChain::generate(
        config.algo, hashchain::ChainTagging::kRoleBound, rng,
        config.chain_length);
    auto ack_chain = hashchain::HashChain::generate(
        config.algo, hashchain::ChainTagging::kRoleBound, rng,
        config.chain_length);
    core::SignerEngine probe{config, 1, sig_chain, ack_chain.anchor(),
                             ack_chain.length(), std::move(cb)};
    for (std::size_t i = 0; i < messages; ++i) {
      probe.submit(crypto::Bytes(1000, 0x5a), 0);
    }
    // Feed it a genuine A1 so it emits the S2 batch.
    core::VerifierEngine::Callbacks vcb;
    crypto::Bytes a1_frame;
    vcb.send = [&](crypto::Bytes f) { a1_frame = std::move(f); };
    core::VerifierEngine v{config, 1, ack_chain, sig_chain.anchor(),
                           sig_chain.length(), std::move(vcb), rng};
    v.on_s1(std::get<wire::S1Packet>(*wire::decode(frames.at(0))));
    s1_bytes = frames.at(0).size();
    probe.on_a1(std::get<wire::A1Packet>(*wire::decode(a1_frame)), 0);
    for (std::size_t i = 1; i < frames.size(); ++i) {
      if (wire::peek_type(frames[i]) == wire::PacketType::kS2) {
        const auto s2 = std::get<wire::S2Packet>(*wire::decode(frames[i]));
        s2_frame_total += frames[i].size();
        s2_payload_total += s2.payload.size();
        ++s2_count;
      }
    }
  }

  Row row;
  row.verify_hashes_per_msg =
      static_cast<double>(verify_hashes) / static_cast<double>(messages);
  row.sig_bytes_per_s2 =
      s2_count == 0 ? 0 : (s2_frame_total - s2_payload_total) / s2_count;
  row.relay_buffer = relay_buffer;
  row.s1_bytes = s1_bytes;
  return row;
}

}  // namespace

int main() {
  header("Ablation: ALPHA-C vs ALPHA-M vs combined C+M, one 64-message "
         "round (1000 B messages, SHA-1)");

  struct Case {
    const char* name;
    wire::Mode mode;
    std::size_t group;
  };
  const Case cases[] = {
      {"ALPHA-C (64 MACs/S1)", wire::Mode::kCumulative, 0},
      {"C+M, groups of 4", wire::Mode::kCumulativeMerkle, 4},
      {"C+M, groups of 8", wire::Mode::kCumulativeMerkle, 8},
      {"C+M, groups of 16", wire::Mode::kCumulativeMerkle, 16},
      {"ALPHA-M (one 64-leaf tree)", wire::Mode::kMerkle, 0},
  };

  std::printf("\n%-28s %16s %16s %14s %10s\n", "mode",
              "verify hashes/msg", "sig bytes/S2", "relay buffer", "S1 size");
  for (const auto& c : cases) {
    core::Config config;
    config.mode = c.mode;
    config.batch_size = 64;
    config.merkle_group = c.group;
    config.chain_length = 1024;
    const Row row = run(config, 64);
    std::printf("%-28s %16.2f %16zu %11zu B %7zu B\n", c.name,
                row.verify_hashes_per_msg, row.sig_bytes_per_s2,
                row.relay_buffer, row.s1_bytes);
  }

  std::printf(
      "\nReading: ALPHA-C pays constant per-message hashing and wire bytes\n"
      "but the relay buffers one MAC per message; ALPHA-M buffers a single\n"
      "root but pays log2(64)+1 hashes and 6 path digests per S2. The C+M\n"
      "groups interpolate: larger groups -> smaller relay buffer and S1,\n"
      "deeper paths (§3.3.2).\n");
  return 0;
}
