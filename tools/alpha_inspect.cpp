// alpha_inspect -- decode and pretty-print an ALPHA packet from hex, or
// render a JSONL protocol event trace (alpha_sim --trace) as a
// per-association timeline plus a drop-reason summary table, or
// reconstruct per-round spans (waterfalls + latency quantiles) offline.
//
//   $ alpha_inspect --hex 0101000000010000000701...
//   $ some_capture | alpha_inspect --stdin
//   $ alpha_sim --trace run.jsonl ... && alpha_inspect --trace run.jsonl
//   $ alpha_inspect --spans run.jsonl
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/adapt.hpp"
#include "flags.hpp"
#include "trace/flight.hpp"
#include "trace/health.hpp"
#include "trace/metrics.hpp"
#include "trace/spans.hpp"
#include "trace/trace.hpp"
#include "wire/packets.hpp"

using namespace alpha;

namespace {

const char* type_name(wire::PacketType t) {
  switch (t) {
    case wire::PacketType::kS1: return "S1 (pre-signature announcement)";
    case wire::PacketType::kA1: return "A1 (willingness + pre-(n)acks)";
    case wire::PacketType::kS2: return "S2 (payload + key disclosure)";
    case wire::PacketType::kA2: return "A2 ((n)ack disclosure)";
    case wire::PacketType::kHs1: return "HS1 (handshake request)";
    case wire::PacketType::kHs2: return "HS2 (handshake response)";
  }
  return "?";
}

const char* mode_name(wire::Mode m) {
  switch (m) {
    case wire::Mode::kBase: return "base";
    case wire::Mode::kCumulative: return "ALPHA-C";
    case wire::Mode::kMerkle: return "ALPHA-M";
    case wire::Mode::kCumulativeMerkle: return "ALPHA-C+M";
  }
  return "?";
}

void print_digest(const char* label, const crypto::Digest& d) {
  std::printf("  %-18s %s (%zu B)\n", label, d.hex().c_str(), d.size());
}

struct Printer {
  void operator()(const wire::S1Packet& p) const {
    std::printf("  %-18s %s\n", "mode", mode_name(p.mode));
    std::printf("  %-18s %u\n", "chain index", p.chain_index);
    print_digest("chain element", p.chain_element);
    if (p.mode == wire::Mode::kMerkle) {
      print_digest("merkle root", p.merkle_root);
      std::printf("  %-18s %u\n", "leaf count", p.leaf_count);
    } else if (p.mode == wire::Mode::kCumulativeMerkle) {
      std::printf("  %-18s %zu roots, groups of %u, %u messages\n",
                  "merkle roots", p.merkle_roots.size(), p.group_size,
                  p.leaf_count);
      for (const auto& root : p.merkle_roots) print_digest("  root", root);
    } else {
      std::printf("  %-18s %zu\n", "pre-signatures", p.macs.size());
      for (const auto& m : p.macs) print_digest("  MAC", m);
    }
  }
  void operator()(const wire::A1Packet& p) const {
    std::printf("  %-18s %u\n", "ack chain index", p.ack_chain_index);
    print_digest("ack element", p.ack_element);
    switch (p.scheme) {
      case wire::AckScheme::kNone:
        std::printf("  %-18s unreliable (no pre-acks)\n", "scheme");
        break;
      case wire::AckScheme::kPreAck:
        std::printf("  %-18s pre-ack pairs: %zu\n", "scheme", p.pre_acks.size());
        break;
      case wire::AckScheme::kAmt:
        std::printf("  %-18s AMT over %u messages\n", "scheme",
                    p.amt_msg_count);
        print_digest("amt root", p.amt_root);
        break;
    }
  }
  void operator()(const wire::S2Packet& p) const {
    std::printf("  %-18s %s\n", "mode", mode_name(p.mode));
    std::printf("  %-18s %u\n", "chain index", p.chain_index);
    print_digest("disclosed key", p.disclosed_element);
    std::printf("  %-18s %u\n", "msg index", p.msg_index);
    if (p.path.has_value()) {
      std::printf("  %-18s leaf %u, %zu siblings ({Bc})\n", "merkle path",
                  p.path->leaf_index, p.path->siblings.size());
    }
    std::printf("  %-18s %zu B\n", "payload", p.payload.size());
  }
  void operator()(const wire::A2Packet& p) const {
    std::printf("  %-18s %s\n", "kind",
                p.kind == wire::AckKind::kAck ? "ACK" : "NACK");
    std::printf("  %-18s %u\n", "ack chain index", p.ack_chain_index);
    print_digest("disclosed key", p.disclosed_ack_element);
    std::printf("  %-18s %u\n", "msg index", p.msg_index);
    std::printf("  %-18s %zu B\n", "secret", p.secret.size());
    if (p.path.has_value()) {
      std::printf("  %-18s leaf %u, %zu siblings (AMT)\n", "merkle path",
                  p.path->leaf_index, p.path->siblings.size());
    }
  }
  void operator()(const wire::HandshakePacket& p) const {
    std::printf("  %-18s %s\n", "role",
                p.is_response ? "response (HS2)" : "request (HS1)");
    std::printf("  %-18s %s\n", "hash algo",
                std::string(crypto::to_string(p.algo)).c_str());
    std::printf("  %-18s %u\n", "chain length", p.chain_length);
    print_digest("sig anchor", p.sig_anchor);
    print_digest("ack anchor", p.ack_anchor);
    if (p.sig_alg != wire::SigAlg::kNone) {
      const char* alg = p.sig_alg == wire::SigAlg::kRsa         ? "RSA"
                        : p.sig_alg == wire::SigAlg::kDsa       ? "DSA"
                        : p.sig_alg == wire::SigAlg::kEcdsaP160 ? "ECDSA/secp160r1"
                                                                : "ECDSA/P-256";
      std::printf("  %-18s %s, key %zu B, signature %zu B\n", "protected",
                  alg, p.public_key.size(), p.signature.size());
    } else {
      std::printf("  %-18s unprotected (ephemeral anonymous identity)\n",
                  "bootstrap");
    }
  }
};

int inspect(const std::string& hex) {
  crypto::Bytes frame;
  try {
    frame = crypto::from_hex(hex);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "bad hex input: %s\n", e.what());
    return 2;
  }
  const auto type = wire::peek_type(frame);
  const auto hdr = wire::peek_header(frame);
  if (!type.has_value() || !hdr.has_value()) {
    std::fprintf(stderr, "not an ALPHA packet (bad version/type)\n");
    return 1;
  }
  std::printf("%s, %zu bytes\n", type_name(*type), frame.size());
  std::printf("  %-18s %u\n", "association", hdr->assoc_id);
  std::printf("  %-18s %u\n", "round seq", hdr->seq);
  const auto packet = wire::decode(frame);
  if (!packet.has_value()) {
    std::fprintf(stderr, "  body MALFORMED (would be dropped)\n");
    return 1;
  }
  std::visit(Printer{}, *packet);
  return 0;
}

// ----------------------------------------------------------- trace decode

// One line of the JSONL schema written by trace::write_jsonl. Parsed with
// plain string scanning: the writer emits a fixed flat object per line, so
// a JSON library would be dead weight here.
struct TraceLine {
  std::uint64_t t = 0;
  std::uint64_t origin = 0;
  std::string kind;
  std::uint32_t assoc = 0;
  std::uint32_t seq = 0;
  std::string type;
  std::string reason;
  std::uint64_t detail = 0;
  bool has_net = false;
  std::uint64_t from = 0, to = 0, size = 0;
};

std::string find_string_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return {};
  return line.substr(start, end - start);
}

bool find_num_field(const std::string& line, const std::string& key,
                    std::uint64_t& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* p = line.c_str() + pos + needle.size();
  if (*p < '0' || *p > '9') return false;
  out = std::strtoull(p, nullptr, 10);
  return true;
}

bool parse_trace_line(const std::string& line, TraceLine& ev) {
  ev.kind = find_string_field(line, "kind");
  if (ev.kind.empty()) return false;
  ev.type = find_string_field(line, "type");
  ev.reason = find_string_field(line, "reason");
  find_num_field(line, "t", ev.t);
  find_num_field(line, "origin", ev.origin);
  std::uint64_t n = 0;
  if (find_num_field(line, "assoc", n)) {
    ev.assoc = static_cast<std::uint32_t>(n);
  }
  if (find_num_field(line, "seq", n)) ev.seq = static_cast<std::uint32_t>(n);
  find_num_field(line, "detail", ev.detail);
  ev.has_net = find_num_field(line, "from", ev.from);
  find_num_field(line, "to", ev.to);
  find_num_field(line, "size", ev.size);
  return true;
}

bool load_trace(const std::string& path, std::vector<TraceLine>& events,
                std::size_t& bad_lines) {
  std::ifstream f{path};
  if (!f) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    TraceLine ev;
    if (parse_trace_line(line, ev)) {
      events.push_back(std::move(ev));
    } else {
      ++bad_lines;
    }
  }
  if (events.empty()) {
    std::fprintf(stderr, "%s: no trace events\n", path.c_str());
    return false;
  }
  return true;
}

// Per-association timeline (assoc 0 collects events with no association
// context, e.g. malformed-header drops).
void render_timeline(const std::vector<TraceLine>& events) {
  std::map<std::uint32_t, std::vector<const TraceLine*>> by_assoc;
  for (const auto& ev : events) by_assoc[ev.assoc].push_back(&ev);
  for (const auto& [assoc, evs] : by_assoc) {
    if (assoc == 0) {
      std::printf("== no association context (%zu events) ==\n", evs.size());
    } else {
      std::printf("== association %u (%zu events) ==\n", assoc, evs.size());
    }
    for (const TraceLine* ev : evs) {
      std::printf("%12.3f ms  node %-3llu %-18s", ev->t / 1000.0,
                  static_cast<unsigned long long>(ev->origin),
                  ev->kind.c_str());
      if (!ev->type.empty() && ev->type != "-") {
        std::printf(" %-3s", ev->type.c_str());
      } else {
        std::printf("    ");
      }
      std::printf(" seq=%u", ev->seq);
      if (!ev->reason.empty() && ev->reason != "none") {
        std::printf(" reason=%s", ev->reason.c_str());
      }
      if (ev->has_net) {
        std::printf(" %llu->%llu %lluB",
                    static_cast<unsigned long long>(ev->from),
                    static_cast<unsigned long long>(ev->to),
                    static_cast<unsigned long long>(ev->size));
      } else if (ev->detail != 0) {
        std::printf(" detail=%llu",
                    static_cast<unsigned long long>(ev->detail));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
}

// Drop-reason summary: every non-delivered packet attributed to a reason.
void render_drops(const std::vector<TraceLine>& events) {
  std::map<std::string, std::uint64_t> engine_drops;
  std::map<std::string, std::uint64_t> net_drops;
  std::uint64_t net_delivered = 0, net_duplicated = 0;
  for (const auto& ev : events) {
    if (ev.kind == "packet_dropped") ++engine_drops[ev.reason];
    if (ev.kind == "net_dropped") ++net_drops[ev.reason];
    if (ev.kind == "net_delivered") ++net_delivered;
    if (ev.kind == "net_duplicated") ++net_duplicated;
  }
  std::printf("== drop reasons ==\n");
  std::printf("%-24s %10s %10s\n", "reason", "network", "engines");
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> merged;
  for (const auto& [reason, n] : net_drops) merged[reason].first = n;
  for (const auto& [reason, n] : engine_drops) merged[reason].second = n;
  std::uint64_t net_total = 0, engine_total = 0;
  for (const auto& [reason, counts] : merged) {
    std::printf("%-24s %10llu %10llu\n", reason.c_str(),
                static_cast<unsigned long long>(counts.first),
                static_cast<unsigned long long>(counts.second));
    net_total += counts.first;
    engine_total += counts.second;
  }
  std::printf("%-24s %10llu %10llu\n", "total",
              static_cast<unsigned long long>(net_total),
              static_cast<unsigned long long>(engine_total));
  std::printf("\n== packet fate ==\n");
  std::printf("network sends:   %llu (%llu delivered, %llu dropped, "
              "%llu chaos duplicates)\n",
              static_cast<unsigned long long>(net_delivered + net_total),
              static_cast<unsigned long long>(net_delivered),
              static_cast<unsigned long long>(net_total),
              static_cast<unsigned long long>(net_duplicated));
}

int inspect_trace(const std::string& path) {
  std::vector<TraceLine> events;
  std::size_t bad_lines = 0;
  if (!load_trace(path, events, bad_lines)) return 1;
  render_timeline(events);
  render_drops(events);
  if (bad_lines > 0) {
    std::fprintf(stderr, "warning: %zu undecodable trace lines\n", bad_lines);
  }
  return 0;
}

// ------------------------------------------------------ span reconstruction

/// Rebuilds a trace::Event from its JSONL form; lossless because write_jsonl
/// always emits the raw detail word alongside the decoded net fields.
trace::Event to_event(const TraceLine& line) {
  trace::Event e;
  e.time_us = line.t;
  e.detail = line.detail;
  e.assoc_id = line.assoc;
  e.seq = line.seq;
  e.kind = trace::kind_from_string(line.kind);
  e.reason = trace::reason_from_string(line.reason);
  e.packet_type = trace::packet_type_from_name(line.type);
  e.origin = static_cast<std::uint8_t>(line.origin);
  return e;
}

/// Inverse of to_event: lifts a binary flight-recorder event into the same
/// TraceLine shape the JSONL path produces, so every renderer below works
/// identically on live JSONL traces and postmortem recordings.
TraceLine from_event(const trace::Event& e) {
  TraceLine line;
  line.t = e.time_us;
  line.origin = e.origin;
  line.kind = trace::to_string(e.kind);
  line.assoc = e.assoc_id;
  line.seq = e.seq;
  line.type = trace::packet_type_name(e.packet_type);
  line.reason = trace::to_string(e.reason);
  line.detail = e.detail;
  if (e.kind == trace::EventKind::kNetDelivered ||
      e.kind == trace::EventKind::kNetDropped ||
      e.kind == trace::EventKind::kNetDuplicated) {
    line.has_net = true;
    line.from = trace::net_detail_from(e.detail);
    line.to = trace::net_detail_to(e.detail);
    line.size = trace::net_detail_size(e.detail);
  }
  return line;
}

void waterfall_row(std::vector<std::pair<std::uint64_t, std::string>>& rows,
                   std::uint64_t t, std::string label) {
  if (t != trace::RoundSpan::kUnset) rows.emplace_back(t, std::move(label));
}

void print_waterfall(const trace::RoundSpan& span) {
  const std::uint64_t origin = span.origin_us();
  char buf[160];

  const char* status = span.complete() ? "complete"
                       : span.failed  ? "FAILED"
                                      : "in-flight";
  std::printf("== assoc %u seq %u gen %u: %s, batch=%zu delivered=%zu ==\n",
              span.assoc_id, span.seq, span.generation, status, span.batch,
              span.delivered);
  if (span.complete()) {
    std::printf("   e2e %.3f ms  (queue %.3f ms, crypto %.1f us, "
                "retransmit-wait %.3f ms, propagation %.3f ms)\n",
                span.e2e_us() / 1000.0, span.queue_us / 1000.0,
                span.crypto_ns / 1000.0, span.retransmit_wait_us() / 1000.0,
                span.propagation_us() / 1000.0);
  }

  std::vector<std::pair<std::uint64_t, std::string>> rows;
  if (span.start_us != trace::RoundSpan::kUnset) {
    waterfall_row(rows, origin, "submit (oldest batched message)");
    std::snprintf(buf, sizeof(buf), "round open (crypto %.1f us)",
                  span.crypto_ns / 1000.0);
    waterfall_row(rows, span.start_us, buf);
  }
  std::snprintf(buf, sizeof(buf), "S1 sent (batch %zu)", span.batch);
  waterfall_row(rows, span.s1_sent_us, buf);
  for (const trace::AttemptSpan& a : span.attempts) {
    std::snprintf(buf, sizeof(buf), "%s retransmit #%u (attempt-tagged)",
                  a.packet_type == 1 ? "S1" : "S2", a.attempt);
    waterfall_row(rows, a.time_us, buf);
  }
  waterfall_row(rows, span.s1_accepted_us, "S1 accepted at verifier");
  waterfall_row(rows, span.a1_sent_us, "A1 sent");
  waterfall_row(rows, span.a1_accepted_us, "A1 accepted at signer");
  for (std::size_t i = 0; i < span.messages.size(); ++i) {
    const trace::MessageSpan& m = span.messages[i];
    std::snprintf(buf, sizeof(buf), "S2[%zu] sent", i);
    waterfall_row(rows, m.s2_sent_us, buf);
    if (m.delivered_us != trace::MessageSpan::kUnset) {
      std::snprintf(buf, sizeof(buf), "S2[%zu] delivered (e2e %.3f ms)", i,
                    (m.delivered_us - origin) / 1000.0);
      waterfall_row(rows, m.delivered_us, buf);
    }
  }
  if (span.acks + span.nacks > 0) {
    std::snprintf(buf, sizeof(buf), "last A2 accepted (%zu acks, %zu nacks)",
                  span.acks, span.nacks);
    waterfall_row(rows, span.last_a2_us, buf);
  }
  if (span.failed) {
    std::snprintf(buf, sizeof(buf), "round FAILED (%s)",
                  trace::to_string(span.fail_reason));
    // Failure carries no timestamp of its own on the span; anchor it last.
    rows.emplace_back(rows.empty() ? origin : rows.back().first, buf);
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [t, label] : rows) {
    std::printf("  %+12.3f ms  %s\n", (static_cast<double>(t) - origin) / 1000.0,
                label.c_str());
  }
  std::printf("\n");
}

void print_quantiles(const char* name, const metrics::Histogram& h,
                     double scale, const char* unit) {
  if (h.count() == 0) return;
  std::printf("%-22s n=%-6llu min=%-9.3f p50=%-9.3f p99=%-9.3f max=%-9.3f %s\n",
              name, static_cast<unsigned long long>(h.count()),
              h.min() / scale, h.quantile(0.5) / scale, h.quantile(0.99) / scale,
              h.max() / scale, unit);
}

int render_spans(const std::vector<TraceLine>& events, const std::string& label,
                 bool waterfalls) {
  trace::SpanBuilder builder;
  for (const TraceLine& line : events) builder.ingest(to_event(line));
  if (builder.spans().empty()) {
    std::fprintf(stderr, "%s: no signature rounds in trace\n", label.c_str());
    return 1;
  }

  if (waterfalls) {
    for (const trace::RoundSpan& span : builder.spans()) print_waterfall(span);
  }

  // Latency summary with bucket-bounded quantile estimates (log2 buckets:
  // p50/p99 are exact to within a factor of 2, clamped to observed min/max).
  metrics::Histogram delivery, e2e, queue, crypto, retrans, prop;
  for (const trace::RoundSpan& span : builder.spans()) {
    const std::uint64_t origin = span.origin_us();
    for (const trace::MessageSpan& m : span.messages) {
      if (m.delivered_us != trace::MessageSpan::kUnset) {
        delivery.record(m.delivered_us - origin);
      }
    }
    if (!span.complete()) continue;
    e2e.record(span.e2e_us());
    queue.record(span.queue_us);
    crypto.record(span.crypto_ns);
    retrans.record(span.retransmit_wait_us());
    prop.record(span.propagation_us());
  }
  std::printf("== span summary ==\n");
  std::printf("rounds: %llu complete, %llu failed, %zu total; "
              "%llu message deliveries\n",
              static_cast<unsigned long long>(builder.rounds_complete()),
              static_cast<unsigned long long>(builder.rounds_failed()),
              builder.spans().size(),
              static_cast<unsigned long long>(builder.deliveries()));
  print_quantiles("delivery latency", delivery, 1000.0, "ms");
  print_quantiles("round e2e", e2e, 1000.0, "ms");
  print_quantiles("queue wait", queue, 1000.0, "ms");
  print_quantiles("crypto", crypto, 1000.0, "us");
  print_quantiles("retransmit wait", retrans, 1000.0, "ms");
  print_quantiles("propagation", prop, 1000.0, "ms");
  if (builder.min_delivery_latency_us() != trace::SpanBuilder::kUnset) {
    std::printf("min delivery latency: %.3f ms\n",
                builder.min_delivery_latency_us() / 1000.0);
  }
  if (builder.lost_events() > 0) {
    std::fprintf(stderr, "warning: %llu events lost to ring overwrite\n",
                 static_cast<unsigned long long>(builder.lost_events()));
  }
  return 0;
}

int inspect_spans(const std::string& path) {
  std::vector<TraceLine> events;
  std::size_t bad_lines = 0;
  if (!load_trace(path, events, bad_lines)) return 1;
  const int rc = render_spans(events, path, /*waterfalls=*/true);
  if (bad_lines > 0) {
    std::fprintf(stderr, "warning: %zu undecodable trace lines\n", bad_lines);
  }
  return rc;
}

// ------------------------------------------------------ adaptivity decode

const char* short_mode(std::uint8_t m) {
  switch (static_cast<wire::Mode>(m)) {
    case wire::Mode::kBase: return "base";
    case wire::Mode::kCumulative: return "C";
    case wire::Mode::kMerkle: return "M";
    case wire::Mode::kCumulativeMerkle: return "C+M";
  }
  return "?";
}

/// Explains the adaptive controller's policy from the trace alone: every
/// kAdaptDecision event carries the full input snapshot (loss EWMA, budget
/// pressure, health) and the verdict in its detail word, so the decision
/// log below is exactly what the controller saw -- holds included.
int render_adapt(const std::vector<TraceLine>& events, const std::string& label,
                 bool required) {
  std::map<std::uint32_t, std::vector<const TraceLine*>> by_assoc;
  for (const auto& ev : events) {
    if (ev.kind == "adapt_decision") by_assoc[ev.assoc].push_back(&ev);
  }
  if (by_assoc.empty()) {
    if (!required) return 0;
    std::fprintf(stderr,
                 "%s: no adapt_decision events (run with the adaptive "
                 "controller enabled, e.g. alpha_sim --adaptive --trace)\n",
                 label.c_str());
    return 1;
  }

  static const char* kHealthNames[] = {"ok", "degraded", "failed", "?"};
  for (const auto& [assoc, evs] : by_assoc) {
    std::printf("== association %u: %zu policy evaluations ==\n", assoc,
                evs.size());
    std::printf("%12s %6s %-15s %-14s %7s %7s %9s\n", "t(ms)", "eval",
                "decision", "profile", "loss", "budget", "health");
    std::map<std::string, std::uint64_t> by_reason;
    std::uint64_t switches = 0;
    for (const TraceLine* ev : evs) {
      const std::uint64_t d = ev->detail;
      const auto reason =
          static_cast<core::AdaptReason>(trace::adapt_detail_reason(d));
      const std::uint8_t to_mode = trace::adapt_detail_to_mode(d);
      const std::uint32_t to_batch = trace::adapt_detail_to_batch(d);
      const std::uint8_t from_mode = trace::adapt_detail_from_mode(d);
      const std::uint32_t from_batch = trace::adapt_detail_from_batch(d);
      const bool moved = to_mode != from_mode || to_batch != from_batch;
      if (moved) ++switches;
      ++by_reason[core::to_string(reason)];
      char profile[48];
      if (moved) {
        std::snprintf(profile, sizeof(profile), "%s/%u -> %s/%u",
                      short_mode(from_mode), from_batch, short_mode(to_mode),
                      to_batch);
      } else {
        std::snprintf(profile, sizeof(profile), "%s/%u",
                      short_mode(from_mode), from_batch);
      }
      std::printf("%12.3f %6u %-15s %-14s %6.1f%% %6u%% %9s\n",
                  ev->t / 1000.0, ev->seq, core::to_string(reason), profile,
                  trace::adapt_detail_loss_permille(d) / 10.0,
                  trace::adapt_detail_budget_percent(d),
                  kHealthNames[std::min<std::uint8_t>(
                      trace::adapt_detail_health(d), 3)]);
    }
    std::printf("-- %llu switches over %zu evaluations; by reason:",
                static_cast<unsigned long long>(switches), evs.size());
    for (const auto& [reason, n] : by_reason) {
      std::printf(" %s=%llu", reason.c_str(),
                  static_cast<unsigned long long>(n));
    }
    std::printf("\n\n");
  }
  return 0;
}

int inspect_adapt(const std::string& path) {
  std::vector<TraceLine> events;
  std::size_t bad_lines = 0;
  if (!load_trace(path, events, bad_lines)) return 1;
  const int rc = render_adapt(events, path, /*required=*/true);
  if (bad_lines > 0) {
    std::fprintf(stderr, "warning: %zu undecodable trace lines\n", bad_lines);
  }
  return rc;
}

// ------------------------------------------------------- flight recordings

void render_health(const std::vector<TraceLine>& events) {
  bool any = false;
  for (const auto& ev : events) {
    const bool degraded = ev.kind == "health_degraded";
    if (!degraded && ev.kind != "health_recovered") continue;
    if (!any) {
      std::printf("== health transitions ==\n");
      any = true;
    }
    std::printf("%12.3f ms  node %-3llu %-18s", ev.t / 1000.0,
                static_cast<unsigned long long>(ev.origin), ev.kind.c_str());
    if (degraded && ev.detail != 0) {
      const auto mask = static_cast<unsigned>(ev.detail);
      if (mask & trace::kHealthWedgedRound) std::printf(" wedged-round");
      if (mask & trace::kHealthBudgetExhausted) std::printf(" budget-exhausted");
      if (mask & trace::kHealthRekeyStorm) std::printf(" rekey-storm");
      if (mask & trace::kHealthEventsLost) std::printf(" events-lost");
    }
    std::printf("\n");
  }
  if (any) std::printf("\n");
}

void print_flight_summary(const trace::FlightRecording& rec,
                          const std::string& dir) {
  std::printf("== flight recording: %s ==\n", dir.c_str());
  std::printf("node %u, %zu segment(s), %llu events\n", rec.node_id(),
              rec.segments.size(),
              static_cast<unsigned long long>(rec.total_events()));
  for (const trace::FlightSegment& seg : rec.segments) {
    const trace::FlightHeader& h = seg.header;
    std::printf("  shard %u seg %-3u  %6zu events  lost=%llu  %s",
                h.shard_index, h.segment_index, seg.events.size(),
                static_cast<unsigned long long>(h.events_lost),
                h.finalized      ? "finalized"
                : h.crash_signal ? "CRASH"
                                 : "torn");
    if (h.crash_signal != 0) std::printf(" (signal %u)", h.crash_signal);
    if (seg.invalid_events > 0) {
      std::printf("  %llu invalid slots",
                  static_cast<unsigned long long>(seg.invalid_events));
    }
    if (seg.metrics_valid) std::printf("  +metrics snapshot");
    std::printf("\n");
  }
  const trace::FlightHeader& h0 = rec.segments.front().header;
  std::printf("  build %s\n", h0.build_info);
  std::printf("  wall epoch %llu us, config digest %016llx\n\n",
              static_cast<unsigned long long>(h0.wall_epoch_us),
              static_cast<unsigned long long>(h0.config_digest));
}

std::vector<TraceLine> flight_lines(const trace::FlightRecording& rec) {
  std::vector<TraceLine> lines;
  lines.reserve(rec.total_events());
  for (const trace::FlightSegment& seg : rec.segments) {
    for (const trace::Event& e : seg.events) lines.push_back(from_event(e));
  }
  return lines;
}

/// Postmortem view of one recording: what a crashed or exited node left
/// behind, rendered through the same lenses as a live JSONL trace.
int inspect_flight(const std::string& dir) {
  trace::FlightRecording rec;
  std::string err;
  if (!read_flight_dir(dir, rec, &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  print_flight_summary(rec, dir);
  const std::vector<TraceLine> events = flight_lines(rec);
  if (events.empty()) {
    std::fprintf(stderr, "%s: recording holds no events\n", dir.c_str());
    return 1;
  }
  render_drops(events);
  std::printf("\n");
  render_health(events);
  // Spans exist only for runs that opened signature rounds; a recording of
  // pure relay traffic is still useful for the drop table above.
  render_spans(events, dir, /*waterfalls=*/false);
  render_adapt(events, dir, /*required=*/false);
  return 0;
}

/// Cross-process postmortem: merge N recordings onto one corrected
/// timeline and show how the clocks were reconciled.
int inspect_merge(const std::string& spec) {
  std::vector<std::string> dirs;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string dir = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!dir.empty()) dirs.push_back(dir);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (dirs.size() < 2) {
    std::fprintf(stderr, "--merge needs at least two comma-separated dirs\n");
    return 2;
  }
  std::vector<trace::FlightRecording> recs(dirs.size());
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    std::string err;
    if (!read_flight_dir(dirs[i], recs[i], &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    print_flight_summary(recs[i], dirs[i]);
  }
  trace::MergeResult merged;
  std::string err;
  if (!merge_recordings(recs, merged, &err)) {
    std::fprintf(stderr, "merge failed: %s\n", err.c_str());
    return 1;
  }

  std::printf("== clock links (reference: node %u) ==\n", recs[0].node_id());
  std::printf("%6s %14s %14s %8s %s\n", "node", "offset(ms)", "latency(us)",
              "pairs", "basis");
  for (const trace::ClockLink& link : merged.links) {
    std::printf("%6u %14.3f %14.1f %8zu %s\n", link.node_id,
                link.offset_us / 1000.0, link.latency_us, link.matched_pairs,
                link.refined ? "matched send/recv pairs" : "wall epochs only");
  }
  std::printf("\n== merged timeline (%zu events) ==\n",
              merged.timeline.size());
  const std::uint64_t t0 =
      merged.timeline.empty() ? 0 : merged.timeline.front().wall_us;
  for (const trace::MergedEvent& me : merged.timeline) {
    const TraceLine line = from_event(me.event);
    std::printf("%12.3f ms  node %-3u %-18s", (me.wall_us - t0) / 1000.0,
                me.node_id, line.kind.c_str());
    if (!line.type.empty() && line.type != "-") {
      std::printf(" %-3s", line.type.c_str());
    }
    std::printf(" assoc=%u seq=%u", line.assoc, line.seq);
    if (!line.reason.empty() && line.reason != "none") {
      std::printf(" reason=%s", line.reason.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");

  // Cross-node spans: feed the corrected timeline through the span
  // reconstructor so hop latencies span process boundaries.
  std::vector<TraceLine> lines;
  lines.reserve(merged.timeline.size());
  for (const trace::MergedEvent& me : merged.timeline) {
    TraceLine line = from_event(me.event);
    line.t = me.wall_us - t0;
    lines.push_back(std::move(line));
  }
  render_drops(lines);
  std::printf("\n");
  render_spans(lines, spec, /*waterfalls=*/false);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags{"alpha_inspect",
                     "decode an ALPHA packet from hex or a JSONL trace"};
  flags.define("hex", "", "packet bytes as a hex string");
  flags.define("stdin", "false", "read hex lines from stdin");
  flags.define("trace", "",
               "decode a JSONL event trace (alpha_sim --trace) into a "
               "timeline and drop-reason table");
  flags.define("spans", "",
               "reconstruct per-round spans from a JSONL event trace: "
               "waterfalls plus latency-component quantiles");
  flags.define("adapt", "",
               "explain adaptive-controller decisions from a JSONL event "
               "trace: one line per policy evaluation with the signals "
               "that justified it");
  flags.define("flight", "",
               "replay a flight-recorder directory (alpha_sim --flight-dir): "
               "segment headers, drop taxonomy, health transitions, span "
               "summary, adapt log");
  flags.define("merge", "",
               "merge two or more comma-separated flight-recorder dirs into "
               "one clock-corrected cross-process timeline");
  flags.parse(argc, argv);

  if (!flags.str("merge").empty()) {
    return inspect_merge(flags.str("merge"));
  }
  if (!flags.str("flight").empty()) {
    return inspect_flight(flags.str("flight"));
  }
  if (!flags.str("adapt").empty()) {
    return inspect_adapt(flags.str("adapt"));
  }
  if (!flags.str("spans").empty()) {
    return inspect_spans(flags.str("spans"));
  }
  if (!flags.str("trace").empty()) {
    return inspect_trace(flags.str("trace"));
  }
  if (flags.flag("stdin")) {
    std::string line;
    int rc = 0;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      rc |= inspect(line);
      std::printf("\n");
    }
    return rc;
  }
  if (flags.str("hex").empty()) {
    flags.usage();
    return 2;
  }
  return inspect(flags.str("hex"));
}
